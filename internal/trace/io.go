package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvTimeLayout is the timestamp format used in CSV interchange.
const csvTimeLayout = time.RFC3339

// WriteCSV writes one or more series sharing the same time base as a CSV
// table with a "time" column followed by one column per series, using the
// given column names. All series must be compatible (same step and length).
func WriteCSV(w io.Writer, names []string, series ...Series) error {
	if len(names) != len(series) {
		return fmt.Errorf("trace: %d names for %d series", len(names), len(series))
	}
	if len(series) == 0 {
		return ErrEmptySeries
	}
	base := series[0]
	for _, s := range series[1:] {
		if err := compatible(base, s); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	header := append([]string{"time"}, names...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(series)+1)
	for i := 0; i < base.Len(); i++ {
		row[0] = base.TimeAt(i).Format(csvTimeLayout)
		for j, s := range series {
			row[j+1] = strconv.FormatFloat(s.Values[i], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV table written by WriteCSV, returning the column names
// and the series. The step is inferred from the first two timestamps; a
// single-row table yields series with zero Step.
func ReadCSV(r io.Reader) ([]string, []Series, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, nil, err
	}
	if len(records) < 2 {
		return nil, nil, fmt.Errorf("trace: CSV has no data rows")
	}
	header := records[0]
	if len(header) < 2 || header[0] != "time" {
		return nil, nil, fmt.Errorf("trace: CSV header must start with \"time\"")
	}
	names := header[1:]
	n := len(records) - 1
	start, err := time.Parse(csvTimeLayout, records[1][0])
	if err != nil {
		return nil, nil, fmt.Errorf("trace: bad timestamp %q: %w", records[1][0], err)
	}
	var step time.Duration
	if n > 1 {
		second, err := time.Parse(csvTimeLayout, records[2][0])
		if err != nil {
			return nil, nil, fmt.Errorf("trace: bad timestamp %q: %w", records[2][0], err)
		}
		step = second.Sub(start)
		if step <= 0 {
			return nil, nil, ErrBadStep
		}
	}
	series := make([]Series, len(names))
	for j := range series {
		series[j] = New(start, step, n)
	}
	for i := 1; i < len(records); i++ {
		rec := records[i]
		if len(rec) != len(header) {
			return nil, nil, fmt.Errorf("trace: row %d has %d fields, want %d", i, len(rec), len(header))
		}
		for j := range names {
			v, err := strconv.ParseFloat(rec[j+1], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("trace: row %d col %s: %w", i, names[j], err)
			}
			series[j].Values[i-1] = v
		}
	}
	return names, series, nil
}

// seriesJSON is the JSON wire form of a Series.
type seriesJSON struct {
	Start  time.Time `json:"start"`
	StepMS int64     `json:"step_ms"`
	Values []float64 `json:"values"`
}

// MarshalJSON implements json.Marshaler.
func (s Series) MarshalJSON() ([]byte, error) {
	return json.Marshal(seriesJSON{Start: s.Start, StepMS: s.Step.Milliseconds(), Values: s.Values})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Series) UnmarshalJSON(data []byte) error {
	var sj seriesJSON
	if err := json.Unmarshal(data, &sj); err != nil {
		return err
	}
	s.Start = sj.Start
	s.Step = time.Duration(sj.StepMS) * time.Millisecond
	s.Values = sj.Values
	return nil
}
