// Package battery models chemical energy storage — the alternative the
// Virtual Battery paper argues against (§1: grid-scale battery capacity is
// ~0.4% of US solar+wind capacity; §2.3 considers small batteries only as a
// gap-filler). It lets the repository quantify the comparison the paper
// makes qualitatively: how much physical storage would be needed to deliver
// the same stable power as a multi-VB site group, and what it would cost.
package battery

import (
	"fmt"
	"math"

	"github.com/vbcloud/vb/internal/trace"
)

// Config describes a battery energy storage system.
type Config struct {
	// CapacityMWh is the usable energy capacity.
	CapacityMWh float64
	// PowerMW limits charge and discharge rate.
	PowerMW float64
	// RoundTripEfficiency is the AC-to-AC round-trip efficiency
	// (typically ~0.85 for Li-ion). Charging stores energy x sqrt(eff);
	// discharging delivers stored x sqrt(eff).
	RoundTripEfficiency float64
	// InitialChargeFraction is the starting state of charge in [0, 1].
	InitialChargeFraction float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.CapacityMWh <= 0 {
		return fmt.Errorf("battery: non-positive capacity %v", c.CapacityMWh)
	}
	if c.PowerMW <= 0 {
		return fmt.Errorf("battery: non-positive power limit %v", c.PowerMW)
	}
	if c.RoundTripEfficiency <= 0 || c.RoundTripEfficiency > 1 {
		return fmt.Errorf("battery: round-trip efficiency %v outside (0,1]", c.RoundTripEfficiency)
	}
	if c.InitialChargeFraction < 0 || c.InitialChargeFraction > 1 {
		return fmt.Errorf("battery: initial charge %v outside [0,1]", c.InitialChargeFraction)
	}
	return nil
}

// Result reports a smoothing simulation.
type Result struct {
	// Delivered is the output power series (generation +/- battery).
	Delivered trace.Series
	// SoC is the state of charge (MWh) after each step.
	SoC trace.Series
	// UnservedMWh is demand that could not be met (battery empty).
	UnservedMWh float64
	// SpilledMWh is generation that could not be absorbed (battery full
	// and generation above target).
	SpilledMWh float64
	// CyclesEquivalent is total discharged energy over capacity.
	CyclesEquivalent float64
}

// Smooth simulates the battery firming a generation series (MW) to a
// constant target power (MW): surplus charges the battery, deficits
// discharge it. This is the service a Virtual Battery provides by shifting
// computation instead of electrons.
func Smooth(cfg Config, generation trace.Series, targetMW float64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if generation.IsEmpty() {
		return Result{}, trace.ErrEmptySeries
	}
	if targetMW < 0 {
		return Result{}, fmt.Errorf("battery: negative target %v", targetMW)
	}
	dt := generation.Step.Hours()
	if dt <= 0 {
		return Result{}, trace.ErrBadStep
	}
	// Split round-trip losses evenly between charge and discharge.
	oneWay := math.Sqrt(cfg.RoundTripEfficiency)

	res := Result{
		Delivered: trace.New(generation.Start, generation.Step, generation.Len()),
		SoC:       trace.New(generation.Start, generation.Step, generation.Len()),
	}
	soc := cfg.InitialChargeFraction * cfg.CapacityMWh
	var discharged float64
	for i, gen := range generation.Values {
		delivered := gen
		if gen >= targetMW {
			// Charge with the surplus, limited by power and headroom.
			surplus := gen - targetMW
			charge := minf(surplus, cfg.PowerMW)
			stored := charge * oneWay * dt
			if soc+stored > cfg.CapacityMWh {
				stored = cfg.CapacityMWh - soc
				charge = stored / (oneWay * dt)
			}
			soc += stored
			res.SpilledMWh += (surplus - charge) * dt
			delivered = targetMW
		} else {
			// Discharge to fill the gap, limited by power and charge.
			deficit := targetMW - gen
			discharge := minf(deficit, cfg.PowerMW)
			drawn := discharge / oneWay * dt
			if drawn > soc {
				drawn = soc
				discharge = drawn * oneWay / dt
			}
			soc -= drawn
			discharged += discharge * dt
			delivered = gen + discharge
			if delivered < targetMW {
				res.UnservedMWh += (targetMW - delivered) * dt
			}
		}
		res.Delivered.Values[i] = delivered
		res.SoC.Values[i] = soc
	}
	res.CyclesEquivalent = discharged / cfg.CapacityMWh
	return res, nil
}

// RequiredCapacityMWh finds, by bisection, the smallest battery capacity
// (with the given power limit and efficiency) that firms the generation
// series to targetMW with at most maxUnservedMWh of unserved energy,
// *sustainably*: the battery starts half charged and must end the run at
// or above its initial state of charge, so the answer cannot be gamed by
// draining a huge pre-charged pack. It returns an error when the target is
// not firmable at all (above mean generation net of losses).
func RequiredCapacityMWh(generation trace.Series, targetMW, powerMW, efficiency, maxUnservedMWh float64) (float64, error) {
	feasible := func(cap float64) (bool, error) {
		r, err := Smooth(Config{
			CapacityMWh:           cap,
			PowerMW:               powerMW,
			RoundTripEfficiency:   efficiency,
			InitialChargeFraction: 0.5,
		}, generation, targetMW)
		if err != nil {
			return false, err
		}
		if r.UnservedMWh > maxUnservedMWh {
			return false, nil
		}
		final := r.SoC.Values[r.SoC.Len()-1]
		return final >= 0.5*cap-1e-9, nil
	}
	hi := 1.0
	for i := 0; i < 40; i++ {
		ok, err := feasible(hi)
		if err != nil {
			return 0, err
		}
		if ok {
			break
		}
		hi *= 2
		if hi > 1e9 {
			return 0, fmt.Errorf("battery: target %v MW not firmable (above mean generation?)", targetMW)
		}
	}
	lo := 0.0
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if mid <= 0 {
			break
		}
		ok, err := feasible(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// CostUSD estimates the capital cost of a battery at the given unit price
// (USD per kWh; grid-scale Li-ion is on the order of $300/kWh installed).
func CostUSD(capacityMWh, usdPerKWh float64) float64 {
	return capacityMWh * 1000 * usdPerKWh
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
