package mip

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/vbcloud/vb/internal/lp"
)

// knapsackProblem returns a small binary maximization with a fractional
// relaxation, so branch and bound must actually branch.
func knapsackProblem() Problem {
	// max 5a + 4b + 3c  s.t.  2a + 3b + c <= 3,  binaries.
	return Problem{
		Problem: lp.Problem{
			NumVars:     3,
			Objective:   []float64{5, 4, 3},
			Maximize:    true,
			Constraints: []lp.Constraint{{Coeffs: []float64{2, 3, 1}, Sense: lp.LE, RHS: 3}},
			Upper:       []float64{1, 1, 1},
		},
		Integer: []bool{true, true, true},
	}
}

func TestExpiredDeadlineReturnsWithoutError(t *testing.T) {
	for _, workers := range []int{0, 4} {
		// 1 ns is expired by the first interrupt poll (compilation alone
		// takes microseconds), so the search stops before its first node.
		sol, err := Solve(knapsackProblem(), Options{Deadline: time.Nanosecond, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: expired deadline returned error %v", workers, err)
		}
		if !sol.DeadlineExceeded {
			t.Fatalf("workers=%d: DeadlineExceeded not set", workers)
		}
		if sol.Proven {
			t.Fatalf("workers=%d: truncated search claims proven optimality", workers)
		}
	}
}

func TestCanceledContextBehavesLikeDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := Solve(knapsackProblem(), Options{Ctx: ctx})
	if err != nil {
		t.Fatalf("canceled ctx returned error %v", err)
	}
	if !sol.DeadlineExceeded || sol.Proven {
		t.Fatalf("canceled ctx: DeadlineExceeded=%v Proven=%v, want true/false", sol.DeadlineExceeded, sol.Proven)
	}
}

func TestDeadlineKeepsIncumbentAndClearsWarmHook(t *testing.T) {
	// Generous deadline: the tiny knapsack solves to optimality well within
	// it, proving an armed-but-unexpired deadline changes nothing.
	ws := &WarmState{}
	sol, err := Solve(knapsackProblem(), Options{Deadline: time.Hour, Warm: ws})
	if err != nil {
		t.Fatal(err)
	}
	if sol.DeadlineExceeded || !sol.Proven || sol.Status != lp.Optimal {
		t.Fatalf("unexpired deadline perturbed solve: %+v", sol)
	}
	if sol.Objective != 8 { // a=1, c=1
		t.Fatalf("objective = %v, want 8", sol.Objective)
	}
	// The warm instance must not retain the old interrupt hook: a
	// subsequent solve with no deadline must run to optimality.
	sol2, err := Solve(knapsackProblem(), Options{Warm: ws})
	if err != nil {
		t.Fatal(err)
	}
	if !sol2.WarmHit {
		t.Fatal("warm state not reused")
	}
	if sol2.DeadlineExceeded || !sol2.Proven {
		t.Fatalf("stale interrupt hook leaked into warm successor: %+v", sol2)
	}
}

func TestTruncatedSearchKeepsIncumbent(t *testing.T) {
	// MaxNodes = 3 lets the root and its two children run: enough to find
	// an integer incumbent on this problem but not to exhaust the tree on
	// harder ones. The incumbent must surface with Proven unset or the
	// bound prune must have finished the tree; either way no error and a
	// usable X.
	sol, err := Solve(knapsackProblem(), Options{MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == lp.Optimal && sol.X == nil {
		t.Fatal("optimal status without solution vector")
	}
	if sol.Nodes > 3 {
		t.Fatalf("explored %d nodes past the cap", sol.Nodes)
	}
}

func TestSolveRelaxationRounded(t *testing.T) {
	// The knapsack relaxation is fractional; rounding b down keeps the
	// repair feasible: a=1, b rounds from fractional, c=1.
	sol, err := SolveRelaxationRounded(knapsackProblem(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal {
		t.Fatalf("repair status %v, want Optimal", sol.Status)
	}
	if sol.Proven {
		t.Fatal("a rounding repair must never claim proven optimality")
	}
	for i, v := range sol.X {
		if v != math.Round(v) {
			t.Fatalf("X[%d] = %v is not integral", i, v)
		}
	}
	// Feasibility: 2a + 3b + c <= 3.
	if got := 2*sol.X[0] + 3*sol.X[1] + sol.X[2]; got > 3+1e-9 {
		t.Fatalf("repair violates knapsack row: %v > 3", got)
	}

	// Reference path agrees on feasibility.
	ref, err := SolveRelaxationRounded(knapsackProblem(), Options{Reference: true})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Status != lp.Optimal {
		t.Fatalf("reference repair status %v, want Optimal", ref.Status)
	}
	if got := 2*ref.X[0] + 3*ref.X[1] + ref.X[2]; got > 3+1e-9 {
		t.Fatalf("reference repair violates knapsack row: %v > 3", got)
	}
}

func TestSolveRelaxationRoundedInfeasibleRounding(t *testing.T) {
	// Two binaries, y0 + y1 >= 1 but y0 + y1 <= 1, cost symmetric — the
	// relaxation can sit at (0.5, 0.5); forcing both up via >= 0.5 each
	// makes every rounding violate y0 + y1 <= 1.
	p := Problem{
		Problem: lp.Problem{
			NumVars:   2,
			Objective: []float64{1, 1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 0}, Sense: lp.GE, RHS: 0.5},
				{Coeffs: []float64{0, 1}, Sense: lp.GE, RHS: 0.5},
				{Coeffs: []float64{1, 1}, Sense: lp.LE, RHS: 1},
			},
			Upper: []float64{1, 1},
		},
		Integer: []bool{true, true},
	}
	sol, err := SolveRelaxationRounded(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == lp.Optimal {
		t.Fatalf("impossible rounding reported Optimal with X=%v", sol.X)
	}
}

func TestDeadlineMidSearchKeepsBestIncumbent(t *testing.T) {
	// A larger knapsack where the search takes many nodes: fire the
	// interrupt via an already-canceled context after seeding an incumbent
	// through a tiny node budget, then confirm a full run under a
	// mid-flight cancel still returns cleanly at every worker count.
	n := 14
	obj := make([]float64, n)
	row := make([]float64, n)
	upper := make([]float64, n)
	integer := make([]bool, n)
	for i := 0; i < n; i++ {
		obj[i] = float64(3 + (i*7)%11)
		row[i] = float64(2 + (i*5)%7)
		upper[i] = 1
		integer[i] = true
	}
	p := Problem{
		Problem: lp.Problem{
			NumVars:     n,
			Objective:   obj,
			Maximize:    true,
			Constraints: []lp.Constraint{{Coeffs: row, Sense: lp.LE, RHS: 17}},
			Upper:       upper,
		},
		Integer: integer,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Microsecond)
		cancel()
	}()
	for _, workers := range []int{0, 2} {
		sol, err := Solve(p, Options{Ctx: ctx, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Whatever the race between cancel and completion, the result is
		// either a finished search or a truncated one with the flag set.
		if !sol.Proven && !sol.DeadlineExceeded && sol.Nodes < 200000 {
			t.Fatalf("workers=%d: unproven, un-truncated result: %+v", workers, sol)
		}
	}
}
