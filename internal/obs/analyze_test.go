package obs

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// emitWorkload drives a tracer through a representative mix of events and
// returns them for comparison.
func emitWorkload(tr *Tracer) {
	tr.Emit(Event{Type: PlanComputed, Step: 0, App: 1, Site: -1, Dst: -1, Cores: 100})
	tr.Emit(Event{Type: MIPSolveFinish, Step: 0, App: 1, Site: -1, Dst: -1, DurNS: 4e6, Detail: "cold"})
	tr.Emit(Event{Type: PlannedRealloc, Step: 1, App: 1, Site: 0, Dst: 1, Cores: 40, GB: 160.25})
	tr.Emit(Event{Type: ForcedMigration, Step: 2, App: 2, Site: 1, Dst: 0, Cores: 10, GB: 33.5})
	tr.Emit(Event{Type: VMMoved, Step: 2, App: 2, Site: 1, Dst: 2, VM: 7, GB: 8})
	tr.Emit(Event{Type: MIPSolveFinish, Step: 3, App: 1, Site: -1, Dst: -1, DurNS: 1e6, Detail: "warm"})
	tr.Emit(Event{Type: MIPSolveFinish, Step: 4, App: 2, Site: -1, Dst: -1, DurNS: 2e6, Detail: "warm"})
	tr.Emit(Event{Type: Shortfall, Step: 5, App: 2, Site: -1, Dst: -1, Cores: 12.75})
}

func TestAnalyzeReconcilesWithTracerStats(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(4) // smaller than the workload: wrap must not matter
	tr.SetSink(&buf)
	emitWorkload(tr)

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	a := Analyze(events)
	if a.Events != 8 {
		t.Errorf("events = %d, want 8", a.Events)
	}
	// Bit-exact: the analyzer's per-type stats equal the live tracer's.
	if !reflect.DeepEqual(a.Types, tr.AllStats()) {
		t.Errorf("analysis types = %+v\ntracer stats = %+v", a.Types, tr.AllStats())
	}
	if a.Apps[1].Count != 4 || a.Apps[2].Count != 4 {
		t.Errorf("app stats = %+v", a.Apps)
	}
	if a.Sites[1].GB != 33.5+8 {
		t.Errorf("site 1 GB = %v, want 41.5", a.Sites[1].GB)
	}
	wantFlows := map[FlowKey]float64{
		{Src: 0, Dst: 1}: 160.25,
		{Src: 1, Dst: 0}: 33.5,
		{Src: 1, Dst: 2}: 8,
	}
	if !reflect.DeepEqual(a.Flows, wantFlows) {
		t.Errorf("flows = %+v, want %+v", a.Flows, wantFlows)
	}
	if a.WarmSolves != 2 || a.ColdSolves != 1 {
		t.Errorf("warm/cold = %d/%d, want 2/1", a.WarmSolves, a.ColdSolves)
	}
	if got := a.WarmHitRate(); got != 2.0/3.0 {
		t.Errorf("hit rate = %v, want 2/3", got)
	}
	if got := a.SolveQuantile(0); got != time.Duration(1e6) {
		t.Errorf("min solve = %v", got)
	}
	if got := a.SolveQuantile(1); got != time.Duration(4e6) {
		t.Errorf("max solve = %v", got)
	}
	if got := a.SolveQuantile(0.5); got != time.Duration(2e6) {
		t.Errorf("median solve = %v", got)
	}

	var text strings.Builder
	if err := a.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"8 events", "forced_migration", "app 1", "site 0", "migration flows", "solver: 3 solves", "2 warm / 1 cold"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("report missing %q:\n%s", want, text.String())
		}
	}
}

func TestAnalyzeEmptyStream(t *testing.T) {
	a := Analyze(nil)
	if a.Events != 0 || len(a.Types) != 0 {
		t.Errorf("empty analysis = %+v", a)
	}
	if a.SolveQuantile(0.5) != 0 || a.WarmHitRate() != 0 {
		t.Error("empty analysis quantile/hit-rate should be 0")
	}
	var text strings.Builder
	if err := a.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "0 events") {
		t.Errorf("report = %q", text.String())
	}
}

// TestRingWrapBoundaries pins the ring behavior at the wrap boundary:
// exactly size, size+1 and 2*size emissions, with exact TypeStats at each.
func TestRingWrapBoundaries(t *testing.T) {
	const size = 8
	for _, n := range []int{size, size + 1, 2 * size} {
		tr := NewTracer(size)
		for i := 0; i < n; i++ {
			tr.Emit(Event{Type: SiteStep, Step: i, Site: 0, Dst: -1, GB: 1.5, Cores: 2})
		}
		ev := tr.Events()
		wantLen := n
		if wantLen > size {
			wantLen = size
		}
		if len(ev) != wantLen {
			t.Fatalf("n=%d: ring holds %d events, want %d", n, len(ev), wantLen)
		}
		// Oldest-first, ending with the most recent emission.
		for i, e := range ev {
			wantStep := n - wantLen + i
			if e.Step != wantStep || e.Seq != int64(wantStep) {
				t.Errorf("n=%d: ring[%d] = step %d seq %d, want %d", n, i, e.Step, e.Seq, wantStep)
			}
		}
		s := tr.Stats(SiteStep)
		if s.Count != int64(n) || s.GB != 1.5*float64(n) || s.Cores != 2*float64(n) {
			t.Errorf("n=%d: stats = %+v, want exact totals over all %d emissions", n, s, n)
		}
	}
}

func TestReadEventsTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(8)
	tr.SetSink(&buf)
	tr.Emit(Event{Type: PlannedRealloc, Step: 0, Site: 0, Dst: 1, GB: 5})
	tr.Emit(Event{Type: ForcedMigration, Step: 1, Site: 1, Dst: 0, GB: 7})
	full := buf.Bytes()

	// A crash mid-write leaves a partial final record with no newline.
	firstLen := bytes.IndexByte(full, '\n') + 1
	truncated := full[:firstLen+10]
	events, err := ReadEvents(bytes.NewReader(truncated))
	if len(events) != 1 || events[0].Type != PlannedRealloc {
		t.Fatalf("recovered %d events (%+v), want the 1 intact record", len(events), events)
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if pe.Line != 2 || pe.Offset != int64(firstLen) {
		t.Errorf("ParseError at line %d byte %d, want line 2 byte %d", pe.Line, pe.Offset, firstLen)
	}
	if !strings.Contains(pe.Error(), "truncated record") {
		t.Errorf("error %q should name the truncation", pe.Error())
	}

	// Garbage in the middle: everything before it is still returned.
	corrupt := append(append([]byte{}, full[:firstLen]...), []byte("{not json}\n")...)
	corrupt = append(corrupt, full[firstLen:]...)
	events, err = ReadEvents(bytes.NewReader(corrupt))
	if len(events) != 1 {
		t.Fatalf("recovered %d events before corrupt line, want 1", len(events))
	}
	if !errors.As(err, &pe) || pe.Line != 2 {
		t.Errorf("corrupt line error = %v, want ParseError at line 2", err)
	}

	// Blank lines are skipped, not errors.
	spaced := append(append([]byte{}, full[:firstLen]...), '\n', '\n')
	spaced = append(spaced, full[firstLen:]...)
	events, err = ReadEvents(bytes.NewReader(spaced))
	if err != nil || len(events) != 2 {
		t.Errorf("blank lines: %d events err=%v, want 2 nil", len(events), err)
	}

	// A trailing newline-free but COMPLETE record still decodes.
	noNL := bytes.TrimSuffix(full, []byte("\n"))
	events, err = ReadEvents(bytes.NewReader(noNL))
	if err != nil || len(events) != 2 {
		t.Errorf("no trailing newline: %d events err=%v, want 2 nil", len(events), err)
	}
}

func TestReadEventsPositionsLaterLines(t *testing.T) {
	var b strings.Builder
	var offsets []int64
	for i := 0; i < 5; i++ {
		offsets = append(offsets, int64(b.Len()))
		fmt.Fprintf(&b, `{"seq":%d,"type":"site_step","step":%d,"app":-1,"site":0,"dst":-1}`+"\n", i, i)
	}
	bad := int64(b.Len())
	b.WriteString("xx\n")
	events, err := ReadEvents(strings.NewReader(b.String()))
	if len(events) != 5 {
		t.Fatalf("recovered %d events, want 5", len(events))
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if pe.Line != 6 || pe.Offset != bad {
		t.Errorf("ParseError at line %d byte %d, want line 6 byte %d", pe.Line, pe.Offset, bad)
	}
	_ = offsets
}
