#!/usr/bin/env bash
# Trace v2 smoke at the binary level: generate a cohort application trace
# from the bundled bursty spec, record it through both CLIs, replay it, and
# require (a) the two recordings to be byte-identical, (b) the replayed
# per-SLO-class table to be byte-identical to the generated run's, and
# (c) the replay to be invariant under the solver worker count.
set -euo pipefail
cd "$(dirname "$0")/.."

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

go build -o "$dir/vbsim" ./cmd/vbsim
go build -o "$dir/vbtrace" ./cmd/vbtrace

spec=examples/cohorts/bursty.json

# The spec alone determines the trace: vbtrace's emitter and vbsim's
# -record path must produce byte-identical v2 JSONL.
"$dir/vbtrace" -workload "$spec" > "$dir/trace_a.jsonl"
"$dir/vbsim" -days 3 -workload "$spec" -record "$dir/trace_b.jsonl" > "$dir/live.out"
cmp "$dir/trace_a.jsonl" "$dir/trace_b.jsonl"

# Replaying the recording reproduces the generated run's table bit for bit
# (the replay prints one extra header line naming the trace).
"$dir/vbsim" -days 3 -replay "$dir/trace_a.jsonl" > "$dir/replay.out"
tail -n +2 "$dir/replay.out" | cmp - "$dir/live.out"

# ...at any parallelism: worker count must not leak into the results.
"$dir/vbsim" -days 3 -parallel 1 -replay "$dir/trace_a.jsonl" > "$dir/replay_p1.out"
"$dir/vbsim" -days 3 -parallel 4 -replay "$dir/trace_a.jsonl" > "$dir/replay_p4.out"
cmp "$dir/replay_p1.out" "$dir/replay.out"
cmp "$dir/replay_p4.out" "$dir/replay.out"

echo "trace smoke OK: record/replay tables byte-identical across worker counts"
