package vb

import (
	"fmt"
	"strings"
	"time"

	"github.com/vbcloud/vb/internal/core"
	"github.com/vbcloud/vb/internal/sim"
	"github.com/vbcloud/vb/internal/stats"
	"github.com/vbcloud/vb/internal/workload"
)

// DefaultCohortSpec returns the SLO-class experiment's cohort mix: four firm
// SLO classes plus a degradable spot cohort, with one deliberately bursty
// stream — the interactive web cohort's Gamma(0.5) renewal process clumps
// arrivals far beyond Poisson, stressing the degradation ladder when a clump
// lands on a capacity dip.
func DefaultCohortSpec(seed uint64, start time.Time, days int, appsPerDay float64) TraceSpec {
	return TraceSpec{
		Version:          workload.TraceSpecVersion,
		Seed:             seed,
		Start:            start,
		DurationHours:    float64(days) * 24,
		AppsPerDay:       appsPerDay,
		DiurnalAmplitude: 0.35,
		Cohorts: []CohortSpec{
			{Name: "api", Class: "realtime", RateShare: 0.25,
				Process: workload.ProcessPoisson, SizeMix: "small", MeanVMsPerApp: 40},
			{Name: "web", Class: "interactive", RateShare: 0.30,
				Process: workload.ProcessGamma, Shape: 0.5, MeanVMsPerApp: 60},
			{Name: "analytics", Class: "batch", RateShare: 0.20,
				Process: workload.ProcessWeibull, Shape: 0.6, SizeMix: "large",
				MeanVMsPerApp: 80, MedianLifetimeHours: 24},
			{Name: "baseline", Class: "stable", RateShare: 0.15, MeanVMsPerApp: 60},
			{Name: "spot", Class: "degradable", RateShare: 0.10,
				SizeMix: "small", MeanVMsPerApp: 30},
		},
	}
}

// SLOClassSetup parameterizes the per-class availability experiment; the
// zero value is the default: the Table 1 trio, seven days, all four
// policies, DefaultCohortSpec.
type SLOClassSetup struct {
	// Seed drives all randomness (0 = DefaultSeed).
	Seed uint64
	// Days is the simulated span (0 = 7).
	Days int
	// AppsPerDay is the total application arrival rate across cohorts
	// (0 = 6, the Table 1 rate).
	AppsPerDay float64
	// Spec overrides the cohort mix (nil = DefaultCohortSpec). A non-nil
	// spec is used as given: its own seed, window and rate apply.
	Spec *TraceSpec
	// Policies restricts which policies run (nil = all four).
	Policies []Policy
	// Faults, when non-nil, injects scripted faults into every policy run.
	Faults *FaultScript
	// Obs, when non-nil, observes the runs.
	Obs *MetricsRegistry
}

// SLOClassRow is one (policy, class) cell: the class's demand, violations,
// availability and migration traffic under that policy.
type SLOClassRow struct {
	Policy Policy
	Class  WorkloadClass
	// DemandCoreSteps is the class's firm demand integrated over steps.
	DemandCoreSteps float64
	// PausedCoreSteps and ShortfallCoreSteps are the class's availability
	// violations (pro rata across multi-class apps by firm core share).
	PausedCoreSteps    float64
	ShortfallCoreSteps float64
	// Availability is 1 - (paused+shortfall)/demand, clamped to [0, 1].
	Availability float64
	// TransferGB is the class's share of migration traffic; P99GB is the
	// 99th percentile of its per-step transfer.
	TransferGB float64
	P99GB      float64
}

// SLOClassResult is the per-class policy comparison over a cohort trace.
type SLOClassResult struct {
	// Rows hold one entry per (policy, demand-bearing class), policies in
	// run order, classes in ladder order.
	Rows []SLOClassRow
	// Spec is the cohort mix the trace was generated from.
	Spec TraceSpec
	// Apps counts the generated applications.
	Apps int
}

func (s SLOClassSetup) withDefaults() SLOClassSetup {
	if s.Seed == 0 {
		s.Seed = DefaultSeed
	}
	if s.Days == 0 {
		s.Days = 7
	}
	if s.AppsPerDay == 0 {
		s.AppsPerDay = 6
	}
	if s.Policies == nil {
		s.Policies = core.AllPolicies()
	}
	return s
}

// spec resolves the setup's cohort mix.
func (s SLOClassSetup) spec() TraceSpec {
	if s.Spec != nil {
		return *s.Spec
	}
	return DefaultCohortSpec(s.Seed+1, table1Start, s.Days, s.AppsPerDay)
}

// SLOClassComparison generates a cohort trace with mixed SLO classes and
// runs the Table 1 policies over it, reporting per-class availability and
// migration traffic. The degradation ladder pauses Batch before Interactive
// before RealTime, so the per-class availabilities should stratify by class
// even though every cohort shares the same sites and power.
func SLOClassComparison(setup SLOClassSetup) (SLOClassResult, error) {
	setup = setup.withDefaults()
	spec := setup.spec()
	apps, err := workload.GenerateCohorts(spec)
	if err != nil {
		return SLOClassResult{}, err
	}
	return sloClassOverApps(setup, spec, apps)
}

// SLOClassReplay runs the per-class policy comparison over a recorded
// application trace (see ReadAppTrace) instead of generating one. The power
// world is the same as SLOClassComparison's at the same seed and day count,
// so replaying a trace recorded from setup.spec() reproduces the generated
// run's rows bit for bit.
func SLOClassReplay(setup SLOClassSetup, apps []App) (SLOClassResult, error) {
	setup = setup.withDefaults()
	return sloClassOverApps(setup, setup.spec(), apps)
}

// sloClassOverApps is the shared core: power + forecasts for the Table 1
// trio, the given applications, one run per policy, per-class rows.
func sloClassOverApps(setup SLOClassSetup, spec TraceSpec, apps []workload.App) (SLOClassResult, error) {
	demands, err := appDemands(apps)
	if err != nil {
		return SLOClassResult{}, err
	}
	ts := Table1Setup{Seed: setup.Seed, Days: setup.Days, Obs: setup.Obs}.withDefaults()
	trio := EuropeanTrio()
	actual, bundles, err := buildGroupPower(ts, spec.Start, trio)
	if err != nil {
		return SLOClassResult{}, err
	}
	in := sim.Input{
		Actual:     actual,
		Bundles:    bundles,
		TotalCores: float64(DefaultClusterConfig().TotalCores()),
		Apps:       demands,
		Obs:        setup.Obs,
	}
	if setup.Faults != nil {
		inj, err := NewFaultInjector(setup.Faults, len(trio), actual[0].Len())
		if err != nil {
			return SLOClassResult{}, err
		}
		in.Faults = inj
	}

	res := SLOClassResult{Spec: spec, Apps: len(apps)}
	for _, pol := range setup.Policies {
		cfg := core.Config{
			Policy:         pol,
			PlanStep:       Table1PlanStep,
			UtilTarget:     ts.UtilTarget,
			MaxSitesPerApp: ts.MaxSitesPerApp,
			Obs:            setup.Obs,
		}
		r, err := sim.Run(cfg, in)
		if err != nil {
			return SLOClassResult{}, fmt.Errorf("vb: slo classes, policy %v: %w", pol, err)
		}
		for _, c := range r.Classes() {
			row := SLOClassRow{
				Policy:             pol,
				Class:              c,
				DemandCoreSteps:    r.DemandByClass[c],
				PausedCoreSteps:    r.PausedByClass[c],
				ShortfallCoreSteps: r.ShortfallByClass[c],
				Availability:       r.ClassAvailability(c),
			}
			if s, ok := r.TransferByClass[c]; ok {
				sum, err := stats.Summarize(s.Values)
				if err != nil {
					return SLOClassResult{}, err
				}
				row.TransferGB = sum.Total
				row.P99GB = sum.P99
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Report renders the per-class table grouped by policy.
func (r SLOClassResult) Report() string {
	var b strings.Builder
	bursty := ""
	for _, c := range r.Spec.Cohorts {
		if c.Process == workload.ProcessGamma || c.Process == workload.ProcessWeibull {
			bursty = fmt.Sprintf(" (bursty: %s %s k=%g)", c.Name, c.Process, c.Shape)
			break
		}
	}
	fmt.Fprintf(&b, "SLO classes: per-class availability over %d cohort apps%s\n", r.Apps, bursty)
	b.WriteString("  Policy    Class        Avail%    Paused    Short     Out-GB    p99-GB\n")
	last := Policy(-1)
	for _, row := range r.Rows {
		if row.Policy != last && last != Policy(-1) {
			b.WriteString("\n")
		}
		last = row.Policy
		fmt.Fprintf(&b, "  %-9s %-12s %7.3f%% %-9.0f %-9.0f %-9.0f %-9.1f\n",
			row.Policy, row.Class, row.Availability*100,
			row.PausedCoreSteps, row.ShortfallCoreSteps, row.TransferGB, row.P99GB)
	}
	return b.String()
}
