package lp

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Instance state serialization for crash recovery of long-lived schedulers.
//
// A warm-started solve's pivot path — and therefore which of several
// alternate optimal vertices it returns — depends on the exact numeric
// state the previous solve left behind: the basis, the nonbasic variable
// statuses, the product-form basis inverse, and the incrementally
// maintained reduced costs. Snapshotting a daemon mid-run therefore has to
// round-trip all of it bit-exactly, or a restored process replans onto
// different (equally optimal, but different) vertices than the
// uninterrupted one would. Gob encodes float64 by bit pattern, so the
// round trip is exact, infinities included.

// instanceState mirrors every Instance field that outlives a solve. The
// scratch arrays (accum, w, y, cb1) are overwritten before every use and
// are reallocated empty on decode.
type instanceState struct {
	M, NStruct int
	Maximize   bool

	Cmin, B        []float64
	Senses         []Sense
	BaseLo, BaseHi []float64

	ColPtr, ColRow []int32
	ColVal         []float64
	RowPtr, RowCol []int32
	RowVal         []float64

	Lo, Hi    []float64
	Basis     []int32
	Vstat     []int8
	Binv      []float64
	BinvIdent bool
	XB        []float64
	Ready     bool
	D         []float64
	DExact    bool

	Pivots int64
}

// GobEncode serializes the compiled problem and the warm solver state.
func (in *Instance) GobEncode() ([]byte, error) {
	st := instanceState{
		M: in.m, NStruct: in.nStruct, Maximize: in.maximize,
		Cmin: in.cmin, B: in.b, Senses: in.senses,
		BaseLo: in.baseLo, BaseHi: in.baseHi,
		ColPtr: in.colPtr, ColRow: in.colRow, ColVal: in.colVal,
		RowPtr: in.rowPtr, RowCol: in.rowCol, RowVal: in.rowVal,
		Lo: in.lo, Hi: in.hi,
		Basis: in.basis, Vstat: in.vstat,
		Binv: in.binv, BinvIdent: in.binvIdent,
		XB: in.xB, Ready: in.ready,
		D: in.d, DExact: in.dExact,
		Pivots: in.pivots,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("lp: encoding instance: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode restores an instance serialized by GobEncode. The decoded
// instance solves exactly as the original would have: same warm basis,
// same inverse, same reduced costs, hence the same pivot path.
func (in *Instance) GobDecode(b []byte) error {
	var st instanceState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return fmt.Errorf("lp: decoding instance: %w", err)
	}
	m, ns := st.M, st.NStruct
	n := ns + m
	if m < 0 || ns <= 0 {
		return fmt.Errorf("lp: decoded instance has %d rows, %d vars", m, ns)
	}
	for _, c := range []struct {
		name string
		got  int
		want int
	}{
		{"cmin", len(st.Cmin), n}, {"b", len(st.B), m}, {"senses", len(st.Senses), m},
		{"baseLo", len(st.BaseLo), n}, {"baseHi", len(st.BaseHi), n},
		{"colPtr", len(st.ColPtr), ns + 1}, {"rowPtr", len(st.RowPtr), m + 1},
		{"lo", len(st.Lo), n}, {"hi", len(st.Hi), n},
		{"basis", len(st.Basis), m}, {"vstat", len(st.Vstat), n},
		{"binv", len(st.Binv), m * m}, {"xB", len(st.XB), m}, {"d", len(st.D), n},
	} {
		if c.got != c.want {
			return fmt.Errorf("lp: decoded instance %s has %d entries, want %d", c.name, c.got, c.want)
		}
	}
	*in = Instance{
		m: m, nStruct: ns, n: n, maximize: st.Maximize,
		cmin: st.Cmin, b: st.B, senses: st.Senses,
		baseLo: st.BaseLo, baseHi: st.BaseHi,
		colPtr: st.ColPtr, colRow: st.ColRow, colVal: st.ColVal,
		rowPtr: st.RowPtr, rowCol: st.RowCol, rowVal: st.RowVal,
		lo: st.Lo, hi: st.Hi,
		basis: st.Basis, vstat: st.Vstat,
		binv: st.Binv, binvIdent: st.BinvIdent,
		xB: st.XB, ready: st.Ready,
		d: st.D, dExact: st.DExact,
		pivots: st.Pivots,
		accum:  make([]float64, m),
		w:      make([]float64, m),
		y:      make([]float64, m),
		cb1:    make([]int8, m),
	}
	return nil
}
