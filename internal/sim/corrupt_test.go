package sim

import (
	"bytes"
	"strings"
	"testing"

	"github.com/vbcloud/vb/internal/cluster"
	"github.com/vbcloud/vb/internal/core"
)

// corruptFixture builds a small mid-run engine snapshot to damage.
func corruptFixture(t *testing.T) (core.Config, Input, cluster.Config, []byte) {
	t.Helper()
	in, apps := vmLevelFixtures(t, 2)
	cfg := simConfig(core.MIP)
	ccfg := cluster.DefaultConfig()
	eng, err := NewVMEngine(cfg, in, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := vmBatchArrivals(in, apps)
	sortArrivals(arrivals)
	next := 0
	for i := 0; i < 3 && !eng.Done(); i++ {
		now := eng.Now()
		var batch []AppArrival
		for next < len(arrivals) && !arrivals[next].Demand.Start.After(now) {
			batch = append(batch, arrivals[next])
			next++
		}
		if _, err := eng.Advance(batch); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := eng.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	return cfg, in, ccfg, snap.Bytes()
}

// TestRestoreTruncatedSnapshot sweeps truncation points across the whole
// snapshot: every strict prefix must restore to a positioned error (the
// byte offset where decoding died), never a panic and never silent success.
func TestRestoreTruncatedSnapshot(t *testing.T) {
	cfg, in, ccfg, data := corruptFixture(t)
	if _, err := RestoreVMEngine(cfg, in, ccfg, bytes.NewReader(data)); err != nil {
		t.Fatalf("pristine snapshot failed to restore: %v", err)
	}
	stride := len(data)/64 + 1
	for n := 0; n < len(data); n += stride {
		_, err := RestoreVMEngine(cfg, in, ccfg, bytes.NewReader(data[:n]))
		if err == nil {
			t.Fatalf("truncated snapshot (%d of %d bytes) restored without error", n, len(data))
		}
		if !strings.Contains(err.Error(), "byte") {
			t.Fatalf("truncation at %d bytes: error %q carries no byte position", n, err)
		}
	}
}

// TestRestoreBitFlippedSnapshot flips one bit at strided positions across
// the snapshot. Any outcome except a panic is acceptable: most flips must
// error (gob framing, fingerprint, or range validation), and a flip that
// happens to decode must still yield an engine that can step without
// crashing.
func TestRestoreBitFlippedSnapshot(t *testing.T) {
	cfg, in, ccfg, data := corruptFixture(t)
	stride := len(data)/96 + 1
	survived, flips := 0, 0
	for pos := 0; pos < len(data); pos += stride {
		for _, mask := range []byte{0x01, 0x80} {
			flips++
			mut := append([]byte(nil), data...)
			mut[pos] ^= mask
			eng, err := RestoreVMEngine(cfg, in, ccfg, bytes.NewReader(mut))
			if err != nil {
				continue
			}
			survived++
			if !eng.Done() {
				if _, err := eng.Advance(nil); err != nil {
					continue // a decodable-but-bogus state may error on step; fine
				}
			}
		}
	}
	// Sanity: the sweep must actually have exercised the error paths (a
	// snapshot where every flip decodes would mean gob framing is not being
	// checked at all). The bound is proportional and loose on purpose: the
	// payload is dominated by float64 plan/transfer values whose bit flips
	// decode fine (just to different numbers), and gob's randomized map
	// iteration order shifts the byte layout between runs, so the survivor
	// count jitters. Roughly half the flips survive in practice; more than
	// three quarters would mean the framing/descriptor checks went inert.
	if survived > flips*3/4 {
		t.Fatalf("%d of %d bit flips restored successfully; corruption detection looks inert", survived, flips)
	}
}
