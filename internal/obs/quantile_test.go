package obs

import (
	"math"
	"testing"
)

func TestQuantileEdgeCases(t *testing.T) {
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	r := NewRegistry()
	r.NewHistogram("h", []float64{10, 20})
	r.Observe("h", 15)
	s, _ := r.Histogram("h")
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 15 {
			t.Errorf("single-observation Quantile(%v) = %v, want 15", q, got)
		}
	}
}

func TestQuantileClampsToObservedRange(t *testing.T) {
	r := NewRegistry()
	r.NewHistogram("h", []float64{100})
	// Both observations land in the first bucket (-inf, 100], whose
	// interpolation span is [Min, 100]; results must stay within [3, 7].
	r.Observe("h", 3)
	r.Observe("h", 7)
	s, _ := r.Histogram("h")
	if got := s.Quantile(0); got != 3 {
		t.Errorf("Quantile(0) = %v, want Min 3", got)
	}
	if got := s.Quantile(1); got != 7 {
		t.Errorf("Quantile(1) = %v, want Max 7", got)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if got := s.Quantile(q); got < 3 || got > 7 {
			t.Errorf("Quantile(%v) = %v, outside observed [3, 7]", q, got)
		}
	}
}

func TestQuantileInterpolatesWithinBucket(t *testing.T) {
	r := NewRegistry()
	r.NewHistogram("h", []float64{1, 2, 4})
	// 4 observations, one per bucket incl. overflow: min 0.5, max 8.
	for _, v := range []float64{0.5, 1.5, 3, 8} {
		r.Observe("h", v)
	}
	s, _ := r.Histogram("h")
	// rank(0.5)=2 lands at the top of bucket (1,2]: lo+(hi-lo)*(2-1)/1 = 2.
	if got := s.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %v, want 2", got)
	}
	// rank(0.75)=3 tops bucket (2,4]: 4.
	if got := s.Quantile(0.75); got != 4 {
		t.Errorf("Quantile(0.75) = %v, want 4", got)
	}
	// rank(0.9)=3.6 is 0.6 into the overflow bucket (4, Max=8]: 4+4*0.6.
	if got, want := s.Quantile(0.9), 4+4*0.6; math.Abs(got-want) > 1e-9 {
		t.Errorf("Quantile(0.9) = %v, want %v", got, want)
	}
	// Monotone in q.
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: q=%v gives %v after %v", q, v, prev)
		}
		prev = v
	}
}

// TestQuantileEmptyBounds is the regression test for the empty-bounds
// panic: NewHistogram(name, nil) is legal and yields a single overflow
// bucket, which used to index Bounds[-1] when a mid-range rank landed in
// it. With no bounds every quantile interpolates within [Min, Max].
func TestQuantileEmptyBounds(t *testing.T) {
	r := NewRegistry()
	r.NewHistogram("h", nil)
	for _, v := range []float64{2, 4, 6, 8} {
		r.Observe("h", v)
	}
	s, _ := r.Histogram("h")
	if len(s.Bounds) != 0 {
		t.Fatalf("nil-bounds histogram reports %d bounds", len(s.Bounds))
	}
	if got := s.Quantile(0); got != 2 {
		t.Errorf("Quantile(0) = %v, want Min 2", got)
	}
	if got := s.Quantile(1); got != 8 {
		t.Errorf("Quantile(1) = %v, want Max 8", got)
	}
	// rank(0.5)=2 is halfway through the only bucket: 2 + (8-2)*2/4 = 5.
	if got := s.Quantile(0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %v, want 5", got)
	}
	for _, q := range []float64{0.1, 0.25, 0.75, 0.9} {
		if got := s.Quantile(q); got < 2 || got > 8 {
			t.Errorf("Quantile(%v) = %v outside observed [2, 8]", q, got)
		}
	}
	// Single observation with nil bounds: every quantile is it.
	r2 := NewRegistry()
	r2.NewHistogram("one", nil)
	r2.Observe("one", 42)
	s2, _ := r2.Histogram("one")
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s2.Quantile(q); got != 42 {
			t.Errorf("single-obs nil-bounds Quantile(%v) = %v, want 42", q, got)
		}
	}
}

// TestQuantileOverflowRank pins the overflow-bucket branch when explicit
// bounds exist but the rank lands above the last one.
func TestQuantileOverflowRank(t *testing.T) {
	r := NewRegistry()
	r.NewHistogram("h", []float64{1})
	// All mass in the overflow bucket (1, Max].
	for _, v := range []float64{5, 7, 9, 11} {
		r.Observe("h", v)
	}
	s, _ := r.Histogram("h")
	// rank(0.5)=2 is halfway through (1, 11]: 1 + 10*2/4 = 6.
	if got := s.Quantile(0.5); got != 6 {
		t.Errorf("Quantile(0.5) = %v, want 6", got)
	}
	// Clamped to Min below: interpolating near the bucket floor would
	// report 1, but the smallest observation is 5.
	if got := s.Quantile(0.01); got != 5 {
		t.Errorf("Quantile(0.01) = %v, want clamp to Min 5", got)
	}
	if got := s.Quantile(1); got != 11 {
		t.Errorf("Quantile(1) = %v, want Max 11", got)
	}
}
