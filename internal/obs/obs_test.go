package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Inc("ops")
				r.Add("gb", 0.5)
				r.SetGauge("last", float64(i))
				r.Observe("lat", float64(i%10))
				r.Emit(Event{Type: ForcedMigration, Step: i, App: g, Site: 0, Dst: 1, GB: 1})
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("ops"); got != goroutines*perG {
		t.Errorf("ops counter = %v, want %d", got, goroutines*perG)
	}
	if got := r.Counter("gb"); got != goroutines*perG/2 {
		t.Errorf("gb counter = %v, want %d", got, goroutines*perG/2)
	}
	h, ok := r.Histogram("lat")
	if !ok || h.Count != goroutines*perG {
		t.Errorf("lat histogram count = %v ok=%v", h.Count, ok)
	}
	if got := r.Tracer().Count(ForcedMigration); got != goroutines*perG {
		t.Errorf("event count = %d, want %d", got, goroutines*perG)
	}
	if got := r.Tracer().GBTotal(ForcedMigration); got != goroutines*perG {
		t.Errorf("event GB total = %v, want %d", got, goroutines*perG)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	r.NewHistogram("h", []float64{1, 2, 5})
	// Values on a bound land in that bound's bucket (v <= bound).
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 5, 7, 100} {
		r.Observe("h", v)
	}
	s, ok := r.Histogram("h")
	if !ok {
		t.Fatal("histogram missing")
	}
	want := []int64{2, 2, 2, 2} // (-inf,1], (1,2], (2,5], overflow
	if !reflect.DeepEqual(s.Counts, want) {
		t.Errorf("bucket counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 8 || s.Min != 0.5 || s.Max != 100 {
		t.Errorf("count=%d min=%v max=%v", s.Count, s.Min, s.Max)
	}
	if s.Sum != 0.5+1+1.5+2+3+5+7+100 {
		t.Errorf("sum = %v", s.Sum)
	}
	if m := s.Mean(); m != s.Sum/8 {
		t.Errorf("mean = %v", m)
	}
	if (HistogramSnapshot{}).Mean() != 0 {
		t.Error("empty snapshot mean should be 0")
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(8)
	tr.SetSink(&buf)
	in := []Event{
		{Type: PlanComputed, Step: 0, App: 3, Site: -1, Dst: -1, Cores: 120, Detail: "admit"},
		{Type: PlannedRealloc, Step: 2, App: 3, Site: 0, Dst: 1, Cores: 40, GB: 160},
		{Type: MIPSolveFinish, Step: 2, App: 3, Site: -1, Dst: -1, DurNS: 1234567, Objective: 42.5},
		{Type: StablePause, Step: 5, App: 7, Site: 2, Dst: -1, Cores: 11.25},
	}
	for _, e := range in {
		tr.Emit(e)
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	got, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(got) != len(in) {
		t.Fatalf("decoded %d events, want %d", len(got), len(in))
	}
	for i := range in {
		want := in[i]
		want.Seq = int64(i) // the tracer assigns sequence numbers
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], want)
		}
	}
	// The in-memory ring holds the same events.
	if ring := tr.Events(); !reflect.DeepEqual(ring, got) {
		t.Errorf("ring %v != decoded %v", ring, got)
	}
}

func TestRingWrapKeepsExactTotals(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Type: ForcedMigration, Step: i, GB: 2})
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if e.Step != 6+i || e.Seq != int64(6+i) {
			t.Errorf("ring[%d] = step %d seq %d, want oldest-first tail", i, e.Step, e.Seq)
		}
	}
	if tr.Count(ForcedMigration) != 10 {
		t.Errorf("count = %d, want 10 despite wrap", tr.Count(ForcedMigration))
	}
	if tr.GBTotal(ForcedMigration) != 20 {
		t.Errorf("gb total = %v, want 20 despite wrap", tr.GBTotal(ForcedMigration))
	}
}

func TestNilRegistryIsNoOpAndAllocFree(t *testing.T) {
	var r *Registry
	// None of these may panic.
	r.Inc("c")
	r.Add("c", 2)
	r.SetGauge("g", 1)
	r.Observe("h", 1)
	r.ObserveDuration("d", time.Second)
	r.NewHistogram("h2", []float64{1})
	r.SetLabel("k", "v")
	r.Emit(Event{Type: StablePause})
	Time(r, "span")()
	if r.Counter("c") != 0 {
		t.Error("nil counter should read 0")
	}
	if _, ok := r.Gauge("g"); ok {
		t.Error("nil gauge should be absent")
	}
	if _, ok := r.Histogram("h"); ok {
		t.Error("nil histogram should be absent")
	}
	if got := r.Manifest(); got.Counters != nil || got.Events != nil {
		t.Error("nil manifest should be zero")
	}
	var tr *Tracer
	tr.Emit(Event{})
	tr.SetSink(&bytes.Buffer{})
	if tr.Events() != nil || tr.Count(StablePause) != 0 || tr.Err() != nil {
		t.Error("nil tracer should be inert")
	}
	if r.Tracer() != nil {
		t.Error("nil registry tracer should be nil")
	}

	allocs := testing.AllocsPerRun(200, func() {
		r.Inc("c")
		r.Add("gb", 1.5)
		r.Observe("h", 3)
		r.Emit(Event{Type: ForcedMigration, Step: 1, Site: 0, Dst: 1, GB: 4})
		Time(r, "span")()
	})
	if allocs != 0 {
		t.Errorf("nil registry hot path allocates %v per run, want 0", allocs)
	}
}

func TestManifestJSON(t *testing.T) {
	r := NewRegistry()
	r.Inc("sim.placements")
	r.SetGauge("sim.sites", 3)
	r.Observe("mip.solve", 0.02)
	r.SetLabel("engine", "fluid")
	r.Emit(Event{Type: ForcedMigration, Step: 1, App: 2, Site: 0, Dst: 1, Cores: 10, GB: 40})
	m := r.Manifest()
	m.Seed = 42
	m.Policy = "MIP"
	m.Fleet = []string{"NO-solar", "UK-wind", "PT-wind"}

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if back.Seed != 42 || back.Policy != "MIP" || len(back.Fleet) != 3 {
		t.Errorf("metadata lost: %+v", back)
	}
	if back.Counters["sim.placements"] != 1 || back.Gauges["sim.sites"] != 3 {
		t.Errorf("metrics lost: %+v", back)
	}
	if back.Events[ForcedMigration].GB != 40 || back.Events[ForcedMigration].Count != 1 {
		t.Errorf("event stats lost: %+v", back.Events)
	}
	if back.Histograms["mip.solve"].Count != 1 {
		t.Errorf("histogram lost: %+v", back.Histograms)
	}
	if back.Labels["engine"] != "fluid" {
		t.Errorf("labels lost: %+v", back.Labels)
	}
}

func TestTimeSpanRecords(t *testing.T) {
	r := NewRegistry()
	done := Time(r, "work")
	time.Sleep(2 * time.Millisecond)
	done()
	h, ok := r.Histogram("work")
	if !ok || h.Count != 1 {
		t.Fatalf("span not recorded: ok=%v count=%d", ok, h.Count)
	}
	if h.Sum <= 0 {
		t.Errorf("span duration = %v, want > 0", h.Sum)
	}
}
