// Package migration models pre-copy VM live migration — the paper's stated
// future work ("we plan to incorporate migration latency and impact to
// application's execution time similar to [Akoush et al. 2010]"). It
// estimates, for a VM of a given memory size on a given link, how many
// pre-copy rounds run, how much traffic is actually transferred (the
// simulator's memory-size estimate times an amplification factor), how long
// the migration takes, and how long the VM is paused (downtime).
package migration

import (
	"fmt"
	"math"
)

// Model parameterizes the pre-copy loop.
type Model struct {
	// DirtyRateGBps is the rate at which the workload dirties memory.
	DirtyRateGBps float64
	// BandwidthGBps is the migration link rate.
	BandwidthGBps float64
	// StopThresholdGB ends pre-copy when the remaining dirty set is this
	// small (then stop-and-copy runs). Zero selects 0.0625 GB (64 MB).
	StopThresholdGB float64
	// MaxRounds bounds the pre-copy loop (zero selects 30), after which
	// the remaining set is stop-and-copied regardless.
	MaxRounds int
}

// DefaultModel returns a typical setup: a moderately busy VM (0.1 GB/s
// dirty rate) on a 10 Gb/s migration flow (1.25 GB/s).
func DefaultModel() Model {
	return Model{DirtyRateGBps: 0.1, BandwidthGBps: 1.25}
}

func (m Model) stopThreshold() float64 {
	if m.StopThresholdGB <= 0 {
		return 0.0625
	}
	return m.StopThresholdGB
}

func (m Model) maxRounds() int {
	if m.MaxRounds <= 0 {
		return 30
	}
	return m.MaxRounds
}

// Validate reports model errors.
func (m Model) Validate() error {
	if m.DirtyRateGBps < 0 {
		return fmt.Errorf("migration: negative dirty rate %v", m.DirtyRateGBps)
	}
	if m.BandwidthGBps <= 0 {
		return fmt.Errorf("migration: non-positive bandwidth %v", m.BandwidthGBps)
	}
	return nil
}

// Result describes one migration.
type Result struct {
	// Rounds is the number of pre-copy rounds (excluding stop-and-copy).
	Rounds int
	// TransferredGB is the total bytes moved, including re-sent dirty
	// pages.
	TransferredGB float64
	// Amplification is TransferredGB over the VM's memory size.
	Amplification float64
	// DurationSec is the total migration time.
	DurationSec float64
	// DowntimeSec is the stop-and-copy pause.
	DowntimeSec float64
	// Converged is false when MaxRounds ended pre-copy with the dirty set
	// still above the threshold (dirty rate >= bandwidth).
	Converged bool
}

// Migrate runs the pre-copy recurrence for a VM of memGB memory.
func (m Model) Migrate(memGB float64) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if memGB <= 0 {
		return Result{}, fmt.Errorf("migration: non-positive memory %v", memGB)
	}
	ratio := m.DirtyRateGBps / m.BandwidthGBps
	res := Result{Converged: true}
	remaining := memGB
	for {
		// Transfer the current dirty set; pages dirtied meanwhile form the
		// next round's set.
		t := remaining / m.BandwidthGBps
		res.TransferredGB += remaining
		res.DurationSec += t
		next := remaining * ratio
		if next <= m.stopThreshold() {
			remaining = next
			break
		}
		res.Rounds++
		if res.Rounds >= m.maxRounds() {
			res.Converged = false
			remaining = next
			break
		}
		remaining = next
	}
	// Stop-and-copy the final dirty set.
	res.DowntimeSec = remaining / m.BandwidthGBps
	res.TransferredGB += remaining
	res.DurationSec += res.DowntimeSec
	res.Amplification = res.TransferredGB / memGB
	return res, nil
}

// Amplification returns the traffic amplification factor for a VM of memGB:
// the bytes actually sent over the bytes the memory-size estimate counts.
// For dirty-to-bandwidth ratio r < 1 it approaches 1/(1-r).
func (m Model) Amplification(memGB float64) (float64, error) {
	r, err := m.Migrate(memGB)
	if err != nil {
		return 0, err
	}
	return r.Amplification, nil
}

// ExecutionSlowdown estimates the relative slowdown the migrated workload
// experiences during migration, following the observation in Akoush et al.
// that page tracking and transfer contend with execution: a fixed tracking
// overhead while pre-copy runs plus full stop during downtime, averaged
// over a window of windowSec that contains one migration.
func (m Model) ExecutionSlowdown(memGB, windowSec float64) (float64, error) {
	if windowSec <= 0 {
		return 0, fmt.Errorf("migration: non-positive window %v", windowSec)
	}
	r, err := m.Migrate(memGB)
	if err != nil {
		return 0, err
	}
	if r.DurationSec >= windowSec {
		return 0, fmt.Errorf("migration: duration %.1fs exceeds window %.1fs", r.DurationSec, windowSec)
	}
	const trackingOverhead = 0.08 // ~8% while pre-copy is active
	lost := trackingOverhead*(r.DurationSec-r.DowntimeSec) + r.DowntimeSec
	return lost / windowSec, nil
}

// WorstCaseDowntime returns the downtime if the VM were stop-and-copied
// outright (no pre-copy), the upper bound live migration improves on.
func (m Model) WorstCaseDowntime(memGB float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if memGB <= 0 {
		return 0, fmt.Errorf("migration: non-positive memory %v", memGB)
	}
	return memGB / m.BandwidthGBps, nil
}

// Converges reports whether pre-copy converges (dirty rate below link
// bandwidth).
func (m Model) Converges() bool {
	return m.DirtyRateGBps < m.BandwidthGBps && !math.IsNaN(m.DirtyRateGBps)
}
