package core

import (
	"math"
	"testing"
	"time"

	"github.com/vbcloud/vb/internal/obs"
)

// capFn builds a CapacityFn from constant per-site capacities.
func capFn(caps ...float64) CapacityFn {
	return func(site, step int) float64 { return caps[site] }
}

// newTestScheduler builds a 2-site scheduler whose node budget is already
// exhausted at the root (MIPNodes 1), so branch and bound cannot reach an
// integer incumbent whenever the relaxation is fractional.
func newTestScheduler(t *testing.T, reg *obs.Registry, mipNodes int) *Scheduler {
	t.Helper()
	cfg := Config{Policy: MIP, PlanStep: 6 * time.Hour, MaxSitesPerApp: 1, MIPNodes: mipNodes, Obs: reg}
	s, err := NewScheduler(cfg, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// With caps 7/3 and demand 10 under MaxSitesPerApp=1, the relaxation is
// forced to y = (0.7, 0.3): fractional, so a 1-node budget yields no
// incumbent — and rounding y to (1, 0) is feasible (3 cores become
// explicit shortfall). The ladder must land on the rounded-lp tier.
func TestFallbackRoundedLPTier(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestScheduler(t, reg, 1)
	app := demand(1, 10, 10, 2)
	plan, err := s.Place(app, 0, 4, capFn(7, 3), nil, nil, nil)
	if err != nil {
		t.Fatalf("degraded placement returned error: %v", err)
	}
	// The rounded repair keeps site 0 (the bigger site) and drops site 1.
	if got := plan.Alloc[0][0]; math.Abs(got-7) > 1e-6 {
		t.Fatalf("site 0 allocation = %v, want 7", got)
	}
	if got := plan.Alloc[1][0]; got > 1e-6 {
		t.Fatalf("site 1 allocation = %v, want 0 after rounding y to (1,0)", got)
	}
	if got := reg.Counter("scheduler.fallback.count"); got != 1 {
		t.Fatalf("scheduler.fallback.count = %v, want 1", got)
	}
	if got := reg.Counter("solver.deadline_exceeded"); got != 0 {
		t.Fatalf("solver.deadline_exceeded = %v, want 0 (no pressure, no deadline)", got)
	}
	vec := reg.NewCounterVec("scheduler.fallback.by_tier", "policy", "tier")
	if got := vec.Value("MIP", "rounded-lp"); got != 1 {
		t.Fatalf("fallback.by_tier[MIP,rounded-lp] = %v, want 1", got)
	}
	if got := reg.Tracer().Count(obs.SchedulerFallback); got != 1 {
		t.Fatalf("SchedulerFallback events = %d, want 1", got)
	}
	// The MIPSolveFinish event carries the tier.
	var finish *obs.Event
	for _, e := range reg.Tracer().Events() {
		if e.Type == obs.MIPSolveFinish {
			ev := e
			finish = &ev
		}
	}
	if finish == nil || finish.Detail != "cold,fallback=rounded-lp" {
		t.Fatalf("MIPSolveFinish detail = %+v, want fallback=rounded-lp", finish)
	}
}

// With caps 5/5 and demand 10 under MaxSitesPerApp=1 the relaxation is
// forced to y = (0.5, 0.5); both round up to 1, violating the sum-y <= 1
// row, so the rounded repair is infeasible and the ladder must land on
// the greedy tier.
func TestFallbackGreedyTier(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestScheduler(t, reg, 1)
	app := demand(1, 10, 10, 2)
	plan, err := s.Place(app, 0, 4, capFn(5, 5), nil, nil, nil)
	if err != nil {
		t.Fatalf("degraded placement returned error: %v", err)
	}
	// Greedy puts all stable cores on one site (the most-free one).
	used := 0
	for site := 0; site < 2; site++ {
		if plan.Alloc[site][0] > 1e-6 {
			used++
			if math.Abs(plan.Alloc[site][0]-10) > 1e-6 {
				t.Fatalf("greedy allocation on site %d = %v, want 10", site, plan.Alloc[site][0])
			}
		}
	}
	if used != 1 {
		t.Fatalf("greedy fallback used %d sites, want 1", used)
	}
	vec := reg.NewCounterVec("scheduler.fallback.by_tier", "policy", "tier")
	if got := vec.Value("MIP", "greedy"); got != 1 {
		t.Fatalf("fallback.by_tier[MIP,greedy] = %v, want 1", got)
	}
	if got := reg.Counter("scheduler.fallback.count"); got != 1 {
		t.Fatalf("scheduler.fallback.count = %v, want 1", got)
	}
}

// Solver pressure derates the node budget: with MIPNodes 2000 and
// pressure 4000 the effective budget is 1 node, which must reproduce the
// rounded-lp degradation and count a deadline event — without touching
// wall clocks.
func TestSolverPressureDeratesAndCounts(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestScheduler(t, reg, 2000)
	s.SetSolverPressure(4000)
	app := demand(1, 10, 10, 2)
	if _, err := s.Place(app, 0, 4, capFn(7, 3), nil, nil, nil); err != nil {
		t.Fatalf("degraded placement returned error: %v", err)
	}
	if got := reg.Counter("solver.deadline_exceeded"); got != 1 {
		t.Fatalf("solver.deadline_exceeded = %v, want 1", got)
	}
	if got := reg.Counter("scheduler.fallback.count"); got != 1 {
		t.Fatalf("scheduler.fallback.count = %v, want 1", got)
	}

	// Pressure 1 (or nonsense values) restores the full budget: the same
	// placement on a fresh scheduler solves cleanly with no fallback.
	reg2 := obs.NewRegistry()
	s2 := newTestScheduler(t, reg2, 2000)
	s2.SetSolverPressure(math.NaN()) // clamps to 1
	if _, err := s2.Place(app, 0, 4, capFn(7, 3), nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := reg2.Counter("scheduler.fallback.count"); got != 0 {
		t.Fatalf("clean solve recorded fallback: %v", got)
	}
	if got := reg2.Counter("solver.deadline_exceeded"); got != 0 {
		t.Fatalf("clean solve counted a deadline: %v", got)
	}
}

// A wall-clock deadline that expires immediately must degrade, not error,
// and must be visible in the deadline counter.
func TestSolveDeadlineDegradesWithoutError(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{Policy: MIP, PlanStep: 6 * time.Hour, MaxSitesPerApp: 1,
		SolveDeadline: time.Nanosecond, Obs: reg}
	s, err := NewScheduler(cfg, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	app := demand(1, 10, 10, 2)
	plan, err := s.Place(app, 0, 4, capFn(7, 3), nil, nil, nil)
	if err != nil {
		t.Fatalf("deadline-expired placement returned error: %v", err)
	}
	var total float64
	for site := range plan.Alloc {
		total += plan.Alloc[site][0]
	}
	if total <= 0 {
		t.Fatal("degraded placement placed nothing")
	}
	if got := reg.Counter("solver.deadline_exceeded"); got != 1 {
		t.Fatalf("solver.deadline_exceeded = %v, want 1", got)
	}
	if got := reg.Counter("scheduler.fallback.count"); got < 1 {
		t.Fatalf("scheduler.fallback.count = %v, want >= 1", got)
	}
}

// A clean solve (no pressure, no deadline, feasible integer optimum) must
// not record any fallback or deadline activity: the degradation machinery
// is invisible on the seed path.
func TestCleanSolveRecordsNoFallback(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestScheduler(t, reg, 0) // default node budget
	app := demand(1, 6, 6, 2)
	if _, err := s.Place(app, 0, 4, capFn(7, 3), nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"scheduler.fallback.count", "solver.deadline_exceeded", "mip.failures"} {
		if got := reg.Counter(name); got != 0 {
			t.Fatalf("%s = %v on a clean solve, want 0", name, got)
		}
	}
	if got := reg.Tracer().Count(obs.SchedulerFallback); got != 0 {
		t.Fatalf("SchedulerFallback events = %d on a clean solve", got)
	}
}
