// Package econ models the economic argument of the paper's §2.1: co-locating
// data centers with renewable farms removes transmission expense (~10% of
// total data-center cost) and monetizes energy that would otherwise be
// curtailed or sold at negative prices.
package econ

import (
	"fmt"

	"github.com/vbcloud/vb/internal/trace"
)

// CostModel captures the §2.1 cost structure.
type CostModel struct {
	// PowerShareOfCost is the fraction of data-center operating cost that
	// is power (paper: 0.20).
	PowerShareOfCost float64
	// TransmissionShareOfPower is the fraction of power expense due to
	// transmission and distribution (paper: 0.50).
	TransmissionShareOfPower float64
	// CurtailmentRate is the fraction of renewable generation curtailed by
	// grid operators (paper: up to 0.06 and rising).
	CurtailmentRate float64
	// EnergyPricePerMWh is the wholesale energy price used to value
	// captured curtailment.
	EnergyPricePerMWh float64
}

// DefaultCostModel returns the paper's cited values with a 40 $/MWh price.
func DefaultCostModel() CostModel {
	return CostModel{
		PowerShareOfCost:         0.20,
		TransmissionShareOfPower: 0.50,
		CurtailmentRate:          0.06,
		EnergyPricePerMWh:        40,
	}
}

// Validate reports model errors.
func (m CostModel) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"power share", m.PowerShareOfCost},
		{"transmission share", m.TransmissionShareOfPower},
		{"curtailment rate", m.CurtailmentRate},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("econ: %s %v outside [0,1]", f.name, f.v)
		}
	}
	if m.EnergyPricePerMWh < 0 {
		return fmt.Errorf("econ: negative energy price %v", m.EnergyPricePerMWh)
	}
	return nil
}

// TransmissionSavingFraction is the fraction of total data-center cost that
// co-location removes: power share x transmission share (paper: ~10%).
func (m CostModel) TransmissionSavingFraction() float64 {
	return m.PowerShareOfCost * m.TransmissionShareOfPower
}

// CurtailmentValue returns the value of curtailed energy a VB can capture
// from the given generation series (MW), in the model's currency: curtailed
// MWh times price.
func (m CostModel) CurtailmentValue(generation trace.Series) (curtailedMWh, value float64, err error) {
	if err := m.Validate(); err != nil {
		return 0, 0, err
	}
	if generation.IsEmpty() {
		return 0, 0, trace.ErrEmptySeries
	}
	curtailedMWh = generation.Energy() * m.CurtailmentRate
	return curtailedMWh, curtailedMWh * m.EnergyPricePerMWh, nil
}
