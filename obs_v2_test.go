package vb

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// TestTraceAnalysisReconciles drives a full scheduler run with a JSONL
// sink and checks the obs v2 acceptance property: the offline analyzer's
// per-type aggregates equal the live tracer's TypeStats bit-for-bit, and
// the dimensional vec series sum back to the run's scalar aggregates.
func TestTraceAnalysisReconciles(t *testing.T) {
	reg := NewMetrics()
	var jsonl bytes.Buffer
	reg.Tracer().SetSink(&jsonl)

	setup := Table1Setup{Seed: DefaultSeed, Days: 3, Obs: reg}.withDefaults()
	in, _, err := buildTable1Input(setup, table1Start)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPolicy(SchedulerConfig{
		Policy:         PolicyMIP,
		PlanStep:       Table1PlanStep,
		UtilTarget:     setup.UtilTarget,
		MaxSitesPerApp: setup.MaxSitesPerApp,
		Obs:            reg,
	}, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Tracer().Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}

	events, err := ReadTraceEvents(&jsonl)
	if err != nil {
		t.Fatalf("decoding JSONL: %v", err)
	}
	a := AnalyzeTrace(events)
	if a.Events != len(events) || a.Events == 0 {
		t.Fatalf("analyzed %d of %d events", a.Events, len(events))
	}

	// Bit-exact, not approximate: the analyzer replays the tracer's own
	// accumulation, so the maps must be deeply equal as floats.
	if !reflect.DeepEqual(a.Types, reg.Tracer().AllStats()) {
		t.Errorf("offline analysis diverged from live tracer stats:\nanalysis: %+v\ntracer:   %+v",
			a.Types, reg.Tracer().AllStats())
	}
	if got := a.Types[EventForcedMigration].GB; got != res.ForcedGB {
		t.Errorf("analyzed forced GB %v != result %v", got, res.ForcedGB)
	}

	// Every MIP solve appears in the duration sample, split warm/cold.
	if int64(len(a.SolveNS)) != a.Types[EventMIPSolveFinish].Count {
		t.Errorf("%d solve durations for %d solve-finish events",
			len(a.SolveNS), a.Types[EventMIPSolveFinish].Count)
	}
	if a.WarmSolves+a.ColdSolves != int64(len(a.SolveNS)) {
		t.Errorf("warm %d + cold %d != %d solves (every finish event must be marked)",
			a.WarmSolves, a.ColdSolves, len(a.SolveNS))
	}
	if a.SolveQuantile(0.5) > a.SolveQuantile(0.99) {
		t.Error("solve quantiles not monotone")
	}

	// The dimensional vecs must sum back to the run's scalar aggregates.
	snap := reg.Snapshot()
	var plannedVec, forcedVec float64
	for _, lv := range snap.CounterVecs["sim.planned_gb"].Values {
		plannedVec += lv.Value
	}
	for _, lv := range snap.CounterVecs["sim.forced_gb"].Values {
		forcedVec += lv.Value
	}
	if math.Abs(plannedVec-res.PlannedGB) > 1e-6*math.Max(1, res.PlannedGB) {
		t.Errorf("sim.planned_gb vec sums to %v, result PlannedGB %v", plannedVec, res.PlannedGB)
	}
	if math.Abs(forcedVec-res.ForcedGB) > 1e-6*math.Max(1, res.ForcedGB) {
		t.Errorf("sim.forced_gb vec sums to %v, result ForcedGB %v", forcedVec, res.ForcedGB)
	}
	var placed float64
	for _, lv := range snap.CounterVecs["scheduler.placements.by_app"].Values {
		placed += lv.Value
	}
	if placed != float64(res.Placements) {
		t.Errorf("placements vec sums to %v, result Placements %d", placed, res.Placements)
	}
	// Every vec series carries the policy label in position 0.
	for name, vs := range snap.CounterVecs {
		if len(vs.LabelNames) == 0 || vs.LabelNames[0] != "policy" {
			t.Errorf("vec %s label names = %v, want policy first", name, vs.LabelNames)
		}
		for _, lv := range vs.Values {
			if len(lv.Labels) != len(vs.LabelNames) {
				t.Errorf("vec %s series %v has %d values for %d names",
					name, lv.Labels, len(lv.Labels), len(vs.LabelNames))
			}
			if lv.Labels[0] != PolicyMIP.String() {
				t.Errorf("vec %s series %v policy label = %q", name, lv.Labels, lv.Labels[0])
			}
		}
	}

	// The analyzer's flow matrix equals the per-edge vec totals.
	for _, lv := range snap.CounterVecs["sim.planned_gb"].Values {
		src, dst := atoiLabel(t, lv.Labels[1]), atoiLabel(t, lv.Labels[2])
		flow := a.Flows[TraceFlowKey{Src: src, Dst: dst}]
		forced := reg.NewCounterVec("sim.forced_gb", "policy", "src", "dst").Value(lv.Labels[0], lv.Labels[1], lv.Labels[2])
		if math.Abs(flow-(lv.Value+forced)) > 1e-9*math.Max(1, flow) {
			t.Errorf("flow %d->%d: analyzer %v != vec planned %v + forced %v",
				src, dst, flow, lv.Value, forced)
		}
	}
}

func atoiLabel(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("label %q is not a site index", s)
		}
		n = n*10 + int(c-'0')
	}
	return n
}
