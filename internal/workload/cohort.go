// Cohort-based workload generation: a trace is a mix of heterogeneous
// cohorts, each with its own SLO class, arrival renewal process (Poisson,
// Gamma or Weibull, diurnally modulated), application size, VM size mix and
// lifetime distribution. Specs are versioned JSON documents so scenarios
// form a reproducible library; TraceSpec.Hash fingerprints a spec into the
// trace v2 header (tracev2.go).
package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"os"
	"sort"
	"time"
)

// TraceSpecVersion is the spec format this package reads and writes.
const TraceSpecVersion = 1

// Renewal process names accepted by CohortSpec.Process.
const (
	ProcessPoisson = "poisson"
	ProcessGamma   = "gamma"
	ProcessWeibull = "weibull"
)

// CohortSpec describes one workload cohort: a stream of applications
// sharing an SLO class, arrival process, size profile and lifetime
// distribution.
type CohortSpec struct {
	// Name identifies the cohort (it also salts the cohort's RNG stream).
	Name string `json:"name"`
	// Class is the SLO class name of every VM the cohort emits ("realtime",
	// "interactive", "batch", "degradable", or the legacy "stable").
	Class string `json:"class"`
	// RateShare is the cohort's share of the spec's total application
	// arrival rate. Shares are normalized over the spec, so they need not
	// sum to 1.
	RateShare float64 `json:"rate_share"`
	// Process selects the inter-arrival renewal process: "poisson"
	// (default), "gamma" or "weibull". Gamma and Weibull take Shape.
	Process string `json:"process,omitempty"`
	// Shape is the renewal distribution's shape parameter (gamma k or
	// weibull k), scaled to unit mean. Shape < 1 is burstier than Poisson
	// (heavy-tailed gaps arriving in clumps), shape > 1 is more regular.
	// Zero selects 1, which reduces both processes to exponential.
	Shape float64 `json:"shape,omitempty"`
	// MeanVMsPerApp is the mean application size (geometric, at least 1).
	// Zero selects 1.
	MeanVMsPerApp float64 `json:"mean_vms_per_app,omitempty"`
	// SizeMix names the VM size mix: "default" (the full Azure-like mix),
	// "small" (the sub-4-core slice) or "large" (the 8-core-and-up tail).
	SizeMix string `json:"size_mix,omitempty"`
	// MedianLifetimeHours is the median app lifetime (lognormal, heavy
	// tailed). Zero means apps run to the end of the simulation.
	MedianLifetimeHours float64 `json:"median_lifetime_hours,omitempty"`
	// LongRunningFraction is the fraction of apps that never terminate
	// within the trace even when MedianLifetimeHours is set.
	LongRunningFraction float64 `json:"long_running_fraction,omitempty"`
}

// TraceSpec is a versioned cohort-mix description — the unit of the
// scenario library. The zero value is invalid; specs come from
// ParseTraceSpec/LoadTraceSpec or are built programmatically and validated.
type TraceSpec struct {
	// Version pins the spec format (TraceSpecVersion).
	Version int `json:"version"`
	// Seed drives all randomness; each cohort derives an independent
	// deterministic stream from it.
	Seed uint64 `json:"seed"`
	// Start and DurationHours span the arrival window.
	Start         time.Time `json:"start"`
	DurationHours float64   `json:"duration_hours"`
	// AppsPerDay is the total mean application arrival rate across all
	// cohorts; each cohort receives its normalized RateShare of it.
	AppsPerDay float64 `json:"apps_per_day"`
	// DiurnalAmplitude modulates every cohort's rate over the day
	// (0 = flat, 0.35 = the legacy generator's business-hours swing).
	// Values outside [0,1) are an error.
	DiurnalAmplitude float64 `json:"diurnal_amplitude,omitempty"`
	// Cohorts is the mix (at least one).
	Cohorts []CohortSpec `json:"cohorts"`
}

// Validate reports spec errors.
func (s TraceSpec) Validate() error {
	if s.Version != TraceSpecVersion {
		return fmt.Errorf("workload: trace spec version %d, this build reads %d", s.Version, TraceSpecVersion)
	}
	if s.DurationHours <= 0 {
		return fmt.Errorf("workload: non-positive spec duration %v h", s.DurationHours)
	}
	if s.AppsPerDay <= 0 {
		return fmt.Errorf("workload: non-positive apps per day %v", s.AppsPerDay)
	}
	if s.DiurnalAmplitude < 0 || s.DiurnalAmplitude >= 1 {
		return fmt.Errorf("workload: diurnal amplitude %v outside [0,1)", s.DiurnalAmplitude)
	}
	if len(s.Cohorts) == 0 {
		return fmt.Errorf("workload: spec has no cohorts")
	}
	var share float64
	names := make(map[string]bool, len(s.Cohorts))
	for i, c := range s.Cohorts {
		if c.Name == "" {
			return fmt.Errorf("workload: cohort %d has no name", i)
		}
		if names[c.Name] {
			return fmt.Errorf("workload: duplicate cohort name %q", c.Name)
		}
		names[c.Name] = true
		if _, err := ParseClass(c.Class); err != nil {
			return fmt.Errorf("workload: cohort %q: %w", c.Name, err)
		}
		if c.RateShare <= 0 {
			return fmt.Errorf("workload: cohort %q has non-positive rate share %v", c.Name, c.RateShare)
		}
		share += c.RateShare
		switch c.Process {
		case "", ProcessPoisson, ProcessGamma, ProcessWeibull:
		default:
			return fmt.Errorf("workload: cohort %q: unknown process %q", c.Name, c.Process)
		}
		if c.Shape < 0 {
			return fmt.Errorf("workload: cohort %q has negative shape %v", c.Name, c.Shape)
		}
		if c.MeanVMsPerApp < 0 || (c.MeanVMsPerApp > 0 && c.MeanVMsPerApp < 1) {
			return fmt.Errorf("workload: cohort %q mean VMs per app %v must be >= 1 (or 0 for the default)", c.Name, c.MeanVMsPerApp)
		}
		switch c.SizeMix {
		case "", "default", "small", "large":
		default:
			return fmt.Errorf("workload: cohort %q: unknown size mix %q", c.Name, c.SizeMix)
		}
		if c.MedianLifetimeHours < 0 {
			return fmt.Errorf("workload: cohort %q has negative median lifetime", c.Name)
		}
		if c.LongRunningFraction < 0 || c.LongRunningFraction > 1 {
			return fmt.Errorf("workload: cohort %q long-running fraction %v outside [0,1]", c.Name, c.LongRunningFraction)
		}
	}
	if share <= 0 {
		return fmt.Errorf("workload: cohort rate shares sum to %v", share)
	}
	return nil
}

// Hash fingerprints the spec (FNV-64a over its canonical JSON encoding).
// The trace v2 header carries it so a replayed trace can be tied back to
// the exact spec that generated it.
func (s TraceSpec) Hash() uint64 {
	b, err := json.Marshal(s)
	if err != nil {
		// A TraceSpec contains only marshalable fields; this is unreachable
		// short of memory corruption.
		panic(fmt.Sprintf("workload: marshaling trace spec: %v", err))
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// ParseTraceSpec decodes and validates a JSON spec document. Unknown fields
// are rejected so typos in hand-written specs fail loudly.
func ParseTraceSpec(b []byte) (*TraceSpec, error) {
	var s TraceSpec
	if err := strictUnmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("workload: parsing trace spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadTraceSpec reads a JSON spec file from disk.
func LoadTraceSpec(path string) (*TraceSpec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace spec: %w", err)
	}
	return ParseTraceSpec(b)
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing data.
func strictUnmarshal(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON document")
	}
	return nil
}

// smallMix and largeMix are the named slices of the Azure-like size mix,
// reweighted to sum to 1.
var smallMix = normalizeMix(sizeMix[:6])  // 1-4 cores
var largeMix = normalizeMix(sizeMix[6:]) // 8+ cores

func normalizeMix(in []shape) []shape {
	var sum float64
	for _, s := range in {
		sum += s.weight
	}
	out := make([]shape, len(in))
	for i, s := range in {
		out[i] = shape{cores: s.cores, memGB: s.memGB, weight: s.weight / sum}
	}
	return out
}

func (c CohortSpec) mix() []shape {
	switch c.SizeMix {
	case "small":
		return smallMix
	case "large":
		return largeMix
	default:
		return sizeMix
	}
}

func (c CohortSpec) meanVMs() float64 {
	if c.MeanVMsPerApp <= 0 {
		return 1
	}
	return c.MeanVMsPerApp
}

func (c CohortSpec) shapeParam() float64 {
	if c.Shape <= 0 {
		return 1
	}
	return c.Shape
}

// drawGap samples one unit-mean renewal inter-arrival from the cohort's
// process.
func (c CohortSpec) drawGap(rng *rand.Rand) float64 {
	k := c.shapeParam()
	switch c.Process {
	case ProcessGamma:
		// Gamma(k, 1/k): mean 1, squared CV 1/k.
		return gammaSample(k, rng) / k
	case ProcessWeibull:
		// Weibull(k) scaled by 1/Γ(1+1/k) for unit mean; k < 1 gives a
		// heavy tail (bursts separated by long quiet stretches).
		u := rng.Float64()
		return math.Pow(-math.Log1p(-u), 1/k) / math.Gamma(1+1/k)
	default:
		return rng.ExpFloat64()
	}
}

// gammaSample draws Gamma(k, 1) via Marsaglia-Tsang, boosting k < 1 with
// the standard U^(1/k) multiplier.
func gammaSample(k float64, rng *rand.Rand) float64 {
	if k < 1 {
		return gammaSample(k+1, rng) * math.Pow(rng.Float64(), 1/k)
	}
	d := k - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// diurnal modulates a rate with the given amplitude around the legacy
// generator's business-hours phase.
func diurnal(t time.Time, amplitude float64) float64 {
	if amplitude == 0 {
		return 1
	}
	h := float64(t.UTC().Hour()) + float64(t.UTC().Minute())/60
	return 1 + amplitude*math.Sin(2*math.Pi*(h-10)/24)
}

// GenerateCohorts produces the spec's application trace: every cohort's
// renewal stream is drawn independently from its own seeded RNG, the
// streams are merged in arrival order (cohort index breaking ties), and
// app/VM IDs are assigned sequentially over the merged order. The same spec
// always yields the same trace, VM for VM.
func GenerateCohorts(spec TraceSpec) ([]App, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var shareSum float64
	for _, c := range spec.Cohorts {
		shareSum += c.RateShare
	}
	end := spec.Start.Add(time.Duration(spec.DurationHours * float64(time.Hour)))

	type cohortApp struct {
		arrival time.Time
		cohort  int
		seq     int
	}
	var merged []cohortApp
	for ci, c := range spec.Cohorts {
		rate := spec.AppsPerDay * c.RateShare / shareSum / 24 // apps per hour
		rng := subRNG(spec.Seed, "cohort/"+c.Name)
		t := spec.Start
		for seq := 0; ; seq++ {
			r := rate * diurnal(t, spec.DiurnalAmplitude)
			gap := time.Duration(c.drawGap(rng) / r * float64(time.Hour))
			if gap <= 0 {
				gap = time.Nanosecond
			}
			t = t.Add(gap)
			if !t.Before(end) {
				break
			}
			merged = append(merged, cohortApp{arrival: t, cohort: ci, seq: seq})
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if !merged[i].arrival.Equal(merged[j].arrival) {
			return merged[i].arrival.Before(merged[j].arrival)
		}
		if merged[i].cohort != merged[j].cohort {
			return merged[i].cohort < merged[j].cohort
		}
		return merged[i].seq < merged[j].seq
	})

	// Body draws (size, lifetime, VM count) come from a second per-cohort
	// stream, consumed in merged arrival order so the trace is independent
	// of how the arrival streams interleaved above.
	body := make([]*rand.Rand, len(spec.Cohorts))
	for ci, c := range spec.Cohorts {
		body[ci] = subRNG(spec.Seed, "cohort-body/"+c.Name)
	}
	apps := make([]App, 0, len(merged))
	appID, vmID := 1, 1
	for _, m := range merged {
		c := spec.Cohorts[m.cohort]
		rng := body[m.cohort]
		class, _ := ParseClass(c.Class)
		nVMs := 1
		p := 1 / c.meanVMs()
		for rng.Float64() > p {
			nVMs++
		}
		var life time.Duration
		if c.MedianLifetimeHours > 0 && rng.Float64() >= c.LongRunningFraction {
			life = drawLifetime(time.Duration(c.MedianLifetimeHours*float64(time.Hour)), rng)
		}
		app := App{ID: appID, Arrival: m.arrival, Duration: life}
		mix := c.mix()
		for i := 0; i < nVMs; i++ {
			sh := drawShapeFrom(mix, rng)
			app.VMs = append(app.VMs, VM{
				ID:       vmID,
				Cores:    sh.cores,
				MemoryGB: sh.memGB,
				Class:    class,
				Arrival:  m.arrival,
				Lifetime: life,
				AppID:    appID,
			})
			vmID++
		}
		apps = append(apps, app)
		appID++
	}
	return apps, nil
}

// drawShapeFrom samples a VM size from the given mix.
func drawShapeFrom(mix []shape, rng *rand.Rand) shape {
	u := rng.Float64()
	var cum float64
	for _, s := range mix {
		cum += s.weight
		if u < cum {
			return s
		}
	}
	return mix[len(mix)-1]
}
