// Package fault implements a deterministic, seedable fault-injection
// engine for the virtual-battery simulators and the vbserve daemon.
//
// A fault Script is a list of timed events — site blackouts, brownouts,
// WAN link cuts or bandwidth degradations, forecast busts, and solver
// slowdowns — expressed in plan-step indices, never wall clock. An
// Injector compiles a script into per-step lookups the engines query on
// the hot path. Every query is a pure function of (script, step), so the
// same seed plus the same script yields bit-identical decision logs at
// any worker count.
//
// All Injector methods are safe on a nil receiver and return identity
// values (factor 1, unlimited bandwidth, no inflation), so fault-free
// runs take exactly the seed code paths.
package fault

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// Kind names a fault class.
type Kind int

// Fault kinds.
const (
	// SiteBlackout removes all power from a site for the window.
	SiteBlackout Kind = iota
	// SiteBrownout derates a site's power by Severity (fraction lost).
	SiteBrownout
	// WANCut removes the migration path between two sites (or all pairs
	// when wildcarded) for the window.
	WANCut
	// WANDegraded caps per-step migration traffic between two sites at
	// Severity GB per plan step.
	WANDegraded
	// ForecastBust multiplies predicted (not actual) capacity by Severity
	// for target steps inside the window, modeling a systematic forecast
	// error the scheduler plans around.
	ForecastBust
	// SolverSlowdown inflates solver latency by Severity (>= 1). To keep
	// decisions deterministic it is applied as a node-budget derate:
	// effective MaxNodes = max(1, MaxNodes/Severity).
	SolverSlowdown

	numKinds = int(SolverSlowdown) + 1
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SiteBlackout:
		return "site_blackout"
	case SiteBrownout:
		return "site_brownout"
	case WANCut:
		return "wan_cut"
	case WANDegraded:
		return "wan_degraded"
	case ForecastBust:
		return "forecast_bust"
	case SolverSlowdown:
		return "solver_slowdown"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KindFromString parses the String form of a Kind.
func KindFromString(s string) (Kind, error) {
	for k := Kind(0); int(k) < numKinds; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q", s)
}

// Event is one scheduled fault. Start/End are plan-step indices forming a
// half-open window [Start, End). Site and Peer are site indices; -1 means
// "all sites" (capacity and forecast kinds) or "all pairs" (WAN kinds).
type Event struct {
	Kind Kind `json:"-"`
	// Site is the affected site (-1 = every site). For WAN kinds, Site
	// and Peer name the link's endpoints (-1 on either = wildcard).
	Site int `json:"site"`
	Peer int `json:"peer,omitempty"`
	// Start and End bound the half-open step window [Start, End).
	Start int `json:"start"`
	End   int `json:"end"`
	// Severity is kind-dependent: fraction of power lost in (0, 1] for
	// SiteBrownout; GB per step >= 0 for WANDegraded; predicted-capacity
	// multiplier > 0 for ForecastBust; latency inflation >= 1 for
	// SolverSlowdown. Ignored for SiteBlackout and WANCut.
	Severity float64 `json:"severity,omitempty"`
}

func (e Event) active(step int) bool { return step >= e.Start && step < e.End }

// validate checks one event against the scenario dimensions.
func (e Event) validate(i int, numSites, steps int) error {
	if int(e.Kind) < 0 || int(e.Kind) >= numKinds {
		return fmt.Errorf("fault: event %d: unknown kind %d", i, int(e.Kind))
	}
	if e.Start < 0 || e.End > steps || e.Start >= e.End {
		return fmt.Errorf("fault: event %d (%s): window [%d,%d) outside [0,%d)", i, e.Kind, e.Start, e.End, steps)
	}
	checkSite := func(name string, s int) error {
		if s < -1 || s >= numSites {
			return fmt.Errorf("fault: event %d (%s): %s %d outside [-1,%d)", i, e.Kind, name, s, numSites)
		}
		return nil
	}
	if err := checkSite("site", e.Site); err != nil {
		return err
	}
	if math.IsNaN(e.Severity) || math.IsInf(e.Severity, 0) {
		return fmt.Errorf("fault: event %d (%s): non-finite severity", i, e.Kind)
	}
	switch e.Kind {
	case SiteBrownout:
		if e.Severity <= 0 || e.Severity > 1 {
			return fmt.Errorf("fault: event %d (%s): severity %v outside (0,1]", i, e.Kind, e.Severity)
		}
	case WANCut, WANDegraded:
		if err := checkSite("peer", e.Peer); err != nil {
			return err
		}
		if e.Kind == WANDegraded && e.Severity < 0 {
			return fmt.Errorf("fault: event %d (%s): negative bandwidth %v", i, e.Kind, e.Severity)
		}
	case ForecastBust:
		if e.Severity <= 0 {
			return fmt.Errorf("fault: event %d (%s): non-positive factor %v", i, e.Kind, e.Severity)
		}
	case SolverSlowdown:
		if e.Severity < 1 {
			return fmt.Errorf("fault: event %d (%s): inflation %v < 1", i, e.Kind, e.Severity)
		}
	}
	return nil
}

// Script is an ordered list of fault events for one scenario.
type Script struct {
	Events []Event `json:"events"`
}

// Empty reports whether the script injects nothing.
func (s *Script) Empty() bool { return s == nil || len(s.Events) == 0 }

// Validate checks every event against the scenario dimensions: numSites
// sites and steps plan steps.
func (s *Script) Validate(numSites, steps int) error {
	if s == nil {
		return nil
	}
	if numSites <= 0 || steps <= 0 {
		return fmt.Errorf("fault: invalid dimensions %d sites × %d steps", numSites, steps)
	}
	for i, e := range s.Events {
		if err := e.validate(i, numSites, steps); err != nil {
			return err
		}
	}
	return nil
}

// Hash returns a deterministic 64-bit digest of the script's canonical
// encoding. An empty or nil script hashes to 0, matching "no injector" in
// snapshot fingerprints.
func (s *Script) Hash() uint64 {
	if s.Empty() {
		return 0
	}
	// Canonical order: sort a copy so semantically equal scripts hash
	// equal regardless of authoring order.
	ev := append([]Event(nil), s.Events...)
	sort.Slice(ev, func(a, b int) bool {
		x, y := ev[a], ev[b]
		if x.Start != y.Start {
			return x.Start < y.Start
		}
		if x.Kind != y.Kind {
			return x.Kind < y.Kind
		}
		if x.Site != y.Site {
			return x.Site < y.Site
		}
		if x.Peer != y.Peer {
			return x.Peer < y.Peer
		}
		if x.End != y.End {
			return x.End < y.End
		}
		return x.Severity < y.Severity
	})
	h := fnv.New64a()
	for _, e := range ev {
		fmt.Fprintf(h, "%d|%d|%d|%d|%d|%x;", int(e.Kind), e.Site, e.Peer, e.Start, e.End, math.Float64bits(e.Severity))
	}
	return h.Sum64()
}
