package sim

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"
	"time"

	"github.com/vbcloud/vb/internal/cluster"
	"github.com/vbcloud/vb/internal/core"
	"github.com/vbcloud/vb/internal/energy"
	"github.com/vbcloud/vb/internal/forecast"
	"github.com/vbcloud/vb/internal/trace"
	"github.com/vbcloud/vb/internal/workload"
)

// vmBatchArrivals converts the batch fixtures into per-step arrival batches
// exactly as RunVMLevel feeds its engine.
func vmBatchArrivals(in Input, apps []workload.App) []AppArrival {
	vmsByApp := map[int][]workload.VM{}
	for _, a := range apps {
		vmsByApp[a.ID] = a.VMs
	}
	arrivals := make([]AppArrival, 0, len(in.Apps))
	for _, d := range in.Apps {
		arrivals = append(arrivals, AppArrival{Demand: d, VMs: vmsByApp[d.ID]})
	}
	return arrivals
}

// stepReports drives an engine to completion feeding sorted arrivals, and
// returns every step's JSON-encoded report. The JSON form is what a daemon
// logs, so byte-comparing it is the determinism contract.
func stepReports(t *testing.T, eng *VMEngine, arrivals []AppArrival) [][]byte {
	t.Helper()
	sortArrivals(arrivals)
	var out [][]byte
	next := 0
	for !eng.Done() {
		now := eng.Now()
		var batch []AppArrival
		for next < len(arrivals) && !arrivals[next].Demand.Start.After(now) {
			batch = append(batch, arrivals[next])
			next++
		}
		rep, err := eng.Advance(batch)
		if err != nil {
			t.Fatal(err)
		}
		line, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, line)
	}
	return out
}

func sortArrivals(arrivals []AppArrival) {
	// The same sort call RunVMLevel makes, so tie-breaking matches too.
	sort.Slice(arrivals, func(i, j int) bool {
		return arrivals[i].Demand.Start.Before(arrivals[j].Demand.Start)
	})
}

// TestVMEngineMatchesBatch pins the tentpole parity claim: streaming the
// batch workload through VMEngine.Advance reproduces RunVMLevel's result
// exactly, field for field.
func TestVMEngineMatchesBatch(t *testing.T) {
	in, apps := vmLevelFixtures(t, 3)
	for _, pol := range []core.Policy{core.Greedy, core.MIP} {
		batch, err := RunVMLevel(simConfig(pol), in, apps, cluster.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewVMEngine(simConfig(pol), in, cluster.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		stepReports(t, eng, vmBatchArrivals(in, apps))
		got := eng.Result()
		if got.Moves != batch.Moves || got.FailedPlacements != batch.FailedPlacements ||
			got.Fragmentation != batch.Fragmentation {
			t.Fatalf("%v: streamed result %+v != batch %+v", pol, got, batch)
		}
		for i := range got.Transfer.Values {
			if got.Transfer.Values[i] != batch.Transfer.Values[i] {
				t.Fatalf("%v: transfer[%d] = %v streamed vs %v batch", pol, i,
					got.Transfer.Values[i], batch.Transfer.Values[i])
			}
		}
	}
}

// TestVMEngineSnapshotRestore pins crash recovery: snapshot mid-run,
// restore into a fresh engine, and the remaining steps' decision records
// must be byte-identical to the uninterrupted run's.
func TestVMEngineSnapshotRestore(t *testing.T) {
	in, apps := vmLevelFixtures(t, 3)
	cfg := simConfig(core.MIP)
	ccfg := cluster.DefaultConfig()
	arrivals := vmBatchArrivals(in, apps)

	full, err := NewVMEngine(cfg, in, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	fullReports := stepReports(t, full, arrivals)

	// Re-run, snapshotting at the midpoint.
	half, err := NewVMEngine(cfg, in, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	sortArrivals(arrivals)
	mid := half.Steps() / 2
	next := 0
	var part1 [][]byte
	for half.Step() < mid {
		now := half.Now()
		var batch []AppArrival
		for next < len(arrivals) && !arrivals[next].Demand.Start.After(now) {
			batch = append(batch, arrivals[next])
			next++
		}
		rep, err := half.Advance(batch)
		if err != nil {
			t.Fatal(err)
		}
		line, _ := json.Marshal(rep)
		part1 = append(part1, line)
	}
	var snap bytes.Buffer
	if err := half.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	restored, err := RestoreVMEngine(cfg, in, ccfg, bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Step() != mid {
		t.Fatalf("restored engine at step %d, want %d", restored.Step(), mid)
	}
	part2 := part1
	for !restored.Done() {
		now := restored.Now()
		var batch []AppArrival
		for next < len(arrivals) && !arrivals[next].Demand.Start.After(now) {
			batch = append(batch, arrivals[next])
			next++
		}
		rep, err := restored.Advance(batch)
		if err != nil {
			t.Fatal(err)
		}
		line, _ := json.Marshal(rep)
		part2 = append(part2, line)
	}

	if len(part2) != len(fullReports) {
		t.Fatalf("restored run produced %d reports, want %d", len(part2), len(fullReports))
	}
	for i := range fullReports {
		if !bytes.Equal(part2[i], fullReports[i]) {
			t.Fatalf("step %d decision record diverges after restore:\nfull:     %s\nrestored: %s",
				i, fullReports[i], part2[i])
		}
	}
	gr, gf := restored.Result(), full.Result()
	if gr.Moves != gf.Moves || gr.FailedPlacements != gf.FailedPlacements || gr.Fragmentation != gf.Fragmentation {
		t.Fatalf("restored result %+v != full %+v", gr, gf)
	}
}

// TestVMEngineSnapshotRejectsMismatch ensures a snapshot cannot restore
// into a differently configured engine.
func TestVMEngineSnapshotRejectsMismatch(t *testing.T) {
	in, _ := vmLevelFixtures(t, 2)
	cfg := simConfig(core.MIP)
	eng, err := NewVMEngine(cfg, in, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Advance(nil); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := eng.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	other := simConfig(core.Greedy)
	if _, err := RestoreVMEngine(other, in, cluster.DefaultConfig(), bytes.NewReader(snap.Bytes())); err == nil {
		t.Error("policy mismatch should be rejected")
	}
	smaller := cluster.DefaultConfig()
	smaller.Servers = 100
	if _, err := RestoreVMEngine(cfg, in, smaller, bytes.NewReader(snap.Bytes())); err == nil {
		t.Error("cluster mismatch should be rejected")
	}
	if _, err := RestoreVMEngine(cfg, in, cluster.DefaultConfig(), bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage snapshot should be rejected")
	}
}

// TestVMEngineDisplacedExpiryNoLeak is the regression test for the vmSite
// map leak: a VM that is evicted (site -1) and then reaches its end of life
// while displaced must leave the location table. Before the fix, step 5
// only departed VMs with site >= 0, so every displaced-then-expired VM
// leaked one map entry for the rest of a long-lived run.
func TestVMEngineDisplacedExpiryNoLeak(t *testing.T) {
	// One tiny site; power collapses to zero so every VM is evicted, then
	// the VMs expire while displaced (the site has no room to rehome them).
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	step := 6 * time.Hour
	const T = 8
	actual := trace.New(start, step, T)
	for i := range actual.Values {
		if i == 0 {
			actual.Values[i] = 1
		} // full power only at step 0
	}
	bundle, err := forecast.New(7).NewBundle(actual, energy.Wind, "leak")
	if err != nil {
		t.Fatal(err)
	}
	if err := bundle.UseFixedHorizon(forecast.HorizonDay); err != nil {
		t.Fatal(err)
	}
	ccfg := cluster.Config{Servers: 2, CoresPerServer: 8, MemPerServerGB: 64, TargetUtilization: 0.9}
	in := Input{
		Actual:     []trace.Series{actual},
		Bundles:    []*forecast.Bundle{bundle},
		TotalCores: float64(ccfg.TotalCores()),
	}
	cfg := core.Config{Policy: core.Greedy, PlanStep: step, UtilTarget: 0.9}
	eng, err := NewVMEngine(cfg, in, ccfg)
	if err != nil {
		t.Fatal(err)
	}

	// Two stable VMs that live two steps: placed at step 0, evicted at
	// step 1 when power hits zero, expired by step 2 while displaced.
	lifetime := 2 * step
	vms := []workload.VM{
		{ID: 1, Cores: 2, MemoryGB: 8, Class: workload.Stable, Arrival: start, Lifetime: lifetime, AppID: 1},
		{ID: 2, Cores: 2, MemoryGB: 8, Class: workload.Stable, Arrival: start, Lifetime: lifetime, AppID: 1},
	}
	arr := AppArrival{
		Demand: core.AppDemand{ID: 1, Cores: 4, StableCores: 4, MemGBPerCore: 4, Start: start},
		VMs:    vms,
	}
	if _, err := eng.Advance([]AppArrival{arr}); err != nil {
		t.Fatal(err)
	}
	if eng.Running() != 2 {
		t.Fatalf("step 0: %d VMs running, want 2", eng.Running())
	}
	rep, err := eng.Advance(nil) // power 0: everything evicted
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Evicted) != 2 {
		t.Fatalf("step 1: %d evictions, want 2", len(rep.Evicted))
	}
	if eng.TrackedVMs() != 2 {
		t.Fatalf("step 1: tracking %d VMs, want 2 displaced", eng.TrackedVMs())
	}
	// Step 2: lifetimes are over; the displaced entries must be departed
	// even though the VMs were not running anywhere.
	if _, err := eng.Advance(nil); err != nil {
		t.Fatal(err)
	}
	if eng.TrackedVMs() != 0 {
		t.Fatalf("displaced expired VMs leaked: still tracking %d entries", eng.TrackedVMs())
	}
	for !eng.Done() {
		if _, err := eng.Advance(nil); err != nil {
			t.Fatal(err)
		}
	}
	if eng.TrackedVMs() != 0 {
		t.Fatalf("end of run: still tracking %d entries", eng.TrackedVMs())
	}
}
