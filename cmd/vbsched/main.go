// Command vbsched runs the multi-VB scheduler comparison behind the paper's
// Table 1 and Figure 7: Greedy vs MIP vs MIP-24h vs MIP-peak over a
// three-site group for a week.
//
// Usage:
//
//	vbsched
//	vbsched -days 7 -apps 6 -util 0.7 -policy MIP-peak
//	vbsched -csv > transfers.csv
//	vbsched -policy MIP -trace run.jsonl -metrics run.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	vb "github.com/vbcloud/vb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vbsched: ")

	var (
		days       = flag.Int("days", 7, "days to simulate")
		seed       = flag.Uint64("seed", vb.DefaultSeed, "random seed")
		apps       = flag.Float64("apps", 6, "application arrivals per day")
		util       = flag.Float64("util", 0.7, "admission utilization target")
		maxSites   = flag.Int("maxsites", 3, "max sites per application")
		policyArg  = flag.String("policy", "", `run one policy only ("Greedy", "MIP", "MIP-24h", "MIP-peak")`)
		leadFc     = flag.Bool("leadforecasts", false, "use lead-dependent forecast degradation instead of the day-ahead archive")
		csvOut     = flag.Bool("csv", false, "emit per-policy transfer series as CSV")
		chart      = flag.Bool("chart", false, "render the Fig 7 CDF as an ASCII chart")
		traceOut   = flag.String("trace", "", "write structured run events to this JSONL file")
		metricsOut = flag.String("metrics", "", "write the run manifest (metrics JSON) to this file")
		parallel   = flag.Int("parallel", 0, "worker goroutines for generation and experiments (0 = all cores, 1 = serial; output is identical)")
	)
	flag.Parse()
	vb.SetParallelism(*parallel)

	var reg *vb.MetricsRegistry
	if *traceOut != "" || *metricsOut != "" {
		reg = vb.NewMetrics()
	}
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		traceFile = f
		reg.Tracer().SetSink(f)
	}

	setup := vb.Table1Setup{
		Seed:                   *seed,
		Days:                   *days,
		AppsPerDay:             *apps,
		UtilTarget:             *util,
		MaxSitesPerApp:         *maxSites,
		LeadDependentForecasts: *leadFc,
		Obs:                    reg,
	}
	if *policyArg != "" {
		var found bool
		for _, p := range vb.AllPolicies() {
			if p.String() == *policyArg {
				setup.Policies = []vb.Policy{p}
				found = true
			}
		}
		if !found {
			log.Fatalf("unknown -policy %q", *policyArg)
		}
	}

	res, err := vb.Table1PolicyComparison(setup)
	if err != nil {
		log.Fatal(err)
	}
	if err := vb.FinishTraceSink(reg, traceFile); err != nil {
		log.Fatalf("trace sink failed, events lost: %v", err)
	}
	if *metricsOut != "" {
		m := reg.Manifest()
		m.Seed = *seed
		for _, s := range res.Group {
			m.Fleet = append(m.Fleet, s.Name)
		}
		if len(setup.Policies) == 1 {
			m.Policy = setup.Policies[0].String()
		}
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *csvOut {
		names := make([]string, 0, len(res.Rows))
		series := make([]vb.Series, 0, len(res.Rows))
		for _, row := range res.Rows {
			names = append(names, row.Policy.String())
			series = append(series, res.Transfers[row.Policy])
		}
		if err := vb.WriteCSV(os.Stdout, names, series...); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(res.Report())
	if h, ok := reg.Histogram("mip.solve"); ok && h.Count > 0 {
		fmt.Printf("  solver: %d solves  p50=%.2fms  p95=%.2fms  p99=%.2fms  max=%.2fms\n",
			h.Count, h.Quantile(0.50)*1e3, h.Quantile(0.95)*1e3, h.Quantile(0.99)*1e3, h.Max*1e3)
	}
	if *chart {
		cdfs, err := vb.Fig7CDFs(res)
		if err != nil {
			log.Fatal(err)
		}
		sets := map[string][]vb.Point{}
		for pol, pts := range cdfs {
			sets[pol.String()] = pts
		}
		c, err := vb.PlotCDFs(sets, vb.PlotOptions{Title: "Fig 7: CDF of per-step transfer (GB)", Height: 12})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(c)
	}
	fmt.Println("  group:")
	for _, s := range res.Group {
		fmt.Printf("    %-9s %-6s (%.1f, %.1f) %v MW\n", s.Name, s.Source, s.Latitude, s.Longitude, s.CapacityMW)
	}
}
