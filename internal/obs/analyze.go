package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// FlowKey identifies one directed site→site migration edge.
type FlowKey struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// TraceAnalysis summarizes a recorded event stream offline: per-type,
// per-app and per-site aggregates, the site×site migration flow matrix,
// solver latency percentiles, and warm-start hit rates.
//
// Types is accumulated with exactly the same operations, in the same
// order, as the live Tracer's stats (Count++, GB += e.GB, Cores +=
// e.Cores per event), so on a complete JSONL stream it reconciles
// bit-exactly with Tracer.AllStats() — float-for-float, not just
// approximately.
type TraceAnalysis struct {
	// Events is the total number of events analyzed.
	Events int `json:"events"`
	// Types aggregates per event type, bit-exact with the live tracer.
	Types map[EventType]TypeStats `json:"types,omitempty"`
	// Apps and Sites aggregate all events carrying an app ID (App >= 0)
	// or a source site (Site >= 0) respectively.
	Apps  map[int]TypeStats `json:"apps,omitempty"`
	Sites map[int]TypeStats `json:"sites,omitempty"`
	// Flows is the site×site migration matrix: GB moved per directed
	// src→dst edge, summed over planned reallocs, forced migrations and
	// VM moves with both endpoints known.
	Flows map[FlowKey]float64 `json:"-"`
	// SolveNS holds every MIPSolveFinish duration, sorted ascending, so
	// percentiles are exact (the full sample is available offline).
	SolveNS []int64 `json:"solve_ns,omitempty"`
	// WarmSolves and ColdSolves count MIPSolveFinish events whose Detail
	// marks the warm-start outcome.
	WarmSolves int64 `json:"warm_solves"`
	ColdSolves int64 `json:"cold_solves"`
	// Pivots and Refactors total the solver kernel counters over all
	// MIPSolveFinish events; MaxEtaLen is the longest sparse-LU eta chain
	// any solve finished with.
	Pivots    int64 `json:"pivots,omitempty"`
	Refactors int64 `json:"refactors,omitempty"`
	MaxEtaLen int   `json:"max_eta_len,omitempty"`
}

// Analyze aggregates an event stream in order. Events must be in emission
// order (as written by a JSONL sink) for bit-exact reconciliation.
func Analyze(events []Event) *TraceAnalysis {
	a := &TraceAnalysis{
		Types: map[EventType]TypeStats{},
		Apps:  map[int]TypeStats{},
		Sites: map[int]TypeStats{},
		Flows: map[FlowKey]float64{},
	}
	for _, e := range events {
		a.Events++
		// Mirror Tracer.Emit's accumulation exactly: same ops, same order.
		s := a.Types[e.Type]
		s.Count++
		s.GB += e.GB
		s.Cores += e.Cores
		a.Types[e.Type] = s
		if e.App >= 0 {
			s := a.Apps[e.App]
			s.Count++
			s.GB += e.GB
			s.Cores += e.Cores
			a.Apps[e.App] = s
		}
		if e.Site >= 0 {
			s := a.Sites[e.Site]
			s.Count++
			s.GB += e.GB
			s.Cores += e.Cores
			a.Sites[e.Site] = s
		}
		switch e.Type {
		case PlannedRealloc, ForcedMigration, VMMoved:
			if e.Site >= 0 && e.Dst >= 0 {
				a.Flows[FlowKey{Src: e.Site, Dst: e.Dst}] += e.GB
			}
		case MIPSolveFinish:
			a.SolveNS = append(a.SolveNS, e.DurNS)
			a.Pivots += e.Pivots
			a.Refactors += e.Refactors
			if e.EtaLen > a.MaxEtaLen {
				a.MaxEtaLen = e.EtaLen
			}
			switch e.Detail {
			case "warm":
				a.WarmSolves++
			case "cold":
				a.ColdSolves++
			}
		}
	}
	sort.Slice(a.SolveNS, func(i, j int) bool { return a.SolveNS[i] < a.SolveNS[j] })
	return a
}

// SolveQuantile returns the exact q-quantile of solver wall-clock time
// (nearest-rank on the full sorted sample; zero when no solves).
func (a *TraceAnalysis) SolveQuantile(q float64) time.Duration {
	n := len(a.SolveNS)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(a.SolveNS[0])
	}
	if q >= 1 {
		return time.Duration(a.SolveNS[n-1])
	}
	i := int(q * float64(n))
	if i >= n {
		i = n - 1
	}
	return time.Duration(a.SolveNS[i])
}

// WarmHitRate returns the warm-start fraction of marked solves (0 when
// none are marked).
func (a *TraceAnalysis) WarmHitRate() float64 {
	total := a.WarmSolves + a.ColdSolves
	if total == 0 {
		return 0
	}
	return float64(a.WarmSolves) / float64(total)
}

// WriteText renders the analysis as the human-readable report vbobs
// prints: per-type, per-app and per-site tables, the migration flow
// matrix, solver percentiles and warm-start rates.
func (a *TraceAnalysis) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%d events\n\n", a.Events); err != nil {
		return err
	}

	fmt.Fprintf(w, "%-22s %10s %14s %14s\n", "event type", "count", "GB", "cores")
	for _, ty := range sortedTypeKeys(a.Types) {
		s := a.Types[ty]
		fmt.Fprintf(w, "%-22s %10d %14.6g %14.6g\n", ty, s.Count, s.GB, s.Cores)
	}

	if len(a.Apps) > 0 {
		fmt.Fprintf(w, "\n%-22s %10s %14s %14s\n", "app", "events", "GB", "cores")
		for _, id := range sortedIntKeys(a.Apps) {
			s := a.Apps[id]
			fmt.Fprintf(w, "app %-18d %10d %14.6g %14.6g\n", id, s.Count, s.GB, s.Cores)
		}
	}
	if len(a.Sites) > 0 {
		fmt.Fprintf(w, "\n%-22s %10s %14s %14s\n", "site", "events", "GB", "cores")
		for _, id := range sortedIntKeys(a.Sites) {
			s := a.Sites[id]
			fmt.Fprintf(w, "site %-17d %10d %14.6g %14.6g\n", id, s.Count, s.GB, s.Cores)
		}
	}

	if len(a.Flows) > 0 {
		fmt.Fprintf(w, "\nmigration flows (GB, src row -> dst col)\n")
		sites := flowSites(a.Flows)
		fmt.Fprintf(w, "%8s", "")
		for _, d := range sites {
			fmt.Fprintf(w, " %12s", fmt.Sprintf("->%d", d))
		}
		fmt.Fprintln(w)
		for _, src := range sites {
			fmt.Fprintf(w, "site %3d", src)
			for _, dst := range sites {
				fmt.Fprintf(w, " %12.6g", a.Flows[FlowKey{Src: src, Dst: dst}])
			}
			fmt.Fprintln(w)
		}
	}

	if len(a.SolveNS) > 0 {
		fmt.Fprintf(w, "\nsolver: %d solves  p50 %v  p95 %v  p99 %v  max %v\n",
			len(a.SolveNS),
			a.SolveQuantile(0.50), a.SolveQuantile(0.95),
			a.SolveQuantile(0.99), a.SolveQuantile(1))
		if a.WarmSolves+a.ColdSolves > 0 {
			fmt.Fprintf(w, "warm-start: %d warm / %d cold (%.1f%% hit rate)\n",
				a.WarmSolves, a.ColdSolves, 100*a.WarmHitRate())
		}
		if a.Pivots > 0 || a.Refactors > 0 {
			fmt.Fprintf(w, "basis: %d pivots  %d refactorizations  max eta chain %d\n",
				a.Pivots, a.Refactors, a.MaxEtaLen)
		}
	}
	return nil
}

func sortedTypeKeys(m map[EventType]TypeStats) []EventType {
	out := make([]EventType, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedIntKeys(m map[int]TypeStats) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// flowSites returns the sorted union of sites appearing in the matrix.
func flowSites(flows map[FlowKey]float64) []int {
	seen := map[int]bool{}
	for k := range flows {
		seen[k.Src] = true
		seen[k.Dst] = true
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}
