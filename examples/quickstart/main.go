// Quickstart: generate renewable power for a multi-VB site group, decompose
// it into stable and variable energy, and place one application with the
// network- and power-aware scheduler.
package main

import (
	"fmt"
	"log"
	"time"

	vb "github.com/vbcloud/vb"
)

func main() {
	log.SetFlags(0)

	// 1. A world of correlated renewable sites: Norwegian solar plus UK
	// and Portuguese wind (the paper's Fig 3 trio).
	world := vb.NewWorld(vb.DefaultSeed)
	sites := vb.EuropeanTrio()
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

	power, err := world.GeneratePower(sites, start, time.Hour, 7*24)
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range sites {
		fmt.Printf("%-9s mean %6.1f MW of %v MW capacity\n", s.Name, power[i].Mean(), s.CapacityMW)
	}

	// 2. How much of the combined energy is guaranteed (stable) over each
	// day? Stable energy can back on-demand-class VMs (§2.3).
	combined, err := vb.SumSeries(power...)
	if err != nil {
		log.Fatal(err)
	}
	split, err := vb.StableVariableSplit(combined, 24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncombined week: %.0f MWh stable + %.0f MWh variable (%.0f%% stable)\n",
		split.StableMWh, split.VariableMWh, split.StableFraction()*100)

	// 3. The sites form a latency clique (every pair under 60 ms), so an
	// application can be split across them.
	g, err := vb.NewGraph(sites, 60)
	if err != nil {
		log.Fatal(err)
	}
	cliques, err := g.Cliques(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-site groups under 60 ms: %d\n", len(cliques))

	// 4. Schedule one 400-core application (70% stable class) across the
	// group with the MIP policy over a 7-day timeline of 6-hour steps.
	steps := 7 * 4
	sched, err := vb.NewScheduler(vb.SchedulerConfig{
		Policy:   vb.PolicyMIP,
		PlanStep: 6 * time.Hour,
	}, len(sites), steps)
	if err != nil {
		log.Fatal(err)
	}
	// Predicted capacity: each site's powered cores at the 70% admission
	// target (using truth as a perfect forecast for this demo).
	coarse := make([]vb.Series, len(power))
	for i := range power {
		coarse[i], err = power[i].WindowMin(6 * time.Hour)
		if err != nil {
			log.Fatal(err)
		}
	}
	predCap := func(site, step int) float64 {
		frac := coarse[site].Values[step] / sites[site].CapacityMW
		return 0.7 * frac * 28000
	}
	app := vb.AppDemand{ID: 1, Cores: 400, StableCores: 280, MemGBPerCore: 4, Start: start}
	plan, err := sched.Place(app, 0, steps, predCap, nil, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napp 1 placed across %d site(s); allocation at step 0:\n", plan.SitesUsed())
	for i, s := range sites {
		fmt.Printf("  %-9s %5.0f cores\n", s.Name, plan.Alloc[i][0])
	}
}
