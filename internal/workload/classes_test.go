package workload

import (
	"testing"
	"time"
)

func TestClassEncodingPinned(t *testing.T) {
	// The integer values are wire format (gob snapshots, JSON request logs):
	// they must never change.
	pins := []struct {
		c    Class
		n    int
		name string
	}{
		{Stable, 0, "stable"},
		{Degradable, 1, "degradable"},
		{RealTime, 2, "realtime"},
		{Interactive, 3, "interactive"},
		{Batch, 4, "batch"},
	}
	for _, p := range pins {
		if int(p.c) != p.n {
			t.Errorf("%s encodes as %d, want %d", p.name, int(p.c), p.n)
		}
		if p.c.String() != p.name {
			t.Errorf("class %d String() = %q, want %q", p.n, p.c.String(), p.name)
		}
		back, err := ParseClass(p.name)
		if err != nil || back != p.c {
			t.Errorf("ParseClass(%q) = %v, %v", p.name, back, err)
		}
		if !p.c.Valid() {
			t.Errorf("%s should be valid", p.name)
		}
	}
	if _, err := ParseClass("spot"); err == nil {
		t.Error("unknown class name should not parse")
	}
	if Class(99).Valid() {
		t.Error("class 99 should be invalid")
	}
	if Class(99).String() == "" {
		t.Error("invalid class String() should still describe itself")
	}
}

func TestClassFirm(t *testing.T) {
	for _, c := range AllClasses {
		want := c != Degradable
		if c.Firm() != want {
			t.Errorf("%v.Firm() = %v, want %v", c, c.Firm(), want)
		}
	}
}

func TestClassPauseWeightOrdering(t *testing.T) {
	// Stable must weigh exactly 1 so legacy MIP objectives are bit-identical.
	if Stable.PauseWeight() != 1 {
		t.Fatalf("Stable weight %v, must be exactly 1", Stable.PauseWeight())
	}
	if Interactive.PauseWeight() != Stable.PauseWeight() {
		t.Error("Interactive should weigh the same as legacy Stable")
	}
	// The degradation ladder: RealTime > Interactive > Batch > Degradable.
	if !(RealTime.PauseWeight() > Interactive.PauseWeight() &&
		Interactive.PauseWeight() > Batch.PauseWeight() &&
		Batch.PauseWeight() > Degradable.PauseWeight()) {
		t.Error("pause weights out of order")
	}
	if Degradable.PauseWeight() != 0 {
		t.Error("Degradable pauses must be free")
	}
}

func TestClassPauseTolerance(t *testing.T) {
	if RealTime.PauseTolerance() != 0 {
		t.Error("RealTime must tolerate no pause")
	}
	if Interactive.PauseTolerance() <= 0 || Interactive.PauseTolerance() >= Batch.PauseTolerance() {
		t.Error("Interactive tolerance should sit between RealTime and Batch")
	}
	if Stable.PauseTolerance() != Interactive.PauseTolerance() {
		t.Error("legacy Stable maps onto Interactive tolerance")
	}
	if Degradable.PauseTolerance() >= 0 {
		t.Error("Degradable tolerance is unbounded (negative sentinel)")
	}
	if Batch.PauseTolerance() != 24*time.Hour {
		t.Errorf("Batch tolerance %v, want 24h", Batch.PauseTolerance())
	}
}

func TestAllClassesLadderOrder(t *testing.T) {
	if len(AllClasses) != 5 {
		t.Fatalf("AllClasses has %d entries, want 5", len(AllClasses))
	}
	// Most critical first: weights must be non-increasing down the ladder.
	for i := 1; i < len(AllClasses); i++ {
		if AllClasses[i].PauseWeight() > AllClasses[i-1].PauseWeight() {
			t.Errorf("AllClasses[%d]=%v outweighs AllClasses[%d]=%v",
				i, AllClasses[i], i-1, AllClasses[i-1])
		}
	}
}
