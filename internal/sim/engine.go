package sim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/vbcloud/vb/internal/core"
	"github.com/vbcloud/vb/internal/obs"
	"github.com/vbcloud/vb/internal/trace"
	"github.com/vbcloud/vb/internal/workload"
)

// Engine is the exported stepping core behind Run: the same admit → replan
// → reallocate → account loop, advanced one plan step at a time so a
// long-lived process (cmd/vbserve) can feed arrivals as they happen instead
// of handing over a complete trace up front. Run is a thin loop over
// Advance; feeding an Engine the batch arrivals in Start order reproduces
// Run's decisions bit-for-bit.
type Engine struct {
	cfg         core.Config
	in          Input
	base        trace.Series
	numSites    int
	T           int
	stepsPerDay int
	util        float64
	reg         *obs.Registry
	sched       *core.Scheduler
	vecs        *simVecs

	active []*appState
	// classed is set once any admitted app carries a non-legacy class
	// breakdown; until then the degradation ladder is skipped entirely, so
	// legacy runs take exactly the seed code path.
	classed bool
	step    int
	res     Result
}

// appState is one admitted application's live scheduling state.
type appState struct {
	demand  core.AppDemand
	plan    core.Plan
	cur     []float64 // current cores per site
	endStep int
	// weight and shares cache the demand's pause weight and firm-class
	// fractions for the ladder sort and per-class attribution.
	weight float64
	shares []classShare
}

// classShare is one firm class's fraction of an app's stable cores, used to
// attribute pauses, shortfalls, and traffic to SLO classes.
type classShare struct {
	class workload.Class
	frac  float64
}

// firmShares computes a demand's firm-class fractions in ladder order
// (deterministic iteration). Legacy demands reduce to {Stable: 1}.
func firmShares(d core.AppDemand) []classShare {
	bd := d.ClassBreakdown()
	var total float64
	for _, c := range workload.AllClasses {
		if c.Firm() {
			total += bd[c]
		}
	}
	if total <= 0 {
		return nil
	}
	var out []classShare
	for _, c := range workload.AllClasses {
		if c.Firm() && bd[c] > 0 {
			out = append(out, classShare{class: c, frac: bd[c] / total})
		}
	}
	return out
}

// StepReport summarizes what one Advance call did — the per-step decision
// record a daemon logs and serves.
type StepReport struct {
	Step int       `json:"step"`
	Now  time.Time `json:"now"`
	// Admitted lists app IDs admitted this step (in arrival order).
	Admitted []int `json:"admitted,omitempty"`
	// Replans counts daily re-planning invocations this step.
	Replans int `json:"replans,omitempty"`
	// PlannedGB and ForcedGB split this step's migration traffic.
	PlannedGB float64 `json:"planned_gb"`
	ForcedGB  float64 `json:"forced_gb"`
	// TransferGB is the step's total migration traffic.
	TransferGB float64 `json:"transfer_gb"`
	// PausedCoreSteps and ShortfallCoreSteps are this step's availability
	// violations.
	PausedCoreSteps    float64 `json:"paused_core_steps"`
	ShortfallCoreSteps float64 `json:"shortfall_core_steps"`
	// PausedByClass and ShortfallByClass break the violations down by SLO
	// class name (absent when the step had none).
	PausedByClass    map[string]float64 `json:"paused_by_class,omitempty"`
	ShortfallByClass map[string]float64 `json:"shortfall_by_class,omitempty"`
}

// addClassDelta accumulates a per-class step delta, creating the map on
// first use so clean steps keep their compact JSON form.
func addClassDelta(m *map[string]float64, c workload.Class, v float64) {
	if *m == nil {
		*m = make(map[string]float64)
	}
	(*m)[c.String()] += v
}

// validateStreaming checks everything Input.Validate does except the
// requirement that Apps be non-empty: a streaming engine receives its
// demands through Advance.
func (in Input) validateStreaming() error {
	if len(in.Actual) == 0 {
		return fmt.Errorf("sim: no sites")
	}
	if len(in.Bundles) != len(in.Actual) {
		return fmt.Errorf("sim: %d bundles for %d sites", len(in.Bundles), len(in.Actual))
	}
	if in.TotalCores <= 0 {
		return fmt.Errorf("sim: non-positive core count %v", in.TotalCores)
	}
	base := in.Actual[0]
	if base.IsEmpty() {
		return trace.ErrEmptySeries
	}
	for _, s := range in.Actual[1:] {
		if s.Step != base.Step || s.Len() != base.Len() || !s.Start.Equal(base.Start) {
			return fmt.Errorf("sim: power series disagree on time base")
		}
	}
	for _, a := range in.Apps {
		if err := a.Validate(); err != nil {
			return err
		}
	}
	if in.Faults != nil {
		sites, steps := in.Faults.Dims()
		if sites != len(in.Actual) || steps != base.Len() {
			return fmt.Errorf("sim: fault injector compiled for %d sites × %d steps, scenario is %d × %d",
				sites, steps, len(in.Actual), base.Len())
		}
	}
	return nil
}

// NewEngine builds a stepping engine. Unlike Run, Input.Apps may be empty:
// demands arrive through Advance. Apps must be fed at (or before) the first
// step whose time reaches their Start, in Start order, to match batch
// semantics.
func NewEngine(cfg core.Config, in Input) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := in.validateStreaming(); err != nil {
		return nil, err
	}
	base := in.Actual[0]
	if cfg.PlanStep != base.Step {
		return nil, fmt.Errorf("sim: plan step %v != power step %v", cfg.PlanStep, base.Step)
	}
	numSites := len(in.Actual)
	T := base.Len()
	// One registry observes the whole run: the engine's (preferred) or the
	// scheduler config's; whichever is set also covers the other layer.
	reg := in.Obs
	if reg == nil {
		reg = cfg.Obs
	} else if cfg.Obs == nil {
		cfg.Obs = reg
	}
	reg.SetGauge("sim.sites", float64(numSites))
	reg.SetGauge("sim.steps", float64(T))
	if reg != nil {
		for _, b := range in.Bundles {
			b.SetObs(reg)
		}
	}
	sched, err := core.NewScheduler(cfg, numSites, T)
	if err != nil {
		return nil, err
	}
	stepsPerDay := int(24 * time.Hour / base.Step)
	if stepsPerDay < 1 {
		stepsPerDay = 1
	}
	e := &Engine{
		cfg: cfg, in: in, base: base,
		numSites: numSites, T: T, stepsPerDay: stepsPerDay,
		util: effectiveUtil(cfg), reg: reg,
		sched: sched,
		vecs:  newSimVecs(reg, cfg.Policy, numSites),
		res: Result{
			Policy:           cfg.Policy,
			Transfer:         trace.New(base.Start, base.Step, T),
			PerApp:           make(map[int]float64),
			PerAppPaused:     make(map[int]float64),
			PerAppDemand:     make(map[int]float64),
			PausedByClass:    make(map[workload.Class]float64),
			ShortfallByClass: make(map[workload.Class]float64),
			DemandByClass:    make(map[workload.Class]float64),
			TransferByClass:  make(map[workload.Class]trace.Series),
		},
	}
	e.res.InBySite = make([]trace.Series, numSites)
	e.res.OutBySite = make([]trace.Series, numSites)
	for i := 0; i < numSites; i++ {
		e.res.InBySite[i] = trace.New(base.Start, base.Step, T)
		e.res.OutBySite[i] = trace.New(base.Start, base.Step, T)
	}
	return e, nil
}

// Step returns the next step Advance will execute.
func (e *Engine) Step() int { return e.step }

// Steps returns the total step count of the run's timeline.
func (e *Engine) Steps() int { return e.T }

// Now returns the simulation time of the next step.
func (e *Engine) Now() time.Time { return e.base.TimeAt(e.step) }

// Done reports whether the timeline is exhausted.
func (e *Engine) Done() bool { return e.step >= e.T }

// Result returns the accumulated run result. It is valid at any point;
// after Done it equals what Run would have returned.
func (e *Engine) Result() Result { return e.res }

// addClassTransfer attributes a move's traffic to the app's firm classes,
// creating each class's step series on first use.
func (e *Engine) addClassTransfer(a *appState, t int, gb float64) {
	for _, cs := range a.shares {
		s, ok := e.res.TransferByClass[cs.class]
		if !ok {
			s = trace.New(e.base.Start, e.base.Step, e.T)
			e.res.TransferByClass[cs.class] = s
		}
		s.Values[t] += gb * cs.frac
		e.vecs.transferClass(cs.class, gb*cs.frac)
	}
}

func (e *Engine) actCap(site, t int) float64 {
	// The fault factor multiplies last: a nil injector returns exactly 1
	// and v*1.0 is bit-exact, so fault-free runs match the seed bit for
	// bit.
	return e.util * e.in.Actual[site].Values[t] * e.in.TotalCores * e.in.Faults.CapFactor(site, t)
}

// Advance executes one plan step: retire finished apps, replan daily,
// admit the given arrivals, execute planned reallocations and forced
// migrations, account pauses and shortfalls. Arrivals are admitted in the
// given order; pass them sorted by Start for batch parity.
func (e *Engine) Advance(arrivals []core.AppDemand) (StepReport, error) {
	if e.step >= e.T {
		return StepReport{}, fmt.Errorf("sim: engine already at end of timeline (step %d of %d)", e.step, e.T)
	}
	t := e.step
	now := e.base.TimeAt(t)
	rep := StepReport{Step: t, Now: now}
	reg := e.reg
	res := &e.res
	numSites := e.numSites
	transferBefore := res.Transfer.Values[t]
	plannedBefore, forcedBefore := res.PlannedGB, res.ForcedGB
	pausedBefore, shortBefore := res.PausedStableCoreSteps, res.ShortfallCoreSteps

	// Fault injection: record onsets, set this step's solver pressure, and
	// take the step's WAN bandwidth budget (nil = unlimited). All are
	// no-ops with no injector.
	inj := e.in.Faults
	inj.OnStep(t, reg)
	e.sched.SetSolverPressure(inj.SolverInflation(t))
	wb := inj.WANBudget(t)

	// predCap is the forecast at face value; stableCap is the rolling
	// minimum with lead-dependent pessimism — the paper's "place VMs on
	// sites which are predicted to have stable power in the future"
	// preference (see capacityFns).
	predCap, stableCap := capacityFns(e.in, e.base, e.util, now, t, e.stepsPerDay, e.T)

	// Retire finished apps.
	keep := e.active[:0]
	for _, a := range e.active {
		if t >= a.endStep {
			continue
		}
		keep = append(keep, a)
	}
	e.active = keep

	// Daily re-planning as forecasts refresh ("as the environment changes
	// ... we need to rerun the optimization", §3.1). All MIP variants
	// replan; they differ in lookahead horizon.
	if e.cfg.Policy != core.Greedy && t > 0 && t%e.stepsPerDay == 0 {
		for _, a := range e.active {
			e.sched.Uncommit(a.plan, t)
			plan, err := e.sched.Place(a.demand, t, a.endStep, predCap, stableCap, a.cur, a.plan.Alloc)
			if err != nil {
				return rep, err
			}
			a.plan = plan
			res.Placements++
			rep.Replans++
			reg.Inc("sim.replans")
			reg.Emit(obs.Event{Type: obs.PlanComputed, Step: t, App: a.demand.ID, Site: -1, Dst: -1,
				Cores: a.demand.StableCores, Detail: "replan"})
		}
	}

	// Admit arriving apps.
	for _, d := range arrivals {
		if err := d.Validate(); err != nil {
			return rep, err
		}
		endStep := e.T
		if !d.End.IsZero() {
			if idx := e.base.IndexAt(d.End); idx >= 0 {
				endStep = idx + 1
			}
		}
		if endStep <= t {
			continue // app entirely in the past
		}
		if d.StableCores <= 0 {
			continue // pure-degradable apps never migrate (no traffic)
		}
		plan, err := e.sched.Place(d, t, endStep, predCap, stableCap, nil, nil)
		if err != nil {
			return rep, err
		}
		st := &appState{demand: d, plan: plan, cur: make([]float64, numSites), endStep: endStep,
			weight: d.PauseWeight(), shares: firmShares(d)}
		if len(st.shares) != 1 || st.shares[0].class != workload.Stable {
			e.classed = true
		}
		// Initial placement is free (the VMs boot where scheduled).
		for s := 0; s < numSites; s++ {
			st.cur[s] = plan.Alloc[s][t]
		}
		e.active = append(e.active, st)
		res.Placements++
		rep.Admitted = append(rep.Admitted, d.ID)
		reg.Inc("sim.admissions")
		reg.Emit(obs.Event{Type: obs.PlanComputed, Step: t, App: d.ID, Site: -1, Dst: -1,
			Cores: d.StableCores, Detail: "admit"})
	}

	// Current per-site load.
	load := make([]float64, numSites)
	for _, a := range e.active {
		for s := 0; s < numSites; s++ {
			load[s] += a.cur[s]
		}
	}

	// Execute planned reallocations, gated by *actual* headroom at the
	// destination: a planned move into a site that in reality has no power
	// simply does not happen this step (no phantom traffic), and the cores
	// stay at their source until the plan becomes executable.
	for _, a := range e.active {
		if a.plan.Alloc == nil {
			continue
		}
		for dst := 0; dst < numSites; dst++ {
			want := a.plan.Alloc[dst][t] - a.cur[dst]
			// Sub-core wants are LP rounding noise, not real moves.
			if want <= 1e-4 {
				continue
			}
			head := e.actCap(dst, t) - load[dst]
			if head <= 1e-9 {
				continue
			}
			want = math.Min(want, head)
			// Pull cores from sites holding more than their target.
			for src := 0; src < numSites && want > 1e-9; src++ {
				if src == dst {
					continue
				}
				excess := a.cur[src] - a.plan.Alloc[src][t]
				if excess <= 1e-9 {
					continue
				}
				x := math.Min(excess, want)
				// WAN faults cap the link's per-step traffic: move only
				// what the remaining bandwidth carries; the rest waits at
				// the source for a later step.
				if wb != nil {
					x = math.Min(x, wb.Remaining(src, dst)/a.demand.MemGBPerCore)
					if x <= 1e-9 {
						continue
					}
				}
				a.cur[src] -= x
				a.cur[dst] += x
				load[src] -= x
				load[dst] += x
				want -= x
				gb := x * a.demand.MemGBPerCore
				wb.Consume(src, dst, gb)
				res.Transfer.Values[t] += gb
				res.PerApp[a.demand.ID] += gb
				res.PlannedGB += gb
				res.InBySite[dst].Values[t] += gb
				res.OutBySite[src].Values[t] += gb
				e.addClassTransfer(a, t, gb)
				reg.Emit(obs.Event{Type: obs.PlannedRealloc, Step: t, App: a.demand.ID,
					Site: src, Dst: dst, Cores: x, GB: gb})
				e.vecs.plannedMove(a.demand.ID, src, dst, gb)
			}
		}
	}
	// Degradation ladder: when SLO classes are in play, forced migrations
	// drain the cheapest-to-pause apps first (ascending pause weight: Batch
	// before Interactive before RealTime), so whatever cannot move — and
	// therefore pauses — lands on the most tolerant workloads. Equal weights
	// keep admission order (SliceStable), and legacy runs skip the sort
	// entirely: every weight is exactly 1, so the seed decision sequence is
	// untouched.
	forcedOrder := e.active
	if e.classed {
		forcedOrder = append([]*appState(nil), e.active...)
		sort.SliceStable(forcedOrder, func(i, j int) bool {
			return forcedOrder[i].weight < forcedOrder[j].weight
		})
	}
	for s := 0; s < numSites; s++ {
		over := load[s] - e.actCap(s, t)
		if over <= 1e-9 {
			continue
		}
		// All tracked cores are firm (degradable VMs pause in place for
		// free and are not tracked here): migrate the overflow to sites
		// with actual headroom.
		for _, a := range forcedOrder {
			if over <= 1e-9 {
				break
			}
			move := math.Min(a.cur[s], over)
			if move <= 1e-9 {
				continue
			}
			moved := 0.0
			for d := 0; d < numSites && move-moved > 1e-9; d++ {
				if d == s {
					continue
				}
				head := e.actCap(d, t) - load[d]
				if head <= 1e-9 {
					continue
				}
				x := math.Min(head, move-moved)
				// A cut or saturated link blocks the rescue: the cores
				// stay and pause below.
				if wb != nil {
					x = math.Min(x, wb.Remaining(s, d)/a.demand.MemGBPerCore)
					if x <= 1e-9 {
						continue
					}
				}
				a.cur[s] -= x
				a.cur[d] += x
				load[s] -= x
				load[d] += x
				moved += x
				gb := x * a.demand.MemGBPerCore
				wb.Consume(s, d, gb)
				res.Transfer.Values[t] += gb
				res.PerApp[a.demand.ID] += gb
				res.ForcedGB += gb
				res.InBySite[d].Values[t] += gb
				res.OutBySite[s].Values[t] += gb
				e.addClassTransfer(a, t, gb)
				reg.Emit(obs.Event{Type: obs.ForcedMigration, Step: t, App: a.demand.ID,
					Site: s, Dst: d, Cores: x, GB: gb})
				e.vecs.forcedMove(a.demand.ID, s, d, gb)
			}
			// Whatever could not move pauses in place: availability
			// violation.
			rest := move - moved
			if rest > 1e-9 {
				res.PausedStableCoreSteps += rest
				res.PerAppPaused[a.demand.ID] += rest
				for _, cs := range a.shares {
					res.PausedByClass[cs.class] += rest * cs.frac
					addClassDelta(&rep.PausedByClass, cs.class, rest*cs.frac)
					e.vecs.pauseClass(cs.class, rest*cs.frac)
				}
				reg.Emit(obs.Event{Type: obs.StablePause, Step: t, App: a.demand.ID,
					Site: s, Dst: -1, Cores: rest})
				e.vecs.pause(a.demand.ID, s, rest)
			}
			over -= move
		}
	}
	// Greedy has no forward plan: after forced moves, the VMs stay where
	// they landed. Rewrite the plan's future to the new reality so later
	// steps do not try to "move back".
	if e.cfg.Policy == core.Greedy {
		for _, a := range e.active {
			e.sched.Uncommit(a.plan, t)
			for s := 0; s < numSites; s++ {
				for tt := t; tt < a.endStep; tt++ {
					a.plan.Alloc[s][tt] = a.cur[s]
				}
			}
			e.sched.Commit(a.plan, t)
		}
	}

	// Record scheduler shortfall (stable demand the plan itself left
	// unplaced) and accumulate per-app demand for availability.
	for _, a := range e.active {
		var placed float64
		for s := 0; s < numSites; s++ {
			placed += a.cur[s]
		}
		if gap := a.demand.StableCores - placed; gap > 1e-9 {
			res.ShortfallCoreSteps += gap
			res.PerAppPaused[a.demand.ID] += gap
			for _, cs := range a.shares {
				res.ShortfallByClass[cs.class] += gap * cs.frac
				addClassDelta(&rep.ShortfallByClass, cs.class, gap*cs.frac)
				e.vecs.shortClass(cs.class, gap*cs.frac)
			}
			reg.Emit(obs.Event{Type: obs.Shortfall, Step: t, App: a.demand.ID,
				Site: -1, Dst: -1, Cores: gap})
			e.vecs.short(a.demand.ID, gap)
		}
		res.PerAppDemand[a.demand.ID] += a.demand.StableCores
		for _, cs := range a.shares {
			res.DemandByClass[cs.class] += a.demand.StableCores * cs.frac
		}
	}
	reg.Observe("sim.step_transfer_gb", res.Transfer.Values[t])

	rep.TransferGB = res.Transfer.Values[t] - transferBefore
	rep.PlannedGB = res.PlannedGB - plannedBefore
	rep.ForcedGB = res.ForcedGB - forcedBefore
	rep.PausedCoreSteps = res.PausedStableCoreSteps - pausedBefore
	rep.ShortfallCoreSteps = res.ShortfallCoreSteps - shortBefore
	e.step++
	return rep, nil
}
