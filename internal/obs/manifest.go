package obs

import (
	"encoding/json"
	"io"
)

// Manifest is the JSON-serializable summary of one observed run: metadata
// set by the caller (seed, policy, fleet) plus everything the registry and
// tracer accumulated. It is what the CLIs' -metrics flags write.
type Manifest struct {
	Seed       uint64                       `json:"seed,omitempty"`
	Policy     string                       `json:"policy,omitempty"`
	Fleet      []string                     `json:"fleet,omitempty"`
	Labels     map[string]string            `json:"labels,omitempty"`
	Counters   map[string]float64           `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Events aggregates per-event-type counts and exact GB/core totals.
	Events map[EventType]TypeStats `json:"events,omitempty"`
}

// Manifest snapshots the registry (and its tracer) into a Manifest. The
// caller fills Seed, Policy and Fleet. A nil registry yields a zero
// manifest.
func (r *Registry) Manifest() Manifest {
	if r == nil {
		return Manifest{}
	}
	r.mu.Lock()
	m := Manifest{
		Labels:     make(map[string]string, len(r.labels)),
		Counters:   make(map[string]float64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for k, v := range r.labels {
		m.Labels[k] = v
	}
	for k, v := range r.counters {
		m.Counters[k] = v
	}
	for k, v := range r.gauges {
		m.Gauges[k] = v
	}
	for k, h := range r.hists {
		m.Histograms[k] = h.snapshot()
	}
	tr := r.tracer
	r.mu.Unlock()
	m.Events = tr.AllStats()
	return m
}

// WriteJSON writes the manifest as indented JSON.
func (m Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
