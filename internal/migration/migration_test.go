package migration

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	if err := (Model{DirtyRateGBps: -1, BandwidthGBps: 1}).Validate(); err == nil {
		t.Error("negative dirty rate should error")
	}
	if err := (Model{DirtyRateGBps: 0.1}).Validate(); err == nil {
		t.Error("zero bandwidth should error")
	}
}

func TestMigrateIdleVM(t *testing.T) {
	// Zero dirty rate: one copy of memory, no extra rounds, downtime ~ 0.
	m := Model{DirtyRateGBps: 0, BandwidthGBps: 1.25}
	r, err := m.Migrate(10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rounds != 0 {
		t.Errorf("rounds = %d, want 0", r.Rounds)
	}
	if math.Abs(r.TransferredGB-10) > 1e-9 {
		t.Errorf("transferred = %v, want 10", r.TransferredGB)
	}
	if math.Abs(r.Amplification-1) > 1e-9 {
		t.Errorf("amplification = %v, want 1", r.Amplification)
	}
	if r.DowntimeSec != 0 {
		t.Errorf("downtime = %v, want 0", r.DowntimeSec)
	}
	if !r.Converged {
		t.Error("idle VM should converge")
	}
}

func TestMigrateBusyVM(t *testing.T) {
	// r = 0.08: amplification approaches 1/(1-r) ~ 1.087.
	m := DefaultModel()
	r, err := m.Migrate(32)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Error("r=0.08 should converge")
	}
	if r.Amplification < 1.0 || r.Amplification > 1.2 {
		t.Errorf("amplification = %v, want ~1.087", r.Amplification)
	}
	// Downtime far below worst case.
	worst, err := m.WorstCaseDowntime(32)
	if err != nil {
		t.Fatal(err)
	}
	if r.DowntimeSec >= worst/10 {
		t.Errorf("downtime %v should be tiny vs stop-and-copy %v", r.DowntimeSec, worst)
	}
}

func TestMigrateNonConverging(t *testing.T) {
	// Dirty rate above bandwidth: pre-copy cannot converge; MaxRounds
	// ends it.
	m := Model{DirtyRateGBps: 2, BandwidthGBps: 1, MaxRounds: 5}
	r, err := m.Migrate(8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Converged {
		t.Error("r=2 should not converge")
	}
	if r.Rounds != 5 {
		t.Errorf("rounds = %d, want capped at 5", r.Rounds)
	}
	if !m.Converges() {
		// Converges() is the static check.
		_ = r
	} else {
		t.Error("Converges() should be false for r=2")
	}
}

func TestMigrateErrors(t *testing.T) {
	if _, err := DefaultModel().Migrate(0); err == nil {
		t.Error("zero memory should error")
	}
	if _, err := (Model{BandwidthGBps: 0}).Migrate(1); err == nil {
		t.Error("invalid model should error")
	}
	if _, err := DefaultModel().WorstCaseDowntime(0); err == nil {
		t.Error("zero memory should error")
	}
	if _, err := (Model{BandwidthGBps: 0}).WorstCaseDowntime(1); err == nil {
		t.Error("invalid model should error")
	}
}

func TestAmplificationApproachesGeometricLimit(t *testing.T) {
	m := Model{DirtyRateGBps: 0.5, BandwidthGBps: 1.25, StopThresholdGB: 1e-6}
	amp, err := m.Amplification(64)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (1 - 0.4) // 1.667
	if math.Abs(amp-want) > 0.05 {
		t.Errorf("amplification = %v, want ~%v", amp, want)
	}
}

func TestExecutionSlowdown(t *testing.T) {
	m := DefaultModel()
	s, err := m.ExecutionSlowdown(32, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 || s > 0.05 {
		t.Errorf("slowdown = %v, want small positive", s)
	}
	if _, err := m.ExecutionSlowdown(32, 0); err == nil {
		t.Error("zero window should error")
	}
	if _, err := m.ExecutionSlowdown(32, 1); err == nil {
		t.Error("window shorter than migration should error")
	}
}

// Property: transferred bytes are at least the memory size and duration is
// positive, for any converging configuration.
func TestPropMigrationBounds(t *testing.T) {
	f := func(mem8, dirty8 uint8) bool {
		mem := float64(mem8%120) + 1
		dirty := float64(dirty8%90) / 100 // 0 to 0.89 of bandwidth
		m := Model{DirtyRateGBps: dirty, BandwidthGBps: 1}
		r, err := m.Migrate(mem)
		if err != nil {
			return false
		}
		if r.TransferredGB < mem-1e-9 {
			return false
		}
		if r.DurationSec <= 0 {
			return false
		}
		// Amplification bounded by the geometric series plus the final
		// copy.
		limit := 1/(1-dirty) + 1
		return r.Amplification <= limit+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
