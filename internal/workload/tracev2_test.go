package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestTraceV2RoundTrip(t *testing.T) {
	spec := testSpec()
	apps, err := GenerateCohorts(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	h := TraceHeader{Seed: spec.Seed, SpecHash: fmt.Sprintf("%016x", spec.Hash())}
	if err := WriteTraceV2(&buf, h, apps); err != nil {
		t.Fatal(err)
	}
	gotH, gotApps, err := ReadTraceV2(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotH.Format != TraceFormatV2 || gotH.Version != TraceV2Version {
		t.Errorf("header %+v missing format/version", gotH)
	}
	if gotH.Seed != spec.Seed || gotH.SpecHash != h.SpecHash || gotH.Apps != len(apps) {
		t.Errorf("header %+v, want seed %d hash %s apps %d", gotH, spec.Seed, h.SpecHash, len(apps))
	}
	// Replay must be exact: the same apps, byte for byte under JSON.
	ja, _ := json.Marshal(apps)
	jb, _ := json.Marshal(gotApps)
	if !bytes.Equal(ja, jb) {
		t.Error("replayed apps differ from recorded apps")
	}
	// Recording the replayed trace reproduces the file byte for byte.
	var buf2 bytes.Buffer
	if err := WriteTraceV2(&buf2, gotH, gotApps); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("record→replay→record is not byte-identical")
	}
}

func TestTraceV2LegacyAppsRoundTrip(t *testing.T) {
	// Traces from the legacy two-class generator record and replay too.
	apps, err := GenerateApps(AppConfig{
		Seed: 3, Start: start, Duration: 48 * time.Hour,
		MeanAppsPerDay: 12, MeanVMsPerApp: 5, StableFraction: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceV2(&buf, TraceHeader{Seed: 3}, apps); err != nil {
		t.Fatal(err)
	}
	_, got, err := ReadTraceV2(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(apps)
	jb, _ := json.Marshal(got)
	if !bytes.Equal(ja, jb) {
		t.Error("legacy apps do not survive the v2 round trip")
	}
}

func TestReadTraceV2Rejections(t *testing.T) {
	goodHeader := `{"format":"vb.apptrace","version":2,"seed":1,"apps":0}`
	app := `{"id":1,"arrival":"2020-05-01T00:00:00Z","vms":[{"id":1,"cores":2,"memory_gb":4,"class":"stable"}]}`
	cases := map[string]string{
		"empty file":      "",
		"bad json header": "not json",
		"wrong format":    `{"format":"vb.vmtrace","version":2,"seed":1,"apps":0}`,
		"wrong version":   `{"format":"vb.apptrace","version":1,"seed":1,"apps":0}`,
		"unknown field":   `{"format":"vb.apptrace","version":2,"seed":1,"apps":0,"zzz":1}`,
		"count mismatch":  goodHeader + "\n" + app,
		"bad class": strings.Replace(goodHeader, `"apps":0`, `"apps":1`, 1) + "\n" +
			strings.Replace(app, "stable", "spot", 1),
		"zero-core app": strings.Replace(goodHeader, `"apps":0`, `"apps":1`, 1) + "\n" +
			strings.Replace(app, `"cores":2`, `"cores":0`, 1),
		"garbage record": strings.Replace(goodHeader, `"apps":0`, `"apps":1`, 1) + "\nnope",
	}
	for name, in := range cases {
		if _, _, err := ReadTraceV2(strings.NewReader(in)); err == nil {
			t.Errorf("%s: should be rejected", name)
		}
	}
	// Control: the good header alone is a valid empty trace.
	h, apps, err := ReadTraceV2(strings.NewReader(goodHeader))
	if err != nil {
		t.Fatalf("valid empty trace rejected: %v", err)
	}
	if len(apps) != 0 || h.Seed != 1 {
		t.Errorf("empty trace parsed as %+v with %d apps", h, len(apps))
	}
}
