package lp

import (
	"errors"
	"fmt"
	"math"
)

// This file implements the bounded revised simplex that backs Solve and the
// branch-and-bound in internal/mip. Unlike the dense two-phase tableau in
// reference.go it works on the original sparse columns plus a maintained
// basis inverse, supports native per-variable bounds (so integer branching
// tightens a bound instead of appending a row), and keeps its factorization
// and scratch memory alive between solves: re-solving after a bound or RHS
// change warm-starts from the previous optimal basis, usually skipping
// phase 1 entirely.
//
// Pivoting is Dantzig (most negative reduced cost) for speed, with an
// automatic switch to Bland's rule after a run of degenerate steps, which
// restores the guaranteed-termination property of the reference solver.

// Nonbasic/basic variable statuses.
const (
	vsLower int8 = iota // nonbasic at lower bound
	vsUpper             // nonbasic at upper bound
	vsFree              // nonbasic free variable, pinned at zero
	vsBasic
)

// Solver tolerances.
const (
	feasTol  = 1e-7 // bound violation considered infeasible
	costTol  = 1e-7 // reduced-cost optimality threshold
	pivotTol = 1e-9 // minimum |w_i| for a row to block the ratio test
	degenTol = 1e-9 // step sizes below this count as degenerate
	tieTol   = 1e-7 // ratio-test tie window (relative to min ratio)
	residTol = 1e-6 // row residual that triggers refactorization
)

// blandTrigger is how many consecutive degenerate pivots are tolerated
// before switching from Dantzig to Bland's anti-cycling rule.
const blandTrigger = 64

// Instance is a compiled linear program. Compiling converts the row-form
// Problem into computational standard form (min c·x, Ax + s = b, l ≤ x ≤ u,
// one bounded slack per row) with sparse columns, and allocates every array
// the simplex needs exactly once. All subsequent operations — bound
// tightening, RHS/objective refreshes, and repeated solves — reuse that
// arena, so a full branch-and-bound tree performs O(1) large allocations.
//
// An Instance is not safe for concurrent use.
type Instance struct {
	m       int // constraint rows
	nStruct int // structural variables
	n       int // total variables (structural + one slack per row)

	maximize bool
	cmin     []float64 // len n, minimization sense, slack costs zero
	b        []float64 // len m
	senses   []Sense   // len m
	baseLo   []float64 // len n, bounds as compiled (slack bounds from sense)
	baseHi   []float64

	// Structural columns, CSC. Slack column nStruct+i is the implicit unit
	// vector e_i and is not stored.
	colPtr []int32
	colRow []int32
	colVal []float64
	// Row-major mirror of the same nonzeros: Refresh uses it to verify
	// structural equality, and the residual check to evaluate rows.
	rowPtr []int32
	rowCol []int32
	rowVal []float64

	// Mutable solver state, preserved between solves for warm starting.
	lo, hi []float64
	basis  []int32    // basis[i] = variable basic in row i
	vstat  []int8     // len n
	fac    factorizer // basis representation (sparse LU by default)
	facBad bool       // a mid-iteration refactorization failed; abort phase
	xB     []float64  // len m, values of basic variables
	ready  bool       // basis state is valid (false before first solve)

	// Scratch (reused every iteration).
	accum      []float64 // m
	w          []float64 // m, FTRAN result B⁻¹A_q
	y          []float64 // m, BTRAN result
	rowScratch []float64 // m, row of B⁻¹ for the incremental price update
	valScratch []float64 // n, full value vector for residual/objective sweeps
	d          []float64 // n, reduced costs (maintained incrementally in phase 2)
	dExact     bool
	cb1        []int8 // m, phase-1 cost markers

	pivots    int64
	refactors int64

	// interrupt, when set, is polled every interruptStride pivots; a true
	// return abandons the solve with ErrInterrupted. It must be cheap and
	// safe to call from the goroutine running the solve.
	interrupt func() bool
}

// interruptStride is how many simplex iterations run between interrupt
// polls: frequent enough to bound deadline overshoot, rare enough to keep
// the atomic load off the per-pivot path.
const interruptStride = 64

// SetInterrupt installs (or clears, with nil) the solve interrupt hook.
// When the hook returns true the current and any subsequent SolveCurrent
// aborts with ErrInterrupted, leaving the instance's basis consistent for
// a later re-solve. Clone propagates the hook to copies, so parallel
// branch-and-bound workers share one deadline.
func (in *Instance) SetInterrupt(f func() bool) { in.interrupt = f }

func (in *Instance) interrupted() bool { return in.interrupt != nil && in.interrupt() }

// NewInstance compiles p. The problem must already be valid (see
// Problem.Validate); Solve validates before compiling, and internal/mip
// validates once at the root of its search rather than at every node.
func NewInstance(p Problem) (*Instance, error) {
	if p.NumVars <= 0 {
		return nil, fmt.Errorf("%w: NumVars = %d", ErrBadProblem, p.NumVars)
	}
	m := len(p.Constraints)
	ns := p.NumVars
	n := ns + m
	in := &Instance{
		m: m, nStruct: ns, n: n,
		maximize:   p.Maximize,
		cmin:       make([]float64, n),
		b:          make([]float64, m),
		senses:     make([]Sense, m),
		baseLo:     make([]float64, n),
		baseHi:     make([]float64, n),
		lo:         make([]float64, n),
		hi:         make([]float64, n),
		basis:      make([]int32, m),
		vstat:      make([]int8, n),
		fac:        newSparseLU(m),
		xB:         make([]float64, m),
		accum:      make([]float64, m),
		w:          make([]float64, m),
		y:          make([]float64, m),
		rowScratch: make([]float64, m),
		valScratch: make([]float64, n),
		d:          make([]float64, n),
		cb1:        make([]int8, m),
	}
	// Count nonzeros, then fill CSC and the row-major mirror.
	nnz := 0
	for _, c := range p.Constraints {
		for _, v := range c.Coeffs {
			if v != 0 {
				nnz++
			}
		}
	}
	in.colPtr = make([]int32, ns+1)
	in.colRow = make([]int32, nnz)
	in.colVal = make([]float64, nnz)
	in.rowPtr = make([]int32, m+1)
	in.rowCol = make([]int32, nnz)
	in.rowVal = make([]float64, nnz)
	counts := make([]int32, ns)
	k := 0
	for i, c := range p.Constraints {
		for j, v := range c.Coeffs {
			if v != 0 {
				counts[j]++
				in.rowCol[k] = int32(j)
				in.rowVal[k] = v
				k++
			}
		}
		in.rowPtr[i+1] = int32(k)
	}
	for j := 0; j < ns; j++ {
		in.colPtr[j+1] = in.colPtr[j] + counts[j]
	}
	fill := make([]int32, ns)
	copy(fill, in.colPtr[:ns])
	for i, c := range p.Constraints {
		for j, v := range c.Coeffs {
			if v != 0 {
				in.colRow[fill[j]] = int32(i)
				in.colVal[fill[j]] = v
				fill[j]++
			}
		}
		_ = i
	}
	in.loadData(p)
	return in, nil
}

// NewInstanceDense compiles p like NewInstance but installs the legacy
// dense product-form basis inverse instead of the sparse LU. It exists for
// differential testing, fleet-scale baseline benchmarks, and restoring
// snapshots written by pre-sparse builds onto their original arithmetic.
func NewInstanceDense(p Problem) (*Instance, error) {
	in, err := NewInstance(p)
	if err != nil {
		return nil, err
	}
	in.fac = newDenseFactor(in.m)
	return in, nil
}

// loadData copies the refreshable parts of p (objective, RHS, bounds) into
// the instance. The structural pattern must already match.
func (in *Instance) loadData(p Problem) {
	for j := range in.cmin {
		in.cmin[j] = 0
	}
	for j, c := range p.Objective {
		if in.maximize {
			in.cmin[j] = -c
		} else {
			in.cmin[j] = c
		}
	}
	for j := 0; j < in.nStruct; j++ {
		in.baseLo[j] = 0
		in.baseHi[j] = math.Inf(1)
	}
	for j, v := range p.Lower {
		in.baseLo[j] = v
	}
	for j, v := range p.Upper {
		in.baseHi[j] = v
	}
	for i, c := range p.Constraints {
		in.b[i] = c.RHS
		in.senses[i] = c.Sense
		s := in.nStruct + i
		switch c.Sense {
		case LE: // a·x + s = b, s ≥ 0
			in.baseLo[s], in.baseHi[s] = 0, math.Inf(1)
		case GE: // a·x + s = b, s ≤ 0
			in.baseLo[s], in.baseHi[s] = math.Inf(-1), 0
		default: // EQ: s fixed at 0
			in.baseLo[s], in.baseHi[s] = 0, 0
		}
	}
	in.ResetBounds()
}

// Refresh updates the instance with p's objective, RHS and bounds while
// keeping the current basis, provided p is structurally identical to the
// compiled problem (same dimensions, senses and constraint coefficients).
// It reports whether the refresh succeeded; on false the instance is
// unchanged and the caller should compile a new one. A successful refresh
// makes the next SolveCurrent warm-start from the previous optimal basis.
func (in *Instance) Refresh(p Problem) bool {
	if p.NumVars != in.nStruct || len(p.Constraints) != in.m || p.Maximize != in.maximize {
		return false
	}
	for i, c := range p.Constraints {
		if c.Sense != in.senses[i] {
			return false
		}
		k := in.rowPtr[i]
		end := in.rowPtr[i+1]
		for j, v := range c.Coeffs {
			if v == 0 {
				continue
			}
			if k == end || in.rowCol[k] != int32(j) || in.rowVal[k] != v {
				return false
			}
			k++
		}
		if k != end {
			return false
		}
	}
	in.loadData(p)
	return true
}

// ResetBounds restores the compiled bounds, undoing any SetBound calls.
func (in *Instance) ResetBounds() {
	copy(in.lo, in.baseLo)
	copy(in.hi, in.baseHi)
}

// SetBound overrides structural variable j's bounds for subsequent solves
// (until ResetBounds). Branch-and-bound uses this instead of adding rows.
func (in *Instance) SetBound(j int, lo, hi float64) {
	in.lo[j], in.hi[j] = lo, hi
}

// Bounds returns structural variable j's current working bounds.
func (in *Instance) Bounds(j int) (lo, hi float64) { return in.lo[j], in.hi[j] }

// NumVars returns the structural variable count.
func (in *Instance) NumVars() int { return in.nStruct }

// Pivots returns the cumulative simplex pivot count across all solves.
func (in *Instance) Pivots() int64 { return in.pivots }

// Values writes the structural solution into dst (allocating if needed) and
// returns it. Only meaningful after SolveCurrent returned Optimal.
func (in *Instance) Values(dst []float64) []float64 {
	if cap(dst) < in.nStruct {
		dst = make([]float64, in.nStruct)
	}
	dst = dst[:in.nStruct]
	for j := 0; j < in.nStruct; j++ {
		dst[j] = in.value(j)
	}
	for i, bj := range in.basis {
		if int(bj) < in.nStruct {
			dst[bj] = in.xB[i]
		}
	}
	return dst
}

// ObjectiveValue returns c·x in the problem's own sense.
func (in *Instance) ObjectiveValue() float64 {
	vals := in.fillValues()
	var v float64
	for j := 0; j < in.nStruct; j++ {
		if in.cmin[j] != 0 {
			v += in.cmin[j] * vals[j]
		}
	}
	if in.maximize {
		v = -v
	}
	return v
}

// fillValues writes every variable's current value — bound value for
// nonbasics, xB for basics — into the shared scratch and returns it. One
// O(n+m) sweep replaces a per-variable O(m) basis scan in the residual and
// objective evaluations.
func (in *Instance) fillValues() []float64 {
	vals := in.valScratch
	for j := 0; j < in.n; j++ {
		vals[j] = in.value(j)
	}
	for i, bj := range in.basis {
		vals[bj] = in.xB[i]
	}
	return vals
}

// value returns nonbasic variable j's value implied by its status.
func (in *Instance) value(j int) float64 {
	switch in.vstat[j] {
	case vsLower:
		return in.lo[j]
	case vsUpper:
		return in.hi[j]
	default:
		return 0
	}
}

// SolveCurrent optimizes under the current bounds, warm-starting from the
// basis left by the previous solve when one exists. It allocates nothing.
func (in *Instance) SolveCurrent() (Status, error) {
	for j := 0; j < in.n; j++ {
		if in.lo[j] > in.hi[j]+feasTol {
			return Infeasible, nil
		}
	}
	if !in.ready {
		in.crash()
	}
	in.repairStatuses()
	var st Status
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		in.facBad = false
		in.computeXB()
		st, err = in.phase1()
		if err == nil && st == Optimal {
			st, err = in.phase2()
		}
		// Any conclusion — optimal, infeasible, or unbounded — is trusted
		// only while the factored basis still reproduces the rows: a
		// drifted product-form inverse manufactures phantom infeasibility
		// just as readily as a wrong optimum. On a bad residual (or an
		// internal dead end) rebuild the inverse from the basis, falling
		// back to the all-slack crash basis when it has gone singular, and
		// re-solve.
		if err == nil && in.residualOK() {
			return st, nil
		}
		// An interrupt is a deadline, not numerical trouble: retrying would
		// just re-poll the same fired hook. Surface it immediately.
		if errors.Is(err, ErrInterrupted) {
			return st, err
		}
		if !in.refactorize() {
			in.crash()
		}
	}
	return st, err
}

// crash installs the all-slack starting basis: every slack basic, every
// structural variable nonbasic at a finite bound (or free at zero).
func (in *Instance) crash() {
	for j := 0; j < in.nStruct; j++ {
		switch {
		case !math.IsInf(in.lo[j], -1):
			in.vstat[j] = vsLower
		case !math.IsInf(in.hi[j], 1):
			in.vstat[j] = vsUpper
		default:
			in.vstat[j] = vsFree
		}
	}
	for i := 0; i < in.m; i++ {
		in.basis[i] = int32(in.nStruct + i)
		in.vstat[in.nStruct+i] = vsBasic
	}
	in.fac.reset(in.m)
	in.ready = true
}

// repairStatuses fixes nonbasic statuses that bound updates invalidated
// (e.g. a variable recorded at a lower bound that is now -inf).
func (in *Instance) repairStatuses() {
	for j := 0; j < in.n; j++ {
		switch in.vstat[j] {
		case vsLower:
			if math.IsInf(in.lo[j], -1) {
				if math.IsInf(in.hi[j], 1) {
					in.vstat[j] = vsFree
				} else {
					in.vstat[j] = vsUpper
				}
			}
		case vsUpper:
			if math.IsInf(in.hi[j], 1) {
				if math.IsInf(in.lo[j], -1) {
					in.vstat[j] = vsFree
				} else {
					in.vstat[j] = vsLower
				}
			}
		}
	}
}

// computeXB evaluates the basic variable values for the current bounds:
// x_B = B⁻¹(b - N·x_N).
func (in *Instance) computeXB() {
	copy(in.accum, in.b)
	for j := 0; j < in.n; j++ {
		if in.vstat[j] == vsBasic {
			continue
		}
		v := in.value(j)
		if v == 0 {
			continue
		}
		if j < in.nStruct {
			for k := in.colPtr[j]; k < in.colPtr[j+1]; k++ {
				in.accum[in.colRow[k]] -= in.colVal[k] * v
			}
		} else {
			in.accum[j-in.nStruct] -= v
		}
	}
	in.fac.ftran(in.accum)
	copy(in.xB, in.accum)
}

// ftran computes w = B⁻¹·A_q for entering column q.
func (in *Instance) ftran(q int) {
	in.fac.ftranCol(in, q, in.w)
}

// colDot returns y·A_j for column j (slack columns are unit vectors).
func (in *Instance) colDot(y []float64, j int) float64 {
	if j >= in.nStruct {
		return y[j-in.nStruct]
	}
	var s float64
	for k := in.colPtr[j]; k < in.colPtr[j+1]; k++ {
		s += y[in.colRow[k]] * in.colVal[k]
	}
	return s
}

// phase1 drives the basic variables inside their bounds, minimizing the sum
// of bound violations with a composite objective. It returns Optimal once
// feasible, Infeasible when the violation sum cannot reach zero.
func (in *Instance) phase1() (Status, error) {
	maxIter := 10000 * (in.m + in.n + 1)
	bland := false
	degen := 0
	for iter := 0; iter < maxIter; iter++ {
		if iter%interruptStride == 0 && in.interrupted() {
			return Optimal, ErrInterrupted
		}
		ninf := 0
		for i := 0; i < in.m; i++ {
			j := in.basis[i]
			switch {
			case in.xB[i] < in.lo[j]-feasTol:
				in.cb1[i] = -1
				ninf++
			case in.xB[i] > in.hi[j]+feasTol:
				in.cb1[i] = 1
				ninf++
			default:
				in.cb1[i] = 0
			}
		}
		if ninf == 0 {
			return Optimal, nil
		}
		// BTRAN with the composite cost: y = cb1ᵀ·B⁻¹.
		for i := 0; i < in.m; i++ {
			in.y[i] = float64(in.cb1[i])
		}
		in.fac.btran(in.y)
		enter, dir := in.priceFromY(bland)
		if enter < 0 {
			return Infeasible, nil
		}
		in.ftran(enter)
		t, leave, toUpper, flip := in.ratioPhase1(enter, dir, bland)
		if leave < 0 && !flip {
			return Optimal, fmt.Errorf("lp: phase-1 ratio test found no blocking bound (m=%d n=%d)", in.m, in.n)
		}
		in.applyStep(enter, dir, t, leave, toUpper, flip, false)
		if in.facBad {
			return Optimal, fmt.Errorf("lp: basis refactorization failed mid-phase-1 (m=%d n=%d)", in.m, in.n)
		}
		if t <= degenTol {
			if degen++; degen > blandTrigger {
				bland = true
			}
		} else {
			degen, bland = 0, false
		}
	}
	return Optimal, fmt.Errorf("lp: phase-1 iteration limit exceeded (m=%d n=%d)", in.m, in.n)
}

// priceFromY selects an entering variable from exact reduced costs
// d_j = -y·A_j (phase-1 costs are zero for every nonbasic variable).
func (in *Instance) priceFromY(bland bool) (enter, dir int) {
	enter, dir = -1, 1
	best := costTol
	for j := 0; j < in.n; j++ {
		st := in.vstat[j]
		if st == vsBasic {
			continue
		}
		dj := -in.colDot(in.y, j)
		var score float64
		var dj0 int
		switch st {
		case vsLower:
			score, dj0 = -dj, 1
		case vsUpper:
			score, dj0 = dj, -1
		default: // free
			score = math.Abs(dj)
			if dj > 0 {
				dj0 = -1
			} else {
				dj0 = 1
			}
		}
		if score > best {
			enter, dir = j, dj0
			if bland {
				return
			}
			best = score
		}
	}
	return
}

// ratioPhase1 runs the phase-1 ratio test: infeasible basics block when
// they reach the bound they violate (becoming feasible), feasible basics
// block at their own bounds, and the entering variable may flip across its
// range. Returns the step, the leaving row (-1 for a bound flip), which
// bound the leaver hits, and whether the step is a flip.
func (in *Instance) ratioPhase1(enter, dir int, bland bool) (t float64, leave int, toUpper, flip bool) {
	minT := math.Inf(1)
	if r := in.hi[enter] - in.lo[enter]; in.vstat[enter] != vsFree && !math.IsInf(r, 1) {
		minT = r
		flip = true
	}
	leave = -1
	for i := 0; i < in.m; i++ {
		wi := in.w[i]
		if wi < pivotTol && wi > -pivotTol {
			continue
		}
		delta := -float64(dir) * wi
		j := in.basis[i]
		var target float64
		if delta > 0 {
			switch {
			case in.xB[i] < in.lo[j]-feasTol:
				target = in.lo[j] // becomes feasible at its lower bound
			case in.xB[i] > in.hi[j]+feasTol:
				continue // moving further above upper: never blocks
			default:
				target = in.hi[j]
			}
			if math.IsInf(target, 1) {
				continue
			}
		} else {
			switch {
			case in.xB[i] > in.hi[j]+feasTol:
				target = in.hi[j]
			case in.xB[i] < in.lo[j]-feasTol:
				continue // moving further below lower: never blocks
			default:
				target = in.lo[j]
			}
			if math.IsInf(target, -1) {
				continue
			}
		}
		ti := (target - in.xB[i]) / delta
		if ti < 0 {
			ti = 0
		}
		if ti < minT {
			minT = ti
			flip = false
		}
	}
	if math.IsInf(minT, 1) {
		return 0, -1, false, false
	}
	if !flip {
		leave, toUpper = in.pickLeaving(dir, minT, true, bland)
		if leave < 0 {
			// Numerical fallback: accept the flip if one exists.
			if r := in.hi[enter] - in.lo[enter]; in.vstat[enter] != vsFree && !math.IsInf(r, 1) {
				return r, -1, false, true
			}
			return 0, -1, false, false
		}
	}
	return minT, leave, toUpper, flip
}

// pickLeaving re-scans the rows blocking at ratio ≤ minT+tie and picks the
// numerically best (largest |w|) or, under Bland's rule, the lowest
// variable index. phase1 selects targets with the phase-1 rules.
func (in *Instance) pickLeaving(dir int, minT float64, phase1, bland bool) (leave int, toUpper bool) {
	leave = -1
	tie := minT + tieTol*(1+minT)
	var bestW float64
	bestIdx := int32(math.MaxInt32)
	for i := 0; i < in.m; i++ {
		wi := in.w[i]
		if wi < pivotTol && wi > -pivotTol {
			continue
		}
		delta := -float64(dir) * wi
		j := in.basis[i]
		var target float64
		up := false
		if delta > 0 {
			switch {
			case phase1 && in.xB[i] < in.lo[j]-feasTol:
				target = in.lo[j]
			case phase1 && in.xB[i] > in.hi[j]+feasTol:
				continue
			default:
				target = in.hi[j]
				up = true
			}
			if math.IsInf(target, 1) {
				continue
			}
		} else {
			switch {
			case phase1 && in.xB[i] > in.hi[j]+feasTol:
				target = in.hi[j]
				up = true
			case phase1 && in.xB[i] < in.lo[j]-feasTol:
				continue
			default:
				target = in.lo[j]
			}
			if math.IsInf(target, -1) {
				continue
			}
		}
		ti := (target - in.xB[i]) / delta
		if ti < 0 {
			ti = 0
		}
		if ti > tie {
			continue
		}
		if bland {
			if j < bestIdx {
				bestIdx, leave, toUpper = j, i, up
			}
		} else if aw := math.Abs(wi); aw > bestW {
			bestW, leave, toUpper = aw, i, up
		}
	}
	return
}

// applyStep moves the entering variable by t in direction dir, updating the
// basic values and either flipping the entering bound or pivoting.
// trackD must be true when phase 2's incremental reduced costs are live.
func (in *Instance) applyStep(enter, dir int, t float64, leave int, toUpper, flip, trackD bool) {
	if t != 0 {
		f := float64(dir) * t
		for i := 0; i < in.m; i++ {
			if wi := in.w[i]; wi != 0 {
				in.xB[i] -= f * wi
			}
		}
	}
	if flip {
		if in.vstat[enter] == vsLower {
			in.vstat[enter] = vsUpper
		} else {
			in.vstat[enter] = vsLower
		}
		return
	}
	v := in.value(enter) + float64(dir)*t
	out := in.basis[leave]
	if trackD {
		in.updateD(leave, enter, int(out))
	}
	if toUpper {
		in.vstat[out] = vsUpper
		in.xBSnap(leave, in.hi[out])
	} else {
		in.vstat[out] = vsLower
		in.xBSnap(leave, in.lo[out])
	}
	in.basis[leave] = int32(enter)
	in.vstat[enter] = vsBasic
	if !in.fac.update(leave, in.w) {
		// The eta chain is full or the pivot is too small to absorb:
		// refactorize from the (already updated) basis instead. A singular
		// refactorization poisons the phase loop via facBad, which routes
		// back through SolveCurrent's crash-and-retry.
		if !in.refactorize() {
			in.facBad = true
		}
	}
	in.xB[leave] = v
	in.pivots++
}

// xBSnap is a no-op hook documenting that the leaving variable's value is
// snapped exactly to its bound (its value is henceforth implied by vstat).
func (in *Instance) xBSnap(row int, bound float64) { _ = row; _ = bound }

// updateD maintains the phase-2 reduced costs across the pivot on row
// `leave` with entering column `enter`: d'_j = d_j - (d_q/w_r)·α_rj where
// α_r is row r of B⁻¹N, computed sparsely from the pre-pivot basis inverse.
func (in *Instance) updateD(leave, enter, out int) {
	m := in.m
	ratio := in.d[enter] / in.w[leave]
	if ratio == 0 {
		in.d[enter] = 0
		in.d[out] = 0
		return
	}
	rowR := in.rowScratch[:m]
	in.fac.rowOfInverse(leave, rowR)
	for j := 0; j < in.n; j++ {
		if in.vstat[j] == vsBasic || j == enter {
			continue
		}
		if alpha := in.colDot(rowR, j); alpha != 0 {
			in.d[j] -= ratio * alpha
		}
	}
	in.d[enter] = 0
	in.d[out] = -ratio
}

// refreshD recomputes the phase-2 reduced costs exactly:
// d_j = c_j - (c_Bᵀ·B⁻¹)·A_j.
func (in *Instance) refreshD() {
	for i := 0; i < in.m; i++ {
		in.y[i] = in.cmin[in.basis[i]]
	}
	in.fac.btran(in.y)
	for j := 0; j < in.n; j++ {
		if in.vstat[j] == vsBasic {
			in.d[j] = 0
		} else {
			in.d[j] = in.cmin[j] - in.colDot(in.y, j)
		}
	}
	in.dExact = true
}

// pickFromD selects a phase-2 entering variable from the maintained
// reduced costs.
func (in *Instance) pickFromD(bland bool) (enter, dir int) {
	enter, dir = -1, 1
	best := costTol
	for j := 0; j < in.n; j++ {
		var score float64
		var dj0 int
		switch in.vstat[j] {
		case vsLower:
			score, dj0 = -in.d[j], 1
		case vsUpper:
			score, dj0 = in.d[j], -1
		case vsFree:
			score = math.Abs(in.d[j])
			if in.d[j] > 0 {
				dj0 = -1
			} else {
				dj0 = 1
			}
		default:
			continue
		}
		if score > best {
			enter, dir = j, dj0
			if bland {
				return
			}
			best = score
		}
	}
	return
}

// phase2 optimizes the true objective from a primal-feasible basis.
func (in *Instance) phase2() (Status, error) {
	in.refreshD()
	maxIter := 10000 * (in.m + in.n + 1)
	bland := false
	degen := 0
	for iter := 0; iter < maxIter; iter++ {
		if iter%interruptStride == 0 && in.interrupted() {
			return Optimal, ErrInterrupted
		}
		enter, dir := in.pickFromD(bland)
		if enter < 0 {
			if !in.dExact {
				in.refreshD()
				if e2, _ := in.pickFromD(bland); e2 >= 0 {
					continue
				}
			}
			return Optimal, nil
		}
		in.ftran(enter)
		t, leave, toUpper, flip, unbounded := in.ratioPhase2(enter, dir, bland)
		if unbounded {
			return Unbounded, nil
		}
		in.applyStep(enter, dir, t, leave, toUpper, flip, true)
		if in.facBad {
			return Optimal, fmt.Errorf("lp: basis refactorization failed mid-phase-2 (m=%d n=%d)", in.m, in.n)
		}
		if !flip {
			in.dExact = false
		}
		if t <= degenTol {
			if degen++; degen > blandTrigger {
				bland = true
			}
		} else {
			degen, bland = 0, false
		}
	}
	return Optimal, fmt.Errorf("lp: phase-2 iteration limit exceeded (m=%d n=%d)", in.m, in.n)
}

// ratioPhase2 is the standard bounded-variable ratio test: every basic
// variable blocks at its own bound, and the entering variable may flip.
func (in *Instance) ratioPhase2(enter, dir int, bland bool) (t float64, leave int, toUpper, flip, unbounded bool) {
	minT := math.Inf(1)
	if r := in.hi[enter] - in.lo[enter]; in.vstat[enter] != vsFree && !math.IsInf(r, 1) {
		minT = r
		flip = true
	}
	leave = -1
	for i := 0; i < in.m; i++ {
		wi := in.w[i]
		if wi < pivotTol && wi > -pivotTol {
			continue
		}
		delta := -float64(dir) * wi
		j := in.basis[i]
		var target float64
		if delta > 0 {
			target = in.hi[j]
			if math.IsInf(target, 1) {
				continue
			}
		} else {
			target = in.lo[j]
			if math.IsInf(target, -1) {
				continue
			}
		}
		ti := (target - in.xB[i]) / delta
		if ti < 0 {
			ti = 0
		}
		if ti < minT {
			minT = ti
			flip = false
		}
	}
	if math.IsInf(minT, 1) {
		return 0, -1, false, false, true
	}
	if !flip {
		leave, toUpper = in.pickLeaving(dir, minT, false, bland)
		if leave < 0 {
			if r := in.hi[enter] - in.lo[enter]; in.vstat[enter] != vsFree && !math.IsInf(r, 1) {
				return r, -1, false, true, false
			}
			return 0, -1, false, false, true
		}
	}
	return minT, leave, toUpper, flip, false
}

// residualOK verifies Ax + s = b actually holds at the claimed optimum,
// catching accumulated factorization error.
func (in *Instance) residualOK() bool {
	vals := in.fillValues()
	for i := 0; i < in.m; i++ {
		var lhs float64
		for k := in.rowPtr[i]; k < in.rowPtr[i+1]; k++ {
			lhs += in.rowVal[k] * vals[in.rowCol[k]]
		}
		lhs += vals[in.nStruct+i]
		if diff := lhs - in.b[i]; diff > residTol || diff < -residTol {
			return false
		}
	}
	return true
}

// refactorize rebuilds the basis factorization from the current basis
// columns. Returns false if B is numerically singular (the caller then
// falls back to the all-slack crash basis).
func (in *Instance) refactorize() bool {
	in.refactors++
	return in.fac.refactor(in)
}

// Refactors returns the cumulative basis refactorization count across all
// solves (explicit rebuilds plus eta-chain-triggered ones).
func (in *Instance) Refactors() int64 { return in.refactors }

// EtaChainLen returns the current length of the factorization's update
// chain (always 0 for the dense representation).
func (in *Instance) EtaChainLen() int { return in.fac.etaLen() }

// DenseBasis reports whether the instance carries the legacy dense
// product-form inverse rather than the sparse LU.
func (in *Instance) DenseBasis() bool {
	_, ok := in.fac.(*denseFactor)
	return ok
}
