// Command benchjson converts `go test -bench` output into a JSON summary.
//
// Each benchmark line is parsed into its name, iteration count, and every
// reported metric (ns/op, B/op, allocs/op, and custom b.ReportMetric units
// such as ns/solve or pivots/op). The original line is preserved verbatim in
// the "raw" field, so the benchstat text format can be reconstructed with
// `jq -r '.benchmarks[].raw'` and fed straight to benchstat for A/B
// comparison against a previous baseline.
//
// Usage:
//
//	go test -run '^$' -bench 'MIPSolve|Simplex' -benchmem ./... | \
//	    go run ./scripts/benchjson -out BENCH.json
//
// Compare mode gates CI on a committed baseline: parse stdin as above,
// then fail (exit 1) if any gated metric regressed more than -max-regress
// against the same benchmark in the baseline file. Benchmarks are matched
// by name with the -GOMAXPROCS suffix stripped, so a baseline recorded at
// -8 still matches a run at -4. -require lists benchmarks that must be
// present on stdin, catching a gate that silently stopped running.
//
//	go test -run '^$' -bench 'MIPSolve|Fig4a' -benchmem . | \
//	    go run ./scripts/benchjson -compare BENCH_3.json \
//	        -metrics allocs/op -max-regress 0.25 \
//	        -require BenchmarkMIPSolve,BenchmarkFig4aMigrationTimeline
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Package string             `json:"pkg,omitempty"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
	Raw     string             `json:"raw"`
}

// File is the top-level JSON document.
type File struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func parse(r io.Reader) (File, error) {
	var f File
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if !ok {
				continue
			}
			b.Package = pkg
			f.Benchmarks = append(f.Benchmarks, b)
		}
	}
	return f, sc.Err()
}

// parseLine splits "BenchmarkName-8  123  456 ns/op  7 B/op ..." into the
// name, run count, and value/unit pairs.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs, Metrics: map[string]float64{}, Raw: line}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// baseName strips the -GOMAXPROCS suffix go test appends to benchmark
// names ("BenchmarkMIPSolve-8" -> "BenchmarkMIPSolve").
func baseName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// compare gates f against the baseline: every gated metric present in both
// runs of a benchmark may grow by at most maxRegress (fractional). It
// returns human-readable failures, one per violated gate or missing
// required benchmark.
func compare(f, base File, metrics, require []string, maxRegress float64) []string {
	baseline := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseline[baseName(b.Name)] = b
	}
	current := map[string]Benchmark{}
	for _, b := range f.Benchmarks {
		current[baseName(b.Name)] = b
	}

	var failures []string
	for _, name := range require {
		if _, ok := current[name]; !ok {
			failures = append(failures, fmt.Sprintf("required benchmark %s missing from input", name))
		}
	}
	for name, cur := range current {
		ref, ok := baseline[name]
		if !ok {
			continue // new benchmark: nothing to gate against
		}
		for _, m := range metrics {
			curV, okCur := cur.Metrics[m]
			refV, okRef := ref.Metrics[m]
			if !okCur || !okRef {
				continue
			}
			limit := refV * (1 + maxRegress)
			if curV > limit {
				failures = append(failures, fmt.Sprintf(
					"%s %s regressed: %.6g -> %.6g (limit %.6g, +%.0f%% allowed)",
					name, m, refV, curV, limit, maxRegress*100))
			} else {
				fmt.Fprintf(os.Stderr, "benchjson: %s %s ok: %.6g vs baseline %.6g\n",
					name, m, curV, refV)
			}
		}
	}
	return failures
}

// ceiling is one absolute -ceiling gate: benchmark name (sans -N suffix),
// metric, and the maximum allowed value.
type ceiling struct {
	name, metric string
	max          float64
}

// parseCeilings splits "name:metric:max[,name:metric:max...]". Both name
// and metric may themselves contain '/' (sub-benchmarks, "B/op"), so each
// entry is split from the right: the last ':' delimits the max, the one
// before it the metric.
func parseCeilings(s string) ([]ceiling, error) {
	var out []ceiling
	for _, part := range splitList(s) {
		i := strings.LastIndexByte(part, ':')
		if i <= 0 {
			return nil, fmt.Errorf("ceiling %q: want name:metric:max", part)
		}
		max, err := strconv.ParseFloat(part[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("ceiling %q: bad max: %v", part, err)
		}
		rest := part[:i]
		j := strings.LastIndexByte(rest, ':')
		if j <= 0 || j == len(rest)-1 {
			return nil, fmt.Errorf("ceiling %q: want name:metric:max", part)
		}
		out = append(out, ceiling{name: rest[:j], metric: rest[j+1:], max: max})
	}
	return out, nil
}

// checkCeilings enforces absolute caps: each named benchmark must be
// present and its metric at or below the cap. Unlike compare, a ceiling
// needs no baseline entry — it pins an architectural invariant (e.g. "the
// fleet bench must not allocate an m×m dense inverse").
func checkCeilings(f File, ceilings []ceiling) []string {
	current := map[string]Benchmark{}
	for _, b := range f.Benchmarks {
		current[baseName(b.Name)] = b
	}
	var failures []string
	for _, c := range ceilings {
		cur, ok := current[c.name]
		if !ok {
			failures = append(failures, fmt.Sprintf("ceiling %s: benchmark missing from input", c.name))
			continue
		}
		v, ok := cur.Metrics[c.metric]
		if !ok {
			failures = append(failures, fmt.Sprintf("ceiling %s: metric %s not reported", c.name, c.metric))
			continue
		}
		if v > c.max {
			failures = append(failures, fmt.Sprintf(
				"%s %s above ceiling: %.6g > %.6g", c.name, c.metric, v, c.max))
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: %s %s ok: %.6g <= ceiling %.6g\n",
				c.name, c.metric, v, c.max)
		}
	}
	return failures
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	comparePath := flag.String("compare", "", "baseline JSON to gate against (exit 1 on regression)")
	metricsArg := flag.String("metrics", "allocs/op", "comma-separated metrics to gate in compare mode")
	maxRegress := flag.Float64("max-regress", 0.25, "max allowed fractional regression per gated metric")
	requireArg := flag.String("require", "", "comma-separated benchmark names (sans -N suffix) that must be present")
	ceilingArg := flag.String("ceiling", "", "comma-separated absolute caps, each name:metric:max (split from the right, so names and metrics may contain ':'-free slashes like B/op)")
	flag.Parse()

	ceilings, err := parseCeilings(*ceilingArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	f, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(f.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *comparePath != "" || len(ceilings) > 0 {
		var failures []string
		if *comparePath != "" {
			blob, err := os.ReadFile(*comparePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			var base File
			if err := json.Unmarshal(blob, &base); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: baseline %s: %v\n", *comparePath, err)
				os.Exit(1)
			}
			failures = compare(f, base, splitList(*metricsArg), splitList(*requireArg), *maxRegress)
		}
		failures = append(failures, checkCeilings(f, ceilings)...)
		for _, msg := range failures {
			fmt.Fprintln(os.Stderr, "benchjson: FAIL:", msg)
		}
		if len(failures) > 0 {
			os.Exit(1)
		}
		if *out == "" {
			return // gate-only invocation: no JSON dump wanted
		}
	}

	blob, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
