package mip

import (
	"math"
	"math/rand"
	"testing"

	"github.com/vbcloud/vb/internal/lp"
)

// benchMIP builds a deterministic site-selection-shaped MIP: continuous
// allocation columns plus a handful of binary indicator columns tied to them
// by linking rows, forcing real branch-and-bound work.
func benchMIP(nCont, nBin, nRows int, seed int64) Problem {
	rng := rand.New(rand.NewSource(seed))
	n := nCont + nBin
	p := Problem{
		Problem: lp.Problem{
			NumVars:   n,
			Objective: make([]float64, n),
			Lower:     make([]float64, n),
			Upper:     make([]float64, n),
		},
		Integer: make([]bool, n),
	}
	for j := 0; j < nCont; j++ {
		p.Objective[j] = 1 + rng.Float64()*3
		p.Upper[j] = math.Inf(1)
	}
	for j := nCont; j < n; j++ {
		p.Objective[j] = 0.5 + rng.Float64()
		p.Upper[j] = 1
		p.Integer[j] = true
	}
	for i := 0; i < nRows; i++ {
		c := lp.Constraint{Coeffs: make([]float64, n)}
		switch i % 3 {
		case 0: // demand across a few continuous columns
			for k := 0; k < 4; k++ {
				c.Coeffs[rng.Intn(nCont)] = 1
			}
			c.Sense = lp.GE
			c.RHS = 10 + rng.Float64()*20
		case 1: // linking: a continuous column only usable when its bit is on
			c.Coeffs[rng.Intn(nCont)] = 1
			c.Coeffs[nCont+rng.Intn(nBin)] = -40
			c.Sense = lp.LE
			c.RHS = 0
		default: // cardinality pressure on the binaries
			for j := nCont; j < n; j++ {
				c.Coeffs[j] = 1
			}
			c.Sense = lp.LE
			c.RHS = float64(1 + nBin/2)
		}
		p.Constraints = append(p.Constraints, c)
	}
	return p
}

// BenchmarkMIPSolveNode measures one full branch-and-bound run per iteration on a
// fresh solver state: the per-placement cost when nothing is carried over.
func BenchmarkMIPSolveNode(b *testing.B) {
	p := benchMIP(24, 6, 30, 17)
	var nodes, pivots int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(p, Options{MaxNodes: 2000})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != lp.Optimal {
			b.Fatalf("status %v", sol.Status)
		}
		nodes += int64(sol.Nodes)
		pivots += sol.Pivots
	}
	b.StopTimer()
	b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
	b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
}

// BenchmarkMIPSolveWarmState measures the same run through a shared WarmState: the
// compiled instance and factored basis persist, so iterations 2..N skip the
// build and start from the previous optimum.
func BenchmarkMIPSolveWarmState(b *testing.B) {
	p := benchMIP(24, 6, 30, 17)
	warm := &WarmState{}
	if _, err := Solve(p, Options{MaxNodes: 2000, Warm: warm}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(p, Options{MaxNodes: 2000, Warm: warm})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != lp.Optimal || !sol.WarmHit {
			b.Fatalf("status %v warm=%v", sol.Status, sol.WarmHit)
		}
	}
}

// BenchmarkMIPSolveReference runs the legacy row-branching stack on the same
// problem for a like-for-like comparison.
func BenchmarkMIPSolveReference(b *testing.B) {
	p := benchMIP(24, 6, 30, 17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(p, Options{MaxNodes: 2000, Reference: true})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != lp.Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}
