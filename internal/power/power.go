// Package power models server power draw inside a VB site. The paper's
// step 4 places VMs "to minimize total power usage by consolidating as much
// as possible", and its §2 relies on "frequency scaling, powering down
// cores/caches/memory units to control power distributed to servers"; this
// package quantifies both: a linear idle+active server model with optional
// DVFS states, site-level energy accounting, and the consolidation savings
// that justify best-fit packing.
package power

import (
	"fmt"

	"github.com/vbcloud/vb/internal/cluster"
	"github.com/vbcloud/vb/internal/trace"
)

// ServerModel is the classic linear server power model: an idle floor plus
// a per-utilization active component, scaled by the DVFS state.
type ServerModel struct {
	// IdleWatts is the draw of a powered-on, empty server.
	IdleWatts float64
	// PeakWatts is the draw at full utilization and full frequency.
	PeakWatts float64
	// DVFSStates lists available frequency scaling factors in (0, 1],
	// sorted ascending. Power scales roughly with the cube of frequency
	// for the active component. Nil means no DVFS (always 1.0).
	DVFSStates []float64
}

// DefaultServerModel returns a typical dual-socket server: 120 W idle,
// 400 W peak, three DVFS states.
func DefaultServerModel() ServerModel {
	return ServerModel{
		IdleWatts:  120,
		PeakWatts:  400,
		DVFSStates: []float64{0.6, 0.8, 1.0},
	}
}

// Validate reports model errors.
func (m ServerModel) Validate() error {
	if m.IdleWatts < 0 {
		return fmt.Errorf("power: negative idle watts %v", m.IdleWatts)
	}
	if m.PeakWatts <= m.IdleWatts {
		return fmt.Errorf("power: peak %v must exceed idle %v", m.PeakWatts, m.IdleWatts)
	}
	prev := 0.0
	for _, f := range m.DVFSStates {
		if f <= prev || f > 1 {
			return fmt.Errorf("power: DVFS states must be ascending in (0,1], got %v", m.DVFSStates)
		}
		prev = f
	}
	return nil
}

// Draw returns one server's watts at the given core utilization (0-1) and
// frequency factor. Active power scales with freq^3 (voltage tracks
// frequency); throughput scales with freq, so running slower saves energy
// per unit time but takes longer.
func (m ServerModel) Draw(utilization, freq float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if utilization < 0 || utilization > 1 {
		return 0, fmt.Errorf("power: utilization %v outside [0,1]", utilization)
	}
	if freq <= 0 || freq > 1 {
		return 0, fmt.Errorf("power: frequency %v outside (0,1]", freq)
	}
	active := (m.PeakWatts - m.IdleWatts) * utilization * freq * freq * freq
	return m.IdleWatts + active, nil
}

// BestDVFS returns the lowest-power DVFS state that still provides the
// required throughput fraction (of a full-speed server). With no DVFS
// states configured, it returns 1.
func (m ServerModel) BestDVFS(requiredThroughput float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if requiredThroughput < 0 || requiredThroughput > 1 {
		return 0, fmt.Errorf("power: throughput %v outside [0,1]", requiredThroughput)
	}
	if len(m.DVFSStates) == 0 {
		return 1, nil
	}
	for _, f := range m.DVFSStates {
		if f >= requiredThroughput-1e-12 {
			return f, nil
		}
	}
	return m.DVFSStates[len(m.DVFSStates)-1], nil
}

// SiteDraw returns a site's total kW given a cluster snapshot: occupied
// servers draw at their utilization; empty-but-powered servers idle; unpow-
// ered servers draw nothing. The simplification: allocation spreads evenly
// over occupied servers (the snapshot does not expose per-server load).
func SiteDraw(m ServerModel, snap cluster.Snapshot, coresPerServer int) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if coresPerServer <= 0 {
		return 0, fmt.Errorf("power: non-positive cores per server %d", coresPerServer)
	}
	poweredServers := snap.PoweredCores / coresPerServer
	if poweredServers > snap.Servers {
		poweredServers = snap.Servers
	}
	occupied := snap.OccupiedServers
	if occupied > poweredServers {
		poweredServers = occupied // occupied servers are necessarily on
	}
	var kw float64
	if occupied > 0 {
		util := float64(snap.AllocatedCores) / float64(occupied*coresPerServer)
		if util > 1 {
			util = 1
		}
		w, err := m.Draw(util, 1)
		if err != nil {
			return 0, err
		}
		kw += float64(occupied) * w / 1000
	}
	idleOn := poweredServers - occupied
	if idleOn > 0 {
		kw += float64(idleOn) * m.IdleWatts / 1000
	}
	return kw, nil
}

// ConsolidationSaving compares the site draw of a consolidated packing
// (VMs packed onto few servers, the paper's step 4) against the same load
// spread evenly over all powered servers, returning (consolidatedKW,
// spreadKW). The gap is the energy argument for best-fit placement.
func ConsolidationSaving(m ServerModel, allocatedCores, poweredCores, servers, coresPerServer int) (consolidatedKW, spreadKW float64, err error) {
	if err := m.Validate(); err != nil {
		return 0, 0, err
	}
	if servers <= 0 || coresPerServer <= 0 {
		return 0, 0, fmt.Errorf("power: bad shape %d servers x %d cores", servers, coresPerServer)
	}
	if allocatedCores < 0 || poweredCores < 0 || allocatedCores > servers*coresPerServer {
		return 0, 0, fmt.Errorf("power: bad core counts alloc=%d powered=%d", allocatedCores, poweredCores)
	}
	// Consolidated: ceil(alloc/coresPerServer) servers at ~full util, the
	// rest of the powered servers switched off (not just idled) — the
	// "opportunistically turning off unused servers" optimization.
	full := allocatedCores / coresPerServer
	rem := allocatedCores % coresPerServer
	wFull, err := m.Draw(1, 1)
	if err != nil {
		return 0, 0, err
	}
	consolidatedKW = float64(full) * wFull / 1000
	if rem > 0 {
		w, err := m.Draw(float64(rem)/float64(coresPerServer), 1)
		if err != nil {
			return 0, 0, err
		}
		consolidatedKW += w / 1000
	}
	// Spread: every powered server on at even utilization.
	poweredServers := poweredCores / coresPerServer
	if poweredServers == 0 {
		return consolidatedKW, 0, nil
	}
	util := float64(allocatedCores) / float64(poweredServers*coresPerServer)
	if util > 1 {
		util = 1
	}
	w, err := m.Draw(util, 1)
	if err != nil {
		return 0, 0, err
	}
	spreadKW = float64(poweredServers) * w / 1000
	return consolidatedKW, spreadKW, nil
}

// EnergyKWh integrates a kW draw series over its duration.
func EnergyKWh(drawKW trace.Series) float64 {
	return drawKW.Energy() // Energy() is sum(value * step-hours)
}
