package sim

import (
	"sort"
	"testing"

	"github.com/vbcloud/vb/internal/cluster"
	"github.com/vbcloud/vb/internal/core"
)

// TestEngineMatchesRun pins the core-level parity claim: streaming the
// batch demands through Engine.Advance reproduces Run exactly.
func TestEngineMatchesRun(t *testing.T) {
	in := trioInput(t, 3, 6)
	for _, pol := range []core.Policy{core.Greedy, core.MIP} {
		batch, err := Run(simConfig(pol), in)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(simConfig(pol), in)
		if err != nil {
			t.Fatal(err)
		}
		apps := append([]core.AppDemand(nil), in.Apps...)
		sort.Slice(apps, func(i, j int) bool { return apps[i].Start.Before(apps[j].Start) })
		next := 0
		var admitted, replans int
		for !eng.Done() {
			now := eng.Now()
			var arr []core.AppDemand
			for next < len(apps) && !apps[next].Start.After(now) {
				arr = append(arr, apps[next])
				next++
			}
			rep, err := eng.Advance(arr)
			if err != nil {
				t.Fatal(err)
			}
			admitted += len(rep.Admitted)
			replans += rep.Replans
		}
		got := eng.Result()
		if got.PlannedGB != batch.PlannedGB || got.ForcedGB != batch.ForcedGB ||
			got.PausedStableCoreSteps != batch.PausedStableCoreSteps ||
			got.ShortfallCoreSteps != batch.ShortfallCoreSteps ||
			got.Placements != batch.Placements {
			t.Fatalf("%v: streamed result diverges from batch:\n%+v\nvs\n%+v", pol, got, batch)
		}
		for i := range got.Transfer.Values {
			if got.Transfer.Values[i] != batch.Transfer.Values[i] {
				t.Fatalf("%v: transfer[%d] = %v streamed vs %v batch", pol, i,
					got.Transfer.Values[i], batch.Transfer.Values[i])
			}
		}
		if admitted+replans != batch.Placements {
			t.Fatalf("%v: %d admissions + %d replans != %d placements", pol, admitted, replans, batch.Placements)
		}
		// The timeline is exhausted: another step must fail loudly.
		if _, err := eng.Advance(nil); err == nil {
			t.Fatal("Advance past end of timeline should error")
		}
	}
}

// TestEngineStreamingValidation covers the streaming-only entry points:
// an engine accepts an empty Input.Apps (demands arrive via Advance) but
// still rejects malformed inputs and demands.
func TestEngineStreamingValidation(t *testing.T) {
	in := trioInput(t, 2, 6)
	in.Apps = nil
	eng, err := NewEngine(simConfig(core.Greedy), in)
	if err != nil {
		t.Fatalf("empty Apps should be legal for a streaming engine: %v", err)
	}
	if _, err := eng.Advance([]core.AppDemand{{ID: 1}}); err == nil {
		t.Error("invalid streamed demand should error")
	}
	bad := in
	bad.Actual = nil
	if _, err := NewEngine(simConfig(core.Greedy), bad); err == nil {
		t.Error("input without sites should be rejected")
	}
	if _, err := NewVMEngine(simConfig(core.Greedy), bad, cluster.Config{
		Servers: 4, CoresPerServer: 8, MemPerServerGB: 64, TargetUtilization: 0.7,
	}); err == nil {
		t.Error("VM engine should reject input without sites")
	}
}
