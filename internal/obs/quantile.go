package obs

// Quantile estimates the q-quantile (0 <= q <= 1) of the recorded
// distribution by locating the bucket containing the target rank and
// interpolating linearly within it. The estimate is clamped to the exact
// observed [Min, Max] range, so Quantile(0) == Min and Quantile(1) == Max,
// and single-observation histograms report that observation at every q.
// An empty snapshot returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	// rank is the (1-based, fractional) position of the quantile in the
	// sorted observation sequence.
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		// The rank lands in bucket i, spanning (lo, hi].
		var lo, hi float64
		switch {
		case len(s.Bounds) == 0:
			// A histogram created with no bounds (NewHistogram(name, nil)
			// is legal) has a single overflow bucket covering everything;
			// the only honest edges are the observed extremes.
			lo, hi = s.Min, s.Max
		case i >= len(s.Bounds):
			// Overflow bucket: everything above the last bound. The only
			// honest upper edge is the observed max.
			lo, hi = s.Bounds[len(s.Bounds)-1], s.Max
		case i == 0:
			lo, hi = s.Min, s.Bounds[0]
		default:
			lo, hi = s.Bounds[i-1], s.Bounds[i]
		}
		v := lo + (hi-lo)*(rank-float64(cum))/float64(c)
		// Bucket edges are coarser than the data: never report outside the
		// exact observed range.
		if v < s.Min {
			v = s.Min
		}
		if v > s.Max {
			v = s.Max
		}
		return v
	}
	return s.Max
}
