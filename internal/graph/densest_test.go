package graph

import (
	"testing"

	"github.com/vbcloud/vb/internal/energy"
)

// ringWithCore builds sites where {0,1,2} form a tight triangle and the
// rest are isolated singletons far away.
func ringWithCore() []energy.SiteConfig {
	sites := []energy.SiteConfig{
		{Name: "A", Source: energy.Wind, Latitude: 50.0, Longitude: 4.0, CapacityMW: 400},
		{Name: "B", Source: energy.Wind, Latitude: 50.2, Longitude: 4.2, CapacityMW: 400},
		{Name: "C", Source: energy.Solar, Latitude: 50.1, Longitude: 4.4, CapacityMW: 400},
		{Name: "X", Source: energy.Wind, Latitude: 37.0, Longitude: 23.0, CapacityMW: 400},
		{Name: "Y", Source: energy.Solar, Latitude: 60.5, Longitude: 25.0, CapacityMW: 400},
	}
	return sites
}

func TestDensestSubgraphFindsCore(t *testing.T) {
	g, err := New(ringWithCore(), 10)
	if err != nil {
		t.Fatal(err)
	}
	nodes, dens := g.DensestSubgraph()
	if len(nodes) != 3 {
		t.Fatalf("densest = %v, want the triangle {0,1,2}", nodes)
	}
	for i, want := range []int{0, 1, 2} {
		if nodes[i] != want {
			t.Fatalf("densest = %v, want [0 1 2]", nodes)
		}
	}
	// Triangle density: 3 edges / 3 vertices = 1.
	if dens != 1 {
		t.Errorf("density = %v, want 1", dens)
	}
	if !g.IsClique(nodes) {
		t.Error("triangle should be a clique")
	}
}

func TestDensestSubgraphEmptyGraph(t *testing.T) {
	// A graph with no edges: density 0, any single vertex is optimal.
	sites := ringWithCore()
	g, err := New(sites, 4.1) // below any pair latency
	if err != nil {
		t.Fatal(err)
	}
	nodes, dens := g.DensestSubgraph()
	if dens != 0 {
		t.Errorf("edgeless density = %v, want 0", dens)
	}
	if len(nodes) == 0 {
		t.Error("should still return vertices")
	}
}

func TestDenseGroup(t *testing.T) {
	g, err := New(ringWithCore(), 10)
	if err != nil {
		t.Fatal(err)
	}
	group, err := g.DenseGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(group) != 3 || group[0] != 0 || group[1] != 1 || group[2] != 2 {
		t.Errorf("dense group = %v, want [0 1 2]", group)
	}
	if _, err := g.DenseGroup(0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := g.DenseGroup(6); err == nil {
		t.Error("k>n should error")
	}
	all, err := g.DenseGroup(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Errorf("k=n should return everything, got %v", all)
	}
}

func TestDenseGroupLargeFleet(t *testing.T) {
	// The 12-site European fleet at the paper's 50 ms threshold: peeling
	// must return a group whose members are mutually closer than average.
	fleet := energy.EuropeanFleet(12)
	g, err := New(fleet, 0)
	if err != nil {
		t.Fatal(err)
	}
	group, err := g.DenseGroup(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(group) != 4 {
		t.Fatalf("group = %v", group)
	}
	// Internal edge count of the peeled group should beat a random spread
	// group's (take the 4 corner-most sites by index distance as a rough
	// contrast, and at minimum require better-than-half connectivity).
	edges := 0
	for i := 0; i < len(group); i++ {
		for j := i + 1; j < len(group); j++ {
			if g.Connected(group[i], group[j]) {
				edges++
			}
		}
	}
	if edges < 4 {
		t.Errorf("dense group has only %d/6 internal edges", edges)
	}
}

func TestIsCliqueNegative(t *testing.T) {
	g, err := New(ringWithCore(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.IsClique([]int{0, 1, 3}) {
		t.Error("0-1-3 spans clusters and cannot be a clique")
	}
	if !g.IsClique([]int{2}) {
		t.Error("singleton is trivially a clique")
	}
}
