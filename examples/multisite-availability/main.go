// Multisite availability (the paper's §2.3 / Fig 3 scenario): search a year
// of generation for a complementary 3-day window across the NO/UK/PT trio,
// show how aggregation turns variable energy into stable energy, and how a
// small grid purchase raises the guaranteed floor further.
package main

import (
	"fmt"
	"log"
	"strings"

	vb "github.com/vbcloud/vb"
)

func main() {
	log.SetFlags(0)

	res, err := vb.Fig3Complementary(vb.DefaultSeed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("complementary window: %s (3 days)\n\n", res.WindowStart.Format("2006-01-02"))
	fmt.Printf("adding UK wind to NO solar cuts cov by %.1fx (paper: 3.7x)\n", res.CoVImprovementUK)
	fmt.Printf("adding PT wind cuts cov by another %.1fx (paper: 2.3x)\n\n", res.CoVImprovementPT)

	fmt.Println("stable vs variable energy per combination (Fig 3b):")
	fmt.Printf("  %-12s %10s %10s %8s\n", "combo", "stable MWh", "var MWh", "stable%")
	for _, c := range res.Combos {
		fmt.Printf("  %-12s %10.0f %10.0f %7.0f%%\n",
			strings.Join(c.Names, "+"), c.Split.StableMWh, c.Split.VariableMWh, c.Split.StableFraction()*100)
	}

	fmt.Printf("\ngrid top-up with a 4,000 MWh budget (Fig 3a's shaded area):\n")
	fmt.Printf("  new guaranteed floor: %.0f MW\n", res.TopUp.FloorMW)
	fmt.Printf("  purchased:            %.0f MWh\n", res.TopUp.PurchasedMWh)
	fmt.Printf("  stabilized variable:  %.0f MWh (paper: 8,000)\n", res.TopUp.StabilizedMWh)
	fmt.Printf("  total added stable:   %.0f MWh (paper: 12,000)\n", res.TopUp.AddedStableMWh)

	// The §2.3 sweep: how many 2-site combinations find a complementary
	// 3-day interval?
	pairs, err := vb.CovPairImprovement(vb.DefaultSeed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nacross a 12-site fleet, %.0f%% of the %d site pairs improve cov by >50%%\n",
		pairs.FractionImproved*100, pairs.Pairs)
	fmt.Println("in some 3-day interval (paper: >52%)")
}
