// Command vbfleet runs the scheduler's subgraph-identification step (Fig 6,
// step 1) over a site fleet: build the latency graph, enumerate k-cliques,
// and rank candidate multi-VB groups by the coefficient of variation of
// their summed power.
//
// Usage:
//
//	vbfleet                          # rank 2..4-site groups of the 12-site fleet
//	vbfleet -k 3 -top 5 -latency 25  # best 3-site groups under 25 ms
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	vb "github.com/vbcloud/vb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vbfleet: ")

	var (
		kArg       = flag.Int("k", 0, "group size (0 = sweep 2..4)")
		top        = flag.Int("top", 5, "groups to show per size")
		latency    = flag.Float64("latency", 0, "latency threshold in ms (0 = the paper's 50)")
		days       = flag.Int("days", 14, "days of power used for ranking")
		seed       = flag.Uint64("seed", vb.DefaultSeed, "random seed")
		metricsOut = flag.String("metrics", "", "write a ranking manifest (metrics JSON) to this file")
		listenAddr = flag.String("listen", "", "serve live telemetry (/metrics, /snapshot, /events, pprof) on this address (e.g. localhost:8090)")
		parallel   = flag.Int("parallel", 0, "worker goroutines for trace generation and ranking (0 = all cores, 1 = serial; output is identical)")
	)
	flag.Parse()
	vb.SetParallelism(*parallel)

	var reg *vb.MetricsRegistry
	if *metricsOut != "" || *listenAddr != "" {
		reg = vb.NewMetrics()
	}
	var telemetry *vb.TelemetryServer
	if *listenAddr != "" {
		srv, err := vb.ServeTelemetry(*listenAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		telemetry = srv
		log.Printf("telemetry on http://%s/ (/metrics /snapshot /events /debug/pprof/)", srv.Addr())
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := telemetry.Shutdown(ctx); err != nil {
			log.Printf("telemetry shutdown: %v", err)
		}
	}()

	fleet := vb.EuropeanFleet(0)
	g, err := vb.NewGraph(fleet, *latency)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	world := vb.NewWorld(*seed)
	world.Obs = reg
	powers, err := world.GeneratePower(fleet, start, time.Hour, *days*24)
	if err != nil {
		log.Fatal(err)
	}

	kMin, kMax := 2, 4
	if *kArg > 0 {
		kMin, kMax = *kArg, *kArg
	}
	rankSpan := vb.TimeSpan(reg, "fleet.candidate_groups")
	groups, err := g.CandidateGroups(kMin, kMax, *top, powers)
	rankSpan()
	if err != nil {
		log.Fatal(err)
	}
	if *metricsOut != "" {
		reg.SetGauge("fleet.sites", float64(len(fleet)))
		reg.SetGauge("fleet.groups", float64(len(groups)))
		m := reg.Manifest()
		m.Seed = *seed
		for _, s := range fleet {
			m.Fleet = append(m.Fleet, s.Name)
		}
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("fleet of %d sites, %g ms threshold, ranked by cov of summed power (%d days)\n\n",
		len(fleet), g.Threshold(), *days)
	fmt.Printf("%-40s %6s %8s\n", "group", "cov", "latency")
	for _, grp := range groups {
		names := make([]string, len(grp.Nodes))
		var worst float64
		for i, n := range grp.Nodes {
			names[i] = g.Site(n).Name
			for _, m := range grp.Nodes[i+1:] {
				if l := g.Latency(n, m); l > worst {
					worst = l
				}
			}
		}
		fmt.Printf("%-40s %6.2f %6.1fms\n", strings.Join(names, "+"), grp.CoV, worst)
	}

	if len(groups) == 0 {
		fmt.Println("no feasible groups at this threshold; try -latency 60")
	}
}
