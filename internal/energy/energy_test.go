package energy

import (
	"math"
	"testing"
	"time"

	"github.com/vbcloud/vb/internal/stats"
	"github.com/vbcloud/vb/internal/trace"
)

var start = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

// yearTrio generates one year of 15-minute normalized traces for the
// NO/UK/PT trio, shared across tests.
func yearTrio(t *testing.T) ([]SiteConfig, []trace.Series) {
	t.Helper()
	w := NewWorld(42)
	cfgs := EuropeanTrio()
	series, err := w.Generate(cfgs, start, 15*time.Minute, 365*96)
	if err != nil {
		t.Fatal(err)
	}
	return cfgs, series
}

func TestSourceString(t *testing.T) {
	if Solar.String() != "solar" || Wind.String() != "wind" {
		t.Error("Source strings")
	}
	if Source(9).String() == "" {
		t.Error("unknown source should still format")
	}
}

func TestSiteConfigValidate(t *testing.T) {
	good := SiteConfig{Name: "x", Source: Wind, Latitude: 50, Longitude: 4, CapacityMW: 100}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []SiteConfig{
		{},
		{Name: "x", Source: Source(7), Latitude: 0, Longitude: 0, CapacityMW: 1},
		{Name: "x", Source: Wind, Latitude: 91, CapacityMW: 1},
		{Name: "x", Source: Wind, Longitude: 181, CapacityMW: 1},
		{Name: "x", Source: Wind, CapacityMW: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDistanceAndLatency(t *testing.T) {
	london := SiteConfig{Latitude: 51.5, Longitude: -0.1}
	paris := SiteConfig{Latitude: 48.9, Longitude: 2.35}
	d := DistanceKM(london, paris)
	if d < 300 || d > 400 {
		t.Errorf("London-Paris distance = %v km, want ~344", d)
	}
	if DistanceKM(london, london) != 0 {
		t.Error("self distance should be 0")
	}
	l := LatencyMS(london, paris)
	if l < 2 || l > 10 {
		t.Errorf("London-Paris latency = %v ms", l)
	}
	// Symmetric.
	if math.Abs(DistanceKM(london, paris)-DistanceKM(paris, london)) > 1e-9 {
		t.Error("distance should be symmetric")
	}
}

func TestGenerateErrors(t *testing.T) {
	w := NewWorld(1)
	if _, err := w.Generate(nil, start, time.Hour, 10); err == nil {
		t.Error("no sites should error")
	}
	if _, err := w.Generate([]SiteConfig{{}}, start, time.Hour, 10); err == nil {
		t.Error("invalid site should error")
	}
	good := EuropeanTrio()
	if _, err := w.Generate(good, start, time.Hour, 0); err == nil {
		t.Error("zero samples should error")
	}
	if _, err := w.Generate(good, start, 7*time.Hour, 10); err == nil {
		t.Error("step not dividing a day should error")
	}
	if _, err := w.Generate(good, start, 0, 10); err == nil {
		t.Error("zero step should error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfgs := EuropeanTrio()
	a, err := NewWorld(7).Generate(cfgs, start, time.Hour, 48)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorld(7).Generate(cfgs, start, time.Hour, 48)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i].Values {
			if a[i].Values[j] != b[i].Values[j] {
				t.Fatalf("site %d sample %d differs: %v vs %v", i, j, a[i].Values[j], b[i].Values[j])
			}
		}
	}
	c, err := NewWorld(8).Generate(cfgs, start, time.Hour, 48)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j := range a[0].Values {
		if a[0].Values[j] != c[0].Values[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different traces")
	}
}

func TestNormalizedRange(t *testing.T) {
	_, series := yearTrio(t)
	for i, s := range series {
		for j, v := range s.Values {
			if v < 0 || v > 1 {
				t.Fatalf("site %d sample %d = %v outside [0,1]", i, j, v)
			}
		}
	}
}

// TestFig2bSolarShape checks the paper's Figure 2b solar statistics: over
// 50% of samples are zero (night), and the tail is heavy with p99/p75 around
// 4x.
func TestFig2bSolarShape(t *testing.T) {
	_, series := yearTrio(t)
	solar := series[0]
	if z := solar.FractionZero(1e-9); z < 0.5 {
		t.Errorf("solar zero fraction = %v, want > 0.5 (nights)", z)
	}
	q, err := stats.Quantiles(solar.Values, 75, 99)
	if err != nil {
		t.Fatal(err)
	}
	ratio := stats.Ratio(q[1], q[0])
	if ratio < 2.5 {
		t.Errorf("solar p99/p75 = %v, want heavy tail (paper ~4x)", ratio)
	}
	if solar.Max() < 0.8 {
		t.Errorf("solar max = %v, should approach capacity on clear summer days", solar.Max())
	}
}

// TestFig2bWindShape checks the wind statistics: median at most ~20% of
// peak, rarely zero, p99/p75 around 2x.
func TestFig2bWindShape(t *testing.T) {
	_, series := yearTrio(t)
	for _, idx := range []int{1, 2} {
		wind := series[idx]
		q, err := stats.Quantiles(wind.Values, 50, 75, 99)
		if err != nil {
			t.Fatal(err)
		}
		if q[0] > 0.25 {
			t.Errorf("wind median = %v, want <= 0.25 (paper: <= 0.2)", q[0])
		}
		if z := wind.FractionZero(1e-9); z > 0.15 {
			t.Errorf("wind zero fraction = %v, want rare zeros", z)
		}
		ratio := stats.Ratio(q[2], q[1])
		if ratio < 1.5 || ratio > 4 {
			t.Errorf("wind p99/p75 = %v, want ~2x", ratio)
		}
	}
}

// TestSolarDiurnal checks that solar output is zero at local midnight and
// usually positive at local noon.
func TestSolarDiurnal(t *testing.T) {
	_, series := yearTrio(t)
	solar := series[0]
	noonPositive, nights := 0, 0
	days := 30
	for d := 150; d < 150+days; d++ { // summer days
		midnight := solar.Values[d*96]
		noon := solar.Values[d*96+48]
		if midnight != 0 {
			t.Fatalf("day %d: midnight output %v != 0", d, midnight)
		}
		nights++
		if noon > 0 {
			noonPositive++
		}
	}
	if noonPositive < days*9/10 {
		t.Errorf("only %d/%d summer noons have output", noonPositive, days)
	}
}

// TestSolarSeasonal checks the paper's observation that winter peak
// production is far below summer peak at high latitude.
func TestSolarSeasonal(t *testing.T) {
	_, series := yearTrio(t)
	solar := series[0] // Oslo, 59.9N
	jun := solar.Window(time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC), time.Date(2020, 6, 28, 0, 0, 0, 0, time.UTC))
	dec := solar.Window(time.Date(2020, 12, 1, 0, 0, 0, 0, time.UTC), time.Date(2020, 12, 28, 0, 0, 0, 0, time.UTC))
	if dec.Max() > 0.5*jun.Max() {
		t.Errorf("winter peak %v vs summer peak %v: want winter << summer", dec.Max(), jun.Max())
	}
}

// TestComplementarity checks that solar and wind are negatively correlated
// (wind blows more at night and in winter), the root of multi-VB stability.
func TestComplementarity(t *testing.T) {
	_, series := yearTrio(t)
	r, err := stats.Pearson(series[0].Values, series[1].Values)
	if err != nil {
		t.Fatal(err)
	}
	if r > -0.05 {
		t.Errorf("solar-wind correlation = %v, want negative", r)
	}
}

// TestSpatialCorrelation checks that nearby same-source sites correlate more
// strongly than distant ones.
func TestSpatialCorrelation(t *testing.T) {
	w := NewWorld(42)
	cfgs := []SiteConfig{
		{Name: "A", Source: Wind, Latitude: 53.5, Longitude: -1.5, CapacityMW: 400},
		{Name: "B", Source: Wind, Latitude: 53.9, Longitude: -1.2, CapacityMW: 400},
		{Name: "C", Source: Wind, Latitude: 40.0, Longitude: 20.0, CapacityMW: 400},
	}
	series, err := w.Generate(cfgs, start, 15*time.Minute, 60*96)
	if err != nil {
		t.Fatal(err)
	}
	near, err := stats.Pearson(series[0].Values, series[1].Values)
	if err != nil {
		t.Fatal(err)
	}
	far, err := stats.Pearson(series[0].Values, series[2].Values)
	if err != nil {
		t.Fatal(err)
	}
	if near <= far {
		t.Errorf("near correlation %v should exceed far correlation %v", near, far)
	}
	if near < 0.1 {
		t.Errorf("near same-source correlation = %v, too weak", near)
	}
}

func TestGeneratePowerScales(t *testing.T) {
	w := NewWorld(42)
	cfgs := EuropeanTrio()
	norm, err := w.Generate(cfgs, start, time.Hour, 24)
	if err != nil {
		t.Fatal(err)
	}
	power, err := w.GeneratePower(cfgs, start, time.Hour, 24)
	if err != nil {
		t.Fatal(err)
	}
	for i := range norm {
		for j := range norm[i].Values {
			want := norm[i].Values[j] * cfgs[i].CapacityMW
			if math.Abs(power[i].Values[j]-want) > 1e-9 {
				t.Fatalf("site %d sample %d: %v != %v", i, j, power[i].Values[j], want)
			}
		}
	}
}

func TestPowerCurve(t *testing.T) {
	cases := []struct {
		v    float64
		want float64
	}{
		{0, 0}, {2.9, 0}, {3, 0}, {12.5, 1}, {20, 1}, {25, 0}, {30, 0},
	}
	for _, c := range cases {
		if got := powerCurve(c.v); got != c.want {
			t.Errorf("powerCurve(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	// Monotone in the cubic region.
	prev := -1.0
	for v := 3.0; v <= 12.5; v += 0.1 {
		p := powerCurve(v)
		if p < prev {
			t.Fatalf("power curve not monotone at %v", v)
		}
		prev = p
	}
}

func TestClassifyRegime(t *testing.T) {
	if classifyRegime(-2) != regimeSunny {
		t.Error("very clear latent should be sunny")
	}
	if classifyRegime(0.3) != regimeVariable {
		t.Error("mid latent should be variable")
	}
	if classifyRegime(2) != regimeOvercast {
		t.Error("very cloudy latent should be overcast")
	}
	for _, r := range []regime{regimeSunny, regimeVariable, regimeOvercast} {
		if r.String() == "" {
			t.Error("regime String should be non-empty")
		}
	}
}

func TestTransmittanceBounds(t *testing.T) {
	for _, r := range []regime{regimeSunny, regimeVariable, regimeOvercast} {
		for z := -4.0; z <= 4; z += 0.5 {
			tr := transmittance(r, z)
			if tr < 0 || tr > 1 {
				t.Fatalf("transmittance(%v, %v) = %v outside [0,1]", r, z, tr)
			}
		}
	}
	// Overcast days must be far darker than sunny days.
	if transmittance(regimeOvercast, 0) > 0.3*transmittance(regimeSunny, 0) {
		t.Error("overcast transmittance should collapse production")
	}
}

func TestStableVariableSplit(t *testing.T) {
	// Constant 100 MW for a day: everything is stable.
	s := trace.FromValues(start, time.Hour, make([]float64, 24))
	for i := range s.Values {
		s.Values[i] = 100
	}
	split, err := StableVariableSplit(s, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(split.StableMWh-2400) > 1e-9 || math.Abs(split.VariableMWh) > 1e-9 {
		t.Errorf("constant split = %+v", split)
	}
	if split.StableFraction() != 1 {
		t.Errorf("StableFraction = %v", split.StableFraction())
	}
	// One zero sample makes the whole window variable.
	s.Values[5] = 0
	split, err = StableVariableSplit(s, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if split.StableMWh != 0 {
		t.Errorf("zero-dip stable = %v, want 0", split.StableMWh)
	}
	// Shorter windows recover some stability.
	split, err = StableVariableSplit(s, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if split.StableMWh <= 0 {
		t.Error("2h-window stable energy should be positive")
	}
	if _, err := StableVariableSplit(s, 7*time.Hour); err == nil {
		t.Error("window not dividing series should error")
	}
	var empty Split
	if empty.StableFraction() != 0 {
		t.Error("empty split fraction should be 0")
	}
}

// TestFig3bAggregationIncreasesStableFraction is the core §2.3 result: in a
// complementary window, aggregating the trio yields a larger stable fraction
// than the best single site, and solar alone has zero stable energy.
func TestFig3bAggregationIncreasesStableFraction(t *testing.T) {
	w := NewWorld(42)
	cfgs := EuropeanTrio()
	yr, err := w.GeneratePower(cfgs, start, time.Hour, 365*24)
	if err != nil {
		t.Fatal(err)
	}
	idx, frac, err := BestWindow(yr, 72*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.3 {
		t.Errorf("best 3-day window stable fraction = %v, want >= 0.3 (paper: 0.67)", frac)
	}
	win := make([]trace.Series, len(yr))
	for i := range yr {
		win[i] = yr[i].Slice(idx, idx+72)
	}
	combos, err := Combinations([]string{"NO", "UK", "PT"}, win, 72*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]ComboResult{}
	for _, c := range combos {
		key := ""
		for _, n := range c.Names {
			key += n + "+"
		}
		byKey[key] = c
	}
	if len(combos) != 7 {
		t.Fatalf("expected 7 combos, got %d", len(combos))
	}
	no := byKey["NO+"]
	trio := byKey["NO+UK+PT+"]
	if no.Split.StableFraction() != 0 {
		t.Errorf("solar-only stable fraction = %v, want 0 (nights)", no.Split.StableFraction())
	}
	if trio.Split.StableFraction() <= no.Split.StableFraction() {
		t.Error("trio should have higher stable fraction than solar alone")
	}
	// Aggregation reduces cov (Fig 3a): trio cov below solar-only cov.
	if trio.CoV >= no.CoV {
		t.Errorf("trio cov %v should be below solar cov %v", trio.CoV, no.CoV)
	}
}

func TestCombinationsErrors(t *testing.T) {
	if _, err := Combinations([]string{"a"}, nil, time.Hour); err == nil {
		t.Error("mismatch should error")
	}
	names := make([]string, 17)
	powers := make([]trace.Series, 17)
	if _, err := Combinations(names, powers, time.Hour); err == nil {
		t.Error("too many sites should error")
	}
}

func TestAggregateErrors(t *testing.T) {
	if _, err := Aggregate([]string{"a"}, nil, time.Hour); err == nil {
		t.Error("mismatch should error")
	}
	a := trace.FromValues(start, time.Hour, []float64{1, 2})
	b := trace.FromValues(start, 30*time.Minute, []float64{1, 2})
	if _, err := Aggregate([]string{"a", "b"}, []trace.Series{a, b}, time.Hour); err == nil {
		t.Error("incompatible series should error")
	}
}

// TestPairImprovementClaim verifies the §2.3 claim: more than 52% of 2-site
// combinations have some 3-day interval where aggregation improves cov by
// more than 50%.
func TestPairImprovementClaim(t *testing.T) {
	w := NewWorld(42)
	fleet := EuropeanFleet(12)
	names := make([]string, len(fleet))
	for i := range fleet {
		names[i] = fleet[i].Name
	}
	best := map[string]float64{}
	for m := 0; m < 24; m++ {
		st := time.Date(2020, 1, 1+m*15, 0, 0, 0, 0, time.UTC)
		fp, err := w.GeneratePower(fleet, st, time.Hour, 72)
		if err != nil {
			t.Fatal(err)
		}
		pairs, err := AllPairs(names, fp)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pairs {
			k := p.A + "/" + p.B
			if v := p.Improvement(); v > best[k] {
				best[k] = v
			}
		}
	}
	n2 := 0
	for _, v := range best {
		if v >= 2 {
			n2++
		}
	}
	frac := float64(n2) / float64(len(best))
	if frac <= 0.52 {
		t.Errorf("fraction of pairs improving cov >50%% = %v, paper claims > 0.52", frac)
	}
}

func TestAllPairsErrors(t *testing.T) {
	if _, err := AllPairs([]string{"a"}, nil); err == nil {
		t.Error("mismatch should error")
	}
	a := trace.FromValues(start, time.Hour, []float64{1, 2})
	b := trace.FromValues(start, 30*time.Minute, []float64{1, 2})
	if _, err := AllPairs([]string{"a", "b"}, []trace.Series{a, b}); err == nil {
		t.Error("incompatible should error")
	}
}

func TestFractionImproved(t *testing.T) {
	pairs := []PairImprovement{
		{BaselineCoV: 2, PairCoV: 0.5}, // 4x
		{BaselineCoV: 2, PairCoV: 1.5}, // 1.33x
		{BaselineCoV: 2, PairCoV: 0},   // inf
	}
	if got := FractionImproved(pairs, 2); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("FractionImproved = %v", got)
	}
	if FractionImproved(nil, 2) != 0 {
		t.Error("empty should be 0")
	}
}

func TestPlanTopUp(t *testing.T) {
	// Power alternating 0 and 100 MW hourly for 10 hours.
	vals := make([]float64, 10)
	for i := range vals {
		if i%2 == 1 {
			vals[i] = 100
		}
	}
	s := trace.FromValues(start, time.Hour, vals)
	// Budget 250 MWh: can afford floor of 50 MW (5 zero-hours x 50).
	tu, err := PlanTopUp(s, 250)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tu.FloorMW-50) > 0.5 {
		t.Errorf("floor = %v, want ~50", tu.FloorMW)
	}
	if math.Abs(tu.PurchasedMWh-250) > 2 {
		t.Errorf("purchased = %v, want ~250", tu.PurchasedMWh)
	}
	// Floor raise from 0 to 50 over 10h = 500 MWh added stable, of which
	// 250 purchased and 250 stabilized from variable production.
	if math.Abs(tu.AddedStableMWh-500) > 5 {
		t.Errorf("added stable = %v, want ~500", tu.AddedStableMWh)
	}
	if math.Abs(tu.StabilizedMWh-250) > 5 {
		t.Errorf("stabilized = %v, want ~250", tu.StabilizedMWh)
	}
	if _, err := PlanTopUp(trace.Series{}, 10); err == nil {
		t.Error("empty series should error")
	}
	if _, err := PlanTopUp(s, -1); err == nil {
		t.Error("negative budget should error")
	}
	// Zero budget: floor stays at the minimum.
	tu, err = PlanTopUp(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tu.FloorMW > 1e-6 || tu.AddedStableMWh > 1e-6 {
		t.Errorf("zero budget should not raise floor: %+v", tu)
	}
}

func TestBestWindow(t *testing.T) {
	w := NewWorld(42)
	yr, err := w.GeneratePower(EuropeanTrio(), start, time.Hour, 60*24)
	if err != nil {
		t.Fatal(err)
	}
	idx, frac, err := BestWindow(yr, 72*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if idx < 0 || idx+72 > yr[0].Len() {
		t.Errorf("best window index %d out of range", idx)
	}
	if frac < 0 || frac > 1 {
		t.Errorf("stable fraction %v out of range", frac)
	}
	if _, _, err := BestWindow(yr, 100*24*time.Hour); err == nil {
		t.Error("window longer than series should error")
	}
	if _, _, err := BestWindow(nil, time.Hour); err == nil {
		t.Error("no series should error")
	}
}

func TestFleetConstructors(t *testing.T) {
	trio := EuropeanTrio()
	if len(trio) != 3 {
		t.Fatalf("trio size = %d", len(trio))
	}
	for _, c := range trio {
		if err := c.Validate(); err != nil {
			t.Errorf("trio site %s invalid: %v", c.Name, err)
		}
	}
	fleet := EuropeanFleet(5)
	if len(fleet) != 5 {
		t.Errorf("fleet(5) size = %d", len(fleet))
	}
	all := EuropeanFleet(0)
	if len(all) < 10 {
		t.Errorf("fleet(0) should return all templates, got %d", len(all))
	}
	for _, c := range all {
		if err := c.Validate(); err != nil {
			t.Errorf("fleet site %s invalid: %v", c.Name, err)
		}
	}
	if got := EuropeanFleet(100); len(got) != len(all) {
		t.Errorf("fleet(100) should clamp to %d, got %d", len(all), len(got))
	}
}

func TestAnchorWeightsUnitShare(t *testing.T) {
	w := NewWorld(1)
	cfgs := EuropeanFleet(6)
	anchors := anchorGrid(cfgs)
	for _, c := range cfgs {
		ws := w.anchorWeights(c, anchors)
		var ss float64
		for _, x := range ws {
			ss += x * x
		}
		want := w.regionalShare() * w.regionalShare()
		if math.Abs(ss-want) > 1e-9 {
			t.Errorf("site %s: sum of squared weights = %v, want %v", c.Name, ss, want)
		}
	}
}

func TestOUStationary(t *testing.T) {
	rng := NewWorld(3).subRNG("test")
	xs := genOU(10, 20000, rng)
	m := stats.Mean(xs)
	sd := stats.StdDev(xs)
	if math.Abs(m) > 0.1 {
		t.Errorf("OU mean = %v, want ~0", m)
	}
	if math.Abs(sd-1) > 0.1 {
		t.Errorf("OU std = %v, want ~1", sd)
	}
}

func TestMixPreservesVariance(t *testing.T) {
	// mix with a=0.6: 0.36 + 0.64 = 1 when inputs are unit variance.
	rng := NewWorld(5).subRNG("mix")
	r := genOU(5, 20000, rng)
	l := genOU(5, 20000, rng)
	out := make([]float64, len(r))
	for i := range out {
		out[i] = mix(0.6, r[i], l[i])
	}
	sd := stats.StdDev(out)
	if math.Abs(sd-1) > 0.1 {
		t.Errorf("mixed std = %v, want ~1", sd)
	}
}

// TestDistributionStableAcrossSeeds: the generative models must produce the
// same power *distribution* for any seed (only the sample path changes) —
// checked with a two-sample KS statistic.
func TestDistributionStableAcrossSeeds(t *testing.T) {
	cfgs := EuropeanTrio()
	gen := func(seed uint64) []trace.Series {
		s, err := NewWorld(seed).Generate(cfgs, start, time.Hour, 120*24)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := gen(1)
	b := gen(2)
	for i, cfg := range cfgs {
		d, err := stats.KolmogorovSmirnov(a[i].Values, b[i].Values)
		if err != nil {
			t.Fatal(err)
		}
		if d > 0.08 {
			t.Errorf("%s: KS distance across seeds = %v, distributions should match", cfg.Name, d)
		}
	}
}
