package vb

import (
	"time"

	"github.com/vbcloud/vb/internal/carbon"
	"github.com/vbcloud/vb/internal/energy"
	"github.com/vbcloud/vb/internal/power"
	"github.com/vbcloud/vb/internal/trace"
)

// Carbon and server-power models (the §1 motivation and the step-4
// consolidation argument).
type (
	// CarbonIntensity is an emissions factor in gCO2e/kWh.
	CarbonIntensity = carbon.Intensity
	// CarbonSavingsBreakdown compares renewable vs grid emissions.
	CarbonSavingsBreakdown = carbon.Savings
	// ServerPowerModel is the linear idle+active server power model.
	ServerPowerModel = power.ServerModel
)

// Representative carbon intensities.
const (
	CoalGrid       = carbon.CoalGrid
	AverageGrid    = carbon.AverageGrid
	GasGrid        = carbon.GasGrid
	WindLifecycle  = carbon.WindLifecycle
	SolarLifecycle = carbon.SolarLifecycle
)

// DefaultServerPowerModel returns a typical dual-socket server model.
func DefaultServerPowerModel() ServerPowerModel { return power.DefaultServerModel() }

// CarbonResult quantifies the emissions argument of §1 on a year of the
// trio's generation consumed by co-located compute.
type CarbonResult struct {
	// Savings versus an average mixed grid.
	Savings CarbonSavingsBreakdown
	// MigrationTons is the footprint of a year of migration WAN traffic —
	// the §5 "negligible" claim.
	MigrationTons float64
	// MigrationShare is MigrationTons over the grid counterfactual.
	MigrationShare float64
}

// CarbonSavings computes the CO2e a VB deployment avoids by consuming the
// trio's generation on site instead of grid energy, and checks §5's claim
// that the added migration traffic is carbon-negligible.
func CarbonSavings(seed uint64) (CarbonResult, error) {
	w := energy.NewWorld(seed)
	year, err := w.GeneratePower(energy.EuropeanTrio(), experimentStart, time.Hour, 365*24)
	if err != nil {
		return CarbonResult{}, err
	}
	sum, err := trace.Sum(year...)
	if err != nil {
		return CarbonResult{}, err
	}
	// Blend wind and solar lifecycle intensity by energy share.
	solarE := year[0].Energy()
	totalE := sum.Energy()
	blend := CarbonIntensity(
		(float64(carbon.SolarLifecycle)*solarE + float64(carbon.WindLifecycle)*(totalE-solarE)) / totalE)
	sav, err := carbon.CompareToGrid(sum, blend, carbon.AverageGrid)
	if err != nil {
		return CarbonResult{}, err
	}
	// A year of migration traffic, scaled from the Fig 4 wind month.
	fig4, err := Fig4Migration(seed, Wind, 28)
	if err != nil {
		return CarbonResult{}, err
	}
	yearGB := (fig4.Run.TotalOutGB() + fig4.Run.TotalInGB()) * 13 // ~13 four-week months
	migTons, err := carbon.MigrationEnergyTons(yearGB, 0.03, carbon.AverageGrid)
	if err != nil {
		return CarbonResult{}, err
	}
	res := CarbonResult{Savings: sav, MigrationTons: migTons}
	if sav.GridTons > 0 {
		res.MigrationShare = migTons / sav.GridTons
	}
	return res, nil
}

// ConsolidationResult quantifies the step-4 packing argument with the
// server power model.
type ConsolidationResult struct {
	// ConsolidatedKW and SpreadKW are the site draws for best-fit packing
	// vs even spreading at the paper's scale (700 servers, 70% util).
	ConsolidatedKW, SpreadKW float64
	// SavingFraction is 1 - consolidated/spread.
	SavingFraction float64
}

// ConsolidationStudy computes the power saving of consolidating the
// paper's 700-server site at 70% utilization versus spreading the same
// load across all powered servers.
func ConsolidationStudy() (ConsolidationResult, error) {
	cfg := DefaultClusterConfig()
	model := power.DefaultServerModel()
	alloc := int(0.7 * float64(cfg.TotalCores()))
	cons, spread, err := power.ConsolidationSaving(model, alloc, cfg.TotalCores(), cfg.Servers, cfg.CoresPerServer)
	if err != nil {
		return ConsolidationResult{}, err
	}
	out := ConsolidationResult{ConsolidatedKW: cons, SpreadKW: spread}
	if spread > 0 {
		out.SavingFraction = 1 - cons/spread
	}
	return out, nil
}
