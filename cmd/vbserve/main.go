// Command vbserve is the long-lived online scheduling daemon: it owns a
// streaming VM-granularity engine (vb.VMEngine), admits application
// arrivals over HTTP, advances the plan timeline step by step, and serves
// every decision it makes as a JSONL log — alongside live obs-v2 telemetry
// (/metrics, /events, pprof) from the run's registry.
//
// Because renewable-site scheduling is deterministic given the arrival
// stream, the daemon supports exact record/replay and crash recovery:
//
//   - `vbserve -genlog` emits the synthetic workload as a request log
//     (JSONL of arrive/step operations);
//   - `vbserve -replay log.jsonl -decisions out.jsonl` drives the engine
//     through a recorded log and writes the decision log;
//   - `-snapshot-after N` stops a replay after N steps and writes the
//     engine's complete state (server packing, plans, scheduler ledgers,
//     warm solver caches) to disk;
//   - `-restore snap.bin` resumes a replay (or the HTTP daemon) from a
//     snapshot; the decisions after the restore are byte-identical to an
//     uninterrupted run's.
//
// Usage:
//
//	vbserve -listen :8091                     # HTTP daemon
//	vbserve -workload cohorts.json -genlog    # SLO cohort request log
//	vbserve -genlog -out requests.jsonl       # record the workload
//	vbserve -replay requests.jsonl -decisions full.jsonl
//	vbserve -replay requests.jsonl -snapshot-after 6 -snapshot snap.bin \
//	        -decisions part1.jsonl
//	vbserve -replay requests.jsonl -restore snap.bin -decisions part2.jsonl
//	cat part1.jsonl part2.jsonl | cmp - full.jsonl   # byte-identical
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	vb "github.com/vbcloud/vb"
)

// scenarioStart anchors the daemon's synthetic timeline.
var scenarioStart = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

// planStep is the scheduling granularity (the paper's 6-hour window).
const planStep = 6 * time.Hour

func main() {
	log.SetFlags(0)
	log.SetPrefix("vbserve: ")

	var (
		seed       = flag.Uint64("seed", 42, "world seed (energy traces and forecasts)")
		days       = flag.Int("days", 7, "timeline length in days")
		appsPerDay = flag.Float64("apps-per-day", 6, "mean application arrivals per day")
		policyName = flag.String("policy", "MIP", "scheduling policy (Greedy, MIP, MIP-24h, MIP-peak)")
		listen     = flag.String("listen", ":8091", "HTTP listen address (serve mode)")
		decisions  = flag.String("decisions", "", "append per-step decision records (JSONL) to this file")
		snapshot   = flag.String("snapshot", "", "snapshot file path (written by POST /v1/snapshot or -snapshot-after)")
		restore    = flag.String("restore", "", "restore engine state from this snapshot before serving/replaying")
		replay     = flag.String("replay", "", "replay a recorded request log (JSONL) and exit")
		snapAfter  = flag.Int("snapshot-after", 0, "in replay mode: stop after this many steps and write -snapshot")
		genlog     = flag.Bool("genlog", false, "emit the synthetic workload as a request log and exit")
		out        = flag.String("out", "", "output path for -genlog (default stdout)")
		faults     = flag.String("faults", "", "fault script: compact spec (kind:site@start-end[=sev],...) or @file.json")
		workload   = flag.String("workload", "", "drive the daemon with an SLO cohort trace spec (JSON file) instead of the legacy synthetic workload")
		maxPending = flag.Int("max-pending", 4096, "arrival queue bound before 429 backpressure (0 = unbounded)")
		drain      = flag.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown drain deadline on SIGINT/SIGTERM")
	)
	flag.Parse()

	policy, err := parsePolicy(*policyName)
	if err != nil {
		log.Fatal(err)
	}
	scn, err := buildScenario(*seed, *days, *appsPerDay, policy, *workload)
	if err != nil {
		log.Fatal(err)
	}
	if err := scn.applyFaults(*faults); err != nil {
		log.Fatal(err)
	}

	switch {
	case *genlog:
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := writeRequestLog(w, scn); err != nil {
			log.Fatal(err)
		}
	case *replay != "":
		if err := replayLog(scn, *replay, *decisions, *snapshot, *restore, *snapAfter); err != nil {
			log.Fatal(err)
		}
	default:
		if err := serve(scn, *listen, *decisions, *snapshot, *restore, *maxPending, *drain); err != nil {
			log.Fatal(err)
		}
	}
}

func parsePolicy(name string) (vb.Policy, error) {
	for _, p := range vb.AllPolicies() {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q (want Greedy, MIP, MIP-24h, or MIP-peak)", name)
}

// scenario bundles the deterministic run configuration every mode shares:
// the same (seed, days, appsPerDay, policy) always produces the same
// energy traces, forecasts, workload, and therefore the same decisions.
type scenario struct {
	cfg        vb.SchedulerConfig
	in         vb.SimInput
	clusterCfg vb.ClusterConfig
	reg        *vb.MetricsRegistry
	// arrivals holds every application (demand + its VMs) sorted by Start
	// — the stream a request log records.
	arrivals []vb.AppArrival
}

// buildScenario reconstructs the full deterministic scenario. It mirrors
// the repo's experiment setup: the paper's European site trio, hourly
// generation windowed to the 6-hour plan step, day-horizon forecasts, and
// a synthetic application workload (legacy two-class by default, an SLO
// cohort trace when workloadSpec names a spec file).
func buildScenario(seed uint64, days int, appsPerDay float64, policy vb.Policy, workloadSpec string) (*scenario, error) {
	if days <= 0 {
		return nil, fmt.Errorf("non-positive day count %d", days)
	}
	reg := vb.NewMetrics()
	world := vb.NewWorld(seed)
	world.Obs = reg
	sites := vb.EuropeanTrio()
	fine, err := world.Generate(sites, scenarioStart, time.Hour, days*24)
	if err != nil {
		return nil, err
	}
	fc := vb.NewForecaster(seed + 1)
	fc.Obs = reg
	actual := make([]vb.Series, len(sites))
	bundles := make([]*vb.Bundle, len(sites))
	for i := range sites {
		if actual[i], err = fine[i].WindowMin(planStep); err != nil {
			return nil, err
		}
		if bundles[i], err = fc.NewBundle(actual[i], sites[i].Source, sites[i].Name); err != nil {
			return nil, err
		}
		if err := bundles[i].UseFixedHorizon(vb.HorizonDay); err != nil {
			return nil, err
		}
	}
	apps, err := scenarioApps(seed, days, appsPerDay, workloadSpec)
	if err != nil {
		return nil, err
	}
	clusterCfg := vb.ClusterConfig{
		Servers:           700,
		CoresPerServer:    40,
		MemPerServerGB:    512,
		TargetUtilization: 0.70,
	}
	var arrivals []vb.AppArrival
	for _, a := range apps {
		if a.TotalCores() == 0 {
			continue
		}
		d, err := vb.DemandFromApp(a)
		if err != nil {
			return nil, err
		}
		arrivals = append(arrivals, vb.AppArrival{Demand: d, VMs: a.VMs})
	}
	sort.Slice(arrivals, func(i, j int) bool {
		return arrivals[i].Demand.Start.Before(arrivals[j].Demand.Start)
	})
	return assembleScenario(policy, reg, actual, bundles, clusterCfg, arrivals), nil
}

// scenarioApps generates the daemon's application stream: the legacy
// two-class synthetic workload by default, or an SLO cohort trace when a
// -workload spec file is given. A cohort spec is used as given — its own
// seed, arrival rate, and window apply — so it should start at the
// scenario anchor (2020-05-01) for arrivals to land inside the timeline.
func scenarioApps(seed uint64, days int, appsPerDay float64, workloadSpec string) ([]vb.App, error) {
	if workloadSpec != "" {
		spec, err := vb.LoadTraceSpec(workloadSpec)
		if err != nil {
			return nil, err
		}
		return vb.GenerateCohortApps(*spec)
	}
	return vb.GenerateApps(vb.AppConfig{
		Seed:           seed,
		Start:          scenarioStart,
		Duration:       time.Duration(days) * 24 * time.Hour,
		MeanAppsPerDay: appsPerDay,
		MeanVMsPerApp:  60,
		StableFraction: 0.7,
	})
}

func assembleScenario(policy vb.Policy, reg *vb.MetricsRegistry, actual []vb.Series, bundles []*vb.Bundle, clusterCfg vb.ClusterConfig, arrivals []vb.AppArrival) *scenario {
	return &scenario{
		cfg: vb.SchedulerConfig{
			Policy:         policy,
			PlanStep:       planStep,
			UtilTarget:     0.7,
			MaxSitesPerApp: 3,
			Obs:            reg,
		},
		in: vb.SimInput{
			Actual:     actual,
			Bundles:    bundles,
			TotalCores: float64(clusterCfg.TotalCores()),
			Obs:        reg,
		},
		clusterCfg: clusterCfg,
		reg:        reg,
		arrivals:   arrivals,
	}
}

// applyFaults compiles a -faults argument (a compact spec, or @path to a
// JSON script file) against the scenario's dimensions and threads the
// injector into the engines. Faults become part of the deterministic run
// identity: the same seed + the same script reproduce the same decisions,
// and snapshots record the script's hash so a restore under a different
// script is rejected.
func (s *scenario) applyFaults(spec string) error {
	if spec == "" {
		return nil
	}
	var script *vb.FaultScript
	var err error
	if strings.HasPrefix(spec, "@") {
		script, err = vb.LoadFaultScript(spec[1:])
	} else {
		script, err = vb.ParseFaultSpec(spec)
	}
	if err != nil {
		return err
	}
	inj, err := vb.NewFaultInjector(script, len(s.in.Actual), s.in.Actual[0].Len())
	if err != nil {
		return err
	}
	s.in.Faults = inj
	return nil
}

// newEngine builds a fresh engine for the scenario, or restores one from a
// snapshot file when restorePath is set.
func (s *scenario) newEngine(restorePath string) (*vb.VMEngine, error) {
	if restorePath == "" {
		return vb.NewVMEngine(s.cfg, s.in, s.clusterCfg)
	}
	f, err := os.Open(restorePath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	eng, err := vb.RestoreVMEngine(s.cfg, s.in, s.clusterCfg, f)
	if err != nil {
		return nil, fmt.Errorf("restoring %s: %w", restorePath, err)
	}
	return eng, nil
}
