// Scheduler comparison (the paper's §3.1 / Table 1 / Fig 7 scenario): run
// the four scheduling policies over a 3-site multi-VB group for a week and
// compare migration overhead.
package main

import (
	"fmt"
	"log"

	vb "github.com/vbcloud/vb"
)

func main() {
	log.SetFlags(0)

	res, err := vb.Table1PolicyComparison(vb.Table1Setup{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())

	greedy, _ := res.Row(vb.PolicyGreedy)
	mip, _ := res.Row(vb.PolicyMIP)
	peak, _ := res.Row(vb.PolicyMIPPeak)
	fmt.Printf("\nMIP cuts total overhead by %.0f%% vs greedy (paper: >30%%)\n",
		(1-mip.Total/greedy.Total)*100)
	fmt.Printf("MIP-peak cuts the 99th percentile by %.1fx (paper: >4.2x)\n",
		greedy.P99/peak.P99)
	fmt.Printf("MIP-peak cuts the standard deviation by %.1fx (paper: 2.7x)\n",
		greedy.Std/peak.Std)

	fmt.Println("\nFig 7 CDF (transfer GB at selected percentiles):")
	fmt.Printf("  %-9s %8s %8s %8s\n", "policy", "p75", "p90", "p99")
	for _, row := range res.Rows {
		c, err := vb.NewCDF(res.Transfers[row.Policy].Values)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %8.0f %8.0f %8.0f\n", row.Policy,
			c.Quantile(0.75), c.Quantile(0.90), c.Quantile(0.99))
	}
}
