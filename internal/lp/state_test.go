package lp

import (
	"bytes"
	"encoding/gob"
	"math/rand/v2"
	"reflect"
	"testing"
)

// TestInstanceStateRoundTrip pins the crash-recovery contract: after a
// solve, an encode/decode cycle reproduces the instance bit-exactly, and a
// refreshed re-solve from the decoded instance pivots to exactly the same
// solution as the original would.
func TestInstanceStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 50; trial++ {
		p := randomStateProblem(rng)
		orig, err := NewInstance(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := orig.SolveCurrent(); err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(orig); err != nil {
			t.Fatal(err)
		}
		restored := new(Instance)
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(restored); err != nil {
			t.Fatal(err)
		}

		// Bit-exact persistent state.
		for _, c := range []struct {
			name string
			a, b interface{}
		}{
			{"basis", orig.basis, restored.basis},
			{"vstat", orig.vstat, restored.vstat},
			{"binv", orig.binv, restored.binv},
			{"xB", orig.xB, restored.xB},
			{"d", orig.d, restored.d},
			{"lo", orig.lo, restored.lo},
			{"hi", orig.hi, restored.hi},
			{"cmin", orig.cmin, restored.cmin},
		} {
			if !reflect.DeepEqual(c.a, c.b) {
				t.Fatalf("trial %d: %s differs after round trip", trial, c.name)
			}
		}
		if orig.ready != restored.ready || orig.binvIdent != restored.binvIdent ||
			orig.dExact != restored.dExact || orig.pivots != restored.pivots {
			t.Fatalf("trial %d: flags differ after round trip", trial)
		}

		// A perturbed re-solve follows the identical pivot path on both.
		q := p
		q.Objective = append([]float64(nil), p.Objective...)
		for i := range q.Objective {
			q.Objective[i] *= 1.1
		}
		if !orig.Refresh(q) || !restored.Refresh(q) {
			t.Fatalf("trial %d: refresh failed", trial)
		}
		stA, errA := orig.SolveCurrent()
		stB, errB := restored.SolveCurrent()
		if (errA == nil) != (errB == nil) || stA != stB {
			t.Fatalf("trial %d: statuses diverge: %v/%v vs %v/%v", trial, stA, errA, stB, errB)
		}
		if stA == Optimal {
			xa := orig.Values(nil)
			xb := restored.Values(nil)
			for i := range xa {
				if xa[i] != xb[i] {
					t.Fatalf("trial %d: x[%d] = %v vs %v (must be bit-identical)", trial, i, xa[i], xb[i])
				}
			}
			if orig.pivots != restored.pivots {
				t.Fatalf("trial %d: pivot counts diverge: %d vs %d", trial, orig.pivots, restored.pivots)
			}
		}
	}
}

// TestInstanceDecodeRejectsCorrupt checks that truncated or inconsistent
// snapshots fail loudly instead of producing a silently wrong solver.
func TestInstanceDecodeRejectsCorrupt(t *testing.T) {
	p := Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: LE, RHS: 4},
		},
	}
	inst, err := NewInstance(p)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := inst.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	if err := new(Instance).GobDecode(raw[:len(raw)/2]); err == nil {
		t.Error("truncated payload should fail to decode")
	}
	if err := new(Instance).GobDecode([]byte("not gob")); err == nil {
		t.Error("garbage payload should fail to decode")
	}
}

// randomProblem builds a small random feasible-ish LP (bounded variables,
// mixed senses) for round-trip trials.
func randomStateProblem(rng *rand.Rand) Problem {
	n := 3 + rng.IntN(5)
	m := 2 + rng.IntN(4)
	p := Problem{
		NumVars:   n,
		Objective: make([]float64, n),
		Upper:     make([]float64, n),
	}
	for j := 0; j < n; j++ {
		p.Objective[j] = rng.Float64()*4 - 2
		p.Upper[j] = 1 + rng.Float64()*9
	}
	for i := 0; i < m; i++ {
		c := Constraint{Coeffs: make([]float64, n), Sense: LE, RHS: 2 + rng.Float64()*10}
		if rng.IntN(3) == 0 {
			c.Sense = GE
			c.RHS = rng.Float64()
		}
		for j := 0; j < n; j++ {
			if rng.IntN(2) == 0 {
				c.Coeffs[j] = rng.Float64() * 3
			}
		}
		p.Constraints = append(p.Constraints, c)
	}
	return p
}
