package core

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"github.com/vbcloud/vb/internal/lp"
	"github.com/vbcloud/vb/internal/mip"
	"github.com/vbcloud/vb/internal/obs"
)

// Scheduler places applications onto the sites of one multi-VB group over a
// discretized planning timeline. It tracks capacity commitments so
// concurrent applications do not over-subscribe a site's predicted power.
type Scheduler struct {
	cfg      Config
	numSites int
	steps    int
	// committed[s][t] is the total cores promised on site s at step t.
	committed [][]float64
	// migCommitted[t] is the planned migration traffic (GB) already
	// scheduled fleet-wide at step t; the peak objective coordinates
	// across apps through it.
	migCommitted []float64
	// warm caches per-app solver state so a replan warm-starts from the
	// previous interval's optimal basis (the app's demand coefficients are
	// constant, so successive replans are structurally identical LPs).
	warm     map[int]*warmEntry
	warmTick int64
	// vecs holds the per-policy/per-app dimensional metrics; the zero value
	// (no registry) is inert.
	vecs schedVecs
	// pressure is the current solver-latency inflation factor (>= 1; 0 or
	// 1 means none). Under pressure the per-placement node budget derates
	// to MIPNodes/pressure, modeling a slow solver deterministically: the
	// truncation point depends only on the factor, never on wall clock or
	// worker count.
	pressure float64
}

// schedVecs bundles the scheduler's dimensional metrics with the policy
// label they share and a cache of app-ID label strings. With no registry
// every vec field is nil and recording no-ops, so instrumented paths need
// no extra branching beyond the existing reg != nil guards.
type schedVecs struct {
	policy     string
	apps       map[int]string
	solve      *obs.HistogramVec
	warmstart  *obs.CounterVec
	placements *obs.CounterVec
	fallback   *obs.CounterVec
}

func newSchedVecs(cfg Config) schedVecs {
	if cfg.Obs == nil {
		return schedVecs{}
	}
	return schedVecs{
		policy:     cfg.Policy.String(),
		apps:       map[int]string{},
		solve:      cfg.Obs.NewHistogramVec("mip.solve.by_app", nil, "policy", "app"),
		warmstart:  cfg.Obs.NewCounterVec("mip.warmstart.by_app", "policy", "app", "result"),
		placements: cfg.Obs.NewCounterVec("scheduler.placements.by_app", "policy", "app"),
		fallback:   cfg.Obs.NewCounterVec("scheduler.fallback.by_tier", "policy", "tier"),
	}
}

// app returns the cached label string for an app ID. The scheduler is
// single-goroutine (it mutates commitment ledgers), so the cache needs no
// lock; it keeps repeat placements from re-formatting the ID.
func (v *schedVecs) app(id int) string {
	s, ok := v.apps[id]
	if !ok {
		s = strconv.Itoa(id)
		v.apps[id] = s
	}
	return s
}

// warmEntry pairs an app's carried solver state with a last-use tick for
// deterministic least-recently-used eviction.
type warmEntry struct {
	ws   *mip.WarmState
	tick int64
}

// warmCap bounds the warm-state cache; each entry holds an m×m basis
// inverse, so the cache is worth bounding on long multi-app runs. Eviction
// is by smallest tick, which is deterministic (ticks are unique).
const warmCap = 32

// NewScheduler creates a scheduler for a group of numSites sites and a
// global timeline of steps plan steps.
func NewScheduler(cfg Config, numSites, steps int) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numSites <= 0 {
		return nil, fmt.Errorf("core: non-positive site count %d", numSites)
	}
	if steps <= 0 {
		return nil, fmt.Errorf("core: non-positive step count %d", steps)
	}
	s := &Scheduler{cfg: cfg, numSites: numSites, steps: steps, vecs: newSchedVecs(cfg)}
	s.committed = make([][]float64, numSites)
	for i := range s.committed {
		s.committed[i] = make([]float64, steps)
	}
	s.migCommitted = make([]float64, steps)
	return s, nil
}

// Committed returns the cores committed on site s at step t.
func (s *Scheduler) Committed(site, step int) float64 { return s.committed[site][step] }

// SetSolverPressure sets the solver-latency inflation factor for
// subsequent placements (a fault-injection input). Factors below 1 (or
// non-finite) reset to 1: no pressure. Under factor f each placement's
// branch-and-bound budget becomes max(1, MIPNodes/f), so a saturated
// solver degrades to the truncated-incumbent or rounded-LP tiers exactly
// the same way at any worker count.
func (s *Scheduler) SetSolverPressure(f float64) {
	if math.IsNaN(f) || f < 1 {
		f = 1
	}
	s.pressure = f
}

// recordFallback makes a degraded placement visible: the plain and
// per-tier fallback counters and a SchedulerFallback trace event.
func (s *Scheduler) recordFallback(app AppDemand, nowStep int, tier string) {
	reg := s.cfg.Obs
	if reg == nil {
		return
	}
	reg.Inc("scheduler.fallback.count")
	s.vecs.fallback.Inc(s.vecs.policy, tier)
	reg.Emit(obs.Event{Type: obs.SchedulerFallback, Step: nowStep, App: app.ID, Site: -1, Dst: -1,
		Cores: app.StableCores, Detail: tier})
}

// Commit adds a plan's allocations and planned migration traffic to the
// ledgers from step `from` onward.
func (s *Scheduler) Commit(p Plan, from int) {
	for site := range p.Alloc {
		for t := from; t < s.steps; t++ {
			s.committed[site][t] += p.Alloc[site][t]
		}
	}
	for t := from; t < s.steps; t++ {
		s.migCommitted[t] += p.MigrationGB(t)
	}
}

// Uncommit removes a plan's allocations and planned migration traffic from
// the ledgers from step `from` onward (used before re-planning).
func (s *Scheduler) Uncommit(p Plan, from int) {
	for site := range p.Alloc {
		for t := from; t < s.steps; t++ {
			s.committed[site][t] -= p.Alloc[site][t]
			if s.committed[site][t] < 0 && s.committed[site][t] > -1e-6 {
				s.committed[site][t] = 0
			}
		}
	}
	for t := from; t < s.steps; t++ {
		s.migCommitted[t] -= p.MigrationGB(t)
		if s.migCommitted[t] < 0 {
			s.migCommitted[t] = 0
		}
	}
}

// CapacityFn predicts the usable cores of a site at a global plan step, as
// seen at placement time (forecast-driven, already scaled by the utilization
// target).
type CapacityFn func(site, step int) float64

// Place computes an allocation plan for app starting at nowStep and ending
// at endStep (exclusive), given predicted capacities, the app's current
// allocation per site (nil at first placement), and commits it to the
// ledger. Initial placements (prev == nil) incur no migration cost at
// nowStep. prevPlan, when non-nil, is the app's previous plan (indexed
// [site][global step]); re-plans pay a small penalty for deviating from it,
// which keeps long-horizon structure stable across forecast refreshes.
// stableCap predicts the site's *stable* capacity level (e.g. a rolling
// minimum of the forecast); allocations above it are allowed but
// discouraged, steering placements towards sites with steady power without
// forcing phantom moves during genuine scarcity. A nil stableCap reuses
// predCap.
func (s *Scheduler) Place(app AppDemand, nowStep, endStep int, predCap, stableCap CapacityFn, prev []float64, prevPlan [][]float64) (Plan, error) {
	defer obs.Time(s.cfg.Obs, "scheduler.place")()
	s.cfg.Obs.Inc("scheduler.placements")
	if s.cfg.Obs != nil {
		s.vecs.placements.Inc(s.vecs.policy, s.vecs.app(app.ID))
	}
	if err := app.Validate(); err != nil {
		return Plan{}, err
	}
	if nowStep < 0 || nowStep >= s.steps || endStep <= nowStep {
		return Plan{}, fmt.Errorf("core: bad placement window [%d, %d) of %d", nowStep, endStep, s.steps)
	}
	if endStep > s.steps {
		endStep = s.steps
	}
	if prev != nil && len(prev) != s.numSites {
		return Plan{}, fmt.Errorf("core: prev has %d sites, want %d", len(prev), s.numSites)
	}

	// Only stable cores are scheduled and migrated: degradable VMs soak
	// whatever spare powered capacity exists at a site and pause in place
	// when power drops (the paper's harvest/spot semantics), so they never
	// generate migration traffic and never constrain placement.
	if app.StableCores <= 0 {
		plan := newPlan(app.ID, s.numSites, s.steps)
		plan.MemGBPerCore = app.MemGBPerCore
		return plan, nil
	}
	var plan Plan
	var err error
	if stableCap == nil {
		stableCap = predCap
	}
	if s.cfg.Policy == Greedy {
		plan, err = s.placeGreedy(app, nowStep, endStep, predCap)
	} else {
		plan, err = s.placeMIP(app, nowStep, endStep, predCap, stableCap, prev, prevPlan)
	}
	if err != nil {
		return Plan{}, err
	}
	s.Commit(plan, nowStep)
	return plan, nil
}

// placeGreedy implements the paper's baseline: all VMs go to the site with
// the most available capacity right now, with no lookahead.
func (s *Scheduler) placeGreedy(app AppDemand, nowStep, endStep int, predCap CapacityFn) (Plan, error) {
	best, bestFree := 0, math.Inf(-1)
	for site := 0; site < s.numSites; site++ {
		free := predCap(site, nowStep) - s.committed[site][nowStep]
		if free > bestFree {
			best, bestFree = site, free
		}
	}
	plan := newPlan(app.ID, s.numSites, s.steps)
	plan.MemGBPerCore = app.MemGBPerCore
	for t := nowStep; t < endStep; t++ {
		plan.Alloc[best][t] = app.StableCores
	}
	return plan, nil
}

// placeMIP builds and solves the paper's site-selection MIP (§3.1).
//
// Variables, per horizon step tau in [0, H) and site sel:
//
//	a[s,tau]  cores of this app on site s         (continuous)
//	m[s,tau]  cores newly moved onto s at tau      (continuous)
//	u[tau]    unplaced cores (shortfall, penalized) (continuous)
//	y[s]      site s used by this app               (binary)
//	P         peak per-step migration GB            (continuous, O2)
//
// Constraints: demand per step, predicted capacity per site-step, linking
// a <= D*y, at most MaxSitesPerApp sites, migration definition
// m >= a_tau - a_{tau-1}, and P >= step traffic. Objective O1 is total
// migration GB; O2 adds peakWeight * P; shortfall carries a large penalty so
// capacity gaps surface as explicit shortfall instead of infeasibility.
func (s *Scheduler) placeMIP(app AppDemand, nowStep, endStep int, predCap, stableCap CapacityFn, prev []float64, prevPlan [][]float64) (Plan, error) {
	horizon := endStep - nowStep
	if s.cfg.Policy == MIP24h || s.cfg.Horizon > 0 {
		h := s.cfg.Horizon
		if s.cfg.Policy == MIP24h {
			h = 24 * time.Hour
		}
		hs := int(h / s.cfg.PlanStep)
		if hs < 1 {
			hs = 1
		}
		if hs < horizon {
			horizon = hs
		}
	}
	k := s.numSites
	H := horizon

	// Variable layout.
	nA := k * H
	nM := k * H
	nO := k * H
	nU := H
	nD := 0
	if prevPlan != nil {
		nD = k * H
	}
	nE := 0
	if s.cfg.peakWeight() > 0 {
		nE = H
	}
	aVar := func(site, tau int) int { return site*H + tau }
	mVar := func(site, tau int) int { return nA + site*H + tau }
	oVar := func(site, tau int) int { return nA + nM + site*H + tau }
	uVar := func(tau int) int { return nA + nM + nO + tau }
	dVar := func(site, tau int) int { return nA + nM + nO + nU + site*H + tau }
	yVar := func(site int) int { return nA + nM + nO + nU + nD + site }
	pVar := nA + nM + nO + nU + nD + k
	eVar := func(tau int) int { return pVar + 1 + tau }
	numVars := pVar + 1 + nE

	obj := make([]float64, numVars)
	memGB := app.MemGBPerCore
	// O1: total migration volume. Later moves are discounted slightly so
	// that when the optimum is indifferent about *when* to move (the cost
	// of a move is the same at any step before a predicted dip), the plan
	// procrastinates: by the time the move is due, forecasts have
	// sharpened and false alarms have evaporated. Without this tie-break
	// the simplex picks arbitrary early moves that the next re-plan
	// reverses, churning traffic.
	const delayDiscount = 0.5
	for site := 0; site < k; site++ {
		for tau := 0; tau < H; tau++ {
			w := 1 + delayDiscount*float64(H-1-tau)/float64(H)
			obj[mVar(site, tau)] = memGB * w
		}
	}
	// Instability preference: placing above the predicted *stable* level
	// is allowed but mildly discouraged per step, steering apps onto sites
	// whose power is predicted to hold ("place VMs on sites which are
	// predicted to have stable power in the future") without forcing moves
	// whenever a forecast wiggles.
	const overWeight = 0.15
	for site := 0; site < k; site++ {
		for tau := 0; tau < H; tau++ {
			obj[oVar(site, tau)] = overWeight * memGB
		}
	}
	// Shortfall penalty: far larger than any plausible migration cost,
	// scaled by the demand's SLO-class pause weight so a RealTime-heavy
	// app's unplaced cores cost more than a Batch app's. Legacy demands
	// weigh exactly 1, leaving the objective bit-identical.
	shortfallPenalty := 1000 * memGB * float64(H) * app.PauseWeight()
	for tau := 0; tau < H; tau++ {
		obj[uVar(tau)] = shortfallPenalty
	}
	// O2: peak traffic (P is in GB).
	obj[pVar] = s.cfg.peakWeight()
	// O2 smoothing: e[tau] >= (step traffic) - (horizon mean traffic)
	// carries a small per-GB cost, so among plans with equal total cost and
	// equal peak the optimum spreads moves over time instead of bunching
	// them — the paper's "spreading out migrations over time and reducing
	// burstiness" is an explicit preference, not an accident of which
	// alternate optimal vertex the simplex happens to return. The weight
	// must beat the delayDiscount slope (≈ memGB·0.5/H per step) over
	// horizon-scale distances so spreading a move across the window is
	// worth it, yet stay below a real move's cost (1 per GB): adding a
	// move raises the horizon mean by Δ/H and can recoup at most ~Δ/2 of
	// excess, so smoothing can never justify extra migration volume.
	const smoothWeight = 0.2
	for tau := 0; tau < nE; tau++ {
		obj[eVar(tau)] = smoothWeight
	}
	// Plan-stability penalty: deviating from the previous plan costs a
	// fraction of a real move, so re-plans only restructure when the
	// predicted savings are material.
	const devWeight = 0.05
	if prevPlan != nil {
		for site := 0; site < k; site++ {
			for tau := 0; tau < H; tau++ {
				obj[dVar(site, tau)] = devWeight * memGB
			}
		}
	}

	var cons []lp.Constraint
	row := func(pairs map[int]float64, sense lp.Sense, rhs float64) {
		coeffs := make([]float64, numVars)
		for j, v := range pairs {
			coeffs[j] = v
		}
		cons = append(cons, lp.Constraint{Coeffs: coeffs, Sense: sense, RHS: rhs})
	}
	// Singleton rows (hard capacity, binary bounds) become native variable
	// bounds: the LP shrinks and branching on y tightens a bound in place.
	// Lower bounds stay at the default zero.
	upper := make([]float64, numVars)
	for j := range upper {
		upper[j] = math.Inf(1)
	}

	demand := app.StableCores
	// Hard feasibility applies only within the execution window (the next
	// day, where forecasts are sharp and the plan actually runs before the
	// next refresh). Beyond it, predicted capacity acts as a soft
	// preference: a far-out predicted dip steers placement but cannot
	// force a phantom move that the next forecast refresh would cancel.
	hardSteps := int(24 * time.Hour / s.cfg.PlanStep)
	if hardSteps < 1 {
		hardSteps = 1
	}
	for tau := 0; tau < H; tau++ {
		// Demand: sum_s a + u = D (stable cores only).
		pairs := map[int]float64{uVar(tau): 1}
		for site := 0; site < k; site++ {
			pairs[aVar(site, tau)] = 1
		}
		row(pairs, lp.EQ, demand)
	}
	for site := 0; site < k; site++ {
		for tau := 0; tau < H; tau++ {
			free := predCap(site, nowStep+tau) - s.committed[site][nowStep+tau]
			if free < 0 {
				free = 0
			}
			freeStable := stableCap(site, nowStep+tau) - s.committed[site][nowStep+tau]
			if freeStable < 0 {
				freeStable = 0
			}
			if tau < hardSteps {
				// Hard capacity at the plain forecast.
				upper[aVar(site, tau)] = free
			}
			// Soft preference: a - o <= stable level.
			row(map[int]float64{aVar(site, tau): 1, oVar(site, tau): -1}, lp.LE, freeStable)
			// Linking: a <= D * y.
			row(map[int]float64{aVar(site, tau): 1, yVar(site): -demand}, lp.LE, 0)
			// Migration definition: m >= a_tau - a_{tau-1}.
			if tau == 0 {
				if prev != nil {
					row(map[int]float64{mVar(site, 0): 1, aVar(site, 0): -1}, lp.GE, -prev[site])
				}
				// First placement: tau 0 moves are free (no constraint ties
				// m down; m = 0 at optimum since it only costs).
			} else {
				row(map[int]float64{mVar(site, tau): 1, aVar(site, tau): -1, aVar(site, tau-1): 1}, lp.GE, 0)
			}
		}
		// Binary bound.
		upper[yVar(site)] = 1
		// Deviation from the previous plan: d >= |a - prevPlan|.
		if prevPlan != nil {
			for tau := 0; tau < H; tau++ {
				old := prevPlan[site][nowStep+tau]
				row(map[int]float64{dVar(site, tau): 1, aVar(site, tau): -1}, lp.GE, -old)
				row(map[int]float64{dVar(site, tau): 1, aVar(site, tau): 1}, lp.GE, old)
			}
		}
	}
	// Site count bound.
	pairs := map[int]float64{}
	for site := 0; site < k; site++ {
		pairs[yVar(site)] = 1
	}
	row(pairs, lp.LE, float64(s.cfg.maxSites()))
	// Peak: this app's step traffic stacked on the fleet-wide planned
	// traffic must fit under P. Coordinating through the migration ledger
	// is what spreads the *aggregate* migration load over time ("MIP-peak
	// migrates VMs preemptively, spreading out migrations over time and
	// reducing burstiness").
	if s.cfg.peakWeight() > 0 {
		meanCommitted := 0.0
		for tau := 0; tau < H; tau++ {
			meanCommitted += s.migCommitted[nowStep+tau]
		}
		meanCommitted /= float64(H)
		for tau := 0; tau < H; tau++ {
			pp := map[int]float64{pVar: -1}
			for site := 0; site < k; site++ {
				pp[mVar(site, tau)] = memGB
			}
			row(pp, lp.LE, -s.migCommitted[nowStep+tau])
			// Smoothing excess: step traffic minus the horizon-mean traffic
			// (both including the fleet-wide committed ledger) must fit
			// under e[tau]:
			//   sum_s mem*m[s,tau] - (1/H) sum_{s,t'} mem*m[s,t'] - e[tau]
			//     <= mean(committed) - committed[tau].
			sm := map[int]float64{eVar(tau): -1}
			for site := 0; site < k; site++ {
				for t2 := 0; t2 < H; t2++ {
					sm[mVar(site, t2)] = -memGB / float64(H)
				}
				sm[mVar(site, tau)] += memGB
			}
			row(sm, lp.LE, meanCommitted-s.migCommitted[nowStep+tau])
		}
	}

	integer := make([]bool, numVars)
	for site := 0; site < k; site++ {
		integer[yVar(site)] = true
	}

	// Solver pressure (a latency fault) derates the node budget instead of
	// racing a wall clock: the truncation point is then a pure function of
	// the script, keeping decision logs bit-identical at any worker count.
	maxNodes := s.cfg.mipNodes()
	if s.pressure > 1 {
		maxNodes = int(float64(maxNodes) / s.pressure)
		if maxNodes < 1 {
			maxNodes = 1
		}
	}
	prob := mip.Problem{
		Problem: lp.Problem{NumVars: numVars, Objective: obj, Constraints: cons, Upper: upper},
		Integer: integer,
	}

	reg := s.cfg.Obs
	var solveStart time.Time
	if reg != nil {
		solveStart = time.Now()
		reg.Emit(obs.Event{Type: obs.MIPSolveStart, Step: nowStep, App: app.ID, Site: -1, Dst: -1, Cores: demand})
	}
	ws := s.warmState(app.ID)
	sol, err := mip.Solve(prob, mip.Options{MaxNodes: maxNodes, Warm: ws, Reference: s.cfg.SolverReference,
		Workers: s.cfg.SolverWorkers, Deadline: s.cfg.SolveDeadline})
	warmth := "cold"
	if ws != nil && sol.WarmHit {
		warmth = "warm"
	}
	if reg != nil {
		d := time.Since(solveStart)
		reg.ObserveDuration("mip.solve", d)
		reg.Add("mip.nodes", float64(sol.Nodes))
		reg.Add("lp.pivots", float64(sol.Pivots))
		reg.Add("lp.refactor.count", float64(sol.Refactors))
		reg.Observe("lp.eta.chain_len", float64(sol.EtaChainLen))
		if s.cfg.SolverWorkers >= 1 {
			reg.Add("mip.nodes.parallel", float64(sol.Nodes))
		}
		if ws != nil {
			if sol.WarmHit {
				reg.Inc("mip.warmstart.hits")
			} else {
				reg.Inc("mip.warmstart.misses")
			}
		}
		appLabel := s.vecs.app(app.ID)
		s.vecs.solve.Observe(d.Seconds(), s.vecs.policy, appLabel)
		s.vecs.warmstart.Inc(s.vecs.policy, appLabel, warmth)
		if err == nil && sol.Status == lp.Optimal {
			reg.Emit(obs.Event{Type: obs.MIPSolveFinish, Step: nowStep, App: app.ID, Site: -1, Dst: -1,
				Cores: demand, DurNS: d.Nanoseconds(), Objective: sol.Objective, Detail: warmth,
				Pivots: sol.Pivots, Refactors: sol.Refactors, EtaLen: sol.EtaChainLen})
		} else {
			reg.Inc("mip.failures")
		}
		// A deadline expiry, or a pressure-derated budget truncating the
		// search, counts as a deadline event whether or not an incumbent
		// survived to serve the placement.
		if sol.DeadlineExceeded || (err == nil && s.pressure > 1 && !sol.Proven) {
			reg.Inc("solver.deadline_exceeded")
		}
	}
	// Graceful-degradation ladder. Tier 0 is the full (or truncated-with-
	// incumbent) branch-and-bound solution above. When that produced no
	// usable plan — deadline with no incumbent, node budget exhausted
	// before the first integer point, or a numerical dead end — tier 1
	// rounds and repairs the LP relaxation, and tier 2 falls back to the
	// greedy baseline, which cannot fail. Solver trouble therefore never
	// surfaces as a placement error: it degrades, and the degradation is
	// recorded (scheduler.fallback.count, SchedulerFallback events).
	if err != nil || sol.Status != lp.Optimal {
		rsol, rerr := mip.SolveRelaxationRounded(prob, mip.Options{Reference: s.cfg.SolverReference})
		if rerr == nil && rsol.Status == lp.Optimal {
			s.recordFallback(app, nowStep, "rounded-lp")
			if reg != nil {
				d := time.Since(solveStart)
				reg.Emit(obs.Event{Type: obs.MIPSolveFinish, Step: nowStep, App: app.ID, Site: -1, Dst: -1,
					Cores: demand, DurNS: d.Nanoseconds(), Objective: rsol.Objective,
					Detail: warmth + ",fallback=rounded-lp",
					Pivots: rsol.Pivots, Refactors: rsol.Refactors, EtaLen: rsol.EtaChainLen})
			}
			sol = rsol
		} else {
			s.recordFallback(app, nowStep, "greedy")
			if reg != nil {
				d := time.Since(solveStart)
				reg.Emit(obs.Event{Type: obs.MIPSolveFinish, Step: nowStep, App: app.ID, Site: -1, Dst: -1,
					Cores: demand, DurNS: d.Nanoseconds(), Detail: warmth + ",fallback=greedy"})
			}
			return s.placeGreedy(app, nowStep, endStep, predCap)
		}
	}

	plan := newPlan(app.ID, s.numSites, s.steps)
	plan.MemGBPerCore = app.MemGBPerCore
	for site := 0; site < k; site++ {
		for t := nowStep; t < endStep; t++ {
			tau := t - nowStep
			if tau >= H {
				tau = H - 1 // hold the last planned allocation
			}
			plan.Alloc[site][t] = sol.X[aVar(site, tau)]
		}
	}
	return plan, nil
}

// warmState returns (creating if needed) the app's carried solver state,
// or nil when the legacy reference stack is selected. The cache is bounded
// by warmCap with deterministic least-recently-used eviction.
func (s *Scheduler) warmState(appID int) *mip.WarmState {
	if s.cfg.SolverReference {
		return nil
	}
	if s.warm == nil {
		s.warm = make(map[int]*warmEntry)
	}
	e := s.warm[appID]
	if e == nil {
		if len(s.warm) >= warmCap {
			victim, oldest := 0, int64(math.MaxInt64)
			for id, we := range s.warm {
				if we.tick < oldest {
					victim, oldest = id, we.tick
				}
			}
			delete(s.warm, victim)
		}
		e = &warmEntry{ws: &mip.WarmState{}}
		s.warm[appID] = e
	}
	s.warmTick++
	e.tick = s.warmTick
	return e.ws
}

func newPlan(appID, numSites, steps int) Plan {
	p := Plan{AppID: appID, Alloc: make([][]float64, numSites)}
	for i := range p.Alloc {
		p.Alloc[i] = make([]float64, steps)
	}
	return p
}
