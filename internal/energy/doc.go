// Package energy provides generative models of renewable power production,
// standing in for the ELIA (Belgium, 15-minute) and EMHIRES (Europe-wide)
// datasets used by the Virtual Battery paper (HotNets '21, §2.2–§2.3).
//
// Two source models are provided:
//
//   - Solar: a latitude- and season-aware clear-sky envelope modulated by a
//     Markov-regime cloud process (sunny / variable / overcast days), which
//     reproduces the diurnal pattern, overcast collapses, and spiky variable
//     days of the paper's Figure 2a, plus the >50% zero samples and heavy
//     tail of Figure 2b.
//
//   - Wind: an Ornstein–Uhlenbeck wind-speed process (a fast turbulent
//     component riding on a slow synoptic component) passed through a
//     standard turbine power curve, yielding sharp peaks and valleys that
//     rarely reach zero, with a low median — the paper's wind signature.
//
// Sites are instantiated inside a World, which supplies regional weather
// drivers so that nearby same-source sites correlate while distant sites and
// different sources decorrelate — the property §2.3 exploits to reduce
// aggregate variability ("multi-VB").
//
// All randomness is deterministic given the World seed.
package energy
