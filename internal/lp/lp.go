// Package lp implements a dense two-phase primal simplex solver for linear
// programs. It is the optimization substrate under internal/mip and, through
// it, the paper's MIP scheduling policies (§3.1) — Go has no native
// optimization stack, so we build one.
//
// Problems are stated over variables x >= 0 with linear constraints of any
// sense. The solver uses Bland's rule, so it terminates on all inputs
// (no cycling), at the cost of some speed — fine for the scheduler's
// problem sizes (tens to a few hundred variables).
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the direction of a linear constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // a·x <= b
	GE              // a·x >= b
	EQ              // a·x == b
)

// String implements fmt.Stringer.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "=="
	}
}

// Constraint is one linear constraint a·x (sense) b. Coeffs shorter than the
// variable count are implicitly zero-padded.
type Constraint struct {
	Coeffs []float64
	Sense  Sense
	RHS    float64
}

// Problem is a linear program over n nonnegative variables.
type Problem struct {
	// NumVars is the variable count n.
	NumVars int
	// Objective holds the cost coefficients c (len <= n, zero padded).
	Objective []float64
	// Maximize flips the sense of optimization (default: minimize).
	Maximize bool
	// Constraints are the rows.
	Constraints []Constraint
}

// Status reports how solving ended.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	default:
		return "unbounded"
	}
}

// Solution is the result of Solve.
type Solution struct {
	Status Status
	// X is the optimal assignment (len NumVars), valid when Status ==
	// Optimal.
	X []float64
	// Objective is the optimal objective value in the problem's own sense.
	Objective float64
}

// ErrBadProblem reports a malformed problem.
var ErrBadProblem = errors.New("lp: malformed problem")

const eps = 1e-9

// Validate reports structural problems.
func (p Problem) Validate() error {
	if p.NumVars <= 0 {
		return fmt.Errorf("%w: NumVars = %d", ErrBadProblem, p.NumVars)
	}
	if len(p.Objective) > p.NumVars {
		return fmt.Errorf("%w: objective has %d coeffs for %d vars", ErrBadProblem, len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) > p.NumVars {
			return fmt.Errorf("%w: constraint %d has %d coeffs for %d vars", ErrBadProblem, i, len(c.Coeffs), p.NumVars)
		}
		if c.Sense != LE && c.Sense != GE && c.Sense != EQ {
			return fmt.Errorf("%w: constraint %d has unknown sense %d", ErrBadProblem, i, int(c.Sense))
		}
		for _, v := range c.Coeffs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: constraint %d has non-finite coefficient", ErrBadProblem, i)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("%w: constraint %d has non-finite RHS", ErrBadProblem, i)
		}
	}
	for _, v := range p.Objective {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite objective coefficient", ErrBadProblem)
		}
	}
	return nil
}

// tableau is the dense simplex tableau: rows of coefficients over structural
// + slack + artificial columns, an RHS column, and a basis map.
type tableau struct {
	m, n    int // constraint rows, total columns (excluding RHS)
	nStruct int // structural variable count
	nArt    int // artificial variable count (last nArt columns)
	a       [][]float64
	rhs     []float64
	basis   []int // basis[i] = column basic in row i
}

// Solve solves the linear program.
func Solve(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	t := build(p)

	// Phase 1: drive artificials to zero.
	if t.nArt > 0 {
		obj := make([]float64, t.n)
		for j := t.n - t.nArt; j < t.n; j++ {
			obj[j] = 1
		}
		val, err := t.run(obj)
		if err != nil {
			return Solution{}, err
		}
		if val > 1e-7 {
			return Solution{Status: Infeasible}, nil
		}
		t.evictArtificials()
	}

	// Phase 2: original objective (as minimization).
	obj := make([]float64, t.n)
	for j, c := range p.Objective {
		if p.Maximize {
			obj[j] = -c
		} else {
			obj[j] = c
		}
	}
	// Forbid artificials from re-entering.
	for j := t.n - t.nArt; j < t.n; j++ {
		obj[j] = 0
	}
	t.blockArtificials()
	val, err := t.run(obj)
	if err != nil {
		if errors.Is(err, errUnbounded) {
			return Solution{Status: Unbounded}, nil
		}
		return Solution{}, err
	}

	x := make([]float64, p.NumVars)
	for i, b := range t.basis {
		if b < t.nStruct {
			x[b] = t.rhs[i]
		}
	}
	if p.Maximize {
		val = -val
	}
	return Solution{Status: Optimal, X: x, Objective: val}, nil
}

// build constructs the initial tableau with slack and artificial columns and
// a feasible starting basis.
func build(p Problem) *tableau {
	m := len(p.Constraints)
	// Count slack and artificial columns.
	nSlack, nArt := 0, 0
	for _, c := range p.Constraints {
		rhs := c.RHS
		sense := c.Sense
		if rhs < 0 {
			sense = flip(sense)
		}
		switch sense {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	n := p.NumVars + nSlack + nArt
	t := &tableau{
		m:       m,
		n:       n,
		nStruct: p.NumVars,
		nArt:    nArt,
		a:       make([][]float64, m),
		rhs:     make([]float64, m),
		basis:   make([]int, m),
	}
	slackCol := p.NumVars
	artCol := p.NumVars + nSlack
	for i, c := range p.Constraints {
		row := make([]float64, n)
		sign := 1.0
		sense := c.Sense
		rhs := c.RHS
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			sense = flip(sense)
		}
		for j, v := range c.Coeffs {
			row[j] = sign * v
		}
		t.rhs[i] = rhs
		switch sense {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.a[i] = row
	}
	return t
}

func flip(s Sense) Sense {
	switch s {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

var errUnbounded = errors.New("lp: unbounded")

// run minimizes obj·x over the current tableau using Bland's rule, returning
// the optimal value. The tableau is left at the optimal basis.
func (t *tableau) run(obj []float64) (float64, error) {
	// Reduced costs: z[j] = obj[j] - cb·B^-1·A_j. Maintain the objective
	// row explicitly, starting from obj and pricing out the basic columns.
	z := make([]float64, t.n)
	copy(z, obj)
	val := 0.0
	for i, b := range t.basis {
		if obj[b] != 0 {
			cb := obj[b]
			for j := 0; j < t.n; j++ {
				z[j] -= cb * t.a[i][j]
			}
			val += cb * t.rhs[i]
		}
	}

	maxIter := 10000 * (t.m + t.n + 1)
	for iter := 0; iter < maxIter; iter++ {
		// Bland: entering = lowest-index column with negative reduced cost.
		enter := -1
		for j := 0; j < t.n; j++ {
			if z[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return val, nil // optimal
		}
		// Ratio test; Bland ties by lowest basis variable index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter] > eps {
				r := t.rhs[i] / t.a[i][enter]
				if r < best-eps || (r < best+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					best = r
					leave = i
				}
			}
		}
		if leave < 0 {
			return 0, errUnbounded
		}
		t.pivot(leave, enter, z, &val)
	}
	return 0, fmt.Errorf("lp: iteration limit exceeded (m=%d n=%d)", t.m, t.n)
}

// pivot performs a pivot on (row, col), updating the objective row z and
// objective value.
func (t *tableau) pivot(row, col int, z []float64, val *float64) {
	piv := t.a[row][col]
	inv := 1 / piv
	for j := 0; j < t.n; j++ {
		t.a[row][j] *= inv
	}
	t.rhs[row] *= inv
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.a[i][j] -= f * t.a[row][j]
		}
		t.rhs[i] -= f * t.rhs[row]
		if t.rhs[i] < 0 && t.rhs[i] > -eps {
			t.rhs[i] = 0
		}
	}
	f := z[col]
	if f != 0 {
		for j := 0; j < t.n; j++ {
			z[j] -= f * t.a[row][j]
		}
		*val += f * t.rhs[row]
	}
	t.basis[row] = col
}

// evictArtificials pivots any artificial variable that remains basic (at
// zero level after a successful phase 1) out of the basis where possible.
func (t *tableau) evictArtificials() {
	artStart := t.n - t.nArt
	for i := 0; i < t.m; i++ {
		if t.basis[i] < artStart {
			continue
		}
		// Find a non-artificial column with a nonzero entry to pivot in.
		for j := 0; j < artStart; j++ {
			if math.Abs(t.a[i][j]) > eps {
				dummy := make([]float64, t.n)
				var v float64
				t.pivot(i, j, dummy, &v)
				break
			}
		}
		// If none exists the row is redundant (all zeros); leave it.
	}
}

// blockArtificials zeroes artificial columns so they can never re-enter.
func (t *tableau) blockArtificials() {
	artStart := t.n - t.nArt
	for i := 0; i < t.m; i++ {
		for j := artStart; j < t.n; j++ {
			if t.basis[i] != j {
				t.a[i][j] = 0
			}
		}
	}
}
