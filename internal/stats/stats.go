// Package stats provides the descriptive statistics used across the Virtual
// Battery evaluation: percentiles, empirical CDFs, coefficient of variation,
// forecast error metrics, and summary tables.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by operations that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than one
// sample.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CoV returns the coefficient of variation (standard deviation divided by
// mean). It returns +Inf when the mean is zero but the deviation is not, and
// 0 when both are zero. The paper uses cov as its variability metric (§2.3).
func CoV(xs []float64) float64 {
	m := Mean(xs)
	sd := StdDev(xs)
	if m == 0 {
		if sd == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return sd / math.Abs(m)
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between order statistics. It returns ErrEmpty for empty
// input and an error for p outside [0, 100].
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

// percentileSorted computes a percentile assuming xs is sorted ascending and
// non-empty.
func percentileSorted(xs []float64, p float64) float64 {
	if len(xs) == 1 {
		return xs[0]
	}
	rank := p / 100 * float64(len(xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return xs[lo]
	}
	frac := rank - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// Quantiles returns the given percentiles of xs in one sorting pass.
func Quantiles(xs []float64, ps ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 || p > 100 {
			return nil, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
		}
		out[i] = percentileSorted(sorted, p)
	}
	return out, nil
}

// Summary holds the descriptive statistics reported in the paper's Table 1.
type Summary struct {
	N     int     // number of samples
	Total float64 // sum
	Mean  float64
	Std   float64 // population standard deviation
	Min   float64
	P50   float64
	P90   float64
	P99   float64
	Max   float64 // the paper's "Peak"
}

// Summarize computes a Summary of xs. It returns ErrEmpty for empty input.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var total float64
	for _, x := range sorted {
		total += x
	}
	return Summary{
		N:     len(sorted),
		Total: total,
		Mean:  total / float64(len(sorted)),
		Std:   StdDev(sorted),
		Min:   sorted[0],
		P50:   percentileSorted(sorted, 50),
		P90:   percentileSorted(sorted, 90),
		P99:   percentileSorted(sorted, 99),
		Max:   sorted[len(sorted)-1],
	}, nil
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d total=%.4g mean=%.4g std=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g",
		s.N, s.Total, s.Mean, s.Std, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	xs []float64 // sorted ascending
}

// NewCDF builds an empirical CDF from samples. It returns ErrEmpty for empty
// input.
func NewCDF(samples []float64) (*CDF, error) {
	if len(samples) == 0 {
		return nil, ErrEmpty
	}
	xs := append([]float64(nil), samples...)
	sort.Float64s(xs)
	return &CDF{xs: xs}, nil
}

// N returns the number of underlying samples.
func (c *CDF) N() int { return len(c.xs) }

// P returns the empirical probability P(X <= x).
func (c *CDF) P(x float64) float64 {
	// Index of first element > x.
	i := sort.Search(len(c.xs), func(i int) bool { return c.xs[i] > x })
	return float64(i) / float64(len(c.xs))
}

// Quantile returns the q-th quantile for q in [0, 1], clamping q outside the
// range.
func (c *CDF) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return percentileSorted(c.xs, q*100)
}

// Points returns up to n (x, P(X<=x)) pairs evenly spaced across the sample
// range, suitable for plotting. n < 2 is treated as 2.
func (c *CDF) Points(n int) []Point {
	if n < 2 {
		n = 2
	}
	out := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		x := c.Quantile(q)
		out = append(out, Point{X: x, Y: c.P(x)})
	}
	return out
}

// Point is a single (x, y) plot coordinate.
type Point struct{ X, Y float64 }

// MAPE returns the mean absolute percentage error between forecast and
// actual, computed over samples where |actual| > floor. This matches how the
// ELIA forecast errors are reported (§3.1): samples at or near zero actual
// production (e.g., solar at night) are excluded, since a percentage error is
// undefined there. It returns ErrEmpty if no sample passes the floor.
func MAPE(forecast, actual []float64, floor float64) (float64, error) {
	if len(forecast) != len(actual) {
		return 0, fmt.Errorf("stats: MAPE length mismatch %d vs %d", len(forecast), len(actual))
	}
	var sum float64
	n := 0
	for i := range actual {
		if math.Abs(actual[i]) <= floor {
			continue
		}
		sum += math.Abs(forecast[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return 0, ErrEmpty
	}
	return sum / float64(n) * 100, nil
}

// MAE returns the mean absolute error between forecast and actual.
func MAE(forecast, actual []float64) (float64, error) {
	if len(forecast) != len(actual) {
		return 0, fmt.Errorf("stats: MAE length mismatch %d vs %d", len(forecast), len(actual))
	}
	if len(actual) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for i := range actual {
		sum += math.Abs(forecast[i] - actual[i])
	}
	return sum / float64(len(actual)), nil
}

// Pearson returns the Pearson correlation coefficient of xs and ys. It
// returns 0 when either input has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: correlation length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Histogram bins xs into n equal-width buckets over [min, max] and returns
// the bucket counts. Values exactly at max land in the last bucket.
func Histogram(xs []float64, min, max float64, n int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bucket count, got %d", n)
	}
	if max <= min {
		return nil, fmt.Errorf("stats: histogram range [%v, %v] is empty", min, max)
	}
	counts := make([]int, n)
	width := (max - min) / float64(n)
	for _, x := range xs {
		if x < min || x > max {
			continue
		}
		i := int((x - min) / width)
		if i >= n {
			i = n - 1
		}
		counts[i]++
	}
	return counts, nil
}

// Ratio returns a/b, or +Inf when b is zero and a is not, or 1 when both are
// zero. Used for the paper's p99/p75 and p99/p50 spread ratios.
func Ratio(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return a / b
}

// KolmogorovSmirnov returns the two-sample KS statistic: the maximum
// absolute difference between the empirical CDFs of xs and ys. Used to
// check distributional stability of the synthetic energy models across
// seeds and seasons.
func KolmogorovSmirnov(xs, ys []float64) (float64, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return 0, ErrEmpty
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var d float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		var v float64
		if a[i] <= b[j] {
			v = a[i]
			for i < len(a) && a[i] <= v {
				i++
			}
		} else {
			v = b[j]
		}
		for j < len(b) && b[j] <= v {
			j++
		}
		fa := float64(i) / float64(len(a))
		fb := float64(j) / float64(len(b))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d, nil
}
