package obs

// Dimensional metrics: CounterVec, GaugeVec and HistogramVec carry an
// ordered label-name set fixed at creation (e.g. policy, site, app, class)
// and one time series per label-value tuple, so per-site / per-app / per-
// class breakdowns come out of the registry instead of being re-derived by
// every experiment.
//
// Design notes, mirroring the flat Registry metrics:
//
//   - nil-safe: every method on a nil vec is a no-op (and allocates
//     nothing), so instrumented code never branches on whether
//     observability is enabled;
//   - lock-striped: a vec shards its series over vecStripes independently
//     locked maps keyed by an FNV-1a hash of the series key, so concurrent
//     writers on different label tuples rarely contend;
//   - label encoding: a series key is the label values joined with the
//     ASCII unit separator 0x1f, which cannot appear in the site indices,
//     app IDs, policy names and class names used as values. Snapshots
//     split the key back into the value tuple.

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// vecStripes is the lock-stripe count of each vec. Sixteen stripes keep the
// per-stripe maps small and let up to sixteen writers with distinct label
// tuples proceed without contention.
const vecStripes = 16

// vecSep joins label values into a series key (ASCII unit separator).
const vecSep = "\x1f"

// vecKey encodes a label-value tuple as a series key.
func vecKey(values []string) string {
	if len(values) == 1 {
		return values[0]
	}
	return strings.Join(values, vecSep)
}

// splitVecKey decodes a series key back into its label-value tuple.
func splitVecKey(key string, n int) []string {
	if n <= 1 {
		return []string{key}
	}
	return strings.SplitN(key, vecSep, n)
}

// stripeOf hashes a series key to a stripe index (FNV-1a).
func stripeOf(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % vecStripes)
}

// valueStripe is one lock-striped shard of scalar series.
type valueStripe struct {
	mu   sync.Mutex
	vals map[string]float64
}

func (s *valueStripe) add(key string, delta float64) {
	s.mu.Lock()
	if s.vals == nil {
		s.vals = make(map[string]float64)
	}
	s.vals[key] += delta
	s.mu.Unlock()
}

func (s *valueStripe) set(key string, v float64) {
	s.mu.Lock()
	if s.vals == nil {
		s.vals = make(map[string]float64)
	}
	s.vals[key] = v
	s.mu.Unlock()
}

func (s *valueStripe) get(key string) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vals[key]
	return v, ok
}

// CounterVec is a monotonically accumulating metric with one value per
// label tuple. All methods are safe for concurrent use and safe on a nil
// receiver.
type CounterVec struct {
	name    string
	labels  []string
	stripes [vecStripes]valueStripe
}

// Name returns the vec's metric name ("" for nil).
func (v *CounterVec) Name() string {
	if v == nil {
		return ""
	}
	return v.name
}

// LabelNames returns the ordered label names (nil for a nil vec).
func (v *CounterVec) LabelNames() []string {
	if v == nil {
		return nil
	}
	return append([]string(nil), v.labels...)
}

// Add adds delta to the series of the given label values. Calls with the
// wrong number of label values are dropped.
func (v *CounterVec) Add(delta float64, labelValues ...string) {
	if v == nil || len(labelValues) != len(v.labels) {
		return
	}
	k := vecKey(labelValues)
	v.stripes[stripeOf(k)].add(k, delta)
}

// Inc increments the series of the given label values by one.
func (v *CounterVec) Inc(labelValues ...string) { v.Add(1, labelValues...) }

// Value returns the series value (0 when absent or nil).
func (v *CounterVec) Value(labelValues ...string) float64 {
	if v == nil || len(labelValues) != len(v.labels) {
		return 0
	}
	k := vecKey(labelValues)
	val, _ := v.stripes[stripeOf(k)].get(k)
	return val
}

// Snapshot returns every series, sorted by label values for determinism.
func (v *CounterVec) Snapshot() VecSnapshot {
	if v == nil {
		return VecSnapshot{}
	}
	return VecSnapshot{LabelNames: v.LabelNames(), Values: snapshotValues(&v.stripes, len(v.labels))}
}

// GaugeVec is a last-value metric with one value per label tuple. All
// methods are safe for concurrent use and safe on a nil receiver.
type GaugeVec struct {
	name    string
	labels  []string
	stripes [vecStripes]valueStripe
}

// Name returns the vec's metric name ("" for nil).
func (v *GaugeVec) Name() string {
	if v == nil {
		return ""
	}
	return v.name
}

// LabelNames returns the ordered label names (nil for a nil vec).
func (v *GaugeVec) LabelNames() []string {
	if v == nil {
		return nil
	}
	return append([]string(nil), v.labels...)
}

// Set sets the series of the given label values to val. Calls with the
// wrong number of label values are dropped.
func (v *GaugeVec) Set(val float64, labelValues ...string) {
	if v == nil || len(labelValues) != len(v.labels) {
		return
	}
	k := vecKey(labelValues)
	v.stripes[stripeOf(k)].set(k, val)
}

// Value returns the series value and whether it was ever set.
func (v *GaugeVec) Value(labelValues ...string) (float64, bool) {
	if v == nil || len(labelValues) != len(v.labels) {
		return 0, false
	}
	k := vecKey(labelValues)
	return v.stripes[stripeOf(k)].get(k)
}

// Snapshot returns every series, sorted by label values for determinism.
func (v *GaugeVec) Snapshot() VecSnapshot {
	if v == nil {
		return VecSnapshot{}
	}
	return VecSnapshot{LabelNames: v.LabelNames(), Values: snapshotValues(&v.stripes, len(v.labels))}
}

// histStripe is one lock-striped shard of histogram series.
type histStripe struct {
	mu    sync.Mutex
	hists map[string]*histogram
}

// HistogramVec is a fixed-bucket histogram with one histogram per label
// tuple. All methods are safe for concurrent use and safe on a nil
// receiver.
type HistogramVec struct {
	name    string
	labels  []string
	bounds  []float64
	stripes [vecStripes]histStripe
}

// Name returns the vec's metric name ("" for nil).
func (v *HistogramVec) Name() string {
	if v == nil {
		return ""
	}
	return v.name
}

// LabelNames returns the ordered label names (nil for a nil vec).
func (v *HistogramVec) LabelNames() []string {
	if v == nil {
		return nil
	}
	return append([]string(nil), v.labels...)
}

// Observe records val into the series of the given label values. Calls
// with the wrong number of label values are dropped.
func (v *HistogramVec) Observe(val float64, labelValues ...string) {
	if v == nil || len(labelValues) != len(v.labels) {
		return
	}
	k := vecKey(labelValues)
	s := &v.stripes[stripeOf(k)]
	s.mu.Lock()
	h, ok := s.hists[k]
	if !ok {
		if s.hists == nil {
			s.hists = make(map[string]*histogram)
		}
		h = newHistogram(v.bounds)
		s.hists[k] = h
	}
	h.observe(val)
	s.mu.Unlock()
}

// ObserveDuration records d (in seconds) into the series.
func (v *HistogramVec) ObserveDuration(d time.Duration, labelValues ...string) {
	if v == nil {
		return
	}
	v.Observe(d.Seconds(), labelValues...)
}

// SeriesSnapshot returns the snapshot of one series and whether it exists.
func (v *HistogramVec) SeriesSnapshot(labelValues ...string) (HistogramSnapshot, bool) {
	if v == nil || len(labelValues) != len(v.labels) {
		return HistogramSnapshot{}, false
	}
	k := vecKey(labelValues)
	s := &v.stripes[stripeOf(k)]
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.hists[k]
	if !ok {
		return HistogramSnapshot{}, false
	}
	return h.snapshot(), true
}

// Snapshot returns every series, sorted by label values for determinism.
func (v *HistogramVec) Snapshot() VecSnapshot {
	if v == nil {
		return VecSnapshot{}
	}
	out := VecSnapshot{LabelNames: v.LabelNames()}
	for i := range v.stripes {
		s := &v.stripes[i]
		s.mu.Lock()
		for k, h := range s.hists {
			out.Histograms = append(out.Histograms, LabeledHistogram{
				Labels: splitVecKey(k, len(v.labels)),
				Hist:   h.snapshot(),
			})
		}
		s.mu.Unlock()
	}
	sort.Slice(out.Histograms, func(i, j int) bool {
		return lessLabels(out.Histograms[i].Labels, out.Histograms[j].Labels)
	})
	return out
}

// snapshotValues collects and sorts the scalar series of a striped vec.
func snapshotValues(stripes *[vecStripes]valueStripe, labels int) []LabeledValue {
	var out []LabeledValue
	for i := range stripes {
		s := &stripes[i]
		s.mu.Lock()
		for k, val := range s.vals {
			out = append(out, LabeledValue{Labels: splitVecKey(k, labels), Value: val})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return lessLabels(out[i].Labels, out[j].Labels) })
	return out
}

// lessLabels orders label-value tuples lexicographically.
func lessLabels(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// LabeledValue is one scalar series of a vec snapshot.
type LabeledValue struct {
	Labels []string `json:"labels"`
	Value  float64  `json:"value"`
}

// LabeledHistogram is one histogram series of a vec snapshot.
type LabeledHistogram struct {
	Labels []string          `json:"labels"`
	Hist   HistogramSnapshot `json:"hist"`
}

// VecSnapshot is an immutable copy of one vec's series, sorted by label
// values. Values is set for counter/gauge vecs, Histograms for histogram
// vecs.
type VecSnapshot struct {
	LabelNames []string           `json:"label_names"`
	Values     []LabeledValue     `json:"values,omitempty"`
	Histograms []LabeledHistogram `json:"histograms,omitempty"`
}

// NewCounterVec returns the registry's counter vec of the given name,
// creating it with the ordered label names on first use. A nil registry
// returns a nil (no-op) vec. The label names of an existing vec win.
func (r *Registry) NewCounterVec(name string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.cvecs[name]; ok {
		return v
	}
	v := &CounterVec{name: name, labels: append([]string(nil), labelNames...)}
	r.cvecs[name] = v
	return v
}

// NewGaugeVec returns the registry's gauge vec of the given name, creating
// it with the ordered label names on first use. A nil registry returns a
// nil (no-op) vec.
func (r *Registry) NewGaugeVec(name string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.gvecs[name]; ok {
		return v
	}
	v := &GaugeVec{name: name, labels: append([]string(nil), labelNames...)}
	r.gvecs[name] = v
	return v
}

// NewHistogramVec returns the registry's histogram vec of the given name,
// creating it with the bucket bounds (nil = DefaultBuckets) and ordered
// label names on first use. A nil registry returns a nil (no-op) vec.
func (r *Registry) NewHistogramVec(name string, bounds []float64, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefaultBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.hvecs[name]; ok {
		return v
	}
	v := &HistogramVec{
		name:   name,
		labels: append([]string(nil), labelNames...),
		bounds: append([]float64(nil), bounds...),
	}
	r.hvecs[name] = v
	return v
}
