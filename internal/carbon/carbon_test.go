package carbon

import (
	"math"
	"testing"
	"time"

	"github.com/vbcloud/vb/internal/trace"
)

func flat(mw float64, hours int) trace.Series {
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	vals := make([]float64, hours)
	for i := range vals {
		vals[i] = mw
	}
	return trace.FromValues(start, time.Hour, vals)
}

func TestEmissionsTons(t *testing.T) {
	// 100 MW for 10 h = 1000 MWh = 1e6 kWh; at 300 g/kWh = 300 t.
	got, err := EmissionsTons(flat(100, 10), AverageGrid)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-300) > 1e-9 {
		t.Errorf("emissions = %v t, want 300", got)
	}
	if _, err := EmissionsTons(trace.Series{}, AverageGrid); err == nil {
		t.Error("empty series should error")
	}
	if _, err := EmissionsTons(flat(1, 1), -1); err == nil {
		t.Error("negative intensity should error")
	}
}

func TestCompareToGrid(t *testing.T) {
	s, err := CompareToGrid(flat(100, 10), WindLifecycle, AverageGrid)
	if err != nil {
		t.Fatal(err)
	}
	if s.GridTons != 300 {
		t.Errorf("grid = %v", s.GridTons)
	}
	if math.Abs(s.RenewableTons-11) > 1e-9 {
		t.Errorf("renewable = %v, want 11", s.RenewableTons)
	}
	if math.Abs(s.SavedTons-289) > 1e-9 {
		t.Errorf("saved = %v, want 289", s.SavedTons)
	}
	if s.SavedFraction < 0.96 || s.SavedFraction > 0.97 {
		t.Errorf("saved fraction = %v, want ~0.963", s.SavedFraction)
	}
	if _, err := CompareToGrid(trace.Series{}, WindLifecycle, AverageGrid); err == nil {
		t.Error("empty series should error")
	}
}

func TestMigrationEnergyNegligible(t *testing.T) {
	// The paper's §5 claim: migration energy is negligible. A heavy week
	// of migration (300 TB) at 0.03 kWh/GB on an average grid:
	tons, err := MigrationEnergyTons(300000, 0.03, AverageGrid)
	if err != nil {
		t.Fatal(err)
	}
	// = 9e6 kWh*... 300000*0.03 = 9000 kWh -> 2.7 t. Compare with serving
	// a single 400 MW site from the grid for a week: ~20,000 t.
	site, err := EmissionsTons(flat(120, 7*24), AverageGrid) // 30% CF
	if err != nil {
		t.Fatal(err)
	}
	if tons >= 0.01*site {
		t.Errorf("migration emissions %v t should be <1%% of site supply %v t", tons, site)
	}
	if _, err := MigrationEnergyTons(-1, 0.03, AverageGrid); err == nil {
		t.Error("negative transfer should error")
	}
	if _, err := MigrationEnergyTons(1, -0.03, AverageGrid); err == nil {
		t.Error("negative energy rate should error")
	}
	if _, err := MigrationEnergyTons(1, 0.03, -1); err == nil {
		t.Error("negative intensity should error")
	}
}
