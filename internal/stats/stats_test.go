package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty input should give 0")
	}
}

func TestCoV(t *testing.T) {
	if got := CoV([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEq(got, 0.4, 1e-12) {
		t.Errorf("CoV = %v, want 0.4", got)
	}
	if got := CoV([]float64{5, 5, 5}); got != 0 {
		t.Errorf("constant CoV = %v, want 0", got)
	}
	if got := CoV([]float64{-1, 1}); !math.IsInf(got, 1) {
		t.Errorf("zero-mean CoV = %v, want +Inf", got)
	}
	if got := CoV([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero CoV = %v, want 0", got)
	}
	// CoV uses |mean| so negative series behave like positive ones.
	if got := CoV([]float64{-2, -4, -4, -4, -5, -5, -7, -9}); !almostEq(got, 0.4, 1e-12) {
		t.Errorf("negative CoV = %v, want 0.4", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40}, {40, 29},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, c.want, 1e-9) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty should error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("out of range should error")
	}
	if got, _ := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("singleton percentile = %v", got)
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	qs, err := Quantiles(xs, 0, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if qs[0] != 1 || qs[1] != 3 || qs[2] != 5 {
		t.Errorf("Quantiles = %v", qs)
	}
	if _, err := Quantiles(nil, 50); err == nil {
		t.Error("empty should error")
	}
	if _, err := Quantiles(xs, -5); err == nil {
		t.Error("bad percentile should error")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Total != 15 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty should error")
	}
}

func TestCDF(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
	if got := c.P(0); got != 0 {
		t.Errorf("P(0) = %v", got)
	}
	if got := c.P(2); got != 0.75 {
		t.Errorf("P(2) = %v, want 0.75", got)
	}
	if got := c.P(10); got != 1 {
		t.Errorf("P(10) = %v, want 1", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := c.Quantile(1); got != 3 {
		t.Errorf("Quantile(1) = %v", got)
	}
	if got := c.Quantile(-1); got != 1 {
		t.Errorf("Quantile(-1) should clamp, got %v", got)
	}
	if got := c.Quantile(2); got != 3 {
		t.Errorf("Quantile(2) should clamp, got %v", got)
	}
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points = %d", len(pts))
	}
	if pts[0].X != 1 || pts[4].X != 3 || pts[4].Y != 1 {
		t.Errorf("Points = %v", pts)
	}
	if got := c.Points(1); len(got) != 2 {
		t.Errorf("Points(1) should clamp to 2, got %d", len(got))
	}
	if _, err := NewCDF(nil); err == nil {
		t.Error("empty should error")
	}
}

func TestCDFMonotone(t *testing.T) {
	c, _ := NewCDF([]float64{5, 1, 9, 3, 3, 7})
	prev := -1.0
	for x := 0.0; x <= 10; x += 0.25 {
		p := c.P(x)
		if p < prev {
			t.Fatalf("CDF not monotone at %v: %v < %v", x, p, prev)
		}
		prev = p
	}
}

func TestMAPE(t *testing.T) {
	actual := []float64{100, 200, 0, 50}
	forecast := []float64{110, 180, 5, 50}
	// Zero actual excluded; errors are 10%, 10%, 0% -> 6.666%.
	got, err := MAPE(forecast, actual, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 20.0/3, 1e-9) {
		t.Errorf("MAPE = %v, want %v", got, 20.0/3)
	}
	if _, err := MAPE([]float64{1}, []float64{1, 2}, 0); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := MAPE([]float64{1}, []float64{0}, 1e-9); err == nil {
		t.Error("all-zero actual should error")
	}
}

func TestMAE(t *testing.T) {
	got, err := MAE([]float64{1, 2, 3}, []float64{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 1, 1e-12) {
		t.Errorf("MAE = %v, want 1", got)
	}
	if _, err := MAE(nil, nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := MAE([]float64{1}, nil); err == nil {
		t.Error("mismatch should error")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", r)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEq(r, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v", r)
	}
	r, _ = Pearson(xs, []float64{5, 5, 5, 5})
	if r != 0 {
		t.Errorf("zero-variance correlation = %v", r)
	}
	if _, err := Pearson(xs, ys[:2]); err == nil {
		t.Error("mismatch should error")
	}
	if _, err := Pearson(nil, nil); err == nil {
		t.Error("empty should error")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.5, 0.9, 1.0, 2.0, -1.0}
	counts, err := Histogram(xs, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-range 2.0 and -1.0 dropped; 0.5 opens the second bucket and
	// 1.0 is clamped into the last bucket.
	if counts[0] != 2 || counts[1] != 3 {
		t.Errorf("Histogram = %v", counts)
	}
	if _, err := Histogram(xs, 0, 1, 0); err == nil {
		t.Error("zero buckets should error")
	}
	if _, err := Histogram(xs, 1, 1, 3); err == nil {
		t.Error("empty range should error")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(4, 2) != 2 {
		t.Error("Ratio(4,2)")
	}
	if !math.IsInf(Ratio(1, 0), 1) {
		t.Error("Ratio(1,0) should be +Inf")
	}
	if Ratio(0, 0) != 1 {
		t.Error("Ratio(0,0) should be 1")
	}
}

// Property: percentiles are monotone in p.
func TestPropPercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = v
		}
		p1 := float64(a) / 255 * 100
		p2 := float64(b) / 255 * 100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, err1 := Percentile(xs, p1)
		v2, err2 := Percentile(xs, p2)
		return err1 == nil && err2 == nil && v1 <= v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: CDF.P(Quantile(q)) >= q for all q.
func TestPropCDFQuantileInverse(t *testing.T) {
	f := func(raw []float64, q8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = v
		}
		c, err := NewCDF(xs)
		if err != nil {
			return false
		}
		q := float64(q8) / 255
		// With linear interpolation the quantile can fall strictly between
		// two order statistics, so P can be up to 1/n below q.
		return c.P(c.Quantile(q)) >= q-1.0/float64(c.N())-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	same := []float64{1, 2, 3, 4, 5}
	d, err := KolmogorovSmirnov(same, same)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("KS of identical samples = %v, want 0", d)
	}
	// Disjoint supports: KS = 1.
	d, err = KolmogorovSmirnov([]float64{0, 1, 2}, []float64{10, 11, 12})
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("KS of disjoint samples = %v, want 1", d)
	}
	// Half-overlapping: strictly between.
	d, err = KolmogorovSmirnov([]float64{1, 2, 3, 4}, []float64{3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d >= 1 {
		t.Errorf("KS = %v, want in (0,1)", d)
	}
	if _, err := KolmogorovSmirnov(nil, same); err == nil {
		t.Error("empty sample should error")
	}
}

// Property: KS is symmetric and bounded in [0, 1].
func TestPropKSSymmetricBounded(t *testing.T) {
	f := func(rawA, rawB []float64) bool {
		if len(rawA) == 0 || len(rawB) == 0 {
			return true
		}
		clean := func(raw []float64) []float64 {
			out := make([]float64, len(raw))
			for i, v := range raw {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0
				}
				out[i] = v
			}
			return out
		}
		a, b := clean(rawA), clean(rawB)
		d1, err1 := KolmogorovSmirnov(a, b)
		d2, err2 := KolmogorovSmirnov(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return d1 >= 0 && d1 <= 1 && math.Abs(d1-d2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
