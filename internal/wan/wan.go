// Package wan models the shared wide-area network connecting VB sites and
// answers the paper's capacity questions (§3, §5): how much of a site's WAN
// share a migration spike consumes, and what fraction of time the WAN is
// busy migrating.
package wan

import (
	"fmt"
	"time"

	"github.com/vbcloud/vb/internal/trace"
)

// Config describes the shared WAN fabric.
type Config struct {
	// AggregateTbps is the total WAN capacity shared by all sites
	// (the paper assumes a B4-like 50 Tb/s fabric).
	AggregateTbps float64
	// Sites is the number of sites sharing it (paper: ~100).
	Sites int
}

// DefaultConfig returns the paper's WAN assumptions (§3).
func DefaultConfig() Config {
	return Config{AggregateTbps: 50, Sites: 100}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.AggregateTbps <= 0 {
		return fmt.Errorf("wan: non-positive aggregate capacity %v", c.AggregateTbps)
	}
	if c.Sites <= 0 {
		return fmt.Errorf("wan: non-positive site count %d", c.Sites)
	}
	return nil
}

// PerSiteShareGbps is one site's fair share of the aggregate, in Gb/s.
func (c Config) PerSiteShareGbps() float64 {
	return c.AggregateTbps * 1000 / float64(c.Sites)
}

// RequiredGbps returns the link rate needed to move the given volume within
// the deadline. The paper's example: 10 TB in 5 minutes needs ~267 Gb/s
// (they round to ~200 Gb/s for 10^4 GB).
func RequiredGbps(volumeGB float64, deadline time.Duration) (float64, error) {
	if volumeGB < 0 {
		return 0, fmt.Errorf("wan: negative volume %v", volumeGB)
	}
	if deadline <= 0 {
		return 0, fmt.Errorf("wan: non-positive deadline %v", deadline)
	}
	bits := volumeGB * 8 // gigabits
	return bits / deadline.Seconds(), nil
}

// ShareConsumed returns the fraction of a site's WAN share a migration of
// the given volume and deadline consumes. Values above 1 mean the share is
// exceeded.
func (c Config) ShareConsumed(volumeGB float64, deadline time.Duration) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	need, err := RequiredGbps(volumeGB, deadline)
	if err != nil {
		return 0, err
	}
	return need / c.PerSiteShareGbps(), nil
}

// BusyFraction returns the fraction of time a link of linkGbps is busy
// transmitting the migration traffic of the per-step transfer series
// (GB per step): each step's volume occupies volume/rate seconds of the
// step. The paper's §5 estimate: migration occupies 2-4% of time at
// 200 Gb/s per site.
func BusyFraction(transfer trace.Series, linkGbps float64) (float64, error) {
	if transfer.IsEmpty() {
		return 0, trace.ErrEmptySeries
	}
	if linkGbps <= 0 {
		return 0, fmt.Errorf("wan: non-positive link rate %v", linkGbps)
	}
	stepSec := transfer.Step.Seconds()
	if stepSec <= 0 {
		return 0, trace.ErrBadStep
	}
	var busy float64
	for _, gb := range transfer.Values {
		sec := gb * 8 / linkGbps
		if sec > stepSec {
			sec = stepSec // saturated: the step is fully busy
		}
		busy += sec
	}
	return busy / (stepSec * float64(transfer.Len())), nil
}
