package lp

import (
	"errors"
	"fmt"
	"math"
)

// This file preserves the original dense two-phase primal simplex (Bland's
// rule throughout, artificial variables for GE/EQ rows) as SolveReference.
// It is deliberately independent of the revised solver — different pivot
// rule, different data structures, different phase-1 construction — so the
// randomized differential tests in differential_test.go compare two
// genuinely distinct implementations. Bounds are handled by reduction: each
// finite lower bound shifts the variable, each finite upper bound adds an
// explicit row, free variables split into a difference of nonnegatives.

// SolveReference solves p with the legacy dense tableau simplex. Results
// agree with Solve (statuses exactly, objectives to solver tolerance), but
// it cold-starts every call and grows a row per finite upper bound, so it is
// only suitable as a test oracle and for small problems.
func SolveReference(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	// Reduce to nonnegative variables. Each original variable j maps to
	// column pos[j] with x_j = off[j] + x'_pos (and, for free variables,
	// x_j = x'_pos - x'_neg[j]); sign[j] = -1 encodes x_j = off[j] - x'_pos
	// used for upper-bounded variables with no finite lower bound.
	n := p.NumVars
	pos := make([]int, n)
	neg := make([]int, n)
	off := make([]float64, n)
	sign := make([]float64, n)
	cols := 0
	var extra []Constraint
	for j := 0; j < n; j++ {
		lo, hi := p.LowerOf(j), p.UpperOf(j)
		if lo > hi+eps {
			return Solution{Status: Infeasible}, nil
		}
		neg[j] = -1
		switch {
		case !math.IsInf(lo, -1):
			// x = lo + x', x' >= 0, with x' <= hi-lo when hi is finite.
			pos[j], off[j], sign[j] = cols, lo, 1
			cols++
			if !math.IsInf(hi, 1) {
				co := make([]float64, pos[j]+1)
				co[pos[j]] = 1
				extra = append(extra, Constraint{Coeffs: co, Sense: LE, RHS: hi - lo})
			}
		case !math.IsInf(hi, 1):
			// x = hi - x', x' >= 0.
			pos[j], off[j], sign[j] = cols, hi, -1
			cols++
		default:
			// Free: x = x'⁺ - x'⁻.
			pos[j], sign[j] = cols, 1
			neg[j] = cols + 1
			cols += 2
		}
	}
	q := Problem{
		NumVars:   cols,
		Objective: make([]float64, cols),
		Maximize:  p.Maximize,
	}
	objOff := 0.0
	for j, c := range p.Objective {
		if c == 0 {
			continue
		}
		objOff += c * off[j]
		q.Objective[pos[j]] += c * sign[j]
		if neg[j] >= 0 {
			q.Objective[neg[j]] -= c
		}
	}
	for _, c := range p.Constraints {
		co := make([]float64, cols)
		rhs := c.RHS
		for j, v := range c.Coeffs {
			if v == 0 {
				continue
			}
			rhs -= v * off[j]
			co[pos[j]] += v * sign[j]
			if neg[j] >= 0 {
				co[neg[j]] -= v
			}
		}
		q.Constraints = append(q.Constraints, Constraint{Coeffs: co, Sense: c.Sense, RHS: rhs})
	}
	q.Constraints = append(q.Constraints, extra...)

	sol, err := solveTableau(q)
	if err != nil || sol.Status != Optimal {
		return sol, err
	}
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = off[j] + sign[j]*sol.X[pos[j]]
		if neg[j] >= 0 {
			x[j] -= sol.X[neg[j]]
		}
	}
	obj := objOff
	for j, c := range p.Objective {
		if c != 0 {
			obj += c * (x[j] - off[j])
		}
	}
	return Solution{Status: Optimal, X: x, Objective: obj, Pivots: sol.Pivots}, nil
}

// tableau is the dense simplex tableau: rows of coefficients over structural
// + slack + artificial columns, an RHS column, and a basis map.
type tableau struct {
	m, n    int // constraint rows, total columns (excluding RHS)
	nStruct int // structural variable count
	nArt    int // artificial variable count (last nArt columns)
	a       [][]float64
	rhs     []float64
	basis   []int // basis[i] = column basic in row i
	npiv    int64
}

// solveTableau runs the legacy two-phase simplex on a nonnegative-variable
// problem (bounds ignored; callers reduce them away first).
func solveTableau(p Problem) (Solution, error) {
	t := build(p)

	// Phase 1: drive artificials to zero.
	if t.nArt > 0 {
		obj := make([]float64, t.n)
		for j := t.n - t.nArt; j < t.n; j++ {
			obj[j] = 1
		}
		val, err := t.run(obj)
		if err != nil {
			return Solution{}, err
		}
		if val > 1e-7 {
			return Solution{Status: Infeasible, Pivots: t.npiv}, nil
		}
		t.evictArtificials()
	}

	// Phase 2: original objective (as minimization).
	obj := make([]float64, t.n)
	for j, c := range p.Objective {
		if p.Maximize {
			obj[j] = -c
		} else {
			obj[j] = c
		}
	}
	// Forbid artificials from re-entering.
	for j := t.n - t.nArt; j < t.n; j++ {
		obj[j] = 0
	}
	t.blockArtificials()
	val, err := t.run(obj)
	if err != nil {
		if errors.Is(err, errUnbounded) {
			return Solution{Status: Unbounded, Pivots: t.npiv}, nil
		}
		return Solution{}, err
	}

	x := make([]float64, p.NumVars)
	for i, b := range t.basis {
		if b < t.nStruct {
			x[b] = t.rhs[i]
		}
	}
	if p.Maximize {
		val = -val
	}
	return Solution{Status: Optimal, X: x, Objective: val, Pivots: t.npiv}, nil
}

// build constructs the initial tableau with slack and artificial columns and
// a feasible starting basis.
func build(p Problem) *tableau {
	m := len(p.Constraints)
	// Count slack and artificial columns.
	nSlack, nArt := 0, 0
	for _, c := range p.Constraints {
		rhs := c.RHS
		sense := c.Sense
		if rhs < 0 {
			sense = flip(sense)
		}
		switch sense {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	n := p.NumVars + nSlack + nArt
	t := &tableau{
		m:       m,
		n:       n,
		nStruct: p.NumVars,
		nArt:    nArt,
		a:       make([][]float64, m),
		rhs:     make([]float64, m),
		basis:   make([]int, m),
	}
	slackCol := p.NumVars
	artCol := p.NumVars + nSlack
	for i, c := range p.Constraints {
		row := make([]float64, n)
		sign := 1.0
		sense := c.Sense
		rhs := c.RHS
		if rhs < 0 {
			sign = -1
			rhs = -rhs
			sense = flip(sense)
		}
		for j, v := range c.Coeffs {
			row[j] = sign * v
		}
		t.rhs[i] = rhs
		switch sense {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.a[i] = row
	}
	return t
}

func flip(s Sense) Sense {
	switch s {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

var errUnbounded = errors.New("lp: unbounded")

// run minimizes obj·x over the current tableau using Bland's rule, returning
// the optimal value. The tableau is left at the optimal basis.
func (t *tableau) run(obj []float64) (float64, error) {
	// Reduced costs: z[j] = obj[j] - cb·B^-1·A_j. Maintain the objective
	// row explicitly, starting from obj and pricing out the basic columns.
	z := make([]float64, t.n)
	copy(z, obj)
	val := 0.0
	for i, b := range t.basis {
		if obj[b] != 0 {
			cb := obj[b]
			for j := 0; j < t.n; j++ {
				z[j] -= cb * t.a[i][j]
			}
			val += cb * t.rhs[i]
		}
	}

	maxIter := 10000 * (t.m + t.n + 1)
	for iter := 0; iter < maxIter; iter++ {
		// Bland: entering = lowest-index column with negative reduced cost.
		enter := -1
		for j := 0; j < t.n; j++ {
			if z[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return val, nil // optimal
		}
		// Ratio test; Bland ties by lowest basis variable index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter] > eps {
				r := t.rhs[i] / t.a[i][enter]
				if r < best-eps || (r < best+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					best = r
					leave = i
				}
			}
		}
		if leave < 0 {
			return 0, errUnbounded
		}
		t.pivot(leave, enter, z, &val)
	}
	return 0, fmt.Errorf("lp: iteration limit exceeded (m=%d n=%d)", t.m, t.n)
}

// pivot performs a pivot on (row, col), updating the objective row z and
// objective value.
func (t *tableau) pivot(row, col int, z []float64, val *float64) {
	piv := t.a[row][col]
	inv := 1 / piv
	for j := 0; j < t.n; j++ {
		t.a[row][j] *= inv
	}
	t.rhs[row] *= inv
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.a[i][j] -= f * t.a[row][j]
		}
		t.rhs[i] -= f * t.rhs[row]
		if t.rhs[i] < 0 && t.rhs[i] > -eps {
			t.rhs[i] = 0
		}
	}
	f := z[col]
	if f != 0 {
		for j := 0; j < t.n; j++ {
			z[j] -= f * t.a[row][j]
		}
		*val += f * t.rhs[row]
	}
	t.basis[row] = col
	t.npiv++
}

// evictArtificials pivots any artificial variable that remains basic (at
// zero level after a successful phase 1) out of the basis where possible.
func (t *tableau) evictArtificials() {
	artStart := t.n - t.nArt
	for i := 0; i < t.m; i++ {
		if t.basis[i] < artStart {
			continue
		}
		// Find a non-artificial column with a nonzero entry to pivot in.
		for j := 0; j < artStart; j++ {
			if math.Abs(t.a[i][j]) > eps {
				dummy := make([]float64, t.n)
				var v float64
				t.pivot(i, j, dummy, &v)
				break
			}
		}
		// If none exists the row is redundant (all zeros); leave it.
	}
}

// blockArtificials zeroes artificial columns so they can never re-enter.
func (t *tableau) blockArtificials() {
	artStart := t.n - t.nArt
	for i := 0; i < t.m; i++ {
		for j := artStart; j < t.n; j++ {
			if t.basis[i] != j {
				t.a[i][j] = 0
			}
		}
	}
}
