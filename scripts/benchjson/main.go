// Command benchjson converts `go test -bench` output into a JSON summary.
//
// Each benchmark line is parsed into its name, iteration count, and every
// reported metric (ns/op, B/op, allocs/op, and custom b.ReportMetric units
// such as ns/solve or pivots/op). The original line is preserved verbatim in
// the "raw" field, so the benchstat text format can be reconstructed with
// `jq -r '.benchmarks[].raw'` and fed straight to benchstat for A/B
// comparison against a previous baseline.
//
// Usage:
//
//	go test -run '^$' -bench 'MIPSolve|Simplex' -benchmem ./... | \
//	    go run ./scripts/benchjson -out BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Package string             `json:"pkg,omitempty"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
	Raw     string             `json:"raw"`
}

// File is the top-level JSON document.
type File struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func parse(r io.Reader) (File, error) {
	var f File
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if !ok {
				continue
			}
			b.Package = pkg
			f.Benchmarks = append(f.Benchmarks, b)
		}
	}
	return f, sc.Err()
}

// parseLine splits "BenchmarkName-8  123  456 ns/op  7 B/op ..." into the
// name, run count, and value/unit pairs.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs, Metrics: map[string]float64{}, Raw: line}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	f, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(f.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	blob, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
