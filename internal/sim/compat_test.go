package sim

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/vbcloud/vb/internal/cluster"
	"github.com/vbcloud/vb/internal/core"
)

// TestVMEngineSnapshotBackCompat pins gob snapshot compatibility across the
// SLO-class refactor: testdata/vmengine_legacy.snapshot was written by the
// pre-refactor engine (no per-class demand fields in the wire structs), and
// restoring it must still work and must finish the run with decisions
// byte-identical to an uninterrupted run of the same scenario.
//
// Regenerate only from a pre-change checkout:
//
//	VB_UPDATE_GOLDEN=1 go test -run SnapshotBackCompat ./internal/sim/
func TestVMEngineSnapshotBackCompat(t *testing.T) {
	in, apps := vmLevelFixtures(t, 2)
	cfg := simConfig(core.MIP)
	ccfg := cluster.DefaultConfig()
	arrivals := vmBatchArrivals(in, apps)
	path := filepath.Join("testdata", "vmengine_legacy.snapshot")

	// The uninterrupted reference run (same code version as the test run).
	full, err := NewVMEngine(cfg, in, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	fullReports := stepReports(t, full, arrivals)
	mid := full.Steps() / 2

	if os.Getenv("VB_UPDATE_GOLDEN") != "" {
		half, err := NewVMEngine(cfg, in, ccfg)
		if err != nil {
			t.Fatal(err)
		}
		sortArrivals(arrivals)
		next := 0
		for half.Step() < mid {
			now := half.Now()
			var batch []AppArrival
			for next < len(arrivals) && !arrivals[next].Demand.Start.After(now) {
				batch = append(batch, arrivals[next])
				next++
			}
			if _, err := half.Advance(batch); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := half.Snapshot(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s at step %d", path, mid)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing legacy snapshot golden (generate from a pre-change checkout): %v", err)
	}
	restored, err := RestoreVMEngine(cfg, in, ccfg, bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("legacy snapshot no longer restores: %v", err)
	}
	if restored.Step() != mid {
		t.Fatalf("legacy snapshot restored at step %d, want %d", restored.Step(), mid)
	}
	// Replay the remaining arrivals and require byte-identical decisions.
	sortArrivals(arrivals)
	next := 0
	for next < len(arrivals) && !arrivals[next].Demand.Start.After(restored.base.TimeAt(mid-1)) {
		next++
	}
	for i := mid; !restored.Done(); i++ {
		now := restored.Now()
		var batch []AppArrival
		for next < len(arrivals) && !arrivals[next].Demand.Start.After(now) {
			batch = append(batch, arrivals[next])
			next++
		}
		rep, err := restored.Advance(batch)
		if err != nil {
			t.Fatal(err)
		}
		line, _ := json.Marshal(rep)
		if !bytes.Equal(line, fullReports[i]) {
			t.Fatalf("step %d decision record diverges after legacy restore:\nfull:     %s\nrestored: %s",
				i, fullReports[i], line)
		}
	}
	gr, gf := restored.Result(), full.Result()
	if gr.Moves != gf.Moves || gr.FailedPlacements != gf.FailedPlacements || gr.Fragmentation != gf.Fragmentation {
		t.Fatalf("restored result %+v != full %+v", gr, gf)
	}
}
