package lp

import "math"

// sparseLU is the default basis representation: a sparse LU factorization
// of the basis with Markowitz-style pivot selection, updated in place by
// product-form eta transforms (the Forrest–Tomlin update family) on each
// simplex pivot. FTRAN/BTRAN apply the LU triangles and then the eta chain,
// so their cost is O(nnz(L)+nnz(U)+nnz(etas)) instead of the dense path's
// O(m²) — the difference between the paper's 3-site toy and a 200-site
// fleet, where m runs to thousands and the basis stays extremely sparse.
//
// The eta chain is bounded three ways: chain length (etaChainCap), stored
// nonzeros (a multiple of m), and pivot magnitude (etaPivTol). When update
// refuses, the simplex refactorizes from the current basis — and the
// trust-but-verify residual gate in SolveCurrent still guards every exit,
// exactly as it did for the dense inverse.
const (
	// etaPivTol is the smallest |w_r| an eta update will absorb; anything
	// smaller forces a refactorization instead of amplifying roundoff.
	etaPivTol = 1e-8
	// markowitzTau is the threshold-pivoting stability factor: a pivot must
	// be at least this fraction of the largest magnitude in its column.
	markowitzTau = 0.05
	// luPivotTol is the smallest acceptable pivot magnitude during
	// refactorization; below it the basis is declared singular.
	luPivotTol = 1e-10
)

// etaChainCap bounds the eta-file length between refactorizations. It is a
// variable (not a const) so stress tests can shrink it to force frequent
// refactorization on the same pivot sequences.
var etaChainCap = 64

type sparseLU struct {
	m int

	// LU of the basis as of the last refactorization, in pivot order: step
	// k eliminated basis position pivCol[k] using constraint row pivRow[k]
	// with pivot value diag[k]. L stores the per-step row-elimination
	// multipliers (constraint-row indexed); U rows store the pivot row's
	// surviving entries over positions pivoted at later steps.
	pivRow, pivCol []int32
	lPtr, lIdx     []int32
	lVal           []float64
	uPtr, uIdx     []int32
	uVal           []float64
	diag           []float64
	trivial        bool // the LU is exactly the identity (all-slack crash)

	// Eta chain: product-form updates appended since the last refactor.
	// Eta e pivots on basis position etaRow[e] with pivot value etaPiv[e];
	// etaIdx/etaVal[etaPtr[e]:etaPtr[e+1]] hold the off-pivot entries of
	// the FTRAN column that entered the basis.
	etaRow []int32
	etaPiv []float64
	etaPtr []int32
	etaIdx []int32
	etaVal []float64

	work []float64 // m, FTRAN/BTRAN scratch

	// i32buf/f64buf/boolbuf back most of the slices above: reset carves
	// them into capacity-capped views (three-index slices, so an append
	// overflowing its region reallocates instead of bleeding into a
	// neighbor). A fresh factorization is two large allocations instead of
	// ~20 small ones — the dense path's single m×m inverse kept the alloc
	// gates tight and the sparse path must not blow them.
	i32buf  []int32
	f64buf  []float64
	boolbuf []bool

	// Refactorization workspace, kept across calls so steady-state
	// refactorizations allocate (almost) nothing. Rows of the active matrix
	// live in arena-backed slices with elbow room; a row that outgrows its
	// slot falls back to an ordinary append reallocation.
	rowIdx    [][]int32
	rowVal    [][]float64
	colRows   [][]int32
	arenaIdx  []int32
	arenaVal  []float64
	arenaCols []int32
	colCount  []int32
	rowLive   []bool
	colLive   []bool
	acc       []float64
	accMark   []int32
	accStamp  int32
	// selHeap is a lazy min-heap over packed (count<<32 | col) keys used to
	// select the pivot column. A fresh key is pushed whenever a column's
	// count changes; stale keys are discarded on pop. Pop order is identical
	// to a full scan — lowest count, then lowest column index — without the
	// O(m) sweep per pivot.
	selHeap []int64
}

func newSparseLU(m int) *sparseLU {
	f := &sparseLU{}
	f.reset(m)
	return f
}

func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func resizeF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func (f *sparseLU) reset(m int) {
	f.m = m
	cc := etaChainCap
	luCap := 6*m + 64     // L/U index/value headroom before spilling
	etaCap := 16*m + 1024 // matches update's eta-nonzero budget

	ni := 2*m + 2*(m+1) + 2*luCap + (cc + 1) + cc + etaCap + 2*m
	if cap(f.i32buf) < ni {
		f.i32buf = make([]int32, ni)
	}
	ib, io := f.i32buf[:cap(f.i32buf)], 0
	grabI := func(length, capacity int) []int32 {
		s := ib[io : io+length : io+capacity]
		io += capacity
		return s
	}
	f.pivRow = grabI(m, m)
	f.pivCol = grabI(m, m)
	f.lPtr = grabI(m+1, m+1)
	f.uPtr = grabI(m+1, m+1)
	f.lIdx = grabI(0, luCap)
	f.uIdx = grabI(0, luCap)
	f.etaPtr = grabI(0, cc+1)
	f.etaRow = grabI(0, cc)
	f.etaIdx = grabI(0, etaCap)
	f.colCount = grabI(m, m)
	f.accMark = grabI(m, m)

	nf := 3*m + 2*luCap + cc + etaCap
	if cap(f.f64buf) < nf {
		f.f64buf = make([]float64, nf)
	}
	fb, fo := f.f64buf[:cap(f.f64buf)], 0
	grabF := func(length, capacity int) []float64 {
		s := fb[fo : fo+length : fo+capacity]
		fo += capacity
		return s
	}
	f.diag = grabF(m, m)
	f.work = grabF(m, m)
	f.lVal = grabF(0, luCap)
	f.uVal = grabF(0, luCap)
	f.etaPiv = grabF(0, cc)
	f.etaVal = grabF(0, etaCap)
	f.acc = grabF(m, m)

	if cap(f.boolbuf) < 2*m {
		f.boolbuf = make([]bool, 2*m)
	}
	f.rowLive = f.boolbuf[0:m:m]
	f.colLive = f.boolbuf[m : 2*m : 2*m]

	for i := 0; i < m; i++ {
		f.pivRow[i], f.pivCol[i] = int32(i), int32(i)
		f.diag[i] = 1
	}
	clear(f.lPtr)
	clear(f.uPtr)
	clear(f.accMark)
	f.accStamp = 0
	f.trivial = true
	f.clearEtas()
}

func (f *sparseLU) clearEtas() {
	f.etaRow = f.etaRow[:0]
	f.etaPiv = f.etaPiv[:0]
	f.etaIdx = f.etaIdx[:0]
	f.etaVal = f.etaVal[:0]
	f.etaPtr = append(f.etaPtr[:0], 0)
}

func (f *sparseLU) etaLen() int { return len(f.etaRow) }

// update appends one eta transform for the pivot on basis position r with
// FTRAN column w. It refuses — forcing a refactorization — when the pivot
// is too small to absorb stably or the chain has outgrown its budget.
func (f *sparseLU) update(r int, w []float64) bool {
	piv := w[r]
	if piv < etaPivTol && piv > -etaPivTol {
		return false
	}
	if len(f.etaRow) >= etaChainCap || len(f.etaIdx) > 16*f.m+1024 {
		return false
	}
	for i, wi := range w {
		if wi != 0 && i != r {
			f.etaIdx = append(f.etaIdx, int32(i))
			f.etaVal = append(f.etaVal, wi)
		}
	}
	f.etaRow = append(f.etaRow, int32(r))
	f.etaPiv = append(f.etaPiv, piv)
	f.etaPtr = append(f.etaPtr, int32(len(f.etaIdx)))
	return true
}

// ftran solves B·out = x in place: an L pass and U back-substitution over
// the factorized basis, then the eta chain in application order. On entry x
// is row-space; on exit it is position-space.
func (f *sparseLU) ftran(x []float64) {
	m := f.m
	if !f.trivial {
		for k := 0; k < m; k++ {
			v := x[f.pivRow[k]]
			if v != 0 {
				for t := f.lPtr[k]; t < f.lPtr[k+1]; t++ {
					x[f.lIdx[t]] -= f.lVal[t] * v
				}
			}
		}
		for k := m - 1; k >= 0; k-- {
			s := x[f.pivRow[k]]
			for t := f.uPtr[k]; t < f.uPtr[k+1]; t++ {
				s -= f.uVal[t] * f.work[f.uIdx[t]]
			}
			f.work[f.pivCol[k]] = s / f.diag[k]
		}
		copy(x, f.work[:m])
	}
	for e := 0; e < len(f.etaRow); e++ {
		r := f.etaRow[e]
		t := x[r]
		if t == 0 {
			continue
		}
		t /= f.etaPiv[e]
		for q := f.etaPtr[e]; q < f.etaPtr[e+1]; q++ {
			x[f.etaIdx[q]] -= f.etaVal[q] * t
		}
		x[r] = t
	}
}

// btran solves Bᵀ·out = y in place: the transposed eta chain in reverse
// order, then a Uᵀ forward pass and Lᵀ backward pass. On entry y is
// position-space; on exit it is row-space.
func (f *sparseLU) btran(y []float64) {
	for e := len(f.etaRow) - 1; e >= 0; e-- {
		r := f.etaRow[e]
		s := y[r]
		for q := f.etaPtr[e]; q < f.etaPtr[e+1]; q++ {
			s -= f.etaVal[q] * y[f.etaIdx[q]]
		}
		y[r] = s / f.etaPiv[e]
	}
	if f.trivial {
		return
	}
	m := f.m
	for k := 0; k < m; k++ {
		t := y[f.pivCol[k]] / f.diag[k]
		f.work[f.pivRow[k]] = t
		if t != 0 {
			for q := f.uPtr[k]; q < f.uPtr[k+1]; q++ {
				y[f.uIdx[q]] -= f.uVal[q] * t
			}
		}
	}
	for k := m - 1; k >= 0; k-- {
		s := f.work[f.pivRow[k]]
		for q := f.lPtr[k]; q < f.lPtr[k+1]; q++ {
			s -= f.lVal[q] * f.work[f.lIdx[q]]
		}
		f.work[f.pivRow[k]] = s
	}
	copy(y, f.work[:m])
}

func (f *sparseLU) ftranCol(in *Instance, q int, w []float64) {
	clear(w)
	if q >= in.nStruct {
		w[q-in.nStruct] = 1
	} else {
		for k := in.colPtr[q]; k < in.colPtr[q+1]; k++ {
			w[in.colRow[k]] = in.colVal[k]
		}
	}
	f.ftran(w)
}

func (f *sparseLU) rowOfInverse(r int, dst []float64) {
	clear(dst)
	dst[r] = 1
	f.btran(dst)
}

func (f *sparseLU) clone() factorizer {
	g := &sparseLU{m: f.m, trivial: f.trivial}
	g.pivRow = append([]int32(nil), f.pivRow...)
	g.pivCol = append([]int32(nil), f.pivCol...)
	g.lPtr = append([]int32(nil), f.lPtr...)
	g.lIdx = append([]int32(nil), f.lIdx...)
	g.lVal = append([]float64(nil), f.lVal...)
	g.uPtr = append([]int32(nil), f.uPtr...)
	g.uIdx = append([]int32(nil), f.uIdx...)
	g.uVal = append([]float64(nil), f.uVal...)
	g.diag = append([]float64(nil), f.diag...)
	g.etaRow = append([]int32(nil), f.etaRow...)
	g.etaPiv = append([]float64(nil), f.etaPiv...)
	g.etaPtr = append([]int32(nil), f.etaPtr...)
	g.etaIdx = append([]int32(nil), f.etaIdx...)
	g.etaVal = append([]float64(nil), f.etaVal...)
	g.work = make([]float64, f.m)
	return g
}

func (f *sparseLU) copyFrom(src factorizer) {
	s := src.(*sparseLU)
	f.m = s.m
	f.trivial = s.trivial
	f.pivRow = append(f.pivRow[:0], s.pivRow...)
	f.pivCol = append(f.pivCol[:0], s.pivCol...)
	f.lPtr = append(f.lPtr[:0], s.lPtr...)
	f.lIdx = append(f.lIdx[:0], s.lIdx...)
	f.lVal = append(f.lVal[:0], s.lVal...)
	f.uPtr = append(f.uPtr[:0], s.uPtr...)
	f.uIdx = append(f.uIdx[:0], s.uIdx...)
	f.uVal = append(f.uVal[:0], s.uVal...)
	f.diag = append(f.diag[:0], s.diag...)
	f.etaRow = append(f.etaRow[:0], s.etaRow...)
	f.etaPiv = append(f.etaPiv[:0], s.etaPiv...)
	f.etaPtr = append(f.etaPtr[:0], s.etaPtr...)
	f.etaIdx = append(f.etaIdx[:0], s.etaIdx...)
	f.etaVal = append(f.etaVal[:0], s.etaVal...)
	f.work = resizeF64(f.work, s.m)
}

// refactor rebuilds the LU from the instance's current basis columns by
// right-looking sparse Gaussian elimination. Pivot selection is
// Markowitz-style: the sparsest live column first, then within it the
// sparsest live row whose entry passes a threshold test against the
// column's largest magnitude. Every tie breaks on the lowest index, so the
// factorization is a deterministic function of the basis.
func (f *sparseLU) refactor(in *Instance) bool {
	m := in.m
	f.m = m
	f.work = resizeF64(f.work, m)
	f.clearEtas()
	f.lPtr = append(f.lPtr[:0], 0)
	f.uPtr = append(f.uPtr[:0], 0)
	f.lIdx, f.lVal = f.lIdx[:0], f.lVal[:0]
	f.uIdx, f.uVal = f.uIdx[:0], f.uVal[:0]
	f.pivRow = f.pivRow[:0]
	f.pivCol = f.pivCol[:0]
	f.diag = f.diag[:0]
	f.trivial = false
	if m == 0 {
		return true
	}

	if cap(f.rowIdx) < m {
		f.rowIdx = make([][]int32, m)
		f.rowVal = make([][]float64, m)
		f.colRows = make([][]int32, m)
	}
	f.rowIdx = f.rowIdx[:m]
	f.rowVal = f.rowVal[:m]
	f.colRows = f.colRows[:m]
	f.colCount = resizeI32(f.colCount, m)
	f.rowLive = resizeBool(f.rowLive, m)
	f.colLive = resizeBool(f.colLive, m)
	f.acc = resizeF64(f.acc, m)
	if cap(f.accMark) < m {
		f.accMark = make([]int32, m)
		f.accStamp = 0
	}
	f.accMark = f.accMark[:m]

	// Exact initial row and column counts, then arena-backed row slices
	// with elbow room for fill-in (overflowing rows reallocate on append).
	rcnt := f.colCount // reuse as row-count scratch before colCount is set
	clear(rcnt)
	for i, bj := range in.basis {
		j := int(bj)
		if j >= in.nStruct {
			rcnt[j-in.nStruct]++
		} else {
			for k := in.colPtr[j]; k < in.colPtr[j+1]; k++ {
				rcnt[in.colRow[k]]++
			}
		}
		_ = i
	}
	total := 0
	for r := 0; r < m; r++ {
		total += int(rcnt[r])*2 + 8
	}
	if cap(f.arenaIdx) < total || cap(f.arenaCols) < total {
		both := make([]int32, 2*total)
		f.arenaIdx = both[0:total:total]
		f.arenaCols = both[total : 2*total : 2*total]
	} else {
		f.arenaIdx = f.arenaIdx[:total]
		f.arenaCols = f.arenaCols[:total]
	}
	f.arenaVal = resizeF64(f.arenaVal, total)
	off := 0
	for r := 0; r < m; r++ {
		c := int(rcnt[r])*2 + 8
		f.rowIdx[r] = f.arenaIdx[off : off : off+c]
		f.rowVal[r] = f.arenaVal[off : off : off+c]
		off += c
		f.rowLive[r] = true
		f.colLive[r] = true
	}
	for i, bj := range in.basis {
		j := int(bj)
		if j >= in.nStruct {
			r := j - in.nStruct
			f.rowIdx[r] = append(f.rowIdx[r], int32(i))
			f.rowVal[r] = append(f.rowVal[r], 1)
		} else {
			for k := in.colPtr[j]; k < in.colPtr[j+1]; k++ {
				r := in.colRow[k]
				f.rowIdx[r] = append(f.rowIdx[r], int32(i))
				f.rowVal[r] = append(f.rowVal[r], in.colVal[k])
			}
		}
	}
	clear(f.colCount)
	for r := 0; r < m; r++ {
		for _, p := range f.rowIdx[r] {
			f.colCount[p]++
		}
	}
	off = 0
	for p := 0; p < m; p++ {
		c := int(f.colCount[p])*2 + 8
		if off+c > len(f.arenaCols) {
			f.colRows[p] = make([]int32, 0, c)
		} else {
			f.colRows[p] = f.arenaCols[off : off : off+c]
			off += c
		}
	}
	for r := 0; r < m; r++ {
		for _, p := range f.rowIdx[r] {
			f.colRows[p] = append(f.colRows[p], int32(r))
		}
	}
	if cap(f.selHeap) < 4*m+64 {
		f.selHeap = make([]int64, 0, 4*m+64)
	}
	f.selHeap = f.selHeap[:0]
	for p := 0; p < m; p++ {
		f.heapPush(f.colCount[p], int32(p))
	}

	for step := 0; step < m; step++ {
		// Sparsest live column, lowest index on ties.
		bestCol, bestCount := -1, int32(0)
		if c, cnt, ok := f.heapPopValid(); ok {
			bestCol, bestCount = int(c), cnt
		}
		if bestCol < 0 || bestCount <= 0 {
			return false
		}
		// Threshold test against the column max, then sparsest row (lowest
		// row index on ties).
		amax := 0.0
		for _, r32 := range f.colRows[bestCol] {
			r := int(r32)
			if !f.rowLive[r] {
				continue
			}
			if v, ok := rowEntry(f.rowIdx[r], f.rowVal[r], int32(bestCol)); ok {
				if a := math.Abs(v); a > amax {
					amax = a
				}
			}
		}
		if amax < luPivotTol {
			return false
		}
		thresh := markowitzTau * amax
		pr, prNnz := -1, int32(math.MaxInt32)
		prVal := 0.0
		for _, r32 := range f.colRows[bestCol] {
			r := int(r32)
			if !f.rowLive[r] {
				continue
			}
			v, ok := rowEntry(f.rowIdx[r], f.rowVal[r], int32(bestCol))
			if !ok || math.Abs(v) < thresh {
				continue
			}
			nnz := int32(len(f.rowIdx[r]))
			if nnz < prNnz || (nnz == prNnz && r < pr) {
				pr, prNnz, prVal = r, nnz, v
			}
		}
		if pr < 0 {
			return false
		}

		f.pivRow = append(f.pivRow, int32(pr))
		f.pivCol = append(f.pivCol, int32(bestCol))
		f.diag = append(f.diag, prVal)
		prIdx, prVals := f.rowIdx[pr], f.rowVal[pr]
		for t, p := range prIdx {
			if int(p) != bestCol {
				f.uIdx = append(f.uIdx, p)
				f.uVal = append(f.uVal, prVals[t])
			}
		}
		f.uPtr = append(f.uPtr, int32(len(f.uIdx)))

		for _, r32 := range f.colRows[bestCol] {
			r := int(r32)
			if r == pr || !f.rowLive[r] {
				continue
			}
			v, ok := rowEntry(f.rowIdx[r], f.rowVal[r], int32(bestCol))
			if !ok {
				continue
			}
			mult := v / prVal
			f.lIdx = append(f.lIdx, int32(r))
			f.lVal = append(f.lVal, mult)
			f.eliminate(r, int32(bestCol), mult, prIdx, prVals)
		}
		f.lPtr = append(f.lPtr, int32(len(f.lIdx)))

		f.rowLive[pr] = false
		f.colLive[bestCol] = false
		for _, p := range prIdx {
			if int(p) != bestCol {
				f.colCount[p]--
				f.heapPush(f.colCount[p], p)
			}
		}
	}
	return true
}

// eliminate subtracts mult times the pivot row from row r, removing the
// pivot column's entry exactly and merging fill-in. Entry order within the
// rebuilt row is deterministic: surviving old entries first (original
// order), then fill-in in pivot-row order.
func (f *sparseLU) eliminate(r int, pcol int32, mult float64, prIdx []int32, prVals []float64) {
	if f.accStamp >= math.MaxInt32-1 {
		clear(f.accMark)
		f.accStamp = 0
	}
	f.accStamp++
	stamp := f.accStamp
	for t, p := range prIdx {
		if p != pcol {
			f.acc[p] = prVals[t]
			f.accMark[p] = stamp
		}
	}
	idx, vals := f.rowIdx[r], f.rowVal[r]
	out := 0
	for t, p := range idx {
		v := vals[t]
		if p == pcol {
			continue // eliminated exactly
		}
		if f.accMark[p] == stamp {
			v -= mult * f.acc[p]
			f.accMark[p] = -stamp // consumed
			if v == 0 {
				f.colCount[p]-- // exact cancellation: drop the entry
				f.heapPush(f.colCount[p], p)
				continue
			}
		}
		idx[out], vals[out] = p, v
		out++
	}
	idx, vals = idx[:out], vals[:out]
	for t, p := range prIdx {
		if p != pcol && f.accMark[p] == stamp {
			if v := -mult * prVals[t]; v != 0 {
				idx = append(idx, p)
				vals = append(vals, v)
				f.colRows[p] = append(f.colRows[p], int32(r))
				f.colCount[p]++
				f.heapPush(f.colCount[p], p)
			}
		}
	}
	f.rowIdx[r], f.rowVal[r] = idx, vals
}

// heapPush records column col at count in the selection heap.
func (f *sparseLU) heapPush(count, col int32) {
	k := int64(count)<<32 | int64(col)
	h := append(f.selHeap, k)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= k {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = k
	f.selHeap = h
}

// heapPopValid pops keys until one matches a live column's current count.
// ok is false when the heap runs dry (no live columns remain).
func (f *sparseLU) heapPopValid() (col, count int32, ok bool) {
	h := f.selHeap
	for len(h) > 0 {
		k := h[0]
		last := h[len(h)-1]
		h = h[:len(h)-1]
		if len(h) > 0 {
			i := 0
			for {
				l := 2*i + 1
				if l >= len(h) {
					break
				}
				if r := l + 1; r < len(h) && h[r] < h[l] {
					l = r
				}
				if h[l] >= last {
					break
				}
				h[i] = h[l]
				i = l
			}
			h[i] = last
		}
		c := int32(k)
		cnt := int32(k >> 32)
		if f.colLive[c] && f.colCount[c] == cnt {
			f.selHeap = h
			return c, cnt, true
		}
	}
	f.selHeap = h
	return 0, 0, false
}

// rowEntry scans a sparse row for position p.
func rowEntry(idx []int32, vals []float64, p int32) (float64, bool) {
	for t, q := range idx {
		if q == p {
			return vals[t], true
		}
	}
	return 0, false
}
