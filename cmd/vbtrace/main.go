// Command vbtrace generates synthetic renewable power traces and their
// forecasts, printing them as CSV or a summary table.
//
// Usage:
//
//	vbtrace -days 7 -step 15m -seed 42 -sites trio -format csv > power.csv
//	vbtrace -days 365 -summary
//	vbtrace -days 30 -forecast 24h
//	vbtrace -workload cohorts.json > apps.jsonl       # cohort app trace (v2 JSONL)
//	vbtrace -workload cohorts.json -format summary    # per-class breakdown
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	vb "github.com/vbcloud/vb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vbtrace: ")

	var (
		days       = flag.Int("days", 7, "days of trace to generate")
		step       = flag.Duration("step", 15*time.Minute, "sampling step (must divide 24h)")
		seed       = flag.Uint64("seed", vb.DefaultSeed, "random seed")
		sitesArg   = flag.String("sites", "trio", `site set: "trio" (NO/UK/PT) or "fleet" (12 sites)`)
		format     = flag.String("format", "csv", `output: "csv", "summary" or "chart"`)
		fcH        = flag.Duration("forecast", 0, "also emit forecasts at this horizon (e.g. 24h; 0 = none)")
		startArg   = flag.String("start", "2020-01-01", "trace start date (YYYY-MM-DD)")
		metricsOut = flag.String("metrics", "", "write a generation manifest (metrics JSON) to this file")
		parallel   = flag.Int("parallel", 0, "worker goroutines for trace generation (0 = all cores, 1 = serial; output is identical)")
		workload   = flag.String("workload", "", "generate an application trace from a cohort spec (JSON file): trace v2 JSONL on stdout, or a per-class breakdown with -format summary")
	)
	flag.Parse()
	vb.SetParallelism(*parallel)

	if *workload != "" {
		if err := runWorkloadTrace(*workload, *format); err != nil {
			log.Fatal(err)
		}
		return
	}

	start, err := time.Parse("2006-01-02", *startArg)
	if err != nil {
		log.Fatalf("bad -start: %v", err)
	}
	var sites []vb.SiteConfig
	switch *sitesArg {
	case "trio":
		sites = vb.EuropeanTrio()
	case "fleet":
		sites = vb.EuropeanFleet(0)
	default:
		log.Fatalf("unknown -sites %q", *sitesArg)
	}

	var reg *vb.MetricsRegistry
	if *metricsOut != "" {
		reg = vb.NewMetrics()
	}

	n := int(time.Duration(*days) * 24 * time.Hour / *step)
	world := vb.NewWorld(*seed)
	world.Obs = reg
	series, err := world.Generate(sites, start, *step, n)
	if err != nil {
		log.Fatal(err)
	}

	names := make([]string, len(sites))
	for i, s := range sites {
		names[i] = s.Name
	}

	if *fcH > 0 {
		fc := vb.NewForecaster(*seed)
		fc.Obs = reg
		for i, s := range sites {
			f, err := fc.Forecast(series[i], s.Source, *fcH, s.Name)
			if err != nil {
				log.Fatal(err)
			}
			series = append(series, f)
			names = append(names, s.Name+"-fc")
		}
	}

	if *metricsOut != "" {
		m := reg.Manifest()
		m.Seed = *seed
		m.Fleet = names
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	switch *format {
	case "csv":
		if err := vb.WriteCSV(os.Stdout, names, series...); err != nil {
			log.Fatal(err)
		}
	case "summary":
		fmt.Printf("%-12s %8s %8s %8s %8s %8s\n", "site", "mean", "median", "p99", "max", "zeros%")
		for i, name := range names {
			sum, err := vb.Summarize(series[i].Values)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %8.3f %8.3f %8.3f %8.3f %7.1f%%\n",
				name, sum.Mean, sum.P50, sum.P99, sum.Max, series[i].FractionZero(1e-9)*100)
		}
	case "chart":
		chart, err := vb.PlotMulti(series, names, vb.PlotOptions{
			Title:  fmt.Sprintf("normalized power, %d days", *days),
			YLabel: "fraction of capacity",
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(chart)
	default:
		log.Fatalf("unknown -format %q", *format)
	}
}

// runWorkloadTrace generates a cohort application trace from a spec file and
// emits it as versioned trace v2 JSONL (format "csv" is not meaningful here;
// "summary" prints the per-cohort class/size breakdown instead).
func runWorkloadTrace(specPath, format string) error {
	spec, err := vb.LoadTraceSpec(specPath)
	if err != nil {
		return err
	}
	apps, err := vb.GenerateCohortApps(*spec)
	if err != nil {
		return err
	}
	if format == "summary" {
		type agg struct {
			apps, vms, cores int
		}
		byClass := map[vb.WorkloadClass]*agg{}
		for _, a := range apps {
			for _, v := range a.VMs {
				c := byClass[v.Class]
				if c == nil {
					c = &agg{}
					byClass[v.Class] = c
				}
				c.vms++
				c.cores += v.Cores
			}
			cls := a.VMs[0].Class
			byClass[cls].apps++
		}
		fmt.Printf("cohort trace: %d apps over %.0f h (seed %d, spec %016x)\n",
			len(apps), spec.DurationHours, spec.Seed, spec.Hash())
		fmt.Printf("%-12s %8s %8s %8s\n", "class", "apps", "vms", "cores")
		for _, c := range vb.AllWorkloadClasses() {
			a := byClass[c]
			if a == nil {
				continue
			}
			fmt.Printf("%-12s %8d %8d %8d\n", c, a.apps, a.vms, a.cores)
		}
		return nil
	}
	h := vb.TraceHeader{Seed: spec.Seed, SpecHash: fmt.Sprintf("%016x", spec.Hash())}
	return vb.WriteAppTrace(os.Stdout, h, apps)
}
