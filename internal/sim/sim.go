// Package sim is the multi-site simulation engine: it drives the core
// scheduler with actual power traces and forecast bundles, executes planned
// and forced migrations, and records the per-step migration traffic that the
// paper's Table 1 and Figure 7 report.
//
// The engine distinguishes three kinds of capacity events at a site:
//
//   - planned reallocation: the scheduler's plan moves an app's cores
//     between sites (traffic = moved cores x memory per core);
//   - forced migration: actual power fell below the allocation, degradable
//     cores pause for free (the paper's harvest/spot behaviour) and stable
//     cores migrate to sites with headroom;
//   - pause: stable cores with nowhere to go pause in place, which is an
//     availability violation the result records.
package sim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/vbcloud/vb/internal/core"
	"github.com/vbcloud/vb/internal/forecast"
	"github.com/vbcloud/vb/internal/obs"
	"github.com/vbcloud/vb/internal/stats"
	"github.com/vbcloud/vb/internal/trace"
)

// Input bundles everything one policy run needs.
type Input struct {
	// Actual holds one normalized power series per site, all on the plan
	// timeline (same start, step = the scheduler's PlanStep).
	Actual []trace.Series
	// Bundles holds the forecast bundle per site (used by MIP policies).
	Bundles []*forecast.Bundle
	// TotalCores is the fully powered core count of each site.
	TotalCores float64
	// Apps are the application demands, sorted by Start.
	Apps []core.AppDemand
	// Obs, when non-nil, receives per-step metrics and structured events
	// (planned reallocations, forced migrations, pauses, shortfalls) from
	// the engine. A nil registry is a no-op.
	Obs *obs.Registry
}

// Validate reports input errors.
func (in Input) Validate() error {
	if len(in.Actual) == 0 {
		return fmt.Errorf("sim: no sites")
	}
	if len(in.Bundles) != len(in.Actual) {
		return fmt.Errorf("sim: %d bundles for %d sites", len(in.Bundles), len(in.Actual))
	}
	if in.TotalCores <= 0 {
		return fmt.Errorf("sim: non-positive core count %v", in.TotalCores)
	}
	if len(in.Apps) == 0 {
		return fmt.Errorf("sim: no applications to schedule (Input.Apps is empty)")
	}
	base := in.Actual[0]
	if base.IsEmpty() {
		return trace.ErrEmptySeries
	}
	for _, s := range in.Actual[1:] {
		if s.Step != base.Step || s.Len() != base.Len() || !s.Start.Equal(base.Start) {
			return fmt.Errorf("sim: power series disagree on time base")
		}
	}
	for _, a := range in.Apps {
		if err := a.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Result is the outcome of one policy run.
type Result struct {
	Policy core.Policy
	// Transfer is total migration traffic per plan step, in GB.
	Transfer trace.Series
	// PerApp is total migration traffic per application, in GB.
	PerApp map[int]float64
	// PlannedGB and ForcedGB split the total into scheduler-initiated
	// reallocations and reactive power-shortfall migrations.
	PlannedGB float64
	ForcedGB  float64
	// InBySite and OutBySite break the traffic down per site: a move of X
	// GB from site a to site b adds X to OutBySite[a] and InBySite[b] at
	// that step (the per-site view of the paper's Fig 4 applied to the
	// multi-VB run). Summing either across sites reproduces Transfer.
	InBySite  []trace.Series
	OutBySite []trace.Series
	// PausedStableCoreSteps counts stable cores that had to pause
	// (availability violations) integrated over steps.
	PausedStableCoreSteps float64
	// PerAppPaused breaks the paused core-steps down by application.
	PerAppPaused map[int]float64
	// PerAppDemand is each application's total demanded stable core-steps
	// over its active window; with PerAppPaused it yields availability.
	PerAppDemand map[int]float64
	// ShortfallCoreSteps counts demanded cores the scheduler could not
	// place at all.
	ShortfallCoreSteps float64
	// Placements counts scheduler invocations (placements + replans).
	Placements int
}

// Summary computes the paper's Table 1 row: total, 99th percentile, peak
// and standard deviation of per-step transfer (GB).
func (r Result) Summary() (total, p99, peak, std float64, err error) {
	s, err := stats.Summarize(r.Transfer.Values)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return s.Total, s.P99, s.Max, s.Std, nil
}

// ZeroFraction is the fraction of steps with no migration traffic (Fig 7's
// CDF intercept).
func (r Result) ZeroFraction() float64 { return r.Transfer.FractionZero(1e-9) }

// Availability returns the fraction of an application's demanded stable
// core-steps that were actually served (1 = never paused or shorted). It
// returns 1 for apps with no recorded demand.
func (r Result) Availability(appID int) float64 {
	d := r.PerAppDemand[appID]
	if d <= 0 {
		return 1
	}
	av := 1 - r.PerAppPaused[appID]/d
	if av < 0 {
		return 0
	}
	return av
}

// MeanAvailability averages Availability over all applications with
// recorded demand (1 when there are none).
func (r Result) MeanAvailability() float64 {
	if len(r.PerAppDemand) == 0 {
		return 1
	}
	var sum float64
	for id := range r.PerAppDemand {
		sum += r.Availability(id)
	}
	return sum / float64(len(r.PerAppDemand))
}

// Run simulates one policy over the inputs.
func Run(cfg core.Config, in Input) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	base := in.Actual[0]
	if cfg.PlanStep != base.Step {
		return Result{}, fmt.Errorf("sim: plan step %v != power step %v", cfg.PlanStep, base.Step)
	}
	numSites := len(in.Actual)
	T := base.Len()
	// One registry observes the whole run: the engine's (preferred) or the
	// scheduler config's; whichever is set also covers the other layer.
	reg := in.Obs
	if reg == nil {
		reg = cfg.Obs
	} else if cfg.Obs == nil {
		cfg.Obs = reg
	}
	defer obs.Time(reg, "sim.run")()
	reg.SetGauge("sim.sites", float64(numSites))
	reg.SetGauge("sim.steps", float64(T))
	if reg != nil {
		for _, b := range in.Bundles {
			b.SetObs(reg)
		}
	}
	sched, err := core.NewScheduler(cfg, numSites, T)
	if err != nil {
		return Result{}, err
	}
	vecs := newSimVecs(reg, cfg.Policy, numSites)
	util := effectiveUtil(cfg)

	res := Result{
		Policy:       cfg.Policy,
		Transfer:     trace.New(base.Start, base.Step, T),
		PerApp:       make(map[int]float64),
		PerAppPaused: make(map[int]float64),
		PerAppDemand: make(map[int]float64),
	}
	res.InBySite = make([]trace.Series, numSites)
	res.OutBySite = make([]trace.Series, numSites)
	for i := 0; i < numSites; i++ {
		res.InBySite[i] = trace.New(base.Start, base.Step, T)
		res.OutBySite[i] = trace.New(base.Start, base.Step, T)
	}

	// Per-app state.
	type appState struct {
		demand  core.AppDemand
		plan    core.Plan
		cur     []float64 // current cores per site
		endStep int
	}
	var active []*appState
	nextApp := 0
	apps := append([]core.AppDemand(nil), in.Apps...)
	sort.Slice(apps, func(i, j int) bool { return apps[i].Start.Before(apps[j].Start) })

	stepsPerDay := int(24 * time.Hour / base.Step)
	if stepsPerDay < 1 {
		stepsPerDay = 1
	}

	actCap := func(site, t int) float64 {
		return util * in.Actual[site].Values[t] * in.TotalCores
	}

	for t := 0; t < T; t++ {
		now := base.TimeAt(t)
		// predCap is the forecast at face value; stableCap is the rolling
		// minimum with lead-dependent pessimism — the paper's "place VMs
		// on sites which are predicted to have stable power in the
		// future" preference (see capacityFns).
		predCap, stableCap := capacityFns(in, base, util, now, t, stepsPerDay, T)

		// Retire finished apps.
		keep := active[:0]
		for _, a := range active {
			if t >= a.endStep {
				continue
			}
			keep = append(keep, a)
		}
		active = keep

		// Daily re-planning as forecasts refresh ("as the environment
		// changes ... we need to rerun the optimization", §3.1). All MIP
		// variants replan; they differ in lookahead horizon.
		if cfg.Policy != core.Greedy && t > 0 && t%stepsPerDay == 0 {
			for _, a := range active {
				sched.Uncommit(a.plan, t)
				plan, err := sched.Place(a.demand, t, a.endStep, predCap, stableCap, a.cur, a.plan.Alloc)
				if err != nil {
					return Result{}, err
				}
				a.plan = plan
				res.Placements++
				reg.Inc("sim.replans")
				reg.Emit(obs.Event{Type: obs.PlanComputed, Step: t, App: a.demand.ID, Site: -1, Dst: -1,
					Cores: a.demand.StableCores, Detail: "replan"})
			}
		}

		// Admit arriving apps.
		for nextApp < len(apps) && !apps[nextApp].Start.After(now) {
			d := apps[nextApp]
			nextApp++
			endStep := T
			if !d.End.IsZero() {
				if e := base.IndexAt(d.End); e >= 0 {
					endStep = e + 1
				}
			}
			if endStep <= t {
				continue // app entirely in the past
			}
			if d.StableCores <= 0 {
				continue // pure-degradable apps never migrate (no traffic)
			}
			plan, err := sched.Place(d, t, endStep, predCap, stableCap, nil, nil)
			if err != nil {
				return Result{}, err
			}
			st := &appState{demand: d, plan: plan, cur: make([]float64, numSites), endStep: endStep}
			// Initial placement is free (the VMs boot where scheduled).
			for s := 0; s < numSites; s++ {
				st.cur[s] = plan.Alloc[s][t]
			}
			active = append(active, st)
			res.Placements++
			reg.Inc("sim.admissions")
			reg.Emit(obs.Event{Type: obs.PlanComputed, Step: t, App: d.ID, Site: -1, Dst: -1,
				Cores: d.StableCores, Detail: "admit"})
		}

		// Current per-site load.
		load := make([]float64, numSites)
		for _, a := range active {
			for s := 0; s < numSites; s++ {
				load[s] += a.cur[s]
			}
		}

		// Execute planned reallocations, gated by *actual* headroom at the
		// destination: a planned move into a site that in reality has no
		// power simply does not happen this step (no phantom traffic), and
		// the cores stay at their source until the plan becomes executable.
		for _, a := range active {
			if a.plan.Alloc == nil {
				continue
			}
			for dst := 0; dst < numSites; dst++ {
				want := a.plan.Alloc[dst][t] - a.cur[dst]
				// Sub-core wants are LP rounding noise, not real moves.
				if want <= 1e-4 {
					continue
				}
				head := actCap(dst, t) - load[dst]
				if head <= 1e-9 {
					continue
				}
				want = math.Min(want, head)
				// Pull cores from sites holding more than their target.
				for src := 0; src < numSites && want > 1e-9; src++ {
					if src == dst {
						continue
					}
					excess := a.cur[src] - a.plan.Alloc[src][t]
					if excess <= 1e-9 {
						continue
					}
					x := math.Min(excess, want)
					a.cur[src] -= x
					a.cur[dst] += x
					load[src] -= x
					load[dst] += x
					want -= x
					gb := x * a.demand.MemGBPerCore
					res.Transfer.Values[t] += gb
					res.PerApp[a.demand.ID] += gb
					res.PlannedGB += gb
					res.InBySite[dst].Values[t] += gb
					res.OutBySite[src].Values[t] += gb
					reg.Emit(obs.Event{Type: obs.PlannedRealloc, Step: t, App: a.demand.ID,
						Site: src, Dst: dst, Cores: x, GB: gb})
					vecs.plannedMove(a.demand.ID, src, dst, gb)
				}
			}
		}
		for s := 0; s < numSites; s++ {
			over := load[s] - actCap(s, t)
			if over <= 1e-9 {
				continue
			}
			// All tracked cores are stable (degradable VMs pause in place
			// for free and are not tracked here): migrate the overflow to
			// sites with actual headroom.
			for _, a := range active {
				if over <= 1e-9 {
					break
				}
				move := math.Min(a.cur[s], over)
				if move <= 1e-9 {
					continue
				}
				moved := 0.0
				for d := 0; d < numSites && move-moved > 1e-9; d++ {
					if d == s {
						continue
					}
					head := actCap(d, t) - load[d]
					if head <= 1e-9 {
						continue
					}
					x := math.Min(head, move-moved)
					a.cur[s] -= x
					a.cur[d] += x
					load[s] -= x
					load[d] += x
					moved += x
					gb := x * a.demand.MemGBPerCore
					res.Transfer.Values[t] += gb
					res.PerApp[a.demand.ID] += gb
					res.ForcedGB += gb
					res.InBySite[d].Values[t] += gb
					res.OutBySite[s].Values[t] += gb
					reg.Emit(obs.Event{Type: obs.ForcedMigration, Step: t, App: a.demand.ID,
						Site: s, Dst: d, Cores: x, GB: gb})
					vecs.forcedMove(a.demand.ID, s, d, gb)
				}
				// Whatever could not move pauses in place: availability
				// violation.
				rest := move - moved
				if rest > 1e-9 {
					res.PausedStableCoreSteps += rest
					res.PerAppPaused[a.demand.ID] += rest
					reg.Emit(obs.Event{Type: obs.StablePause, Step: t, App: a.demand.ID,
						Site: s, Dst: -1, Cores: rest})
					vecs.pause(a.demand.ID, s, rest)
				}
				over -= move
			}
		}
		// Greedy has no forward plan: after forced moves, the VMs stay
		// where they landed. Rewrite the plan's future to the new reality
		// so later steps do not try to "move back".
		if cfg.Policy == core.Greedy {
			for _, a := range active {
				sched.Uncommit(a.plan, t)
				for s := 0; s < numSites; s++ {
					for tt := t; tt < a.endStep; tt++ {
						a.plan.Alloc[s][tt] = a.cur[s]
					}
				}
				sched.Commit(a.plan, t)
			}
		}

		// Record scheduler shortfall (stable demand the plan itself left
		// unplaced) and accumulate per-app demand for availability.
		for _, a := range active {
			var placed float64
			for s := 0; s < numSites; s++ {
				placed += a.cur[s]
			}
			if gap := a.demand.StableCores - placed; gap > 1e-9 {
				res.ShortfallCoreSteps += gap
				res.PerAppPaused[a.demand.ID] += gap
				reg.Emit(obs.Event{Type: obs.Shortfall, Step: t, App: a.demand.ID,
					Site: -1, Dst: -1, Cores: gap})
				vecs.short(a.demand.ID, gap)
			}
			res.PerAppDemand[a.demand.ID] += a.demand.StableCores
		}
		reg.Observe("sim.step_transfer_gb", res.Transfer.Values[t])
	}
	return res, nil
}

// effectiveUtil mirrors core.Config's utilization defaulting.
func effectiveUtil(cfg core.Config) float64 {
	if cfg.UtilTarget <= 0 || cfg.UtilTarget > 1 {
		return 0.7
	}
	return cfg.UtilTarget
}
