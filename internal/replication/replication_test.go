package replication

import (
	"math"
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	good := Config{Mode: Hot, MemGB: 32, DirtyRateGBps: 0.05}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Mode: Mode(9), MemGB: 1},
		{Mode: Hot, MemGB: 0},
		{Mode: Hot, MemGB: 1, DirtyRateGBps: -1},
		{Mode: Hot, MemGB: 1, Replicas: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if Hot.String() != "hot" || Cold.String() != "cold" {
		t.Error("mode strings")
	}
}

func TestHotTraffic(t *testing.T) {
	c := Config{Mode: Hot, MemGB: 32, DirtyRateGBps: 0.01}
	// 1 hour: seed 32 GB + 0.01*3600 = 36 GB -> 68 GB.
	got, err := c.TrafficGB(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-68) > 1e-9 {
		t.Errorf("hot traffic = %v, want 68", got)
	}
	// Two replicas double it.
	c.Replicas = 2
	got, err = c.TrafficGB(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-136) > 1e-9 {
		t.Errorf("2-replica traffic = %v, want 136", got)
	}
}

func TestColdTraffic(t *testing.T) {
	// Checkpoint hourly; dirty 0.01 GB/s writes 36 GB/h over a 32 GB
	// working set, so the unique dirty set saturates near the full memory:
	// 32*(1-exp(-36/32)) = 21.6 GB per checkpoint.
	c := Config{Mode: Cold, MemGB: 32, DirtyRateGBps: 0.01, CheckpointInterval: time.Hour}
	got, err := c.TrafficGB(4 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	per := 32 * (1 - math.Exp(-36.0/32))
	want := 32 + 4*per
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("cold traffic = %v, want %v", got, want)
	}
	// A lightly-dirtying VM ships roughly its raw delta (no saturation).
	c.DirtyRateGBps = 0.0001 // 0.36 GB/h
	got, err = c.TrafficGB(4 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(32+4*0.358)) > 0.05 {
		t.Errorf("light cold traffic = %v, want ~33.4", got)
	}
	// Cold is always cheaper than hot for the same workload.
	hot := Config{Mode: Hot, MemGB: 32, DirtyRateGBps: 0.01}
	cold := Config{Mode: Cold, MemGB: 32, DirtyRateGBps: 0.01, CheckpointInterval: time.Hour}
	hotGB, _ := hot.TrafficGB(24 * time.Hour)
	coldGB, _ := cold.TrafficGB(24 * time.Hour)
	if coldGB >= hotGB {
		t.Errorf("cold %v should undercut hot %v", coldGB, hotGB)
	}
}

func TestTrafficErrors(t *testing.T) {
	c := Config{Mode: Hot, MemGB: 32}
	if _, err := c.TrafficGB(0); err == nil {
		t.Error("zero period should error")
	}
	if _, err := (Config{Mode: Hot}).TrafficGB(time.Hour); err == nil {
		t.Error("invalid config should error")
	}
}

func TestFailoverLoss(t *testing.T) {
	if (Config{Mode: Hot, MemGB: 1}).FailoverLoss() != 0 {
		t.Error("hot failover should lose nothing")
	}
	c := Config{Mode: Cold, MemGB: 1, CheckpointInterval: 30 * time.Minute}
	if c.FailoverLoss() != 30*time.Minute {
		t.Error("cold failover should lose up to an interval")
	}
	if (Config{Mode: Cold, MemGB: 1}).FailoverLoss() != time.Hour {
		t.Error("default interval should be 1h")
	}
}

func TestBreakEvenMoves(t *testing.T) {
	// Hot standby of a 32 GB VM dirtying 0.005 GB/s over a week:
	// 32 + 0.005*604800 = 3056 GB x 1 replica.
	c := Config{Mode: Hot, MemGB: 32, DirtyRateGBps: 0.005}
	moves, err := c.BreakEvenMoves(7*24*time.Hour, 35) // ~35 GB per move
	if err != nil {
		t.Fatal(err)
	}
	// 3056/35 ~ 87: replication only wins if the app would otherwise
	// migrate ~90 times a week.
	if moves < 60 || moves > 120 {
		t.Errorf("break-even moves = %v, want ~87", moves)
	}
	if _, err := c.BreakEvenMoves(time.Hour, 0); err == nil {
		t.Error("zero per-move traffic should error")
	}
	if _, err := (Config{Mode: Hot}).BreakEvenMoves(time.Hour, 1); err == nil {
		t.Error("invalid config should error")
	}
}
