// Command vbplan schedules applications across VB sites from user-supplied
// CSV inputs, so real traces (e.g. ELIA downloads) can drive the paper's
// co-scheduler directly.
//
// Inputs:
//
//   - -power: a CSV written in the vbtrace format (header "time,site1,...")
//     holding one *normalized* power column per site. The sampling step is
//     the scheduler's plan step.
//   - -apps: a CSV with header "id,arrival,cores,stable_cores,mem_gb_per_core"
//     where arrival is RFC 3339.
//
// Output: per-step transfer summary and, with -plan, each application's
// allocation at every step.
//
// Example:
//
//	vbtrace -days 7 -step 6h > power.csv
//	vbplan -power power.csv -apps apps.csv -policy MIP-peak
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"time"

	vb "github.com/vbcloud/vb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vbplan: ")

	var (
		powerPath  = flag.String("power", "", "CSV of normalized per-site power (required)")
		appsPath   = flag.String("apps", "", "CSV of application demands (required)")
		policyArg  = flag.String("policy", "MIP", `scheduling policy ("Greedy", "MIP", "MIP-24h", "MIP-peak")`)
		cores      = flag.Float64("cores", 28000, "fully powered cores per site")
		util       = flag.Float64("util", 0.7, "admission utilization target")
		seed       = flag.Uint64("seed", vb.DefaultSeed, "seed for the forecast error process")
		showPlan   = flag.Bool("plan", false, "print per-app allocations per step")
		traceOut   = flag.String("trace", "", "write structured run events to this JSONL file")
		metricsOut = flag.String("metrics", "", "write the run manifest (metrics JSON) to this file")
		parallel   = flag.Int("parallel", 0, "worker goroutines for forecasting and simulation (0 = all cores, 1 = serial; output is identical)")
	)
	flag.Parse()
	vb.SetParallelism(*parallel)
	if *powerPath == "" || *appsPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	var policy vb.Policy
	found := false
	for _, p := range vb.AllPolicies() {
		if p.String() == *policyArg {
			policy, found = p, true
		}
	}
	if !found {
		log.Fatalf("unknown -policy %q", *policyArg)
	}

	names, series, err := readPower(*powerPath)
	if err != nil {
		log.Fatalf("reading power: %v", err)
	}
	apps, err := readApps(*appsPath)
	if err != nil {
		log.Fatalf("reading apps: %v", err)
	}

	var reg *vb.MetricsRegistry
	if *traceOut != "" || *metricsOut != "" {
		reg = vb.NewMetrics()
	}
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		traceFile = f
		reg.Tracer().SetSink(f)
	}

	// Real deployments have real forecasts; lacking them, synthesize
	// day-ahead-quality forecasts around the supplied truth.
	fc := vb.NewForecaster(*seed)
	fc.Obs = reg
	bundles := make([]*vb.Bundle, len(series))
	for i := range series {
		b, err := fc.NewBundle(series[i], vb.Wind, names[i])
		if err != nil {
			log.Fatal(err)
		}
		if err := b.UseFixedHorizon(vb.HorizonDay); err != nil {
			log.Fatal(err)
		}
		bundles[i] = b
	}

	res, err := vb.RunPolicy(vb.SchedulerConfig{
		Policy:     policy,
		PlanStep:   series[0].Step,
		UtilTarget: *util,
		Obs:        reg,
	}, vb.SimInput{
		Actual:     series,
		Bundles:    bundles,
		TotalCores: *cores,
		Apps:       apps,
		Obs:        reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := vb.FinishTraceSink(reg, traceFile); err != nil {
		log.Fatalf("trace sink failed, events lost: %v", err)
	}
	if *metricsOut != "" {
		m := reg.Manifest()
		m.Seed = *seed
		m.Policy = policy.String()
		m.Fleet = names
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	total, p99, peak, std, err := res.Summary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy %s over %d steps of %v across %d sites (%d apps)\n",
		policy, res.Transfer.Len(), series[0].Step, len(series), len(apps))
	fmt.Printf("  total=%.0f GB  p99=%.0f GB  peak=%.0f GB  std=%.0f GB  zeros=%.0f%%\n",
		total, p99, peak, std, res.ZeroFraction()*100)
	fmt.Printf("  planned=%.0f GB  forced=%.0f GB  paused stable core-steps=%.0f\n",
		res.PlannedGB, res.ForcedGB, res.PausedStableCoreSteps)

	if *showPlan {
		fmt.Println("\nper-step transfer (GB):")
		for i, v := range res.Transfer.Values {
			fmt.Printf("  %s  %8.1f\n", res.Transfer.TimeAt(i).Format(time.RFC3339), v)
		}
	}
}

// readPower loads the vbtrace CSV and validates it as normalized power.
func readPower(path string) ([]string, []vb.Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	names, series, err := vb.ReadCSV(f)
	if err != nil {
		return nil, nil, err
	}
	for i, s := range series {
		if s.Min() < 0 || s.Max() > 1.000001 {
			return nil, nil, fmt.Errorf("column %s is not normalized to [0,1] (range %.3f-%.3f)",
				names[i], s.Min(), s.Max())
		}
	}
	return names, series, nil
}

// readApps parses the application CSV.
func readApps(path string) ([]vb.AppDemand, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	header, err := r.Read()
	if err != nil {
		return nil, err
	}
	want := []string{"id", "arrival", "cores", "stable_cores", "mem_gb_per_core"}
	if len(header) != len(want) {
		return nil, fmt.Errorf("header %v, want %v", header, want)
	}
	for i := range want {
		if header[i] != want[i] {
			return nil, fmt.Errorf("header %v, want %v", header, want)
		}
	}
	var out []vb.AppDemand
	for line := 2; ; line++ {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad id %q", line, rec[0])
		}
		arrival, err := time.Parse(time.RFC3339, rec[1])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad arrival %q", line, rec[1])
		}
		nums := make([]float64, 3)
		for i := 0; i < 3; i++ {
			nums[i], err = strconv.ParseFloat(rec[2+i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad number %q", line, rec[2+i])
			}
		}
		d := vb.AppDemand{
			ID:           id,
			Cores:        nums[0],
			StableCores:  nums[1],
			MemGBPerCore: nums[2],
			Start:        arrival,
		}
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no applications in %s", path)
	}
	return out, nil
}
