// Record/replay: the request log is the daemon's external input stream
// (application arrivals and step ticks) serialized as JSONL, one operation
// per line. Replaying a log through a fresh engine — or through a snapshot
// + restore — reproduces the decision log byte-for-byte.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	vb "github.com/vbcloud/vb"
)

// requestOp is one recorded daemon input.
type requestOp struct {
	// Op is "arrive" (an application enters) or "step" (advance one plan
	// step with everything that has arrived).
	Op string `json:"op"`
	// Arrival is set for "arrive" operations.
	Arrival *vb.AppArrival `json:"arrival,omitempty"`
}

// writeRequestLog records the scenario's workload as the stream of
// operations a live client would have sent: before each step, the arrivals
// whose start time has been reached.
func writeRequestLog(w io.Writer, scn *scenario) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	base := scn.in.Actual[0]
	next := 0
	for t := 0; t < base.Len(); t++ {
		now := base.TimeAt(t)
		for next < len(scn.arrivals) && !scn.arrivals[next].Demand.Start.After(now) {
			arr := scn.arrivals[next]
			if err := enc.Encode(requestOp{Op: "arrive", Arrival: &arr}); err != nil {
				return err
			}
			next++
		}
		if err := enc.Encode(requestOp{Op: "step"}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readRequestLog parses a recorded request log.
func readRequestLog(path string) ([]requestOp, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ops []requestOp
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var op requestOp
		if err := json.Unmarshal(sc.Bytes(), &op); err != nil {
			return nil, fmt.Errorf("%s line %d: %w", path, line, err)
		}
		switch op.Op {
		case "arrive":
			if op.Arrival == nil {
				return nil, fmt.Errorf("%s line %d: arrive without arrival", path, line)
			}
		case "step":
		default:
			return nil, fmt.Errorf("%s line %d: unknown op %q", path, line, op.Op)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// skipReplayed drops the prefix of ops a restored engine has already
// consumed: the first `steps` step operations and every arrive operation
// before them (their apps are part of the snapshot).
func skipReplayed(ops []requestOp, steps int) []requestOp {
	if steps <= 0 {
		return ops
	}
	seen := 0
	for i, op := range ops {
		if op.Op != "step" {
			continue
		}
		seen++
		if seen == steps {
			return ops[i+1:]
		}
	}
	return nil
}

// replayLog drives the engine through a recorded request log, writing the
// decision log (JSONL of vb.VMStepReport). With snapAfter > 0 it stops
// after that many steps and writes a snapshot; with restorePath set it
// resumes from a snapshot and skips the already-consumed log prefix.
func replayLog(scn *scenario, logPath, decPath, snapPath, restorePath string, snapAfter int) error {
	ops, err := readRequestLog(logPath)
	if err != nil {
		return err
	}
	eng, err := scn.newEngine(restorePath)
	if err != nil {
		return err
	}
	ops = skipReplayed(ops, eng.Step())

	var dec io.Writer = os.Stdout
	if decPath != "" {
		f, err := os.Create(decPath)
		if err != nil {
			return err
		}
		defer f.Close()
		dec = f
	}
	bw := bufio.NewWriter(dec)
	defer bw.Flush()

	var pending []vb.AppArrival
	stepsDone := 0
	for _, op := range ops {
		switch op.Op {
		case "arrive":
			pending = append(pending, *op.Arrival)
		case "step":
			if eng.Done() {
				return fmt.Errorf("request log has more steps than the %d-step timeline", eng.Steps())
			}
			rep, err := eng.Advance(pending)
			if err != nil {
				return err
			}
			pending = pending[:0]
			line, err := json.Marshal(rep)
			if err != nil {
				return err
			}
			if _, err := bw.Write(append(line, '\n')); err != nil {
				return err
			}
			stepsDone++
			if snapAfter > 0 && stepsDone == snapAfter {
				if err := bw.Flush(); err != nil {
					return err
				}
				if snapPath == "" {
					return fmt.Errorf("-snapshot-after needs -snapshot <path>")
				}
				return writeSnapshot(eng, snapPath)
			}
		}
	}
	return bw.Flush()
}

// writeSnapshot atomically writes the engine's state to path.
func writeSnapshot(eng *vb.VMEngine, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := eng.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
