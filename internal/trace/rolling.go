package trace

import (
	"fmt"
	"math"
)

// Rolling-window operations. Unlike the WindowMin/WindowMax reductions
// (which downsample to one value per window), these produce a series of the
// same length where each sample is the statistic of a centered window —
// the form the scheduler's stable-capacity estimates use.

// RollingMin returns a same-length series where sample i is the minimum of
// the samples within radius of i (window 2*radius+1, shrunk at the edges).
func (s Series) RollingMin(radius int) Series {
	return s.rolling(radius, func(acc, v float64) float64 {
		if v < acc {
			return v
		}
		return acc
	}, false)
}

// RollingMax returns a same-length series of centered-window maxima.
func (s Series) RollingMax(radius int) Series {
	return s.rolling(radius, func(acc, v float64) float64 {
		if v > acc {
			return v
		}
		return acc
	}, false)
}

// RollingMean returns a same-length series of centered-window means. It is
// equivalent to Smooth and provided for symmetry.
func (s Series) RollingMean(radius int) Series {
	return s.Smooth(radius)
}

// rolling applies a fold over centered windows. When mean is true the fold
// result is divided by the window size.
func (s Series) rolling(radius int, fold func(acc, v float64) float64, mean bool) Series {
	if radius <= 0 {
		return s.Clone()
	}
	out := s.Clone()
	for i := range s.Values {
		lo, hi := i-radius, i+radius
		if lo < 0 {
			lo = 0
		}
		if hi >= s.Len() {
			hi = s.Len() - 1
		}
		acc := s.Values[lo]
		for j := lo + 1; j <= hi; j++ {
			acc = fold(acc, s.Values[j])
		}
		if mean {
			acc /= float64(hi - lo + 1)
		}
		out.Values[i] = acc
	}
	return out
}

// Lag returns the series shifted by k samples: positive k delays the series
// (sample i takes the value of sample i-k); leading samples repeat the
// first value. Negative k advances it symmetrically.
func (s Series) Lag(k int) Series {
	out := s.Clone()
	n := s.Len()
	if n == 0 || k == 0 {
		return out
	}
	for i := 0; i < n; i++ {
		j := i - k
		if j < 0 {
			j = 0
		}
		if j >= n {
			j = n - 1
		}
		out.Values[i] = s.Values[j]
	}
	return out
}

// Normalize rescales the series linearly onto [0, 1]. A constant series
// maps to all zeros.
func (s Series) Normalize() Series {
	out := s.Clone()
	if s.IsEmpty() {
		return out
	}
	lo, hi := s.Min(), s.Max()
	if hi == lo {
		for i := range out.Values {
			out.Values[i] = 0
		}
		return out
	}
	for i, v := range out.Values {
		out.Values[i] = (v - lo) / (hi - lo)
	}
	return out
}

// CrossCorrelation returns the Pearson correlation of a and b at lags
// -maxLag..+maxLag (2*maxLag+1 values): entry maxLag+k correlates a with b
// delayed by k samples. Useful for finding the offset at which two sites'
// production is most complementary.
func CrossCorrelation(a, b Series, maxLag int) ([]float64, error) {
	if err := compatible(a, b); err != nil {
		return nil, err
	}
	if maxLag < 0 {
		return nil, fmt.Errorf("trace: negative max lag %d", maxLag)
	}
	if a.Len() <= maxLag {
		return nil, fmt.Errorf("trace: series of length %d too short for lag %d", a.Len(), maxLag)
	}
	out := make([]float64, 2*maxLag+1)
	for k := -maxLag; k <= maxLag; k++ {
		out[maxLag+k] = pearsonAtLag(a.Values, b.Values, k)
	}
	return out, nil
}

// pearsonAtLag correlates x[i] with y[i-k] over the overlapping range.
func pearsonAtLag(x, y []float64, k int) float64 {
	lo, hi := 0, len(x)
	if k > 0 {
		lo = k
	} else {
		hi = len(x) + k
	}
	n := hi - lo
	if n <= 1 {
		return 0
	}
	var mx, my float64
	for i := lo; i < hi; i++ {
		mx += x[i]
		my += y[i-k]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := lo; i < hi; i++ {
		dx, dy := x[i]-mx, y[i-k]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
