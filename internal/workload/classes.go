package workload

import (
	"fmt"
	"time"
)

// Class is the SLO class of a VM. The paper's §2.3 splits applications into
// just "stable" and "degradable"; the simulator refines the stable side into
// SLO classes with different pause tolerances and pause-cost weights
// (RealTime, Interactive, Batch), while keeping the legacy two-value split
// as-is: Stable and Degradable retain their original encodings, so old CSV
// traces, gob snapshots and seed experiments are untouched.
//
// Semantics: every class except Degradable is "firm" — its cores are
// scheduled and migrated by the co-scheduler, and pausing them violates the
// class SLO with a cost proportional to the class pause weight. Degradable
// cores pause in place for free (the paper's harvest/spot behaviour). Under
// power scarcity the scheduler degrades cheap classes first: Batch before
// Interactive/Stable before RealTime.
type Class int

const (
	// Stable is the legacy firm class (§2.3's on-demand equivalents). It
	// weighs the same as Interactive; it exists so that pre-SLO traces and
	// snapshots keep their exact meaning and byte encodings.
	Stable Class = iota
	// Degradable VMs tolerate preemption and resizing (spot/harvest
	// equivalents); their cores pause for free and are never migrated.
	Degradable
	// RealTime VMs serve latency-critical traffic: no pause tolerance and
	// the highest pause cost. They are the last to degrade.
	RealTime
	// Interactive VMs serve user-facing but retryable traffic: minutes of
	// pause tolerance at the legacy stable cost.
	Interactive
	// Batch VMs run deferrable computation: hours of pause tolerance at a
	// fraction of the interactive cost. They are the first firm class to
	// degrade.
	Batch
)

// AllClasses lists every class in degradation-ladder order, most critical
// first (the order per-class reports print in).
var AllClasses = []Class{RealTime, Interactive, Stable, Batch, Degradable}

// String implements fmt.Stringer. Stable and Degradable keep their legacy
// spellings ("stable", "degradable") so CSV traces round-trip unchanged.
func (c Class) String() string {
	switch c {
	case Stable:
		return "stable"
	case Degradable:
		return "degradable"
	case RealTime:
		return "realtime"
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ParseClass is the inverse of String. It accepts exactly the five class
// names, so files written by older versions ("stable"/"degradable") parse
// unchanged.
func ParseClass(s string) (Class, error) {
	switch s {
	case "stable":
		return Stable, nil
	case "degradable":
		return Degradable, nil
	case "realtime":
		return RealTime, nil
	case "interactive":
		return Interactive, nil
	case "batch":
		return Batch, nil
	default:
		return 0, fmt.Errorf("workload: unknown class %q", s)
	}
}

// Valid reports whether c is one of the five defined classes.
func (c Class) Valid() bool {
	switch c {
	case Stable, Degradable, RealTime, Interactive, Batch:
		return true
	}
	return false
}

// Firm reports whether the class's cores are scheduled and migrated by the
// co-scheduler (everything but Degradable). Pausing firm cores is an SLO
// violation; degradable cores pause in place for free.
func (c Class) Firm() bool { return c != Degradable }

// PauseTolerance is how long the class's SLO tolerates a pause. A negative
// duration means unbounded (no SLO at all). The tolerance is metadata for
// reports and spec authors; the scheduler's degradation ladder orders by
// PauseWeight, which these tolerances motivate.
func (c Class) PauseTolerance() time.Duration {
	switch c {
	case RealTime:
		return 0
	case Interactive, Stable:
		return 15 * time.Minute
	case Batch:
		return 24 * time.Hour
	default: // Degradable and unknown
		return -1
	}
}

// PauseWeight is the scheduler's pause-cost weight: how expensive pausing
// one of this class's cores is relative to a legacy stable core. The weight
// scales the MIP shortfall penalty and orders the engines' degradation
// ladder (ascending weight pauses first). Stable is exactly 1 so legacy
// single-class demands reproduce the pre-SLO objective bit for bit.
func (c Class) PauseWeight() float64 {
	switch c {
	case RealTime:
		return 4
	case Interactive, Stable:
		return 1
	case Batch:
		return 0.25
	default: // Degradable and unknown
		return 0
	}
}
