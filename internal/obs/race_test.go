package obs

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentWriters hammers every Registry and Tracer write path
// from many goroutines at once. Run under -race (CI does), it proves the
// registry one run threads through the whole parallel pipeline is safe for
// concurrent writers, and that the exact aggregates survive contention.
func TestRegistryConcurrentWriters(t *testing.T) {
	const (
		writers = 16
		perG    = 500
	)
	reg := NewRegistry()
	var sink bytes.Buffer
	reg.Tracer().SetSink(&sink)

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				reg.Add("counter", 1)
				reg.Inc("inc")
				reg.SetGauge("gauge", float64(g))
				reg.Observe("hist", float64(i))
				reg.ObserveDuration("dur", time.Millisecond)
				reg.SetLabel("label", "v")
				reg.Emit(Event{Type: SiteStep, Step: i, App: -1, Site: g, Dst: -1, GB: 1})
				func() { defer Time(reg, "span")() }()
				// Concurrent readers race against the writers too.
				_ = reg.Counter("counter")
				_, _ = reg.Gauge("gauge")
				_, _ = reg.Histogram("hist")
				_ = reg.Tracer().Count(SiteStep)
				_ = reg.Tracer().Events()
				_ = reg.Tracer().AllStats()
			}
		}(g)
	}
	wg.Wait()

	const n = writers * perG
	if got := reg.Counter("counter"); got != n {
		t.Errorf("counter = %v, want %d", got, n)
	}
	if got := reg.Counter("inc"); got != n {
		t.Errorf("inc = %v, want %d", got, n)
	}
	if h, ok := reg.Histogram("hist"); !ok || h.Count != n {
		t.Errorf("hist count = %v, want %d", h.Count, n)
	}
	if got := reg.Tracer().Count(SiteStep); got != n {
		t.Errorf("events = %d, want %d", got, n)
	}
	if got := reg.Tracer().GBTotal(SiteStep); got != n {
		t.Errorf("GB total = %v, want %d (exact despite ring wrap)", got, n)
	}
	if err := reg.Tracer().Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	// Every event reached the JSONL sink exactly once, with unique seqs.
	events, err := ReadEvents(&sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != n {
		t.Fatalf("sink holds %d events, want %d", len(events), n)
	}
	seen := make(map[int64]bool, n)
	for _, e := range events {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d in sink", e.Seq)
		}
		seen[e.Seq] = true
	}
}

// TestTracerConcurrentEmitRingWrap checks the ring stays consistent (exact
// type totals, bounded buffer) when wrapped by concurrent emitters.
func TestTracerConcurrentEmitRingWrap(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	const writers, perG = 8, 100
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr.Emit(Event{Type: VMMoved, App: -1, Site: -1, Dst: -1, Cores: 2})
			}
		}()
	}
	wg.Wait()
	if got := tr.Count(VMMoved); got != writers*perG {
		t.Errorf("count = %d, want %d", got, writers*perG)
	}
	if got := tr.CoreTotal(VMMoved); got != writers*perG*2 {
		t.Errorf("core total = %v, want %d", got, writers*perG*2)
	}
	if ev := tr.Events(); len(ev) != 64 {
		t.Errorf("ring holds %d events, want 64 after wrap", len(ev))
	}
}
