// Package par is the simulation stack's deterministic fan-out primitive.
//
// Every parallel path in the repository — per-site trace generation, the
// experiment sweeps, the figure/table runner — is built on ForEach or Map,
// which give:
//
//   - ordered results: Map writes result i to slot i, so output is
//     independent of goroutine scheduling;
//   - first-error semantics: the error of the lowest-indexed failing task is
//     returned and later work is skipped;
//   - context cancellation: a cancelled ctx stops dispatching new tasks;
//   - a worker cap: at most `workers` tasks run concurrently (0 selects the
//     package default, which tracks GOMAXPROCS unless overridden).
//
// Determinism contract: callers must make each task's output depend only on
// its index (e.g. independent name-keyed sub-RNGs), never on shared mutable
// state or execution order. Under that contract the parallel output is
// bit-identical to the serial one for any worker count — the property the
// determinism suite in the root package asserts.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers, when positive, overrides GOMAXPROCS as the worker count
// used by ForEach/Map calls that pass workers <= 0.
var defaultWorkers atomic.Int64

// SetDefault sets the package-wide default worker count used when a call
// passes workers <= 0. n <= 0 restores the GOMAXPROCS default. CLIs expose
// this as their -parallel flag.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Default returns the effective default worker count: the value set with
// SetDefault, or GOMAXPROCS when unset.
func Default() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// resolve clamps the worker count to [1, n].
func resolve(workers, n int) int {
	if workers <= 0 {
		workers = Default()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) on at most `workers` concurrent
// goroutines (workers <= 0 selects Default()). It returns the error of the
// lowest-indexed failing task, or ctx.Err() when the context is cancelled
// first; once either happens, unstarted tasks are skipped. With one worker
// (or n <= 1) it runs inline on the calling goroutine.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = resolve(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	inner, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64 // next task index to claim
		mu       sync.Mutex
		firstErr error
		errIdx   = n // index of the lowest failing task so far
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if inner.Err() != nil {
					return // a task failed or the caller cancelled: stop claiming
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err() // non-nil only when the *caller's* context was cancelled
}

// Map runs fn for every index in [0, n) under the same scheduling and error
// semantics as ForEach and returns the results in index order. On error the
// partial results are discarded.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
