package vb

import (
	"os"
	"path/filepath"
	"testing"
)

// TestTable1ReportGolden pins the legacy-compatibility contract: the default
// Stable/Degradable Table 1 comparison at DefaultSeed must render byte-
// identically to the committed golden. The golden was captured before the
// SLO-class refactor, so any drift here means the refactor changed a legacy
// decision (RNG draw order, scheduler objective, pause ordering, ...), which
// is a bug, not a baseline to re-record.
//
// Regenerate (only for an intentional, reviewed behaviour change) with:
//
//	VB_UPDATE_GOLDEN=1 go test -run Table1ReportGolden .
func TestTable1ReportGolden(t *testing.T) {
	res, err := Table1PolicyComparison(Table1Setup{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Report()
	path := filepath.Join("testdata", "table1_seed.golden")
	if os.Getenv("VB_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with VB_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("Table 1 report diverged from the pre-refactor seed:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
