package core

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

// TestSchedulerStateRoundTrip pins the daemon crash-recovery contract at
// the scheduler layer: after placing a handful of MIP apps, an
// encode/decode cycle into a fresh scheduler reproduces the commitment
// ledgers exactly, and subsequent placements (replans of known apps and a
// brand-new app) produce bit-identical plans on both schedulers — the warm
// solver cache must survive the round trip, or replans land on different
// alternate-optimal vertices.
func TestSchedulerStateRoundTrip(t *testing.T) {
	const sites, steps = 3, 12
	orig, err := NewScheduler(validConfig(MIP), sites, steps)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 9))
	pred := constCap(400, 250, 300)
	stable := constCap(120, 250, 60)

	type placed struct {
		d    AppDemand
		plan Plan
	}
	var apps []placed
	for id := 1; id <= 6; id++ {
		d := demand(id, 30+rng.Float64()*40, 20+rng.Float64()*20, 4)
		if d.StableCores > d.Cores {
			d.StableCores = d.Cores
		}
		plan, err := orig.Place(d, 0, steps, pred, stable, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, placed{d, plan})
	}

	var buf bytes.Buffer
	if err := orig.EncodeState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := NewScheduler(validConfig(MIP), sites, steps)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.DecodeState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	for site := 0; site < sites; site++ {
		for step := 0; step < steps; step++ {
			if orig.Committed(site, step) != restored.Committed(site, step) {
				t.Fatalf("committed[%d][%d] differs: %v vs %v",
					site, step, orig.Committed(site, step), restored.Committed(site, step))
			}
		}
	}

	// Replan every app (warm path) plus one new app (cold path) on both.
	replan := append(apps, placed{d: demand(99, 55, 45, 4)})
	for _, a := range replan {
		var prev []float64
		var prevPlan [][]float64
		if a.plan.Alloc != nil {
			prev = make([]float64, sites)
			for s := range prev {
				prev[s] = a.plan.Alloc[s][3]
			}
			prevPlan = a.plan.Alloc
		}
		pa, errA := orig.Place(a.d, 3, steps, pred, stable, prev, prevPlan)
		pb, errB := restored.Place(a.d, 3, steps, pred, stable, prev, prevPlan)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("app %d: errors diverge: %v vs %v", a.d.ID, errA, errB)
		}
		if errA != nil {
			continue
		}
		for s := range pa.Alloc {
			for step := range pa.Alloc[s] {
				if pa.Alloc[s][step] != pb.Alloc[s][step] {
					t.Fatalf("app %d: alloc[%d][%d] = %v vs %v (must be bit-identical)",
						a.d.ID, s, step, pa.Alloc[s][step], pb.Alloc[s][step])
				}
			}
		}
	}
}

// TestSchedulerDecodeRejectsMismatch ensures a snapshot from a different
// fleet shape cannot be loaded silently.
func TestSchedulerDecodeRejectsMismatch(t *testing.T) {
	a, err := NewScheduler(validConfig(MIP), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.EncodeState(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := NewScheduler(validConfig(MIP), 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.DecodeState(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("site-count mismatch should be rejected")
	}
	c, err := NewScheduler(validConfig(MIP), 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DecodeState(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("step-count mismatch should be rejected")
	}
	d, err := NewScheduler(validConfig(MIP), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.DecodeState(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage payload should be rejected")
	}
}
