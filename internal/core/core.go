// Package core implements the paper's primary contribution: the network-
// and power-aware co-scheduler for multi-VB groups (§3.1, Fig 6).
//
// The scheduler follows the paper's four-step pipeline:
//
//  1. Subgraph identification — k-cliques of the site latency graph ranked
//     by combined coefficient of variation (internal/graph).
//  2. Subgraph selection and 3. Site selection — a mixed-integer program
//     (internal/mip) chooses, for each arriving application, how many cores
//     to place on each site of its group at each future plan step, using
//     power forecasts, minimizing predicted migration traffic (objective
//     O1) and optionally the peak per-step traffic (objective O2).
//  4. VM placement — within a site, the cluster packing of internal/cluster
//     applies; at this layer allocations are tracked in cores.
//
// Four policies mirror the paper's Table 1: Greedy (most-available-power
// site, no lookahead), MIP (O1 over the full horizon), MIP24h (O1 over
// rolling 24 h windows), and MIPPeak (O1 + O2).
package core

import (
	"fmt"
	"math"
	"time"

	"github.com/vbcloud/vb/internal/obs"
	"github.com/vbcloud/vb/internal/workload"
)

// Policy selects a scheduling strategy from the paper's Table 1.
type Policy int

// Scheduling policies.
const (
	// Greedy assigns each application to the single site with the most
	// currently available power.
	Greedy Policy = iota
	// MIP minimizes total predicted migration overhead (O1) over the full
	// remaining horizon.
	MIP
	// MIP24h is MIP with a rolling 24-hour lookahead, re-optimized daily.
	MIP24h
	// MIPPeak is MIP plus the peak objective (O2), trading slightly more
	// total traffic for far lower burstiness.
	MIPPeak
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Greedy:
		return "Greedy"
	case MIP:
		return "MIP"
	case MIP24h:
		return "MIP-24h"
	case MIPPeak:
		return "MIP-peak"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// AllPolicies lists the four Table 1 policies in the paper's order.
func AllPolicies() []Policy { return []Policy{Greedy, MIP24h, MIP, MIPPeak} }

// Config parameterizes the scheduler.
type Config struct {
	// Policy selects the strategy.
	Policy Policy
	// PlanStep is the granularity of the allocation timeline (e.g. 6 h).
	PlanStep time.Duration
	// Horizon caps the lookahead from an app's arrival; zero means the full
	// remaining simulation. MIP24h forces 24 h regardless.
	Horizon time.Duration
	// PeakWeight scales objective O2 for MIPPeak (zero elsewhere). Zero
	// with MIPPeak selects a default of 8.
	PeakWeight float64
	// MaxSitesPerApp bounds how many sites one application may span
	// (the paper's k, 2-5). Zero selects 3.
	MaxSitesPerApp int
	// UtilTarget is the fraction of powered cores schedulable (paper 0.7).
	// Zero selects 0.7.
	UtilTarget float64
	// MIPNodes caps branch-and-bound nodes per placement (0 = 2000).
	MIPNodes int
	// SolveDeadline, when positive, bounds each placement solve's wall
	// clock. An expired deadline never fails the placement: the scheduler
	// degrades down its fallback ladder (truncated-MIP incumbent, rounded
	// LP repair, greedy) and records the tier taken via Obs. Wall-clock
	// deadlines are inherently nondeterministic; simulations needing
	// bit-identical runs should rely on solver-pressure node derating
	// (SetSolverPressure) instead.
	SolveDeadline time.Duration
	// SolverReference routes placements through the legacy solver stack
	// (row-branching branch and bound over the dense Bland simplex) instead
	// of the warm-started revised simplex. It exists for differential
	// testing; production runs should leave it false.
	SolverReference bool
	// SolverWorkers >= 1 evaluates branch-and-bound nodes concurrently with
	// that many workers; the result is bit-identical for any worker count.
	// Zero keeps the serial solver loop.
	SolverWorkers int
	// Obs, when non-nil, receives scheduler metrics and trace events
	// (solve timings, objective values, placement counters). A nil
	// registry is a no-op and costs nothing on the hot path.
	Obs *obs.Registry
}

func (c Config) maxSites() int {
	if c.MaxSitesPerApp <= 0 {
		return 3
	}
	return c.MaxSitesPerApp
}

func (c Config) utilTarget() float64 {
	if c.UtilTarget <= 0 || c.UtilTarget > 1 {
		return 0.7
	}
	return c.UtilTarget
}

func (c Config) peakWeight() float64 {
	if c.Policy != MIPPeak {
		return 0
	}
	if c.PeakWeight <= 0 {
		return 8
	}
	return c.PeakWeight
}

func (c Config) mipNodes() int {
	if c.MIPNodes <= 0 {
		return 2000
	}
	return c.MIPNodes
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.PlanStep <= 0 {
		return fmt.Errorf("core: non-positive plan step %v", c.PlanStep)
	}
	if c.Horizon < 0 {
		return fmt.Errorf("core: negative horizon %v", c.Horizon)
	}
	switch c.Policy {
	case Greedy, MIP, MIP24h, MIPPeak:
	default:
		return fmt.Errorf("core: unknown policy %d", int(c.Policy))
	}
	return nil
}

// AppDemand is the scheduler's view of one application: aggregate cores and
// the memory that moves when they migrate.
type AppDemand struct {
	// ID identifies the application.
	ID int
	// Cores is the total cores requested.
	Cores float64
	// StableCores of those require high availability; the rest are
	// degradable and absorb power dips without migrating.
	StableCores float64
	// ClassCores optionally refines the demand by SLO class (cores per
	// class). Nil means the legacy two-class view: StableCores of Stable and
	// the remainder Degradable. When set, the firm-class cores must sum to
	// StableCores and all classes to Cores.
	ClassCores map[workload.Class]float64
	// MemGBPerCore converts migrated cores into migration bytes.
	MemGBPerCore float64
	// Start and End are the activity interval (End zero = until horizon).
	Start time.Time
	End   time.Time
}

// PauseWeight returns the demand's pause-cost weight: the core-weighted mean
// of its firm classes' pause weights. Legacy demands (nil ClassCores) weigh
// exactly 1 — the Stable class weight — so the MIP objective is bit-identical
// to the two-class scheduler's.
func (a AppDemand) PauseWeight() float64 {
	if len(a.ClassCores) == 0 {
		return 1
	}
	var wSum, cores float64
	for c, n := range a.ClassCores {
		if !c.Firm() || n <= 0 {
			continue
		}
		wSum += c.PauseWeight() * n
		cores += n
	}
	if cores <= 0 {
		return 1
	}
	return wSum / cores
}

// ClassBreakdown returns the demand's cores per SLO class. Legacy demands map
// onto {Stable, Degradable}; zero-core classes are absent.
func (a AppDemand) ClassBreakdown() map[workload.Class]float64 {
	m := make(map[workload.Class]float64, 2)
	if len(a.ClassCores) > 0 {
		for c, n := range a.ClassCores {
			if n > 0 {
				m[c] = n
			}
		}
		return m
	}
	if a.StableCores > 0 {
		m[workload.Stable] = a.StableCores
	}
	if d := a.Cores - a.StableCores; d > 0 {
		m[workload.Degradable] = d
	}
	return m
}

// Validate reports demand errors. Non-finite fields are rejected explicitly:
// a NaN (e.g. from a zero-core app's memory-per-core division) compares
// false against every threshold, so the range checks alone would let it
// through into the MIP demand vector.
func (a AppDemand) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"cores", a.Cores}, {"stable cores", a.StableCores}, {"memory per core", a.MemGBPerCore}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("core: app %d has non-finite %s (%v)", a.ID, f.name, f.v)
		}
	}
	if a.Cores <= 0 {
		return fmt.Errorf("core: app %d has no cores", a.ID)
	}
	if a.StableCores < 0 || a.StableCores > a.Cores {
		return fmt.Errorf("core: app %d stable cores %v outside [0, %v]", a.ID, a.StableCores, a.Cores)
	}
	if a.MemGBPerCore <= 0 {
		return fmt.Errorf("core: app %d has non-positive memory per core", a.ID)
	}
	if a.ClassCores != nil {
		var firm, total float64
		for c, n := range a.ClassCores {
			if !c.Valid() {
				return fmt.Errorf("core: app %d has unknown class %d", a.ID, int(c))
			}
			if math.IsNaN(n) || math.IsInf(n, 0) || n < 0 {
				return fmt.Errorf("core: app %d has invalid %v cores (%v)", a.ID, c, n)
			}
			if c.Firm() {
				firm += n
			}
			total += n
		}
		const eps = 1e-6
		if math.Abs(firm-a.StableCores) > eps {
			return fmt.Errorf("core: app %d firm class cores %v disagree with stable cores %v", a.ID, firm, a.StableCores)
		}
		if math.Abs(total-a.Cores) > eps {
			return fmt.Errorf("core: app %d class cores sum %v disagrees with cores %v", a.ID, total, a.Cores)
		}
	}
	return nil
}

// Plan is an application's allocation schedule: Alloc[s][t] cores on site s
// during global plan step t. Steps before the app's arrival are zero.
type Plan struct {
	AppID int
	// MemGBPerCore converts the plan's core movements into traffic.
	MemGBPerCore float64
	// Alloc is indexed [site][planStep].
	Alloc [][]float64
}

// MigrationGB returns the planned migration traffic at global step t: cores
// newly appearing on a site relative to the previous step, times memory per
// core.
func (p Plan) MigrationGB(t int) float64 {
	if t <= 0 {
		return 0
	}
	var gb float64
	for _, row := range p.Alloc {
		if d := row[t] - row[t-1]; d > 0 {
			gb += d * p.MemGBPerCore
		}
	}
	return gb
}

// SitesUsed returns how many sites ever receive a positive allocation.
func (p Plan) SitesUsed() int {
	n := 0
	for _, row := range p.Alloc {
		for _, v := range row {
			if v > 1e-9 {
				n++
				break
			}
		}
	}
	return n
}
