package obs

import (
	"encoding/json"
	"io"
)

// Manifest is the JSON-serializable summary of one observed run: metadata
// set by the caller (seed, policy, fleet) plus the full registry snapshot
// — flat metrics, dimensional vecs, and exact per-event-type totals. It is
// what the CLIs' -metrics flags write. The snapshot is embedded, so its
// fields serialize flat and manifests written before vecs existed still
// decode.
type Manifest struct {
	Seed   uint64   `json:"seed,omitempty"`
	Policy string   `json:"policy,omitempty"`
	Fleet  []string `json:"fleet,omitempty"`
	RegistrySnapshot
}

// Manifest snapshots the registry (and its tracer) into a Manifest. The
// caller fills Seed, Policy and Fleet. A nil registry yields a zero
// manifest.
func (r *Registry) Manifest() Manifest {
	return Manifest{RegistrySnapshot: r.Snapshot()}
}

// WriteJSON writes the manifest as indented JSON.
func (m Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
