// Package carbon accounts for the emissions the Virtual Battery design is
// ultimately about (§1: cloud computing's carbon footprint has surpassed
// aviation; all major providers pledged carbon-neutral or negative
// operation). It converts energy series into emissions under different
// sourcing strategies and quantifies the savings of running on co-located
// renewables versus the grid.
package carbon

import (
	"fmt"

	"github.com/vbcloud/vb/internal/trace"
)

// Intensity is an emissions factor in grams of CO2-equivalent per kWh.
type Intensity float64

// Representative grid carbon intensities (gCO2e/kWh).
const (
	// CoalGrid is a coal-heavy grid.
	CoalGrid Intensity = 820
	// AverageGrid is a typical mixed European grid.
	AverageGrid Intensity = 300
	// GasGrid is a combined-cycle gas grid.
	GasGrid Intensity = 490
	// WindLifecycle and SolarLifecycle are lifecycle (manufacturing)
	// footprints of the renewable sources themselves.
	WindLifecycle  Intensity = 11
	SolarLifecycle Intensity = 41
)

// EmissionsTons returns the CO2e tonnage of consuming the energy series
// (MW samples) at the given intensity.
func EmissionsTons(power trace.Series, intensity Intensity) (float64, error) {
	if power.IsEmpty() {
		return 0, trace.ErrEmptySeries
	}
	if intensity < 0 {
		return 0, fmt.Errorf("carbon: negative intensity %v", float64(intensity))
	}
	// Energy() is MWh; 1 MWh = 1000 kWh; grams -> tons is 1e-6.
	return power.Energy() * 1000 * float64(intensity) * 1e-6, nil
}

// Savings compares powering a compute load from co-located renewables
// (lifecycle intensity) against drawing the same energy from a grid.
type Savings struct {
	// RenewableTons is the lifecycle footprint of the renewable supply.
	RenewableTons float64
	// GridTons is the counterfactual grid footprint.
	GridTons float64
	// SavedTons is the difference.
	SavedTons float64
	// SavedFraction is SavedTons over GridTons.
	SavedFraction float64
}

// CompareToGrid computes the §1 argument in numbers: the emissions avoided
// by consuming the generation series on site instead of equivalent grid
// energy.
func CompareToGrid(generation trace.Series, renewable, grid Intensity) (Savings, error) {
	r, err := EmissionsTons(generation, renewable)
	if err != nil {
		return Savings{}, err
	}
	g, err := EmissionsTons(generation, grid)
	if err != nil {
		return Savings{}, err
	}
	s := Savings{RenewableTons: r, GridTons: g, SavedTons: g - r}
	if g > 0 {
		s.SavedFraction = s.SavedTons / g
	}
	return s, nil
}

// MigrationEnergyTons estimates the emissions of the WAN traffic the
// multi-VB design adds: transferGB of migration traffic at the given
// network energy intensity (kWh per GB; wide-area transport is on the
// order of 0.01-0.06 kWh/GB) and grid carbon intensity. The paper's §5
// argues this is negligible next to the ~50% losses of power transmission;
// this function lets the claim be checked.
func MigrationEnergyTons(transferGB, kwhPerGB float64, grid Intensity) (float64, error) {
	if transferGB < 0 {
		return 0, fmt.Errorf("carbon: negative transfer %v", transferGB)
	}
	if kwhPerGB < 0 {
		return 0, fmt.Errorf("carbon: negative energy per GB %v", kwhPerGB)
	}
	if grid < 0 {
		return 0, fmt.Errorf("carbon: negative intensity %v", float64(grid))
	}
	return transferGB * kwhPerGB * float64(grid) * 1e-6, nil
}
