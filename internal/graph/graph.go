// Package graph models the cluster of VB sites as a latency graph and
// implements the subgraph-identification step of the paper's scheduler
// (§3.1, Fig 6): nodes are VB sites, edges connect pairs whose latency is
// below a threshold (50 ms in the paper), and candidate placement groups are
// k-cliques — subgraphs where *every* pair is close, so an application split
// across the group never sees a high-latency hop.
package graph

import (
	"fmt"
	"sort"

	"github.com/vbcloud/vb/internal/energy"
	"github.com/vbcloud/vb/internal/stats"
	"github.com/vbcloud/vb/internal/trace"
)

// DefaultLatencyThresholdMS is the paper's 50 ms edge threshold.
const DefaultLatencyThresholdMS = 50

// Graph is a latency graph over VB sites.
type Graph struct {
	sites     []energy.SiteConfig
	threshold float64
	adj       [][]bool
	latency   [][]float64
}

// New builds the graph, connecting site pairs whose estimated latency is at
// or below thresholdMS (zero selects the 50 ms default).
func New(sites []energy.SiteConfig, thresholdMS float64) (*Graph, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("graph: no sites")
	}
	for _, s := range sites {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	if thresholdMS == 0 {
		thresholdMS = DefaultLatencyThresholdMS
	}
	if thresholdMS < 0 {
		return nil, fmt.Errorf("graph: negative latency threshold %v", thresholdMS)
	}
	g := &Graph{
		sites:     append([]energy.SiteConfig(nil), sites...),
		threshold: thresholdMS,
		adj:       make([][]bool, len(sites)),
		latency:   make([][]float64, len(sites)),
	}
	for i := range sites {
		g.adj[i] = make([]bool, len(sites))
		g.latency[i] = make([]float64, len(sites))
	}
	for i := range sites {
		for j := i + 1; j < len(sites); j++ {
			l := energy.LatencyMS(sites[i], sites[j])
			g.latency[i][j], g.latency[j][i] = l, l
			if l <= thresholdMS {
				g.adj[i][j], g.adj[j][i] = true, true
			}
		}
	}
	return g, nil
}

// N returns the number of sites.
func (g *Graph) N() int { return len(g.sites) }

// Site returns the configuration of node i.
func (g *Graph) Site(i int) energy.SiteConfig { return g.sites[i] }

// Threshold returns the latency threshold in milliseconds.
func (g *Graph) Threshold() float64 { return g.threshold }

// Connected reports whether sites i and j have an edge.
func (g *Graph) Connected(i, j int) bool { return i != j && g.adj[i][j] }

// Latency returns the estimated latency between sites i and j in ms.
func (g *Graph) Latency(i, j int) float64 { return g.latency[i][j] }

// Degree returns the number of neighbours of node i.
func (g *Graph) Degree(i int) int {
	n := 0
	for j := range g.adj[i] {
		if g.adj[i][j] {
			n++
		}
	}
	return n
}

// Cliques enumerates all cliques of exactly size k (k >= 1), each returned
// as a sorted slice of node indices. k = 1 returns every node. The paper
// uses k = 2..5.
func (g *Graph) Cliques(k int) ([][]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("graph: clique size %d must be >= 1", k)
	}
	var out [][]int
	cur := make([]int, 0, k)
	var extend func(start int)
	extend = func(start int) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := start; v < len(g.sites); v++ {
			// Prune: not enough vertices left.
			if len(g.sites)-v < k-len(cur) {
				break
			}
			ok := true
			for _, u := range cur {
				if !g.adj[u][v] {
					ok = false
					break
				}
			}
			if ok {
				cur = append(cur, v)
				extend(v + 1)
				cur = cur[:len(cur)-1]
			}
		}
	}
	extend(0)
	return out, nil
}

// RankedClique is a candidate placement group with its variability score.
type RankedClique struct {
	// Nodes are the member site indices (sorted).
	Nodes []int
	// CoV is the coefficient of variation of the group's summed power.
	CoV float64
}

// RankCliques scores each clique by the cov of the summed power of its
// members (lower = steadier = better) and returns them sorted ascending.
// powers[i] must be the power series of site i.
func (g *Graph) RankCliques(cliques [][]int, powers []trace.Series) ([]RankedClique, error) {
	if len(powers) != len(g.sites) {
		return nil, fmt.Errorf("graph: %d power series for %d sites", len(powers), len(g.sites))
	}
	out := make([]RankedClique, 0, len(cliques))
	for _, c := range cliques {
		if len(c) == 0 {
			return nil, fmt.Errorf("graph: empty clique")
		}
		series := make([]trace.Series, 0, len(c))
		for _, idx := range c {
			if idx < 0 || idx >= len(g.sites) {
				return nil, fmt.Errorf("graph: clique node %d out of range", idx)
			}
			series = append(series, powers[idx])
		}
		sum, err := trace.Sum(series...)
		if err != nil {
			return nil, err
		}
		out = append(out, RankedClique{
			Nodes: append([]int(nil), c...),
			CoV:   stats.CoV(sum.Values),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CoV != out[j].CoV {
			return out[i].CoV < out[j].CoV
		}
		return fmt.Sprint(out[i].Nodes) < fmt.Sprint(out[j].Nodes)
	})
	return out, nil
}

// CandidateGroups runs the paper's subgraph-identification step: enumerate
// cliques for each k in [kMin, kMax], rank by cov, and return up to topN
// best groups per k. powers[i] is the (predicted) power of site i.
func (g *Graph) CandidateGroups(kMin, kMax, topN int, powers []trace.Series) ([]RankedClique, error) {
	if kMin < 1 || kMax < kMin {
		return nil, fmt.Errorf("graph: bad clique size range [%d, %d]", kMin, kMax)
	}
	if topN < 1 {
		return nil, fmt.Errorf("graph: topN %d must be >= 1", topN)
	}
	var out []RankedClique
	for k := kMin; k <= kMax; k++ {
		cliques, err := g.Cliques(k)
		if err != nil {
			return nil, err
		}
		ranked, err := g.RankCliques(cliques, powers)
		if err != nil {
			return nil, err
		}
		if len(ranked) > topN {
			ranked = ranked[:topN]
		}
		out = append(out, ranked...)
	}
	return out, nil
}
