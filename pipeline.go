package vb

import (
	"context"
	"fmt"
	"time"

	"github.com/vbcloud/vb/internal/core"
	"github.com/vbcloud/vb/internal/energy"
	"github.com/vbcloud/vb/internal/forecast"
	"github.com/vbcloud/vb/internal/graph"
	"github.com/vbcloud/vb/internal/par"
	"github.com/vbcloud/vb/internal/sim"
	"github.com/vbcloud/vb/internal/workload"
)

// PipelineResult reports the end-to-end Fig 6 pipeline on a fleet: subgraph
// identification (k-cliques ranked by cov) feeding the MIP scheduler,
// compared against scheduling on a latency-feasible but variability-blind
// group.
type PipelineResult struct {
	// Chosen is the cov-ranked best 3-clique; Naive is the first
	// latency-feasible 3-clique with no variability ranking.
	Chosen, Naive []SiteConfig
	// ChosenCoV and NaiveCoV are the groups' summed-power covs.
	ChosenCoV, NaiveCoV float64
	// ChosenTotalGB and NaiveTotalGB are the MIP policy's total migration
	// overhead on each group.
	ChosenTotalGB, NaiveTotalGB float64
	// ChosenPaused and NaivePaused are the availability violations
	// (stable core-steps paused).
	ChosenPaused, NaivePaused float64
}

// FullPipeline runs the paper's whole scheduling pipeline (Fig 6) over the
// 12-site European fleet: build the latency graph, enumerate and rank
// 3-cliques by the cov of their summed predicted power (step 1), then
// schedule a week of applications on the best group with the MIP policy
// (steps 2-4) — and contrast with the first latency-feasible group picked
// without looking at variability.
func FullPipeline(seed uint64) (PipelineResult, error) {
	return FullPipelineObs(seed, nil)
}

// FullPipelineObs is FullPipeline observed by a metrics registry: trace
// generation, clique ranking, forecasting, MIP solves and both scheduler
// runs report timings, counters and events into reg. A nil registry is
// free.
func FullPipelineObs(seed uint64, reg *MetricsRegistry) (PipelineResult, error) {
	defer TimeSpan(reg, "pipeline.full")()
	w := energy.NewWorld(seed)
	w.Obs = reg
	fleet := energy.EuropeanFleet(12)
	days := 7
	fine, err := w.Generate(fleet, table1Start, time.Hour, days*24)
	if err != nil {
		return PipelineResult{}, err
	}

	// Step 1: latency graph + clique ranking by cov. A 25 ms threshold
	// keeps continental-scale structure (50 ms connects almost all of
	// Europe).
	g, err := graph.New(fleet, 25)
	if err != nil {
		return PipelineResult{}, err
	}
	powers := make([]Series, len(fleet))
	for i := range fleet {
		powers[i] = fine[i].Scale(fleet[i].CapacityMW)
	}
	rankSpan := TimeSpan(reg, "pipeline.rank_cliques")
	ranked, err := g.CandidateGroups(3, 3, 50, powers)
	rankSpan()
	if err != nil {
		return PipelineResult{}, err
	}
	reg.SetGauge("pipeline.candidate_groups", float64(len(ranked)))
	if len(ranked) == 0 {
		return PipelineResult{}, fmt.Errorf("vb: no 3-cliques under 25 ms")
	}
	best := ranked[0]
	cliques, err := g.Cliques(3)
	if err != nil {
		return PipelineResult{}, err
	}
	naive := cliques[0] // first latency-feasible group, variability-blind

	run := func(nodes []int) (totalGB, paused float64, err error) {
		series := make([]Series, len(nodes))
		bundles := make([]*forecast.Bundle, len(nodes))
		fc := forecast.New(seed)
		fc.Obs = reg
		for i, idx := range nodes {
			a, err := fine[idx].WindowMin(Table1PlanStep)
			if err != nil {
				return 0, 0, err
			}
			series[i] = a
			bundles[i], err = fc.NewBundle(a, fleet[idx].Source, fleet[idx].Name)
			if err != nil {
				return 0, 0, err
			}
			if err := bundles[i].UseFixedHorizon(forecast.HorizonDay); err != nil {
				return 0, 0, err
			}
		}
		apps, err := workload.GenerateApps(workload.AppConfig{
			Seed:           seed + 1,
			Start:          table1Start,
			Duration:       time.Duration(days) * 24 * time.Hour,
			MeanAppsPerDay: 6,
			MeanVMsPerApp:  60,
			StableFraction: 0.7,
		})
		if err != nil {
			return 0, 0, err
		}
		demands, err := appDemands(apps)
		if err != nil {
			return 0, 0, err
		}
		res, err := sim.Run(core.Config{
			Policy:         core.MIP,
			PlanStep:       Table1PlanStep,
			UtilTarget:     0.7,
			MaxSitesPerApp: 3,
			Obs:            reg,
		}, sim.Input{
			Actual:     series,
			Bundles:    bundles,
			TotalCores: float64(DefaultClusterConfig().TotalCores()),
			Apps:       demands,
			Obs:        reg,
		})
		if err != nil {
			return 0, 0, err
		}
		total, _, _, _, err := res.Summary()
		if err != nil {
			return 0, 0, err
		}
		return total, res.PausedStableCoreSteps, nil
	}

	// The two scheduler runs are independent (separate forecast bundles,
	// workloads and engine state; the shared registry is concurrency-safe),
	// so they execute concurrently with identical results to back-to-back
	// serial runs.
	type runOut struct{ totalGB, paused float64 }
	groups := [][]int{best.Nodes, naive}
	runs, err := par.Map(context.Background(), len(groups), 0, func(i int) (runOut, error) {
		total, paused, err := run(groups[i])
		return runOut{total, paused}, err
	})
	if err != nil {
		return PipelineResult{}, err
	}

	out := PipelineResult{
		ChosenCoV:     best.CoV,
		ChosenTotalGB: runs[0].totalGB,
		NaiveTotalGB:  runs[1].totalGB,
		ChosenPaused:  runs[0].paused,
		NaivePaused:   runs[1].paused,
	}
	for _, idx := range best.Nodes {
		out.Chosen = append(out.Chosen, fleet[idx])
	}
	for _, idx := range naive {
		out.Naive = append(out.Naive, fleet[idx])
	}
	ranked2, err := g.RankCliques([][]int{naive}, powers)
	if err != nil {
		return PipelineResult{}, err
	}
	out.NaiveCoV = ranked2[0].CoV
	return out, nil
}

// Report renders the pipeline comparison.
func (r PipelineResult) Report() string {
	name := func(sites []SiteConfig) string {
		s := ""
		for i, c := range sites {
			if i > 0 {
				s += "+"
			}
			s += c.Name
		}
		return s
	}
	return fmt.Sprintf(
		"Fig 6 pipeline on the 12-site fleet:\n"+
			"  cov-ranked group:   %-30s cov=%.2f total=%8.0f GB paused=%.0f\n"+
			"  variability-blind:  %-30s cov=%.2f total=%8.0f GB paused=%.0f\n",
		name(r.Chosen), r.ChosenCoV, r.ChosenTotalGB, r.ChosenPaused,
		name(r.Naive), r.NaiveCoV, r.NaiveTotalGB, r.NaivePaused)
}
