// Package cluster simulates a single Virtual Battery site: a renewable farm
// co-located with a mini data center whose compute scales with available
// power (paper §3).
//
// The model follows the paper's setup exactly:
//
//   - ~700 servers, 40 cores and 512 GB memory each;
//   - an Azure-style consolidating VM placement policy (best fit);
//   - admission control that rejects VMs beyond a 70% utilization target;
//   - when power decreases, unallocated cores are powered down first and
//     only then are VMs migrated out, in round-robin order over servers;
//   - when power increases, previously rejected/evicted VMs launch and are
//     counted as migrations into the site;
//   - migration traffic is estimated by VM memory size.
package cluster

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/vbcloud/vb/internal/workload"
)

// Config describes the hardware of one VB site.
type Config struct {
	// Servers is the machine count (paper: ~700).
	Servers int
	// CoresPerServer is the core count per machine (paper: 40).
	CoresPerServer int
	// MemPerServerGB is the memory per machine (paper: 512).
	MemPerServerGB int
	// TargetUtilization is the admission-control bound on allocated cores
	// as a fraction of currently powered cores (paper: 0.70).
	TargetUtilization float64
}

// DefaultConfig returns the paper's site configuration.
func DefaultConfig() Config {
	return Config{
		Servers:           700,
		CoresPerServer:    40,
		MemPerServerGB:    512,
		TargetUtilization: 0.70,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Servers <= 0 {
		return fmt.Errorf("cluster: non-positive server count %d", c.Servers)
	}
	if c.CoresPerServer <= 0 {
		return fmt.Errorf("cluster: non-positive cores per server %d", c.CoresPerServer)
	}
	if c.MemPerServerGB <= 0 {
		return fmt.Errorf("cluster: non-positive memory per server %d", c.MemPerServerGB)
	}
	if c.TargetUtilization <= 0 || c.TargetUtilization > 1 {
		return fmt.Errorf("cluster: target utilization %v outside (0,1]", c.TargetUtilization)
	}
	return nil
}

// TotalCores returns the fully powered core count.
func (c Config) TotalCores() int { return c.Servers * c.CoresPerServer }

// server tracks per-machine allocation.
type server struct {
	allocCores int
	allocMemGB int
	vms        map[int]workload.VM
}

// pendingVM is a VM waiting for power: either rejected at arrival or evicted
// by a power drop.
type pendingVM struct {
	vm      workload.VM
	evicted bool // true if it previously ran here (re-launch is a migration in either way)
}

// Site is a single VB site simulator. Create with New; the zero value is not
// usable.
type Site struct {
	cfg     Config
	servers []server
	where   map[int]int // vmID -> server index
	powered int         // cores currently powered
	alloc   int         // cores currently allocated (cached sum)
	pending []pendingVM
	// evictCursor implements the paper's round-robin eviction order.
	evictCursor int
}

// New returns an empty, fully powered site.
func New(cfg Config) (*Site, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Site{
		cfg:     cfg,
		servers: make([]server, cfg.Servers),
		where:   make(map[int]int),
		powered: cfg.TotalCores(),
	}
	for i := range s.servers {
		s.servers[i].vms = make(map[int]workload.VM)
	}
	return s, nil
}

// Config returns the site configuration.
func (s *Site) Config() Config { return s.cfg }

// AllocatedCores returns the cores currently allocated to running VMs.
func (s *Site) AllocatedCores() int { return s.alloc }

// PoweredCores returns the cores currently powered.
func (s *Site) PoweredCores() int { return s.powered }

// Running returns the number of running VMs.
func (s *Site) Running() int { return len(s.where) }

// Pending returns the number of VMs waiting for power.
func (s *Site) Pending() int { return len(s.pending) }

// Utilization returns allocated cores over total cores.
func (s *Site) Utilization() float64 {
	return float64(s.AllocatedCores()) / float64(s.cfg.TotalCores())
}

// floorEps truncates x to an integer the way int(x) does, except that a
// product which float arithmetic landed a hair below an exact integer
// (0.70 × 19600 = 13719.999999999998) is rescued onto it. The epsilon is
// far below one core, so genuine fractional results still truncate.
func floorEps(x float64) int {
	return int(math.Floor(x + 1e-9))
}

// admissionLimit is the maximum allocated cores admission control allows at
// the current power level.
func (s *Site) admissionLimit() int {
	return floorEps(s.cfg.TargetUtilization * float64(s.powered))
}

// place puts a VM on the best-fit server (the most loaded server that still
// fits, maximizing consolidation as Azure's allocator does). It returns
// false if no server fits or admission control refuses.
func (s *Site) place(vm workload.VM) bool {
	if s.AllocatedCores()+vm.Cores > s.admissionLimit() {
		return false
	}
	best := -1
	bestFree := 1 << 30
	for i := range s.servers {
		freeCores := s.cfg.CoresPerServer - s.servers[i].allocCores
		freeMem := s.cfg.MemPerServerGB - s.servers[i].allocMemGB
		if vm.Cores <= freeCores && vm.MemoryGB <= freeMem && freeCores < bestFree {
			best, bestFree = i, freeCores
		}
	}
	if best < 0 {
		return false
	}
	s.servers[best].allocCores += vm.Cores
	s.servers[best].allocMemGB += vm.MemoryGB
	s.servers[best].vms[vm.ID] = vm
	s.where[vm.ID] = best
	s.alloc += vm.Cores
	return true
}

// Remove deletes a running VM (normal departure). It reports whether the VM
// was running.
func (s *Site) Remove(vmID int) bool {
	idx, ok := s.where[vmID]
	if !ok {
		return false
	}
	vm := s.servers[idx].vms[vmID]
	s.servers[idx].allocCores -= vm.Cores
	s.servers[idx].allocMemGB -= vm.MemoryGB
	s.alloc -= vm.Cores
	delete(s.servers[idx].vms, vmID)
	delete(s.where, vmID)
	return true
}

// StepResult reports what happened in one simulation step.
type StepResult struct {
	// OutGB is migration traffic leaving the site (evictions).
	OutGB float64
	// InGB is migration traffic entering the site (launches of previously
	// rejected or evicted VMs).
	InGB float64
	// Evicted, Launched, RejectedNew, Departed count VM events. Launched
	// counts launches from the pending queue; RejectedNew counts fresh
	// arrivals that could not start immediately.
	Evicted     int
	Launched    int
	RejectedNew int
	Departed    int
}

// Step advances the site to `now`: departs finished VMs, applies the new
// power fraction (evicting if needed), admits fresh arrivals, and launches
// pending VMs into any remaining capacity.
func (s *Site) Step(now time.Time, powerFrac float64, arrivals []workload.VM) StepResult {
	var res StepResult

	// 1) Departures: running VMs whose lifetime ended.
	var done []int
	for id, idx := range s.where {
		vm := s.servers[idx].vms[id]
		if end := vm.End(); !end.IsZero() && !end.After(now) {
			done = append(done, id)
		}
	}
	sort.Ints(done) // determinism
	for _, id := range done {
		s.Remove(id)
		res.Departed++
	}
	// Drop pending VMs whose lifetime would already be over.
	kept := s.pending[:0]
	for _, p := range s.pending {
		if end := p.vm.End(); !end.IsZero() && !end.After(now) {
			continue
		}
		kept = append(kept, p)
	}
	s.pending = kept

	// 2) Power change.
	if powerFrac < 0 {
		powerFrac = 0
	}
	if powerFrac > 1 {
		powerFrac = 1
	}
	s.powered = floorEps(powerFrac * float64(s.cfg.TotalCores()))
	// Evict while allocation exceeds powered cores: unallocated cores were
	// implicitly powered down first (they are not counted in allocation).
	res.OutGB, res.Evicted = s.evictDown()

	// 3) Fresh arrivals.
	for _, vm := range arrivals {
		if !s.place(vm) {
			s.pending = append(s.pending, pendingVM{vm: vm})
			res.RejectedNew++
		}
	}

	// 4) Launch pending VMs (oldest first) into remaining headroom. Every
	// launch is a migration into the site.
	still := s.pending[:0]
	for _, p := range s.pending {
		if s.place(p.vm) {
			res.InGB += float64(p.vm.MemoryGB)
			res.Launched++
		} else {
			still = append(still, p)
		}
	}
	s.pending = still
	return res
}

// evictDown migrates VMs out, in round-robin order over servers, until the
// allocated cores fit under the powered cores. It returns the traffic and
// eviction count, and queues evicted VMs for relaunch when power returns.
func (s *Site) evictDown() (outGB float64, evicted int) {
	if len(s.servers) == 0 {
		return 0, 0
	}
	for s.AllocatedCores() > s.powered {
		moved := false
		// One full round-robin sweep: take one VM from each non-empty
		// server starting at the cursor.
		for scan := 0; scan < len(s.servers); scan++ {
			idx := (s.evictCursor + scan) % len(s.servers)
			srv := &s.servers[idx]
			if len(srv.vms) == 0 {
				continue
			}
			// Pick the smallest ID for determinism.
			vmID := -1
			for id := range srv.vms {
				if vmID < 0 || id < vmID {
					vmID = id
				}
			}
			vm := srv.vms[vmID]
			s.Remove(vmID)
			s.pending = append(s.pending, pendingVM{vm: vm, evicted: true})
			outGB += float64(vm.MemoryGB)
			evicted++
			moved = true
			s.evictCursor = (idx + 1) % len(s.servers)
			if s.AllocatedCores() <= s.powered {
				return outGB, evicted
			}
		}
		if !moved {
			break // nothing left to evict
		}
	}
	return outGB, evicted
}

// Admit places a VM immediately, respecting admission control and server
// fit, without the pending-queue machinery of Step. It reports success.
// Used by the VM-level multi-site engine, which decides itself where
// rejected VMs go.
func (s *Site) Admit(vm workload.VM) bool {
	return s.place(vm)
}

// SetPowerEvict applies a new power fraction and evicts VMs round-robin
// until the allocation fits under the powered cores, returning the evicted
// VMs. Unlike Step, evicted VMs are NOT queued for relaunch here — the
// caller (e.g. a multi-site engine) decides where they go.
func (s *Site) SetPowerEvict(powerFrac float64) []workload.VM {
	// NaN compares false against both bounds below and would otherwise
	// poison s.powered for the rest of the run; treat any non-finite power
	// reading as a blackout, the conservative interpretation.
	if math.IsNaN(powerFrac) || math.IsInf(powerFrac, -1) {
		powerFrac = 0
	}
	if powerFrac < 0 {
		powerFrac = 0
	}
	if powerFrac > 1 {
		powerFrac = 1
	}
	s.powered = floorEps(powerFrac * float64(s.cfg.TotalCores()))
	before := len(s.pending)
	s.evictDown()
	// evictDown queues evictions on s.pending; claim them back.
	evicted := make([]workload.VM, 0, len(s.pending)-before)
	for _, p := range s.pending[before:] {
		evicted = append(evicted, p.vm)
	}
	s.pending = s.pending[:before]
	return evicted
}

// Holds reports whether the given VM is currently running on this site.
func (s *Site) Holds(vmID int) bool {
	_, ok := s.where[vmID]
	return ok
}
