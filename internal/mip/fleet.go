package mip

import (
	"math"
	"math/rand"

	"github.com/vbcloud/vb/internal/lp"
)

// FleetConfig sizes a synthetic fleet-scale planning MIP. The paper's own
// experiments plan over 3 sites; the north-star regime is hundreds of
// modular renewable sites and tens of thousands of apps, which this
// generator reaches by aggregating apps into placement cohorts (a fleet
// scheduler does the same — individual apps are far smaller than a site).
type FleetConfig struct {
	Sites int // modular sites (>= 1)
	Apps  int // applications, aggregated into cohorts of ~CohortSize
	Steps int // planning horizon steps (0 = default 4)
	// CohortSize is how many apps share one placement cohort (0 = 200).
	CohortSize int
	// Candidates is how many candidate sites each cohort may run on (0 = 3).
	Candidates int
	Seed       int64
}

// FleetProblem builds the planning MIP for cfg:
//
//   - one continuous allocation variable per (cohort, candidate site, step):
//     cores of that cohort served at that site during that step;
//   - one binary commissioning indicator per sampled site: a site can serve
//     load only if it is commissioned, and commissioning carries a fixed
//     cost (the modular-DC buildout decision);
//   - per (site, step) renewable capacity rows coupling every cohort
//     allocation at that site against a time-varying supply profile;
//   - per (cohort, step) demand rows requiring the cohort's cores be served
//     across its candidate sites.
//
// Constraint rows therefore scale as Sites·Steps + Cohorts·Steps and the
// matrix is extremely sparse (each column touches two rows plus a linking
// row), which is exactly the structure that breaks an m×m dense basis
// inverse: at 200 sites x 20k apps the basis has m > 1000 and the dense
// representation needs m² floats per instance while the sparse LU stays
// near the nonzero count.
func FleetProblem(cfg FleetConfig) Problem {
	rng := rand.New(rand.NewSource(cfg.Seed))
	steps := cfg.Steps
	if steps <= 0 {
		steps = 4
	}
	cohortSize := cfg.CohortSize
	if cohortSize <= 0 {
		cohortSize = 200
	}
	cand := cfg.Candidates
	if cand <= 0 {
		cand = 3
	}
	cohorts := cfg.Apps / cohortSize
	if cohorts < 8 {
		cohorts = 8
	}
	if cand > cfg.Sites {
		cand = cfg.Sites
	}

	// Binary indicators: a sampled subset of sites carries an explicit
	// commissioning decision (enough binaries for real branching without
	// the tree itself dominating the benchmark).
	nBin := 12
	if nBin > cfg.Sites {
		nBin = cfg.Sites
	}

	nCont := cohorts * cand * steps
	n := nCont + nBin
	p := Problem{
		Problem: lp.Problem{
			NumVars:   n,
			Objective: make([]float64, n),
			Lower:     make([]float64, n),
			Upper:     make([]float64, n),
		},
		Integer: make([]bool, n),
	}

	// Candidate sites per cohort: a deterministic stride sample so load
	// spreads across the whole fleet.
	candSite := make([]int, cohorts*cand)
	for c := 0; c < cohorts; c++ {
		for k := 0; k < cand; k++ {
			candSite[c*cand+k] = (c*7 + k*k + k) % cfg.Sites
		}
	}
	// Which binary (if any) governs each site. Sites 0..nBin-1 carry the
	// explicit commissioning decision; the rest are always-on.
	siteBin := func(s int) int {
		if s < nBin {
			return s
		}
		return -1
	}

	varOf := func(c, k, t int) int { return (c*cand+k)*steps + t }
	for c := 0; c < cohorts; c++ {
		for k := 0; k < cand; k++ {
			// Serving cost varies by site (transmission distance, efficiency).
			base := 1 + rng.Float64()*2
			for t := 0; t < steps; t++ {
				j := varOf(c, k, t)
				p.Objective[j] = base * (1 + 0.1*math.Sin(float64(t)))
				p.Upper[j] = math.Inf(1)
			}
		}
	}
	for b := 0; b < nBin; b++ {
		j := nCont + b
		p.Objective[j] = 40 + rng.Float64()*20 // commissioning cost
		p.Upper[j] = 1
		p.Integer[j] = true
	}

	// Demand per cohort-step (cores).
	demand := make([]float64, cohorts*steps)
	for c := 0; c < cohorts; c++ {
		base := float64(cohortSize) * (0.4 + 0.4*rng.Float64())
		for t := 0; t < steps; t++ {
			demand[c*steps+t] = base * (0.8 + 0.2*math.Sin(float64(c+t)))
		}
	}
	// Renewable capacity per site-step: a fraction of the demand that could
	// be routed to the site. Each cohort has `cand` candidates each able to
	// carry ~60% of the local load, so the fleet is always feasible but no
	// single site can absorb its whole neighborhood — the LP must split.
	routable := make([]float64, cfg.Sites*steps)
	for ci := 0; ci < cohorts; ci++ {
		for k := 0; k < cand; k++ {
			s := candSite[ci*cand+k]
			for t := 0; t < steps; t++ {
				routable[s*steps+t] += demand[ci*steps+t]
			}
		}
	}

	// Capacity rows: for each (site, step), sum of allocations there <= cap
	// (and for governed sites, <= cap * indicator).
	for s := 0; s < cfg.Sites; s++ {
		capScale := 0.55 + 0.25*rng.Float64()
		for t := 0; t < steps; t++ {
			c := lp.Constraint{Coeffs: make([]float64, n), Sense: lp.LE}
			touched := false
			for ci := 0; ci < cohorts; ci++ {
				for k := 0; k < cand; k++ {
					if candSite[ci*cand+k] == s {
						c.Coeffs[varOf(ci, k, t)] = 1
						touched = true
					}
				}
			}
			if !touched {
				continue
			}
			siteCap := routable[s*steps+t] * capScale * (0.9 + 0.1*math.Sin(float64(s+t)))
			if b := siteBin(s); b >= 0 {
				c.Coeffs[nCont+b] = -siteCap
				c.RHS = 0
			} else {
				c.RHS = siteCap
			}
			p.Constraints = append(p.Constraints, c)
		}
	}
	// Demand rows: for each (cohort, step), allocations across candidates
	// must meet the cohort demand.
	for ci := 0; ci < cohorts; ci++ {
		for t := 0; t < steps; t++ {
			c := lp.Constraint{Coeffs: make([]float64, n), Sense: lp.GE, RHS: demand[ci*steps+t]}
			for k := 0; k < cand; k++ {
				c.Coeffs[varOf(ci, k, t)] = 1
			}
			p.Constraints = append(p.Constraints, c)
		}
	}
	return p
}
