package power

import (
	"math"
	"testing"
	"time"

	"github.com/vbcloud/vb/internal/cluster"
	"github.com/vbcloud/vb/internal/trace"
)

func TestValidate(t *testing.T) {
	if err := DefaultServerModel().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	bad := []ServerModel{
		{IdleWatts: -1, PeakWatts: 100},
		{IdleWatts: 100, PeakWatts: 100},
		{IdleWatts: 100, PeakWatts: 400, DVFSStates: []float64{0.8, 0.6}},
		{IdleWatts: 100, PeakWatts: 400, DVFSStates: []float64{0.5, 1.2}},
		{IdleWatts: 100, PeakWatts: 400, DVFSStates: []float64{0}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestDraw(t *testing.T) {
	m := DefaultServerModel()
	idle, err := m.Draw(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if idle != 120 {
		t.Errorf("idle draw = %v, want 120", idle)
	}
	peak, err := m.Draw(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if peak != 400 {
		t.Errorf("peak draw = %v, want 400", peak)
	}
	// Half frequency cuts active power by 8x.
	half, err := m.Draw(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := 120 + 280*0.125
	if math.Abs(half-want) > 1e-9 {
		t.Errorf("half-freq draw = %v, want %v", half, want)
	}
	if _, err := m.Draw(-0.1, 1); err == nil {
		t.Error("bad utilization should error")
	}
	if _, err := m.Draw(0.5, 0); err == nil {
		t.Error("bad frequency should error")
	}
	if _, err := (ServerModel{}).Draw(0.5, 1); err == nil {
		t.Error("invalid model should error")
	}
}

func TestBestDVFS(t *testing.T) {
	m := DefaultServerModel()
	f, err := m.BestDVFS(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if f != 0.6 {
		t.Errorf("BestDVFS(0.5) = %v, want 0.6", f)
	}
	f, _ = m.BestDVFS(0.7)
	if f != 0.8 {
		t.Errorf("BestDVFS(0.7) = %v, want 0.8", f)
	}
	f, _ = m.BestDVFS(1.0)
	if f != 1.0 {
		t.Errorf("BestDVFS(1.0) = %v, want 1.0", f)
	}
	noDVFS := ServerModel{IdleWatts: 100, PeakWatts: 300}
	f, _ = noDVFS.BestDVFS(0.3)
	if f != 1 {
		t.Errorf("no-DVFS BestDVFS = %v, want 1", f)
	}
	if _, err := m.BestDVFS(2); err == nil {
		t.Error("bad throughput should error")
	}
}

func TestSiteDraw(t *testing.T) {
	m := DefaultServerModel()
	snap := cluster.Snapshot{
		Servers:         10,
		OccupiedServers: 2,
		PoweredCores:    40, // 4 servers powered at 10 cores each
		AllocatedCores:  10, // spread over the 2 occupied: 50% util
	}
	kw, err := SiteDraw(m, snap, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 2 servers at 50% util: 2 x (120 + 280*0.5) = 520 W; 2 idle-on: 240 W.
	want := (2*(120+280*0.5) + 2*120) / 1000
	if math.Abs(kw-want) > 1e-9 {
		t.Errorf("site draw = %v kW, want %v", kw, want)
	}
	if _, err := SiteDraw(m, snap, 0); err == nil {
		t.Error("bad cores per server should error")
	}
}

func TestConsolidationSaving(t *testing.T) {
	m := DefaultServerModel()
	// 25 cores allocated, 100 powered, 10 servers x 10 cores.
	cons, spread, err := ConsolidationSaving(m, 25, 100, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Consolidated: 2 full (800 W) + 1 at 50% (260 W) = 1.06 kW.
	if math.Abs(cons-1.06) > 1e-9 {
		t.Errorf("consolidated = %v kW, want 1.06", cons)
	}
	// Spread: 10 servers at 25% util: 10 x (120+280*0.25) = 1.9 kW.
	if math.Abs(spread-1.9) > 1e-9 {
		t.Errorf("spread = %v kW, want 1.9", spread)
	}
	if cons >= spread {
		t.Error("consolidation must save power")
	}
	if _, _, err := ConsolidationSaving(m, 1, 1, 0, 10); err == nil {
		t.Error("bad shape should error")
	}
	if _, _, err := ConsolidationSaving(m, 1000, 10, 2, 10); err == nil {
		t.Error("overful allocation should error")
	}
	// Zero powered servers: spread side is zero.
	_, spread, err = ConsolidationSaving(m, 5, 0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if spread != 0 {
		t.Errorf("spread with no powered servers = %v", spread)
	}
}

func TestEnergyKWh(t *testing.T) {
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	draw := trace.FromValues(start, 30*time.Minute, []float64{10, 10, 20, 20})
	// (10+10)*0.5 + (20+20)*0.5 = 30 kWh.
	if got := EnergyKWh(draw); math.Abs(got-30) > 1e-9 {
		t.Errorf("energy = %v kWh, want 30", got)
	}
}
