package sim

import (
	"strconv"

	"github.com/vbcloud/vb/internal/core"
	"github.com/vbcloud/vb/internal/obs"
	"github.com/vbcloud/vb/internal/workload"
)

// simVecs bundles the engine's dimensional metrics with the label strings
// they share: the policy name, one precomputed label per site index, and a
// lazily cached label per app ID. A nil *simVecs (no registry) makes every
// record method a no-op, so the hot loop stays branch-light and — critical
// for the nil-registry zero-allocation property — builds no label slices
// at the call sites.
type simVecs struct {
	policy string
	sites  []string
	apps   map[int]string
	// planned and forced break migration traffic down by directed
	// src→dst site edge; transfer breaks it down by app.
	planned  *obs.CounterVec
	forced   *obs.CounterVec
	transfer *obs.CounterVec
	// paused attributes availability violations to the app and the site
	// where the cores stalled; shortfall attributes unplaced demand to the
	// app (no site: the plan never chose one).
	paused    *obs.CounterVec
	shortfall *obs.CounterVec
	// The by-class vecs break violations and traffic down by SLO class;
	// classLabels caches the class-name strings.
	classLabels   map[workload.Class]string
	pausedCls     *obs.CounterVec
	shortfallCls  *obs.CounterVec
	transferByCls *obs.CounterVec
}

// newSimVecs returns nil when reg is nil, so callers hold one nil-check at
// construction instead of one per emission.
func newSimVecs(reg *obs.Registry, policy core.Policy, numSites int) *simVecs {
	if reg == nil {
		return nil
	}
	v := &simVecs{policy: policy.String(), apps: map[int]string{}}
	v.sites = make([]string, numSites)
	for i := range v.sites {
		v.sites[i] = strconv.Itoa(i)
	}
	v.planned = reg.NewCounterVec("sim.planned_gb", "policy", "src", "dst")
	v.forced = reg.NewCounterVec("sim.forced_gb", "policy", "src", "dst")
	v.transfer = reg.NewCounterVec("sim.transfer_gb", "policy", "app")
	v.paused = reg.NewCounterVec("sim.paused_core_steps", "policy", "app", "site")
	v.shortfall = reg.NewCounterVec("sim.shortfall_core_steps", "policy", "app")
	v.classLabels = map[workload.Class]string{}
	v.pausedCls = reg.NewCounterVec("sim.paused_core_steps_by_class", "policy", "class")
	v.shortfallCls = reg.NewCounterVec("sim.shortfall_core_steps_by_class", "policy", "class")
	v.transferByCls = reg.NewCounterVec("sim.transfer_gb_by_class", "policy", "class")
	return v
}

func (v *simVecs) class(c workload.Class) string {
	s, ok := v.classLabels[c]
	if !ok {
		s = c.String()
		v.classLabels[c] = s
	}
	return s
}

func (v *simVecs) app(id int) string {
	s, ok := v.apps[id]
	if !ok {
		s = strconv.Itoa(id)
		v.apps[id] = s
	}
	return s
}

// plannedMove records one scheduler-initiated core move.
func (v *simVecs) plannedMove(app, src, dst int, gb float64) {
	if v == nil {
		return
	}
	v.planned.Add(gb, v.policy, v.sites[src], v.sites[dst])
	v.transfer.Add(gb, v.policy, v.app(app))
}

// forcedMove records one reactive power-shortfall migration.
func (v *simVecs) forcedMove(app, src, dst int, gb float64) {
	if v == nil {
		return
	}
	v.forced.Add(gb, v.policy, v.sites[src], v.sites[dst])
	v.transfer.Add(gb, v.policy, v.app(app))
}

// pause records stable cores pausing in place at a site.
func (v *simVecs) pause(app, site int, cores float64) {
	if v == nil {
		return
	}
	v.paused.Add(cores, v.policy, v.app(app), v.sites[site])
}

// short records demanded stable cores the plan left unplaced.
func (v *simVecs) short(app int, cores float64) {
	if v == nil {
		return
	}
	v.shortfall.Add(cores, v.policy, v.app(app))
}

// pauseClass records paused core-steps attributed to one SLO class.
func (v *simVecs) pauseClass(c workload.Class, cores float64) {
	if v == nil {
		return
	}
	v.pausedCls.Add(cores, v.policy, v.class(c))
}

// shortClass records shortfall core-steps attributed to one SLO class.
func (v *simVecs) shortClass(c workload.Class, cores float64) {
	if v == nil {
		return
	}
	v.shortfallCls.Add(cores, v.policy, v.class(c))
}

// transferClass records migration traffic attributed to one SLO class.
func (v *simVecs) transferClass(c workload.Class, gb float64) {
	if v == nil {
		return
	}
	v.transferByCls.Add(gb, v.policy, v.class(c))
}

// vmVecs is the VM-level engine's counterpart to simVecs. Moves from a
// displaced state carry src = -1; they are labeled "none" so re-homes stay
// distinguishable from site-to-site reconciles in the flow breakdown.
type vmVecs struct {
	policy      string
	sites       []string
	apps        map[int]string
	moves       *obs.CounterVec
	evicted     *obs.CounterVec
	failed      *obs.CounterVec
	classLabels map[workload.Class]string
	evictedCls  *obs.CounterVec
	failedCls   *obs.CounterVec
	movesCls    *obs.CounterVec
}

func newVMVecs(reg *obs.Registry, policy core.Policy, numSites int) *vmVecs {
	if reg == nil {
		return nil
	}
	v := &vmVecs{policy: policy.String(), apps: map[int]string{}}
	v.sites = make([]string, numSites)
	for i := range v.sites {
		v.sites[i] = strconv.Itoa(i)
	}
	v.moves = reg.NewCounterVec("vmlevel.moves_gb", "policy", "src", "dst")
	v.evicted = reg.NewCounterVec("vmlevel.evicted", "policy", "site")
	v.failed = reg.NewCounterVec("vmlevel.failed_placements", "policy", "app")
	v.classLabels = map[workload.Class]string{}
	v.evictedCls = reg.NewCounterVec("vmlevel.evicted_by_class", "policy", "class")
	v.failedCls = reg.NewCounterVec("vmlevel.failed_by_class", "policy", "class")
	v.movesCls = reg.NewCounterVec("vmlevel.moves_gb_by_class", "policy", "class")
	return v
}

func (v *vmVecs) class(c workload.Class) string {
	s, ok := v.classLabels[c]
	if !ok {
		s = c.String()
		v.classLabels[c] = s
	}
	return s
}

func (v *vmVecs) app(id int) string {
	s, ok := v.apps[id]
	if !ok {
		s = strconv.Itoa(id)
		v.apps[id] = s
	}
	return s
}

func (v *vmVecs) site(i int) string {
	if i < 0 {
		return "none"
	}
	return v.sites[i]
}

// move records one inter-site VM migration (src may be -1 for re-homes).
func (v *vmVecs) move(src, dst int, gb float64) {
	if v == nil {
		return
	}
	v.moves.Add(gb, v.policy, v.site(src), v.sites[dst])
}

// evict records one power-driven VM eviction at a site.
func (v *vmVecs) evict(site int) {
	if v == nil {
		return
	}
	v.evicted.Inc(v.policy, v.sites[site])
}

// fail records one VM-step where a stable VM could not run anywhere.
func (v *vmVecs) fail(app int) {
	if v == nil {
		return
	}
	v.failed.Inc(v.policy, v.app(app))
}

// moveClass records one migration's traffic against the VM's SLO class.
func (v *vmVecs) moveClass(c workload.Class, gb float64) {
	if v == nil {
		return
	}
	v.movesCls.Add(gb, v.policy, v.class(c))
}

// evictClass records one eviction against the VM's SLO class.
func (v *vmVecs) evictClass(c workload.Class) {
	if v == nil {
		return
	}
	v.evictedCls.Inc(v.policy, v.class(c))
}

// failClass records one failed placement against the VM's SLO class.
func (v *vmVecs) failClass(c workload.Class) {
	if v == nil {
		return
	}
	v.failedCls.Inc(v.policy, v.class(c))
}
