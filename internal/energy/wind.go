package energy

import (
	"math"
	"time"

	"github.com/vbcloud/vb/internal/trace"
)

// Turbine power-curve and wind-speed model constants. The speed process is
// lognormal around a seasonally and diurnally modulated mean, driven by a
// synoptic (shared, ~36 h) and a mesoscale (local, ~4 h) latent; the power
// curve is the standard cubic ramp between cut-in and rated speed.
//
// The diurnal term (stronger wind at night) and the seasonal term (stronger
// wind in winter) are the physical sources of the solar/wind complementarity
// the paper's §2.3 exploits: "using different energy sources (e.g., wind vs.
// solar at night time)".
const (
	meanWindSpeed = 8.2  // m/s, typical onshore site average
	windSigma     = 0.45 // lognormal shape: spread of speeds
	synWeight     = 0.80 // share of the latent from the synoptic driver
	mesoWeight    = 0.60 // share from the mesoscale driver (0.8^2+0.6^2=1)

	diurnalAmp  = 0.18 // night-vs-day swing of mean speed
	seasonalAmp = 0.25 // winter-vs-summer swing of mean speed

	cutInSpeed  = 3.0  // m/s: no power below
	ratedSpeed  = 12.5 // m/s: full power at and above
	cutOutSpeed = 25.0 // m/s: turbine shuts down above (storm protection)
)

// genWind produces a normalized wind power series for one site. syn and meso
// are standard-normal latents per step.
func genWind(cfg SiteConfig, start time.Time, step time.Duration, n int, syn, meso []float64) trace.Series {
	out := trace.New(start, step, n)
	for i := 0; i < n; i++ {
		t := out.TimeAt(i).UTC()
		z := synWeight*syn[i] + mesoWeight*meso[i]
		// exp(sigma*z - sigma^2/2) has mean 1, so speeds average the
		// modulated mean with a right-skewed (Weibull-like) distribution.
		v := baseSpeed(cfg, t) * math.Exp(windSigma*z-windSigma*windSigma/2)
		out.Values[i] = powerCurve(v)
	}
	return out
}

// baseSpeed returns the deterministic mean wind speed at time t for the
// site: the climatological mean boosted at night (local solar time) and in
// winter (northern-hemisphere phase; mirrored south of the equator).
func baseSpeed(cfg SiteConfig, t time.Time) float64 {
	localHour := float64(t.Hour()) + float64(t.Minute())/60 + cfg.Longitude/15
	// Peak near 02:00 local, trough near 14:00.
	diurnal := 1 + diurnalAmp*math.Cos(2*math.Pi*(localHour-2)/24)
	phase := float64(dayOfYear(t) - 15)
	seasonal := 1 + seasonalAmp*math.Cos(2*math.Pi*phase/365)
	if cfg.Latitude < 0 {
		seasonal = 1 - seasonalAmp*math.Cos(2*math.Pi*phase/365)
	}
	return meanWindSpeed * diurnal * seasonal
}

// powerCurve maps wind speed (m/s) to the fraction of nameplate output using
// the standard cubic region between cut-in and rated speed.
func powerCurve(v float64) float64 {
	switch {
	case v < cutInSpeed, v >= cutOutSpeed:
		return 0
	case v >= ratedSpeed:
		return 1
	default:
		ci3 := cutInSpeed * cutInSpeed * cutInSpeed
		r3 := ratedSpeed * ratedSpeed * ratedSpeed
		return (v*v*v - ci3) / (r3 - ci3)
	}
}
