package lp

import "math"

// factorizer abstracts the basis-inverse representation behind the revised
// simplex. Two implementations exist:
//
//   - sparseLU (sparselu.go): the default. A sparse LU factorization of the
//     basis with Markowitz-style pivot selection, updated in place by
//     product-form eta transforms on each pivot.
//   - denseFactor (below): the legacy explicit m×m product-form inverse,
//     retained verbatim for differential testing and so snapshots written
//     before the sparse kernel restore onto the exact arithmetic that
//     produced them.
//
// All vectors are dense []float64 of length m. "Row space" indexes
// constraint rows; "position space" indexes basis positions (w[i] pairs
// with basis[i] and xB[i]).
type factorizer interface {
	// reset installs the exact identity factorization (all-slack crash
	// basis) for an m-row instance.
	reset(m int)
	// refactor rebuilds the factorization from the instance's current basis
	// columns. It returns false when the basis is numerically singular; the
	// factor contents are then undefined until reset or a successful
	// refactor. Implementations may deterministically permute in.basis.
	refactor(in *Instance) bool
	// ftranCol computes w = B⁻¹·A_q for entering column q, exploiting the
	// column's sparsity.
	ftranCol(in *Instance, q int, w []float64)
	// ftran overwrites x (row space) with B⁻¹·x (position space).
	ftran(x []float64)
	// btran overwrites y (position space) with B⁻ᵀ·y (row space).
	btran(y []float64)
	// rowOfInverse writes row r of B⁻¹ (a row-space vector) into dst.
	rowOfInverse(r int, dst []float64)
	// update absorbs the pivot on row r with FTRAN result w. It returns
	// false when the pivot cannot be absorbed stably (the caller must then
	// refactor); on false the factorization is unchanged.
	update(r int, w []float64) bool
	// etaLen reports the current length of the update chain since the last
	// refactorization (always 0 for the dense representation).
	etaLen() int
	// clone returns a deep copy sharing no memory with the receiver.
	clone() factorizer
	// copyFrom overwrites the receiver's state with src's. Both must be the
	// same concrete type and dimension (clones of one instance).
	copyFrom(src factorizer)
}

// denseFactor is the legacy basis representation: an explicit m×m row-major
// inverse maintained by product-form row elimination. Its arithmetic — down
// to summation order and the identity fast path — is kept bit-identical to
// the pre-sparse solver so that decoded legacy snapshots replay the exact
// pivot paths of the process that wrote them.
type denseFactor struct {
	m     int
	binv  []float64 // m×m row-major B⁻¹
	ident bool      // binv is exactly the identity (skip matvecs)
	tmp   []float64 // m, ftran/btran scratch
}

func newDenseFactor(m int) *denseFactor {
	f := &denseFactor{}
	f.reset(m)
	return f
}

func (f *denseFactor) reset(m int) {
	if f.m != m || len(f.binv) != m*m {
		f.m = m
		f.binv = make([]float64, m*m)
		f.tmp = make([]float64, m)
	} else {
		clear(f.binv)
	}
	for i := 0; i < m; i++ {
		f.binv[i*m+i] = 1
	}
	f.ident = true
}

func (f *denseFactor) ftranCol(in *Instance, q int, w []float64) {
	m := f.m
	clear(w)
	if q >= in.nStruct {
		r := q - in.nStruct
		if f.ident {
			w[r] = 1
			return
		}
		for i := 0; i < m; i++ {
			w[i] = f.binv[i*m+r]
		}
		return
	}
	if f.ident {
		for k := in.colPtr[q]; k < in.colPtr[q+1]; k++ {
			w[in.colRow[k]] = in.colVal[k]
		}
		return
	}
	for k := in.colPtr[q]; k < in.colPtr[q+1]; k++ {
		r, v := int(in.colRow[k]), in.colVal[k]
		for i := 0; i < m; i++ {
			w[i] += v * f.binv[i*m+r]
		}
	}
}

func (f *denseFactor) ftran(x []float64) {
	if f.ident {
		return
	}
	m := f.m
	for i := 0; i < m; i++ {
		row := f.binv[i*m : i*m+m]
		var s float64
		for k, a := range x {
			if a != 0 {
				s += row[k] * a
			}
		}
		f.tmp[i] = s
	}
	copy(x, f.tmp[:m])
}

func (f *denseFactor) btran(y []float64) {
	if f.ident {
		return
	}
	m := f.m
	clear(f.tmp[:m])
	for i := 0; i < m; i++ {
		if c := y[i]; c != 0 {
			row := f.binv[i*m : i*m+m]
			for k := range row {
				f.tmp[k] += c * row[k]
			}
		}
	}
	copy(y, f.tmp[:m])
}

func (f *denseFactor) rowOfInverse(r int, dst []float64) {
	if f.ident {
		clear(dst)
		dst[r] = 1
		return
	}
	copy(dst, f.binv[r*f.m:r*f.m+f.m])
}

// update applies the pivot on row r by product-form row elimination.
func (f *denseFactor) update(r int, w []float64) bool {
	m := f.m
	inv := 1 / w[r]
	rowR := f.binv[r*m : r*m+m]
	for k := range rowR {
		rowR[k] *= inv
	}
	for i := 0; i < m; i++ {
		if i == r {
			continue
		}
		fi := w[i]
		if fi == 0 {
			continue
		}
		row := f.binv[i*m : i*m+m]
		for k := range rowR {
			row[k] -= fi * rowR[k]
		}
	}
	f.ident = false
	return true
}

func (f *denseFactor) etaLen() int { return 0 }

func (f *denseFactor) clone() factorizer {
	return &denseFactor{
		m:     f.m,
		binv:  append([]float64(nil), f.binv...),
		ident: f.ident,
		tmp:   make([]float64, f.m),
	}
}

func (f *denseFactor) copyFrom(src factorizer) {
	s := src.(*denseFactor)
	f.m = s.m
	f.binv = append(f.binv[:0], s.binv...)
	f.ident = s.ident
	if len(f.tmp) < s.m {
		f.tmp = make([]float64, s.m)
	}
}

// refactor rebuilds B⁻¹ from the basis columns by Gauss-Jordan elimination
// with partial pivoting. Returns false if B is numerically singular (the
// caller then falls back to the all-slack crash basis).
func (f *denseFactor) refactor(in *Instance) bool {
	m := in.m
	if m == 0 {
		return true
	}
	// bmat = B (column i = column of basis[i]), eliminated in place while
	// the same operations build binv from the identity.
	bmat := make([]float64, m*m)
	for i, bj := range in.basis {
		j := int(bj)
		if j >= in.nStruct {
			bmat[(j-in.nStruct)*m+i] = 1
			continue
		}
		for k := in.colPtr[j]; k < in.colPtr[j+1]; k++ {
			bmat[int(in.colRow[k])*m+i] = in.colVal[k]
		}
	}
	f.reset(m)
	f.ident = false
	binv := f.binv
	for col := 0; col < m; col++ {
		// Partial pivot.
		p, best := -1, pivotTol
		for r := col; r < m; r++ {
			if a := math.Abs(bmat[r*m+col]); a > best {
				p, best = r, a
			}
		}
		if p < 0 {
			return false
		}
		if p != col {
			for k := 0; k < m; k++ {
				bmat[p*m+k], bmat[col*m+k] = bmat[col*m+k], bmat[p*m+k]
				binv[p*m+k], binv[col*m+k] = binv[col*m+k], binv[p*m+k]
			}
			in.basis[p], in.basis[col] = in.basis[col], in.basis[p]
		}
		inv := 1 / bmat[col*m+col]
		for k := 0; k < m; k++ {
			bmat[col*m+k] *= inv
			binv[col*m+k] *= inv
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			fv := bmat[r*m+col]
			if fv == 0 {
				continue
			}
			for k := 0; k < m; k++ {
				bmat[r*m+k] -= fv * bmat[col*m+k]
				binv[r*m+k] -= fv * binv[col*m+k]
			}
		}
	}
	return true
}
