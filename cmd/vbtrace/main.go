// Command vbtrace generates synthetic renewable power traces and their
// forecasts, printing them as CSV or a summary table.
//
// Usage:
//
//	vbtrace -days 7 -step 15m -seed 42 -sites trio -format csv > power.csv
//	vbtrace -days 365 -summary
//	vbtrace -days 30 -forecast 24h
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	vb "github.com/vbcloud/vb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vbtrace: ")

	var (
		days       = flag.Int("days", 7, "days of trace to generate")
		step       = flag.Duration("step", 15*time.Minute, "sampling step (must divide 24h)")
		seed       = flag.Uint64("seed", vb.DefaultSeed, "random seed")
		sitesArg   = flag.String("sites", "trio", `site set: "trio" (NO/UK/PT) or "fleet" (12 sites)`)
		format     = flag.String("format", "csv", `output: "csv", "summary" or "chart"`)
		fcH        = flag.Duration("forecast", 0, "also emit forecasts at this horizon (e.g. 24h; 0 = none)")
		startArg   = flag.String("start", "2020-01-01", "trace start date (YYYY-MM-DD)")
		metricsOut = flag.String("metrics", "", "write a generation manifest (metrics JSON) to this file")
		parallel   = flag.Int("parallel", 0, "worker goroutines for trace generation (0 = all cores, 1 = serial; output is identical)")
	)
	flag.Parse()
	vb.SetParallelism(*parallel)

	start, err := time.Parse("2006-01-02", *startArg)
	if err != nil {
		log.Fatalf("bad -start: %v", err)
	}
	var sites []vb.SiteConfig
	switch *sitesArg {
	case "trio":
		sites = vb.EuropeanTrio()
	case "fleet":
		sites = vb.EuropeanFleet(0)
	default:
		log.Fatalf("unknown -sites %q", *sitesArg)
	}

	var reg *vb.MetricsRegistry
	if *metricsOut != "" {
		reg = vb.NewMetrics()
	}

	n := int(time.Duration(*days) * 24 * time.Hour / *step)
	world := vb.NewWorld(*seed)
	world.Obs = reg
	series, err := world.Generate(sites, start, *step, n)
	if err != nil {
		log.Fatal(err)
	}

	names := make([]string, len(sites))
	for i, s := range sites {
		names[i] = s.Name
	}

	if *fcH > 0 {
		fc := vb.NewForecaster(*seed)
		fc.Obs = reg
		for i, s := range sites {
			f, err := fc.Forecast(series[i], s.Source, *fcH, s.Name)
			if err != nil {
				log.Fatal(err)
			}
			series = append(series, f)
			names = append(names, s.Name+"-fc")
		}
	}

	if *metricsOut != "" {
		m := reg.Manifest()
		m.Seed = *seed
		m.Fleet = names
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	switch *format {
	case "csv":
		if err := vb.WriteCSV(os.Stdout, names, series...); err != nil {
			log.Fatal(err)
		}
	case "summary":
		fmt.Printf("%-12s %8s %8s %8s %8s %8s\n", "site", "mean", "median", "p99", "max", "zeros%")
		for i, name := range names {
			sum, err := vb.Summarize(series[i].Values)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %8.3f %8.3f %8.3f %8.3f %7.1f%%\n",
				name, sum.Mean, sum.P50, sum.P99, sum.Max, series[i].FractionZero(1e-9)*100)
		}
	case "chart":
		chart, err := vb.PlotMulti(series, names, vb.PlotOptions{
			Title:  fmt.Sprintf("normalized power, %d days", *days),
			YLabel: "fraction of capacity",
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(chart)
	default:
		log.Fatalf("unknown -format %q", *format)
	}
}
