package vb

import (
	"crypto/sha256"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/vbcloud/vb/internal/workload"
)

// TestBestSpreadWindowLastSlot is the Fig 2a off-by-one regression: a
// max-spread window planted in the year's final slot (start day 361) must be
// found. The old loop bound (d+4 <= 364) stopped at day 360 and could never
// return it.
func TestBestSpreadWindowLastSlot(t *testing.T) {
	const days, win, spd = 365, 4, 96
	s := NewSeries(experimentStart, 15*time.Minute, days*spd)
	// Every day peaks at 0.5, except the very last day of the year which
	// peaks at 1.0: the only window with nonzero spread starts at day 361.
	for d := 0; d < days; d++ {
		s.Values[d*spd+48] = 0.5
	}
	s.Values[364*spd+48] = 1.0
	if got := bestSpreadWindow(s, days, win, spd); got != days-win {
		t.Errorf("best window start = %d, want %d (final slot must be searched)", got, days-win)
	}
	// And symmetrically at the front, the scan still finds an early window.
	s.Values[364*spd+48] = 0.5
	s.Values[0*spd+48] = 1.0
	if got := bestSpreadWindow(s, days, win, spd); got != 0 {
		t.Errorf("best window start = %d, want 0", got)
	}
}

// TestCovPairSweepCoversFullYear pins the §2.3 sweep boundary fix: the 24
// window starts begin at day 0, increase monotonically, and the final 72 h
// window ends exactly at day 365 (the old 15-day spacing stopped at day 348,
// never sampling the last 16 days).
func TestCovPairSweepCoversFullYear(t *testing.T) {
	if first := covPairStartDay(0); first != 0 {
		t.Errorf("first interval starts day %d, want 0", first)
	}
	last := covPairStartDay(covPairIntervals - 1)
	if last+covPairWindowDays != 365 {
		t.Errorf("last interval covers days %d-%d, want it to end at day 365", last, last+covPairWindowDays)
	}
	for m := 1; m < covPairIntervals; m++ {
		if covPairStartDay(m) <= covPairStartDay(m-1) {
			t.Errorf("interval starts not strictly increasing at m=%d", m)
		}
	}
}

// TestAppDemandsRejectsZeroCoreApp covers the MemGBPerCore NaN guard at both
// layers: the conversion helper refuses a zero-core app, and a NaN that
// somehow reaches an AppDemand is caught by sim.Input.Validate instead of
// passing every threshold comparison.
func TestAppDemandsRejectsZeroCoreApp(t *testing.T) {
	good := workload.App{ID: 1, VMs: []workload.VM{{ID: 1, Cores: 2, MemoryGB: 4}}}
	if _, err := appDemands([]workload.App{good}); err != nil {
		t.Fatalf("valid app rejected: %v", err)
	}
	for _, bad := range []workload.App{
		{ID: 2},                                     // no VMs
		{ID: 3, VMs: []workload.VM{{ID: 2}}},        // zero-core VM
		{ID: 4, VMs: []workload.VM{{ID: 3, Cores: 0, MemoryGB: 8}}}, // zero cores, memory set
	} {
		if _, err := appDemands([]workload.App{bad}); err == nil {
			t.Errorf("app %d: zero-core app must be rejected, got nil error", bad.ID)
		}
	}

	nan := AppDemand{ID: 9, Cores: 10, StableCores: 5, MemGBPerCore: math.NaN(), Start: experimentStart}
	if err := nan.Validate(); err == nil {
		t.Error("NaN MemGBPerCore must fail AppDemand.Validate")
	}
	inf := AppDemand{ID: 10, Cores: math.Inf(1), StableCores: 5, MemGBPerCore: 4, Start: experimentStart}
	if err := inf.Validate(); err == nil {
		t.Error("Inf Cores must fail AppDemand.Validate")
	}
}

// hashAll fingerprints an AllExperimentsResult. fmt's %v is deterministic
// (maps print in sorted key order; floats use the shortest round-trippable
// form), so equal hashes mean bit-identical results.
func hashAll(r AllExperimentsResult) string {
	return fmt.Sprintf("%x", sha256.Sum256([]byte(fmt.Sprintf("%v", r))))
}

// TestRunAllExperimentsParallelDeterminism is the acceptance golden-hash
// test: the full figure/table suite at DefaultSeed is bit-identical between
// the serial path, the parallel path, and a GOMAXPROCS=1 parallel run.
func TestRunAllExperimentsParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite three times")
	}
	serial, err := RunAllExperiments(DefaultSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := hashAll(serial)

	parallel, err := RunAllExperiments(DefaultSeed, runtime.NumCPU())
	if err != nil {
		t.Fatal(err)
	}
	if got := hashAll(parallel); got != want {
		t.Errorf("parallel result hash %s != serial %s", got, want)
	}

	old := runtime.GOMAXPROCS(1)
	single, err := RunAllExperiments(DefaultSeed, runtime.NumCPU())
	runtime.GOMAXPROCS(old)
	if err != nil {
		t.Fatal(err)
	}
	if got := hashAll(single); got != want {
		t.Errorf("GOMAXPROCS=1 result hash %s != serial %s", got, want)
	}

	if rep := serial.Report(); !strings.Contains(rep, "Fig 2a") ||
		!strings.Contains(rep, "Table 1") || !strings.Contains(rep, "Fig 6") {
		t.Error("Report should include every figure and table")
	}
}

// TestWorldGenerateSerialParallelIdentical asserts the same guarantee at the
// World.Generate layer through the public API, across worker counts and
// GOMAXPROCS settings (golden hash over all samples).
func TestWorldGenerateSerialParallelIdentical(t *testing.T) {
	gen := func(workers, procs int) string {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		w := NewWorld(DefaultSeed)
		w.Workers = workers
		series, err := w.Generate(EuropeanFleet(0), experimentStart, 15*time.Minute, 7*96)
		if err != nil {
			t.Fatal(err)
		}
		h := sha256.New()
		for _, s := range series {
			for _, v := range s.Values {
				fmt.Fprintf(h, "%x;", math.Float64bits(v))
			}
			h.Write([]byte("|"))
		}
		return fmt.Sprintf("%x", h.Sum(nil))
	}
	want := gen(1, 1)
	for _, tc := range []struct{ workers, procs int }{
		{0, runtime.NumCPU()},
		{0, 1},
		{4, runtime.NumCPU()},
		{64, runtime.NumCPU()},
	} {
		if got := gen(tc.workers, tc.procs); got != want {
			t.Errorf("workers=%d GOMAXPROCS=%d: hash %s != serial %s", tc.workers, tc.procs, got, want)
		}
	}
}
