package mip

import (
	"github.com/vbcloud/vb/internal/lp"
)

// WarmState serialization: a scheduler that snapshots itself mid-run must
// carry its warm solver state across the restart, because a warm re-solve
// can legitimately return a different optimal vertex than a cold one and
// crash recovery promises bit-identical decisions. The payload delegates
// to lp.Instance's exact gob round trip; an empty payload means "no
// instance carried yet" (the zero WarmState).

// GobEncode implements gob.GobEncoder.
func (ws *WarmState) GobEncode() ([]byte, error) {
	if ws.inst == nil {
		return []byte{}, nil
	}
	return ws.inst.GobEncode()
}

// GobDecode implements gob.GobDecoder.
func (ws *WarmState) GobDecode(b []byte) error {
	if len(b) == 0 {
		ws.inst = nil
		return nil
	}
	inst := new(lp.Instance)
	if err := inst.GobDecode(b); err != nil {
		return err
	}
	ws.inst = inst
	return nil
}
