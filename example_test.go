package vb_test

import (
	"fmt"
	"time"

	vb "github.com/vbcloud/vb"
)

// Generate a day of power for the paper's trio and split it into stable and
// variable energy (§2.3).
func ExampleStableVariableSplit() {
	world := vb.NewWorld(vb.DefaultSeed)
	start := time.Date(2020, 5, 4, 0, 0, 0, 0, time.UTC)
	power, err := world.GeneratePower(vb.EuropeanTrio(), start, time.Hour, 24)
	if err != nil {
		panic(err)
	}
	combined, err := vb.SumSeries(power...)
	if err != nil {
		panic(err)
	}
	split, err := vb.StableVariableSplit(combined, 24*time.Hour)
	if err != nil {
		panic(err)
	}
	fmt.Printf("stable fraction between 0 and 1: %v\n", split.StableFraction() >= 0 && split.StableFraction() <= 1)
	// Output:
	// stable fraction between 0 and 1: true
}

// Estimate the round-trip latency between two VB sites.
func ExampleLatencyMS() {
	trio := vb.EuropeanTrio()
	ms := vb.LatencyMS(trio[0], trio[1]) // Oslo solar <-> UK wind
	fmt.Printf("within the paper's 50 ms bound: %v\n", ms < 50)
	// Output:
	// within the paper's 50 ms bound: true
}

// The four Table 1 policies.
func ExamplePolicy() {
	for _, p := range vb.AllPolicies() {
		fmt.Println(p)
	}
	// Output:
	// Greedy
	// MIP-24h
	// MIP
	// MIP-peak
}

// The paper's WAN arithmetic (§3): a 10 TB spike in 5 minutes.
func ExampleWANShare() {
	r, err := vb.WANShare()
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f Gb/s needed, %.0f Gb/s share\n", r.RequiredGbps, r.PerSiteGbps)
	// Output:
	// 267 Gb/s needed, 500 Gb/s share
}

// The §2.1 cost structure: transmission savings from co-location.
func ExampleCostModel() {
	m := vb.DefaultCostModel()
	fmt.Printf("%.0f%% of data-center cost\n", m.TransmissionSavingFraction()*100)
	// Output:
	// 10% of data-center cost
}

// Live-migration cost of a 32 GB VM on a 10 Gb/s flow.
func ExampleMigrationModel() {
	m := vb.DefaultMigrationModel()
	r, err := m.Migrate(32)
	if err != nil {
		panic(err)
	}
	fmt.Printf("converged: %v, amplification under 1.2x: %v, sub-second downtime: %v\n",
		r.Converged, r.Amplification < 1.2, r.DowntimeSec < 1)
	// Output:
	// converged: true, amplification under 1.2x: true, sub-second downtime: true
}
