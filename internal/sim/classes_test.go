package sim

import (
	"math"
	"testing"

	"github.com/vbcloud/vb/internal/core"
	"github.com/vbcloud/vb/internal/energy"
	"github.com/vbcloud/vb/internal/forecast"
	"github.com/vbcloud/vb/internal/trace"
	"github.com/vbcloud/vb/internal/workload"
)

// singleSiteInput builds a one-site input from a literal power curve. With
// nowhere to migrate, every capacity dip turns directly into pauses, which
// makes the degradation ladder's choices observable in the class ledgers.
func singleSiteInput(t *testing.T, vals []float64, apps []core.AppDemand) Input {
	t.Helper()
	s := trace.FromValues(t0, planStep, vals)
	b, err := forecast.New(3).NewBundle(s, energy.Wind, "solo")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.UseFixedHorizon(forecast.HorizonDay); err != nil {
		t.Fatal(err)
	}
	return Input{
		Actual:     []trace.Series{s},
		Bundles:    []*forecast.Bundle{b},
		TotalCores: 1000,
		Apps:       apps,
	}
}

func classDemand(id int, cores float64, classes map[workload.Class]float64) core.AppDemand {
	var stable float64
	for c, v := range classes {
		if c.Firm() {
			stable += v
		}
	}
	return core.AppDemand{
		ID: id, Cores: cores, StableCores: stable,
		MemGBPerCore: 1, Start: t0, ClassCores: classes,
	}
}

// TestDegradationLadderOrder pins the ladder: when capacity dips below firm
// demand, Batch cores pause before RealTime cores see any violation.
func TestDegradationLadderOrder(t *testing.T) {
	rt := classDemand(1, 200, map[workload.Class]float64{workload.RealTime: 200})
	batch := classDemand(2, 200, map[workload.Class]float64{workload.Batch: 200})
	// util 0.7 x 1000 cores: step 0 holds 700, step 1 dips to 350 — 50 firm
	// cores over, well inside Batch's 200.
	in := singleSiteInput(t, []float64{1, 0.5, 1, 1}, []core.AppDemand{rt, batch})
	cfg := simConfig(core.Greedy)

	eng, err := NewEngine(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Advance([]core.AppDemand{rt, batch}); err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Advance(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.PausedByClass["batch"]; math.Abs(got-50) > 1e-6 {
		t.Errorf("step report paused batch = %v, want 50", got)
	}
	if got, ok := rep.PausedByClass["realtime"]; ok {
		t.Errorf("step report paused realtime = %v, want absent", got)
	}
	for !eng.Done() {
		if _, err := eng.Advance(nil); err != nil {
			t.Fatal(err)
		}
	}
	res := eng.Result()
	if got := res.PausedByClass[workload.Batch]; math.Abs(got-50) > 1e-6 {
		t.Errorf("paused batch core-steps = %v, want 50", got)
	}
	if got := res.PausedByClass[workload.RealTime]; got != 0 {
		t.Errorf("paused realtime core-steps = %v, want 0", got)
	}
	if got := res.DemandByClass[workload.Batch]; math.Abs(got-800) > 1e-6 {
		t.Errorf("batch demand = %v, want 800 (200 cores x 4 steps)", got)
	}
	if got, want := res.ClassAvailability(workload.Batch), 1-50.0/800; math.Abs(got-want) > 1e-9 {
		t.Errorf("batch availability = %v, want %v", got, want)
	}
	if got := res.ClassAvailability(workload.RealTime); got != 1 {
		t.Errorf("realtime availability = %v, want 1", got)
	}
	// No interactive demand anywhere: trivially available, and absent from
	// the class listing.
	if got := res.ClassAvailability(workload.Interactive); got != 1 {
		t.Errorf("interactive availability = %v, want 1", got)
	}
	want := []workload.Class{workload.RealTime, workload.Batch}
	got := res.Classes()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Classes() = %v, want %v", got, want)
	}
}

// TestAllPausedStepNaNFree drives one step to zero capacity: every firm core
// pauses, and all availability figures stay finite and inside [0, 1].
func TestAllPausedStepNaNFree(t *testing.T) {
	rt := classDemand(1, 200, map[workload.Class]float64{workload.RealTime: 200})
	batch := classDemand(2, 200, map[workload.Class]float64{workload.Batch: 200})
	in := singleSiteInput(t, []float64{1, 0, 1, 1}, []core.AppDemand{rt, batch})
	res, err := Run(simConfig(core.Greedy), in)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []workload.Class{workload.RealTime, workload.Batch} {
		if got := res.PausedByClass[c]; math.Abs(got-200) > 1e-6 {
			t.Errorf("%v paused = %v, want 200 (all cores, one step)", c, got)
		}
		av := res.ClassAvailability(c)
		if math.IsNaN(av) || av < 0 || av > 1 {
			t.Fatalf("%v availability = %v", c, av)
		}
		if math.Abs(av-0.75) > 1e-9 {
			t.Errorf("%v availability = %v, want 0.75", c, av)
		}
	}
	for _, id := range []int{1, 2} {
		if av := res.Availability(id); math.IsNaN(av) || math.Abs(av-0.75) > 1e-9 {
			t.Errorf("app %d availability = %v, want 0.75", id, av)
		}
	}
	if av := res.MeanAvailability(); math.IsNaN(av) || math.Abs(av-0.75) > 1e-9 {
		t.Errorf("mean availability = %v, want 0.75", av)
	}
}

// TestZeroStableDemandApp pins the ledgers for a pure-degradable app: it is
// never admitted, never appears in any demand map, and reports availability
// 1 without poisoning the mean.
func TestZeroStableDemandApp(t *testing.T) {
	deg := classDemand(7, 100, map[workload.Class]float64{workload.Degradable: 100})
	stable := classDemand(8, 100, map[workload.Class]float64{workload.Stable: 100})
	in := singleSiteInput(t, []float64{1, 1, 1, 1}, []core.AppDemand{deg, stable})
	res, err := Run(simConfig(core.Greedy), in)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.PerAppDemand[7]; ok {
		t.Error("pure-degradable app should not enter the demand ledger")
	}
	if av := res.Availability(7); av != 1 {
		t.Errorf("pure-degradable app availability = %v, want 1", av)
	}
	if av := res.MeanAvailability(); math.IsNaN(av) || av != 1 {
		t.Errorf("mean availability = %v, want 1", av)
	}
	if _, ok := res.DemandByClass[workload.Degradable]; ok {
		t.Error("degradable demand should not be tracked")
	}
	for _, c := range res.Classes() {
		if c == workload.Degradable {
			t.Error("Classes() should omit degradable")
		}
	}
}

// TestClassAvailabilityEmptyResult pins the zero-value Result: everything
// trivially available, nothing NaN.
func TestClassAvailabilityEmptyResult(t *testing.T) {
	var empty Result
	for _, c := range workload.AllClasses {
		if av := empty.ClassAvailability(c); av != 1 {
			t.Errorf("%v availability on empty result = %v, want 1", c, av)
		}
	}
	if got := empty.Classes(); len(got) != 0 {
		t.Errorf("Classes() on empty result = %v, want none", got)
	}
}

// TestMixedClassSharesProRata checks that a multi-class app's pauses and
// demand split across its firm classes by core share (degradable cores
// excluded from the firm denominator).
func TestMixedClassSharesProRata(t *testing.T) {
	mixed := classDemand(3, 300, map[workload.Class]float64{
		workload.RealTime:   100,
		workload.Batch:      100,
		workload.Degradable: 100,
	})
	// Step 1 capacity 0.7 x 0.25 x 1000 = 175: the app's 200 firm cores are
	// 25 over, split evenly across its two firm classes.
	in := singleSiteInput(t, []float64{1, 0.25, 1, 1}, []core.AppDemand{mixed})
	res, err := Run(simConfig(core.Greedy), in)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []workload.Class{workload.RealTime, workload.Batch} {
		if got := res.PausedByClass[c]; math.Abs(got-12.5) > 1e-6 {
			t.Errorf("%v paused = %v, want 12.5", c, got)
		}
		if got := res.DemandByClass[c]; math.Abs(got-400) > 1e-6 {
			t.Errorf("%v demand = %v, want 400 (100 cores x 4 steps)", c, got)
		}
	}
	if _, ok := res.PausedByClass[workload.Degradable]; ok {
		t.Error("degradable cores never pause for accounting purposes")
	}
}
