// Battery vs Virtual Battery: quantify the paper's §1 argument that
// chemical storage cannot economically absorb renewable variability, by
// computing how much battery a single site would need to match the firm
// power that multi-VB aggregation provides almost for free.
package main

import (
	"fmt"
	"log"
	"time"

	vb "github.com/vbcloud/vb"
)

func main() {
	log.SetFlags(0)

	r, err := vb.BatteryEquivalent(vb.DefaultSeed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("firm power target: %.0f MW (the trio's 10th-percentile output)\n\n", r.TargetMW)
	fmt.Printf("single best site + battery:  %.0f MWh of storage (~$%.1fB at $300/kWh)\n",
		r.SingleSiteBatteryMWh, r.SingleSiteCostUSD/1e9)
	fmt.Printf("three aggregated VB sites:   %.0f MWh of storage\n", r.GroupBatteryMWh)
	fmt.Printf("aggregation substitutes for %.0fx the storage\n\n",
		r.SingleSiteBatteryMWh/r.GroupBatteryMWh)

	// What would a small battery do for the group's worst gaps? Compare
	// with the paper's §2.3 grid-purchase analysis.
	world := vb.NewWorld(vb.DefaultSeed)
	trio := vb.EuropeanTrio()
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	power, err := world.GeneratePower(trio, start, time.Hour, 30*24)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := vb.SumSeries(power...)
	if err != nil {
		log.Fatal(err)
	}
	res, err := vb.SmoothWithBattery(vb.BatteryConfig{
		CapacityMWh:           2000,
		PowerMW:               300,
		RoundTripEfficiency:   0.85,
		InitialChargeFraction: 0.5,
	}, sum, r.TargetMW)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("a 2 GWh battery on the aggregated group over a month:\n")
	fmt.Printf("  unserved: %.0f MWh, spilled: %.0f MWh, %.1f equivalent cycles\n",
		res.UnservedMWh, res.SpilledMWh, res.CyclesEquivalent)
}
