// Package vb is the public API of the Virtual Battery simulator, a
// reproduction of "Redesigning Data Centers for Renewable Energy"
// (HotNets '21). It re-exports the building blocks — synthetic renewable
// energy worlds, forecast bundles, cloud workloads, the single-site cluster
// simulator, the site latency graph, and the network- and power-aware
// multi-site co-scheduler — and provides one-call runners for every table
// and figure in the paper's evaluation (see experiments.go).
//
// Quick start:
//
//	world := vb.NewWorld(42)
//	sites := vb.EuropeanTrio()
//	power, err := world.GeneratePower(sites, start, time.Hour, 24*7)
//
// See the examples/ directory for complete programs.
package vb

import (
	"fmt"
	"io"
	"os"
	"time"

	"github.com/vbcloud/vb/internal/cluster"
	"github.com/vbcloud/vb/internal/core"
	"github.com/vbcloud/vb/internal/econ"
	"github.com/vbcloud/vb/internal/energy"
	"github.com/vbcloud/vb/internal/fault"
	"github.com/vbcloud/vb/internal/forecast"
	"github.com/vbcloud/vb/internal/graph"
	"github.com/vbcloud/vb/internal/obs"
	"github.com/vbcloud/vb/internal/obs/expo"
	"github.com/vbcloud/vb/internal/plot"
	"github.com/vbcloud/vb/internal/sim"
	"github.com/vbcloud/vb/internal/stats"
	"github.com/vbcloud/vb/internal/trace"
	"github.com/vbcloud/vb/internal/wan"
	"github.com/vbcloud/vb/internal/workload"
)

// Time-series substrate.
type (
	// Series is a regularly sampled time series (power, traffic, ...).
	Series = trace.Series
	// CDF is an empirical cumulative distribution function.
	CDF = stats.CDF
	// Summary holds descriptive statistics of a sample.
	Summary = stats.Summary
	// Point is an (x, y) plot coordinate, e.g. one CDF point.
	Point = stats.Point
)

// Renewable energy modelling.
type (
	// World generates correlated renewable power traces for a site fleet.
	World = energy.World
	// SiteConfig describes one renewable site (source, location, capacity).
	SiteConfig = energy.SiteConfig
	// Source is a renewable source type (Solar or Wind).
	Source = energy.Source
	// Split is a stable/variable energy decomposition.
	Split = energy.Split
	// ComboResult evaluates an aggregated site combination.
	ComboResult = energy.ComboResult
	// TopUp is a grid-purchase floor raise plan.
	TopUp = energy.TopUp
)

// Renewable source types.
const (
	Solar = energy.Solar
	Wind  = energy.Wind
)

// Forecasting.
type (
	// Forecaster generates horizon-calibrated pseudo-forecasts.
	Forecaster = forecast.Forecaster
	// Bundle holds one site's forecasts at the standard horizons.
	Bundle = forecast.Bundle
)

// Standard forecast horizons (paper Fig 5).
const (
	Horizon3H   = forecast.Horizon3H
	HorizonDay  = forecast.HorizonDay
	HorizonWeek = forecast.HorizonWeek
)

// Workloads.
type (
	// VM is a virtual machine request.
	VM = workload.VM
	// App is a multi-VM application request.
	App = workload.App
	// WorkloadConfig parameterizes VM trace generation.
	WorkloadConfig = workload.Config
	// AppConfig parameterizes application trace generation.
	AppConfig = workload.AppConfig
	// WorkloadClass is a VM's SLO class (pause tolerance + scheduler pause
	// cost weight).
	WorkloadClass = workload.Class
	// CohortSpec describes one workload cohort (class, renewal process,
	// size profile, lifetime distribution).
	CohortSpec = workload.CohortSpec
	// TraceSpec is a versioned cohort-mix description, the unit of the
	// scenario library (see GenerateCohortApps).
	TraceSpec = workload.TraceSpec
	// TraceHeader is the first record of a v2 application trace file.
	TraceHeader = workload.TraceHeader
)

// VM SLO classes, in descending pause-cost order. Stable and Degradable are
// the paper's original two-value split; RealTime, Interactive and Batch
// refine the firm side with distinct pause tolerances and scheduler weights.
const (
	RealTime    = workload.RealTime
	Interactive = workload.Interactive
	Stable      = workload.Stable
	Batch       = workload.Batch
	Degradable  = workload.Degradable
)

// AllWorkloadClasses lists every SLO class in degradation-ladder order
// (most pause-averse first).
func AllWorkloadClasses() []WorkloadClass {
	return append([]WorkloadClass(nil), workload.AllClasses...)
}

// ParseWorkloadClass parses a class name ("realtime", "interactive",
// "stable", "batch", "degradable").
func ParseWorkloadClass(s string) (WorkloadClass, error) { return workload.ParseClass(s) }

// GenerateCohortApps produces an application trace from a cohort-mix spec:
// each cohort contributes an independent deterministic stream of apps with
// its own SLO class, renewal process and size profile, merged in arrival
// order.
func GenerateCohortApps(spec TraceSpec) ([]App, error) { return workload.GenerateCohorts(spec) }

// ParseTraceSpec parses a versioned JSON cohort-mix spec (strict: unknown
// fields are rejected).
func ParseTraceSpec(b []byte) (*TraceSpec, error) { return workload.ParseTraceSpec(b) }

// LoadTraceSpec reads a JSON cohort-mix spec from disk.
func LoadTraceSpec(path string) (*TraceSpec, error) { return workload.LoadTraceSpec(path) }

// WriteAppTrace records applications as a versioned JSONL trace (trace v2):
// a header line (format, version, seed, spec hash) followed by one
// self-describing record per app. A recorded trace replays bit-identically.
func WriteAppTrace(w io.Writer, h TraceHeader, apps []App) error {
	return workload.WriteTraceV2(w, h, apps)
}

// ReadAppTrace decodes a trace written by WriteAppTrace, returning the
// header and the exact recorded applications.
func ReadAppTrace(r io.Reader) (TraceHeader, []App, error) { return workload.ReadTraceV2(r) }

// Single-site cluster simulation (paper §3, Fig 4).
type (
	// ClusterConfig describes one VB site's hardware.
	ClusterConfig = cluster.Config
	// ClusterSite simulates one power-tracking site.
	ClusterSite = cluster.Site
	// ClusterRunResult is the outcome of driving a site through a power
	// trace.
	ClusterRunResult = cluster.RunResult
)

// Site graph (scheduler step 1).
type (
	// Graph is the VB site latency graph.
	Graph = graph.Graph
	// RankedClique is a candidate placement group scored by cov.
	RankedClique = graph.RankedClique
)

// Scheduler (the paper's contribution, §3.1).
type (
	// Policy selects a Table 1 scheduling policy.
	Policy = core.Policy
	// SchedulerConfig parameterizes the co-scheduler.
	SchedulerConfig = core.Config
	// AppDemand is the scheduler's view of an application.
	AppDemand = core.AppDemand
	// CapacityFn estimates a site's usable stable cores at a future step.
	CapacityFn = core.CapacityFn
	// Plan is an application's allocation schedule.
	Plan = core.Plan
	// Scheduler places applications across a multi-VB group.
	Scheduler = core.Scheduler
	// SimInput bundles a multi-site simulation's inputs.
	SimInput = sim.Input
	// SimResult is a policy run's outcome.
	SimResult = sim.Result
	// VMLevelResult is a VM-granularity policy run's outcome.
	VMLevelResult = sim.VMLevelResult
)

// Online stepping engines (the cores behind RunPolicy/RunPolicyVMLevel,
// exported for long-lived daemons such as cmd/vbserve).
type (
	// SimEngine advances the fluid core-level simulation one plan step at
	// a time; feeding it the batch arrivals in Start order reproduces
	// RunPolicy bit-for-bit.
	SimEngine = sim.Engine
	// SimStepReport is one SimEngine step's decision record.
	SimStepReport = sim.StepReport
	// VMEngine advances the VM-granularity simulation one plan step at a
	// time, and snapshots/restores its complete decision state (apps,
	// plans, server packing, scheduler ledgers, warm solver caches).
	VMEngine = sim.VMEngine
	// AppArrival is one application entering a streaming engine: its
	// aggregate demand plus the discrete VMs behind it.
	AppArrival = sim.AppArrival
	// VMStepReport is one VMEngine step's decision record (admissions,
	// evictions, moves, failures), suitable for a JSONL decision log.
	VMStepReport = sim.VMStepReport
	// VMMove is one inter-site VM migration in a VMStepReport.
	VMMove = sim.VMMove
	// SiteState is a cluster site's complete serializable state.
	SiteState = cluster.SiteState
)

// Table 1 policies.
const (
	PolicyGreedy  = core.Greedy
	PolicyMIP     = core.MIP
	PolicyMIP24h  = core.MIP24h
	PolicyMIPPeak = core.MIPPeak
)

// Fault injection (robustness experiments and chaos testing).
type (
	// FaultKind names a fault class (blackout, brownout, WAN cut, ...).
	FaultKind = fault.Kind
	// FaultEvent is one scheduled fault with a step window and severity.
	FaultEvent = fault.Event
	// FaultScript is an ordered list of fault events for one scenario.
	FaultScript = fault.Script
	// FaultInjector compiles a validated script into the per-step lookups
	// the engines query; nil is the no-fault identity.
	FaultInjector = fault.Injector
	// FaultRandomConfig parameterizes RandomFaultScript.
	FaultRandomConfig = fault.RandomConfig
)

// Fault kinds.
const (
	FaultSiteBlackout   = fault.SiteBlackout
	FaultSiteBrownout   = fault.SiteBrownout
	FaultWANCut         = fault.WANCut
	FaultWANDegraded    = fault.WANDegraded
	FaultForecastBust   = fault.ForecastBust
	FaultSolverSlowdown = fault.SolverSlowdown
)

// NewFaultInjector validates a script against the scenario dimensions and
// compiles it. A nil or empty script yields a nil injector (and nil error),
// which reproduces fault-free runs bit-for-bit.
func NewFaultInjector(s *FaultScript, numSites, steps int) (*FaultInjector, error) {
	return fault.NewInjector(s, numSites, steps)
}

// LoadFaultScript reads a JSON fault script from disk.
func LoadFaultScript(path string) (*FaultScript, error) { return fault.LoadScript(path) }

// ParseFaultSpec parses a compact command-line fault spec such as
// "blackout:0@4-8,slow:*@0-28=8" (see internal/fault.ParseSpec).
func ParseFaultSpec(spec string) (*FaultScript, error) { return fault.ParseSpec(spec) }

// RandomFaultScript draws a valid random fault script from a seed; the same
// seed and config always yield the same script.
func RandomFaultScript(seed int64, cfg FaultRandomConfig) *FaultScript {
	return fault.RandomScript(seed, cfg)
}

// WAN and economics models.
type (
	// WANConfig describes the shared wide-area fabric.
	WANConfig = wan.Config
	// CostModel captures the paper's §2.1 cost structure.
	CostModel = econ.CostModel
)

// Observability (run-scoped metrics, event tracing, run manifests).
type (
	// MetricsRegistry accumulates counters, gauges and histograms for one
	// run. A nil registry is a no-op everywhere it is accepted.
	MetricsRegistry = obs.Registry
	// Tracer records structured simulation events in a ring buffer with an
	// optional JSONL sink.
	Tracer = obs.Tracer
	// TraceEvent is one structured simulation event.
	TraceEvent = obs.Event
	// TraceEventType names a kind of TraceEvent.
	TraceEventType = obs.EventType
	// TraceStats aggregates per-event-type counts and exact totals.
	TraceStats = obs.TypeStats
	// RunManifest is the JSON summary of one observed run.
	RunManifest = obs.Manifest
	// HistogramSnapshot is an immutable histogram state.
	HistogramSnapshot = obs.HistogramSnapshot
	// MetricsSnapshot is a serializable copy of a whole registry: flat
	// metrics, dimensional vecs, and exact per-event-type totals.
	MetricsSnapshot = obs.RegistrySnapshot
	// CounterVec, GaugeVec and HistogramVec are dimensional metrics with
	// ordered label sets (e.g. policy, site, app, class).
	CounterVec   = obs.CounterVec
	GaugeVec     = obs.GaugeVec
	HistogramVec = obs.HistogramVec
	// TraceAnalysis is the offline aggregate view of a recorded event
	// stream (what cmd/vbobs prints); its per-type stats reconcile
	// bit-exactly with the live tracer's.
	TraceAnalysis = obs.TraceAnalysis
	// TraceFlowKey identifies one directed src→dst edge of the analysis's
	// migration flow matrix.
	TraceFlowKey = obs.FlowKey
	// TraceParseError locates a truncated or corrupt JSONL trace record.
	TraceParseError = obs.ParseError
	// TelemetryServer serves a live registry over HTTP (/metrics,
	// /snapshot, /events, pprof).
	TelemetryServer = expo.Server
)

// Trace event types emitted by the simulation pipeline.
const (
	EventPlanComputed      = obs.PlanComputed
	EventPlannedRealloc    = obs.PlannedRealloc
	EventForcedMigration   = obs.ForcedMigration
	EventStablePause       = obs.StablePause
	EventShortfall         = obs.Shortfall
	EventHorizonSwitch     = obs.HorizonSwitch
	EventMIPSolveStart     = obs.MIPSolveStart
	EventMIPSolveFinish    = obs.MIPSolveFinish
	EventVMEvicted         = obs.VMEvicted
	EventVMMoved           = obs.VMMoved
	EventVMPlacementFail   = obs.VMPlacementFail
	EventSiteStep          = obs.SiteStep
	EventFaultInjected     = obs.FaultInjected
	EventSchedulerFallback = obs.SchedulerFallback
)

// NewMetrics returns an empty run-scoped metrics registry with an attached
// event tracer.
func NewMetrics() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer returns a standalone event tracer with the given ring size
// (0 = default).
func NewTracer(ring int) *Tracer { return obs.NewTracer(ring) }

// TimeSpan starts a timing span recording into reg's histogram of the given
// name; call the returned func to stop. Nil registries cost nothing.
func TimeSpan(reg *MetricsRegistry, name string) func() { return obs.Time(reg, name) }

// ReadTraceEvents decodes a JSONL event stream written by a tracer sink.
// Truncated or corrupt trailing records return the events decoded so far
// plus a *TraceParseError locating the bad line.
func ReadTraceEvents(r io.Reader) ([]TraceEvent, error) { return obs.ReadEvents(r) }

// AnalyzeTrace aggregates a recorded event stream: per-type/app/site
// stats, the site×site migration flow matrix, exact solver percentiles,
// and warm-start hit rates. On a complete stream the per-type stats
// reconcile bit-exactly with the live tracer's.
func AnalyzeTrace(events []TraceEvent) *TraceAnalysis { return obs.Analyze(events) }

// ServeTelemetry starts an HTTP telemetry server for reg on addr
// (host:port; port 0 picks a free one), serving Prometheus text at
// /metrics, the JSON registry snapshot at /snapshot, buffered trace
// events at /events, and pprof under /debug/pprof/. Stop it with
// Shutdown. The returned server reports its bound address via Addr.
func ServeTelemetry(addr string, reg *MetricsRegistry) (*TelemetryServer, error) {
	srv := expo.NewServer(reg)
	if _, err := srv.Start(addr); err != nil {
		return nil, err
	}
	return srv, nil
}

// FinishTraceSink closes a -trace sink file after surfacing both failure
// modes a JSONL sink has: a write error latched by the tracer mid-run and
// an error from the final Close (buffered data can fail to flush). Pass
// the registry whose tracer wrote to f; either may be nil.
func FinishTraceSink(reg *MetricsRegistry, f *os.File) error {
	var tracerErr error
	if reg != nil {
		tracerErr = reg.Tracer().Err()
	}
	var closeErr error
	if f != nil {
		closeErr = f.Close()
	}
	if tracerErr != nil {
		return fmt.Errorf("trace sink write: %w", tracerErr)
	}
	if closeErr != nil {
		return fmt.Errorf("trace sink close: %w", closeErr)
	}
	return nil
}

// NewWorld returns an energy world with default correlation structure.
func NewWorld(seed uint64) *World { return energy.NewWorld(seed) }

// NewForecaster returns a forecaster with the given seed.
func NewForecaster(seed uint64) *Forecaster { return forecast.New(seed) }

// NewSeries returns a zero-filled series.
func NewSeries(start time.Time, step time.Duration, n int) Series {
	return trace.New(start, step, n)
}

// NewCluster returns an empty, fully powered VB site.
func NewCluster(cfg ClusterConfig) (*ClusterSite, error) { return cluster.New(cfg) }

// DefaultClusterConfig returns the paper's 700x40-core site.
func DefaultClusterConfig() ClusterConfig { return cluster.DefaultConfig() }

// RunCluster drives a site through a power trace with the given VM
// arrivals (paper Fig 4).
func RunCluster(cfg ClusterConfig, power Series, vms []VM, warmup int) (ClusterRunResult, error) {
	return cluster.Run(cfg, power, vms, warmup)
}

// NewGraph builds the site latency graph (0 threshold = the paper's 50 ms).
func NewGraph(sites []SiteConfig, thresholdMS float64) (*Graph, error) {
	return graph.New(sites, thresholdMS)
}

// NewScheduler creates a co-scheduler over a multi-VB group.
func NewScheduler(cfg SchedulerConfig, numSites, steps int) (*Scheduler, error) {
	return core.NewScheduler(cfg, numSites, steps)
}

// RunPolicy simulates one scheduling policy over a multi-VB group.
func RunPolicy(cfg SchedulerConfig, in SimInput) (SimResult, error) { return sim.Run(cfg, in) }

// RunPolicyVMLevel simulates a policy at VM granularity: individual VMs on
// real per-site cluster simulators (packing, fragmentation, round-robin
// eviction), steered by the same co-scheduler. apps supplies the discrete
// VMs behind in.Apps, matched by application ID.
func RunPolicyVMLevel(cfg SchedulerConfig, in SimInput, apps []App, clusterCfg ClusterConfig) (VMLevelResult, error) {
	return sim.RunVMLevel(cfg, in, apps, clusterCfg)
}

// NewSimEngine builds a streaming core-level engine. Unlike RunPolicy,
// in.Apps may be empty: demands arrive through Advance.
func NewSimEngine(cfg SchedulerConfig, in SimInput) (*SimEngine, error) {
	return sim.NewEngine(cfg, in)
}

// NewVMEngine builds a streaming VM-granularity engine. Unlike
// RunPolicyVMLevel, in.Apps may be empty: applications arrive through
// Advance.
func NewVMEngine(cfg SchedulerConfig, in SimInput, clusterCfg ClusterConfig) (*VMEngine, error) {
	return sim.NewVMEngine(cfg, in, clusterCfg)
}

// RestoreVMEngine rebuilds a VM engine from a Snapshot written by
// VMEngine.Snapshot; the restored engine resumes producing bit-identical
// decisions.
func RestoreVMEngine(cfg SchedulerConfig, in SimInput, clusterCfg ClusterConfig, r io.Reader) (*VMEngine, error) {
	return sim.RestoreVMEngine(cfg, in, clusterCfg, r)
}

// AllPolicies lists the paper's four Table 1 policies.
func AllPolicies() []Policy { return core.AllPolicies() }

// GenerateVMs produces a synthetic Azure-like VM arrival trace.
func GenerateVMs(cfg WorkloadConfig) ([]VM, error) { return workload.Generate(cfg) }

// GenerateApps produces synthetic application requests.
func GenerateApps(cfg AppConfig) ([]App, error) { return workload.GenerateApps(cfg) }

// EuropeanTrio returns the paper's Fig 3 site trio (NO solar, UK/PT wind).
func EuropeanTrio() []SiteConfig { return energy.EuropeanTrio() }

// EuropeanFleet returns a larger mixed fleet (EMHIRES stand-in).
func EuropeanFleet(n int) []SiteConfig { return energy.EuropeanFleet(n) }

// StableVariableSplit decomposes produced energy per §2.3.
func StableVariableSplit(power Series, window time.Duration) (Split, error) {
	return energy.StableVariableSplit(power, window)
}

// PlanTopUp finds the best grid-purchase floor raise within a budget.
func PlanTopUp(power Series, budgetMWh float64) (TopUp, error) {
	return energy.PlanTopUp(power, budgetMWh)
}

// LatencyMS estimates round-trip latency between two sites.
func LatencyMS(a, b SiteConfig) float64 { return energy.LatencyMS(a, b) }

// WANBusy returns the fraction of time a link of linkGbps is busy carrying
// the given per-step transfer series (GB per step).
func WANBusy(transfer Series, linkGbps float64) (float64, error) {
	return wan.BusyFraction(transfer, linkGbps)
}

// DefaultWAN returns the paper's WAN assumptions (50 Tb/s, 100 sites).
func DefaultWAN() WANConfig { return wan.DefaultConfig() }

// DefaultCostModel returns the paper's §2.1 cost figures.
func DefaultCostModel() CostModel { return econ.DefaultCostModel() }

// AddSeries returns the element-wise sum of two compatible series.
func AddSeries(a, b Series) (Series, error) { return trace.Add(a, b) }

// SumSeries returns the element-wise sum of all the given series.
func SumSeries(series ...Series) (Series, error) { return trace.Sum(series...) }

// WriteCSV writes series sharing a time base as a CSV table.
func WriteCSV(w io.Writer, names []string, series ...Series) error {
	return trace.WriteCSV(w, names, series...)
}

// ReadCSV parses a CSV table written by WriteCSV.
func ReadCSV(r io.Reader) ([]string, []Series, error) { return trace.ReadCSV(r) }

// PlotOptions controls ASCII chart geometry.
type PlotOptions = plot.Options

// PlotSeries renders a series as an ASCII line chart.
func PlotSeries(s Series, opt PlotOptions) (string, error) { return plot.Series(s, opt) }

// PlotMulti overlays up to six series in one ASCII chart.
func PlotMulti(series []Series, names []string, opt PlotOptions) (string, error) {
	return plot.Multi(series, names, opt)
}

// PlotCDFs renders named CDF point sets as one ASCII chart.
func PlotCDFs(sets map[string][]Point, opt PlotOptions) (string, error) {
	return plot.CDFs(sets, opt)
}

// NewCDF builds an empirical CDF from samples.
func NewCDF(samples []float64) (*CDF, error) { return stats.NewCDF(samples) }

// Summarize computes descriptive statistics of a sample.
func Summarize(xs []float64) (Summary, error) { return stats.Summarize(xs) }
