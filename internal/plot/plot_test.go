package plot

import (
	"strings"
	"testing"
	"time"

	"github.com/vbcloud/vb/internal/stats"
	"github.com/vbcloud/vb/internal/trace"
)

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

func ramp(n int) trace.Series {
	s := trace.New(t0, time.Hour, n)
	for i := range s.Values {
		s.Values[i] = float64(i)
	}
	return s
}

func TestSeriesBasic(t *testing.T) {
	out, err := Series(ramp(48), Options{Title: "ramp", Width: 40, Height: 8, YLabel: "value"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ramp") || !strings.Contains(out, "y: value") {
		t.Error("missing title or label")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + 8 rows + axis + time + label = 12.
	if len(lines) != 12 {
		t.Errorf("line count = %d, want 12", len(lines))
	}
	// A ramp puts a mark in the top-right and bottom-left of the plot area.
	top := lines[1]
	bottom := lines[8]
	if !strings.Contains(top, "*") || !strings.Contains(bottom, "*") {
		t.Errorf("ramp should reach both extremes:\n%s", out)
	}
	// Range labels present.
	if !strings.Contains(lines[1], "47") || !strings.Contains(lines[8], "0") {
		t.Errorf("y-range labels missing:\n%s", out)
	}
}

func TestSeriesErrors(t *testing.T) {
	if _, err := Series(trace.Series{}, Options{}); err == nil {
		t.Error("empty series should error")
	}
}

func TestMultiLegendAndMarkers(t *testing.T) {
	a := ramp(24)
	b := a.Scale(2)
	out, err := Multi([]trace.Series{a, b}, []string{"solar", "wind"}, Options{Width: 30, Height: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "* solar") || !strings.Contains(out, "+ wind") {
		t.Errorf("legend missing:\n%s", out)
	}
	if _, err := Multi(nil, nil, Options{}); err == nil {
		t.Error("no series should error")
	}
	if _, err := Multi([]trace.Series{a}, []string{"a", "b"}, Options{}); err == nil {
		t.Error("name mismatch should error")
	}
	seven := make([]trace.Series, 7)
	names := make([]string, 7)
	for i := range seven {
		seven[i] = a
	}
	if _, err := Multi(seven, names, Options{}); err == nil {
		t.Error("too many series should error")
	}
}

func TestLogY(t *testing.T) {
	s := trace.FromValues(t0, time.Hour, []float64{0, 1, 10, 100, 1000})
	out, err := Series(s, Options{LogY: true, Width: 20, Height: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "log10") {
		t.Error("log axis note missing")
	}
}

func TestConstantSeries(t *testing.T) {
	s := trace.FromValues(t0, time.Hour, []float64{5, 5, 5})
	if _, err := Series(s, Options{}); err != nil {
		t.Fatalf("constant series should plot: %v", err)
	}
	zeros := trace.FromValues(t0, time.Hour, []float64{0, 0})
	if _, err := Series(zeros, Options{LogY: true}); err != nil {
		t.Fatalf("all-zero LogY should plot: %v", err)
	}
}

func TestCDFs(t *testing.T) {
	c1, err := stats.NewCDF([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := stats.NewCDF([]float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	out, err := CDFs(map[string][]stats.Point{
		"greedy": c1.Points(20),
		"mip":    c2.Points(20),
	}, Options{Title: "Fig 7", Width: 40, Height: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fig 7") || !strings.Contains(out, "greedy") || !strings.Contains(out, "mip") {
		t.Errorf("chart incomplete:\n%s", out)
	}
	if !strings.Contains(out, "1.0") || !strings.Contains(out, "0.0") {
		t.Error("probability axis labels missing")
	}
	if _, err := CDFs(nil, Options{}); err == nil {
		t.Error("no CDFs should error")
	}
}

func TestGeometryClamps(t *testing.T) {
	s := ramp(10)
	out, err := Series(s, Options{Width: 100000, Height: 100000})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	if len(lines) > 120 {
		t.Errorf("height should clamp, got %d lines", len(lines))
	}
}
