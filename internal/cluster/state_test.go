package cluster

import (
	"math/rand/v2"
	"testing"
	"time"

	"github.com/vbcloud/vb/internal/workload"
)

// TestSiteStateRoundTrip drives a site through a churny history (arrivals,
// power drops, relaunches, departures), snapshots it, rebuilds from the
// snapshot, and then runs both copies forward through the same future:
// every StepResult must match exactly, which only happens if server
// placement, pending-queue order, and the eviction cursor all survived.
func TestSiteStateRoundTrip(t *testing.T) {
	cfg := Config{Servers: 12, CoresPerServer: 40, MemPerServerGB: 512, TargetUtilization: 0.7}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 17))
	nextID := 1
	now := t0
	step := func(site *Site, frac float64, arr []workload.VM) StepResult {
		return site.Step(now, frac, arr)
	}
	fracs := []float64{1, 0.8, 0.3, 0.55, 0.2, 0.9, 0.6}
	for _, f := range fracs {
		var arr []workload.VM
		for i := 0; i < 5+rng.IntN(6); i++ {
			vm := workload.VM{
				ID: nextID, Cores: 1 + rng.IntN(12), MemoryGB: 4 + rng.IntN(60),
				Arrival: now, Lifetime: time.Duration(1+rng.IntN(5)) * time.Hour,
			}
			if rng.IntN(4) == 0 {
				vm.Lifetime = 0 // immortal
			}
			nextID++
			arr = append(arr, vm)
		}
		step(s, f, arr)
		now = now.Add(time.Hour)
	}

	restored, err := NewFromState(s.State())
	if err != nil {
		t.Fatal(err)
	}
	if restored.AllocatedCores() != s.AllocatedCores() ||
		restored.PoweredCores() != s.PoweredCores() ||
		restored.Running() != s.Running() ||
		restored.Pending() != s.Pending() {
		t.Fatalf("restored site summary differs: alloc %d/%d powered %d/%d running %d/%d pending %d/%d",
			restored.AllocatedCores(), s.AllocatedCores(),
			restored.PoweredCores(), s.PoweredCores(),
			restored.Running(), s.Running(),
			restored.Pending(), s.Pending())
	}

	// Identical futures must produce identical step results.
	future := []float64{0.25, 0.7, 0.15, 1, 0.4, 0.85}
	for i, f := range future {
		var arr []workload.VM
		for j := 0; j < 4; j++ {
			vm := workload.VM{
				ID: nextID, Cores: 1 + rng.IntN(12), MemoryGB: 4 + rng.IntN(60),
				Arrival: now, Lifetime: time.Duration(1+rng.IntN(4)) * time.Hour,
			}
			nextID++
			arr = append(arr, vm)
		}
		ra := step(s, f, arr)
		rb := step(restored, f, arr)
		if ra != rb {
			t.Fatalf("future step %d diverges: %+v vs %+v", i, ra, rb)
		}
		now = now.Add(time.Hour)
	}
}

// TestNewFromStateRejectsCorrupt ensures malformed snapshots fail loudly.
func TestNewFromStateRejectsCorrupt(t *testing.T) {
	cfg := Config{Servers: 2, CoresPerServer: 8, MemPerServerGB: 64, TargetUtilization: 0.7}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(t0, 1.0, []workload.VM{mkVM(1, 4, 16), mkVM(2, 4, 16)})
	good := s.State()

	cases := []struct {
		name   string
		mutate func(st *SiteState)
	}{
		{"server count", func(st *SiteState) { st.Servers = st.Servers[:1] }},
		{"powered range", func(st *SiteState) { st.Powered = cfg.TotalCores() + 1 }},
		{"cursor range", func(st *SiteState) { st.EvictCursor = 2 }},
		{"duplicate vm", func(st *SiteState) {
			st.Servers[1] = append(st.Servers[1], st.Servers[0][0])
		}},
		{"over capacity", func(st *SiteState) {
			st.Servers[0] = append(st.Servers[0], mkVM(9, 8, 16))
		}},
	}
	for _, c := range cases {
		st := good
		st.Servers = append([][]workload.VM(nil), good.Servers...)
		c.mutate(&st)
		if _, err := NewFromState(st); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", c.name)
		}
	}
	if _, err := NewFromState(good); err != nil {
		t.Errorf("good snapshot rejected: %v", err)
	}
}
