package energy

import (
	"math"
	"time"

	"github.com/vbcloud/vb/internal/trace"
)

// Solar model constants. The clear-sky envelope follows standard solar
// geometry (declination + hour angle -> elevation); the cloud model maps the
// latent daily regime and intra-day field to a transmittance factor.
const (
	// airMassExponent sharpens the envelope near sunrise/sunset to mimic
	// atmospheric attenuation at low sun angles.
	airMassExponent = 1.2
)

// genSolar produces a normalized solar power series for one site. daily is a
// standard-normal latent per day (higher = cloudier); fast is a
// standard-normal latent per step driving intra-day fluctuation.
func genSolar(cfg SiteConfig, start time.Time, step time.Duration, n, stepsPerDay int, daily, fast []float64) trace.Series {
	out := trace.New(start, step, n)
	latRad := cfg.Latitude * math.Pi / 180

	// Normalize the envelope by this latitude's best possible noon
	// elevation (summer solstice) so the normalized output can reach ~1.0
	// on a perfect summer day.
	maxDecl := 23.45 * math.Pi / 180
	bestNoon := solarElevationSin(latRad, maxDecl, 0)
	if bestNoon <= 0 {
		bestNoon = 1e-3 // polar-night site: envelope will stay ~0 anyway
	}

	for i := 0; i < n; i++ {
		t := out.TimeAt(i).UTC()
		doy := dayOfYear(t)
		decl := solarDeclination(doy)

		// Solar time: offset UTC by longitude (15 degrees per hour).
		solarHour := float64(t.Hour()) + float64(t.Minute())/60 + cfg.Longitude/15
		hourAngle := (solarHour - 12) / 24 * 2 * math.Pi

		elev := solarElevationSin(latRad, decl, hourAngle)
		if elev <= 0 {
			continue // night
		}
		envelope := math.Pow(elev/bestNoon, airMassExponent)
		if envelope > 1 {
			envelope = 1
		}

		dayIdx := i / stepsPerDay
		if dayIdx >= len(daily) {
			dayIdx = len(daily) - 1
		}
		out.Values[i] = envelope * transmittance(classifyRegime(daily[dayIdx]), fast[i])
	}
	return out
}

// transmittance converts the day regime and the intra-day latent into a
// cloud transmittance factor in [0, 1]:
//
//   - sunny days sit near 0.9 with gentle variation,
//   - variable days swing across most of the range (spiky production),
//   - overcast days collapse to a few percent of capacity, matching the
//     paper's observed 3.5% overcast peak vs 77% the following day.
func transmittance(r regime, z float64) float64 {
	switch r {
	case regimeSunny:
		return 0.86 + 0.11*logistic(z, 0, 1.2)
	case regimeVariable:
		// Wide logistic swing: heavy clouds passing between clear spells.
		return 0.10 + 0.88*logistic(z, 0.2, 1.6)
	default: // overcast
		return 0.02 + 0.16*logistic(z, 0, 1.0)
	}
}
