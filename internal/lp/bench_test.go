package lp

import (
	"math"
	"math/rand"
	"testing"
)

// benchProblem builds a deterministic placement-shaped LP: box-bounded
// allocation columns, unbounded-above overflow columns, and a mix of
// equality (demand) and inequality (capacity, linking) rows — the same
// structural mix the scheduler's MIP relaxations exercise.
func benchProblem(nVars, nRows int, seed int64) Problem {
	rng := rand.New(rand.NewSource(seed))
	p := Problem{
		NumVars:   nVars,
		Objective: make([]float64, nVars),
		Lower:     make([]float64, nVars),
		Upper:     make([]float64, nVars),
	}
	for j := 0; j < nVars; j++ {
		p.Objective[j] = 1 + rng.Float64()*4
		if j%3 == 0 {
			p.Upper[j] = 50 + rng.Float64()*100
		} else {
			p.Upper[j] = math.Inf(1)
		}
	}
	for i := 0; i < nRows; i++ {
		c := Constraint{Coeffs: make([]float64, nVars)}
		switch i % 3 {
		case 0: // demand: a sparse equality kept feasible by a slack-ish column
			for k := 0; k < 4; k++ {
				c.Coeffs[rng.Intn(nVars)] = 1
			}
			c.Sense = EQ
			c.RHS = 20 + rng.Float64()*30
		case 1: // capacity: sum of a few columns under a cap
			for k := 0; k < 6; k++ {
				c.Coeffs[rng.Intn(nVars)] = 1 + rng.Float64()
			}
			c.Sense = LE
			c.RHS = 100 + rng.Float64()*200
		default: // coverage: at least some mass across a few columns
			for k := 0; k < 5; k++ {
				c.Coeffs[rng.Intn(nVars)] = 1
			}
			c.Sense = GE
			c.RHS = rng.Float64() * 10
		}
		p.Constraints = append(p.Constraints, c)
	}
	return p
}

// BenchmarkSimplexCold measures a from-scratch instance build and solve per
// iteration: the no-reuse path a one-shot Solve call takes.
func BenchmarkSimplexCold(b *testing.B) {
	p := benchProblem(60, 42, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, err := NewInstance(p)
		if err != nil {
			b.Fatal(err)
		}
		if st, err := in.SolveCurrent(); err != nil || st != Optimal {
			b.Fatalf("status %v err %v", st, err)
		}
	}
}

// BenchmarkSimplexWarm measures a bound-tighten/relax re-solve on a shared
// instance — the branch-and-bound inner loop. The arena is reused, so the
// steady state does no large allocations.
func BenchmarkSimplexWarm(b *testing.B) {
	p := benchProblem(60, 42, 11)
	in, err := NewInstance(p)
	if err != nil {
		b.Fatal(err)
	}
	if st, err := in.SolveCurrent(); err != nil || st != Optimal {
		b.Fatalf("status %v err %v", st, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.ResetBounds()
		// Alternate between two nearby bound sets so every re-solve does
		// real pivoting work instead of a no-op status check.
		j := i % 2
		in.SetBound(j, 0, 5)
		if st, err := in.SolveCurrent(); err != nil || st != Optimal {
			b.Fatalf("status %v err %v", st, err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(in.Pivots())/float64(b.N), "pivots/op")
}

// BenchmarkSimplexReference runs the legacy dense Bland tableau on the same
// problem for a like-for-like comparison.
func BenchmarkSimplexReference(b *testing.B) {
	p := benchProblem(60, 42, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := SolveReference(p)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}
