// Package sim is the multi-site simulation engine: it drives the core
// scheduler with actual power traces and forecast bundles, executes planned
// and forced migrations, and records the per-step migration traffic that the
// paper's Table 1 and Figure 7 report.
//
// The engine distinguishes three kinds of capacity events at a site:
//
//   - planned reallocation: the scheduler's plan moves an app's cores
//     between sites (traffic = moved cores x memory per core);
//   - forced migration: actual power fell below the allocation, degradable
//     cores pause for free (the paper's harvest/spot behaviour) and stable
//     cores migrate to sites with headroom;
//   - pause: stable cores with nowhere to go pause in place, which is an
//     availability violation the result records.
package sim

import (
	"fmt"
	"sort"

	"github.com/vbcloud/vb/internal/core"
	"github.com/vbcloud/vb/internal/fault"
	"github.com/vbcloud/vb/internal/forecast"
	"github.com/vbcloud/vb/internal/obs"
	"github.com/vbcloud/vb/internal/stats"
	"github.com/vbcloud/vb/internal/trace"
	"github.com/vbcloud/vb/internal/workload"
)

// Input bundles everything one policy run needs.
type Input struct {
	// Actual holds one normalized power series per site, all on the plan
	// timeline (same start, step = the scheduler's PlanStep).
	Actual []trace.Series
	// Bundles holds the forecast bundle per site (used by MIP policies).
	Bundles []*forecast.Bundle
	// TotalCores is the fully powered core count of each site.
	TotalCores float64
	// Apps are the application demands, sorted by Start.
	Apps []core.AppDemand
	// Obs, when non-nil, receives per-step metrics and structured events
	// (planned reallocations, forced migrations, pauses, shortfalls) from
	// the engine. A nil registry is a no-op.
	Obs *obs.Registry
	// Faults, when non-nil, injects scripted faults: site blackouts and
	// brownouts scale actual capacity, forecast busts distort predictions,
	// WAN faults cap per-step migration bandwidth, and solver slowdowns
	// derate the scheduler's node budget. A nil injector is the identity
	// and reproduces fault-free runs bit-for-bit.
	Faults *fault.Injector
}

// Validate reports input errors.
func (in Input) Validate() error {
	if len(in.Apps) == 0 {
		return fmt.Errorf("sim: no applications to schedule (Input.Apps is empty)")
	}
	return in.validateStreaming()
}

// Result is the outcome of one policy run.
type Result struct {
	Policy core.Policy
	// Transfer is total migration traffic per plan step, in GB.
	Transfer trace.Series
	// PerApp is total migration traffic per application, in GB.
	PerApp map[int]float64
	// PlannedGB and ForcedGB split the total into scheduler-initiated
	// reallocations and reactive power-shortfall migrations.
	PlannedGB float64
	ForcedGB  float64
	// InBySite and OutBySite break the traffic down per site: a move of X
	// GB from site a to site b adds X to OutBySite[a] and InBySite[b] at
	// that step (the per-site view of the paper's Fig 4 applied to the
	// multi-VB run). Summing either across sites reproduces Transfer.
	InBySite  []trace.Series
	OutBySite []trace.Series
	// PausedStableCoreSteps counts stable cores that had to pause
	// (availability violations) integrated over steps.
	PausedStableCoreSteps float64
	// PerAppPaused breaks the paused core-steps down by application.
	PerAppPaused map[int]float64
	// PerAppDemand is each application's total demanded stable core-steps
	// over its active window; with PerAppPaused it yields availability.
	PerAppDemand map[int]float64
	// ShortfallCoreSteps counts demanded cores the scheduler could not
	// place at all.
	ShortfallCoreSteps float64
	// Placements counts scheduler invocations (placements + replans).
	Placements int
	// Per-SLO-class accounting. Pauses, shortfalls, and demand are
	// attributed to each app's firm classes pro rata by core share; legacy
	// two-class runs record everything under workload.Stable. Absent keys
	// mean zero.
	PausedByClass    map[workload.Class]float64
	ShortfallByClass map[workload.Class]float64
	DemandByClass    map[workload.Class]float64
	// TransferByClass splits Transfer per class and step (same pro-rata
	// attribution), for per-class burst percentiles.
	TransferByClass map[workload.Class]trace.Series
}

// ClassAvailability returns the served fraction of class c's demanded
// core-steps — pauses and shortfalls both count against it — or 1 when the
// class recorded no demand.
func (r Result) ClassAvailability(c workload.Class) float64 {
	d := r.DemandByClass[c]
	if d <= 0 {
		return 1
	}
	av := 1 - (r.PausedByClass[c]+r.ShortfallByClass[c])/d
	if av < 0 {
		return 0
	}
	return av
}

// Classes lists the SLO classes with recorded demand, most critical first
// (workload.AllClasses order).
func (r Result) Classes() []workload.Class {
	var out []workload.Class
	for _, c := range workload.AllClasses {
		if r.DemandByClass[c] > 0 {
			out = append(out, c)
		}
	}
	return out
}

// Summary computes the paper's Table 1 row: total, 99th percentile, peak
// and standard deviation of per-step transfer (GB).
func (r Result) Summary() (total, p99, peak, std float64, err error) {
	s, err := stats.Summarize(r.Transfer.Values)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return s.Total, s.P99, s.Max, s.Std, nil
}

// ZeroFraction is the fraction of steps with no migration traffic (Fig 7's
// CDF intercept).
func (r Result) ZeroFraction() float64 { return r.Transfer.FractionZero(1e-9) }

// Availability returns the fraction of an application's demanded stable
// core-steps that were actually served (1 = never paused or shorted). It
// returns 1 for apps with no recorded demand.
func (r Result) Availability(appID int) float64 {
	d := r.PerAppDemand[appID]
	if d <= 0 {
		return 1
	}
	av := 1 - r.PerAppPaused[appID]/d
	if av < 0 {
		return 0
	}
	return av
}

// MeanAvailability averages Availability over all applications with
// recorded demand (1 when there are none). The sum runs in app-ID order:
// float addition is not associative, so summing in map-iteration order
// would jitter the mean by an ulp between otherwise identical runs.
func (r Result) MeanAvailability() float64 {
	if len(r.PerAppDemand) == 0 {
		return 1
	}
	ids := make([]int, 0, len(r.PerAppDemand))
	for id := range r.PerAppDemand {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var sum float64
	for _, id := range ids {
		sum += r.Availability(id)
	}
	return sum / float64(len(r.PerAppDemand))
}

// Run simulates one policy over the inputs. It is a thin batch loop over
// Engine.Advance: sort the demands by arrival, feed each step the prefix
// that has arrived, and return the engine's accumulated result.
func Run(cfg core.Config, in Input) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	eng, err := NewEngine(cfg, in)
	if err != nil {
		return Result{}, err
	}
	defer obs.Time(eng.reg, "sim.run")()

	apps := append([]core.AppDemand(nil), in.Apps...)
	sort.Slice(apps, func(i, j int) bool { return apps[i].Start.Before(apps[j].Start) })
	nextApp := 0
	for !eng.Done() {
		now := eng.Now()
		var arrivals []core.AppDemand
		for nextApp < len(apps) && !apps[nextApp].Start.After(now) {
			arrivals = append(arrivals, apps[nextApp])
			nextApp++
		}
		if _, err := eng.Advance(arrivals); err != nil {
			return Result{}, err
		}
	}
	return eng.Result(), nil
}

// effectiveUtil mirrors core.Config's utilization defaulting.
func effectiveUtil(cfg core.Config) float64 {
	if cfg.UtilTarget <= 0 || cfg.UtilTarget > 1 {
		return 0.7
	}
	return cfg.UtilTarget
}
