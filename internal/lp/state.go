package lp

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Instance state serialization for crash recovery of long-lived schedulers.
//
// A warm-started solve's pivot path — and therefore which of several
// alternate optimal vertices it returns — depends on the exact numeric
// state the previous solve left behind: the basis, the nonbasic variable
// statuses, the basis factorization, and the incrementally maintained
// reduced costs. Snapshotting a daemon mid-run therefore has to round-trip
// all of it bit-exactly, or a restored process replans onto different
// (equally optimal, but different) vertices than the uninterrupted one
// would. Gob encodes float64 by bit pattern, so the round trip is exact,
// infinities included.
//
// Compatibility: Mode selects the basis representation. Snapshots written
// before the sparse LU kernel carry no Mode field, which gob decodes as the
// zero value — modeDense — so old payloads restore onto the retained dense
// product-form path and replay the exact arithmetic of the process that
// wrote them. Sparse-mode snapshots (modeSparseLU) carry the full LU and
// eta chain bit-exactly.

const (
	modeDense    int8 = 0 // legacy dense product-form inverse (gob zero value)
	modeSparseLU int8 = 1
)

// instanceState mirrors every Instance field that outlives a solve. The
// scratch arrays (accum, w, y, rowScratch, valScratch, cb1) are overwritten before
// every use and are reallocated empty on decode.
type instanceState struct {
	M, NStruct int
	Maximize   bool

	Cmin, B        []float64
	Senses         []Sense
	BaseLo, BaseHi []float64

	ColPtr, ColRow []int32
	ColVal         []float64
	RowPtr, RowCol []int32
	RowVal         []float64

	Lo, Hi []float64
	Basis  []int32
	Vstat  []int8
	XB     []float64
	Ready  bool
	D      []float64
	DExact bool

	Pivots    int64
	Refactors int64

	// Mode 0 (dense): Binv/BinvIdent. Old snapshots have only these.
	Mode      int8
	Binv      []float64
	BinvIdent bool

	// Mode 1 (sparse LU): factorization plus eta chain.
	LuPivRow, LuPivCol []int32
	LuLPtr, LuLIdx     []int32
	LuLVal             []float64
	LuUPtr, LuUIdx     []int32
	LuUVal             []float64
	LuDiag             []float64
	LuTrivial          bool
	EtaRow             []int32
	EtaPiv             []float64
	EtaPtr, EtaIdx     []int32
	EtaVal             []float64
}

// GobEncode serializes the compiled problem and the warm solver state.
func (in *Instance) GobEncode() ([]byte, error) {
	st := instanceState{
		M: in.m, NStruct: in.nStruct, Maximize: in.maximize,
		Cmin: in.cmin, B: in.b, Senses: in.senses,
		BaseLo: in.baseLo, BaseHi: in.baseHi,
		ColPtr: in.colPtr, ColRow: in.colRow, ColVal: in.colVal,
		RowPtr: in.rowPtr, RowCol: in.rowCol, RowVal: in.rowVal,
		Lo: in.lo, Hi: in.hi,
		Basis: in.basis, Vstat: in.vstat,
		XB: in.xB, Ready: in.ready,
		D: in.d, DExact: in.dExact,
		Pivots: in.pivots, Refactors: in.refactors,
	}
	switch f := in.fac.(type) {
	case *denseFactor:
		st.Mode = modeDense
		st.Binv, st.BinvIdent = f.binv, f.ident
	case *sparseLU:
		st.Mode = modeSparseLU
		st.LuPivRow, st.LuPivCol = f.pivRow, f.pivCol
		st.LuLPtr, st.LuLIdx, st.LuLVal = f.lPtr, f.lIdx, f.lVal
		st.LuUPtr, st.LuUIdx, st.LuUVal = f.uPtr, f.uIdx, f.uVal
		st.LuDiag, st.LuTrivial = f.diag, f.trivial
		st.EtaRow, st.EtaPiv = f.etaRow, f.etaPiv
		st.EtaPtr, st.EtaIdx, st.EtaVal = f.etaPtr, f.etaIdx, f.etaVal
	default:
		return nil, fmt.Errorf("lp: encoding instance: unknown basis representation %T", in.fac)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("lp: encoding instance: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode restores an instance serialized by GobEncode. The decoded
// instance solves exactly as the original would have: same warm basis,
// same factorization, same reduced costs, hence the same pivot path.
func (in *Instance) GobDecode(b []byte) error {
	var st instanceState
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&st); err != nil {
		return fmt.Errorf("lp: decoding instance: %w", err)
	}
	m, ns := st.M, st.NStruct
	n := ns + m
	if m < 0 || ns <= 0 {
		return fmt.Errorf("lp: decoded instance has %d rows, %d vars", m, ns)
	}
	for _, c := range []struct {
		name string
		got  int
		want int
	}{
		{"cmin", len(st.Cmin), n}, {"b", len(st.B), m}, {"senses", len(st.Senses), m},
		{"baseLo", len(st.BaseLo), n}, {"baseHi", len(st.BaseHi), n},
		{"colPtr", len(st.ColPtr), ns + 1}, {"rowPtr", len(st.RowPtr), m + 1},
		{"lo", len(st.Lo), n}, {"hi", len(st.Hi), n},
		{"basis", len(st.Basis), m}, {"vstat", len(st.Vstat), n},
		{"xB", len(st.XB), m}, {"d", len(st.D), n},
	} {
		if c.got != c.want {
			return fmt.Errorf("lp: decoded instance %s has %d entries, want %d", c.name, c.got, c.want)
		}
	}
	fac, err := decodeFactor(&st, m)
	if err != nil {
		return err
	}
	*in = Instance{
		m: m, nStruct: ns, n: n, maximize: st.Maximize,
		cmin: st.Cmin, b: st.B, senses: st.Senses,
		baseLo: st.BaseLo, baseHi: st.BaseHi,
		colPtr: st.ColPtr, colRow: st.ColRow, colVal: st.ColVal,
		rowPtr: st.RowPtr, rowCol: st.RowCol, rowVal: st.RowVal,
		lo: st.Lo, hi: st.Hi,
		basis: st.Basis, vstat: st.Vstat,
		fac: fac,
		xB:  st.XB, ready: st.Ready,
		d: st.D, dExact: st.DExact,
		pivots: st.Pivots, refactors: st.Refactors,
		accum:      make([]float64, m),
		w:          make([]float64, m),
		y:          make([]float64, m),
		rowScratch: make([]float64, m),
		valScratch: make([]float64, n),
		cb1:        make([]int8, m),
	}
	return nil
}

// decodeFactor validates and rebuilds the basis representation for the
// snapshot's Mode. Gob omits empty slices, so canonical empty forms (ptr
// arrays with a leading zero) are re-normalized here before validation —
// a freshly decoded factor must re-encode to the same bytes.
func decodeFactor(st *instanceState, m int) (factorizer, error) {
	if st.Mode == modeDense {
		if len(st.Binv) != m*m {
			return nil, fmt.Errorf("lp: decoded instance binv has %d entries, want %d", len(st.Binv), m*m)
		}
		return &denseFactor{m: m, binv: st.Binv, ident: st.BinvIdent, tmp: make([]float64, m)}, nil
	}
	if st.Mode != modeSparseLU {
		return nil, fmt.Errorf("lp: decoded instance has unknown basis mode %d", st.Mode)
	}
	if len(st.LuLPtr) == 0 {
		st.LuLPtr = []int32{0}
	}
	if len(st.LuUPtr) == 0 {
		st.LuUPtr = []int32{0}
	}
	if len(st.EtaPtr) == 0 {
		st.EtaPtr = []int32{0}
	}
	ne := len(st.EtaRow)
	for _, c := range []struct {
		name string
		got  int
		want int
	}{
		{"lu pivRow", len(st.LuPivRow), m}, {"lu pivCol", len(st.LuPivCol), m},
		{"lu diag", len(st.LuDiag), m},
		{"lu lPtr", len(st.LuLPtr), m + 1}, {"lu uPtr", len(st.LuUPtr), m + 1},
		{"lu lVal", len(st.LuLVal), len(st.LuLIdx)}, {"lu uVal", len(st.LuUVal), len(st.LuUIdx)},
		{"eta piv", len(st.EtaPiv), ne}, {"eta ptr", len(st.EtaPtr), ne + 1},
		{"eta val", len(st.EtaVal), len(st.EtaIdx)},
	} {
		if c.got != c.want {
			return nil, fmt.Errorf("lp: decoded instance %s has %d entries, want %d", c.name, c.got, c.want)
		}
	}
	if m > 0 && (int(st.LuLPtr[m]) != len(st.LuLIdx) || int(st.LuUPtr[m]) != len(st.LuUIdx)) {
		return nil, fmt.Errorf("lp: decoded instance LU pointers inconsistent with index arrays")
	}
	if m == 0 && (len(st.LuLIdx) != 0 || len(st.LuUIdx) != 0) {
		return nil, fmt.Errorf("lp: decoded instance LU pointers inconsistent with index arrays")
	}
	if int(st.EtaPtr[ne]) != len(st.EtaIdx) {
		return nil, fmt.Errorf("lp: decoded instance eta pointers inconsistent with index arrays")
	}
	checkIdx := func(name string, idx []int32) error {
		for _, r := range idx {
			if r < 0 || int(r) >= m {
				return fmt.Errorf("lp: decoded instance %s index %d out of range [0,%d)", name, r, m)
			}
		}
		return nil
	}
	for _, c := range []struct {
		name string
		idx  []int32
	}{
		{"lu pivRow", st.LuPivRow}, {"lu pivCol", st.LuPivCol},
		{"lu L", st.LuLIdx}, {"lu U", st.LuUIdx},
		{"eta row", st.EtaRow}, {"eta", st.EtaIdx},
	} {
		if err := checkIdx(c.name, c.idx); err != nil {
			return nil, err
		}
	}
	return &sparseLU{
		m:      m,
		pivRow: st.LuPivRow, pivCol: st.LuPivCol,
		lPtr: st.LuLPtr, lIdx: st.LuLIdx, lVal: nonNilF(st.LuLVal),
		uPtr: st.LuUPtr, uIdx: st.LuUIdx, uVal: nonNilF(st.LuUVal),
		diag: st.LuDiag, trivial: st.LuTrivial,
		etaRow: nonNilI(st.EtaRow), etaPiv: nonNilF(st.EtaPiv),
		etaPtr: st.EtaPtr, etaIdx: nonNilI(st.EtaIdx), etaVal: nonNilF(st.EtaVal),
		work: make([]float64, m),
	}, nil
}

func nonNilF(s []float64) []float64 {
	if s == nil {
		return []float64{}
	}
	return s
}

func nonNilI(s []int32) []int32 {
	if s == nil {
		return []int32{}
	}
	return s
}
