package vb

import (
	"fmt"
	"strings"

	"github.com/vbcloud/vb/internal/core"
	"github.com/vbcloud/vb/internal/sim"
)

// This file regenerates the robustness experiment behind ISSUE 9: how much
// service the multi-VB group keeps delivering when sites black out or the
// solver degrades. The paper's scheduler goal (i) is availability of stable
// resources; the outage sweep quantifies how gracefully that goal degrades
// when N of the trio's three sites lose power for a full day, and how the
// scheduler's fallback ladder (MIP -> rounded LP -> greedy) absorbs solver
// pressure without ever failing a step.

// outageDays is the simulated span of the outage experiment. Four days keeps
// the sweep cheap (7 runs) while leaving a full pre-outage day, a full
// blackout day, and a recovery day.
const outageDays = 4

// OutageRow is one (scenario, policy) cell of the availability-under-outage
// sweep.
type OutageRow struct {
	// Label names the fault scenario ("no faults", "1-site blackout", ...).
	Label  string
	Policy Policy
	// MeanAvailability is the mean fraction of demanded stable core-steps
	// served across apps — the scheduler's goal (i) under duress.
	MeanAvailability float64
	// PausedStableCoreSteps counts availability violations (stable cores
	// paused), integrated over steps.
	PausedStableCoreSteps float64
	// ShortfallCoreSteps counts demanded cores the scheduler could not
	// place at all.
	ShortfallCoreSteps float64
	// TransferGB is the total migration traffic: outages force evacuations.
	TransferGB float64
	// Fallbacks counts scheduler steps that fell down the degradation
	// ladder (rounded-LP incumbent or greedy instead of full MIP).
	Fallbacks float64
	// DeadlineExceeded counts solves truncated by deadline or derated node
	// budget.
	DeadlineExceeded float64
}

// OutageResult is the availability-under-outage table.
type OutageResult struct {
	Rows []OutageRow
	// BlackoutSteps is the [start, end) plan-step window of the injected
	// blackouts.
	BlackoutSteps [2]int
}

// AvailabilityUnderOutage sweeps N = 0, 1, 2 simultaneous one-day site
// blackouts over the paper's European trio for the Greedy and MIP policies,
// plus a solver-slowdown scenario that forces the MIP down its fallback
// ladder. Every run is deterministic given the seed; the zero-fault rows are
// bit-identical to the seed experiment (the fault hooks are exact
// identities when no event is active).
func AvailabilityUnderOutage(seed uint64) (OutageResult, error) {
	// Steps are 6-hourly: day 3 of the 4-day run is steps [8, 12).
	const blackoutStart, blackoutEnd = 8, 12
	res := OutageResult{BlackoutSteps: [2]int{blackoutStart, blackoutEnd}}

	type scenario struct {
		label  string
		script *FaultScript
	}
	// Black out the load-bearing sites first: at the default seed the MIP
	// parks most demand on sites 1 and 2 during day 3, so the sweep measures
	// losing capacity the schedule actually uses.
	blackoutOrder := []int{1, 2}
	scenarios := []scenario{{label: "no faults"}}
	for n := 1; n <= 2; n++ {
		s := &FaultScript{}
		for _, site := range blackoutOrder[:n] {
			s.Events = append(s.Events, FaultEvent{
				Kind: FaultSiteBlackout, Site: site,
				Start: blackoutStart, End: blackoutEnd,
			})
		}
		scenarios = append(scenarios, scenario{
			label:  fmt.Sprintf("%d-site blackout", n),
			script: s,
		})
	}
	// The solver-slowdown scenario inflates solve latency 4096x for the
	// whole run: the node budget derates to 1/4096th, the MIP abandons
	// optimality and the degradation ladder serves rounded-LP/greedy
	// incumbents instead (visible in the Fallback/DeadlineX columns).
	slowdown := &FaultScript{Events: []FaultEvent{{
		Kind: FaultSolverSlowdown, Site: -1, Severity: 4096,
		Start: 0, End: outageDays * 4,
	}}}

	run := func(label string, pol Policy, script *FaultScript) (OutageRow, error) {
		reg := NewMetrics()
		in, _, err := buildTable1Input(Table1Setup{
			Seed: seed, Days: outageDays, Faults: script, Obs: reg,
		}.withDefaults(), table1Start)
		if err != nil {
			return OutageRow{}, err
		}
		cfg := core.Config{
			Policy:         pol,
			PlanStep:       Table1PlanStep,
			UtilTarget:     0.7,
			MaxSitesPerApp: 3,
			Obs:            reg,
		}
		r, err := sim.Run(cfg, in)
		if err != nil {
			return OutageRow{}, fmt.Errorf("vb: outage %q policy %v: %w", label, pol, err)
		}
		return OutageRow{
			Label:                 label,
			Policy:                pol,
			MeanAvailability:      r.MeanAvailability(),
			PausedStableCoreSteps: r.PausedStableCoreSteps,
			ShortfallCoreSteps:    r.ShortfallCoreSteps,
			TransferGB:            r.Transfer.Total(),
			Fallbacks:             reg.Counter("scheduler.fallback.count"),
			DeadlineExceeded:      reg.Counter("solver.deadline_exceeded"),
		}, nil
	}

	for _, sc := range scenarios {
		for _, pol := range []Policy{PolicyGreedy, PolicyMIP} {
			row, err := run(sc.label, pol, sc.script)
			if err != nil {
				return OutageResult{}, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	row, err := run("4096x solver slowdown", PolicyMIP, slowdown)
	if err != nil {
		return OutageResult{}, err
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

// Row returns the first row matching (label, policy), or false.
func (r OutageResult) Row(label string, p Policy) (OutageRow, bool) {
	for _, row := range r.Rows {
		if row.Label == label && row.Policy == p {
			return row, true
		}
	}
	return OutageRow{}, false
}

// Report renders the availability-under-outage table.
func (r OutageResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Availability under outage (%d-day run; blackouts cover steps [%d,%d))\n",
		outageDays, r.BlackoutSteps[0], r.BlackoutSteps[1])
	b.WriteString("  Scenario             Policy    Avail%  Paused   Short    Transfer  Fallback  DeadlineX\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-20s %-9s %5.2f%%  %-8.0f %-8.0f %-9.0f %-9.0f %.0f\n",
			row.Label, row.Policy, row.MeanAvailability*100,
			row.PausedStableCoreSteps, row.ShortfallCoreSteps, row.TransferGB,
			row.Fallbacks, row.DeadlineExceeded)
	}
	return b.String()
}
