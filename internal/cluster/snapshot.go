package cluster

// Snapshot is a point-in-time view of a site's packing state, useful for
// studying consolidation quality (the paper's step 4 places VMs to
// "minimize total power usage by consolidating as much as possible").
type Snapshot struct {
	// Servers is the machine count; OccupiedServers hold at least one VM.
	Servers, OccupiedServers int
	// PoweredCores and AllocatedCores mirror the site accessors.
	PoweredCores, AllocatedCores int
	// FreeCores is powered minus allocated (never negative).
	FreeCores int
	// MaxFreeCoresOneServer is the largest contiguous allocation a single
	// server could still take.
	MaxFreeCoresOneServer int
	// MaxFreeMemGBOneServer is the matching memory headroom.
	MaxFreeMemGBOneServer int
	// Fragmentation is 1 - (largest placeable VM / total free cores): 0
	// when all free capacity sits on one server, approaching 1 when free
	// cores are scattered in unusable slivers. Zero free cores score 0.
	Fragmentation float64
}

// Snapshot captures the current packing state.
func (s *Site) Snapshot() Snapshot {
	snap := Snapshot{
		Servers:        len(s.servers),
		PoweredCores:   s.powered,
		AllocatedCores: s.alloc,
	}
	totalFree := 0
	for i := range s.servers {
		srv := &s.servers[i]
		if len(srv.vms) > 0 {
			snap.OccupiedServers++
		}
		freeCores := s.cfg.CoresPerServer - srv.allocCores
		freeMem := s.cfg.MemPerServerGB - srv.allocMemGB
		totalFree += freeCores
		if freeCores > snap.MaxFreeCoresOneServer {
			snap.MaxFreeCoresOneServer = freeCores
		}
		if freeMem > snap.MaxFreeMemGBOneServer {
			snap.MaxFreeMemGBOneServer = freeMem
		}
	}
	snap.FreeCores = s.powered - s.alloc
	if snap.FreeCores < 0 {
		snap.FreeCores = 0
	}
	if totalFree > 0 {
		snap.Fragmentation = 1 - float64(snap.MaxFreeCoresOneServer)/float64(totalFree)
	}
	return snap
}
