package energy

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"time"

	"github.com/vbcloud/vb/internal/obs"
	"github.com/vbcloud/vb/internal/par"
	"github.com/vbcloud/vb/internal/trace"
)

// World generates correlated power traces for a set of sites. Nearby sites
// share regional weather (through a latent anchor-grid factor model) while
// distant sites and different source types decorrelate — the structure the
// multi-VB analysis of §2.3 depends on.
//
// All output is deterministic given Seed and the site list.
type World struct {
	// Seed drives all randomness.
	Seed uint64
	// CorrelationKM is the e-folding distance of inter-site weather
	// correlation. Zero selects the default of 500 km.
	CorrelationKM float64
	// RegionalShare in [0, 1) is the fraction of a site's weather variance
	// explained by regional (shared) drivers; the rest is micro-climate.
	// Zero selects the default of 0.8.
	RegionalShare float64
	// Obs, when non-nil, receives trace-generation timings and sample
	// counters. A nil registry is a no-op.
	Obs *obs.Registry
	// Workers bounds the goroutines generating per-site series. Zero
	// selects the package default (par.Default, normally GOMAXPROCS); one
	// forces the serial path. Output is bit-identical for every setting:
	// each site draws only from its own name-keyed sub-RNG.
	Workers int
}

// NewWorld returns a World with default correlation structure.
func NewWorld(seed uint64) *World {
	return &World{Seed: seed, CorrelationKM: 500, RegionalShare: 0.8}
}

func (w *World) correlationKM() float64 {
	if w.CorrelationKM <= 0 {
		return 500
	}
	return w.CorrelationKM
}

func (w *World) regionalShare() float64 {
	if w.RegionalShare <= 0 || w.RegionalShare >= 1 {
		return 0.8
	}
	return w.RegionalShare
}

// subRNG returns a deterministic RNG stream namespaced by a label.
func (w *World) subRNG(label string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", w.Seed, label)
	s := h.Sum64()
	return rand.New(rand.NewPCG(s, s^0x9e3779b97f4a7c15))
}

// anchor is one latent weather factor location.
type anchor struct {
	lat, lon float64
}

// anchorGrid lays a grid of weather anchors over the bounding box of the
// sites, expanded by one cell so edge sites are interior.
func anchorGrid(cfgs []SiteConfig) []anchor {
	const gridN = 4
	minLat, maxLat := math.Inf(1), math.Inf(-1)
	minLon, maxLon := math.Inf(1), math.Inf(-1)
	for _, c := range cfgs {
		minLat = math.Min(minLat, c.Latitude)
		maxLat = math.Max(maxLat, c.Latitude)
		minLon = math.Min(minLon, c.Longitude)
		maxLon = math.Max(maxLon, c.Longitude)
	}
	// Pad so a single site still gets a spread of anchors.
	latPad := math.Max(2, (maxLat-minLat)/gridN)
	lonPad := math.Max(2, (maxLon-minLon)/gridN)
	minLat, maxLat = minLat-latPad, maxLat+latPad
	minLon, maxLon = minLon-lonPad, maxLon+lonPad
	anchors := make([]anchor, 0, gridN*gridN)
	for i := 0; i < gridN; i++ {
		for j := 0; j < gridN; j++ {
			anchors = append(anchors, anchor{
				lat: minLat + (maxLat-minLat)*float64(i)/(gridN-1),
				lon: minLon + (maxLon-minLon)*float64(j)/(gridN-1),
			})
		}
	}
	return anchors
}

// anchorWeights returns per-anchor loadings for a site such that the summed
// squared weight equals the regional share (so the site latent keeps unit
// variance after adding sqrt(1-share^2) of local noise). Correlation between
// two sites is share^2 times the cosine similarity of their loading vectors,
// which decays with distance at the CorrelationKM scale.
func (w *World) anchorWeights(cfg SiteConfig, anchors []anchor) []float64 {
	scale := w.correlationKM()
	raw := make([]float64, len(anchors))
	var norm float64
	for i, a := range anchors {
		d := DistanceKM(cfg, SiteConfig{Latitude: a.lat, Longitude: a.lon})
		raw[i] = corrWeight(d, scale)
		norm += raw[i] * raw[i]
	}
	norm = math.Sqrt(norm)
	share := w.regionalShare()
	for i := range raw {
		if norm > 0 {
			raw[i] = share * raw[i] / norm
		}
	}
	return raw
}

// anchorSeries holds the latent weather processes of one anchor.
type anchorSeries struct {
	cloudDaily []float64 // one per day, slow OU (weather systems)
	cloudFast  []float64 // one per step, intra-day cloud field
	windSyn    []float64 // one per step, synoptic wind driver
}

// stepsPerDay returns how many steps of the given size make one day, erroring
// when a day is not a whole number of steps (the generators assume it is).
func stepsPerDay(step time.Duration) (int, error) {
	if step <= 0 {
		return 0, trace.ErrBadStep
	}
	if (24*time.Hour)%step != 0 {
		return 0, fmt.Errorf("energy: step %v does not divide a day", step)
	}
	return int(24 * time.Hour / step), nil
}

// Generate produces one normalized power series (values in [0, 1], fraction
// of nameplate capacity) per site, jointly so that the correlation structure
// is consistent. All sites share the same time base.
func (w *World) Generate(cfgs []SiteConfig, start time.Time, step time.Duration, n int) ([]trace.Series, error) {
	defer obs.Time(w.Obs, "energy.generate")()
	w.Obs.Add("energy.samples", float64(n*len(cfgs)))
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("energy: no sites")
	}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	if n <= 0 {
		return nil, fmt.Errorf("energy: non-positive sample count %d", n)
	}
	spd, err := stepsPerDay(step)
	if err != nil {
		return nil, err
	}
	nDays := (n+spd-1)/spd + 1

	// Anchor latents fan out first: each anchor draws from its own
	// name-keyed sub-RNG, so worker count cannot change the samples.
	anchors := anchorGrid(cfgs)
	anchorData := make([]anchorSeries, len(anchors))
	err = par.ForEach(context.Background(), len(anchors), w.Workers, func(i int) error {
		rng := w.subRNG(fmt.Sprintf("anchor/%d", i))
		anchorData[i] = anchorSeries{
			cloudDaily: genOU(2.2, nDays, rng),          // ~2-day weather systems
			cloudFast:  genOU(float64(spd)/4, n, rng),   // ~6 h intra-day cloud field
			windSyn:    genOU(2.5*float64(spd), n, rng), // ~2.5-day synoptic wind
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// The per-site pass fans out: each site reads only the shared anchor
	// latents and its own name-keyed sub-RNG, so any worker count produces
	// bit-identical series (asserted by TestGenerateParallelDeterminism).
	out := make([]trace.Series, len(cfgs))
	err = par.ForEach(context.Background(), len(cfgs), w.Workers, func(si int) error {
		cfg := cfgs[si]
		weights := w.anchorWeights(cfg, anchors)
		local := math.Sqrt(1 - w.regionalShare()*w.regionalShare())
		rng := w.subRNG("site/" + cfg.Name)
		switch cfg.Source {
		case Solar:
			daily := mixSeries(weights, anchorData, func(a anchorSeries) []float64 { return a.cloudDaily },
				genOU(2.2, nDays, rng), local)
			fast := mixSeries(weights, anchorData, func(a anchorSeries) []float64 { return a.cloudFast },
				genOU(float64(spd)/4, n, rng), local)
			out[si] = genSolar(cfg, start, step, n, spd, daily, fast)
		case Wind:
			syn := mixSeries(weights, anchorData, func(a anchorSeries) []float64 { return a.windSyn },
				genOU(2.5*float64(spd), n, rng), local)
			meso := genOU(float64(spd)/6, n, rng) // ~4 h local gust structure
			out[si] = genWind(cfg, start, step, n, syn, meso)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GeneratePower is Generate scaled by each site's CapacityMW, yielding
// megawatt series.
func (w *World) GeneratePower(cfgs []SiteConfig, start time.Time, step time.Duration, n int) ([]trace.Series, error) {
	norm, err := w.Generate(cfgs, start, step, n)
	if err != nil {
		return nil, err
	}
	for i := range norm {
		norm[i] = norm[i].Scale(cfgs[i].CapacityMW)
	}
	return norm, nil
}

// genOU samples n steps of a standardized OU process with the given time
// constant (in steps).
func genOU(tau float64, n int, rng *rand.Rand) []float64 {
	p := newOU(tau, rng)
	out := make([]float64, n)
	for i := range out {
		out[i] = p.step()
	}
	return out
}

// mixSeries blends anchor latents (selected by pick) with a local latent
// using the site's anchor weights; localScale is sqrt(1 - regionalShare^2).
func mixSeries(weights []float64, anchors []anchorSeries, pick func(anchorSeries) []float64, local []float64, localScale float64) []float64 {
	out := make([]float64, len(local))
	for i := range out {
		var v float64
		for k := range anchors {
			v += weights[k] * pick(anchors[k])[i]
		}
		out[i] = v + localScale*local[i]
	}
	return out
}
