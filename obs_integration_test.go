package vb

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestObservedRunReconciles drives a scheduler run with a live JSONL sink
// and checks the acceptance property end to end: the decoded event stream
// and the JSON manifest both reconcile *exactly* (==, not approximately)
// with the sim.Result aggregates.
func TestObservedRunReconciles(t *testing.T) {
	reg := NewMetrics()
	var jsonl bytes.Buffer
	reg.Tracer().SetSink(&jsonl)

	setup := Table1Setup{Seed: DefaultSeed, Days: 3, Obs: reg}.withDefaults()
	in, _, err := buildTable1Input(setup, table1Start)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPolicy(SchedulerConfig{
		Policy:         PolicyMIP,
		PlanStep:       Table1PlanStep,
		UtilTarget:     setup.UtilTarget,
		MaxSitesPerApp: setup.MaxSitesPerApp,
		Obs:            reg,
	}, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Tracer().Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}

	// The JSONL stream holds every event (no ring limit); re-summing the
	// decoded stream in order must give bit-identical totals.
	events, err := ReadTraceEvents(&jsonl)
	if err != nil {
		t.Fatalf("decoding JSONL: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no events written to sink")
	}
	var forcedGB, pausedCores float64
	var plans int
	for _, e := range events {
		switch e.Type {
		case EventForcedMigration:
			forcedGB += e.GB
		case EventStablePause:
			pausedCores += e.Cores
		case EventPlanComputed:
			plans++
		}
	}
	if forcedGB != res.ForcedGB {
		t.Errorf("JSONL forced GB %v != result ForcedGB %v", forcedGB, res.ForcedGB)
	}
	if pausedCores != res.PausedStableCoreSteps {
		t.Errorf("JSONL pause cores %v != result PausedStableCoreSteps %v", pausedCores, res.PausedStableCoreSteps)
	}
	if plans != res.Placements {
		t.Errorf("JSONL plan events %d != result Placements %d", plans, res.Placements)
	}

	// The manifest's exact per-type totals must agree too, and survive a
	// JSON round trip unchanged.
	m := reg.Manifest()
	m.Seed = setup.Seed
	m.Policy = PolicyMIP.String()
	if got := m.Events[EventForcedMigration].GB; got != res.ForcedGB {
		t.Errorf("manifest forced GB %v != result ForcedGB %v", got, res.ForcedGB)
	}
	if got := m.Events[EventStablePause].Cores; got != res.PausedStableCoreSteps {
		t.Errorf("manifest pause cores %v != result PausedStableCoreSteps %v", got, res.PausedStableCoreSteps)
	}
	var out bytes.Buffer
	if err := m.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	var back RunManifest
	if err := json.Unmarshal(out.Bytes(), &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if back.Events[EventForcedMigration] != m.Events[EventForcedMigration] {
		t.Errorf("forced stats changed across JSON round trip: %+v != %+v",
			back.Events[EventForcedMigration], m.Events[EventForcedMigration])
	}
	if back.Policy != m.Policy || back.Seed != m.Seed {
		t.Errorf("manifest metadata changed across round trip: %+v", back)
	}
	if _, ok := back.Histograms["mip.solve"]; !ok {
		t.Error("manifest lost the mip.solve histogram")
	}
	// Solver-health counters from the warm-started simplex core.
	if back.Counters["lp.pivots"] <= 0 {
		t.Errorf("manifest lp.pivots = %v, want > 0", back.Counters["lp.pivots"])
	}
	hits, misses := back.Counters["mip.warmstart.hits"], back.Counters["mip.warmstart.misses"]
	if misses <= 0 {
		t.Errorf("manifest mip.warmstart.misses = %v, want > 0 (first solve per app is a miss)", misses)
	}
	if hits+misses != back.Counters["mip.solves"] && back.Counters["mip.solves"] > 0 {
		t.Logf("warmstart hits %v + misses %v vs solves %v", hits, misses, back.Counters["mip.solves"])
	}
}

// TestFig4MigrationObs checks the single-site cluster path (what vbsim
// drives) emits a well-formed event stream and matches the unobserved run.
func TestFig4MigrationObs(t *testing.T) {
	reg := NewMetrics()
	var jsonl bytes.Buffer
	reg.Tracer().SetSink(&jsonl)
	obsRes, err := Fig4MigrationObs(DefaultSeed, Wind, 3, reg)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Fig4Migration(DefaultSeed, Wind, 3)
	if err != nil {
		t.Fatal(err)
	}
	if obsRes.Run.TotalOutGB() != plain.Run.TotalOutGB() || obsRes.QuietFraction != plain.QuietFraction {
		t.Errorf("observed Fig4 diverged: out %v vs %v", obsRes.Run.TotalOutGB(), plain.Run.TotalOutGB())
	}
	events, err := ReadTraceEvents(&jsonl)
	if err != nil {
		t.Fatalf("decoding JSONL: %v", err)
	}
	var steps int64
	for _, e := range events {
		if e.Type == EventSiteStep {
			steps++
		}
	}
	if steps == 0 {
		t.Error("cluster run emitted no site_step events")
	}
	if got := reg.Tracer().Count(EventSiteStep); got != steps {
		t.Errorf("tracer count %d != sink count %d", got, steps)
	}
	if c := reg.Counter("cluster.out_gb"); c != plain.Run.TotalOutGB() {
		t.Errorf("cluster.out_gb counter %v != run total %v", c, plain.Run.TotalOutGB())
	}
	if h, ok := reg.Histogram("cluster.run"); !ok || h.Count != 1 {
		t.Errorf("cluster.run span = %+v, %v; want one recording", h, ok)
	}
}
