package fault

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
)

// eventWire is the JSON form of an Event, with the kind as its string
// name so scripts are self-describing and stable across enum reordering.
type eventWire struct {
	Kind     string  `json:"kind"`
	Site     int     `json:"site"`
	Peer     int     `json:"peer,omitempty"`
	Start    int     `json:"start"`
	End      int     `json:"end"`
	Severity float64 `json:"severity,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventWire{
		Kind: e.Kind.String(), Site: e.Site, Peer: e.Peer,
		Start: e.Start, End: e.End, Severity: e.Severity,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (e *Event) UnmarshalJSON(b []byte) error {
	var w eventWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	k, err := KindFromString(w.Kind)
	if err != nil {
		return err
	}
	*e = Event{Kind: k, Site: w.Site, Peer: w.Peer, Start: w.Start, End: w.End, Severity: w.Severity}
	return nil
}

// LoadScript reads a JSON fault script from disk.
func LoadScript(path string) (*Script, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: read script: %w", err)
	}
	var s Script
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("fault: parse script %s: %w", path, err)
	}
	return &s, nil
}

// SaveScript writes the script as indented JSON.
func (s *Script) SaveScript(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ParseSpec parses a compact command-line fault spec: a comma-separated
// list of events of the form
//
//	kind:site[:peer]@start-end[=severity]
//
// e.g. "site_blackout:0@12-16,solver_slowdown:-1@0-28=50". Kind may be
// the full name or a short alias (blackout, brownout, cut, degraded,
// bust, slow). Site -1 (or "*") wildcards.
func ParseSpec(spec string) (*Script, error) {
	var s Script
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		e, err := parseSpecEvent(part)
		if err != nil {
			return nil, err
		}
		s.Events = append(s.Events, e)
	}
	if len(s.Events) == 0 {
		return nil, fmt.Errorf("fault: empty spec %q", spec)
	}
	return &s, nil
}

var kindAliases = map[string]Kind{
	"blackout": SiteBlackout, "brownout": SiteBrownout,
	"cut": WANCut, "degraded": WANDegraded,
	"bust": ForecastBust, "slow": SolverSlowdown,
}

func parseSpecEvent(part string) (Event, error) {
	bad := func(why string) (Event, error) {
		return Event{}, fmt.Errorf("fault: spec %q: %s (want kind:site[:peer]@start-end[=severity])", part, why)
	}
	head, rest, ok := strings.Cut(part, "@")
	if !ok {
		return bad("missing @window")
	}
	var e Event
	if sev, after, found := cutLast(rest, "="); found {
		v, err := strconv.ParseFloat(after, 64)
		if err != nil {
			return bad("bad severity")
		}
		e.Severity = v
		rest = sev
	}
	lo, hi, ok := strings.Cut(rest, "-")
	if !ok {
		return bad("window needs start-end")
	}
	var err error
	if e.Start, err = strconv.Atoi(strings.TrimSpace(lo)); err != nil {
		return bad("bad start step")
	}
	if e.End, err = strconv.Atoi(strings.TrimSpace(hi)); err != nil {
		return bad("bad end step")
	}
	fields := strings.Split(head, ":")
	if len(fields) < 2 || len(fields) > 3 {
		return bad("want kind:site or kind:site:peer")
	}
	k, kerr := KindFromString(fields[0])
	if kerr != nil {
		alias, ok := kindAliases[fields[0]]
		if !ok {
			return bad("unknown kind " + fields[0])
		}
		k = alias
	}
	e.Kind = k
	if e.Site, err = parseSite(fields[1]); err != nil {
		return bad("bad site")
	}
	if len(fields) == 3 {
		if e.Peer, err = parseSite(fields[2]); err != nil {
			return bad("bad peer")
		}
	}
	return e, nil
}

func parseSite(s string) (int, error) {
	s = strings.TrimSpace(s)
	if s == "*" {
		return -1, nil
	}
	return strconv.Atoi(s)
}

// cutLast splits on the last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

// RandomConfig parameterizes RandomScript.
type RandomConfig struct {
	// NumSites and Steps are the scenario dimensions.
	NumSites int
	Steps    int
	// Events is how many events to draw (default 8).
	Events int
	// MaxWindow caps an event's duration in steps (default Steps/4).
	MaxWindow int
}

// RandomScript draws a valid random fault script from the given seed.
// The draw is deterministic: the same seed and config produce the same
// script on every platform.
func RandomScript(seed int64, cfg RandomConfig) *Script {
	if cfg.Events <= 0 {
		cfg.Events = 8
	}
	if cfg.MaxWindow <= 0 {
		cfg.MaxWindow = cfg.Steps/4 + 1
	}
	rng := rand.New(rand.NewSource(seed))
	var s Script
	for i := 0; i < cfg.Events; i++ {
		k := Kind(rng.Intn(numKinds))
		start := rng.Intn(cfg.Steps)
		dur := 1 + rng.Intn(cfg.MaxWindow)
		end := start + dur
		if end > cfg.Steps {
			end = cfg.Steps
		}
		e := Event{Kind: k, Site: rng.Intn(cfg.NumSites), Start: start, End: end}
		switch k {
		case SiteBrownout:
			e.Severity = 0.2 + 0.7*rng.Float64()
		case WANCut:
			e.Peer = rng.Intn(cfg.NumSites)
		case WANDegraded:
			e.Peer = rng.Intn(cfg.NumSites)
			e.Severity = 50 + 450*rng.Float64()
		case ForecastBust:
			e.Severity = 0.5 + rng.Float64()
		case SolverSlowdown:
			e.Site = -1
			e.Severity = 1 + 63*rng.Float64()
		}
		s.Events = append(s.Events, e)
	}
	sort.Slice(s.Events, func(a, b int) bool { return s.Events[a].Start < s.Events[b].Start })
	return &s
}
