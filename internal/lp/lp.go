// Package lp implements linear-program solvers for the scheduling stack.
// It is the optimization substrate under internal/mip and, through it, the
// paper's MIP scheduling policies (§3.1) — Go has no native optimization
// stack, so we build one.
//
// Problems are stated over bounded variables (default x >= 0) with linear
// constraints of any sense. Solve uses the bounded revised simplex in
// revised.go (Dantzig pricing with a Bland anti-cycling fallback, warm-
// startable via Instance); SolveReference in reference.go keeps the original
// dense two-phase Bland tableau as an independent oracle for differential
// tests.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the direction of a linear constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // a·x <= b
	GE              // a·x >= b
	EQ              // a·x == b
)

// String implements fmt.Stringer.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "=="
	}
}

// Constraint is one linear constraint a·x (sense) b. Coeffs shorter than the
// variable count are implicitly zero-padded.
type Constraint struct {
	Coeffs []float64
	Sense  Sense
	RHS    float64
}

// Problem is a linear program over n bounded variables.
type Problem struct {
	// NumVars is the variable count n.
	NumVars int
	// Objective holds the cost coefficients c (len <= n, zero padded).
	Objective []float64
	// Maximize flips the sense of optimization (default: minimize).
	Maximize bool
	// Constraints are the rows.
	Constraints []Constraint
	// Lower and Upper are optional per-variable bounds (len <= n). Missing
	// entries default to [0, +inf): a nil Lower/Upper pair is the classic
	// nonnegative-variable program. Use math.Inf(-1)/math.Inf(1) for
	// unbounded sides. A variable with Lower > Upper makes the problem
	// infeasible (not malformed).
	Lower []float64
	Upper []float64
}

// LowerOf returns variable j's lower bound (default 0).
func (p Problem) LowerOf(j int) float64 {
	if j < len(p.Lower) {
		return p.Lower[j]
	}
	return 0
}

// UpperOf returns variable j's upper bound (default +inf).
func (p Problem) UpperOf(j int) float64 {
	if j < len(p.Upper) {
		return p.Upper[j]
	}
	return math.Inf(1)
}

// Status reports how solving ended.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	default:
		return "unbounded"
	}
}

// Solution is the result of Solve.
type Solution struct {
	Status Status
	// X is the optimal assignment (len NumVars), valid when Status ==
	// Optimal.
	X []float64
	// Objective is the optimal objective value in the problem's own sense.
	Objective float64
	// Pivots is the number of simplex pivots the solve performed.
	Pivots int64
}

// ErrBadProblem reports a malformed problem.
var ErrBadProblem = errors.New("lp: malformed problem")

// ErrInterrupted reports a solve abandoned by the interrupt hook (see
// Instance.SetInterrupt) before reaching a conclusion. The basis state is
// consistent but not optimal; callers treat it as a deadline, not a
// numerical failure.
var ErrInterrupted = errors.New("lp: solve interrupted")

const eps = 1e-9

// Validate reports structural problems.
func (p Problem) Validate() error {
	if p.NumVars <= 0 {
		return fmt.Errorf("%w: NumVars = %d", ErrBadProblem, p.NumVars)
	}
	if len(p.Objective) > p.NumVars {
		return fmt.Errorf("%w: objective has %d coeffs for %d vars", ErrBadProblem, len(p.Objective), p.NumVars)
	}
	if len(p.Lower) > p.NumVars {
		return fmt.Errorf("%w: %d lower bounds for %d vars", ErrBadProblem, len(p.Lower), p.NumVars)
	}
	if len(p.Upper) > p.NumVars {
		return fmt.Errorf("%w: %d upper bounds for %d vars", ErrBadProblem, len(p.Upper), p.NumVars)
	}
	for j, v := range p.Lower {
		if math.IsNaN(v) || math.IsInf(v, 1) {
			return fmt.Errorf("%w: variable %d lower bound %v", ErrBadProblem, j, v)
		}
	}
	for j, v := range p.Upper {
		if math.IsNaN(v) || math.IsInf(v, -1) {
			return fmt.Errorf("%w: variable %d upper bound %v", ErrBadProblem, j, v)
		}
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) > p.NumVars {
			return fmt.Errorf("%w: constraint %d has %d coeffs for %d vars", ErrBadProblem, i, len(c.Coeffs), p.NumVars)
		}
		if c.Sense != LE && c.Sense != GE && c.Sense != EQ {
			return fmt.Errorf("%w: constraint %d has unknown sense %d", ErrBadProblem, i, int(c.Sense))
		}
		for _, v := range c.Coeffs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: constraint %d has non-finite coefficient", ErrBadProblem, i)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("%w: constraint %d has non-finite RHS", ErrBadProblem, i)
		}
	}
	for _, v := range p.Objective {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite objective coefficient", ErrBadProblem)
		}
	}
	return nil
}

// Solve solves the linear program with the bounded revised simplex.
func Solve(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	in, err := NewInstance(p)
	if err != nil {
		return Solution{}, err
	}
	st, err := in.SolveCurrent()
	if err != nil {
		return Solution{}, err
	}
	sol := Solution{Status: st, Pivots: in.Pivots()}
	if st == Optimal {
		sol.X = in.Values(nil)
		for j, c := range p.Objective {
			sol.Objective += c * sol.X[j]
		}
	}
	return sol, nil
}
