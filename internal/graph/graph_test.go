package graph

import (
	"testing"
	"time"

	"github.com/vbcloud/vb/internal/energy"
	"github.com/vbcloud/vb/internal/trace"
)

// clusteredSites returns two tight clusters of sites far from each other:
// {0,1,2} around Belgium, {3,4} around Greece.
func clusteredSites() []energy.SiteConfig {
	return []energy.SiteConfig{
		{Name: "BE1", Source: energy.Wind, Latitude: 50.8, Longitude: 4.4, CapacityMW: 400},
		{Name: "BE2", Source: energy.Solar, Latitude: 51.0, Longitude: 4.7, CapacityMW: 400},
		{Name: "NL1", Source: energy.Wind, Latitude: 52.1, Longitude: 5.1, CapacityMW: 400},
		{Name: "GR1", Source: energy.Solar, Latitude: 37.9, Longitude: 23.7, CapacityMW: 400},
		{Name: "GR2", Source: energy.Wind, Latitude: 38.2, Longitude: 23.9, CapacityMW: 400},
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, 50); err == nil {
		t.Error("no sites should error")
	}
	if _, err := New([]energy.SiteConfig{{}}, 50); err == nil {
		t.Error("invalid site should error")
	}
	if _, err := New(clusteredSites(), -1); err == nil {
		t.Error("negative threshold should error")
	}
}

func TestDefaultThreshold(t *testing.T) {
	g, err := New(clusteredSites(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Threshold() != DefaultLatencyThresholdMS {
		t.Errorf("threshold = %v, want %v", g.Threshold(), DefaultLatencyThresholdMS)
	}
}

func TestAdjacencyStructure(t *testing.T) {
	g, err := New(clusteredSites(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 {
		t.Fatalf("N = %d", g.N())
	}
	// Within-cluster pairs connected.
	if !g.Connected(0, 1) || !g.Connected(0, 2) || !g.Connected(3, 4) {
		t.Error("nearby sites should be connected at 20 ms")
	}
	// Cross-cluster pairs (~2000 km) are not.
	if g.Connected(0, 3) || g.Connected(2, 4) {
		t.Error("distant sites should not be connected at 20 ms")
	}
	// Self edges don't exist.
	if g.Connected(1, 1) {
		t.Error("no self loops")
	}
	// Latency symmetric and positive.
	if g.Latency(0, 3) != g.Latency(3, 0) || g.Latency(0, 3) <= 0 {
		t.Error("latency should be symmetric positive")
	}
	if g.Degree(0) != 2 {
		t.Errorf("degree(0) = %d, want 2", g.Degree(0))
	}
	if g.Site(3).Name != "GR1" {
		t.Error("Site accessor")
	}
}

func TestCliques(t *testing.T) {
	g, err := New(clusteredSites(), 20)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := g.Cliques(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c1) != 5 {
		t.Errorf("1-cliques = %d, want 5", len(c1))
	}
	c2, err := g.Cliques(2)
	if err != nil {
		t.Fatal(err)
	}
	// Edges: (0,1),(0,2),(1,2),(3,4) = 4.
	if len(c2) != 4 {
		t.Errorf("2-cliques = %d, want 4: %v", len(c2), c2)
	}
	c3, err := g.Cliques(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(c3) != 1 || c3[0][0] != 0 || c3[0][1] != 1 || c3[0][2] != 2 {
		t.Errorf("3-cliques = %v, want [[0 1 2]]", c3)
	}
	c4, err := g.Cliques(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(c4) != 0 {
		t.Errorf("4-cliques = %v, want none", c4)
	}
	if _, err := g.Cliques(0); err == nil {
		t.Error("k=0 should error")
	}
}

func TestCliquesComplete(t *testing.T) {
	// A very generous threshold yields the complete graph: C(5,k) cliques.
	g, err := New(clusteredSites(), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]int{1: 5, 2: 10, 3: 10, 4: 5, 5: 1}
	for k, n := range want {
		cs, err := g.Cliques(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(cs) != n {
			t.Errorf("complete graph %d-cliques = %d, want %d", k, len(cs), n)
		}
	}
}

func mkPowers(n int, valsPerSite ...[]float64) []trace.Series {
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	out := make([]trace.Series, n)
	for i := range out {
		out[i] = trace.FromValues(start, time.Hour, valsPerSite[i])
	}
	return out
}

func TestRankCliques(t *testing.T) {
	sites := clusteredSites()[:3]
	g, err := New(sites, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	// Site 0 steady, site 1 spiky, site 2 anti-correlated with 1.
	powers := mkPowers(3,
		[]float64{10, 10, 10, 10},
		[]float64{0, 20, 0, 20},
		[]float64{20, 0, 20, 0},
	)
	cliques := [][]int{{0}, {1}, {1, 2}}
	ranked, err := g.RankCliques(cliques, powers)
	if err != nil {
		t.Fatal(err)
	}
	// Steady singleton and the perfectly complementary pair have cov 0 and
	// beat the spiky singleton.
	if ranked[len(ranked)-1].Nodes[0] != 1 || len(ranked[len(ranked)-1].Nodes) != 1 {
		t.Errorf("spiky singleton should rank last: %v", ranked)
	}
	for _, r := range ranked[:2] {
		if r.CoV != 0 {
			t.Errorf("steady groups should have cov 0: %+v", r)
		}
	}
}

func TestRankCliquesErrors(t *testing.T) {
	g, err := New(clusteredSites()[:2], 1e6)
	if err != nil {
		t.Fatal(err)
	}
	powers := mkPowers(2, []float64{1}, []float64{1})
	if _, err := g.RankCliques([][]int{{0}}, powers[:1]); err == nil {
		t.Error("power count mismatch should error")
	}
	if _, err := g.RankCliques([][]int{{}}, powers); err == nil {
		t.Error("empty clique should error")
	}
	if _, err := g.RankCliques([][]int{{7}}, powers); err == nil {
		t.Error("out-of-range node should error")
	}
}

func TestCandidateGroups(t *testing.T) {
	g, err := New(clusteredSites(), 20)
	if err != nil {
		t.Fatal(err)
	}
	powers := mkPowers(5,
		[]float64{1, 2, 1, 2},
		[]float64{2, 1, 2, 1},
		[]float64{1, 1, 1, 1},
		[]float64{5, 0, 5, 0},
		[]float64{0, 5, 0, 5},
	)
	groups, err := g.CandidateGroups(2, 3, 2, powers)
	if err != nil {
		t.Fatal(err)
	}
	// k=2: up to 2 best of 4 edges; k=3: the single triangle.
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3 (%v)", len(groups), groups)
	}
	// Both complementary pairs (0,1) and (3,4) sum to a constant => cov 0
	// and occupy the two k=2 slots.
	if groups[0].CoV != 0 || groups[1].CoV != 0 {
		t.Errorf("best 2-groups should be the complementary pairs: %+v", groups[:2])
	}
	if len(groups[0].Nodes) != 2 || len(groups[1].Nodes) != 2 {
		t.Errorf("first two groups should be pairs: %+v", groups[:2])
	}
	if _, err := g.CandidateGroups(0, 2, 1, powers); err == nil {
		t.Error("bad kMin should error")
	}
	if _, err := g.CandidateGroups(2, 1, 1, powers); err == nil {
		t.Error("kMax < kMin should error")
	}
	if _, err := g.CandidateGroups(2, 2, 0, powers); err == nil {
		t.Error("topN 0 should error")
	}
}
