package wan

import (
	"math"
	"testing"
	"time"

	"github.com/vbcloud/vb/internal/trace"
)

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (Config{AggregateTbps: 0, Sites: 1}).Validate(); err == nil {
		t.Error("zero capacity should error")
	}
	if err := (Config{AggregateTbps: 1, Sites: 0}).Validate(); err == nil {
		t.Error("zero sites should error")
	}
}

func TestPerSiteShare(t *testing.T) {
	// Paper: 50 Tb/s over 100 sites = 500 Gb/s per site.
	if got := DefaultConfig().PerSiteShareGbps(); got != 500 {
		t.Errorf("per-site share = %v, want 500", got)
	}
}

func TestRequiredGbps(t *testing.T) {
	// Paper's example: 10 TB (10^4 GB) in 5 minutes ~ 267 Gb/s (they quote
	// ~200 Gbps using rounder numbers).
	got, err := RequiredGbps(10000, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-266.67) > 1 {
		t.Errorf("RequiredGbps = %v, want ~266.7", got)
	}
	if _, err := RequiredGbps(-1, time.Minute); err == nil {
		t.Error("negative volume should error")
	}
	if _, err := RequiredGbps(1, 0); err == nil {
		t.Error("zero deadline should error")
	}
}

// TestPaperShareClaim reproduces the §3 claim: a 10 TB spike with a 5-minute
// deadline consumes roughly 40% (paper's rounding) of a site's share of a
// 50 Tb/s / 100-site WAN.
func TestPaperShareClaim(t *testing.T) {
	frac, err := DefaultConfig().ShareConsumed(10000, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.35 || frac > 0.6 {
		t.Errorf("share consumed = %v, want ~0.4-0.53 (paper: ~40%%)", frac)
	}
	if _, err := (Config{}).ShareConsumed(1, time.Minute); err == nil {
		t.Error("invalid config should error")
	}
	if _, err := DefaultConfig().ShareConsumed(-1, time.Minute); err == nil {
		t.Error("invalid volume should error")
	}
}

func TestBusyFraction(t *testing.T) {
	// 900 GB per 15-minute step at 8 Gb/s: 900*8/8 = 900 s of 900 s = every
	// step fully busy.
	s := trace.FromValues(t0, 15*time.Minute, []float64{900, 900})
	got, err := BusyFraction(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("saturated busy fraction = %v, want 1", got)
	}
	// Half the volume on one of two steps: 450*8/8=450s of 1800s total.
	s2 := trace.FromValues(t0, 15*time.Minute, []float64{450, 0})
	got, err = BusyFraction(s2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 1e-9 {
		t.Errorf("busy fraction = %v, want 0.25", got)
	}
	if _, err := BusyFraction(trace.Series{}, 8); err == nil {
		t.Error("empty series should error")
	}
	if _, err := BusyFraction(s, 0); err == nil {
		t.Error("zero rate should error")
	}
	bad := trace.FromValues(t0, 0, []float64{1})
	if _, err := BusyFraction(bad, 8); err == nil {
		t.Error("zero step should error")
	}
}
