package lp

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func solveOK(t *testing.T, p Problem) Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	return s
}

func TestValidate(t *testing.T) {
	bad := []Problem{
		{},
		{NumVars: 2, Objective: []float64{1, 2, 3}},
		{NumVars: 1, Constraints: []Constraint{{Coeffs: []float64{1, 2}}}},
		{NumVars: 1, Constraints: []Constraint{{Coeffs: []float64{1}, Sense: Sense(9)}}},
		{NumVars: 1, Constraints: []Constraint{{Coeffs: []float64{math.NaN()}}}},
		{NumVars: 1, Constraints: []Constraint{{Coeffs: []float64{1}, RHS: math.Inf(1)}}},
		{NumVars: 1, Objective: []float64{math.NaN()}},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

func TestSenseStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Error("sense strings")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings")
	}
}

// Classic 2-variable maximization:
// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> x=2, y=6, obj=36.
func TestTextbookMax(t *testing.T) {
	s := solveOK(t, Problem{
		NumVars:   2,
		Objective: []float64{3, 5},
		Maximize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Sense: LE, RHS: 4},
			{Coeffs: []float64{0, 2}, Sense: LE, RHS: 12},
			{Coeffs: []float64{3, 2}, Sense: LE, RHS: 18},
		},
	})
	if !approx(s.Objective, 36) || !approx(s.X[0], 2) || !approx(s.X[1], 6) {
		t.Errorf("got %+v, want x=(2,6) obj=36", s)
	}
}

// Minimization with GE constraints (diet-style):
// min 0.6x + y s.t. 10x + 4y >= 20, 5x + 5y >= 20 -> x=1, y=3... check:
// 10+12=22>=20, 5+15=20. obj=0.6+3=3.6. Corner candidates: intersection of
// the two constraints: 10x+4y=20, 5x+5y=20 -> x=2/3... solve: from second
// x+y=4 -> y=4-x; 10x+16-4x=20 -> 6x=4 -> x=2/3, y=10/3; obj=0.4+10/3=3.733.
// Other corners: x=0,y=5 -> obj 5; y=0,x=4 -> obj 2.4 (check 10*4=40>=20,
// 5*4=20>=20: feasible!) -> optimum x=4, y=0, obj=2.4.
func TestDietMin(t *testing.T) {
	s := solveOK(t, Problem{
		NumVars:   2,
		Objective: []float64{0.6, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{10, 4}, Sense: GE, RHS: 20},
			{Coeffs: []float64{5, 5}, Sense: GE, RHS: 20},
		},
	})
	if !approx(s.Objective, 2.4) || !approx(s.X[0], 4) || !approx(s.X[1], 0) {
		t.Errorf("got obj=%v x=%v, want obj=2.4 x=(4,0)", s.Objective, s.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + 2y s.t. x + y == 10, x <= 4 -> x=4, y=6, obj=16.
	s := solveOK(t, Problem{
		NumVars:   2,
		Objective: []float64{1, 2},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: EQ, RHS: 10},
			{Coeffs: []float64{1, 0}, Sense: LE, RHS: 4},
		},
	})
	if !approx(s.Objective, 16) || !approx(s.X[0], 4) || !approx(s.X[1], 6) {
		t.Errorf("got obj=%v x=%v", s.Objective, s.X)
	}
}

func TestInfeasible(t *testing.T) {
	s, err := Solve(Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Sense: LE, RHS: 1},
			{Coeffs: []float64{1}, Sense: GE, RHS: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	s, err := Solve(Problem{
		NumVars:   1,
		Objective: []float64{1},
		Maximize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Sense: GE, RHS: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalized(t *testing.T) {
	// x >= 0, -x <= -3 means x >= 3; min x -> 3.
	s := solveOK(t, Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Sense: LE, RHS: -3},
		},
	})
	if !approx(s.X[0], 3) {
		t.Errorf("x = %v, want 3", s.X[0])
	}
}

func TestNoConstraintsMin(t *testing.T) {
	// min x with x >= 0 and no constraints -> 0.
	s := solveOK(t, Problem{NumVars: 1, Objective: []float64{1}})
	if !approx(s.Objective, 0) {
		t.Errorf("obj = %v", s.Objective)
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// A classic degenerate problem (Beale's example structure); Bland's
	// rule must terminate.
	s := solveOK(t, Problem{
		NumVars:   4,
		Objective: []float64{-0.75, 150, -0.02, 6},
		Constraints: []Constraint{
			{Coeffs: []float64{0.25, -60, -0.04, 9}, Sense: LE, RHS: 0},
			{Coeffs: []float64{0.5, -90, -0.02, 3}, Sense: LE, RHS: 0},
			{Coeffs: []float64{0, 0, 1, 0}, Sense: LE, RHS: 1},
		},
	})
	if !approx(s.Objective, -0.05) {
		t.Errorf("Beale optimum = %v, want -0.05", s.Objective)
	}
}

func TestZeroPaddedCoeffs(t *testing.T) {
	// Short coefficient slices are zero padded.
	s := solveOK(t, Problem{
		NumVars:   3,
		Objective: []float64{1}, // only x0 costs
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Sense: GE, RHS: 2},
		},
	})
	if !approx(s.X[0], 2) || !approx(s.Objective, 2) {
		t.Errorf("got %+v", s)
	}
}

func TestMinimaxPattern(t *testing.T) {
	// The pattern the scheduler uses for the peak objective (O2): minimize
	// t subject to each load_i <= t.
	// loads: x1+x2 = 10 split across two slots, t >= x1, t >= x2; min t
	// -> 5.
	s := solveOK(t, Problem{
		NumVars:   3, // x1, x2, t
		Objective: []float64{0, 0, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1, 0}, Sense: EQ, RHS: 10},
			{Coeffs: []float64{1, 0, -1}, Sense: LE, RHS: 0},
			{Coeffs: []float64{0, 1, -1}, Sense: LE, RHS: 0},
		},
	})
	if !approx(s.Objective, 5) {
		t.Errorf("minimax = %v, want 5", s.Objective)
	}
}

func TestRedundantEquality(t *testing.T) {
	// Duplicate equality rows leave a redundant artificial basic at zero;
	// solver must still find the optimum.
	s := solveOK(t, Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: EQ, RHS: 4},
			{Coeffs: []float64{2, 2}, Sense: EQ, RHS: 8},
		},
	})
	if !approx(s.Objective, 4) {
		t.Errorf("obj = %v, want 4", s.Objective)
	}
}

func TestLargerTransportProblem(t *testing.T) {
	// 2 supplies x 3 demands transportation problem.
	// supply: 20, 30; demand: 10, 25, 15
	// cost: [8 6 10; 9 12 13] -> known optimum 310:
	// s1->d2 20 @6 =120; s2->d1 10@9=90, s2->d2 5@12=60, s2->d3 15@13=195
	// total = 120+90+60+195 = 465? Let's verify optimum differently:
	// Actually compute with the solver and check constraints + optimality
	// against brute force over vertices is overkill; assert feasibility
	// and a known bound instead.
	p := Problem{
		NumVars:   6, // x11 x12 x13 x21 x22 x23
		Objective: []float64{8, 6, 10, 9, 12, 13},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1, 1, 0, 0, 0}, Sense: LE, RHS: 20},
			{Coeffs: []float64{0, 0, 0, 1, 1, 1}, Sense: LE, RHS: 30},
			{Coeffs: []float64{1, 0, 0, 1, 0, 0}, Sense: GE, RHS: 10},
			{Coeffs: []float64{0, 1, 0, 0, 1, 0}, Sense: GE, RHS: 25},
			{Coeffs: []float64{0, 0, 1, 0, 0, 1}, Sense: GE, RHS: 15},
		},
	}
	s := solveOK(t, p)
	// Feasibility.
	if s.X[0]+s.X[1]+s.X[2] > 20+1e-6 || s.X[3]+s.X[4]+s.X[5] > 30+1e-6 {
		t.Errorf("supply violated: %v", s.X)
	}
	if s.X[0]+s.X[3] < 10-1e-6 || s.X[1]+s.X[4] < 25-1e-6 || s.X[2]+s.X[5] < 15-1e-6 {
		t.Errorf("demand violated: %v", s.X)
	}
	// Known optimal value for this instance is 465.
	if !approx(s.Objective, 465) {
		t.Errorf("obj = %v, want 465", s.Objective)
	}
}

// Property: for random feasible-by-construction problems, the solver returns
// a feasible solution whose objective is at most that of a known feasible
// point.
func TestPropSolverBeatsKnownPoint(t *testing.T) {
	f := func(seedRaw []byte) bool {
		if len(seedRaw) < 8 {
			return true
		}
		// Build: min c·x s.t. x_i <= u_i (u_i > 0), sum x >= s where s <=
		// sum u. Known feasible point: x = u.
		n := int(seedRaw[0]%4) + 2
		c := make([]float64, n)
		u := make([]float64, n)
		var sumU float64
		for i := 0; i < n; i++ {
			c[i] = float64(seedRaw[(i+1)%len(seedRaw)]%20) + 1
			u[i] = float64(seedRaw[(i+3)%len(seedRaw)]%10) + 1
			sumU += u[i]
		}
		s := sumU * float64(seedRaw[1]%100) / 100
		cons := make([]Constraint, 0, n+1)
		for i := 0; i < n; i++ {
			coef := make([]float64, n)
			coef[i] = 1
			cons = append(cons, Constraint{Coeffs: coef, Sense: LE, RHS: u[i]})
		}
		all := make([]float64, n)
		for i := range all {
			all[i] = 1
		}
		cons = append(cons, Constraint{Coeffs: all, Sense: GE, RHS: s})
		sol, err := Solve(Problem{NumVars: n, Objective: c, Constraints: cons})
		if err != nil || sol.Status != Optimal {
			return false
		}
		// Feasible?
		var tot, knownObj float64
		for i := 0; i < n; i++ {
			if sol.X[i] < -1e-6 || sol.X[i] > u[i]+1e-6 {
				return false
			}
			tot += sol.X[i]
			knownObj += c[i] * u[i]
		}
		if tot < s-1e-6 {
			return false
		}
		return sol.Objective <= knownObj+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: for random feasible minimization problems over a box, no
// feasible lattice point beats the simplex optimum (one-sided optimality
// check against brute force).
func TestPropNoLatticePointBeatsOptimum(t *testing.T) {
	f := func(seed []byte) bool {
		if len(seed) < 10 {
			return true
		}
		n := 2 + int(seed[0]%2) // 2 or 3 vars
		// Box: x_i <= u_i; one coupling constraint sum a_i x_i >= b kept
		// feasible by construction (b = half of max attainable).
		u := make([]float64, n)
		a := make([]float64, n)
		c := make([]float64, n)
		var maxAttain float64
		for i := 0; i < n; i++ {
			u[i] = float64(seed[1+i]%5) + 1
			a[i] = float64(seed[4+i]%4) + 1
			c[i] = float64(seed[7+i]%9) - 4 // costs may be negative
			maxAttain += a[i] * u[i]
		}
		b := maxAttain / 2
		cons := make([]Constraint, 0, n+1)
		for i := 0; i < n; i++ {
			coef := make([]float64, n)
			coef[i] = 1
			cons = append(cons, Constraint{Coeffs: coef, Sense: LE, RHS: u[i]})
		}
		cons = append(cons, Constraint{Coeffs: a, Sense: GE, RHS: b})
		sol, err := Solve(Problem{NumVars: n, Objective: c, Constraints: cons})
		if err != nil || sol.Status != Optimal {
			return false
		}
		// Brute force over a 0.5-step lattice inside the box.
		step := 0.5
		var walk func(i int, x []float64) bool
		walk = func(i int, x []float64) bool {
			if i == n {
				var dot, obj float64
				for j := 0; j < n; j++ {
					dot += a[j] * x[j]
					obj += c[j] * x[j]
				}
				if dot >= b-1e-9 && obj < sol.Objective-1e-6 {
					return false // lattice point beats "optimum"
				}
				return true
			}
			for v := 0.0; v <= u[i]+1e-9; v += step {
				x[i] = v
				if !walk(i+1, x) {
					return false
				}
			}
			return true
		}
		return walk(0, make([]float64, n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
