package sim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/vbcloud/vb/internal/cluster"
	"github.com/vbcloud/vb/internal/core"
	"github.com/vbcloud/vb/internal/forecast"
	"github.com/vbcloud/vb/internal/obs"
	"github.com/vbcloud/vb/internal/trace"
	"github.com/vbcloud/vb/internal/workload"
)

// VMLevelResult reports a high-fidelity run where individual VMs are placed
// on real cluster simulators (server packing, fragmentation, round-robin
// eviction) while the co-scheduler steers aggregate allocations. Comparing
// it against Run's core-granularity results validates that the scheduler's
// fluid model survives contact with discrete VMs.
type VMLevelResult struct {
	Policy core.Policy
	// Transfer is migration traffic per plan step in GB (actual VM memory
	// moved between sites).
	Transfer trace.Series
	// Moves counts inter-site VM migrations.
	Moves int
	// FailedPlacements counts VM-steps where a stable VM could not run
	// anywhere (fragmentation or true capacity shortage).
	FailedPlacements int
	// Fragmentation is the mean end-of-step fragmentation score across
	// sites (see cluster.Snapshot).
	Fragmentation float64
}

// RunVMLevel simulates one policy at VM granularity. Apps supplies the
// discrete VMs behind in.Apps (matched by App ID); only Stable-class VMs
// are scheduled, as in Run. clusterCfg describes each site's hardware.
func RunVMLevel(cfg core.Config, in Input, apps []workload.App, clusterCfg cluster.Config) (VMLevelResult, error) {
	if err := cfg.Validate(); err != nil {
		return VMLevelResult{}, err
	}
	if err := in.Validate(); err != nil {
		return VMLevelResult{}, err
	}
	if err := clusterCfg.Validate(); err != nil {
		return VMLevelResult{}, err
	}
	base := in.Actual[0]
	if cfg.PlanStep != base.Step {
		return VMLevelResult{}, fmt.Errorf("sim: plan step %v != power step %v", cfg.PlanStep, base.Step)
	}
	numSites := len(in.Actual)
	T := base.Len()
	reg := in.Obs
	if reg == nil {
		reg = cfg.Obs
	} else if cfg.Obs == nil {
		cfg.Obs = reg
	}
	defer obs.Time(reg, "sim.vmlevel.run")()
	if reg != nil {
		for _, b := range in.Bundles {
			b.SetObs(reg)
		}
	}
	sched, err := core.NewScheduler(cfg, numSites, T)
	if err != nil {
		return VMLevelResult{}, err
	}
	vecs := newVMVecs(reg, cfg.Policy, numSites)
	util := effectiveUtil(cfg)

	sites := make([]*cluster.Site, numSites)
	for i := range sites {
		if sites[i], err = cluster.New(clusterCfg); err != nil {
			return VMLevelResult{}, err
		}
	}

	res := VMLevelResult{
		Policy:   cfg.Policy,
		Transfer: trace.New(base.Start, base.Step, T),
	}

	// Index apps and their stable VMs.
	type appState struct {
		demand  core.AppDemand
		plan    core.Plan
		vms     []workload.VM // stable VMs only
		endStep int
		started bool
	}
	byID := map[int]*appState{}
	var order []*appState
	for _, d := range in.Apps {
		st := &appState{demand: d, endStep: T}
		if !d.End.IsZero() {
			if e := base.IndexAt(d.End); e >= 0 {
				st.endStep = e + 1
			}
		}
		byID[d.ID] = st
		order = append(order, st)
	}
	for _, a := range apps {
		st, ok := byID[a.ID]
		if !ok {
			continue
		}
		for _, vm := range a.VMs {
			if vm.Class == workload.Stable {
				st.vms = append(st.vms, vm)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].demand.Start.Before(order[j].demand.Start) })

	// vmSite tracks where each stable VM runs (-1 = not running).
	vmSite := map[int]int{}
	stepsPerDay := int(24 * time.Hour / base.Step)
	if stepsPerDay < 1 {
		stepsPerDay = 1
	}

	for t := 0; t < T; t++ {
		now := base.TimeAt(t)
		predCap, stableCap := capacityFns(in, base, util, now, t, stepsPerDay, T)

		// 1. Apply power to every site. Evicted VMs are marked displaced
		// (site -1) and re-homed in step 4.
		for sIdx, site := range sites {
			for _, vm := range site.SetPowerEvict(in.Actual[sIdx].Values[t]) {
				vmSite[vm.ID] = -1
				reg.Emit(obs.Event{Type: obs.VMEvicted, Step: t, App: vm.AppID, Site: sIdx, Dst: -1,
					VM: vm.ID, Cores: float64(vm.Cores), GB: float64(vm.MemoryGB)})
				vecs.evict(sIdx)
			}
		}

		// 2. Plan: admit arriving apps; replan daily for MIP policies.
		for _, st := range order {
			if st.started || st.demand.Start.After(now) || t >= st.endStep {
				continue
			}
			if st.demand.StableCores > 0 {
				plan, err := sched.Place(st.demand, t, st.endStep, predCap, stableCap, nil, nil)
				if err != nil {
					return VMLevelResult{}, err
				}
				st.plan = plan
			}
			st.started = true
		}
		if cfg.Policy != core.Greedy && t > 0 && t%stepsPerDay == 0 {
			for _, st := range order {
				if !st.started || t >= st.endStep || st.plan.Alloc == nil {
					continue
				}
				cur := make([]float64, numSites)
				for _, vm := range st.vms {
					if s, ok := vmSite[vm.ID]; ok && s >= 0 {
						cur[s] += float64(vm.Cores)
					}
				}
				sched.Uncommit(st.plan, t)
				plan, err := sched.Place(st.demand, t, st.endStep, predCap, stableCap, cur, st.plan.Alloc)
				if err != nil {
					return VMLevelResult{}, err
				}
				st.plan = plan
			}
		}

		// 3. Reconcile each app's VMs against its plan: move VMs from
		// over-target sites to under-target sites with real headroom.
		for _, st := range order {
			if !st.started || t >= st.endStep || st.plan.Alloc == nil {
				continue
			}
			res.reconcile(st.vms, st.plan, t, sites, vmSite, reg, vecs)
		}

		// 4. Re-home displaced VMs and start never-placed VMs at their
		// app's planned sites (or anywhere with room).
		for _, st := range order {
			if !st.started || t >= st.endStep {
				continue
			}
			for _, vm := range st.vms {
				if s, ok := vmSite[vm.ID]; ok && s >= 0 {
					continue
				}
				if end := vm.End(); !end.IsZero() && !end.After(now) {
					continue
				}
				placed := placeVM(vm, st.plan, t, sites, vmSite)
				if placed >= 0 {
					// Relaunch after displacement costs traffic; first
					// boot is free.
					if _, seen := vmSite[vm.ID]; seen {
						gb := float64(vm.MemoryGB)
						res.Transfer.Values[t] += gb
						res.Moves++
						reg.Emit(obs.Event{Type: obs.VMMoved, Step: t, App: vm.AppID, Site: -1,
							Dst: placed, VM: vm.ID, Cores: float64(vm.Cores), GB: gb, Detail: "rehome"})
						vecs.move(-1, placed, gb)
					}
					vmSite[vm.ID] = placed
				} else {
					res.FailedPlacements++
					reg.Inc("sim.vmlevel.failed_placements")
					reg.Emit(obs.Event{Type: obs.VMPlacementFail, Step: t, App: vm.AppID, Site: -1, Dst: -1,
						VM: vm.ID, Cores: float64(vm.Cores)})
					vecs.fail(vm.AppID)
				}
			}
		}

		// 5. Departures.
		for _, st := range order {
			for _, vm := range st.vms {
				if s, ok := vmSite[vm.ID]; ok && s >= 0 {
					if end := vm.End(); !end.IsZero() && !end.After(now) {
						sites[s].Remove(vm.ID)
						delete(vmSite, vm.ID)
					}
				}
			}
		}

		// Fragmentation bookkeeping.
		var frag float64
		for _, site := range sites {
			frag += site.Snapshot().Fragmentation
		}
		res.Fragmentation += frag / float64(numSites)
		reg.Observe("sim.vmlevel.step_transfer_gb", res.Transfer.Values[t])
	}
	res.Fragmentation /= float64(T)
	return res, nil
}

// reconcile moves an app's VMs between sites until per-site core sums are
// within one VM of the plan, charging traffic for each move.
func (r *VMLevelResult) reconcile(vms []workload.VM, plan core.Plan, t int, sites []*cluster.Site, vmSite map[int]int, reg *obs.Registry, vecs *vmVecs) {
	numSites := len(sites)
	cur := make([]float64, numSites)
	bySite := make([][]workload.VM, numSites)
	for _, vm := range vms {
		if s, ok := vmSite[vm.ID]; ok && s >= 0 {
			cur[s] += float64(vm.Cores)
			bySite[s] = append(bySite[s], vm)
		}
	}
	for src := 0; src < numSites; src++ {
		over := cur[src] - plan.Alloc[src][t]
		for _, vm := range bySite[src] {
			if over < float64(vm.Cores) {
				continue // moving this VM would overshoot
			}
			// Find the most under-target destination that admits it.
			dst, worst := -1, 1e-9
			for d := 0; d < numSites; d++ {
				if d == src {
					continue
				}
				if under := plan.Alloc[d][t] - cur[d]; under > worst {
					dst, worst = d, under
				}
			}
			if dst < 0 {
				break
			}
			if !sites[dst].Admit(vm) {
				continue // fragmentation or admission refuses; stay put
			}
			sites[src].Remove(vm.ID)
			vmSite[vm.ID] = dst
			cur[src] -= float64(vm.Cores)
			cur[dst] += float64(vm.Cores)
			over -= float64(vm.Cores)
			gb := float64(vm.MemoryGB)
			r.Transfer.Values[t] += gb
			r.Moves++
			reg.Emit(obs.Event{Type: obs.VMMoved, Step: t, App: vm.AppID, Site: src, Dst: dst,
				VM: vm.ID, Cores: float64(vm.Cores), GB: gb, Detail: "reconcile"})
			vecs.move(src, dst, gb)
		}
	}
}

// placeVM starts a VM at the app's most under-target site with room,
// falling back to any site that admits it. It returns the site index or -1.
func placeVM(vm workload.VM, plan core.Plan, t int, sites []*cluster.Site, vmSite map[int]int) int {
	numSites := len(sites)
	type cand struct {
		site  int
		under float64
	}
	cands := make([]cand, 0, numSites)
	for s := 0; s < numSites; s++ {
		under := 0.0
		if plan.Alloc != nil {
			under = plan.Alloc[s][t]
		}
		cands = append(cands, cand{site: s, under: under})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].under > cands[j].under })
	for _, c := range cands {
		if sites[c.site].Admit(vm) {
			return c.site
		}
	}
	return -1
}

// capacityFns builds the forecast-driven capacity estimators shared by the
// core-level and VM-level engines.
func capacityFns(in Input, base trace.Series, util float64, now time.Time, t, stepsPerDay, T int) (predCap, stableCap core.CapacityFn) {
	margin := func(lead time.Duration) float64 {
		switch {
		case lead <= forecast.Horizon3H:
			return 0.03
		case lead <= forecast.HorizonDay:
			return 0.10
		default:
			return 0.18
		}
	}
	predCap = func(site, step int) float64 {
		v, ok := in.Bundles[site].PredictAt(now, base.TimeAt(step))
		if !ok {
			v = 0
		}
		return util * v * in.TotalCores
	}
	stableCap = func(site, step int) float64 {
		target := base.TimeAt(step)
		lead := target.Sub(now)
		v := math.Inf(1)
		for st := step - 1; st <= step+1; st++ {
			if st < 0 || st >= T {
				continue
			}
			pv, ok := in.Bundles[site].PredictAt(now, base.TimeAt(st))
			if !ok {
				pv = 0
			}
			if pv < v {
				v = pv
			}
		}
		if math.IsInf(v, 1) {
			v = 0
		}
		return (1 - margin(lead)) * util * v * in.TotalCores
	}
	return predCap, stableCap
}
