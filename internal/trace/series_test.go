package trace

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2020, 5, 3, 0, 0, 0, 0, time.UTC)

func mkSeries(vals ...float64) Series {
	return FromValues(t0, 15*time.Minute, vals)
}

func TestNewZeroFilled(t *testing.T) {
	s := New(t0, time.Hour, 5)
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	for i, v := range s.Values {
		if v != 0 {
			t.Errorf("Values[%d] = %v, want 0", i, v)
		}
	}
}

func TestEndAndDuration(t *testing.T) {
	s := New(t0, time.Hour, 24)
	if got, want := s.End(), t0.Add(24*time.Hour); !got.Equal(want) {
		t.Errorf("End = %v, want %v", got, want)
	}
	if got := s.Duration(); got != 24*time.Hour {
		t.Errorf("Duration = %v, want 24h", got)
	}
}

func TestTimeAtIndexAtRoundTrip(t *testing.T) {
	s := New(t0, 15*time.Minute, 96)
	for i := 0; i < s.Len(); i++ {
		if got := s.IndexAt(s.TimeAt(i)); got != i {
			t.Fatalf("IndexAt(TimeAt(%d)) = %d", i, got)
		}
	}
}

func TestIndexAtOutOfRange(t *testing.T) {
	s := New(t0, time.Hour, 4)
	if got := s.IndexAt(t0.Add(-time.Second)); got != -1 {
		t.Errorf("before start: got %d, want -1", got)
	}
	if got := s.IndexAt(t0.Add(4 * time.Hour)); got != -1 {
		t.Errorf("at end: got %d, want -1", got)
	}
	var empty Series
	if got := empty.IndexAt(t0); got != -1 {
		t.Errorf("empty: got %d, want -1", got)
	}
}

func TestAt(t *testing.T) {
	s := mkSeries(1, 2, 3)
	v, ok := s.At(t0.Add(16 * time.Minute))
	if !ok || v != 2 {
		t.Errorf("At = %v,%v want 2,true", v, ok)
	}
	if _, ok := s.At(t0.Add(-time.Minute)); ok {
		t.Error("At before start should be false")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := mkSeries(1, 2, 3)
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestSliceAndWindow(t *testing.T) {
	s := mkSeries(0, 1, 2, 3, 4, 5, 6, 7)
	sub := s.Slice(2, 5)
	if sub.Len() != 3 || sub.Values[0] != 2 {
		t.Fatalf("Slice = %v", sub.Values)
	}
	if !sub.Start.Equal(t0.Add(30 * time.Minute)) {
		t.Errorf("Slice start = %v", sub.Start)
	}

	w := s.Window(t0.Add(30*time.Minute), t0.Add(75*time.Minute))
	if w.Len() != 3 || w.Values[0] != 2 || w.Values[2] != 4 {
		t.Errorf("Window = %v, want [2 3 4]", w.Values)
	}
	// Clamped bounds.
	w2 := s.Window(t0.Add(-time.Hour), t0.Add(100*time.Hour))
	if w2.Len() != s.Len() {
		t.Errorf("clamped window len = %d, want %d", w2.Len(), s.Len())
	}
	// Fully before the series.
	w3 := s.Window(t0.Add(-2*time.Hour), t0.Add(-time.Hour))
	if w3.Len() != 0 {
		t.Errorf("window before series len = %d, want 0", w3.Len())
	}
}

func TestScaleShiftClampMap(t *testing.T) {
	s := mkSeries(1, -2, 3)
	if got := s.Scale(2).Values; got[1] != -4 {
		t.Errorf("Scale: %v", got)
	}
	if got := s.Shift(10).Values; got[0] != 11 {
		t.Errorf("Shift: %v", got)
	}
	if got := s.Clamp(0, 2).Values; got[1] != 0 || got[2] != 2 {
		t.Errorf("Clamp: %v", got)
	}
	if got := s.Map(math.Abs).Values; got[1] != 2 {
		t.Errorf("Map: %v", got)
	}
}

func TestAddSubSum(t *testing.T) {
	a := mkSeries(1, 2, 3)
	b := mkSeries(10, 20, 30)
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Values[2] != 33 {
		t.Errorf("Add: %v", sum.Values)
	}
	diff, err := Sub(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Values[0] != 9 {
		t.Errorf("Sub: %v", diff.Values)
	}
	total, err := Sum(a, b, a)
	if err != nil {
		t.Fatal(err)
	}
	if total.Values[1] != 24 {
		t.Errorf("Sum: %v", total.Values)
	}
	if _, err := Sum(); err == nil {
		t.Error("Sum() with no args should error")
	}
}

func TestAddMismatch(t *testing.T) {
	a := mkSeries(1, 2, 3)
	b := FromValues(t0, time.Hour, []float64{1, 2, 3})
	if _, err := Add(a, b); err == nil {
		t.Error("step mismatch should error")
	}
	c := mkSeries(1, 2)
	if _, err := Add(a, c); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestAggregates(t *testing.T) {
	s := mkSeries(2, 8, 5)
	if s.Total() != 15 {
		t.Errorf("Total = %v", s.Total())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 8 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	var empty Series
	if empty.Mean() != 0 {
		t.Errorf("empty Mean = %v", empty.Mean())
	}
	if !math.IsInf(empty.Min(), 1) || !math.IsInf(empty.Max(), -1) {
		t.Error("empty Min/Max should be +/-Inf")
	}
}

func TestEnergy(t *testing.T) {
	// 4 samples of 100 MW at 15-minute step = 100 MWh.
	s := mkSeries(100, 100, 100, 100)
	if got := s.Energy(); math.Abs(got-100) > 1e-9 {
		t.Errorf("Energy = %v, want 100", got)
	}
}

func TestDiff(t *testing.T) {
	s := mkSeries(1, 4, 2, 2)
	d := s.Diff()
	want := []float64{3, -2, 0}
	if d.Len() != 3 {
		t.Fatalf("Diff len = %d", d.Len())
	}
	for i, v := range want {
		if d.Values[i] != v {
			t.Errorf("Diff[%d] = %v, want %v", i, d.Values[i], v)
		}
	}
	if got := mkSeries(5).Diff(); got.Len() != 0 {
		t.Errorf("Diff of singleton should be empty, got %d", got.Len())
	}
}

func TestResampleDown(t *testing.T) {
	s := mkSeries(1, 3, 5, 7) // 15-min step
	d, err := s.Resample(30 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Values[0] != 2 || d.Values[1] != 6 {
		t.Errorf("Resample down = %v", d.Values)
	}
	if d.Step != 30*time.Minute {
		t.Errorf("step = %v", d.Step)
	}
}

func TestResampleUp(t *testing.T) {
	s := FromValues(t0, time.Hour, []float64{2, 4})
	u, err := s.Resample(30 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 2, 4, 4}
	for i, v := range want {
		if u.Values[i] != v {
			t.Fatalf("Resample up = %v, want %v", u.Values, want)
		}
	}
}

func TestResampleErrors(t *testing.T) {
	s := mkSeries(1, 2, 3)
	if _, err := s.Resample(0); err == nil {
		t.Error("zero step should error")
	}
	if _, err := s.Resample(20 * time.Minute); err == nil {
		t.Error("non-divisible step should error")
	}
}

func TestResampleIdentity(t *testing.T) {
	s := mkSeries(1, 2, 3)
	r, err := s.Resample(15 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	r.Values[0] = 42
	if s.Values[0] == 42 {
		t.Error("identity resample must not share storage")
	}
}

func TestWindowReductions(t *testing.T) {
	s := mkSeries(1, 5, 2, 8, 0, 4, 9, 3) // 8 samples, 15-min -> 4 per hour
	mins, err := s.WindowMin(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if mins.Len() != 2 || mins.Values[0] != 1 || mins.Values[1] != 0 {
		t.Errorf("WindowMin = %v", mins.Values)
	}
	maxs, _ := s.WindowMax(time.Hour)
	if maxs.Values[0] != 8 || maxs.Values[1] != 9 {
		t.Errorf("WindowMax = %v", maxs.Values)
	}
	means, _ := s.WindowMean(time.Hour)
	if means.Values[0] != 4 {
		t.Errorf("WindowMean = %v", means.Values)
	}
	if _, err := s.WindowMin(25 * time.Minute); err == nil {
		t.Error("non-divisible window should error")
	}
	if _, err := mkSeries(1, 2, 3).WindowMin(time.Hour); err == nil {
		t.Error("window not dividing length should error")
	}
}

func TestSmooth(t *testing.T) {
	s := mkSeries(0, 0, 9, 0, 0)
	sm := s.Smooth(1)
	if sm.Values[2] != 3 {
		t.Errorf("Smooth center = %v, want 3", sm.Values[2])
	}
	if sm.Values[0] != 0 {
		t.Errorf("Smooth edge = %v", sm.Values[0])
	}
	if got := s.Smooth(0); got.Values[2] != 9 {
		t.Error("Smooth(0) should be identity")
	}
}

func TestFractionZeroAndNonZero(t *testing.T) {
	s := mkSeries(0, 1, 0, 2, 0, 0)
	if got := s.FractionZero(1e-12); math.Abs(got-4.0/6) > 1e-12 {
		t.Errorf("FractionZero = %v", got)
	}
	nz := s.NonZero(1e-12)
	if len(nz) != 2 || nz[0] != 1 || nz[1] != 2 {
		t.Errorf("NonZero = %v", nz)
	}
}

func TestString(t *testing.T) {
	var empty Series
	if empty.String() != "Series(empty)" {
		t.Errorf("empty String = %q", empty.String())
	}
	if s := mkSeries(1, 2).String(); s == "" {
		t.Error("String should be non-empty")
	}
}

// Property: Resample down then integrate preserves total energy.
func TestPropResampleConservesEnergy(t *testing.T) {
	f := func(raw []float64) bool {
		// Build a series with a length divisible by 4.
		n := (len(raw) / 4) * 4
		if n == 0 {
			return true
		}
		vals := make([]float64, n)
		for i := range vals {
			v := raw[i]
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				v = 1
			}
			vals[i] = v
		}
		s := FromValues(t0, 15*time.Minute, vals)
		d, err := s.Resample(time.Hour)
		if err != nil {
			return false
		}
		return math.Abs(s.Energy()-d.Energy()) < 1e-6*(1+math.Abs(s.Energy()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Window(TimeAt(i), TimeAt(j)) == Slice(i, j) for valid i <= j.
func TestPropWindowMatchesSlice(t *testing.T) {
	f := func(n uint8, a, b uint8) bool {
		size := int(n%50) + 2
		vals := make([]float64, size)
		for i := range vals {
			vals[i] = float64(i)
		}
		s := FromValues(t0, 15*time.Minute, vals)
		i, j := int(a)%size, int(b)%size
		if i > j {
			i, j = j, i
		}
		w := s.Window(s.TimeAt(i), s.TimeAt(j))
		sl := s.Slice(i, j)
		if w.Len() != sl.Len() {
			return false
		}
		for k := range w.Values {
			if w.Values[k] != sl.Values[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
