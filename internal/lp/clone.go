package lp

// Clone returns a deep copy of the instance: same compiled problem, same
// solver state (basis, bounds, factorization), sharing no memory with the
// receiver. Parallel branch-and-bound clones one template per worker and
// then moves state between them with CopyStateFrom.
func (in *Instance) Clone() *Instance {
	c := &Instance{
		m: in.m, nStruct: in.nStruct, n: in.n,
		maximize: in.maximize,
		cmin:     append([]float64(nil), in.cmin...),
		b:        append([]float64(nil), in.b...),
		senses:   append([]Sense(nil), in.senses...),
		baseLo:   append([]float64(nil), in.baseLo...),
		baseHi:   append([]float64(nil), in.baseHi...),

		colPtr: append([]int32(nil), in.colPtr...),
		colRow: append([]int32(nil), in.colRow...),
		colVal: append([]float64(nil), in.colVal...),
		rowPtr: append([]int32(nil), in.rowPtr...),
		rowCol: append([]int32(nil), in.rowCol...),
		rowVal: append([]float64(nil), in.rowVal...),

		lo:    append([]float64(nil), in.lo...),
		hi:    append([]float64(nil), in.hi...),
		basis: append([]int32(nil), in.basis...),
		vstat: append([]int8(nil), in.vstat...),
		fac:   in.fac.clone(),
		xB:    append([]float64(nil), in.xB...),
		ready: in.ready,

		accum:      make([]float64, in.m),
		w:          make([]float64, in.m),
		y:          make([]float64, in.m),
		rowScratch: make([]float64, in.m),
		valScratch: make([]float64, in.n),
		d:          append([]float64(nil), in.d...),
		dExact:     in.dExact,
		cb1:        make([]int8, in.m),

		interrupt: in.interrupt,
	}
	return c
}

// CopyStateFrom overwrites the receiver's mutable solver state (working
// bounds, basis, statuses, basic values, reduced costs, factorization) with
// src's. Both instances must be clones of the same compiled problem. Pivot
// and refactorization counters are NOT copied: each clone accumulates its
// own deltas, which parallel branch-and-bound sums from processed nodes
// only, keeping the totals independent of speculation.
func (in *Instance) CopyStateFrom(src *Instance) {
	copy(in.lo, src.lo)
	copy(in.hi, src.hi)
	copy(in.basis, src.basis)
	copy(in.vstat, src.vstat)
	copy(in.xB, src.xB)
	copy(in.d, src.d)
	in.dExact = src.dExact
	in.ready = src.ready
	in.facBad = false
	in.fac.copyFrom(src.fac)
}
