package trace

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRollingMin(t *testing.T) {
	s := mkSeries(5, 1, 4, 2, 8)
	r := s.RollingMin(1)
	want := []float64{1, 1, 1, 2, 2}
	for i := range want {
		if r.Values[i] != want[i] {
			t.Fatalf("RollingMin = %v, want %v", r.Values, want)
		}
	}
	// Zero radius is the identity (deep copy).
	id := s.RollingMin(0)
	id.Values[0] = 99
	if s.Values[0] == 99 {
		t.Error("identity rolling must not alias")
	}
}

func TestRollingMax(t *testing.T) {
	s := mkSeries(5, 1, 4, 2, 8)
	r := s.RollingMax(1)
	want := []float64{5, 5, 4, 8, 8}
	for i := range want {
		if r.Values[i] != want[i] {
			t.Fatalf("RollingMax = %v, want %v", r.Values, want)
		}
	}
}

func TestRollingMeanMatchesSmooth(t *testing.T) {
	s := mkSeries(1, 2, 3, 4, 5, 6)
	a := s.RollingMean(2)
	b := s.Smooth(2)
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("RollingMean should equal Smooth")
		}
	}
}

func TestLag(t *testing.T) {
	s := mkSeries(1, 2, 3, 4)
	d := s.Lag(1) // delayed: [1 1 2 3]
	want := []float64{1, 1, 2, 3}
	for i := range want {
		if d.Values[i] != want[i] {
			t.Fatalf("Lag(1) = %v, want %v", d.Values, want)
		}
	}
	a := s.Lag(-1) // advanced: [2 3 4 4]
	want = []float64{2, 3, 4, 4}
	for i := range want {
		if a.Values[i] != want[i] {
			t.Fatalf("Lag(-1) = %v, want %v", a.Values, want)
		}
	}
	if got := s.Lag(0); got.Values[2] != 3 {
		t.Error("Lag(0) identity")
	}
	var empty Series
	if got := empty.Lag(3); got.Len() != 0 {
		t.Error("empty Lag")
	}
}

func TestNormalize(t *testing.T) {
	s := mkSeries(10, 20, 30)
	n := s.Normalize()
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(n.Values[i]-want[i]) > 1e-12 {
			t.Fatalf("Normalize = %v, want %v", n.Values, want)
		}
	}
	c := mkSeries(7, 7, 7).Normalize()
	for _, v := range c.Values {
		if v != 0 {
			t.Fatal("constant series should normalize to zeros")
		}
	}
	var empty Series
	if got := empty.Normalize(); got.Len() != 0 {
		t.Error("empty Normalize")
	}
}

func TestCrossCorrelation(t *testing.T) {
	// b is a delayed by 2: peak correlation at lag +2.
	n := 64
	av := make([]float64, n)
	bv := make([]float64, n)
	for i := 0; i < n; i++ {
		av[i] = math.Sin(2 * math.Pi * float64(i) / 16)
		bv[i] = math.Sin(2 * math.Pi * float64(i-2) / 16)
	}
	a := FromValues(t0, time.Hour, av)
	b := FromValues(t0, time.Hour, bv)
	xc, err := CrossCorrelation(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(xc) != 9 {
		t.Fatalf("len = %d, want 9", len(xc))
	}
	best := 0
	for i := range xc {
		if xc[i] > xc[best] {
			best = i
		}
	}
	// b delayed by 2 means b[i-(-2)] = b[i+2] aligns... entry maxLag+k
	// correlates a[i] with b[i-k]; a[i] == b[i+2] so the peak is at
	// k = -2, index 4-2 = 2.
	if best != 2 {
		t.Errorf("peak at lag index %d (k=%d), want 2 (k=-2): %v", best, best-4, xc)
	}
	if xc[best] < 0.99 {
		t.Errorf("peak correlation = %v, want ~1", xc[best])
	}
}

func TestCrossCorrelationErrors(t *testing.T) {
	a := mkSeries(1, 2, 3)
	b := FromValues(t0, time.Hour, []float64{1, 2, 3})
	if _, err := CrossCorrelation(a, b, 1); err == nil {
		t.Error("incompatible series should error")
	}
	if _, err := CrossCorrelation(a, a, -1); err == nil {
		t.Error("negative lag should error")
	}
	if _, err := CrossCorrelation(a, a, 5); err == nil {
		t.Error("lag beyond length should error")
	}
}

// Property: RollingMin <= original <= RollingMax pointwise, and both are
// monotone in radius.
func TestPropRollingBounds(t *testing.T) {
	f := func(raw []float64, r8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vals[i] = v
		}
		s := FromValues(t0, time.Hour, vals)
		r := int(r8%5) + 1
		mn, mx := s.RollingMin(r), s.RollingMax(r)
		mn2, mx2 := s.RollingMin(r+1), s.RollingMax(r+1)
		for i := range vals {
			if mn.Values[i] > vals[i] || mx.Values[i] < vals[i] {
				return false
			}
			if mn2.Values[i] > mn.Values[i] || mx2.Values[i] < mx.Values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
