// Command vbobs analyzes a recorded trace offline: it reads the JSONL
// event stream a -trace sink wrote (or /events served) and prints
// per-type, per-app and per-site aggregates, the site×site migration flow
// matrix, exact solver duration percentiles, and warm-start hit rates.
//
// The per-type totals are accumulated with the same operations, in the
// same order, as the live tracer's TypeStats, so on a complete stream
// they reconcile bit-exactly with the run's manifest.
//
// Usage:
//
//	vbsched -policy MIP -trace run.jsonl
//	vbobs run.jsonl
//	vbobs -json run.jsonl | jq .types
//	curl -s localhost:8090/events | vbobs -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	vb "github.com/vbcloud/vb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vbobs: ")

	jsonOut := flag.Bool("json", false, "emit the analysis as JSON instead of text")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: vbobs [-json] <trace.jsonl | ->")
		os.Exit(2)
	}

	var in io.Reader
	if path := flag.Arg(0); path == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}

	events, err := vb.ReadTraceEvents(in)
	if err != nil {
		// A truncated tail (crash mid-write) still leaves a usable prefix:
		// analyze what decoded, but say so and fail the exit code.
		log.Printf("warning: %v; analyzing the %d events before it", err, len(events))
	}
	if len(events) == 0 {
		log.Fatal("no events decoded")
	}

	a := vb.AnalyzeTrace(events)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if eerr := enc.Encode(a); eerr != nil {
			log.Fatal(eerr)
		}
	} else if werr := a.WriteText(os.Stdout); werr != nil {
		log.Fatal(werr)
	}
	if err != nil {
		os.Exit(1)
	}
}
