package mip

import (
	"fmt"
	"math"

	"github.com/vbcloud/vb/internal/lp"
)

// SolveRelaxationRounded is the degradation path below full branch and
// bound: solve the LP relaxation once, round every integer variable to the
// nearest integer (clamped into its bounds), fix it there, and re-solve
// the continuous variables around the rounding. It performs at most two LP
// solves, always on a fresh instance — Options.Warm is never touched, so a
// degraded placement cannot poison the carried basis — and ignores
// Options.Deadline (it IS the deadline fallback).
//
// The result is integer feasible whenever the rounding satisfies the
// integer-coupling constraints; when it does not (Status != Optimal) the
// caller falls through to its next tier. Proven is never set: a rounding
// is a repair, not an optimum.
func SolveRelaxationRounded(p Problem, opt Options) (Solution, error) {
	if err := p.Problem.Validate(); err != nil {
		return Solution{}, err
	}
	if len(p.Integer) > p.NumVars {
		return Solution{}, fmt.Errorf("mip: %d integrality flags for %d vars", len(p.Integer), p.NumVars)
	}
	integer := make([]bool, p.NumVars)
	copy(integer, p.Integer)
	if opt.Reference {
		return repairReference(p, integer)
	}

	var inst *lp.Instance
	var err error
	if opt.DenseBasis {
		inst, err = lp.NewInstanceDense(p.Problem)
	} else {
		inst, err = lp.NewInstance(p.Problem)
	}
	if err != nil {
		return Solution{}, err
	}
	minSense := func(v float64) float64 {
		if p.Maximize {
			return -v
		}
		return v
	}

	res := Solution{Status: lp.Infeasible, Objective: math.Inf(1)}
	st, err := inst.SolveCurrent()
	if err != nil {
		return Solution{}, err
	}
	res.Nodes = 1
	if st != lp.Optimal {
		res.Status = st
		res.Pivots = inst.Pivots()
		return finish(res, p), nil
	}
	x := inst.Values(nil)
	rounded := false
	for j := 0; j < p.NumVars; j++ {
		if !integer[j] {
			continue
		}
		r := math.Round(x[j])
		r = math.Max(math.Ceil(p.LowerOf(j)), math.Min(r, math.Floor(p.UpperOf(j))))
		lo, hi := inst.Bounds(j)
		if r < lo || r > hi {
			r = math.Max(lo, math.Min(r, hi))
		}
		inst.SetBound(j, r, r)
		rounded = true
	}
	if rounded {
		st, err = inst.SolveCurrent()
		if err != nil {
			return Solution{}, err
		}
		res.Nodes = 2
	}
	res.Status = st
	res.Pivots = inst.Pivots()
	res.Refactors = inst.Refactors()
	res.EtaChainLen = inst.EtaChainLen()
	if st == lp.Optimal {
		res.X = roundIntegers(inst.Values(nil), integer)
		res.Objective = minSense(inst.ObjectiveValue())
	}
	return finish(res, p), nil
}

// repairReference is the rounding repair over the legacy dense reference
// simplex, used when the caller differential-tests the degraded path too.
func repairReference(p Problem, integer []bool) (Solution, error) {
	res := Solution{Status: lp.Infeasible, Objective: math.Inf(1)}
	sol, err := lp.SolveReference(p.Problem)
	if err != nil {
		return Solution{}, err
	}
	res.Nodes = 1
	res.Pivots = sol.Pivots
	if sol.Status != lp.Optimal {
		res.Status = sol.Status
		if p.Maximize {
			res.Objective = math.Inf(-1)
		}
		return finish(res, p), nil
	}
	fixed := p.Problem
	fixed.Lower = make([]float64, p.NumVars)
	fixed.Upper = make([]float64, p.NumVars)
	for j := 0; j < p.NumVars; j++ {
		fixed.Lower[j] = p.LowerOf(j)
		fixed.Upper[j] = p.UpperOf(j)
		if integer[j] {
			r := math.Round(sol.X[j])
			r = math.Max(math.Ceil(fixed.Lower[j]), math.Min(r, math.Floor(fixed.Upper[j])))
			fixed.Lower[j], fixed.Upper[j] = r, r
		}
	}
	sol2, err := lp.SolveReference(fixed)
	if err != nil {
		return Solution{}, err
	}
	res.Nodes = 2
	res.Pivots += sol2.Pivots
	res.Status = sol2.Status
	if sol2.Status == lp.Optimal {
		res.X = roundIntegers(sol2.X, integer)
		res.Objective = sol2.Objective
		if p.Maximize {
			res.Objective = -res.Objective
		}
	}
	return finish(res, p), nil
}
