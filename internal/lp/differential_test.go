package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomProblem draws a small LP with mixed senses and (optionally) finite
// bounds, free variables, and negative RHS values — the full surface the
// two solvers must agree on.
func randomProblem(rng *rand.Rand, withBounds bool) Problem {
	n := 1 + rng.Intn(8)
	m := 1 + rng.Intn(8)
	p := Problem{
		NumVars:   n,
		Objective: make([]float64, n),
		Maximize:  rng.Intn(2) == 0,
	}
	for j := range p.Objective {
		p.Objective[j] = math.Round(rng.NormFloat64()*10) / 4
	}
	for i := 0; i < m; i++ {
		c := Constraint{Coeffs: make([]float64, n), Sense: Sense(rng.Intn(3))}
		nz := 0
		for j := range c.Coeffs {
			if rng.Intn(3) > 0 {
				c.Coeffs[j] = math.Round(rng.NormFloat64()*8) / 4
				if c.Coeffs[j] != 0 {
					nz++
				}
			}
		}
		if nz == 0 {
			c.Coeffs[rng.Intn(n)] = 1
		}
		c.RHS = math.Round(rng.NormFloat64()*20) / 4
		if c.Sense == LE && c.RHS < 0 && rng.Intn(2) == 0 {
			c.RHS = -c.RHS // keep a healthy share of feasible problems
		}
		p.Constraints = append(p.Constraints, c)
	}
	if withBounds {
		p.Lower = make([]float64, n)
		p.Upper = make([]float64, n)
		for j := 0; j < n; j++ {
			switch rng.Intn(4) {
			case 0: // default [0, inf)
				p.Lower[j], p.Upper[j] = 0, math.Inf(1)
			case 1: // boxed
				lo := math.Round(rng.NormFloat64()*4) / 2
				p.Lower[j] = lo
				p.Upper[j] = lo + float64(rng.Intn(9))/2
			case 2: // upper only
				p.Lower[j] = math.Inf(-1)
				p.Upper[j] = math.Round(rng.NormFloat64()*6) / 2
			default: // free
				p.Lower[j], p.Upper[j] = math.Inf(-1), math.Inf(1)
			}
		}
	}
	return p
}

// solveDense is Solve on the retained dense product-form path; the third
// leg of the differential triangle (sparse LU, dense, reference).
func solveDense(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	in, err := NewInstanceDense(p)
	if err != nil {
		return Solution{}, err
	}
	st, err := in.SolveCurrent()
	if err != nil {
		return Solution{}, err
	}
	sol := Solution{Status: st, Pivots: in.Pivots()}
	if st == Optimal {
		sol.X = in.Values(nil)
		for j, c := range p.Objective {
			sol.Objective += c * sol.X[j]
		}
	}
	return sol, nil
}

// checkAgainstReference solves p with all three solver paths — sparse-LU
// revised (the default), the retained dense product-form revised solver,
// and the Bland reference — and fails the test on any status disagreement,
// objective mismatch beyond tol, or an infeasible/suboptimal answer.
func checkAgainstReference(t *testing.T, p Problem, seed int64) {
	t.Helper()
	ref, errRef := SolveReference(p)
	got, errGot := Solve(p)
	den, errDen := solveDense(p)
	if (errRef != nil) != (errGot != nil) || (errRef != nil) != (errDen != nil) {
		t.Fatalf("seed %d: error mismatch: reference %v, sparse %v, dense %v", seed, errRef, errGot, errDen)
	}
	if errRef != nil {
		return
	}
	if ref.Status != got.Status || ref.Status != den.Status {
		t.Fatalf("seed %d: status mismatch: reference %v, sparse %v, dense %v\nproblem: %+v",
			seed, ref.Status, got.Status, den.Status, p)
	}
	if ref.Status != Optimal {
		return
	}
	if math.Abs(ref.Objective-got.Objective) > 1e-6*(1+math.Abs(ref.Objective)) {
		t.Fatalf("seed %d: objective mismatch: reference %.9g, sparse %.9g\nref x=%v\ngot x=%v\nproblem: %+v",
			seed, ref.Objective, got.Objective, ref.X, got.X, p)
	}
	if math.Abs(ref.Objective-den.Objective) > 1e-6*(1+math.Abs(ref.Objective)) {
		t.Fatalf("seed %d: objective mismatch: reference %.9g, dense %.9g\nproblem: %+v",
			seed, ref.Objective, den.Objective, p)
	}
	// The revised answer must itself be feasible (X within bounds, rows hold).
	for j := 0; j < p.NumVars; j++ {
		if got.X[j] < p.LowerOf(j)-1e-6 || got.X[j] > p.UpperOf(j)+1e-6 {
			t.Fatalf("seed %d: x[%d]=%.9g outside [%g, %g]", seed, j, got.X[j], p.LowerOf(j), p.UpperOf(j))
		}
	}
	for i, c := range p.Constraints {
		lhs := 0.0
		for j, v := range c.Coeffs {
			lhs += v * got.X[j]
		}
		viol := false
		switch c.Sense {
		case LE:
			viol = lhs > c.RHS+1e-6
		case GE:
			viol = lhs < c.RHS-1e-6
		default:
			viol = math.Abs(lhs-c.RHS) > 1e-6
		}
		if viol {
			t.Fatalf("seed %d: constraint %d violated: lhs=%.9g %v rhs=%g\nx=%v", seed, i, lhs, c.Sense, c.RHS, got.X)
		}
	}
}

// TestDifferentialNonnegative compares the revised solver against the Bland
// reference on random LPs over the classic x >= 0 domain.
func TestDifferentialNonnegative(t *testing.T) {
	iters := 4000
	if testing.Short() {
		iters = 400
	}
	for s := 0; s < iters; s++ {
		rng := rand.New(rand.NewSource(int64(s)))
		checkAgainstReference(t, randomProblem(rng, false), int64(s))
	}
}

// TestDifferentialBounded adds finite boxes, pure-upper-bound, and free
// variables to the random pool, exercising the bound handling on both sides
// (native in the revised solver, reduction in the reference).
func TestDifferentialBounded(t *testing.T) {
	iters := 4000
	if testing.Short() {
		iters = 400
	}
	for s := 0; s < iters; s++ {
		rng := rand.New(rand.NewSource(int64(1_000_000 + s)))
		checkAgainstReference(t, randomProblem(rng, true), int64(s))
	}
}

// TestDifferentialLarger repeats the bounded comparison at scheduler-like
// densities (10-25 variables and rows) where degeneracy and long pivot
// sequences are more common.
func TestDifferentialLarger(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 50
	}
	for s := 0; s < iters; s++ {
		rng := rand.New(rand.NewSource(int64(2_000_000 + s)))
		p := randomProblem(rng, s%2 == 0)
		grow := 10 + rng.Intn(16)
		p = growProblem(rng, p, grow)
		checkAgainstReference(t, p, int64(s))
	}
}

// growProblem widens p to n variables, padding objective/bounds/rows with
// fresh random entries so the enlarged problem stays internally consistent.
func growProblem(rng *rand.Rand, p Problem, n int) Problem {
	if n <= p.NumVars {
		return p
	}
	for j := p.NumVars; j < n; j++ {
		p.Objective = append(p.Objective, math.Round(rng.NormFloat64()*10)/4)
		if p.Lower != nil {
			p.Lower = append(p.Lower, 0)
			p.Upper = append(p.Upper, float64(1+rng.Intn(10)))
		}
	}
	p.NumVars = n
	rows := len(p.Constraints)
	for i := 0; i < rows; i++ {
		c := &p.Constraints[i]
		for len(c.Coeffs) < n {
			v := 0.0
			if rng.Intn(2) == 0 {
				v = math.Round(rng.NormFloat64()*8) / 4
			}
			c.Coeffs = append(c.Coeffs, v)
		}
	}
	extra := rng.Intn(10)
	for i := 0; i < extra; i++ {
		c := Constraint{Coeffs: make([]float64, n), Sense: Sense(rng.Intn(3))}
		for j := range c.Coeffs {
			if rng.Intn(3) == 0 {
				c.Coeffs[j] = math.Round(rng.NormFloat64()*8) / 4
			}
		}
		c.RHS = math.Round(math.Abs(rng.NormFloat64())*30) / 4
		p.Constraints = append(p.Constraints, c)
	}
	return p
}

// TestInstanceWarmResolve pins the warm-start contract: after an optimal
// solve, re-solving with tightened bounds succeeds from the kept basis, and
// restoring the bounds reproduces the original optimum with zero additional
// phase-1 work (the resolve costs at most a handful of pivots).
func TestInstanceWarmResolve(t *testing.T) {
	// max 3x+2y s.t. x+y<=4, x+3y<=6 — optimum (4,0), obj 12.
	p := Problem{
		NumVars:   2,
		Objective: []float64{3, 2},
		Maximize:  true,
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: LE, RHS: 4},
			{Coeffs: []float64{1, 3}, Sense: LE, RHS: 6},
		},
	}
	in, err := NewInstance(p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := in.SolveCurrent()
	if err != nil || st != Optimal {
		t.Fatalf("cold solve: %v %v", st, err)
	}
	if obj := in.ObjectiveValue(); math.Abs(obj-12) > 1e-9 {
		t.Fatalf("cold objective = %g, want 12", obj)
	}
	cold := in.Pivots()

	// Branch-style tightening: x <= 1 forces the (1, 5/3) vertex, obj 3+10/3.
	in.SetBound(0, 0, 1)
	st, err = in.SolveCurrent()
	if err != nil || st != Optimal {
		t.Fatalf("tightened solve: %v %v", st, err)
	}
	if obj, want := in.ObjectiveValue(), 3+10.0/3; math.Abs(obj-want) > 1e-9 {
		t.Fatalf("tightened objective = %g, want %g", obj, want)
	}

	// Restore and re-solve warm: same optimum, and only a few extra pivots.
	in.ResetBounds()
	before := in.Pivots()
	st, err = in.SolveCurrent()
	if err != nil || st != Optimal {
		t.Fatalf("warm solve: %v %v", st, err)
	}
	if obj := in.ObjectiveValue(); math.Abs(obj-12) > 1e-9 {
		t.Fatalf("warm objective = %g, want 12", obj)
	}
	_ = before
	_ = cold
	x := in.Values(nil)
	if math.Abs(x[0]-4) > 1e-9 || math.Abs(x[1]) > 1e-9 {
		t.Errorf("warm x = %v, want [4 0]", x)
	}

	// The true warm-start contract: re-solving the identical problem from
	// its own optimal basis performs zero pivots.
	atOpt := in.Pivots()
	st, err = in.SolveCurrent()
	if err != nil || st != Optimal {
		t.Fatalf("identical warm solve: %v %v", st, err)
	}
	if extra := in.Pivots() - atOpt; extra != 0 {
		t.Errorf("identical re-solve took %d pivots, want 0", extra)
	}
}

// TestInstanceRefresh verifies Refresh accepts objective/RHS/bound changes
// on an identical structure and rejects any structural drift.
func TestInstanceRefresh(t *testing.T) {
	base := Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 2}, Sense: GE, RHS: 3},
		},
	}
	in, err := NewInstance(base)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := in.SolveCurrent(); st != Optimal {
		t.Fatalf("base solve: %v", st)
	}

	changed := base
	changed.Objective = []float64{2, 1}
	changed.Constraints = []Constraint{{Coeffs: []float64{1, 2}, Sense: GE, RHS: 5}}
	if !in.Refresh(changed) {
		t.Fatal("Refresh must accept same-structure objective/RHS change")
	}
	if st, _ := in.SolveCurrent(); st != Optimal {
		t.Fatal("refreshed solve failed")
	}
	want, err := Solve(changed)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.ObjectiveValue(); math.Abs(got-want.Objective) > 1e-9 {
		t.Errorf("refreshed objective = %g, want %g", got, want.Objective)
	}

	structChange := base
	structChange.Constraints = []Constraint{{Coeffs: []float64{1, 3}, Sense: GE, RHS: 3}}
	if in.Refresh(structChange) {
		t.Error("Refresh must reject changed coefficients")
	}
	senseChange := base
	senseChange.Constraints = []Constraint{{Coeffs: []float64{1, 2}, Sense: LE, RHS: 3}}
	if in.Refresh(senseChange) {
		t.Error("Refresh must reject changed sense")
	}
}

// TestBoundedDirect covers deterministic bounded cases end to end.
func TestBoundedDirect(t *testing.T) {
	// max x+y, x in [1,2], y in [-3,-1], x+y <= 0 — optimum (1,-1)? No:
	// x=2, y=-2 gives 0; x+y <= 0 binds. Objective ties along the face, so
	// pin with distinct weights instead: max 2x+y -> x=2, y=-2, obj 2.
	p := Problem{
		NumVars:   2,
		Objective: []float64{2, 1},
		Maximize:  true,
		Lower:     []float64{1, -3},
		Upper:     []float64{2, -1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: LE, RHS: 0},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.X[0]-2) > 1e-9 || math.Abs(sol.X[1]+2) > 1e-9 || math.Abs(sol.Objective-2) > 1e-9 {
		t.Errorf("got x=%v obj=%g, want [2 -2] obj 2", sol.X, sol.Objective)
	}

	// Crossed bounds are infeasible, not an error.
	bad := Problem{NumVars: 1, Lower: []float64{2}, Upper: []float64{1},
		Constraints: []Constraint{{Coeffs: []float64{1}, Sense: LE, RHS: 10}}}
	sol, err = Solve(bad)
	if err != nil || sol.Status != Infeasible {
		t.Errorf("crossed bounds: got %v %v, want infeasible", sol.Status, err)
	}

	// Free variable pushed negative by the objective.
	free := Problem{
		NumVars:   1,
		Objective: []float64{1},
		Lower:     []float64{math.Inf(-1)},
		Upper:     []float64{math.Inf(1)},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Sense: GE, RHS: -7},
		},
	}
	sol, err = Solve(free)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("free: %v %v", sol.Status, err)
	}
	if math.Abs(sol.X[0]+7) > 1e-9 {
		t.Errorf("free minimum x = %v, want -7", sol.X)
	}

	// Bound validation.
	if err := (Problem{NumVars: 1, Lower: []float64{math.Inf(1)}}).Validate(); err == nil {
		t.Error("+inf lower bound must fail Validate")
	}
	if err := (Problem{NumVars: 1, Upper: []float64{math.NaN()}}).Validate(); err == nil {
		t.Error("NaN upper bound must fail Validate")
	}
}
