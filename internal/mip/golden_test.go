package mip

import (
	"fmt"
	"math"
	"testing"

	"github.com/vbcloud/vb/internal/lp"
)

// TestGoldenObjectives pins the optimal objective of a family of
// deterministic site-selection-shaped MIPs. Both solver stacks must
// reproduce every value to 1e-6: the revised bounds-branching solver because
// it is the production path, and the legacy row-branching reference because
// it anchors the values to the pre-rewrite implementation. A pivoting or
// warm-start regression that lands on a wrong vertex shows up here as a
// changed objective even when feasibility checks still pass.
func TestGoldenObjectives(t *testing.T) {
	for seed, want := range goldenObjectives {
		p := benchMIP(24, 6, 30, seed)
		for name, opt := range map[string]Options{
			"revised":   {MaxNodes: 4000},
			"reference": {MaxNodes: 4000, Reference: true},
		} {
			sol, err := Solve(p, opt)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			if sol.Status != lp.Optimal || !sol.Proven {
				t.Fatalf("seed %d %s: status %v proven %v", seed, name, sol.Status, sol.Proven)
			}
			if math.Abs(sol.Objective-want) > 1e-6*(1+math.Abs(want)) {
				t.Errorf("seed %d %s: objective %.9f, golden %.9f", seed, name, sol.Objective, want)
			}
		}
	}
}

// goldenObjectives holds the proven optima for benchMIP(24, 6, 30, seed).
var goldenObjectives = map[int64]float64{
	1: 247.477788387,
	2: 160.459746127,
	3: 264.280699194,
	4: 116.275262890,
	5: 196.217290434,
	6: 216.670293069,
	7: 128.168540776,
	8: 152.542190760,
}

// TestGoldenObjectivesPrint regenerates the golden table from the reference
// stack. It skips itself while the table is populated: empty the table and
// run it to print replacement values when the fixture generator changes.
func TestGoldenObjectivesPrint(t *testing.T) {
	if len(goldenObjectives) != 0 {
		t.Skip("golden table populated")
	}
	for seed := int64(1); seed <= 8; seed++ {
		p := benchMIP(24, 6, 30, seed)
		sol, err := Solve(p, Options{MaxNodes: 4000, Reference: true})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("\t%d: %.9f,\n", seed, sol.Objective)
	}
}
