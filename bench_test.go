package vb

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation. Each prints its paper-style rows exactly once (whatever b.N
// is), then times repeated runs. Run with:
//
//	go test -bench=. -benchmem
//
// EXPERIMENTS.md records the paper-vs-measured comparison for each one.

var printOnce sync.Map

func printFirst(key, text string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println()
		fmt.Print(text)
	}
}

func BenchmarkFig2aPowerVariation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig2aPowerVariation(DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig2a", r.Report())
	}
}

func BenchmarkFig2bPowerCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig2bPowerCDF(DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig2b", r.Report())
	}
}

func BenchmarkFig3aComplementarySites(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig3Complementary(DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig3", r.Report())
	}
}

func BenchmarkFig3bStableEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig3Complementary(DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		// Fig 3b is the combo table inside the Fig 3 result.
		if len(r.Combos) != 7 {
			b.Fatal("missing combos")
		}
	}
}

func BenchmarkCovPairImprovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := CovPairImprovement(DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("pairs", fmt.Sprintf("§2.3: %.0f%% of %d site pairs improve cov by >50%% in some 3-day interval (paper: >52%%)\n",
			r.FractionImproved*100, r.Pairs))
	}
}

func BenchmarkFig4aMigrationTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig4Migration(DefaultSeed, Wind, 7)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig4a", r.Report())
	}
}

func BenchmarkFig4bMigrationCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var text string
		for _, src := range []Source{Solar, Wind} {
			r, err := Fig4Migration(DefaultSeed, src, 90)
			if err != nil {
				b.Fatal(err)
			}
			text += r.Report()
		}
		printFirst("fig4b", text)
	}
}

func BenchmarkFig5ForecastAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig5ForecastAccuracy(DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig5", r.Report())
	}
}

func BenchmarkTable1PolicyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Table1PolicyComparison(Table1Setup{})
		if err != nil {
			b.Fatal(err)
		}
		printFirst("table1", r.Report())
	}
}

func BenchmarkFig7PolicyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Table1PolicyComparison(Table1Setup{})
		if err != nil {
			b.Fatal(err)
		}
		cdfs, err := Fig7CDFs(r)
		if err != nil {
			b.Fatal(err)
		}
		var text string
		text = "Fig 7: transfer CDF zero-intercepts per policy\n"
		for _, row := range r.Rows {
			text += fmt.Sprintf("  %-9s zeros=%.0f%% points=%d\n", row.Policy, row.ZeroFraction*100, len(cdfs[row.Policy]))
		}
		printFirst("fig7", text)
	}
}

func BenchmarkWANShare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := WANShare()
		if err != nil {
			b.Fatal(err)
		}
		printFirst("wanshare", fmt.Sprintf("§3: %.0f GB in %v needs %.0f Gb/s = %.0f%% of a site's %.0f Gb/s share (paper: ~40%%)\n",
			r.SpikeGB, r.Deadline, r.RequiredGbps, r.ShareConsumed*100, r.PerSiteGbps))
	}
}

func BenchmarkWANBusyFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := WANBusyFraction(DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("wanbusy", fmt.Sprintf("§5: migration keeps a %.0f Gb/s site link busy %.1f%% of the time (paper: 2-4%%)\n",
			r.LinkGbps, r.BusyFraction*100))
	}
}

func BenchmarkEconSavings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := EconSavings(DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("econ", fmt.Sprintf("§2.1: co-location saves %.0f%% of DC cost; trio curtailment capture %.0f MWh (~$%.0f)/yr\n",
			r.TransmissionSavingFraction*100, r.CurtailedMWh, r.CurtailmentValue))
	}
}

func benchAblation(b *testing.B, key string, run func(uint64) ([]AblationResult, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rs, err := run(DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		text := "Ablation " + key + ":\n"
		for _, r := range rs {
			for _, row := range r.Result.Rows {
				text += fmt.Sprintf("  %-20s %-9s total=%-8.0f p99=%-7.0f peak=%-7.0f std=%-6.0f\n",
					r.Label, row.Policy, row.Total, row.P99, row.Peak, row.Std)
			}
		}
		printFirst(key, text)
	}
}

func BenchmarkAblationHorizon(b *testing.B) {
	benchAblation(b, "horizon", AblationHorizon)
}

func BenchmarkAblationPeakWeight(b *testing.B) {
	benchAblation(b, "peakweight", AblationPeakWeight)
}

func BenchmarkAblationCliqueSize(b *testing.B) {
	benchAblation(b, "cliquesize", AblationCliqueSize)
}

func BenchmarkAblationUtilization(b *testing.B) {
	benchAblation(b, "utilization", AblationUtilization)
}

func BenchmarkAblationForecastError(b *testing.B) {
	benchAblation(b, "forecasterror", AblationForecastError)
}

// BenchmarkMIPSolve isolates the scheduler's MIP solve step: one placement
// (and its branch-and-bound site-selection solve) per iteration against
// sinusoidally varying site capacity. The obs registry's mip.solve timing
// span is reported as ns/solve, so the solver cost is separated from the
// surrounding plan bookkeeping that the overall ns/op includes.
func BenchmarkMIPSolve(b *testing.B) {
	const numSites, steps = 3, 28 // one week of 6 h plan steps
	reg := NewMetrics()
	sched, err := NewScheduler(SchedulerConfig{
		Policy:         PolicyMIP,
		PlanStep:       Table1PlanStep,
		UtilTarget:     0.7,
		MaxSitesPerApp: numSites,
		Obs:            reg,
	}, numSites, steps)
	if err != nil {
		b.Fatal(err)
	}
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	demand := AppDemand{ID: 1, Cores: 4000, StableCores: 2800, MemGBPerCore: 4, Start: start}
	var capAt CapacityFn = func(site, step int) float64 {
		return 12000 + 3000*math.Sin(float64(step+site*7)/3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := sched.Place(demand, 0, steps, capAt, capAt, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		sched.Uncommit(plan, 0)
	}
	b.StopTimer()
	if h, ok := reg.Histogram("mip.solve"); ok && h.Count > 0 {
		b.ReportMetric(h.Sum/float64(h.Count)*1e9, "ns/solve")
		b.ReportMetric(reg.Counter("mip.nodes")/float64(h.Count), "nodes/solve")
	}
}

// BenchmarkMIPSolveCold is BenchmarkMIPSolve with the cross-solve warm cache
// defeated: every iteration presents a fresh app ID, so each placement pays
// the full instance build plus a from-scratch solve. The gap between this and
// BenchmarkMIPSolve is what basis carry-over buys the scheduler.
func BenchmarkMIPSolveCold(b *testing.B) {
	const numSites, steps = 3, 28
	reg := NewMetrics()
	sched, err := NewScheduler(SchedulerConfig{
		Policy:         PolicyMIP,
		PlanStep:       Table1PlanStep,
		UtilTarget:     0.7,
		MaxSitesPerApp: numSites,
		Obs:            reg,
	}, numSites, steps)
	if err != nil {
		b.Fatal(err)
	}
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	var capAt CapacityFn = func(site, step int) float64 {
		return 12000 + 3000*math.Sin(float64(step+site*7)/3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		demand := AppDemand{ID: i + 1, Cores: 4000, StableCores: 2800, MemGBPerCore: 4, Start: start}
		plan, err := sched.Place(demand, 0, steps, capAt, capAt, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		sched.Uncommit(plan, 0)
	}
	b.StopTimer()
	if h, ok := reg.Histogram("mip.solve"); ok && h.Count > 0 {
		b.ReportMetric(h.Sum/float64(h.Count)*1e9, "ns/solve")
		b.ReportMetric(reg.Counter("mip.nodes")/float64(h.Count), "nodes/solve")
	}
}

// BenchmarkWorldGeneration measures the raw trace-generation throughput
// (samples per second across a 3-site fleet).
func BenchmarkWorldGeneration(b *testing.B) {
	w := NewWorld(DefaultSeed)
	sites := EuropeanTrio()
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Generate(sites, start, 15*time.Minute, 30*96); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorldGenerationFleet generates the full 12-site fleet, the shape
// the experiment suite actually uses. The per-site pass fans out over
// par.Default workers (which tracks GOMAXPROCS), so running with -cpu 1,4
// compares the serial and parallel paths on identical work:
//
//	go test -bench WorldGenerationFleet -cpu 1,4
func BenchmarkWorldGenerationFleet(b *testing.B) {
	w := NewWorld(DefaultSeed)
	sites := EuropeanFleet(0)
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Generate(sites, start, 15*time.Minute, 30*96); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllExperiments times the whole figure/table suite; with
// -cpu 1,4 it shows the end-to-end speedup of the parallel pipeline.
// It is expensive (~seconds per iteration) — use -benchtime=1x.
func BenchmarkRunAllExperiments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunAllExperiments(DefaultSeed, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension benchmarks: models beyond the paper's evaluation that quantify
// arguments it makes qualitatively (see extensions.go).

func BenchmarkBatteryEquivalent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := BatteryEquivalent(DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("battery", fmt.Sprintf(
			"Extension: firming %.0f MW from one site needs %.0f MWh of battery (~$%.1fB); the 3-site VB group needs %.0f MWh (%.0fx less)\n",
			r.TargetMW, r.SingleSiteBatteryMWh, r.SingleSiteCostUSD/1e9,
			r.GroupBatteryMWh, r.SingleSiteBatteryMWh/r.GroupBatteryMWh))
	}
}

func BenchmarkMigrationRealism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := MigrationRealism(DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("migrealism", fmt.Sprintf(
			"Extension: pre-copy amplification %.2fx, downtime %.2fs; Table 1 totals become greedy=%.0f GB, MIP=%.0f GB\n",
			r.Amplification, r.DowntimeSec, r.AdjustedGreedyTotalGB, r.AdjustedMIPTotalGB))
	}
}

func BenchmarkReplicationVsMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := ReplicationVsMigration(DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("replvsmig", fmt.Sprintf(
			"Extension: hot standby %.0f GB/week vs cold %.0f GB/week vs actual migration %.0f GB/week per app (break-even at %.0f moves/week)\n",
			r.HotStandbyGB, r.ColdStandbyGB, r.MigrationGB, r.BreakEvenMovesPerWeek))
	}
}

func BenchmarkFullPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := FullPipeline(DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("pipeline", r.Report())
	}
}

func BenchmarkAblationSeason(b *testing.B) {
	benchAblation(b, "season", AblationSeason)
}

func BenchmarkFidelityVMLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fidelity(DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		text := "Extension: fluid vs VM-level engine (total GB)\n"
		for _, pol := range []Policy{PolicyGreedy, PolicyMIP} {
			text += fmt.Sprintf("  %-9s fluid=%-8.0f vm-level=%-8.0f moves=%-5d frag=%.2f\n",
				pol, r.FluidGB[pol], r.VMLevelGB[pol], r.Moves[pol], r.Fragmentation[pol])
		}
		printFirst("fidelity", text)
	}
}

func BenchmarkCarbonSavings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := CarbonSavings(DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("carbon", fmt.Sprintf(
			"Extension: on-site consumption avoids %.0f tCO2e/yr (%.0f%% of the grid counterfactual); migration traffic adds %.1f t (%.4f%% — §5's 'negligible')\n",
			r.Savings.SavedTons, r.Savings.SavedFraction*100, r.MigrationTons, r.MigrationShare*100))
	}
}

func BenchmarkConsolidationStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := ConsolidationStudy()
		if err != nil {
			b.Fatal(err)
		}
		printFirst("consolidation", fmt.Sprintf(
			"Extension: consolidated packing draws %.0f kW vs %.0f kW spread (%.0f%% saving) at 70%% utilization\n",
			r.ConsolidatedKW, r.SpreadKW, r.SavingFraction*100))
	}
}

func BenchmarkAblationGroupSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := AblationGroupSize(DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		text := "Ablation group size (sites per multi-VB group, MIP policy):\n"
		for _, r := range rs {
			row := r.Result.Rows[0]
			text += fmt.Sprintf("  %-12s total=%-8.0f p99=%-7.0f paused=%-6.0f avail=%.2f%%\n",
				r.Label, row.Total, row.P99, row.PausedStableCoreSteps, row.MeanAvailability*100)
		}
		printFirst("groupsize", text)
	}
}
