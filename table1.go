package vb

import (
	"fmt"
	"strings"
	"time"

	"github.com/vbcloud/vb/internal/core"
	"github.com/vbcloud/vb/internal/energy"
	"github.com/vbcloud/vb/internal/forecast"
	"github.com/vbcloud/vb/internal/graph"
	"github.com/vbcloud/vb/internal/sim"
	"github.com/vbcloud/vb/internal/stats"
	"github.com/vbcloud/vb/internal/workload"
)

// Table1PlanStep is the scheduler's planning granularity in the Table 1
// experiment. The paper simulates at 15-minute power resolution; the
// co-scheduler plans at 6-hour steps over the same traces (the per-step
// power is the conservative within-step minimum).
const Table1PlanStep = 6 * time.Hour

// Table1Row is one policy's migration-overhead summary (all GB).
type Table1Row struct {
	Policy Policy
	Total  float64
	P99    float64
	Peak   float64
	Std    float64
	// ZeroFraction is the share of steps with no migration (Fig 7).
	ZeroFraction float64
	// PausedStableCoreSteps counts availability violations.
	PausedStableCoreSteps float64
	// MeanAvailability is the mean fraction of demanded stable core-steps
	// served across apps — the scheduler's goal (i).
	MeanAvailability float64
}

// Table1Result holds the full policy comparison (Table 1 + Figure 7).
type Table1Result struct {
	Rows []Table1Row
	// Transfers holds each policy's per-step transfer series (Fig 7's
	// CDFs are over these values, including zeros).
	Transfers map[Policy]Series
	// Group is the clique of sites the scheduler used.
	Group []SiteConfig
}

// Table1Setup parameterizes the scheduler comparison; the zero value is the
// paper-faithful default.
type Table1Setup struct {
	// Seed drives all randomness (0 = DefaultSeed).
	Seed uint64
	// Days is the simulated span (0 = the paper's 7).
	Days int
	// AppsPerDay is the application arrival rate (0 = 6).
	AppsPerDay float64
	// MeanVMsPerApp is the mean application size (0 = 60).
	MeanVMsPerApp float64
	// UtilTarget is the admission utilization target (0 = 0.7).
	UtilTarget float64
	// MaxSitesPerApp bounds the per-app site spread (0 = 3).
	MaxSitesPerApp int
	// PeakWeight overrides MIP-peak's O2 weight (0 = default).
	PeakWeight float64
	// LeadDependentForecasts switches from the paper's offline day-ahead
	// archive to lead-dependent (3h/day/week) forecast degradation.
	LeadDependentForecasts bool
	// Policies restricts which policies run (nil = all four).
	Policies []Policy
	// Faults, when non-nil, injects the scripted faults (site blackouts,
	// brownouts, WAN cuts, forecast busts, solver slowdowns) into every
	// policy's run. The script is validated against the experiment's
	// dimensions when the input is built; faults are part of the
	// deterministic run identity (same seed + same script = same rows).
	Faults *FaultScript
	// Obs, when non-nil, observes the run: trace generation, forecasting,
	// scheduling and simulation all report into it. Nil disables
	// observability at zero cost.
	Obs *MetricsRegistry
}

func (s Table1Setup) withDefaults() Table1Setup {
	if s.Seed == 0 {
		s.Seed = DefaultSeed
	}
	if s.Days == 0 {
		s.Days = 7
	}
	if s.AppsPerDay == 0 {
		s.AppsPerDay = 6
	}
	if s.MeanVMsPerApp == 0 {
		s.MeanVMsPerApp = 60
	}
	if s.UtilTarget == 0 {
		s.UtilTarget = 0.7
	}
	if s.MaxSitesPerApp == 0 {
		s.MaxSitesPerApp = 3
	}
	if s.Policies == nil {
		s.Policies = core.AllPolicies()
	}
	return s
}

// table1Start anchors the scheduler experiment in early May, matching the
// paper's ELIA sample period.
var table1Start = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

// buildTable1Input assembles the multi-VB group, power, forecasts and app
// demands for the scheduler experiment. The group is selected with the
// paper's step 1: the best 3-clique of the fleet's latency graph by
// combined cov.
func buildTable1Input(s Table1Setup, start time.Time) (sim.Input, []SiteConfig, error) {
	return buildGroupInput(s, start, energy.EuropeanTrio())
}

// buildGroupPower generates a group's per-site actual power series and
// forecast bundles on the plan timeline. Shared by the Table 1 and SLO-class
// experiments, which differ only in how they produce applications.
func buildGroupPower(s Table1Setup, start time.Time, trio []SiteConfig) ([]Series, []*forecast.Bundle, error) {
	w := energy.NewWorld(s.Seed)
	w.Obs = s.Obs
	if s.Obs != nil {
		for _, c := range trio {
			s.Obs.SetLabel("site."+c.Name, c.Source.String())
		}
	}
	fine, err := w.Generate(trio, start, time.Hour, s.Days*24)
	if err != nil {
		return nil, nil, err
	}
	fc := forecast.New(s.Seed)
	fc.Obs = s.Obs
	actual := make([]Series, len(trio))
	bundles := make([]*forecast.Bundle, len(trio))
	for i := range trio {
		a, err := fine[i].WindowMin(Table1PlanStep)
		if err != nil {
			return nil, nil, err
		}
		actual[i] = a
		bundles[i], err = fc.NewBundle(a, trio[i].Source, trio[i].Name)
		if err != nil {
			return nil, nil, err
		}
		if !s.LeadDependentForecasts {
			if err := bundles[i].UseFixedHorizon(forecast.HorizonDay); err != nil {
				return nil, nil, err
			}
		}
	}
	return actual, bundles, nil
}

// buildGroupInput assembles power, forecasts and app demands for an
// arbitrary multi-VB group.
func buildGroupInput(s Table1Setup, start time.Time, trio []SiteConfig) (sim.Input, []SiteConfig, error) {
	// Subgraph identification over the trio (they are mutually within the
	// paper's 50 ms at European scale when relaxed; we use the trio
	// directly as the chosen group but verify it is a clique under a
	// generous continental threshold).
	g, err := graph.New(trio, 60)
	if err != nil {
		return sim.Input{}, nil, err
	}
	cl, err := g.Cliques(len(trio))
	if err != nil {
		return sim.Input{}, nil, err
	}
	if len(cl) == 0 {
		return sim.Input{}, nil, fmt.Errorf("vb: trio is not a clique at 60 ms")
	}

	actual, bundles, err := buildGroupPower(s, start, trio)
	if err != nil {
		return sim.Input{}, nil, err
	}
	apps, err := workload.GenerateApps(workload.AppConfig{
		Seed:           s.Seed + 1,
		Start:          start,
		Duration:       time.Duration(s.Days) * 24 * time.Hour,
		MeanAppsPerDay: s.AppsPerDay,
		MeanVMsPerApp:  s.MeanVMsPerApp,
		StableFraction: 0.7,
	})
	if err != nil {
		return sim.Input{}, nil, err
	}
	demands, err := appDemands(apps)
	if err != nil {
		return sim.Input{}, nil, err
	}
	in := sim.Input{
		Actual:     actual,
		Bundles:    bundles,
		TotalCores: float64(DefaultClusterConfig().TotalCores()),
		Apps:       demands,
		Obs:        s.Obs,
	}
	if s.Faults != nil {
		inj, err := NewFaultInjector(s.Faults, len(trio), actual[0].Len())
		if err != nil {
			return sim.Input{}, nil, err
		}
		in.Faults = inj
	}
	return in, trio, nil
}

// Table1PolicyComparison regenerates Table 1 and the data behind Figure 7.
func Table1PolicyComparison(setup Table1Setup) (Table1Result, error) {
	return table1At(setup.withDefaults(), table1Start)
}

// table1At runs the policy comparison with the experiment anchored at the
// given start time.
func table1At(s Table1Setup, start time.Time) (Table1Result, error) {
	in, group, err := buildTable1Input(s, start)
	if err != nil {
		return Table1Result{}, err
	}
	res := Table1Result{Transfers: map[Policy]Series{}, Group: group}
	for _, pol := range s.Policies {
		cfg := core.Config{
			Policy:         pol,
			PlanStep:       Table1PlanStep,
			UtilTarget:     s.UtilTarget,
			MaxSitesPerApp: s.MaxSitesPerApp,
			PeakWeight:     s.PeakWeight,
			Obs:            s.Obs,
		}
		s.Obs.SetLabel("policy", pol.String())
		r, err := sim.Run(cfg, in)
		if err != nil {
			return Table1Result{}, fmt.Errorf("vb: policy %v: %w", pol, err)
		}
		total, p99, peak, std, err := r.Summary()
		if err != nil {
			return Table1Result{}, err
		}
		res.Rows = append(res.Rows, Table1Row{
			Policy:                pol,
			Total:                 total,
			P99:                   p99,
			Peak:                  peak,
			Std:                   std,
			ZeroFraction:          r.ZeroFraction(),
			PausedStableCoreSteps: r.PausedStableCoreSteps,
			MeanAvailability:      r.MeanAvailability(),
		})
		res.Transfers[pol] = r.Transfer
	}
	return res, nil
}

// Row returns the row for a policy, or false.
func (r Table1Result) Row(p Policy) (Table1Row, bool) {
	for _, row := range r.Rows {
		if row.Policy == p {
			return row, true
		}
	}
	return Table1Row{}, false
}

// Report renders the table as text in the paper's layout.
func (r Table1Result) Report() string {
	var b strings.Builder
	b.WriteString("Table 1: migration overhead (GB) by scheduling policy\n")
	b.WriteString("  Policy    Total     99%ile    Peak      Std      Zero%  Avail%\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-9s %-9.0f %-9.0f %-9.0f %-8.0f %3.0f%%  %6.2f%%\n",
			row.Policy, row.Total, row.P99, row.Peak, row.Std, row.ZeroFraction*100, row.MeanAvailability*100)
	}
	return b.String()
}

// Fig7CDFs converts the Table 1 transfer series into per-policy CDF points
// over all steps (including zeros), as in Figure 7.
func Fig7CDFs(t Table1Result) (map[Policy][]Point, error) {
	out := map[Policy][]Point{}
	for pol, series := range t.Transfers {
		c, err := stats.NewCDF(series.Values)
		if err != nil {
			return nil, err
		}
		out[pol] = c.Points(60)
	}
	return out, nil
}

// AblationResult is one (label, Table1Result) pair from a parameter sweep.
type AblationResult struct {
	Label  string
	Result Table1Result
}

// AblationCliqueSize sweeps the per-app site spread k (the paper considers
// k = 2..5; our group has three sites, so k = 1..3).
func AblationCliqueSize(seed uint64) ([]AblationResult, error) {
	var out []AblationResult
	for k := 1; k <= 3; k++ {
		res, err := Table1PolicyComparison(Table1Setup{
			Seed:           seed,
			MaxSitesPerApp: k,
			Policies:       []Policy{PolicyMIP},
		})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{Label: fmt.Sprintf("k=%d", k), Result: res})
	}
	return out, nil
}

// AblationPeakWeight sweeps MIP-peak's O2 weight.
func AblationPeakWeight(seed uint64) ([]AblationResult, error) {
	var out []AblationResult
	for _, w := range []float64{1, 4, 8, 16} {
		res, err := Table1PolicyComparison(Table1Setup{
			Seed:       seed,
			PeakWeight: w,
			Policies:   []Policy{PolicyMIPPeak},
		})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{Label: fmt.Sprintf("w=%g", w), Result: res})
	}
	return out, nil
}

// AblationUtilization sweeps the admission-control utilization target.
func AblationUtilization(seed uint64) ([]AblationResult, error) {
	var out []AblationResult
	for _, u := range []float64{0.5, 0.7, 0.9} {
		res, err := Table1PolicyComparison(Table1Setup{
			Seed:       seed,
			UtilTarget: u,
			Policies:   []Policy{PolicyGreedy, PolicyMIP},
		})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{Label: fmt.Sprintf("util=%g", u), Result: res})
	}
	return out, nil
}

// AblationSeason runs the Greedy-vs-MIP comparison in different seasons:
// winter (strong wind, weak solar), spring, and summer (strong solar,
// weaker wind). The multi-VB tradeoffs shift with the resource mix.
func AblationSeason(seed uint64) ([]AblationResult, error) {
	seasons := []struct {
		label string
		start time.Time
	}{
		{"winter (Jan)", time.Date(2020, 1, 10, 0, 0, 0, 0, time.UTC)},
		{"spring (May)", time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)},
		{"summer (Jul)", time.Date(2020, 7, 10, 0, 0, 0, 0, time.UTC)},
	}
	var out []AblationResult
	for _, season := range seasons {
		res, err := table1At(Table1Setup{
			Seed:     seed,
			Policies: []Policy{PolicyGreedy, PolicyMIP},
		}.withDefaults(), season.start)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{Label: season.label, Result: res})
	}
	return out, nil
}

// AblationForecastError contrasts the offline day-ahead archive (the
// paper's setting) with lead-dependent forecast degradation.
func AblationForecastError(seed uint64) ([]AblationResult, error) {
	var out []AblationResult
	for _, lead := range []bool{false, true} {
		label := "day-ahead archive"
		if lead {
			label = "lead-dependent"
		}
		res, err := Table1PolicyComparison(Table1Setup{
			Seed:                   seed,
			LeadDependentForecasts: lead,
			Policies:               []Policy{PolicyMIP},
		})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{Label: label, Result: res})
	}
	return out, nil
}

// AblationHorizon contrasts the rolling 24 h lookahead with the full-period
// horizon (the MIP vs MIP-24h axis) and the greedy baseline.
func AblationHorizon(seed uint64) ([]AblationResult, error) {
	res, err := Table1PolicyComparison(Table1Setup{
		Seed:     seed,
		Policies: []Policy{PolicyGreedy, PolicyMIP24h, PolicyMIP},
	})
	if err != nil {
		return nil, err
	}
	var out []AblationResult
	for _, row := range res.Rows {
		single := Table1Result{Rows: []Table1Row{row}, Transfers: map[Policy]Series{row.Policy: res.Transfers[row.Policy]}, Group: res.Group}
		out = append(out, AblationResult{Label: row.Policy.String(), Result: single})
	}
	return out, nil
}

// AblationGroupSize sweeps the multi-VB group size (the paper's k = 2..5):
// larger groups give the scheduler more complementary capacity (higher
// availability) at the cost of more inter-site traffic — the §3.1 tradeoff.
func AblationGroupSize(seed uint64) ([]AblationResult, error) {
	fleet := energy.EuropeanFleet(0)
	// Groups grown around the UK/BE corner: wind + solar mixes.
	groupsByK := map[int][]int{
		2: {1, 3},          // UK-wind + BE-solar
		3: {0, 1, 2},       // the paper's trio
		4: {1, 3, 4, 8},    // UK-wind + BE-solar + BE-wind + FR-wind
		5: {1, 3, 4, 6, 8}, // + DE-wind
	}
	var out []AblationResult
	for k := 2; k <= 5; k++ {
		group := make([]SiteConfig, 0, k)
		for _, idx := range groupsByK[k] {
			group = append(group, fleet[idx])
		}
		setup := Table1Setup{
			Seed:           seed,
			MaxSitesPerApp: k,
			Policies:       []Policy{PolicyMIP},
		}.withDefaults()
		in, _, err := buildGroupInput(setup, table1Start, group)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{
			Policy:         PolicyMIP,
			PlanStep:       Table1PlanStep,
			UtilTarget:     setup.UtilTarget,
			MaxSitesPerApp: k,
			Obs:            setup.Obs,
		}
		r, err := sim.Run(cfg, in)
		if err != nil {
			return nil, err
		}
		total, p99, peak, std, err := r.Summary()
		if err != nil {
			return nil, err
		}
		res := Table1Result{
			Rows: []Table1Row{{
				Policy: PolicyMIP, Total: total, P99: p99, Peak: peak, Std: std,
				ZeroFraction:          r.ZeroFraction(),
				PausedStableCoreSteps: r.PausedStableCoreSteps,
				MeanAvailability:      r.MeanAvailability(),
			}},
			Transfers: map[Policy]Series{PolicyMIP: r.Transfer},
			Group:     group,
		}
		out = append(out, AblationResult{Label: fmt.Sprintf("group k=%d", k), Result: res})
	}
	return out, nil
}
