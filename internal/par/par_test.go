package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		out, err := Map(context.Background(), 100, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []string {
		out, err := Map(context.Background(), 50, workers, func(i int) (string, error) {
			return fmt.Sprintf("task-%d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, w := range []int{2, 4, 16} {
		got := run(w)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: result %d differs: %q vs %q", w, i, got[i], serial[i])
			}
		}
	}
}

func TestForEachFirstError(t *testing.T) {
	errBoom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForEach(context.Background(), 1000, workers, func(i int) error {
			ran.Add(1)
			if i == 3 {
				return errBoom
			}
			return nil
		})
		if !errors.Is(err, errBoom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
		if n := ran.Load(); n == 1000 {
			t.Errorf("workers=%d: all %d tasks ran despite early error", workers, n)
		}
	}
}

func TestForEachLowestIndexedErrorWins(t *testing.T) {
	// Both tasks fail; the lower index's error must be reported regardless
	// of which finishes first.
	errLow, errHigh := errors.New("low"), errors.New("high")
	for trial := 0; trial < 20; trial++ {
		err := ForEach(context.Background(), 2, 2, func(i int) error {
			if i == 0 {
				time.Sleep(time.Millisecond)
				return errLow
			}
			return errHigh
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: err = %v, want low", trial, err)
		}
	}
}

func TestForEachContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEach(ctx, 100, 4, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n > 8 {
		t.Errorf("%d tasks ran after cancellation (worker-count-ish expected)", n)
	}
}

func TestForEachWorkerCap(t *testing.T) {
	var cur, peak atomic.Int64
	err := ForEach(context.Background(), 64, 3, func(i int) error {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("peak concurrency %d exceeds cap 3", p)
	}
}

func TestMapErrorDiscardsResults(t *testing.T) {
	out, err := Map(context.Background(), 10, 2, func(i int) (int, error) {
		if i == 5 {
			return 0, errors.New("mid")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if out != nil {
		t.Errorf("partial results returned on error: %v", out)
	}
}

func TestZeroAndNegativeN(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) error { return errors.New("no") }); err != nil {
		t.Errorf("n=0: %v", err)
	}
	out, err := Map(context.Background(), -3, 4, func(int) (int, error) { return 0, errors.New("no") })
	if err != nil || out != nil {
		t.Errorf("n=-3: %v %v", out, err)
	}
}

func TestSetDefault(t *testing.T) {
	defer SetDefault(0)
	SetDefault(5)
	if Default() != 5 {
		t.Errorf("Default() = %d, want 5", Default())
	}
	SetDefault(0)
	if Default() != runtime.GOMAXPROCS(0) {
		t.Errorf("Default() = %d, want GOMAXPROCS %d", Default(), runtime.GOMAXPROCS(0))
	}
	SetDefault(-1)
	if Default() != runtime.GOMAXPROCS(0) {
		t.Errorf("negative SetDefault should restore GOMAXPROCS")
	}
}
