package mip

import (
	"container/heap"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"github.com/vbcloud/vb/internal/lp"
)

// TestNodeQueuePopOrder pins the deterministic pop order of the best-first
// queue: strictly ascending bound, and ascending node id within a bound
// tie, no matter what order nodes were pushed in.
func TestNodeQueuePopOrder(t *testing.T) {
	nodes := []*node{
		{bound: 2.5, id: 9},
		{bound: 1.0, id: 4},
		{bound: 1.0, id: 2},
		{bound: 1.0, id: 7},
		{bound: 0.5, id: 11},
		{bound: 2.5, id: 1},
		{bound: 1.0, id: 3},
	}
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		q := &nodeQueue{}
		for _, i := range rng.Perm(len(nodes)) {
			heap.Push(q, nodes[i])
		}
		var got []int64
		for q.Len() > 0 {
			got = append(got, heap.Pop(q).(*node).id)
		}
		want := []int64{11, 2, 3, 4, 7, 1, 9}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: pop order %v, want %v", trial, got, want)
		}
	}

	// Same contract for the legacy reference queue.
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		q := &refQueue{}
		for _, i := range rng.Perm(len(nodes)) {
			n := nodes[i]
			heap.Push(q, &refNode{bound: n.bound, id: n.id})
		}
		var got []int64
		for q.Len() > 0 {
			got = append(got, heap.Pop(q).(*refNode).id)
		}
		want := []int64{11, 2, 3, 4, 7, 1, 9}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ref trial %d: pop order %v, want %v", trial, got, want)
		}
	}
}

// TestParallelDeterminism is the acceptance contract for parallel branch
// and bound: for any worker count >= 1 the Solution is bit-identical —
// same status, same objective bits, same X bits, same node and pivot
// counts — because node evaluation is a pure function of the node and
// results are consumed in deterministic (bound, id) order.
func TestParallelDeterminism(t *testing.T) {
	iters := 150
	if testing.Short() {
		iters = 30
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for s := 0; s < iters; s++ {
		rng := rand.New(rand.NewSource(int64(9_000_000 + s)))
		p := randomMIP(rng)
		var base Solution
		var baseErr error
		for wi, w := range workerCounts {
			got, err := Solve(p, Options{Workers: w})
			if wi == 0 {
				base, baseErr = got, err
				continue
			}
			if (err != nil) != (baseErr != nil) {
				t.Fatalf("seed %d: workers=%d error %v, workers=%d error %v", s, workerCounts[0], baseErr, w, err)
			}
			if err != nil {
				continue
			}
			if got.Status != base.Status || got.Proven != base.Proven ||
				got.Nodes != base.Nodes || got.Pivots != base.Pivots ||
				got.Refactors != base.Refactors {
				t.Fatalf("seed %d: workers=%d solution shape diverges from workers=1:\n%+v\nvs\n%+v", s, w, got, base)
			}
			if got.Objective != base.Objective {
				t.Fatalf("seed %d: workers=%d objective %v != %v (must be bit-identical)", s, w, got.Objective, base.Objective)
			}
			if len(got.X) != len(base.X) {
				t.Fatalf("seed %d: workers=%d len(X)=%d != %d", s, w, len(got.X), len(base.X))
			}
			for j := range got.X {
				if got.X[j] != base.X[j] {
					t.Fatalf("seed %d: workers=%d X[%d]=%v != %v (must be bit-identical)", s, w, j, got.X[j], base.X[j])
				}
			}
		}

		// The parallel result must also agree with the serial solver up to
		// alternate optima: same status, same proven objective.
		if baseErr != nil {
			continue
		}
		serial, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("seed %d: serial: %v", s, err)
		}
		if serial.Status != base.Status {
			t.Fatalf("seed %d: serial status %v, parallel %v", s, serial.Status, base.Status)
		}
		if serial.Status == lp.Optimal && serial.Proven && base.Proven {
			if math.Abs(serial.Objective-base.Objective) > 1e-6*(1+math.Abs(serial.Objective)) {
				t.Fatalf("seed %d: serial objective %.9g, parallel %.9g", s, serial.Objective, base.Objective)
			}
		}
	}
}

// TestParallelWarm checks that parallel search composes with warm state:
// the carried instance services the root solve and a follow-up identical
// solve still pops zero pivots at the root.
func TestParallelWarm(t *testing.T) {
	p := Problem{
		Problem: lp.Problem{
			NumVars:   3,
			Objective: []float64{5, 4, 3},
			Maximize:  true,
			Constraints: []lp.Constraint{
				{Coeffs: []float64{2, 3, 1}, Sense: lp.LE, RHS: 5},
				{Coeffs: []float64{4, 1, 2}, Sense: lp.LE, RHS: 11},
				{Coeffs: []float64{3, 4, 2}, Sense: lp.LE, RHS: 8},
			},
		},
		Integer: []bool{true, false, false},
	}
	warm := &WarmState{}
	first, err := Solve(p, Options{Warm: warm, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != lp.Optimal || first.WarmHit {
		t.Fatalf("first: status=%v warmHit=%v", first.Status, first.WarmHit)
	}
	second, err := Solve(p, Options{Warm: warm, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !second.WarmHit {
		t.Error("identical re-solve must hit the warm state")
	}
	if second.Objective != first.Objective {
		t.Errorf("warm objective %v != first %v", second.Objective, first.Objective)
	}

	// A dense-basis request must not reuse a sparse-basis warm instance.
	dense, err := Solve(p, Options{Warm: warm, DenseBasis: true})
	if err != nil {
		t.Fatal(err)
	}
	if dense.WarmHit {
		t.Error("dense-basis solve reused a sparse-basis warm state")
	}
	if math.Abs(dense.Objective-first.Objective) > 1e-9 {
		t.Errorf("dense objective %v != %v", dense.Objective, first.Objective)
	}
}
