package vb

import (
	"fmt"
	"time"

	"github.com/vbcloud/vb/internal/battery"
	"github.com/vbcloud/vb/internal/energy"
	"github.com/vbcloud/vb/internal/migration"
	"github.com/vbcloud/vb/internal/replication"
	"github.com/vbcloud/vb/internal/trace"
	"github.com/vbcloud/vb/internal/workload"
)

// Extension models beyond the paper's evaluation: the physical-battery
// alternative the paper argues against (§1), and the migration-latency and
// replication models the paper defers to future work (§3).
type (
	// BatteryConfig describes a chemical storage system.
	BatteryConfig = battery.Config
	// BatteryResult reports a battery firming simulation.
	BatteryResult = battery.Result
	// MigrationModel parameterizes pre-copy live migration.
	MigrationModel = migration.Model
	// MigrationResult describes one live migration.
	MigrationResult = migration.Result
	// ReplicationConfig describes a hot/cold standby.
	ReplicationConfig = replication.Config
	// ReplicationMode selects hot or cold standby.
	ReplicationMode = replication.Mode
)

// Replication modes.
const (
	HotStandby  = replication.Hot
	ColdStandby = replication.Cold
)

// SmoothWithBattery simulates a battery firming a generation series to a
// constant target (MW).
func SmoothWithBattery(cfg BatteryConfig, generation Series, targetMW float64) (BatteryResult, error) {
	return battery.Smooth(cfg, generation, targetMW)
}

// RequiredBatteryMWh returns the smallest sustainable battery that firms
// the generation to targetMW.
func RequiredBatteryMWh(generation Series, targetMW, powerMW, efficiency, maxUnservedMWh float64) (float64, error) {
	return battery.RequiredCapacityMWh(generation, targetMW, powerMW, efficiency, maxUnservedMWh)
}

// DefaultMigrationModel returns a typical pre-copy setup (0.1 GB/s dirty
// rate, 10 Gb/s flow).
func DefaultMigrationModel() MigrationModel { return migration.DefaultModel() }

// BatteryEquivalentResult quantifies the physical storage a multi-VB group
// substitutes for.
type BatteryEquivalentResult struct {
	// TargetMW is the firmed power level: the stable floor the three-site
	// group sustains in its complementary window.
	TargetMW float64
	// SingleSiteBatteryMWh is the storage needed to firm the *best single
	// site* to the same level.
	SingleSiteBatteryMWh float64
	// SingleSiteCostUSD is its capital cost at $300/kWh.
	SingleSiteCostUSD float64
	// GroupBatteryMWh is the (much smaller) storage the aggregated group
	// would still need for the same level plus a 20% margin.
	GroupBatteryMWh float64
}

// BatteryEquivalent runs the §1 comparison the paper makes qualitatively:
// multi-VB aggregation replaces most of the chemical storage a single site
// would need to offer the same guaranteed power.
func BatteryEquivalent(seed uint64) (BatteryEquivalentResult, error) {
	w := energy.NewWorld(seed)
	trio := energy.EuropeanTrio()
	year, err := w.GeneratePower(trio, experimentStart, time.Hour, 120*24)
	if err != nil {
		return BatteryEquivalentResult{}, err
	}
	sum, err := trace.Sum(year...)
	if err != nil {
		return BatteryEquivalentResult{}, err
	}
	// Target: a floor the group itself could nearly hold — its 10th
	// percentile output.
	q := sum.Clone()
	cdf, err := NewCDF(q.Values)
	if err != nil {
		return BatteryEquivalentResult{}, err
	}
	target := cdf.Quantile(0.10)
	if target <= 0 {
		return BatteryEquivalentResult{}, fmt.Errorf("vb: degenerate target %v", target)
	}

	// Best single site: highest mean output.
	best := 0
	for i := range year {
		if year[i].Mean() > year[best].Mean() {
			best = i
		}
	}
	allow := 0.02 * target * sum.Duration().Hours() // 2% unserved allowance
	single, err := battery.RequiredCapacityMWh(year[best], target, 400, 0.85, allow)
	if err != nil {
		return BatteryEquivalentResult{}, err
	}
	group, err := battery.RequiredCapacityMWh(sum, target, 1200, 0.85, allow)
	if err != nil {
		return BatteryEquivalentResult{}, err
	}
	return BatteryEquivalentResult{
		TargetMW:             target,
		SingleSiteBatteryMWh: single,
		SingleSiteCostUSD:    battery.CostUSD(single, 300),
		GroupBatteryMWh:      group,
	}, nil
}

// MigrationRealismResult applies the pre-copy model to the Table 1
// experiment: the paper estimates traffic by VM memory size; live
// migration re-sends dirtied pages (amplification) and pauses the VM
// (downtime).
type MigrationRealismResult struct {
	// Amplification is the bytes-sent over bytes-estimated factor for a
	// typical 4 GB/core application VM.
	Amplification float64
	// DowntimeSec is the stop-and-copy pause for a 32 GB VM.
	DowntimeSec float64
	// AdjustedGreedyTotalGB and AdjustedMIPTotalGB scale the Table 1
	// totals by the amplification.
	AdjustedGreedyTotalGB, AdjustedMIPTotalGB float64
}

// MigrationRealism combines the pre-copy model with Table 1.
func MigrationRealism(seed uint64) (MigrationRealismResult, error) {
	m := migration.DefaultModel()
	r, err := m.Migrate(32)
	if err != nil {
		return MigrationRealismResult{}, err
	}
	t1, err := Table1PolicyComparison(Table1Setup{Seed: seed, Policies: []Policy{PolicyGreedy, PolicyMIP}})
	if err != nil {
		return MigrationRealismResult{}, err
	}
	greedy, _ := t1.Row(PolicyGreedy)
	mip, _ := t1.Row(PolicyMIP)
	return MigrationRealismResult{
		Amplification:         r.Amplification,
		DowntimeSec:           r.DowntimeSec,
		AdjustedGreedyTotalGB: greedy.Total * r.Amplification,
		AdjustedMIPTotalGB:    mip.Total * r.Amplification,
	}, nil
}

// ReplicationVsMigrationResult compares the two §3 mechanisms for one
// representative application.
type ReplicationVsMigrationResult struct {
	// HotStandbyGB is a week of continuous replication for the app.
	HotStandbyGB float64
	// ColdStandbyGB is a week of hourly checkpoints.
	ColdStandbyGB float64
	// MigrationGB is the app's actual migration traffic under the MIP
	// policy in the Table 1 run (week total averaged per app).
	MigrationGB float64
	// BreakEvenMovesPerWeek is how often the app would need to migrate
	// before hot replication becomes cheaper.
	BreakEvenMovesPerWeek float64
}

// ReplicationVsMigration quantifies §3's mechanism choice using the
// Table 1 app mix (a ~200-core app with 4 GB/core, moderately dirtying).
func ReplicationVsMigration(seed uint64) (ReplicationVsMigrationResult, error) {
	const (
		appMemGB  = 800 // ~200 cores x 4 GB
		dirtyGBps = 0.02
	)
	week := 7 * 24 * time.Hour
	hot := replication.Config{Mode: replication.Hot, MemGB: appMemGB, DirtyRateGBps: dirtyGBps}
	cold := replication.Config{Mode: replication.Cold, MemGB: appMemGB, DirtyRateGBps: dirtyGBps, CheckpointInterval: time.Hour}
	hotGB, err := hot.TrafficGB(week)
	if err != nil {
		return ReplicationVsMigrationResult{}, err
	}
	coldGB, err := cold.TrafficGB(week)
	if err != nil {
		return ReplicationVsMigrationResult{}, err
	}
	t1, err := Table1PolicyComparison(Table1Setup{Seed: seed, Policies: []Policy{PolicyMIP}})
	if err != nil {
		return ReplicationVsMigrationResult{}, err
	}
	mip, _ := t1.Row(PolicyMIP)
	// Average migration traffic per app over the week.
	apps := 0
	{
		in, _, err := buildTable1Input(Table1Setup{Seed: seed}.withDefaults(), table1Start)
		if err != nil {
			return ReplicationVsMigrationResult{}, err
		}
		apps = len(in.Apps)
	}
	perApp := mip.Total / float64(apps)
	breakEven, err := hot.BreakEvenMoves(week, appMemGB*1.1)
	if err != nil {
		return ReplicationVsMigrationResult{}, err
	}
	return ReplicationVsMigrationResult{
		HotStandbyGB:          hotGB,
		ColdStandbyGB:         coldGB,
		MigrationGB:           perApp,
		BreakEvenMovesPerWeek: breakEven,
	}, nil
}

// FidelityResult compares the fluid (core-granularity) engine with the
// VM-level engine on the Table 1 scenario.
type FidelityResult struct {
	// FluidGB and VMLevelGB are total migration traffic per engine.
	FluidGB, VMLevelGB map[Policy]float64
	// Moves counts VM-level inter-site migrations per policy.
	Moves map[Policy]int
	// Fragmentation is the mean packing fragmentation per policy.
	Fragmentation map[Policy]float64
}

// Fidelity runs Greedy and MIP through both engines, validating that the
// scheduler's fluid model survives contact with discrete VMs and server
// packing.
func Fidelity(seed uint64) (FidelityResult, error) {
	s := Table1Setup{Seed: seed}.withDefaults()
	in, _, err := buildTable1Input(s, table1Start)
	if err != nil {
		return FidelityResult{}, err
	}
	apps, err := workload.GenerateApps(workload.AppConfig{
		Seed:           s.Seed + 1,
		Start:          table1Start,
		Duration:       time.Duration(s.Days) * 24 * time.Hour,
		MeanAppsPerDay: s.AppsPerDay,
		MeanVMsPerApp:  s.MeanVMsPerApp,
		StableFraction: 0.7,
	})
	if err != nil {
		return FidelityResult{}, err
	}
	res := FidelityResult{
		FluidGB:       map[Policy]float64{},
		VMLevelGB:     map[Policy]float64{},
		Moves:         map[Policy]int{},
		Fragmentation: map[Policy]float64{},
	}
	for _, pol := range []Policy{PolicyGreedy, PolicyMIP} {
		cfg := SchedulerConfig{Policy: pol, PlanStep: Table1PlanStep, UtilTarget: s.UtilTarget, MaxSitesPerApp: s.MaxSitesPerApp}
		fluid, err := RunPolicy(cfg, in)
		if err != nil {
			return FidelityResult{}, err
		}
		vmres, err := RunPolicyVMLevel(cfg, in, apps, DefaultClusterConfig())
		if err != nil {
			return FidelityResult{}, err
		}
		res.FluidGB[pol] = fluid.Transfer.Total()
		res.VMLevelGB[pol] = vmres.Transfer.Total()
		res.Moves[pol] = vmres.Moves
		res.Fragmentation[pol] = vmres.Fragmentation
	}
	return res, nil
}
