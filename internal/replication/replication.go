// Package replication models hot/cold standby replication — the other
// mechanism §3 names for running applications across multiple VB sites
// ("such applications must rely on either hot/cold standbys using
// continuous replication or migration"). It quantifies the trade the
// scheduler navigates: continuous replication pays steady WAN bandwidth
// all the time but fails over instantly; migration pays bursty traffic
// only when power forces a move.
package replication

import (
	"fmt"
	"math"
	"time"
)

// Mode selects a standby strategy.
type Mode int

// Standby modes.
const (
	// Hot keeps a continuously synchronized replica: steady dirty-page
	// stream, near-zero failover time.
	Hot Mode = iota
	// Cold keeps a periodic checkpoint: bursts every interval, failover
	// loses the work since the last checkpoint and must restore.
	Cold
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Hot {
		return "hot"
	}
	return "cold"
}

// Config describes a replicated application.
type Config struct {
	Mode Mode
	// MemGB is the working-set size replicated.
	MemGB float64
	// DirtyRateGBps is the rate the primary dirties state.
	DirtyRateGBps float64
	// CheckpointInterval applies to Cold mode (zero selects 1 h).
	CheckpointInterval time.Duration
	// Replicas is the number of standby copies (zero selects 1).
	Replicas int
}

func (c Config) interval() time.Duration {
	if c.CheckpointInterval <= 0 {
		return time.Hour
	}
	return c.CheckpointInterval
}

func (c Config) replicas() int {
	if c.Replicas <= 0 {
		return 1
	}
	return c.Replicas
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Mode != Hot && c.Mode != Cold {
		return fmt.Errorf("replication: unknown mode %d", int(c.Mode))
	}
	if c.MemGB <= 0 {
		return fmt.Errorf("replication: non-positive memory %v", c.MemGB)
	}
	if c.DirtyRateGBps < 0 {
		return fmt.Errorf("replication: negative dirty rate %v", c.DirtyRateGBps)
	}
	if c.Replicas < 0 {
		return fmt.Errorf("replication: negative replica count %d", c.Replicas)
	}
	return nil
}

// TrafficGB returns the WAN bytes replication sends over the given period:
// hot mode streams every dirtied byte to every replica; cold mode ships the
// *unique* dirty set each checkpoint interval (overlapping writes to the
// same page coalesce, so the set saturates at M*(1-exp(-D*t/M)) for memory
// M and dirty rate D), plus the initial seed copy.
func (c Config) TrafficGB(period time.Duration) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if period <= 0 {
		return 0, fmt.Errorf("replication: non-positive period %v", period)
	}
	n := float64(c.replicas())
	switch c.Mode {
	case Hot:
		return n * (c.MemGB + c.DirtyRateGBps*period.Seconds()), nil
	default:
		dirtied := c.DirtyRateGBps * c.interval().Seconds()
		perCheckpoint := c.MemGB * (1 - math.Exp(-dirtied/c.MemGB))
		checkpoints := float64(period / c.interval())
		return n * (c.MemGB + perCheckpoint*checkpoints), nil
	}
}

// FailoverLoss returns the work window lost when the primary site dies:
// zero for hot standby, up to a full checkpoint interval for cold.
func (c Config) FailoverLoss() time.Duration {
	if c.Mode == Hot {
		return 0
	}
	return c.interval()
}

// BreakEvenMoves returns how many migrations of the same application over
// the period cost as much WAN traffic as keeping the standby, given the
// per-move bytes (memory x amplification). Fewer actual moves than this
// favors migration; more favors replication.
func (c Config) BreakEvenMoves(period time.Duration, perMoveGB float64) (float64, error) {
	if perMoveGB <= 0 {
		return 0, fmt.Errorf("replication: non-positive per-move traffic %v", perMoveGB)
	}
	repl, err := c.TrafficGB(period)
	if err != nil {
		return 0, err
	}
	return repl / perMoveGB, nil
}
