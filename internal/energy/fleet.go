package energy

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/vbcloud/vb/internal/stats"
	"github.com/vbcloud/vb/internal/trace"
)

// Split is the decomposition of produced energy into a guaranteed (stable)
// part and a leftover (variable) part, per §2.3: over each window, the
// minimum power level times the window length is energy that is certain to
// be available and can back stable VMs; everything above it is variable and
// suits degradable VMs (spot/harvest).
type Split struct {
	// StableMWh is the guaranteed energy across all windows.
	StableMWh float64
	// VariableMWh is the remaining produced energy.
	VariableMWh float64
}

// TotalMWh returns stable + variable energy.
func (s Split) TotalMWh() float64 { return s.StableMWh + s.VariableMWh }

// StableFraction returns the stable share of total energy (0 when no energy
// was produced).
func (s Split) StableFraction() float64 {
	t := s.TotalMWh()
	if t == 0 {
		return 0
	}
	return s.StableMWh / t
}

// StableVariableSplit decomposes a power series (MW) into stable and
// variable energy using the given guarantee window (the paper uses the full
// 3-day interval as one window in Fig 3b; shorter windows give a
// finer-grained guarantee).
func StableVariableSplit(power trace.Series, window time.Duration) (Split, error) {
	mins, err := power.WindowMin(window)
	if err != nil {
		return Split{}, err
	}
	stable := mins.Total() * window.Hours()
	total := power.Energy()
	return Split{StableMWh: stable, VariableMWh: total - stable}, nil
}

// ComboResult reports the variability and stable-energy outcome of
// aggregating a set of sites.
type ComboResult struct {
	// Names of the aggregated sites.
	Names []string
	// CoV is the coefficient of variation of the summed power.
	CoV float64
	// Split is the stable/variable decomposition of the summed power.
	Split Split
}

// Aggregate sums the given power series and evaluates the combination.
func Aggregate(names []string, powers []trace.Series, window time.Duration) (ComboResult, error) {
	if len(names) != len(powers) {
		return ComboResult{}, fmt.Errorf("energy: %d names for %d series", len(names), len(powers))
	}
	sum, err := trace.Sum(powers...)
	if err != nil {
		return ComboResult{}, err
	}
	split, err := StableVariableSplit(sum, window)
	if err != nil {
		return ComboResult{}, err
	}
	return ComboResult{
		Names: append([]string(nil), names...),
		CoV:   stats.CoV(sum.Values),
		Split: split,
	}, nil
}

// Combinations evaluates every non-empty subset of the sites (intended for
// small fleets like the paper's NO/UK/PT trio) and returns results ordered
// by subset size then name. This regenerates Fig 3b.
func Combinations(names []string, powers []trace.Series, window time.Duration) ([]ComboResult, error) {
	if len(names) != len(powers) {
		return nil, fmt.Errorf("energy: %d names for %d series", len(names), len(powers))
	}
	if len(names) > 16 {
		return nil, fmt.Errorf("energy: too many sites for exhaustive combinations: %d", len(names))
	}
	var out []ComboResult
	for mask := 1; mask < 1<<len(names); mask++ {
		var ns []string
		var ps []trace.Series
		for i := range names {
			if mask&(1<<i) != 0 {
				ns = append(ns, names[i])
				ps = append(ps, powers[i])
			}
		}
		r, err := Aggregate(ns, ps, window)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Names) != len(out[j].Names) {
			return len(out[i].Names) < len(out[j].Names)
		}
		return fmt.Sprint(out[i].Names) < fmt.Sprint(out[j].Names)
	})
	return out, nil
}

// PairImprovement reports, for every unordered pair of sites, how much
// aggregation reduces variability. The baseline is the higher (worse) of the
// two individual covs — the variability improvement seen by the operator of
// the more volatile site when a complementary partner is added — and the
// improvement is baseline/pairCoV. The paper's §2.3 claim is that >52% of
// 2-site combinations improve cov by >50% (improvement factor >= 2).
type PairImprovement struct {
	A, B string
	// BaselineCoV is the higher of the two individual covs.
	BaselineCoV float64
	// PairCoV is the cov of the summed power.
	PairCoV float64
}

// Improvement returns BaselineCoV / PairCoV (higher is better).
func (p PairImprovement) Improvement() float64 {
	if p.PairCoV == 0 {
		return math.Inf(1)
	}
	return p.BaselineCoV / p.PairCoV
}

// AllPairs evaluates every unordered pair of sites.
func AllPairs(names []string, powers []trace.Series) ([]PairImprovement, error) {
	if len(names) != len(powers) {
		return nil, fmt.Errorf("energy: %d names for %d series", len(names), len(powers))
	}
	var out []PairImprovement
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			sum, err := trace.Add(powers[i], powers[j])
			if err != nil {
				return nil, err
			}
			ci := stats.CoV(powers[i].Values)
			cj := stats.CoV(powers[j].Values)
			out = append(out, PairImprovement{
				A:           names[i],
				B:           names[j],
				BaselineCoV: math.Max(ci, cj),
				PairCoV:     stats.CoV(sum.Values),
			})
		}
	}
	return out, nil
}

// FractionImproved returns the fraction of pairs whose combined cov beats
// the best single-site cov by at least the given factor (e.g. factor 2 means
// "improved cov by > 50%", the paper's phrasing).
func FractionImproved(pairs []PairImprovement, factor float64) float64 {
	if len(pairs) == 0 {
		return 0
	}
	n := 0
	for _, p := range pairs {
		if p.Improvement() >= factor {
			n++
		}
	}
	return float64(n) / float64(len(pairs))
}

// BestWindow slides a window of the given length over the summed power of a
// site combination and returns the start index (in samples) of the window
// with the highest stable-energy fraction, together with that fraction. This
// mirrors the paper's methodology of *searching* for complementary groups of
// sites over 3-day intervals (§2.3): the showcase in Fig 3 is the best such
// window, not an average one.
func BestWindow(powers []trace.Series, window time.Duration) (int, float64, error) {
	sum, err := trace.Sum(powers...)
	if err != nil {
		return 0, 0, err
	}
	k := int(window / sum.Step)
	if k <= 0 || k > sum.Len() {
		return 0, 0, trace.ErrBadWindow
	}
	bestIdx, bestFrac := 0, -1.0
	// Slide in quarter-window hops: enough resolution to find the showcase
	// window without quadratic cost.
	hop := k / 4
	if hop == 0 {
		hop = 1
	}
	consider := func(i int) error {
		w := sum.Slice(i, i+k)
		split, err := StableVariableSplit(w, window)
		if err != nil {
			return err
		}
		if f := split.StableFraction(); f > bestFrac {
			bestFrac, bestIdx = f, i
		}
		return nil
	}
	last := sum.Len() - k
	for i := 0; i <= last; i += hop {
		if err := consider(i); err != nil {
			return 0, 0, err
		}
	}
	// When the series length is not hop-aligned the stride stops short of
	// the final valid start; evaluate it explicitly so the trailing samples
	// are never excluded from the search.
	if last%hop != 0 {
		if err := consider(last); err != nil {
			return 0, 0, err
		}
	}
	return bestIdx, bestFrac, nil
}

// TopUp is the result of purchasing a limited amount of reliable grid energy
// to raise the guaranteed power floor of a multi-VB combination (§2.3,
// "Would using a small reliable energy source alongside help?").
type TopUp struct {
	// FloorMW is the new guaranteed power level.
	FloorMW float64
	// PurchasedMWh is the grid energy bought to fill gaps below the floor.
	PurchasedMWh float64
	// StabilizedMWh is previously-variable produced energy that the floor
	// raise converts into stable energy.
	StabilizedMWh float64
	// AddedStableMWh is the total gain in stable energy
	// (purchased + stabilized).
	AddedStableMWh float64
}

// PlanTopUp finds the highest power floor sustainable by purchasing at most
// budgetMWh of grid energy over the series, via binary search on the floor.
// Raising the floor from min(power) to F costs sum(max(0, F-p(t)))*dt
// purchased energy and stabilizes the produced energy between the old and
// new floors.
func PlanTopUp(power trace.Series, budgetMWh float64) (TopUp, error) {
	if power.IsEmpty() {
		return TopUp{}, trace.ErrEmptySeries
	}
	if budgetMWh < 0 {
		return TopUp{}, fmt.Errorf("energy: negative budget %v", budgetMWh)
	}
	dt := power.Step.Hours()
	cost := func(floor float64) float64 {
		var mwh float64
		for _, p := range power.Values {
			if p < floor {
				mwh += (floor - p) * dt
			}
		}
		return mwh
	}
	lo, hi := power.Min(), power.Max()
	// The budget may be enough to exceed even the maximum: extend hi until
	// unaffordable, then binary search.
	for cost(hi) <= budgetMWh {
		if hi == 0 {
			hi = 1
		}
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if cost(mid) <= budgetMWh {
			lo = mid
		} else {
			hi = mid
		}
	}
	floor := lo
	purchased := cost(floor)
	oldFloor := power.Min()
	hours := power.Duration().Hours()
	addedStable := (floor - oldFloor) * hours
	return TopUp{
		FloorMW:        floor,
		PurchasedMWh:   purchased,
		StabilizedMWh:  addedStable - purchased,
		AddedStableMWh: addedStable,
	}, nil
}

// EuropeanTrio returns site configurations mirroring the paper's Fig 3
// example: Norwegian solar complemented by UK and Portuguese wind, each with
// the default 400 MW capacity.
func EuropeanTrio() []SiteConfig {
	return []SiteConfig{
		{Name: "NO-solar", Source: Solar, Latitude: 59.9, Longitude: 10.7, CapacityMW: DefaultCapacityMW},
		{Name: "UK-wind", Source: Wind, Latitude: 53.5, Longitude: -1.5, CapacityMW: DefaultCapacityMW},
		{Name: "PT-wind", Source: Wind, Latitude: 39.5, Longitude: -8.0, CapacityMW: DefaultCapacityMW},
	}
}

// EuropeanFleet returns a larger mixed solar/wind fleet spread across
// Europe, standing in for the EMHIRES multi-site dataset. n is clamped to
// the available template list (currently 12 sites).
func EuropeanFleet(n int) []SiteConfig {
	templates := []SiteConfig{
		{Name: "NO-solar", Source: Solar, Latitude: 59.9, Longitude: 10.7},
		{Name: "UK-wind", Source: Wind, Latitude: 53.5, Longitude: -1.5},
		{Name: "PT-wind", Source: Wind, Latitude: 39.5, Longitude: -8.0},
		{Name: "BE-solar", Source: Solar, Latitude: 50.8, Longitude: 4.4},
		{Name: "BE-wind", Source: Wind, Latitude: 51.2, Longitude: 2.9},
		{Name: "DE-solar", Source: Solar, Latitude: 48.1, Longitude: 11.6},
		{Name: "DE-wind", Source: Wind, Latitude: 54.3, Longitude: 8.6},
		{Name: "ES-solar", Source: Solar, Latitude: 37.4, Longitude: -5.9},
		{Name: "FR-wind", Source: Wind, Latitude: 48.6, Longitude: -4.3},
		{Name: "IT-solar", Source: Solar, Latitude: 41.9, Longitude: 12.5},
		{Name: "DK-wind", Source: Wind, Latitude: 56.0, Longitude: 9.0},
		{Name: "GR-solar", Source: Solar, Latitude: 37.9, Longitude: 23.7},
	}
	if n <= 0 || n > len(templates) {
		n = len(templates)
	}
	out := make([]SiteConfig, n)
	copy(out, templates[:n])
	for i := range out {
		out[i].CapacityMW = DefaultCapacityMW
	}
	return out
}
