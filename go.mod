module github.com/vbcloud/vb

go 1.24
