package graph

import (
	"fmt"
	"sort"
)

// The paper notes that identifying dense subgraphs "has been a well-studied
// problem in literature with tractable approximate solutions" (citing
// densest k-subgraph work). Exhaustive k-clique enumeration works for small
// fleets; the peeling routines below scale to large ones.

// DensestSubgraph returns the vertex set maximizing average degree density
// (edges over vertices) using Charikar's greedy peeling, a 2-approximation:
// repeatedly remove the minimum-degree vertex and keep the best prefix.
func (g *Graph) DensestSubgraph() ([]int, float64) {
	n := len(g.sites)
	deg := make([]int, n)
	alive := make([]bool, n)
	edges := 0
	for i := 0; i < n; i++ {
		alive[i] = true
		deg[i] = g.Degree(i)
		edges += deg[i]
	}
	edges /= 2

	type snapshot struct {
		removed int // vertex removed at this step (-1 for initial)
	}
	order := make([]snapshot, 0, n)
	bestDensity := density(edges, n)
	bestStep := 0 // number of removals in the best prefix

	curEdges, curN := edges, n
	for step := 1; step <= n; step++ {
		// Find minimum-degree alive vertex.
		min := -1
		for v := 0; v < n; v++ {
			if alive[v] && (min < 0 || deg[v] < deg[min]) {
				min = v
			}
		}
		if min < 0 {
			break
		}
		alive[min] = false
		curEdges -= deg[min]
		curN--
		for u := 0; u < n; u++ {
			if alive[u] && g.adj[min][u] {
				deg[u]--
			}
		}
		order = append(order, snapshot{removed: min})
		if d := density(curEdges, curN); d > bestDensity {
			bestDensity = d
			bestStep = step
		}
	}

	// Reconstruct the best prefix: all vertices minus the first bestStep
	// removals.
	removed := make(map[int]bool, bestStep)
	for i := 0; i < bestStep; i++ {
		removed[order[i].removed] = true
	}
	var out []int
	for v := 0; v < n; v++ {
		if !removed[v] {
			out = append(out, v)
		}
	}
	return out, bestDensity
}

func density(edges, vertices int) float64 {
	if vertices == 0 {
		return 0
	}
	return float64(edges) / float64(vertices)
}

// DenseGroup greedily extracts a well-connected group of exactly k sites:
// peel minimum-degree vertices until k remain. This is the tractable
// approximation the paper alludes to for subgraph identification on large
// fleets, where enumerating all k-cliques is too expensive. The returned
// group is sorted; an error is returned when k is out of range.
func (g *Graph) DenseGroup(k int) ([]int, error) {
	n := len(g.sites)
	if k < 1 || k > n {
		return nil, fmt.Errorf("graph: dense group size %d outside [1, %d]", k, n)
	}
	deg := make([]int, n)
	alive := make([]bool, n)
	for i := 0; i < n; i++ {
		alive[i] = true
		deg[i] = g.Degree(i)
	}
	for remaining := n; remaining > k; remaining-- {
		min := -1
		for v := 0; v < n; v++ {
			if alive[v] && (min < 0 || deg[v] < deg[min]) {
				min = v
			}
		}
		alive[min] = false
		for u := 0; u < n; u++ {
			if alive[u] && g.adj[min][u] {
				deg[u]--
			}
		}
	}
	var out []int
	for v := 0; v < n; v++ {
		if alive[v] {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out, nil
}

// IsClique reports whether the given vertex set is fully connected.
func (g *Graph) IsClique(nodes []int) bool {
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if !g.Connected(nodes[i], nodes[j]) {
				return false
			}
		}
	}
	return true
}
