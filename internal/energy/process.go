package energy

import (
	"math"
	"math/rand/v2"
)

// ouProcess is a standardized Ornstein–Uhlenbeck process: mean 0, stationary
// variance 1, mean-reversion time constant tau (in steps). It is the building
// block for both the synoptic wind driver and intra-day cloud fluctuation.
type ouProcess struct {
	tau   float64 // mean reversion time constant, in steps
	state float64
	rng   *rand.Rand
}

// newOU returns an OU process started from its stationary distribution.
func newOU(tau float64, rng *rand.Rand) *ouProcess {
	return &ouProcess{tau: tau, state: rng.NormFloat64(), rng: rng}
}

// step advances one time step and returns the new state. The exact discrete
// transition keeps the process stationary at variance 1 regardless of tau.
func (p *ouProcess) step() float64 {
	a := math.Exp(-1 / p.tau)
	p.state = a*p.state + math.Sqrt(1-a*a)*p.rng.NormFloat64()
	return p.state
}

// regime indexes the paper's three observed solar day types (§2.2, Fig 2a).
type regime int

const (
	regimeSunny regime = iota
	regimeVariable
	regimeOvercast
)

// String implements fmt.Stringer for diagnostics.
func (r regime) String() string {
	switch r {
	case regimeSunny:
		return "sunny"
	case regimeVariable:
		return "variable"
	default:
		return "overcast"
	}
}

// classifyRegime maps a standard-normal daily cloudiness latent to a day
// type. The thresholds put roughly 42% of days sunny, 33% variable and 25%
// overcast; persistence comes from the slow OU process driving the latent,
// so weather systems last a few days as in the ELIA sample the paper plots.
func classifyRegime(z float64) regime {
	switch {
	case z < -0.2:
		return regimeSunny
	case z < 0.67:
		return regimeVariable
	default:
		return regimeOvercast
	}
}

// mix blends a regional driver r with local noise l using weight a in [0,1]:
// the result keeps unit variance when both inputs have unit variance and are
// independent.
func mix(a, r, l float64) float64 {
	return a*r + math.Sqrt(1-a*a)*l
}

// corrWeight converts a distance (km) into a correlation weight using an
// exponential decay with the given length scale (km).
func corrWeight(distKM, scaleKM float64) float64 {
	if scaleKM <= 0 {
		return 0
	}
	return math.Exp(-distKM / scaleKM)
}

// logistic maps x through a logistic squash to (0, 1) with the given center
// and steepness.
func logistic(x, center, steep float64) float64 {
	return 1 / (1 + math.Exp(-steep*(x-center)))
}
