package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestVMCSVRoundTrip(t *testing.T) {
	vms, err := Generate(Config{
		Seed:                5,
		Start:               start,
		Duration:            24 * time.Hour,
		MeanArrivalsPerHour: 10,
		StableFraction:      0.6,
		LongRunningFraction: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, vms); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vms) {
		t.Fatalf("round trip %d VMs, want %d", len(got), len(vms))
	}
	for i := range vms {
		want := vms[i]
		// Arrival survives at full nanosecond precision (RFC3339Nano);
		// only the lifetime is quantized, by the lifetime_s column.
		want.Lifetime = want.Lifetime.Truncate(time.Second)
		g := got[i]
		if g.ID != want.ID || g.Cores != want.Cores || g.MemoryGB != want.MemoryGB ||
			g.Class != want.Class || !g.Arrival.Equal(want.Arrival) ||
			g.Lifetime != want.Lifetime || g.AppID != want.AppID {
			t.Fatalf("VM %d: got %+v, want %+v", i, g, want)
		}
	}
}

// TestVMCSVWriteReadWriteByteIdentity pins the round-trip fidelity fix:
// writing a generated trace, reading it back, and writing it again must
// produce byte-identical CSV. Before WriteCSV switched to RFC3339Nano the
// first write truncated sub-second arrivals, so the second write differed
// from a write of the original trace.
func TestVMCSVWriteReadWriteByteIdentity(t *testing.T) {
	vms, err := Generate(Config{
		Seed:                9,
		Start:               start,
		Duration:            12 * time.Hour,
		MeanArrivalsPerHour: 40,
		StableFraction:      0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := WriteCSV(&first, vms); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteCSV(&second, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("write→read→write is not byte-identical")
	}
	// And the trace must carry at least one sub-second arrival, or the
	// assertion above proves nothing.
	subSecond := false
	for _, v := range vms {
		if v.Arrival.Nanosecond() != 0 {
			subSecond = true
			break
		}
	}
	if !subSecond {
		t.Error("fixture has no sub-second arrivals; raise the rate")
	}
}

// TestReadCSVLegacyFormat pins backward compatibility: traces written by
// the pre-Nano WriteCSV (plain RFC3339, second precision, two classes)
// still load, and the new class names parse alongside them.
func TestReadCSVLegacyFormat(t *testing.T) {
	const legacy = "id,cores,memory_gb,class,arrival,lifetime_s,app_id\n" +
		"1,2,4,stable,2020-05-01T00:07:46Z,3600,0\n" +
		"2,8,16,degradable,2020-05-01T01:00:00Z,0,3\n" +
		"3,4,8,realtime,2020-05-01T02:00:00.25Z,60,3\n" +
		"4,1,2,interactive,2020-05-01T03:00:00Z,60,4\n" +
		"5,1,4,batch,2020-05-01T04:00:00Z,60,4\n"
	vms, err := ReadCSV(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	wantClasses := []Class{Stable, Degradable, RealTime, Interactive, Batch}
	if len(vms) != len(wantClasses) {
		t.Fatalf("parsed %d VMs, want %d", len(vms), len(wantClasses))
	}
	for i, c := range wantClasses {
		if vms[i].Class != c {
			t.Errorf("VM %d class %v, want %v", i, vms[i].Class, c)
		}
	}
	if got, want := vms[0].Arrival, time.Date(2020, 5, 1, 0, 7, 46, 0, time.UTC); !got.Equal(want) {
		t.Errorf("legacy arrival parsed as %v, want %v", got, want)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"id,cores\n",
		"x,cores,memory_gb,class,arrival,lifetime_s,app_id\n",
		"id,cores,memory_gb,class,arrival,lifetime_s,app_id\nx,1,1,stable,2020-01-01T00:00:00Z,0,0\n",
		"id,cores,memory_gb,class,arrival,lifetime_s,app_id\n1,0,1,stable,2020-01-01T00:00:00Z,0,0\n",
		"id,cores,memory_gb,class,arrival,lifetime_s,app_id\n1,1,0,stable,2020-01-01T00:00:00Z,0,0\n",
		"id,cores,memory_gb,class,arrival,lifetime_s,app_id\n1,1,1,spot,2020-01-01T00:00:00Z,0,0\n",
		"id,cores,memory_gb,class,arrival,lifetime_s,app_id\n1,1,1,stable,yesterday,0,0\n",
		"id,cores,memory_gb,class,arrival,lifetime_s,app_id\n1,1,1,stable,2020-01-01T00:00:00Z,-5,0\n",
		"id,cores,memory_gb,class,arrival,lifetime_s,app_id\n1,1,1,stable,2020-01-01T00:00:00Z,0,x\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestReadCSVEmptyTrace(t *testing.T) {
	// A header-only file is a valid empty trace.
	got, err := ReadCSV(strings.NewReader("id,cores,memory_gb,class,arrival,lifetime_s,app_id\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty trace parsed %d VMs", len(got))
	}
}

// TestReadCSVZeroLifetimeImmortal pins the lifetime_s = 0 convention:
// a zero lifetime parses successfully and means "runs until the end of
// the simulation" (End() is the zero time), not "lives zero seconds".
func TestReadCSVZeroLifetimeImmortal(t *testing.T) {
	const in = "id,cores,memory_gb,class,arrival,lifetime_s,app_id\n" +
		"1,2,4,stable,2020-05-01T00:00:00Z,0,7\n" +
		"2,1,2,degradable,2020-05-01T01:00:00Z,3600,7\n"
	vms, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(vms) != 2 {
		t.Fatalf("parsed %d VMs, want 2", len(vms))
	}
	if vms[0].Lifetime != 0 {
		t.Errorf("lifetime_s=0 parsed as %v, want 0", vms[0].Lifetime)
	}
	if !vms[0].End().IsZero() {
		t.Errorf("immortal VM End() = %v, want zero time", vms[0].End())
	}
	if vms[1].End().IsZero() {
		t.Error("finite-lifetime VM End() should not be zero")
	}
	if got, want := vms[1].End(), vms[1].Arrival.Add(time.Hour); !got.Equal(want) {
		t.Errorf("End() = %v, want %v", got, want)
	}
	// The convention round-trips through WriteCSV.
	var sb strings.Builder
	if err := WriteCSV(&sb, vms); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back[0].Lifetime != 0 || !back[0].End().IsZero() {
		t.Errorf("round-trip broke the immortal convention: %+v", back[0])
	}
}
