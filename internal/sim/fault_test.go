package sim

import (
	"bytes"
	"testing"

	"github.com/vbcloud/vb/internal/cluster"
	"github.com/vbcloud/vb/internal/core"
	"github.com/vbcloud/vb/internal/fault"
	"github.com/vbcloud/vb/internal/obs"
)

func mustInjector(t *testing.T, s *fault.Script, sites, steps int) *fault.Injector {
	t.Helper()
	inj, err := fault.NewInjector(s, sites, steps)
	if err != nil {
		t.Fatal(err)
	}
	if inj == nil {
		t.Fatal("non-empty script compiled to nil injector")
	}
	return inj
}

// requireSameRun asserts two results are bit-identical in every decision-
// bearing field — the fault machinery's zero-effect identity contract.
func requireSameRun(t *testing.T, want, got Result) {
	t.Helper()
	for i := range want.Transfer.Values {
		if want.Transfer.Values[i] != got.Transfer.Values[i] {
			t.Fatalf("transfer[%d]: %v != %v", i, want.Transfer.Values[i], got.Transfer.Values[i])
		}
	}
	if want.PlannedGB != got.PlannedGB || want.ForcedGB != got.ForcedGB {
		t.Fatalf("planned/forced split differs: (%v,%v) != (%v,%v)",
			want.PlannedGB, want.ForcedGB, got.PlannedGB, got.ForcedGB)
	}
	if want.PausedStableCoreSteps != got.PausedStableCoreSteps {
		t.Fatalf("paused core-steps differ: %v != %v", want.PausedStableCoreSteps, got.PausedStableCoreSteps)
	}
	if want.ShortfallCoreSteps != got.ShortfallCoreSteps {
		t.Fatalf("shortfall core-steps differ: %v != %v", want.ShortfallCoreSteps, got.ShortfallCoreSteps)
	}
}

// TestZeroFaultRunReproducesSeed pins the golden-parity acceptance
// criterion: faults disabled (nil injector, which is what an empty script
// compiles to) and faults present-but-inert (slowdown factor 1, WAN budget
// far above any step's traffic) both reproduce the seed run bit-for-bit.
func TestZeroFaultRunReproducesSeed(t *testing.T) {
	in := trioInput(t, 3, 4)
	steps := in.Actual[0].Len()
	seed, err := Run(simConfig(core.MIP), in)
	if err != nil {
		t.Fatal(err)
	}

	// An empty script is the no-fault identity: it compiles to nil.
	if inj, err := fault.NewInjector(&fault.Script{}, len(in.Actual), steps); err != nil || inj != nil {
		t.Fatalf("empty script: injector=%v err=%v, want nil/nil", inj, err)
	}

	// Inert faults exercise every fault hook (cap factor, forecast factor,
	// solver derate, WAN clamp) with values that must be exact identities.
	inert := &fault.Script{Events: []fault.Event{
		{Kind: fault.SolverSlowdown, Site: -1, Start: 0, End: steps, Severity: 1},
		{Kind: fault.WANDegraded, Site: -1, Peer: -1, Start: 0, End: steps, Severity: 1e12},
	}}
	faulted := in
	faulted.Faults = mustInjector(t, inert, len(in.Actual), steps)
	got, err := Run(simConfig(core.MIP), faulted)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRun(t, seed, got)
}

// TestBlackoutDegradesServiceAndCounts blacks out one site mid-run: the
// engine must record strictly more disruption (forced traffic, pauses, or
// shortfall) than the fault-free run, and the obs layer must see the
// injection.
func TestBlackoutDegradesServiceAndCounts(t *testing.T) {
	in := trioInput(t, 4, 5)
	steps := in.Actual[0].Len()
	seed, err := Run(simConfig(core.MIP), in)
	if err != nil {
		t.Fatal(err)
	}

	// Site 1 carries MIP load in this window (site 0 is dark there anyway,
	// so blacking it out would be a no-op).
	reg := obs.NewRegistry()
	script := &fault.Script{Events: []fault.Event{
		{Kind: fault.SiteBlackout, Site: 1, Start: steps / 4, End: steps / 2},
	}}
	faulted := in
	faulted.Obs = reg
	faulted.Faults = mustInjector(t, script, len(in.Actual), steps)
	got, err := Run(simConfig(core.MIP), faulted)
	if err != nil {
		t.Fatal(err)
	}

	seedBad := seed.ForcedGB + seed.PausedStableCoreSteps + seed.ShortfallCoreSteps
	gotBad := got.ForcedGB + got.PausedStableCoreSteps + got.ShortfallCoreSteps
	if gotBad <= seedBad {
		t.Errorf("blackout disruption %v not above fault-free %v", gotBad, seedBad)
	}
	if got.ShortfallCoreSteps <= seed.ShortfallCoreSteps {
		t.Errorf("blackout shortfall %v not above fault-free %v",
			got.ShortfallCoreSteps, seed.ShortfallCoreSteps)
	}
	if c := reg.Counter("fault.injected.count"); c != 1 {
		t.Errorf("fault.injected.count = %v, want 1", c)
	}
	vec := reg.NewCounterVec("fault.injected.by_kind", "kind")
	if c := vec.Value("site_blackout"); c != 1 {
		t.Errorf("fault.injected.by_kind[site_blackout] = %v, want 1", c)
	}
	if c := reg.Tracer().Count(obs.FaultInjected); c != 1 {
		t.Errorf("FaultInjected events = %d, want 1", c)
	}
}

// TestWANCutStopsAllTraffic cuts every inter-site link for the whole run:
// no migration traffic can flow, so stable cores that lose power must pause
// in place instead of moving.
func TestWANCutStopsAllTraffic(t *testing.T) {
	in := trioInput(t, 4, 5)
	steps := in.Actual[0].Len()
	seed, err := Run(simConfig(core.MIP), in)
	if err != nil {
		t.Fatal(err)
	}
	if seed.Transfer.Total() == 0 {
		t.Fatal("fixture moved no traffic; WAN-cut test is vacuous")
	}

	script := &fault.Script{Events: []fault.Event{
		{Kind: fault.WANCut, Site: -1, Peer: -1, Start: 0, End: steps},
	}}
	faulted := in
	faulted.Faults = mustInjector(t, script, len(in.Actual), steps)
	got, err := Run(simConfig(core.MIP), faulted)
	if err != nil {
		t.Fatal(err)
	}
	if total := got.Transfer.Total(); total != 0 {
		t.Errorf("full WAN cut still moved %v GB", total)
	}
	if got.PausedStableCoreSteps < seed.PausedStableCoreSteps {
		t.Errorf("WAN cut paused %v core-steps, want >= fault-free %v",
			got.PausedStableCoreSteps, seed.PausedStableCoreSteps)
	}
}

// TestFaultedRunWorkerCountInvariant pins the determinism contract under
// faults: the same script must yield bit-identical decisions whether the
// MIP solver runs serial or with 4 workers, because fault effects are pure
// functions of (script, step) — latency faults derate node budgets rather
// than racing wall clocks.
func TestFaultedRunWorkerCountInvariant(t *testing.T) {
	in := trioInput(t, 4, 5)
	steps := in.Actual[0].Len()
	script := &fault.Script{Events: []fault.Event{
		{Kind: fault.SiteBrownout, Site: 1, Start: 2, End: steps / 2, Severity: 0.5},
		{Kind: fault.SolverSlowdown, Site: -1, Start: 0, End: steps, Severity: 64},
		{Kind: fault.WANDegraded, Site: 0, Peer: 2, Start: steps / 4, End: steps, Severity: 50},
		{Kind: fault.ForecastBust, Site: 2, Start: steps / 2, End: steps, Severity: 0.6},
	}}

	var runs []Result
	for _, workers := range []int{1, 4} {
		cfg := simConfig(core.MIP)
		cfg.SolverWorkers = workers
		faulted := in
		faulted.Faults = mustInjector(t, script, len(in.Actual), steps)
		res, err := Run(cfg, faulted)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		runs = append(runs, res)
	}
	requireSameRun(t, runs[0], runs[1])
}

// TestSnapshotRejectsDifferentFaultScript: a VM-engine snapshot taken under
// one fault timeline must not restore into an engine running another — the
// replayed decisions would silently diverge.
func TestSnapshotRejectsDifferentFaultScript(t *testing.T) {
	in, apps := vmLevelFixtures(t, 2)
	steps := in.Actual[0].Len()
	cfg := simConfig(core.MIP)
	ccfg := cluster.DefaultConfig()

	scriptA := &fault.Script{Events: []fault.Event{
		{Kind: fault.SiteBrownout, Site: 0, Start: 1, End: 3, Severity: 0.4},
	}}
	inA := in
	inA.Faults = mustInjector(t, scriptA, len(in.Actual), steps)
	eng, err := NewVMEngine(cfg, inA, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := vmBatchArrivals(in, apps)
	sortArrivals(arrivals)
	if _, err := eng.Advance(arrivals); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := eng.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	// Same script restores fine.
	if _, err := RestoreVMEngine(cfg, inA, ccfg, bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatalf("same-script restore failed: %v", err)
	}
	// No script: rejected.
	if _, err := RestoreVMEngine(cfg, in, ccfg, bytes.NewReader(snap.Bytes())); err == nil {
		t.Error("restore without the fault script should be rejected")
	}
	// Different script: rejected.
	scriptB := &fault.Script{Events: []fault.Event{
		{Kind: fault.SiteBrownout, Site: 0, Start: 1, End: 3, Severity: 0.5},
	}}
	inB := in
	inB.Faults = mustInjector(t, scriptB, len(in.Actual), steps)
	if _, err := RestoreVMEngine(cfg, inB, ccfg, bytes.NewReader(snap.Bytes())); err == nil {
		t.Error("restore under a different fault script should be rejected")
	}
}

// TestVMEngineWANCutBlocksReconcile runs the VM engine under a full WAN cut
// and checks no reconcile move crosses a link (rehomes of evicted VMs are
// storage relaunches and stay allowed).
func TestVMEngineWANCutBlocksReconcile(t *testing.T) {
	in, apps := vmLevelFixtures(t, 3)
	steps := in.Actual[0].Len()
	script := &fault.Script{Events: []fault.Event{
		{Kind: fault.WANCut, Site: -1, Peer: -1, Start: 0, End: steps},
	}}
	faulted := in
	faulted.Faults = mustInjector(t, script, len(in.Actual), steps)
	eng, err := NewVMEngine(simConfig(core.MIP), faulted, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range stepReports(t, eng, vmBatchArrivals(in, apps)) {
		if bytes.Contains(rep, []byte(`"reason":"reconcile"`)) {
			t.Fatalf("reconcile move crossed a cut WAN link: %s", rep)
		}
	}
}
