// The HTTP daemon: a mutex-guarded engine behind a small JSON API, plus
// the obs-v2 telemetry surface (Prometheus metrics, registry snapshots,
// live event stream, pprof) mounted from the run's registry.
//
//	POST /v1/arrive    {"demand":{...},"vms":[...]}  queue an application
//	POST /v1/step      advance one plan step, return its decision record
//	GET  /v1/decisions full decision log (JSONL)
//	GET  /v1/state     engine status
//	GET  /v1/snapshot  engine state (binary, restorable with -restore)
//	POST /v1/snapshot  write engine state to the -snapshot path
//	GET  /healthz      liveness (always 200 while the process serves)
//	GET  /readyz       readiness (503 while the engine is still restoring)
//	GET  /metrics, /snapshot, /events, /debug/pprof/...   obs-v2 telemetry
//
// Daemon hardening: every handler runs under panic recovery (a panic
// returns 500 and increments serve.panics instead of killing the process),
// the arrival queue is bounded (429 + serve.backpressure when full), header
// reads are deadlined, and SIGINT/SIGTERM trigger a graceful shutdown with
// a configurable drain deadline.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	vb "github.com/vbcloud/vb"
	"github.com/vbcloud/vb/internal/obs/expo"
)

// daemon is the serving state: one engine, a queue of arrivals for the
// next step, and the accumulated decision log.
type daemon struct {
	scn      *scenario
	snapPath string
	// maxPending bounds the arrival queue; 0 = unbounded. Beyond it,
	// POST /v1/arrive returns 429 and counts serve.backpressure.
	maxPending int

	mu        sync.Mutex
	eng       *vb.VMEngine // nil while a snapshot restore is in progress
	pending   []vb.AppArrival
	decisions [][]byte
	decFile   *os.File
}

func serve(scn *scenario, listen, decPath, snapPath, restorePath string, maxPending int, shutdownTimeout time.Duration) error {
	d := &daemon{scn: scn, snapPath: snapPath, maxPending: maxPending}
	if decPath != "" {
		f, err := os.OpenFile(decPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		d.decFile = f
	}

	srv := &http.Server{
		Addr:              listen,
		Handler:           d.handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Build (or restore) the engine in the background so the daemon can
	// answer /healthz immediately; /readyz stays 503 until the engine is
	// in place. A restore failure is fatal — a daemon that silently starts
	// fresh would replay different decisions.
	initErr := make(chan error, 1)
	go func() {
		eng, err := scn.newEngine(restorePath)
		if err != nil {
			initErr <- err
			srv.Close()
			return
		}
		d.mu.Lock()
		d.eng = eng
		d.mu.Unlock()
		log.Printf("engine ready (policy %v, %d sites, %d steps, starting at step %d)",
			scn.cfg.Policy, len(scn.in.Actual), eng.Steps(), eng.Step())
		initErr <- nil
	}()

	log.Printf("listening on %s", listen)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	select {
	case err := <-serveErr:
		if ierr := <-initErr; ierr != nil {
			return fmt.Errorf("engine init: %w", ierr)
		}
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	case sig := <-stop:
		log.Printf("received %v, draining (deadline %v)", sig, shutdownTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}

func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/arrive", d.handleArrive)
	mux.HandleFunc("/v1/step", d.handleStep)
	mux.HandleFunc("/v1/decisions", d.handleDecisions)
	mux.HandleFunc("/v1/state", d.handleState)
	mux.HandleFunc("/v1/snapshot", d.handleSnapshot)
	mux.HandleFunc("/healthz", d.handleHealthz)
	mux.HandleFunc("/readyz", d.handleReadyz)
	// The obs-v2 telemetry surface, served from the run's registry.
	tele := expo.NewServer(d.scn.reg).Handler()
	for _, p := range []string{"/metrics", "/snapshot", "/events", "/debug/pprof/"} {
		mux.Handle(p, tele)
	}
	return d.withRecovery(mux)
}

// withRecovery converts a handler panic into a 500 response plus a
// serve.panics count: one bad request must not take down the scheduling
// loop for every other client.
func (d *daemon) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				d.scn.reg.Inc("serve.panics")
				log.Printf("panic serving %s %s: %v", r.Method, r.URL.Path, p)
				httpError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// lockEngine acquires the daemon mutex and returns the engine, or answers
// 503 and returns nil while the engine is still being built/restored.
// The caller must unlock d.mu iff the return is non-nil.
func (d *daemon) lockEngine(w http.ResponseWriter) *vb.VMEngine {
	d.mu.Lock()
	if d.eng == nil {
		d.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "engine restoring; not ready")
		return nil
	}
	return d.eng
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (d *daemon) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (d *daemon) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	ready := d.eng != nil
	d.mu.Unlock()
	if !ready {
		httpError(w, http.StatusServiceUnavailable, "engine restoring")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (d *daemon) handleArrive(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var arr vb.AppArrival
	if err := json.NewDecoder(r.Body).Decode(&arr); err != nil {
		httpError(w, http.StatusBadRequest, "decoding arrival: %v", err)
		return
	}
	if err := arr.Demand.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "invalid demand: %v", err)
		return
	}
	d.mu.Lock()
	if d.maxPending > 0 && len(d.pending) >= d.maxPending {
		d.mu.Unlock()
		d.scn.reg.Inc("serve.backpressure")
		httpError(w, http.StatusTooManyRequests,
			"arrival queue full (%d pending); step the engine or retry later", d.maxPending)
		return
	}
	d.pending = append(d.pending, arr)
	n := len(d.pending)
	d.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]int{"queued": n})
}

func (d *daemon) handleStep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	eng := d.lockEngine(w)
	if eng == nil {
		return
	}
	defer d.mu.Unlock()
	if eng.Done() {
		httpError(w, http.StatusConflict, "timeline exhausted (%d steps)", eng.Steps())
		return
	}
	rep, err := eng.Advance(d.pending)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "advance: %v", err)
		return
	}
	d.pending = d.pending[:0]
	line, err := json.Marshal(rep)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding report: %v", err)
		return
	}
	d.decisions = append(d.decisions, line)
	if d.decFile != nil {
		if _, err := d.decFile.Write(append(line, '\n')); err != nil {
			httpError(w, http.StatusInternalServerError, "writing decision log: %v", err)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(line, '\n'))
}

func (d *daemon) handleDecisions(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	defer d.mu.Unlock()
	w.Header().Set("Content-Type", "application/jsonl")
	bw := bufio.NewWriter(w)
	for _, line := range d.decisions {
		bw.Write(line)
		bw.WriteByte('\n')
	}
	bw.Flush()
}

func (d *daemon) handleState(w http.ResponseWriter, _ *http.Request) {
	eng := d.lockEngine(w)
	if eng == nil {
		return
	}
	defer d.mu.Unlock()
	res := eng.Result()
	state := map[string]interface{}{
		"policy":      d.scn.cfg.Policy.String(),
		"step":        eng.Step(),
		"steps":       eng.Steps(),
		"done":        eng.Done(),
		"running_vms": eng.Running(),
		"tracked_vms": eng.TrackedVMs(),
		"queued":      len(d.pending),
		"moves":       res.Moves,
		"transfer_gb": res.Transfer.Total(),
	}
	if !eng.Done() {
		state["now"] = eng.Now()
	}
	writeJSON(w, http.StatusOK, state)
}

func (d *daemon) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	eng := d.lockEngine(w)
	if eng == nil {
		return
	}
	defer d.mu.Unlock()
	switch r.Method {
	case http.MethodGet:
		// Stream the engine state; restorable via -restore or
		// vb.RestoreVMEngine.
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := eng.Snapshot(w); err != nil {
			httpError(w, http.StatusInternalServerError, "snapshot: %v", err)
		}
	case http.MethodPost:
		if d.snapPath == "" {
			httpError(w, http.StatusPreconditionFailed, "no -snapshot path configured")
			return
		}
		if err := writeSnapshot(eng, d.snapPath); err != nil {
			httpError(w, http.StatusInternalServerError, "snapshot: %v", err)
			return
		}
		info, _ := os.Stat(d.snapPath)
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"path": d.snapPath, "bytes": info.Size(), "step": eng.Step(),
		})
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST")
	}
}
