package vb

import (
	"testing"
	"time"
)

func TestBatteryEquivalent(t *testing.T) {
	r, err := BatteryEquivalent(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.TargetMW <= 0 {
		t.Fatal("target must be positive")
	}
	// The headline claim: aggregation substitutes for almost all the
	// storage a single site would need.
	if r.GroupBatteryMWh >= 0.1*r.SingleSiteBatteryMWh {
		t.Errorf("group battery %v MWh should be <10%% of single-site %v MWh",
			r.GroupBatteryMWh, r.SingleSiteBatteryMWh)
	}
	if r.SingleSiteCostUSD <= 0 {
		t.Error("battery cost should be positive")
	}
}

func TestSmoothWithBatteryPublic(t *testing.T) {
	gen := NewSeries(time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC), time.Hour, 4)
	for i := range gen.Values {
		gen.Values[i] = 100
	}
	r, err := SmoothWithBattery(BatteryConfig{
		CapacityMWh: 10, PowerMW: 10, RoundTripEfficiency: 0.9,
	}, gen, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r.UnservedMWh != 0 {
		t.Errorf("constant surplus should serve fully, unserved=%v", r.UnservedMWh)
	}
	if _, err := RequiredBatteryMWh(gen, 50, 100, 0.9, 0); err != nil {
		t.Errorf("RequiredBatteryMWh: %v", err)
	}
}

func TestDefaultMigrationModel(t *testing.T) {
	m := DefaultMigrationModel()
	r, err := m.Migrate(32)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged || r.Amplification < 1 {
		t.Errorf("default model should converge with amplification >= 1: %+v", r)
	}
}

func TestMigrationRealism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two Table 1 policies")
	}
	r, err := MigrationRealism(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Amplification < 1 || r.Amplification > 1.5 {
		t.Errorf("amplification = %v, want modest (>1, <1.5)", r.Amplification)
	}
	if r.DowntimeSec <= 0 || r.DowntimeSec > 5 {
		t.Errorf("downtime = %v s, want sub-second to a few seconds", r.DowntimeSec)
	}
	if r.AdjustedMIPTotalGB >= r.AdjustedGreedyTotalGB {
		t.Error("amplification preserves the policy ordering")
	}
}

func TestReplicationVsMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a Table 1 policy")
	}
	r, err := ReplicationVsMigration(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Hot replication streams far more over a week than the app actually
	// migrates — the reason the paper's scheduler prefers migration.
	if r.HotStandbyGB <= r.MigrationGB {
		t.Errorf("hot standby %v GB should exceed per-app migration %v GB",
			r.HotStandbyGB, r.MigrationGB)
	}
	if r.ColdStandbyGB <= 0 || r.ColdStandbyGB >= r.HotStandbyGB {
		t.Errorf("cold standby %v GB should sit below hot %v GB", r.ColdStandbyGB, r.HotStandbyGB)
	}
	if r.BreakEvenMovesPerWeek <= 1 {
		t.Errorf("break-even moves = %v, should exceed realistic move rates", r.BreakEvenMovesPerWeek)
	}
}

func TestCarbonSavings(t *testing.T) {
	r, err := CarbonSavings(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Savings.SavedFraction < 0.8 {
		t.Errorf("renewables should avoid most grid emissions, got %v", r.Savings.SavedFraction)
	}
	if r.MigrationShare > 0.01 {
		t.Errorf("migration carbon share = %v, paper's §5 says negligible", r.MigrationShare)
	}
	if r.MigrationTons <= 0 {
		t.Error("migration emissions should be positive")
	}
}

func TestConsolidationStudy(t *testing.T) {
	r, err := ConsolidationStudy()
	if err != nil {
		t.Fatal(err)
	}
	if r.ConsolidatedKW >= r.SpreadKW {
		t.Error("consolidation must draw less than spreading")
	}
	if r.SavingFraction <= 0.05 {
		t.Errorf("saving fraction = %v, want material", r.SavingFraction)
	}
}
