package lp

import (
	"bytes"
	"encoding/gob"
	"math/rand/v2"
	"reflect"
	"testing"
)

// TestInstanceStateRoundTrip pins the crash-recovery contract for both
// basis representations: after a solve, an encode/decode cycle reproduces
// the instance bit-exactly (a restored instance even re-encodes to the
// same bytes), and a refreshed re-solve from the decoded instance pivots
// to exactly the same solution as the original would.
func TestInstanceStateRoundTrip(t *testing.T) {
	for _, mode := range []struct {
		name string
		mk   func(Problem) (*Instance, error)
	}{
		{"sparse", NewInstance},
		{"dense", NewInstanceDense},
	} {
		t.Run(mode.name, func(t *testing.T) {
			rng := rand.New(rand.NewPCG(7, 11))
			for trial := 0; trial < 50; trial++ {
				p := randomStateProblem(rng)
				orig, err := mode.mk(p)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := orig.SolveCurrent(); err != nil {
					t.Fatal(err)
				}

				var buf bytes.Buffer
				if err := gob.NewEncoder(&buf).Encode(orig); err != nil {
					t.Fatal(err)
				}
				restored := new(Instance)
				if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(restored); err != nil {
					t.Fatal(err)
				}

				// Bit-exact persistent state.
				for _, c := range []struct {
					name string
					a, b interface{}
				}{
					{"basis", orig.basis, restored.basis},
					{"vstat", orig.vstat, restored.vstat},
					{"xB", orig.xB, restored.xB},
					{"d", orig.d, restored.d},
					{"lo", orig.lo, restored.lo},
					{"hi", orig.hi, restored.hi},
					{"cmin", orig.cmin, restored.cmin},
				} {
					if !reflect.DeepEqual(c.a, c.b) {
						t.Fatalf("trial %d: %s differs after round trip", trial, c.name)
					}
				}
				if orig.ready != restored.ready || orig.dExact != restored.dExact ||
					orig.pivots != restored.pivots || orig.refactors != restored.refactors {
					t.Fatalf("trial %d: flags differ after round trip", trial)
				}
				if orig.DenseBasis() != restored.DenseBasis() ||
					orig.EtaChainLen() != restored.EtaChainLen() {
					t.Fatalf("trial %d: basis representation differs after round trip", trial)
				}
				// The factorization itself round-trips bit-exactly: a restored
				// instance re-encodes to the identical byte stream.
				rawA, err := orig.GobEncode()
				if err != nil {
					t.Fatal(err)
				}
				rawB, err := restored.GobEncode()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(rawA, rawB) {
					t.Fatalf("trial %d: re-encoded snapshot differs from original", trial)
				}

				// A perturbed re-solve follows the identical pivot path on both.
				q := p
				q.Objective = append([]float64(nil), p.Objective...)
				for i := range q.Objective {
					q.Objective[i] *= 1.1
				}
				if !orig.Refresh(q) || !restored.Refresh(q) {
					t.Fatalf("trial %d: refresh failed", trial)
				}
				stA, errA := orig.SolveCurrent()
				stB, errB := restored.SolveCurrent()
				if (errA == nil) != (errB == nil) || stA != stB {
					t.Fatalf("trial %d: statuses diverge: %v/%v vs %v/%v", trial, stA, errA, stB, errB)
				}
				if stA == Optimal {
					xa := orig.Values(nil)
					xb := restored.Values(nil)
					for i := range xa {
						if xa[i] != xb[i] {
							t.Fatalf("trial %d: x[%d] = %v vs %v (must be bit-identical)", trial, i, xa[i], xb[i])
						}
					}
					if orig.pivots != restored.pivots {
						t.Fatalf("trial %d: pivot counts diverge: %d vs %d", trial, orig.pivots, restored.pivots)
					}
				}
			}
		})
	}
}

// legacyInstanceState is the pre-sparse-LU snapshot layout (no Mode field,
// dense inverse only). Gob matches struct fields by name, so encoding this
// reproduces byte streams written by old builds.
type legacyInstanceState struct {
	M, NStruct int
	Maximize   bool

	Cmin, B        []float64
	Senses         []Sense
	BaseLo, BaseHi []float64

	ColPtr, ColRow []int32
	ColVal         []float64
	RowPtr, RowCol []int32
	RowVal         []float64

	Lo, Hi    []float64
	Basis     []int32
	Vstat     []int8
	Binv      []float64
	BinvIdent bool
	XB        []float64
	Ready     bool
	D         []float64
	DExact    bool

	Pivots int64
}

// TestInstanceDecodeLegacySnapshot pins the documented compatibility
// choice: a snapshot written before the sparse kernel (no Mode field)
// restores onto the retained dense product-form path and replays the
// writer's exact arithmetic — it is not rejected and not converted.
func TestInstanceDecodeLegacySnapshot(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	for trial := 0; trial < 20; trial++ {
		p := randomStateProblem(rng)
		orig, err := NewInstanceDense(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := orig.SolveCurrent(); err != nil {
			t.Fatal(err)
		}
		df := orig.fac.(*denseFactor)
		legacy := legacyInstanceState{
			M: orig.m, NStruct: orig.nStruct, Maximize: orig.maximize,
			Cmin: orig.cmin, B: orig.b, Senses: orig.senses,
			BaseLo: orig.baseLo, BaseHi: orig.baseHi,
			ColPtr: orig.colPtr, ColRow: orig.colRow, ColVal: orig.colVal,
			RowPtr: orig.rowPtr, RowCol: orig.rowCol, RowVal: orig.rowVal,
			Lo: orig.lo, Hi: orig.hi,
			Basis: orig.basis, Vstat: orig.vstat,
			Binv: df.binv, BinvIdent: df.ident,
			XB: orig.xB, Ready: orig.ready,
			D: orig.d, DExact: orig.dExact,
			Pivots: orig.pivots,
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(legacy); err != nil {
			t.Fatal(err)
		}
		restored := new(Instance)
		if err := restored.GobDecode(buf.Bytes()); err != nil {
			t.Fatalf("trial %d: legacy snapshot rejected: %v", trial, err)
		}
		if !restored.DenseBasis() {
			t.Fatalf("trial %d: legacy snapshot restored onto non-dense basis", trial)
		}
		rf := restored.fac.(*denseFactor)
		if !reflect.DeepEqual(df.binv, rf.binv) || df.ident != rf.ident {
			t.Fatalf("trial %d: dense inverse differs after legacy restore", trial)
		}

		// The restored instance replays the writer's pivot path exactly.
		q := p
		q.Objective = append([]float64(nil), p.Objective...)
		for i := range q.Objective {
			q.Objective[i] *= 0.9
		}
		if !orig.Refresh(q) || !restored.Refresh(q) {
			t.Fatalf("trial %d: refresh failed", trial)
		}
		stA, errA := orig.SolveCurrent()
		stB, errB := restored.SolveCurrent()
		if (errA == nil) != (errB == nil) || stA != stB {
			t.Fatalf("trial %d: statuses diverge: %v/%v vs %v/%v", trial, stA, errA, stB, errB)
		}
		if stA == Optimal {
			xa := orig.Values(nil)
			xb := restored.Values(nil)
			for i := range xa {
				if xa[i] != xb[i] {
					t.Fatalf("trial %d: x[%d] = %v vs %v (must be bit-identical)", trial, i, xa[i], xb[i])
				}
			}
			if orig.pivots != restored.pivots {
				t.Fatalf("trial %d: pivot counts diverge: %d vs %d", trial, orig.pivots, restored.pivots)
			}
		}
	}
}

// TestInstanceDecodeRejectsCorrupt checks that truncated or inconsistent
// snapshots fail loudly instead of producing a silently wrong solver.
func TestInstanceDecodeRejectsCorrupt(t *testing.T) {
	p := Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: LE, RHS: 4},
		},
	}
	inst, err := NewInstance(p)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := inst.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	if err := new(Instance).GobDecode(raw[:len(raw)/2]); err == nil {
		t.Error("truncated payload should fail to decode")
	}
	if err := new(Instance).GobDecode([]byte("not gob")); err == nil {
		t.Error("garbage payload should fail to decode")
	}

	// Internally inconsistent sparse payloads are rejected by validation.
	encode := func(mutate func(*instanceState)) []byte {
		if _, err := inst.SolveCurrent(); err != nil {
			t.Fatal(err)
		}
		good, err := inst.GobEncode()
		if err != nil {
			t.Fatal(err)
		}
		var st instanceState
		if err := gob.NewDecoder(bytes.NewReader(good)).Decode(&st); err != nil {
			t.Fatal(err)
		}
		mutate(&st)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(st); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, c := range []struct {
		name   string
		mutate func(*instanceState)
	}{
		{"unknown mode", func(st *instanceState) { st.Mode = 42 }},
		{"short pivRow", func(st *instanceState) { st.LuPivRow = st.LuPivRow[:0] }},
		{"out-of-range pivot", func(st *instanceState) { st.LuPivRow[0] = 99 }},
		{"eta ptr mismatch", func(st *instanceState) {
			st.EtaRow = append(st.EtaRow, 0)
			st.EtaPiv = append(st.EtaPiv, 1)
		}},
	} {
		if err := new(Instance).GobDecode(encode(c.mutate)); err == nil {
			t.Errorf("%s: corrupt sparse payload should fail to decode", c.name)
		}
	}
}

// randomProblem builds a small random feasible-ish LP (bounded variables,
// mixed senses) for round-trip trials.
func randomStateProblem(rng *rand.Rand) Problem {
	n := 3 + rng.IntN(5)
	m := 2 + rng.IntN(4)
	p := Problem{
		NumVars:   n,
		Objective: make([]float64, n),
		Upper:     make([]float64, n),
	}
	for j := 0; j < n; j++ {
		p.Objective[j] = rng.Float64()*4 - 2
		p.Upper[j] = 1 + rng.Float64()*9
	}
	for i := 0; i < m; i++ {
		c := Constraint{Coeffs: make([]float64, n), Sense: LE, RHS: 2 + rng.Float64()*10}
		if rng.IntN(3) == 0 {
			c.Sense = GE
			c.RHS = rng.Float64()
		}
		for j := 0; j < n; j++ {
			if rng.IntN(2) == 0 {
				c.Coeffs[j] = rng.Float64() * 3
			}
		}
		p.Constraints = append(p.Constraints, c)
	}
	return p
}
