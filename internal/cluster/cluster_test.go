package cluster

import (
	"math"
	"testing"
	"time"

	"github.com/vbcloud/vb/internal/workload"
)

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

// smallConfig is a 4-server site for precise hand-checked tests.
func smallConfig() Config {
	return Config{Servers: 4, CoresPerServer: 10, MemPerServerGB: 100, TargetUtilization: 0.7}
}

func mkVM(id, cores, memGB int) workload.VM {
	return workload.VM{ID: id, Cores: cores, MemoryGB: memGB, Arrival: t0}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{},
		{Servers: 1, CoresPerServer: 0, MemPerServerGB: 1, TargetUtilization: 0.5},
		{Servers: 1, CoresPerServer: 1, MemPerServerGB: 0, TargetUtilization: 0.5},
		{Servers: 1, CoresPerServer: 1, MemPerServerGB: 1, TargetUtilization: 0},
		{Servers: 1, CoresPerServer: 1, MemPerServerGB: 1, TargetUtilization: 1.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if DefaultConfig().TotalCores() != 28000 {
		t.Errorf("default total cores = %d, want 28000", DefaultConfig().TotalCores())
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("invalid config should error")
	}
}

func TestPlacementAndAdmission(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 40 total cores, powered 40, admission limit 28.
	res := s.Step(t0, 1.0, []workload.VM{mkVM(1, 10, 50), mkVM(2, 10, 50), mkVM(3, 8, 40)})
	if res.RejectedNew != 0 {
		t.Fatalf("rejected %d, want 0", res.RejectedNew)
	}
	if s.AllocatedCores() != 28 || s.Running() != 3 {
		t.Fatalf("alloc=%d running=%d", s.AllocatedCores(), s.Running())
	}
	// Admission control: 28/40 = 70% reached; next VM must be rejected.
	res = s.Step(t0.Add(time.Minute), 1.0, []workload.VM{mkVM(4, 1, 1)})
	if res.RejectedNew != 1 || s.Pending() != 1 {
		t.Fatalf("rejected=%d pending=%d, want 1,1", res.RejectedNew, s.Pending())
	}
}

func TestBestFitConsolidates(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Step(t0, 1.0, []workload.VM{mkVM(1, 6, 10)})
	// Second small VM should land on the same server (best fit), not an
	// empty one.
	s.Step(t0.Add(time.Minute), 1.0, []workload.VM{mkVM(2, 4, 10)})
	if s.where[1] != s.where[2] {
		t.Errorf("best fit should consolidate: VM1 on %d, VM2 on %d", s.where[1], s.where[2])
	}
}

func TestPlacementRespectsMemory(t *testing.T) {
	s, err := New(Config{Servers: 1, CoresPerServer: 10, MemPerServerGB: 100, TargetUtilization: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Step(t0, 1.0, []workload.VM{mkVM(1, 1, 90), mkVM(2, 1, 20)})
	if res.RejectedNew != 1 {
		t.Errorf("memory-full server should reject: rejected=%d", res.RejectedNew)
	}
}

func TestPowerDropEvictsRoundRobin(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Fill to 28 cores over 4 servers.
	s.Step(t0, 1.0, []workload.VM{
		mkVM(1, 7, 70), mkVM(2, 7, 70), mkVM(3, 7, 70), mkVM(4, 7, 70),
	})
	if s.AllocatedCores() != 28 {
		t.Fatalf("alloc = %d", s.AllocatedCores())
	}
	// Drop power to 50% = 20 powered cores; must evict 2 VMs (28->14).
	res := s.Step(t0.Add(15*time.Minute), 0.5, nil)
	if res.Evicted != 2 {
		t.Fatalf("evicted = %d, want 2", res.Evicted)
	}
	if res.OutGB != 140 {
		t.Errorf("out traffic = %v, want 140 (2 x 70GB)", res.OutGB)
	}
	if s.AllocatedCores() > 20 {
		t.Errorf("alloc %d exceeds powered 20", s.AllocatedCores())
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2", s.Pending())
	}
	// Round-robin: the two evictions come from different servers.
	// (All four servers held one VM each, so evicting two from one server
	// is impossible here by construction; verify spread via remaining.)
	nonEmpty := 0
	for i := range s.servers {
		if len(s.servers[i].vms) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 2 {
		t.Errorf("expected 2 servers still occupied, got %d", nonEmpty)
	}
}

func TestPowerRecoveryRelaunches(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Step(t0, 1.0, []workload.VM{mkVM(1, 7, 70), mkVM(2, 7, 70), mkVM(3, 7, 70), mkVM(4, 7, 70)})
	s.Step(t0.Add(15*time.Minute), 0.5, nil)
	// Restore full power: both pending VMs relaunch; traffic counted in.
	res := s.Step(t0.Add(30*time.Minute), 1.0, nil)
	if res.Launched != 2 {
		t.Fatalf("launched = %d, want 2", res.Launched)
	}
	if res.InGB != 140 {
		t.Errorf("in traffic = %v, want 140", res.InGB)
	}
	if s.Running() != 4 || s.Pending() != 0 {
		t.Errorf("running=%d pending=%d", s.Running(), s.Pending())
	}
}

func TestPowerAbsorbedByHeadroom(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 14 cores allocated of 40; a drop to 50% (20 powered) costs nothing.
	s.Step(t0, 1.0, []workload.VM{mkVM(1, 7, 70), mkVM(2, 7, 70)})
	res := s.Step(t0.Add(15*time.Minute), 0.5, nil)
	if res.Evicted != 0 || res.OutGB != 0 {
		t.Errorf("headroom should absorb drop: %+v", res)
	}
}

func TestDepartures(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	vm := mkVM(1, 5, 50)
	vm.Lifetime = 10 * time.Minute
	s.Step(t0, 1.0, []workload.VM{vm})
	if s.Running() != 1 {
		t.Fatal("VM should be running")
	}
	res := s.Step(t0.Add(15*time.Minute), 1.0, nil)
	if res.Departed != 1 || s.Running() != 0 {
		t.Errorf("departed=%d running=%d", res.Departed, s.Running())
	}
}

func TestPendingExpires(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Zero power: arrival goes pending.
	vm := mkVM(1, 5, 50)
	vm.Lifetime = 10 * time.Minute
	s.Step(t0, 0, []workload.VM{vm})
	if s.Pending() != 1 {
		t.Fatal("VM should be pending")
	}
	// By the time power returns the lifetime has passed: dropped, no
	// phantom launch.
	res := s.Step(t0.Add(30*time.Minute), 1.0, nil)
	if res.Launched != 0 || s.Pending() != 0 || s.Running() != 0 {
		t.Errorf("expired pending VM mishandled: %+v", res)
	}
}

func TestRemoveUnknown(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.Remove(99) {
		t.Error("removing unknown VM should report false")
	}
}

func TestPowerFracClamped(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Step(t0, -0.5, nil)
	if s.PoweredCores() != 0 {
		t.Errorf("negative power should clamp to 0, got %d", s.PoweredCores())
	}
	s.Step(t0.Add(time.Minute), 2.0, nil)
	if s.PoweredCores() != 40 {
		t.Errorf("overpower should clamp to total, got %d", s.PoweredCores())
	}
}

func TestZeroPowerEvictsEverything(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Step(t0, 1.0, []workload.VM{mkVM(1, 7, 70), mkVM(2, 7, 70)})
	res := s.Step(t0.Add(15*time.Minute), 0, nil)
	if res.Evicted != 2 || s.Running() != 0 {
		t.Errorf("zero power should evict all: evicted=%d running=%d", res.Evicted, s.Running())
	}
	if s.Utilization() != 0 {
		t.Errorf("utilization = %v", s.Utilization())
	}
}

func TestConfigAccessor(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.Config() != smallConfig() {
		t.Error("Config accessor mismatch")
	}
}

func TestSnapshotEmpty(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Servers != 4 || snap.OccupiedServers != 0 {
		t.Errorf("snapshot servers: %+v", snap)
	}
	if snap.AllocatedCores != 0 || snap.PoweredCores != 40 || snap.FreeCores != 40 {
		t.Errorf("snapshot cores: %+v", snap)
	}
	if snap.MaxFreeCoresOneServer != 10 || snap.MaxFreeMemGBOneServer != 100 {
		t.Errorf("snapshot per-server: %+v", snap)
	}
	// All free capacity spread over 4 servers: fragmentation 1 - 10/40.
	if snap.Fragmentation != 0.75 {
		t.Errorf("fragmentation = %v, want 0.75", snap.Fragmentation)
	}
}

func TestSnapshotConsolidated(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Fill one server completely; best-fit keeps others empty.
	s.Step(t0, 1.0, []workload.VM{mkVM(1, 10, 50)})
	snap := s.Snapshot()
	if snap.OccupiedServers != 1 {
		t.Errorf("occupied = %d, want 1", snap.OccupiedServers)
	}
	if snap.AllocatedCores != 10 {
		t.Errorf("allocated = %d", snap.AllocatedCores)
	}
	// Free cores all on empty servers: 30 free, max single server 10.
	if snap.Fragmentation <= 0.6 || snap.Fragmentation > 0.7 {
		t.Errorf("fragmentation = %v, want 2/3", snap.Fragmentation)
	}
}

func TestSnapshotPowerDown(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Step(t0, 0.25, nil) // 10 powered cores
	snap := s.Snapshot()
	if snap.PoweredCores != 10 || snap.FreeCores != 10 {
		t.Errorf("power-down snapshot: %+v", snap)
	}
}

// TestFloorEpsBoundaries pins the float-truncation fix: products that are
// exact in real arithmetic but land a hair below the integer in floats
// (0.70 × n for many n) must not lose a whole core, while genuinely
// fractional products still truncate.
func TestFloorEpsBoundaries(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0},
		{1, 1},
		{0.7 * 19600, 13720}, // 0.7 is inexact in binary; the product ≈ 13719.999999999998
		{0.7 * 28000, 19600},
		{0.7 * 10, 7},
		{0.35 * 20, 7},
		{0.1 * 30, 3},
		{0.57 * 100, 57},
		{10.5, 10},                   // genuine fraction: truncates
		{6.999, 6},                   // not within epsilon: truncates
		{13719.9999999999995, 13720}, // within epsilon: rescued
	}
	for _, c := range cases {
		if got := floorEps(c.x); got != c.want {
			t.Errorf("floorEps(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

// TestAdmissionLimitExactFraction checks the end-to-end consequence: at
// exact-fraction power levels the admission limit is the exact product, so
// a site filled to precisely 70% of powered cores admits the last VM.
func TestAdmissionLimitExactFraction(t *testing.T) {
	// 19600 powered cores at 0.70 target: limit must be exactly 13720.
	cfg := Config{Servers: 700, CoresPerServer: 40, MemPerServerGB: 512, TargetUtilization: 0.70}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SetPowerEvict(0.7) // powered = 0.7 × 28000 = 19600 exactly
	if s.PoweredCores() != 19600 {
		t.Fatalf("powered = %d, want 19600", s.PoweredCores())
	}
	if got := s.admissionLimit(); got != 13720 {
		t.Fatalf("admissionLimit = %d, want 13720 (0.70 × 19600)", got)
	}
	// Fill to exactly the limit with 40-core VMs: all must admit.
	id := 1
	for alloc := 0; alloc+40 <= 13720; alloc += 40 {
		if !s.Admit(workload.VM{ID: id, Cores: 40, MemoryGB: 1}) {
			t.Fatalf("VM %d rejected at alloc %d under limit 13720", id, s.AllocatedCores())
		}
		id++
	}
	if s.AllocatedCores() != 13720 {
		t.Fatalf("allocated %d, want 13720", s.AllocatedCores())
	}
	// One more core is over the limit.
	if s.Admit(workload.VM{ID: id, Cores: 1, MemoryGB: 1}) {
		t.Error("VM admitted beyond the 70% limit")
	}
}

// TestSetPowerEvictNonFinite pins the fault-path hardening: a NaN or -Inf
// power reading (e.g. a corrupt telemetry sample multiplied through a fault
// factor) is treated as a blackout, and +Inf clamps to full power. Neither
// may poison the powered-core count.
func TestSetPowerEvictNonFinite(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !s.Admit(mkVM(1, 5, 10)) {
		t.Fatal("setup VM rejected")
	}
	if ev := s.SetPowerEvict(math.NaN()); len(ev) != 1 {
		t.Fatalf("NaN power evicted %d VMs, want 1 (blackout)", len(ev))
	}
	if s.PoweredCores() != 0 {
		t.Fatalf("NaN power left %d cores powered, want 0", s.PoweredCores())
	}
	if ev := s.SetPowerEvict(math.Inf(-1)); len(ev) != 0 || s.PoweredCores() != 0 {
		t.Fatalf("-Inf power: evicted=%d powered=%d, want 0/0", len(ev), s.PoweredCores())
	}
	if ev := s.SetPowerEvict(math.Inf(1)); len(ev) != 0 {
		t.Fatalf("+Inf power evicted %d VMs, want 0", len(ev))
	}
	if s.PoweredCores() != s.cfg.TotalCores() {
		t.Fatalf("+Inf power = %d cores, want full %d", s.PoweredCores(), s.cfg.TotalCores())
	}
}
