package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var start = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

func baseConfig() Config {
	return Config{
		Seed:                1,
		Start:               start,
		Duration:            7 * 24 * time.Hour,
		MeanArrivalsPerHour: 50,
		StableFraction:      0.7,
		LongRunningFraction: 0.2,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := baseConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.MeanArrivalsPerHour = 0 },
		func(c *Config) { c.StableFraction = 1.5 },
		func(c *Config) { c.StableFraction = -0.1 },
		func(c *Config) { c.LongRunningFraction = 2 },
	}
	for i, mut := range bad {
		c := baseConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateBasics(t *testing.T) {
	cfg := baseConfig()
	vms, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Expect roughly rate*hours arrivals.
	expected := cfg.MeanArrivalsPerHour * cfg.Duration.Hours()
	if float64(len(vms)) < 0.8*expected || float64(len(vms)) > 1.2*expected {
		t.Errorf("got %d VMs, want ~%.0f", len(vms), expected)
	}
	end := cfg.Start.Add(cfg.Duration)
	seen := map[int]bool{}
	for i, v := range vms {
		if v.Arrival.Before(cfg.Start) || !v.Arrival.Before(end) {
			t.Fatalf("VM %d arrival %v outside window", v.ID, v.Arrival)
		}
		if i > 0 && vms[i].Arrival.Before(vms[i-1].Arrival) {
			t.Fatal("VMs not sorted by arrival")
		}
		if v.Cores <= 0 || v.MemoryGB <= 0 {
			t.Fatalf("VM %d has empty shape", v.ID)
		}
		if seen[v.ID] {
			t.Fatalf("duplicate VM ID %d", v.ID)
		}
		seen[v.ID] = true
	}
}

func TestGenerateInvalid(t *testing.T) {
	cfg := baseConfig()
	cfg.Duration = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("invalid config should error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("VM %d differs", i)
		}
	}
	cfg := baseConfig()
	cfg.Seed = 2
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i].Arrival != c[i].Arrival {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds should differ")
		}
	}
}

func TestClassMix(t *testing.T) {
	vms, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	stable := 0
	for _, v := range vms {
		if v.Class == Stable {
			stable++
		}
	}
	frac := float64(stable) / float64(len(vms))
	if math.Abs(frac-0.7) > 0.05 {
		t.Errorf("stable fraction = %v, want ~0.7", frac)
	}
}

func TestLifetimes(t *testing.T) {
	cfg := baseConfig()
	cfg.MedianLifetime = 2 * time.Hour
	vms, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var finite []float64
	longRunning := 0
	for _, v := range vms {
		if v.Lifetime == 0 {
			longRunning++
			if !v.End().IsZero() {
				t.Fatal("long-running VM End should be zero time")
			}
			continue
		}
		if v.Lifetime < time.Minute {
			t.Fatalf("lifetime %v below floor", v.Lifetime)
		}
		if got := v.End(); !got.Equal(v.Arrival.Add(v.Lifetime)) {
			t.Fatal("End mismatch")
		}
		finite = append(finite, v.Lifetime.Hours())
	}
	frac := float64(longRunning) / float64(len(vms))
	if math.Abs(frac-0.2) > 0.05 {
		t.Errorf("long-running fraction = %v, want ~0.2", frac)
	}
	// Median of finite lifetimes near the configured median; heavy tail.
	if len(finite) == 0 {
		t.Fatal("no finite lifetimes")
	}
	var sum float64
	max := 0.0
	for _, h := range finite {
		sum += h
		if h > max {
			max = h
		}
	}
	if max < 10 {
		t.Errorf("max lifetime %vh: expected a heavy tail", max)
	}
}

func TestDiurnalRate(t *testing.T) {
	noon := diurnalRate(time.Date(2020, 5, 1, 14, 0, 0, 0, time.UTC))
	night := diurnalRate(time.Date(2020, 5, 1, 3, 0, 0, 0, time.UTC))
	if noon <= night {
		t.Errorf("daytime rate %v should exceed night rate %v", noon, night)
	}
	for h := 0; h < 24; h++ {
		r := diurnalRate(time.Date(2020, 5, 1, h, 0, 0, 0, time.UTC))
		if r <= 0 {
			t.Fatalf("rate at hour %d = %v, must be positive", h, r)
		}
	}
}

func TestSizeMixNormalized(t *testing.T) {
	var sum float64
	for _, s := range sizeMix {
		if s.cores <= 0 || s.memGB <= 0 || s.weight <= 0 {
			t.Fatalf("bad shape %+v", s)
		}
		sum += s.weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("size mix weights sum to %v, want 1", sum)
	}
}

func TestClassString(t *testing.T) {
	if Stable.String() != "stable" || Degradable.String() != "degradable" {
		t.Error("class strings")
	}
}

// TestGenerateExtremeRate pins the inter-arrival clamp fix: at extreme rates
// the expected gap drops below a second, and the old clamp (forcing every
// non-positive or tiny gap to 1s) would cap the process at ~3600 arrivals per
// hour. The count must track rate*hours even when gaps are sub-second, and
// equal-timestamp arrivals must stay in ID order.
func TestGenerateExtremeRate(t *testing.T) {
	cfg := Config{
		Seed:                13,
		Start:               start,
		Duration:            time.Hour,
		MeanArrivalsPerHour: 50000,
		StableFraction:      0.5,
	}
	vms, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The diurnal envelope runs ~0.8x overnight (the window starts at
	// midnight), so expect rate*hours*[0.7,0.95]. The old 1s clamp capped
	// the count near 3600 regardless.
	expected := cfg.MeanArrivalsPerHour * cfg.Duration.Hours()
	if float64(len(vms)) < 0.7*expected || float64(len(vms)) > 0.95*expected {
		t.Errorf("got %d VMs at extreme rate, want ~%.0f x diurnal (1s clamp would cap near 3600)", len(vms), expected)
	}
	for i := 1; i < len(vms); i++ {
		if vms[i].Arrival.Before(vms[i-1].Arrival) {
			t.Fatal("VMs not sorted by arrival")
		}
		if vms[i].Arrival.Equal(vms[i-1].Arrival) && vms[i].ID < vms[i-1].ID {
			t.Fatal("equal-timestamp VMs not in ID order")
		}
	}
}

// TestSortVMsTieBreak pins the deterministic tie-break directly.
func TestSortVMsTieBreak(t *testing.T) {
	at := start.Add(time.Minute)
	vms := []VM{
		{ID: 3, Arrival: at},
		{ID: 1, Arrival: at.Add(time.Second)},
		{ID: 2, Arrival: at},
	}
	sortVMs(vms)
	if vms[0].ID != 2 || vms[1].ID != 3 || vms[2].ID != 1 {
		t.Errorf("sorted order %d,%d,%d; want 2,3,1", vms[0].ID, vms[1].ID, vms[2].ID)
	}
}

func TestGenerateApps(t *testing.T) {
	cfg := AppConfig{
		Seed:           3,
		Start:          start,
		Duration:       7 * 24 * time.Hour,
		MeanAppsPerDay: 40,
		MeanVMsPerApp:  8,
		StableFraction: 0.7,
	}
	apps, err := GenerateApps(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) < 150 || len(apps) > 450 {
		t.Errorf("got %d apps, want ~280", len(apps))
	}
	totVMs := 0
	for i, a := range apps {
		if len(a.VMs) == 0 {
			t.Fatalf("app %d has no VMs", a.ID)
		}
		if i > 0 && apps[i].Arrival.Before(apps[i-1].Arrival) {
			t.Fatal("apps not sorted")
		}
		for _, v := range a.VMs {
			if v.AppID != a.ID {
				t.Fatalf("VM %d has AppID %d, want %d", v.ID, v.AppID, a.ID)
			}
			if !v.Arrival.Equal(a.Arrival) {
				t.Fatal("VM arrival should match app arrival")
			}
		}
		if a.TotalCores() <= 0 || a.TotalMemoryGB() <= 0 {
			t.Fatal("app totals must be positive")
		}
		if a.StableCores() > a.TotalCores() {
			t.Fatal("stable cores exceed total")
		}
		totVMs += len(a.VMs)
	}
	meanVMs := float64(totVMs) / float64(len(apps))
	if meanVMs < 5 || meanVMs > 12 {
		t.Errorf("mean VMs per app = %v, want ~8", meanVMs)
	}
}

func TestGenerateAppsInvalid(t *testing.T) {
	bad := []AppConfig{
		{},
		{Duration: time.Hour, MeanAppsPerDay: 0, MeanVMsPerApp: 2},
		{Duration: time.Hour, MeanAppsPerDay: 5, MeanVMsPerApp: 0.5},
		{Duration: time.Hour, MeanAppsPerDay: 5, MeanVMsPerApp: 2, StableFraction: -1},
	}
	for i, c := range bad {
		if _, err := GenerateApps(c); err == nil {
			t.Errorf("bad app config %d accepted", i)
		}
	}
}

// Property: all generated VMs respect the arrival window and have positive
// resources for any sane config.
func TestPropGenerateWellFormed(t *testing.T) {
	f := func(seed uint64, rate8, stable8 uint8) bool {
		cfg := Config{
			Seed:                seed,
			Start:               start,
			Duration:            24 * time.Hour,
			MeanArrivalsPerHour: 1 + float64(rate8%40),
			StableFraction:      float64(stable8%101) / 100,
		}
		vms, err := Generate(cfg)
		if err != nil {
			return false
		}
		end := cfg.Start.Add(cfg.Duration)
		for _, v := range vms {
			if v.Cores <= 0 || v.MemoryGB <= 0 {
				return false
			}
			if v.Arrival.Before(cfg.Start) || !v.Arrival.Before(end) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
