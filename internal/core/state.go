package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/vbcloud/vb/internal/mip"
)

// Scheduler state export for daemon crash recovery. The persistent state is
// the commitment ledgers (capacity and planned-migration), plus the per-app
// warm solver cache: the warm basis determines which optimal vertex a
// replan lands on when the MIP has alternate optima, so a restored
// scheduler must carry it to keep replaying the exact decisions the
// uninterrupted process would have made. Metrics (Config.Obs) are run-
// scoped and deliberately not part of the state.

// schedulerState is the gob wire form of a Scheduler's mutable state.
type schedulerState struct {
	NumSites, Steps int
	Committed       [][]float64
	MigCommitted    []float64
	WarmTick        int64
	Warm            map[int]warmRec
}

// warmRec pairs one app's warm solver state with its LRU tick.
type warmRec struct {
	WS   *mip.WarmState
	Tick int64
}

// EncodeState serializes the scheduler's commitment ledgers and warm
// solver cache. The configuration is not included: restore by building a
// scheduler with the identical Config/numSites/steps and calling
// DecodeState on it.
func (s *Scheduler) EncodeState(w io.Writer) error {
	st := schedulerState{
		NumSites:     s.numSites,
		Steps:        s.steps,
		Committed:    s.committed,
		MigCommitted: s.migCommitted,
		WarmTick:     s.warmTick,
	}
	if s.warm != nil {
		st.Warm = make(map[int]warmRec, len(s.warm))
		for id, e := range s.warm {
			st.Warm[id] = warmRec{WS: e.ws, Tick: e.tick}
		}
	}
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("core: encoding scheduler state: %w", err)
	}
	return nil
}

// DecodeState restores state written by EncodeState into a scheduler built
// with the same shape (numSites, steps). It replaces the ledgers and warm
// cache wholesale. Corrupt input — truncated, bit-flipped, or otherwise
// undecodable — returns an error and leaves the scheduler untouched; a
// decoder panic (gob panics on some malformed type descriptors) is
// converted to an error rather than killing the process.
func (s *Scheduler) DecodeState(r io.Reader) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("core: decoding scheduler state: corrupt stream: %v", p)
		}
	}()
	var st schedulerState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("core: decoding scheduler state: %w", err)
	}
	if st.NumSites != s.numSites || st.Steps != s.steps {
		return fmt.Errorf("core: scheduler state is %d sites × %d steps, this scheduler is %d × %d",
			st.NumSites, st.Steps, s.numSites, s.steps)
	}
	if len(st.Committed) != s.numSites || len(st.MigCommitted) != s.steps {
		return fmt.Errorf("core: scheduler state ledgers malformed (%d site rows, %d mig steps)",
			len(st.Committed), len(st.MigCommitted))
	}
	for i, row := range st.Committed {
		if len(row) != s.steps {
			return fmt.Errorf("core: scheduler state site %d has %d steps, want %d", i, len(row), s.steps)
		}
	}
	s.committed = st.Committed
	s.migCommitted = st.MigCommitted
	s.warmTick = st.WarmTick
	s.warm = nil
	if st.Warm != nil {
		s.warm = make(map[int]*warmEntry, len(st.Warm))
		for id, rec := range st.Warm {
			ws := rec.WS
			if ws == nil {
				ws = &mip.WarmState{}
			}
			s.warm[id] = &warmEntry{ws: ws, tick: rec.Tick}
		}
	}
	return nil
}
