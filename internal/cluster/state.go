package cluster

import (
	"fmt"
	"sort"

	"github.com/vbcloud/vb/internal/workload"
)

// Site state export for daemon crash recovery. Placement is stateful in
// three ways that a restore must reproduce exactly: which server each VM
// sits on (best-fit consolidation depends on current per-server load), the
// pending queue order (launch order is oldest-first), and the round-robin
// eviction cursor. Serializing only "which VMs run here" would drift from
// the uninterrupted process on the first power drop.

// PendingVMState is one queued VM in wire form.
type PendingVMState struct {
	VM      workload.VM
	Evicted bool
}

// SiteState is the complete serializable state of a Site. It is a plain
// exported struct so callers can gob- or JSON-encode it as part of a larger
// snapshot.
type SiteState struct {
	Config      Config
	Powered     int
	EvictCursor int
	// Servers[i] holds the VMs on server i, sorted by ID so the encoding
	// is deterministic.
	Servers [][]workload.VM
	// Pending preserves queue order (launches are oldest-first).
	Pending []PendingVMState
}

// State captures the site's current state.
func (s *Site) State() SiteState {
	st := SiteState{
		Config:      s.cfg,
		Powered:     s.powered,
		EvictCursor: s.evictCursor,
		Servers:     make([][]workload.VM, len(s.servers)),
		Pending:     make([]PendingVMState, len(s.pending)),
	}
	for i := range s.servers {
		vms := make([]workload.VM, 0, len(s.servers[i].vms))
		for _, vm := range s.servers[i].vms {
			vms = append(vms, vm)
		}
		sort.Slice(vms, func(a, b int) bool { return vms[a].ID < vms[b].ID })
		st.Servers[i] = vms
	}
	for i, p := range s.pending {
		st.Pending[i] = PendingVMState{VM: p.vm, Evicted: p.evicted}
	}
	return st
}

// NewFromState rebuilds a Site from a captured state, revalidating server
// capacities and VM uniqueness so a corrupt snapshot fails loudly instead
// of producing an over-packed site.
func NewFromState(st SiteState) (*Site, error) {
	if err := st.Config.Validate(); err != nil {
		return nil, err
	}
	if len(st.Servers) != st.Config.Servers {
		return nil, fmt.Errorf("cluster: state has %d servers, config says %d", len(st.Servers), st.Config.Servers)
	}
	if st.Powered < 0 || st.Powered > st.Config.TotalCores() {
		return nil, fmt.Errorf("cluster: powered cores %d outside [0,%d]", st.Powered, st.Config.TotalCores())
	}
	if st.EvictCursor < 0 || st.EvictCursor >= st.Config.Servers {
		return nil, fmt.Errorf("cluster: evict cursor %d outside [0,%d)", st.EvictCursor, st.Config.Servers)
	}
	s := &Site{
		cfg:         st.Config,
		servers:     make([]server, st.Config.Servers),
		where:       make(map[int]int),
		powered:     st.Powered,
		evictCursor: st.EvictCursor,
	}
	for i := range s.servers {
		s.servers[i].vms = make(map[int]workload.VM, len(st.Servers[i]))
		for _, vm := range st.Servers[i] {
			if vm.Cores <= 0 || vm.MemoryGB <= 0 {
				return nil, fmt.Errorf("cluster: VM %d on server %d has non-positive size", vm.ID, i)
			}
			if _, dup := s.where[vm.ID]; dup {
				return nil, fmt.Errorf("cluster: VM %d appears twice in snapshot", vm.ID)
			}
			s.servers[i].allocCores += vm.Cores
			s.servers[i].allocMemGB += vm.MemoryGB
			s.servers[i].vms[vm.ID] = vm
			s.where[vm.ID] = i
			s.alloc += vm.Cores
		}
		if s.servers[i].allocCores > st.Config.CoresPerServer || s.servers[i].allocMemGB > st.Config.MemPerServerGB {
			return nil, fmt.Errorf("cluster: server %d over capacity in snapshot (%d cores, %d GB)",
				i, s.servers[i].allocCores, s.servers[i].allocMemGB)
		}
	}
	s.pending = make([]pendingVM, len(st.Pending))
	for i, p := range st.Pending {
		s.pending[i] = pendingVM{vm: p.VM, evicted: p.Evicted}
	}
	return s, nil
}
