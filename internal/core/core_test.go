package core

import (
	"math"
	"testing"
	"time"

	"github.com/vbcloud/vb/internal/obs"
)

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

func validConfig(p Policy) Config {
	return Config{Policy: p, PlanStep: 6 * time.Hour}
}

func demand(id int, cores, stable, memPerCore float64) AppDemand {
	return AppDemand{ID: id, Cores: cores, StableCores: stable, MemGBPerCore: memPerCore, Start: t0}
}

func TestPolicyString(t *testing.T) {
	want := map[Policy]string{Greedy: "Greedy", MIP: "MIP", MIP24h: "MIP-24h", MIPPeak: "MIP-peak"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy should still format")
	}
	if len(AllPolicies()) != 4 {
		t.Error("AllPolicies should list 4 policies")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := validConfig(MIP).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{},
		{Policy: MIP, PlanStep: -time.Hour},
		{Policy: MIP, PlanStep: time.Hour, Horizon: -time.Hour},
		{Policy: Policy(9), PlanStep: time.Hour},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.maxSites() != 3 {
		t.Error("default max sites")
	}
	if c.utilTarget() != 0.7 {
		t.Error("default util target")
	}
	if c.mipNodes() != 2000 {
		t.Error("default MIP nodes")
	}
	if c.peakWeight() != 0 {
		t.Error("non-peak policy should have zero peak weight")
	}
	c.Policy = MIPPeak
	if c.peakWeight() != 8 {
		t.Error("default peak weight")
	}
	c.PeakWeight = 2
	if c.peakWeight() != 2 {
		t.Error("explicit peak weight")
	}
}

func TestAppDemandValidate(t *testing.T) {
	if err := demand(1, 10, 7, 4).Validate(); err != nil {
		t.Fatalf("valid demand rejected: %v", err)
	}
	bad := []AppDemand{
		{ID: 1, Cores: 0, MemGBPerCore: 1},
		{ID: 1, Cores: 10, StableCores: -1, MemGBPerCore: 1},
		{ID: 1, Cores: 10, StableCores: 11, MemGBPerCore: 1},
		{ID: 1, Cores: 10, StableCores: 5, MemGBPerCore: 0},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad demand %d accepted", i)
		}
	}
}

func TestPlanHelpers(t *testing.T) {
	p := Plan{MemGBPerCore: 2, Alloc: [][]float64{{0, 5, 5, 2}, {0, 0, 3, 6}}}
	if p.SitesUsed() != 2 {
		t.Errorf("SitesUsed = %d", p.SitesUsed())
	}
	if got := p.MigrationGB(0); got != 0 {
		t.Errorf("MigrationGB(0) = %v, want 0", got)
	}
	// Step 1: site0 +5 cores -> 10 GB.
	if got := p.MigrationGB(1); got != 10 {
		t.Errorf("MigrationGB(1) = %v, want 10", got)
	}
	// Step 2: site1 +3 -> 6 GB (site0 unchanged).
	if got := p.MigrationGB(2); got != 6 {
		t.Errorf("MigrationGB(2) = %v, want 6", got)
	}
	// Step 3: site0 -3 (free), site1 +3 -> 6 GB.
	if got := p.MigrationGB(3); got != 6 {
		t.Errorf("MigrationGB(3) = %v, want 6", got)
	}
	empty := Plan{Alloc: [][]float64{{0, 0}}}
	if empty.SitesUsed() != 0 {
		t.Error("empty plan uses no sites")
	}
}

func TestNewSchedulerErrors(t *testing.T) {
	if _, err := NewScheduler(Config{}, 2, 10); err == nil {
		t.Error("invalid config should error")
	}
	if _, err := NewScheduler(validConfig(MIP), 0, 10); err == nil {
		t.Error("zero sites should error")
	}
	if _, err := NewScheduler(validConfig(MIP), 2, 0); err == nil {
		t.Error("zero steps should error")
	}
}

// constCap returns a CapacityFn with fixed per-site capacity.
func constCap(caps ...float64) CapacityFn {
	return func(site, step int) float64 { return caps[site] }
}

func TestPlaceErrors(t *testing.T) {
	s, err := NewScheduler(validConfig(MIP), 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	cap2 := constCap(100, 100)
	if _, err := s.Place(AppDemand{}, 0, 10, cap2, nil, nil, nil); err == nil {
		t.Error("invalid demand should error")
	}
	d := demand(1, 10, 10, 4)
	if _, err := s.Place(d, -1, 10, cap2, nil, nil, nil); err == nil {
		t.Error("negative nowStep should error")
	}
	if _, err := s.Place(d, 5, 5, cap2, nil, nil, nil); err == nil {
		t.Error("empty window should error")
	}
	if _, err := s.Place(d, 0, 10, cap2, nil, []float64{1}, nil); err == nil {
		t.Error("prev length mismatch should error")
	}
}

func TestPlacePureDegradableIsFree(t *testing.T) {
	s, err := NewScheduler(validConfig(MIP), 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	d := demand(1, 50, 0, 4) // no stable cores
	plan, err := s.Place(d, 0, 10, constCap(100, 100), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SitesUsed() != 0 {
		t.Error("pure-degradable app should not be scheduled")
	}
	if s.Committed(0, 0) != 0 || s.Committed(1, 0) != 0 {
		t.Error("pure-degradable app should not commit capacity")
	}
}

func TestPlaceGreedyPicksFreeSite(t *testing.T) {
	s, err := NewScheduler(validConfig(Greedy), 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	caps := constCap(50, 200, 100)
	plan, err := s.Place(demand(1, 20, 20, 4), 0, 8, caps, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 8; tt++ {
		if plan.Alloc[1][tt] != 20 {
			t.Fatalf("greedy should put all 20 cores on site 1 at step %d: %v", tt, plan.Alloc)
		}
	}
	// Ledger updated; second app sees reduced free capacity on site 1:
	// 200-20=180 still beats 100, so still site 1.
	plan2, err := s.Place(demand(2, 150, 150, 4), 0, 8, caps, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Alloc[1][0] != 150 {
		t.Errorf("second greedy app should also pick site 1: %v", plan2.Alloc)
	}
	// Third app: site 1 now has 200-170=30 free < site 2's 100.
	plan3, err := s.Place(demand(3, 10, 10, 4), 0, 8, caps, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan3.Alloc[2][0] != 10 {
		t.Errorf("third greedy app should pick site 2: %v", plan3.Alloc)
	}
}

func TestPlaceMIPPrefersStableSite(t *testing.T) {
	s, err := NewScheduler(validConfig(MIP), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Site 0: plenty of headline capacity but zero *stable* capacity (a
	// solar site); site 1: steady wind.
	pred := constCap(500, 200)
	stable := constCap(0, 200)
	plan, err := s.Place(demand(1, 100, 100, 4), 0, 8, pred, stable, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 8; tt++ {
		if plan.Alloc[1][tt] < 99.9 {
			t.Fatalf("MIP should place on the stable site: step %d alloc %v", tt, plan.Alloc)
		}
	}
}

func TestPlaceMIPConstantWhenFeasible(t *testing.T) {
	s, err := NewScheduler(validConfig(MIP), 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	cap3 := constCap(300, 300, 300)
	plan, err := s.Place(demand(1, 90, 90, 4), 0, 12, cap3, cap3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// With constant capacity, the plan must never migrate.
	for tt := 1; tt < 12; tt++ {
		if plan.MigrationGB(tt) > 1e-6 {
			t.Fatalf("constant-capacity plan migrates at step %d: %v GB", tt, plan.MigrationGB(tt))
		}
	}
	// Demand met each step.
	for tt := 0; tt < 12; tt++ {
		var sum float64
		for site := 0; site < 3; site++ {
			sum += plan.Alloc[site][tt]
		}
		if math.Abs(sum-90) > 1e-6 {
			t.Fatalf("step %d places %v cores, want 90", tt, sum)
		}
	}
}

func TestPlaceMIPMovesAroundPredictedDip(t *testing.T) {
	cfg := validConfig(MIP)
	s, err := NewScheduler(cfg, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Site 0 dies at steps 2-3 (within the 24h hard window: steps 0-3);
	// site 1 is small but steady.
	pred := func(site, step int) float64 {
		if site == 0 {
			if step == 2 || step == 3 {
				return 0
			}
			return 200
		}
		return 80
	}
	plan, err := s.Place(demand(1, 60, 60, 4), 0, 8, pred, pred, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// At the dip steps nothing may sit on site 0.
	for _, tt := range []int{2, 3} {
		if plan.Alloc[0][tt] > 1e-6 {
			t.Errorf("step %d keeps %v cores on the dead site", tt, plan.Alloc[0][tt])
		}
		if plan.Alloc[1][tt] < 59.9 {
			t.Errorf("step %d should shift demand to site 1: %v", tt, plan.Alloc[1][tt])
		}
	}
}

func TestPlaceMIPRespectsMaxSites(t *testing.T) {
	cfg := validConfig(MIP)
	cfg.MaxSitesPerApp = 1
	s, err := NewScheduler(cfg, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	cap3 := constCap(100, 100, 100)
	plan, err := s.Place(demand(1, 50, 50, 4), 0, 6, cap3, cap3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SitesUsed() > 1 {
		t.Errorf("MaxSitesPerApp=1 violated: %d sites used", plan.SitesUsed())
	}
}

func TestCommitUncommitRoundTrip(t *testing.T) {
	s, err := NewScheduler(validConfig(MIP), 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	cap2 := constCap(100, 100)
	plan, err := s.Place(demand(1, 40, 40, 4), 0, 6, cap2, cap2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var before float64
	for site := 0; site < 2; site++ {
		before += s.Committed(site, 3)
	}
	if math.Abs(before-40) > 1e-6 {
		t.Errorf("committed after place = %v, want 40", before)
	}
	s.Uncommit(plan, 0)
	for site := 0; site < 2; site++ {
		if math.Abs(s.Committed(site, 3)) > 1e-6 {
			t.Errorf("committed after uncommit = %v, want 0", s.Committed(site, 3))
		}
	}
}

func TestMIP24hHorizonTruncated(t *testing.T) {
	cfg := validConfig(MIP24h) // PlanStep 6h -> 4 steps per day
	s, err := NewScheduler(cfg, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity collapses at step 6 — beyond the 24h (4-step) horizon, so
	// the plan cannot see it and should hold the step-3 allocation.
	pred := func(site, step int) float64 {
		if site == 0 && step >= 6 {
			return 0
		}
		return 100
	}
	plan, err := s.Place(demand(1, 50, 50, 4), 0, 20, pred, pred, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 4; tt < 20; tt++ {
		for site := 0; site < 2; site++ {
			if plan.Alloc[site][tt] != plan.Alloc[site][3] {
				t.Fatalf("beyond-horizon alloc should hold step 3 value: step %d site %d", tt, site)
			}
		}
	}
}

func TestPlaceWithPrevChargesMoves(t *testing.T) {
	s, err := NewScheduler(validConfig(MIP), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	cap2 := constCap(100, 100)
	// App currently entirely on site 0; equal capacity means staying is
	// optimal (moving costs).
	prev := []float64{50, 0}
	plan, err := s.Place(demand(1, 50, 50, 4), 2, 8, cap2, cap2, prev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Alloc[0][2] < 49.9 {
		t.Errorf("replan should stay on site 0: %v", plan.Alloc[0][2])
	}
}

// TestPeakLedgerCoordination: with the peak objective, a second app whose
// move could stack on the first app's planned migration spike should
// schedule its own moves at other steps (the fleet-wide migration ledger).
func TestPeakLedgerCoordination(t *testing.T) {
	cfg := validConfig(MIPPeak)
	cfg.PeakWeight = 50 // make O2 dominate
	s, err := NewScheduler(cfg, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Site 0 dies at step 4 onward; site 1 is steady. Both apps must move
	// from 0 to 1 by step 4.
	pred := func(site, step int) float64 {
		if site == 0 {
			if step >= 4 {
				return 0
			}
			return 300
		}
		return 300
	}
	prev := []float64{100, 0}
	planA, err := s.Place(demand(1, 100, 100, 4), 0, 8, pred, pred, prev, nil)
	if err != nil {
		t.Fatal(err)
	}
	planB, err := s.Place(demand(2, 100, 100, 4), 0, 8, pred, pred, prev, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Total migration per step across both plans: the peak step should
	// carry at most ~one app's worth of traffic, not both stacked.
	peak := 0.0
	for tt := 1; tt < 8; tt++ {
		v := planA.MigrationGB(tt) + planB.MigrationGB(tt)
		if v > peak {
			peak = v
		}
	}
	if peak > 100*4+1e-6 {
		t.Errorf("peak step traffic = %v GB, want apps to spread (<= one app = 400)", peak)
	}
}

// TestMIPOversubscribesGracefully: when stable capacity is scarce but plain
// capacity suffices, the plan places everything (soft constraint) instead
// of leaving demand short.
func TestMIPOversubscribesGracefully(t *testing.T) {
	s, err := NewScheduler(validConfig(MIP), 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	pred := constCap(200, 200) // plain forecast: plenty
	stable := constCap(20, 20) // stable level: tiny
	plan, err := s.Place(demand(1, 150, 150, 4), 0, 6, pred, stable, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 6; tt++ {
		var sum float64
		for site := 0; site < 2; site++ {
			sum += plan.Alloc[site][tt]
		}
		if sum < 150-1e-6 {
			t.Fatalf("step %d places %v cores of 150: soft capacity should not refuse demand", tt, sum)
		}
	}
}

// TestSolverWorkersObsCounters pins the solver-kernel observability wiring:
// a parallel-solver scheduler must report basis counters through the
// registry, and its placements must match the serial scheduler's.
func TestSolverWorkersObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := validConfig(MIP)
	cfg.SolverWorkers = 2
	cfg.Obs = reg
	s, err := NewScheduler(cfg, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	pred := constCap(500, 200)
	plan, err := s.Place(demand(1, 100, 100, 4), 0, 8, pred, pred, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	serial, err := NewScheduler(validConfig(MIP), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.Place(demand(1, 100, 100, 4), 0, 8, pred, pred, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for site := range plan.Alloc {
		for tt := range plan.Alloc[site] {
			if math.Abs(plan.Alloc[site][tt]-want.Alloc[site][tt]) > 1e-6 {
				t.Fatalf("parallel plan diverges at site %d step %d: %v vs %v",
					site, tt, plan.Alloc[site][tt], want.Alloc[site][tt])
			}
		}
	}

	if got := reg.Counter("mip.nodes.parallel"); got <= 0 {
		t.Errorf("mip.nodes.parallel = %v, want > 0", got)
	}
	if got := reg.Counter("mip.nodes"); got <= 0 {
		t.Errorf("mip.nodes = %v, want > 0", got)
	}
	// The refactor counter must exist even when no refactorization fired,
	// and the eta-chain gauge must have recorded one sample per solve.
	if _, ok := reg.Histogram("lp.eta.chain_len"); !ok {
		t.Error("lp.eta.chain_len histogram not recorded")
	}
	if got := reg.Counter("lp.refactor.count"); got < 0 {
		t.Errorf("lp.refactor.count = %v, want >= 0", got)
	}
}
