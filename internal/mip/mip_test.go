package mip

import (
	"math"
	"testing"

	"github.com/vbcloud/vb/internal/lp"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-5 }

func solveOK(t *testing.T, p Problem) Solution {
	t.Helper()
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	return s
}

func TestPureLPPassThrough(t *testing.T) {
	s := solveOK(t, Problem{
		Problem: lp.Problem{
			NumVars:   2,
			Objective: []float64{3, 5},
			Maximize:  true,
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 0}, Sense: lp.LE, RHS: 4},
				{Coeffs: []float64{0, 2}, Sense: lp.LE, RHS: 12},
				{Coeffs: []float64{3, 2}, Sense: lp.LE, RHS: 18},
			},
		},
	})
	if !approx(s.Objective, 36) {
		t.Errorf("obj = %v, want 36", s.Objective)
	}
	if !s.Proven {
		t.Error("pure LP should be proven")
	}
}

// Classic IP where LP relaxation is fractional:
// max x + y s.t. 2x + 2y <= 3, x,y integer -> optimum 1 (LP gives 1.5).
func TestIntegerRounding(t *testing.T) {
	s := solveOK(t, Problem{
		Problem: lp.Problem{
			NumVars:   2,
			Objective: []float64{1, 1},
			Maximize:  true,
			Constraints: []lp.Constraint{
				{Coeffs: []float64{2, 2}, Sense: lp.LE, RHS: 3},
			},
		},
		Integer: []bool{true, true},
	})
	if !approx(s.Objective, 1) {
		t.Errorf("obj = %v, want 1 (LP relaxation would give 1.5)", s.Objective)
	}
	for i, v := range s.X {
		if math.Abs(v-math.Round(v)) > 1e-9 {
			t.Errorf("X[%d] = %v not integral", i, v)
		}
	}
}

// Knapsack: items (value, weight): (10,5), (13,6), (7,4), capacity 10.
// Best: items 2+3 = 20 (weight exactly 10). LP relaxation takes fractions.
func TestKnapsack(t *testing.T) {
	s := solveOK(t, Problem{
		Problem: lp.Problem{
			NumVars:   3,
			Objective: []float64{10, 13, 7},
			Maximize:  true,
			Constraints: []lp.Constraint{
				{Coeffs: []float64{5, 6, 4}, Sense: lp.LE, RHS: 10},
				// Binary upper bounds.
				{Coeffs: []float64{1, 0, 0}, Sense: lp.LE, RHS: 1},
				{Coeffs: []float64{0, 1, 0}, Sense: lp.LE, RHS: 1},
				{Coeffs: []float64{0, 0, 1}, Sense: lp.LE, RHS: 1},
			},
		},
		Integer: []bool{true, true, true},
	})
	if !approx(s.Objective, 20) {
		t.Errorf("knapsack = %v, want 20", s.Objective)
	}
	if !approx(s.X[0], 0) || !approx(s.X[1], 1) || !approx(s.X[2], 1) {
		t.Errorf("selection = %v, want [0 1 1]", s.X)
	}
}

func TestInfeasibleIP(t *testing.T) {
	// 2x == 3 with x integer is infeasible (LP feasible at 1.5).
	s, err := Solve(Problem{
		Problem: lp.Problem{
			NumVars:   1,
			Objective: []float64{1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{2}, Sense: lp.EQ, RHS: 3},
			},
		},
		Integer: []bool{true},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestUnboundedIP(t *testing.T) {
	s, err := Solve(Problem{
		Problem: lp.Problem{
			NumVars:   1,
			Objective: []float64{1},
			Maximize:  true,
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1}, Sense: lp.GE, RHS: 0},
			},
		},
		Integer: []bool{true},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 2x + y, x integer, y continuous; x <= 2.5, x + y <= 4.
	// x=2 (integer), y=2 -> 6. Pure LP would give x=2.5, y=1.5 -> 6.5.
	s := solveOK(t, Problem{
		Problem: lp.Problem{
			NumVars:   2,
			Objective: []float64{2, 1},
			Maximize:  true,
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 0}, Sense: lp.LE, RHS: 2.5},
				{Coeffs: []float64{1, 1}, Sense: lp.LE, RHS: 4},
			},
		},
		Integer: []bool{true, false},
	})
	if !approx(s.Objective, 6) || !approx(s.X[0], 2) || !approx(s.X[1], 2) {
		t.Errorf("got obj=%v x=%v, want 6 (2,2)", s.Objective, s.X)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(Problem{}, Options{}); err == nil {
		t.Error("empty problem should error")
	}
	if _, err := Solve(Problem{
		Problem: lp.Problem{NumVars: 1, Objective: []float64{1}},
		Integer: []bool{true, true},
	}, Options{}); err == nil {
		t.Error("too many integrality flags should error")
	}
}

func TestNodeLimit(t *testing.T) {
	// A problem needing branching, solved with MaxNodes=1: not proven.
	s, err := Solve(Problem{
		Problem: lp.Problem{
			NumVars:   2,
			Objective: []float64{1, 1},
			Maximize:  true,
			Constraints: []lp.Constraint{
				{Coeffs: []float64{2, 2}, Sense: lp.LE, RHS: 3},
			},
		},
		Integer: []bool{true, true},
	}, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Proven {
		t.Error("truncated search should not be proven")
	}
	if s.Nodes != 1 {
		t.Errorf("nodes = %d, want 1", s.Nodes)
	}
}

func TestGapTermination(t *testing.T) {
	// With a huge allowed gap, search stops at the first incumbent.
	s, err := Solve(Problem{
		Problem: lp.Problem{
			NumVars:   3,
			Objective: []float64{10, 13, 7},
			Maximize:  true,
			Constraints: []lp.Constraint{
				{Coeffs: []float64{5, 6, 4}, Sense: lp.LE, RHS: 10},
				{Coeffs: []float64{1, 0, 0}, Sense: lp.LE, RHS: 1},
				{Coeffs: []float64{0, 1, 0}, Sense: lp.LE, RHS: 1},
				{Coeffs: []float64{0, 0, 1}, Sense: lp.LE, RHS: 1},
			},
		},
		Integer: []bool{true, true, true},
	}, Options{Gap: 10})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	// Any feasible solution acceptable at this gap; objective in [0, 20].
	if s.Objective < 0 || s.Objective > 20+1e-6 {
		t.Errorf("objective %v outside feasible range", s.Objective)
	}
}

// Scheduler-shaped problem: assign an app's 10 VMs across 3 sites with
// binary "site used" indicators and a minimax peak term. Site capacities 6,
// 6, 6; using a site costs a fixed overhead of 2 in the objective; peak
// allocation t is also minimized. Optimal: use 2 sites (5+5), t=5,
// obj = 2*2 + 5 = 9 (vs 3 sites: 6+4s... 3 sites: overhead 6 + t>=4 -> 10).
func TestSchedulerShape(t *testing.T) {
	// Vars: x1,x2,x3 (alloc), y1,y2,y3 (binary used), t (peak).
	bigM := 6.0
	s := solveOK(t, Problem{
		Problem: lp.Problem{
			NumVars:   7,
			Objective: []float64{0, 0, 0, 2, 2, 2, 1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 1, 1, 0, 0, 0, 0}, Sense: lp.EQ, RHS: 10},
				// Capacity + linking: x_i <= 6*y_i.
				{Coeffs: []float64{1, 0, 0, -bigM, 0, 0, 0}, Sense: lp.LE, RHS: 0},
				{Coeffs: []float64{0, 1, 0, 0, -bigM, 0, 0}, Sense: lp.LE, RHS: 0},
				{Coeffs: []float64{0, 0, 1, 0, 0, -bigM, 0}, Sense: lp.LE, RHS: 0},
				// Peak: x_i <= t.
				{Coeffs: []float64{1, 0, 0, 0, 0, 0, -1}, Sense: lp.LE, RHS: 0},
				{Coeffs: []float64{0, 1, 0, 0, 0, 0, -1}, Sense: lp.LE, RHS: 0},
				{Coeffs: []float64{0, 0, 1, 0, 0, 0, -1}, Sense: lp.LE, RHS: 0},
				// Binary bounds.
				{Coeffs: []float64{0, 0, 0, 1, 0, 0, 0}, Sense: lp.LE, RHS: 1},
				{Coeffs: []float64{0, 0, 0, 0, 1, 0, 0}, Sense: lp.LE, RHS: 1},
				{Coeffs: []float64{0, 0, 0, 0, 0, 1, 0}, Sense: lp.LE, RHS: 1},
			},
		},
		Integer: []bool{false, false, false, true, true, true, false},
	})
	if !approx(s.Objective, 9) {
		t.Errorf("scheduler-shape optimum = %v, want 9 (X=%v)", s.Objective, s.X)
	}
	used := 0
	for i := 3; i < 6; i++ {
		if s.X[i] > 0.5 {
			used++
		}
	}
	if used != 2 {
		t.Errorf("sites used = %d, want 2", used)
	}
}
