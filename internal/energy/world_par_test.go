package energy

import (
	"runtime"
	"testing"
	"time"

	"github.com/vbcloud/vb/internal/trace"
)

// generateWith runs World.Generate over the 12-site fleet with the given
// worker count and GOMAXPROCS setting, restoring GOMAXPROCS afterwards.
func generateWith(t *testing.T, workers, procs int) []trace.Series {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	w := NewWorld(42)
	w.Workers = workers
	out, err := w.Generate(EuropeanFleet(0), start, 15*time.Minute, 14*96)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestGenerateParallelDeterminism asserts the tentpole guarantee: the
// fanned-out per-site pass produces bit-identical series for every worker
// count and GOMAXPROCS setting, because each site draws only from its own
// name-keyed sub-RNG after the shared anchor pass.
func TestGenerateParallelDeterminism(t *testing.T) {
	serial := generateWith(t, 1, 1)
	cases := []struct {
		name           string
		workers, procs int
	}{
		{"workers=2", 2, runtime.NumCPU()},
		{"workers=NumCPU", runtime.NumCPU(), runtime.NumCPU()},
		{"workers=default", 0, runtime.NumCPU()},
		{"workers=default,GOMAXPROCS=1", 0, 1},
		{"workers=32", 32, runtime.NumCPU()},
	}
	for _, tc := range cases {
		got := generateWith(t, tc.workers, tc.procs)
		if len(got) != len(serial) {
			t.Fatalf("%s: %d series, want %d", tc.name, len(got), len(serial))
		}
		for si := range got {
			if !got[si].Start.Equal(serial[si].Start) || got[si].Step != serial[si].Step {
				t.Fatalf("%s: series %d time base differs", tc.name, si)
			}
			for i := range got[si].Values {
				if got[si].Values[i] != serial[si].Values[i] {
					t.Fatalf("%s: series %d sample %d: %v != %v (parallel output must be bit-identical)",
						tc.name, si, i, got[si].Values[i], serial[si].Values[i])
				}
			}
		}
	}
}

// TestBestWindowUnalignedFinalStart is the boundary regression for the
// quarter-window stride: when the series length is not hop-aligned, the
// final valid start must still be searched.
func TestBestWindowUnalignedFinalStart(t *testing.T) {
	cases := []struct {
		name    string
		n       int // series length in hours
		windowH int
		wantIdx int
	}{
		// k=8, hop=2, last=93: 93%2 != 0, reachable only via the explicit
		// final evaluation.
		{"unaligned final start", 101, 8, 93},
		// k=8, hop=2, last=92: aligned, the stride reaches it naturally.
		{"aligned final start", 100, 8, 92},
		// k=3, hop=0->1: every start visited.
		{"hop clamped to 1", 10, 3, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := trace.New(start, time.Hour, tc.n)
			// Flat zero power except a full-power plateau filling exactly the
			// final window: its stable fraction is 1, every other window < 1.
			for i := tc.n - tc.windowH; i < tc.n; i++ {
				s.Values[i] = 5
			}
			idx, frac, err := BestWindow([]trace.Series{s}, time.Duration(tc.windowH)*time.Hour)
			if err != nil {
				t.Fatal(err)
			}
			if idx != tc.wantIdx {
				t.Errorf("best window start = %d, want %d (final-start handling)", idx, tc.wantIdx)
			}
			if frac != 1 {
				t.Errorf("stable fraction = %v, want 1", frac)
			}
		})
	}
}
