package sim

import (
	"strings"
	"testing"
	"time"

	"github.com/vbcloud/vb/internal/core"
	"github.com/vbcloud/vb/internal/energy"
	"github.com/vbcloud/vb/internal/forecast"
	"github.com/vbcloud/vb/internal/trace"
	"github.com/vbcloud/vb/internal/workload"
)

var t0 = time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)

const planStep = 6 * time.Hour

// trioInput builds a 7-day three-site input with realistic power and
// forecasts plus a synthetic app mix. Shared across tests.
func trioInput(t *testing.T, days int, appsPerDay float64) Input {
	t.Helper()
	w := energy.NewWorld(42)
	cfgs := energy.EuropeanTrio()
	fine, err := w.Generate(cfgs, t0, time.Hour, days*24)
	if err != nil {
		t.Fatal(err)
	}
	fc := forecast.New(7)
	actual := make([]trace.Series, len(cfgs))
	bundles := make([]*forecast.Bundle, len(cfgs))
	for i := range cfgs {
		a, err := fine[i].WindowMin(planStep)
		if err != nil {
			t.Fatal(err)
		}
		actual[i] = a
		bundles[i], err = fc.NewBundle(a, cfgs[i].Source, cfgs[i].Name)
		if err != nil {
			t.Fatal(err)
		}
		if err := bundles[i].UseFixedHorizon(forecast.HorizonDay); err != nil {
			t.Fatal(err)
		}
	}
	apps, err := workload.GenerateApps(workload.AppConfig{
		Seed:           11,
		Start:          t0,
		Duration:       time.Duration(days) * 24 * time.Hour,
		MeanAppsPerDay: appsPerDay,
		MeanVMsPerApp:  60,
		StableFraction: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	demands := make([]core.AppDemand, 0, len(apps))
	for _, a := range apps {
		demands = append(demands, core.AppDemand{
			ID:           a.ID,
			Cores:        float64(a.TotalCores()),
			StableCores:  float64(a.StableCores()),
			MemGBPerCore: float64(a.TotalMemoryGB()) / float64(a.TotalCores()),
			Start:        a.Arrival,
		})
	}
	return Input{Actual: actual, Bundles: bundles, TotalCores: 28000, Apps: demands}
}

func simConfig(p core.Policy) core.Config {
	return core.Config{Policy: p, PlanStep: planStep, UtilTarget: 0.7, MaxSitesPerApp: 3}
}

func TestInputValidate(t *testing.T) {
	good := trioInput(t, 2, 4)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	bad := good
	bad.Actual = nil
	if err := bad.Validate(); err == nil {
		t.Error("no sites should error")
	}
	bad = good
	bad.Bundles = bad.Bundles[:1]
	if err := bad.Validate(); err == nil {
		t.Error("bundle mismatch should error")
	}
	bad = good
	bad.TotalCores = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero cores should error")
	}
	bad = good
	bad.Actual = append([]trace.Series(nil), good.Actual...)
	bad.Actual[1] = bad.Actual[1].Slice(0, 2)
	if err := bad.Validate(); err == nil {
		t.Error("length mismatch should error")
	}
	bad = good
	bad.Apps = []core.AppDemand{{}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid app should error")
	}
	bad = good
	bad.Apps = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty app list should error")
	} else if !strings.Contains(err.Error(), "no applications") {
		t.Errorf("empty app list error %q should mention no applications", err)
	}
}

func TestRunErrors(t *testing.T) {
	in := trioInput(t, 2, 4)
	if _, err := Run(core.Config{}, in); err == nil {
		t.Error("bad config should error")
	}
	cfg := simConfig(core.MIP)
	cfg.PlanStep = time.Hour // mismatches power step
	if _, err := Run(cfg, in); err == nil {
		t.Error("plan step mismatch should error")
	}
	bad := in
	bad.Actual = nil
	if _, err := Run(simConfig(core.MIP), bad); err == nil {
		t.Error("invalid input should error")
	}
}

func TestRunDeterministic(t *testing.T) {
	in := trioInput(t, 3, 4)
	a, err := Run(simConfig(core.MIP), in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(simConfig(core.MIP), in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Transfer.Values {
		if a.Transfer.Values[i] != b.Transfer.Values[i] {
			t.Fatalf("step %d differs across identical runs", i)
		}
	}
}

func TestRunConstantPowerNoTraffic(t *testing.T) {
	in := trioInput(t, 3, 4)
	// Replace power with constant full output; forecasts of a constant are
	// noisy but the *actual* capacity never drops, and plans on constant
	// capacity never move.
	for i := range in.Actual {
		cs := trace.New(in.Actual[i].Start, in.Actual[i].Step, in.Actual[i].Len())
		for j := range cs.Values {
			cs.Values[j] = 1
		}
		in.Actual[i] = cs
		b, err := forecast.New(3).NewBundle(cs, energy.Wind, "const")
		if err != nil {
			t.Fatal(err)
		}
		if err := b.UseFixedHorizon(forecast.HorizonDay); err != nil {
			t.Fatal(err)
		}
		in.Bundles[i] = b
	}
	res, err := Run(simConfig(core.MIP), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.ForcedGB != 0 {
		t.Errorf("constant power forced %v GB", res.ForcedGB)
	}
	if res.PausedStableCoreSteps != 0 {
		t.Errorf("constant power paused %v core-steps", res.PausedStableCoreSteps)
	}
}

// TestTable1Shape verifies the paper's Table 1 orderings on a 7-day run:
// MIP beats Greedy on total migration overhead by >30%, the MIP variants
// land within ~15% of each other, and MIP-peak has the lowest p99, peak and
// standard deviation while migrating most often (lowest zero fraction).
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("7-day 4-policy run in -short mode")
	}
	in := trioInput(t, 7, 6)
	results := map[core.Policy]Result{}
	for _, pol := range core.AllPolicies() {
		res, err := Run(simConfig(pol), in)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		results[pol] = res
	}
	gTot, gP99, _, gStd, err := results[core.Greedy].Summary()
	if err != nil {
		t.Fatal(err)
	}
	mTot, _, _, _, err := results[core.MIP].Summary()
	if err != nil {
		t.Fatal(err)
	}
	pTot, pP99, _, pStd, err := results[core.MIPPeak].Summary()
	if err != nil {
		t.Fatal(err)
	}
	hTot, _, _, _, err := results[core.MIP24h].Summary()
	if err != nil {
		t.Fatal(err)
	}

	if mTot > 0.7*gTot {
		t.Errorf("MIP total %v vs greedy %v: want >30%% improvement", mTot, gTot)
	}
	// MIP variants within 25% of each other (paper: 1-12.5%).
	lo, hi := mTot, mTot
	for _, v := range []float64{pTot, hTot} {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 1.4*lo {
		t.Errorf("MIP variants spread too wide: [%v, %v]", lo, hi)
	}
	// MIP-peak: much lower p99 and std than greedy (paper: 4.2x and 2.7x).
	if pP99 > 0.6*gP99 {
		t.Errorf("MIP-peak p99 %v vs greedy %v: want large reduction", pP99, gP99)
	}
	if pStd > 0.6*gStd {
		t.Errorf("MIP-peak std %v vs greedy %v: want large reduction", pStd, gStd)
	}
	// MIP-peak migrates most often (lowest zero fraction, paper 74% vs 81%
	// greedy / 94% MIP).
	if results[core.MIPPeak].ZeroFraction() >= results[core.Greedy].ZeroFraction() {
		t.Errorf("MIP-peak zeros %v should be below greedy %v",
			results[core.MIPPeak].ZeroFraction(), results[core.Greedy].ZeroFraction())
	}
	if results[core.MIPPeak].ZeroFraction() >= results[core.MIP].ZeroFraction() {
		t.Errorf("MIP-peak zeros %v should be below MIP %v",
			results[core.MIPPeak].ZeroFraction(), results[core.MIP].ZeroFraction())
	}
	// Availability: MIP policies must not pause more stable cores than
	// greedy does.
	if results[core.MIP].PausedStableCoreSteps > results[core.Greedy].PausedStableCoreSteps+1e-6 {
		t.Errorf("MIP pauses more than greedy: %v vs %v",
			results[core.MIP].PausedStableCoreSteps, results[core.Greedy].PausedStableCoreSteps)
	}
}

func TestGreedyHasNoPlannedTraffic(t *testing.T) {
	in := trioInput(t, 4, 5)
	res, err := Run(simConfig(core.Greedy), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlannedGB != 0 {
		t.Errorf("greedy planned traffic = %v, want 0 (purely reactive)", res.PlannedGB)
	}
	if res.ForcedGB == 0 {
		t.Error("a week of renewables should force some greedy migrations")
	}
}

func TestSummaryAndZeroFraction(t *testing.T) {
	r := Result{Transfer: trace.FromValues(t0, planStep, []float64{0, 10, 0, 30})}
	total, p99, peak, std, err := r.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if total != 40 || peak != 30 {
		t.Errorf("total=%v peak=%v", total, peak)
	}
	if p99 <= 0 || std <= 0 {
		t.Errorf("p99=%v std=%v", p99, std)
	}
	if r.ZeroFraction() != 0.5 {
		t.Errorf("ZeroFraction = %v", r.ZeroFraction())
	}
	var empty Result
	if _, _, _, _, err := empty.Summary(); err == nil {
		t.Error("empty result Summary should error")
	}
}

// TestPerSiteBreakdownConsistent checks that the per-site in/out series
// both sum to the total transfer (each move is counted once on each side).
func TestPerSiteBreakdownConsistent(t *testing.T) {
	in := trioInput(t, 4, 5)
	for _, pol := range []core.Policy{core.Greedy, core.MIP24h} {
		res, err := Run(simConfig(pol), in)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.InBySite) != len(in.Actual) || len(res.OutBySite) != len(in.Actual) {
			t.Fatalf("%v: per-site series missing", pol)
		}
		for step := 0; step < res.Transfer.Len(); step++ {
			var inSum, outSum float64
			for s := range res.InBySite {
				inSum += res.InBySite[s].Values[step]
				outSum += res.OutBySite[s].Values[step]
			}
			if diff := inSum - res.Transfer.Values[step]; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("%v step %d: in sum %v != transfer %v", pol, step, inSum, res.Transfer.Values[step])
			}
			if diff := outSum - res.Transfer.Values[step]; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("%v step %d: out sum %v != transfer %v", pol, step, outSum, res.Transfer.Values[step])
			}
		}
	}
}

// TestAvailabilityAccounting checks per-app availability bookkeeping.
func TestAvailabilityAccounting(t *testing.T) {
	in := trioInput(t, 4, 5)
	res, err := Run(simConfig(core.MIP), in)
	if err != nil {
		t.Fatal(err)
	}
	av := res.MeanAvailability()
	if av < 0.5 || av > 1 {
		t.Fatalf("mean availability = %v, want high", av)
	}
	for id, d := range res.PerAppDemand {
		if d <= 0 {
			t.Fatalf("app %d demand %v", id, d)
		}
		a := res.Availability(id)
		if a < 0 || a > 1 {
			t.Fatalf("app %d availability %v outside [0,1]", id, a)
		}
	}
	// Unknown app: trivially available.
	if res.Availability(-1) != 1 {
		t.Error("unknown app should report availability 1")
	}
	var empty Result
	if empty.MeanAvailability() != 1 {
		t.Error("empty result should report availability 1")
	}
}
