package vb

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/vbcloud/vb/internal/cluster"
	"github.com/vbcloud/vb/internal/energy"
	"github.com/vbcloud/vb/internal/forecast"
	"github.com/vbcloud/vb/internal/par"
	"github.com/vbcloud/vb/internal/stats"
	"github.com/vbcloud/vb/internal/trace"
	"github.com/vbcloud/vb/internal/wan"
	"github.com/vbcloud/vb/internal/workload"
)

// DefaultSeed is the seed used by the experiment runners so that every
// figure and table regenerates identically.
const DefaultSeed = 42

// experimentStart anchors all experiment timelines.
var experimentStart = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

// Fig2aResult holds the 4-day solar and wind sample of Figure 2a.
type Fig2aResult struct {
	Solar, Wind Series
	// SolarDailyPeaks are the per-day solar maxima, showing overcast vs
	// sunny days (the paper contrasts a 3.5% overcast peak with 77% the
	// following day).
	SolarDailyPeaks []float64
	// MinWind and MaxWind summarize the wind range (rarely zero).
	MinWind, MaxWind float64
}

// Fig2aPowerVariation regenerates Figure 2a: four days of normalized solar
// and wind production at 15-minute resolution.
func Fig2aPowerVariation(seed uint64) (Fig2aResult, error) {
	w := energy.NewWorld(seed)
	sites := []SiteConfig{
		{Name: "BE-solar", Source: Solar, Latitude: 50.8, Longitude: 4.4, CapacityMW: energy.DefaultCapacityMW},
		{Name: "BE-wind", Source: Wind, Latitude: 51.2, Longitude: 2.9, CapacityMW: energy.DefaultCapacityMW},
	}
	// A year is generated and the most illustrative 4-day window is
	// selected: the one maximizing the spread of daily solar peaks, which
	// is how the paper's May 3-7 sample was evidently chosen.
	year, err := w.Generate(sites, experimentStart, 15*time.Minute, 365*96)
	if err != nil {
		return Fig2aResult{}, err
	}
	solarYear, windYear := year[0], year[1]
	bestDay := bestSpreadWindow(solarYear, 365, 4, 96)
	res := Fig2aResult{
		Solar: solarYear.Slice(bestDay*96, (bestDay+4)*96),
		Wind:  windYear.Slice(bestDay*96, (bestDay+4)*96),
	}
	for k := 0; k < 4; k++ {
		res.SolarDailyPeaks = append(res.SolarDailyPeaks, res.Solar.Slice(k*96, (k+1)*96).Max())
	}
	res.MinWind, res.MaxWind = res.Wind.Min(), res.Wind.Max()
	return res, nil
}

// bestSpreadWindow scans every win-day window of a days-day series sampled
// spd times per day and returns the start day of the window maximizing the
// spread (max - min) of daily maxima. The loop bound d+win <= days admits
// the final window (start day days-win); an earlier version compared
// against days-1 and silently never considered it.
func bestSpreadWindow(s Series, days, win, spd int) int {
	bestDay, bestSpread := 0, -1.0
	for d := 0; d+win <= days; d++ {
		lo, hi := 2.0, -1.0
		for k := 0; k < win; k++ {
			p := s.Slice((d+k)*spd, (d+k+1)*spd).Max()
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
		if spread := hi - lo; spread > bestSpread {
			bestSpread, bestDay = spread, d
		}
	}
	return bestDay
}

// Report renders the figure as text.
func (r Fig2aResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2a: 4-day power variation (start %s)\n", r.Solar.Start.Format("2006-01-02"))
	for i, p := range r.SolarDailyPeaks {
		fmt.Fprintf(&b, "  solar day %d peak: %5.1f%% of capacity\n", i+1, p*100)
	}
	fmt.Fprintf(&b, "  wind range: %.1f%% - %.1f%% of capacity\n", r.MinWind*100, r.MaxWind*100)
	return b.String()
}

// Fig2bResult holds the one-year power CDF statistics of Figure 2b.
type Fig2bResult struct {
	SolarCDF, WindCDF []Point
	// Headline statistics the paper reads off the CDF.
	SolarZeroFraction float64 // > 0.5 (nights)
	WindMedian        float64 // <= ~0.2 of peak
	SolarP99OverP75   float64 // ~4x
	WindP99OverP75    float64 // ~2x
}

// Fig2bPowerCDF regenerates Figure 2b: the CDF of normalized power over a
// year for one solar and one wind site.
func Fig2bPowerCDF(seed uint64) (Fig2bResult, error) {
	w := energy.NewWorld(seed)
	sites := []SiteConfig{
		{Name: "BE-solar", Source: Solar, Latitude: 50.8, Longitude: 4.4, CapacityMW: energy.DefaultCapacityMW},
		{Name: "BE-wind", Source: Wind, Latitude: 51.2, Longitude: 2.9, CapacityMW: energy.DefaultCapacityMW},
	}
	year, err := w.Generate(sites, experimentStart, 15*time.Minute, 365*96)
	if err != nil {
		return Fig2bResult{}, err
	}
	solar, wind := year[0], year[1]
	sc, err := stats.NewCDF(solar.Values)
	if err != nil {
		return Fig2bResult{}, err
	}
	wc, err := stats.NewCDF(wind.Values)
	if err != nil {
		return Fig2bResult{}, err
	}
	sq, err := stats.Quantiles(solar.Values, 75, 99)
	if err != nil {
		return Fig2bResult{}, err
	}
	wq, err := stats.Quantiles(wind.Values, 50, 75, 99)
	if err != nil {
		return Fig2bResult{}, err
	}
	return Fig2bResult{
		SolarCDF:          sc.Points(50),
		WindCDF:           wc.Points(50),
		SolarZeroFraction: solar.FractionZero(1e-9),
		WindMedian:        wq[0],
		SolarP99OverP75:   stats.Ratio(sq[1], sq[0]),
		WindP99OverP75:    stats.Ratio(wq[2], wq[1]),
	}, nil
}

// Report renders the figure as text.
func (r Fig2bResult) Report() string {
	var b strings.Builder
	b.WriteString("Fig 2b: 1-year CDF of normalized power\n")
	fmt.Fprintf(&b, "  solar zero fraction: %.2f (paper: >0.5)\n", r.SolarZeroFraction)
	fmt.Fprintf(&b, "  wind median:         %.2f (paper: <=0.2)\n", r.WindMedian)
	fmt.Fprintf(&b, "  solar p99/p75:       %.1fx (paper: ~4x)\n", r.SolarP99OverP75)
	fmt.Fprintf(&b, "  wind p99/p75:        %.1fx (paper: ~2x)\n", r.WindP99OverP75)
	return b.String()
}

// Fig3Result holds the multi-site aggregation analysis of Figures 3a/3b.
type Fig3Result struct {
	// WindowStart is the chosen complementary 3-day window.
	WindowStart time.Time
	// Power holds the per-site MW series within the window (NO, UK, PT).
	Power []Series
	// Combos is the stable/variable breakdown of every site combination
	// (Fig 3b).
	Combos []ComboResult
	// CoVImprovementUK is cov(NO)/cov(NO+UK) — the paper reports 3.7x.
	CoVImprovementUK float64
	// CoVImprovementPT is cov(NO+UK)/cov(NO+UK+PT) — the paper reports
	// 2.3x.
	CoVImprovementPT float64
	// TopUp is the 4,000 MWh grid-purchase plan for the trio (Fig 3a's
	// shaded area): the paper stabilizes 8,000 MWh of variable energy.
	TopUp TopUp
}

// Fig3Complementary regenerates Figures 3a and 3b: complementary generation
// across the NO/UK/PT trio in the best 3-day window of a year, the
// stable/variable split of every combination, and the grid top-up plan.
func Fig3Complementary(seed uint64) (Fig3Result, error) {
	w := energy.NewWorld(seed)
	sites := energy.EuropeanTrio()
	year, err := w.GeneratePower(sites, experimentStart, time.Hour, 365*24)
	if err != nil {
		return Fig3Result{}, err
	}
	idx, _, err := energy.BestWindow(year, 72*time.Hour)
	if err != nil {
		return Fig3Result{}, err
	}
	win := make([]Series, len(year))
	for i := range year {
		win[i] = year[i].Slice(idx, idx+72)
	}
	names := []string{"NO", "UK", "PT"}
	combos, err := energy.Combinations(names, win, 72*time.Hour)
	if err != nil {
		return Fig3Result{}, err
	}
	noUK, err := trace.Add(win[0], win[1])
	if err != nil {
		return Fig3Result{}, err
	}
	all, err := trace.Add(noUK, win[2])
	if err != nil {
		return Fig3Result{}, err
	}
	topUp, err := energy.PlanTopUp(all, 4000)
	if err != nil {
		return Fig3Result{}, err
	}
	return Fig3Result{
		WindowStart:      win[0].Start,
		Power:            win,
		Combos:           combos,
		CoVImprovementUK: stats.Ratio(stats.CoV(win[0].Values), stats.CoV(noUK.Values)),
		CoVImprovementPT: stats.Ratio(stats.CoV(noUK.Values), stats.CoV(all.Values)),
		TopUp:            topUp,
	}, nil
}

// Report renders the figure as text.
func (r Fig3Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3: complementary 3-day window starting %s\n", r.WindowStart.Format("2006-01-02"))
	fmt.Fprintf(&b, "  cov improvement adding UK wind: %.1fx (paper: 3.7x)\n", r.CoVImprovementUK)
	fmt.Fprintf(&b, "  cov improvement adding PT wind: %.1fx (paper: 2.3x)\n", r.CoVImprovementPT)
	b.WriteString("  combo              stable   variable  stable%\n")
	for _, c := range r.Combos {
		fmt.Fprintf(&b, "  %-16s %8.0f %9.0f %7.0f%%\n",
			strings.Join(c.Names, "+"), c.Split.StableMWh, c.Split.VariableMWh, c.Split.StableFraction()*100)
	}
	fmt.Fprintf(&b, "  top-up: buy %.0f MWh -> stabilize %.0f MWh more (total +%.0f MWh stable)\n",
		r.TopUp.PurchasedMWh, r.TopUp.StabilizedMWh, r.TopUp.AddedStableMWh)
	return b.String()
}

// PairImprovementResult holds the §2.3 pair statistics.
type PairImprovementResult struct {
	Pairs int
	// FractionImproved is the share of pairs with a 3-day interval where
	// aggregation improves cov by >50% (paper: >52%).
	FractionImproved float64
}

// covPairIntervals and covPairWindowDays parameterize the §2.3 sweep: 24
// three-day intervals spread over one 365-day year.
const (
	covPairIntervals  = 24
	covPairWindowDays = 3
)

// covPairStartDay returns the start day of sweep interval m. The starts are
// spread evenly so interval 0 begins on day 0 and the final 72 h window ends
// exactly on day 365; the original fixed 15-day spacing stopped at day 348
// and never sampled the last ~16 days of the year.
func covPairStartDay(m int) int {
	span := 365 - covPairWindowDays
	return (m*span + (covPairIntervals-1)/2) / (covPairIntervals - 1)
}

// CovPairImprovement regenerates the §2.3 claim over the 12-site fleet and
// 24 three-day intervals across a year. The intervals are generated
// concurrently (each is an independent World.Generate call over its own
// name-keyed RNG streams); the per-pair merge runs in interval order, so
// the result is identical to the serial sweep.
func CovPairImprovement(seed uint64) (PairImprovementResult, error) {
	w := energy.NewWorld(seed)
	fleet := energy.EuropeanFleet(12)
	names := make([]string, len(fleet))
	for i := range fleet {
		names[i] = fleet[i].Name
	}
	perInterval, err := par.Map(context.Background(), covPairIntervals, 0,
		func(m int) ([]energy.PairImprovement, error) {
			st := experimentStart.AddDate(0, 0, covPairStartDay(m))
			fp, err := w.GeneratePower(fleet, st, time.Hour, covPairWindowDays*24)
			if err != nil {
				return nil, err
			}
			return energy.AllPairs(names, fp)
		})
	if err != nil {
		return PairImprovementResult{}, err
	}
	best := map[string]float64{}
	for _, pairs := range perInterval {
		for _, p := range pairs {
			k := p.A + "/" + p.B
			if v := p.Improvement(); v > best[k] {
				best[k] = v
			}
		}
	}
	n2 := 0
	for _, v := range best {
		if v >= 2 {
			n2++
		}
	}
	return PairImprovementResult{
		Pairs:            len(best),
		FractionImproved: float64(n2) / float64(len(best)),
	}, nil
}

// Fig4Result holds one migration-overhead simulation (Figures 4a/4b).
type Fig4Result struct {
	Source Source
	Run    ClusterRunResult
	// QuietFraction is the share of power changes with no out-migration
	// (paper: >80%).
	QuietFraction float64
	// InP99OverP50 and OutP99OverP50 are the burstiness ratios of non-zero
	// transfers (paper: 18-30x in, 12.5-16x out).
	InP99OverP50, OutP99OverP50 float64
	// InCDF and OutCDF are CDFs of the non-zero transfer volumes.
	InCDF, OutCDF []Point
}

// Fig4Migration regenerates Figures 4a/4b: the migration traffic of a
// single 700-server VB site driven by `days` of power from the given
// source, with an Azure-like VM arrival trace.
func Fig4Migration(seed uint64, src Source, days int) (Fig4Result, error) {
	return Fig4MigrationObs(seed, src, days, nil)
}

// Fig4MigrationObs is Fig4Migration observed by a metrics registry: trace
// generation, the cluster run and per-step SiteStep events report into reg.
// A nil registry is free.
func Fig4MigrationObs(seed uint64, src Source, days int, reg *MetricsRegistry) (Fig4Result, error) {
	defer TimeSpan(reg, "fig4.run")()
	w := energy.NewWorld(seed)
	w.Obs = reg
	name := "BE-wind"
	lat, lon := 51.2, 2.9
	if src == Solar {
		name, lat, lon = "BE-solar", 50.8, 4.4
	}
	sites := []SiteConfig{{Name: name, Source: src, Latitude: lat, Longitude: lon, CapacityMW: energy.DefaultCapacityMW}}
	power, err := w.Generate(sites, experimentStart, 15*time.Minute, days*96)
	if err != nil {
		return Fig4Result{}, err
	}
	vms, err := workload.Generate(workload.Config{
		Seed:                seed,
		Start:               experimentStart.Add(-24 * time.Hour),
		Duration:            time.Duration(days+1) * 24 * time.Hour,
		MeanArrivalsPerHour: 60,
		StableFraction:      0.7,
		LongRunningFraction: 0.3,
		MedianLifetime:      6 * time.Hour,
	})
	if err != nil {
		return Fig4Result{}, err
	}
	run, err := cluster.RunObs(cluster.DefaultConfig(), power[0], vms, 96, reg)
	if err != nil {
		return Fig4Result{}, err
	}
	if reg != nil {
		reg.SetLabel("experiment", "fig4")
		reg.SetLabel("source", src.String())
		reg.SetGauge("fig4.vms", float64(len(vms)))
		reg.SetGauge("fig4.quiet_fraction", run.FractionQuietChanges())
	}
	res := Fig4Result{Source: src, Run: run, QuietFraction: run.FractionQuietChanges()}
	if nz := run.InGB.NonZero(1e-9); len(nz) > 0 {
		q, err := stats.Quantiles(nz, 50, 99)
		if err != nil {
			return Fig4Result{}, err
		}
		res.InP99OverP50 = stats.Ratio(q[1], q[0])
		c, err := stats.NewCDF(nz)
		if err != nil {
			return Fig4Result{}, err
		}
		res.InCDF = c.Points(50)
	}
	if nz := run.OutGB.NonZero(1e-9); len(nz) > 0 {
		q, err := stats.Quantiles(nz, 50, 99)
		if err != nil {
			return Fig4Result{}, err
		}
		res.OutP99OverP50 = stats.Ratio(q[1], q[0])
		c, err := stats.NewCDF(nz)
		if err != nil {
			return Fig4Result{}, err
		}
		res.OutCDF = c.Points(50)
	}
	return res, nil
}

// Report renders the figure as text.
func (r Fig4Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 4 (%v): migration overhead over %d days\n", r.Source, r.Run.Power.Len()/96)
	fmt.Fprintf(&b, "  quiet power changes: %.0f%% (paper: >80%%)\n", r.QuietFraction*100)
	fmt.Fprintf(&b, "  total out: %.0f GB, total in: %.0f GB\n", r.Run.TotalOutGB(), r.Run.TotalInGB())
	fmt.Fprintf(&b, "  out p99/p50: %.1fx (paper: 12.5-16x), in p99/p50: %.1fx (paper: 18-30x)\n",
		r.OutP99OverP50, r.InP99OverP50)
	fmt.Fprintf(&b, "  peak out: %.0f GB per 15 min\n", r.Run.OutGB.Max())
	return b.String()
}

// Fig5Result holds the forecast-accuracy table of Figure 5.
type Fig5Result struct {
	// MAPE[source][horizon] in percent.
	MAPE map[Source]map[time.Duration]float64
}

// Fig5ForecastAccuracy regenerates Figure 5: forecast error at the 3-hour,
// day and week horizons for solar and wind, over 120 days.
func Fig5ForecastAccuracy(seed uint64) (Fig5Result, error) {
	w := energy.NewWorld(seed)
	sites := []SiteConfig{
		{Name: "BE-solar", Source: Solar, Latitude: 50.8, Longitude: 4.4, CapacityMW: energy.DefaultCapacityMW},
		{Name: "BE-wind", Source: Wind, Latitude: 51.2, Longitude: 2.9, CapacityMW: energy.DefaultCapacityMW},
	}
	series, err := w.Generate(sites, experimentStart, 15*time.Minute, 120*96)
	if err != nil {
		return Fig5Result{}, err
	}
	// The per-(source, horizon) grid runs concurrently: Forecast derives a
	// fresh RNG stream from (seed, site, source, horizon) on every call, so
	// each cell is independent and the assembled table is deterministic.
	fc := forecast.New(seed)
	horizons := []time.Duration{Horizon3H, HorizonDay, HorizonWeek}
	cells, err := par.Map(context.Background(), len(sites)*len(horizons), 0,
		func(c int) (float64, error) {
			i, h := c/len(horizons), horizons[c%len(horizons)]
			f, err := fc.Forecast(series[i], sites[i].Source, h, sites[i].Name)
			if err != nil {
				return 0, err
			}
			return forecast.Accuracy(f, series[i], 0.02)
		})
	if err != nil {
		return Fig5Result{}, err
	}
	out := Fig5Result{MAPE: map[Source]map[time.Duration]float64{}}
	for i, site := range sites {
		out.MAPE[site.Source] = map[time.Duration]float64{}
		for j, h := range horizons {
			out.MAPE[site.Source][h] = cells[i*len(horizons)+j]
		}
	}
	return out, nil
}

// Report renders the figure as text.
func (r Fig5Result) Report() string {
	var b strings.Builder
	b.WriteString("Fig 5: forecast MAPE by horizon\n")
	b.WriteString("  source  3h      day     week    (paper: 8.5-9%, 18-25%, 44%/75%)\n")
	for _, src := range []Source{Solar, Wind} {
		m := r.MAPE[src]
		fmt.Fprintf(&b, "  %-6s %5.1f%%  %5.1f%%  %5.1f%%\n",
			src, m[Horizon3H], m[HorizonDay], m[HorizonWeek])
	}
	return b.String()
}

// WANShareResult holds the §3 WAN share computation.
type WANShareResult struct {
	SpikeGB       float64
	Deadline      time.Duration
	RequiredGbps  float64
	PerSiteGbps   float64
	ShareConsumed float64
}

// WANShare reproduces the §3 claim: a 10 TB migration spike completed in 5
// minutes consumes ~40% of a site's share of a 50 Tb/s 100-site WAN.
func WANShare() (WANShareResult, error) {
	cfg := wan.DefaultConfig()
	const spikeGB = 10000
	deadline := 5 * time.Minute
	need, err := wan.RequiredGbps(spikeGB, deadline)
	if err != nil {
		return WANShareResult{}, err
	}
	frac, err := cfg.ShareConsumed(spikeGB, deadline)
	if err != nil {
		return WANShareResult{}, err
	}
	return WANShareResult{
		SpikeGB:       spikeGB,
		Deadline:      deadline,
		RequiredGbps:  need,
		PerSiteGbps:   cfg.PerSiteShareGbps(),
		ShareConsumed: frac,
	}, nil
}

// WANBusyResult holds the §5 busy-fraction computation.
type WANBusyResult struct {
	LinkGbps     float64
	BusyFraction float64
}

// WANBusyFraction reproduces the §5 claim: with a 200 Gb/s WAN link per VB
// site, migration traffic keeps the link busy only a few percent of the
// time (paper: 2-4%).
func WANBusyFraction(seed uint64) (WANBusyResult, error) {
	fig4, err := Fig4Migration(seed, Wind, 28)
	if err != nil {
		return WANBusyResult{}, err
	}
	total, err := trace.Add(fig4.Run.OutGB, fig4.Run.InGB)
	if err != nil {
		return WANBusyResult{}, err
	}
	frac, err := wan.BusyFraction(total, 200)
	if err != nil {
		return WANBusyResult{}, err
	}
	return WANBusyResult{LinkGbps: 200, BusyFraction: frac}, nil
}

// EconResult holds the §2.1 economics numbers.
type EconResult struct {
	// TransmissionSavingFraction of total DC cost (paper: ~10%).
	TransmissionSavingFraction float64
	// CurtailedMWh and CurtailmentValue over a year of the trio's output.
	CurtailedMWh     float64
	CurtailmentValue float64
}

// EconSavings reproduces the §2.1 cost arithmetic on a year of the trio's
// generation.
func EconSavings(seed uint64) (EconResult, error) {
	model := DefaultCostModel()
	w := energy.NewWorld(seed)
	year, err := w.GeneratePower(energy.EuropeanTrio(), experimentStart, time.Hour, 365*24)
	if err != nil {
		return EconResult{}, err
	}
	sum, err := trace.Sum(year...)
	if err != nil {
		return EconResult{}, err
	}
	mwh, value, err := model.CurtailmentValue(sum)
	if err != nil {
		return EconResult{}, err
	}
	return EconResult{
		TransmissionSavingFraction: model.TransmissionSavingFraction(),
		CurtailedMWh:               mwh,
		CurtailmentValue:           value,
	}, nil
}
