package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// CSV interchange for VM traces, so real traces (e.g. the public Azure VM
// dataset) can be converted into the simulator's format and synthetic
// traces can be exported for inspection.
//
// Column semantics: `class` is an SLO class name ("stable", "degradable",
// "realtime", "interactive", "batch"), `arrival` is RFC 3339 with
// nanosecond precision (older files without fractional seconds parse
// unchanged), and `lifetime_s = 0` means the VM is immortal — it runs until
// the end of whatever simulation consumes it (VM.End() returns the zero
// time). Long-running services are exported this way; a VM that really
// lives zero seconds cannot be expressed, matching the generator, which
// never emits sub-minute lifetimes.

var vmHeader = []string{"id", "cores", "memory_gb", "class", "arrival", "lifetime_s", "app_id"}

// WriteCSV writes VMs as CSV with the header
// id,cores,memory_gb,class,arrival,lifetime_s,app_id.
func WriteCSV(w io.Writer, vms []VM) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(vmHeader); err != nil {
		return err
	}
	for _, v := range vms {
		rec := []string{
			strconv.Itoa(v.ID),
			strconv.Itoa(v.Cores),
			strconv.Itoa(v.MemoryGB),
			v.Class.String(),
			// RFC3339Nano keeps the generator's sub-second arrival gaps:
			// plain RFC3339 silently truncated them, so a write→read
			// round-trip did not reproduce the trace.
			v.Arrival.UTC().Format(time.RFC3339Nano),
			strconv.FormatInt(int64(v.Lifetime/time.Second), 10),
			strconv.Itoa(v.AppID),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a VM trace written by WriteCSV.
func ReadCSV(r io.Reader) ([]VM, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("workload: reading header: %w", err)
	}
	if len(header) != len(vmHeader) {
		return nil, fmt.Errorf("workload: header %v, want %v", header, vmHeader)
	}
	for i := range vmHeader {
		if header[i] != vmHeader[i] {
			return nil, fmt.Errorf("workload: header %v, want %v", header, vmHeader)
		}
	}
	var out []VM
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		vm, err := parseVM(rec)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		out = append(out, vm)
	}
	return out, nil
}

func parseVM(rec []string) (VM, error) {
	var vm VM
	var err error
	if vm.ID, err = strconv.Atoi(rec[0]); err != nil {
		return VM{}, fmt.Errorf("bad id %q", rec[0])
	}
	if vm.Cores, err = strconv.Atoi(rec[1]); err != nil || vm.Cores <= 0 {
		return VM{}, fmt.Errorf("bad cores %q", rec[1])
	}
	if vm.MemoryGB, err = strconv.Atoi(rec[2]); err != nil || vm.MemoryGB <= 0 {
		return VM{}, fmt.Errorf("bad memory %q", rec[2])
	}
	if vm.Class, err = ParseClass(rec[3]); err != nil {
		return VM{}, fmt.Errorf("bad class %q", rec[3])
	}
	if vm.Arrival, err = time.Parse(time.RFC3339, rec[4]); err != nil {
		return VM{}, fmt.Errorf("bad arrival %q", rec[4])
	}
	secs, err := strconv.ParseInt(rec[5], 10, 64)
	if err != nil || secs < 0 {
		return VM{}, fmt.Errorf("bad lifetime %q", rec[5])
	}
	vm.Lifetime = time.Duration(secs) * time.Second
	if vm.AppID, err = strconv.Atoi(rec[6]); err != nil {
		return VM{}, fmt.Errorf("bad app id %q", rec[6])
	}
	return vm, nil
}
