package forecast

import (
	"math"
	"testing"
	"time"

	"github.com/vbcloud/vb/internal/energy"
	"github.com/vbcloud/vb/internal/trace"
)

var start = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func genTrio(t *testing.T, days int) ([]energy.SiteConfig, []trace.Series) {
	t.Helper()
	w := energy.NewWorld(42)
	cfgs := energy.EuropeanTrio()
	series, err := w.Generate(cfgs, start, 15*time.Minute, days*96)
	if err != nil {
		t.Fatal(err)
	}
	return cfgs, series
}

func TestForecastErrors(t *testing.T) {
	f := New(1)
	if _, err := f.Forecast(trace.Series{}, energy.Solar, Horizon3H, "x"); err == nil {
		t.Error("empty truth should error")
	}
	s := trace.FromValues(start, time.Hour, []float64{1, 2})
	if _, err := f.Forecast(s, energy.Solar, 0, "x"); err == nil {
		t.Error("zero horizon should error")
	}
	if _, err := f.Forecast(s, energy.Solar, -time.Hour, "x"); err == nil {
		t.Error("negative horizon should error")
	}
}

func TestForecastDeterministic(t *testing.T) {
	_, series := genTrio(t, 10)
	a, err := New(5).Forecast(series[0], energy.Solar, HorizonDay, "NO")
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(5).Forecast(series[0], energy.Solar, HorizonDay, "NO")
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("same seed should reproduce forecasts")
		}
	}
	c, err := New(5).Forecast(series[0], energy.Solar, HorizonDay, "OTHER")
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Values {
		if a.Values[i] != c.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different labels should give different error draws")
	}
}

func TestForecastPreservesZerosAndBounds(t *testing.T) {
	_, series := genTrio(t, 30)
	solar := series[0]
	fc, err := New(1).Forecast(solar, energy.Solar, HorizonDay, "NO")
	if err != nil {
		t.Fatal(err)
	}
	max := solar.Max()
	for i, v := range fc.Values {
		if solar.Values[i] == 0 && v != 0 {
			t.Fatalf("forecast invents power at night: sample %d = %v", i, v)
		}
		if v < 0 || v > max+1e-9 {
			t.Fatalf("forecast sample %d = %v outside [0, %v]", i, v, max)
		}
	}
}

// TestMAPECalibration checks the paper's Fig 5 error bands: near horizons
// are accurate, far horizons degrade, wind degrades faster than solar.
func TestMAPECalibration(t *testing.T) {
	cfgs, series := genTrio(t, 120)
	f := New(7)
	type band struct{ lo, hi float64 }
	bands := map[energy.Source]map[time.Duration]band{
		energy.Solar: {
			Horizon3H:   {6, 11},
			HorizonDay:  {15, 28},
			HorizonWeek: {35, 55},
		},
		energy.Wind: {
			Horizon3H:   {6, 11},
			HorizonDay:  {17, 30},
			HorizonWeek: {55, 95},
		},
	}
	for i, cfg := range cfgs {
		for h, b := range bands[cfg.Source] {
			fc, err := f.Forecast(series[i], cfg.Source, h, cfg.Name)
			if err != nil {
				t.Fatal(err)
			}
			m, err := Accuracy(fc, series[i], 0.02)
			if err != nil {
				t.Fatal(err)
			}
			if m < b.lo || m > b.hi {
				t.Errorf("%s %v MAPE = %.1f%%, want in [%v, %v]", cfg.Name, h, m, b.lo, b.hi)
			}
		}
	}
}

// TestMAPEGrowsWithHorizon checks monotone degradation across horizons.
func TestMAPEGrowsWithHorizon(t *testing.T) {
	cfgs, series := genTrio(t, 90)
	f := New(3)
	for i, cfg := range cfgs {
		prev := -1.0
		for _, h := range []time.Duration{Horizon3H, HorizonDay, HorizonWeek} {
			fc, err := f.Forecast(series[i], cfg.Source, h, cfg.Name)
			if err != nil {
				t.Fatal(err)
			}
			m, err := Accuracy(fc, series[i], 0.02)
			if err != nil {
				t.Fatal(err)
			}
			if m <= prev {
				t.Errorf("%s: MAPE at %v (%.1f%%) should exceed shorter horizon (%.1f%%)", cfg.Name, h, m, prev)
			}
			prev = m
		}
	}
}

func TestBundle(t *testing.T) {
	_, series := genTrio(t, 10)
	b, err := New(2).NewBundle(series[1], energy.Wind, "UK")
	if err != nil {
		t.Fatal(err)
	}
	if b.Truth().Len() != series[1].Len() {
		t.Error("Truth should round trip")
	}
	if _, err := b.Horizon(HorizonDay); err != nil {
		t.Errorf("day horizon missing: %v", err)
	}
	if _, err := b.Horizon(5 * time.Hour); err == nil {
		t.Error("nonstandard horizon should error")
	}

	now := start.Add(24 * time.Hour)
	// Past target: nowcast equals truth.
	past := start.Add(23 * time.Hour)
	v, ok := b.PredictAt(now, past)
	if !ok {
		t.Fatal("past target should resolve")
	}
	truthV, _ := series[1].At(past)
	if v != truthV {
		t.Errorf("nowcast %v != truth %v", v, truthV)
	}
	// 2h lead uses the 3h forecast.
	target := now.Add(2 * time.Hour)
	v, ok = b.PredictAt(now, target)
	if !ok {
		t.Fatal("2h lead should resolve")
	}
	h3, _ := b.Horizon(Horizon3H)
	want, _ := h3.At(target)
	if v != want {
		t.Errorf("2h lead = %v, want 3h-horizon value %v", v, want)
	}
	// 30h lead: beyond day horizon, uses week.
	target = now.Add(30 * time.Hour)
	v, ok = b.PredictAt(now, target)
	if !ok {
		t.Fatal("30h lead should resolve")
	}
	hw, _ := b.Horizon(HorizonWeek)
	want, _ = hw.At(target)
	if v != want {
		t.Errorf("30h lead = %v, want week-horizon value %v", v, want)
	}
	// Lead beyond a week still uses week horizon.
	if _, ok := b.PredictAt(start, start.Add(11*24*time.Hour)); ok {
		t.Error("target outside the series should return false")
	}
}

func TestAccuracyErrors(t *testing.T) {
	a := trace.FromValues(start, time.Hour, []float64{1, 2})
	b := trace.FromValues(start, time.Hour, []float64{1})
	if _, err := Accuracy(a, b, 0); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestSigmaForMonotone(t *testing.T) {
	for _, src := range []energy.Source{energy.Solar, energy.Wind} {
		prev := 0.0
		for _, h := range []time.Duration{time.Minute, Horizon3H, HorizonDay, HorizonWeek} {
			s := sigmaFor(src, h)
			if s <= prev {
				t.Errorf("%v sigma at %v = %v not increasing", src, h, s)
			}
			prev = s
		}
	}
	// Wind degrades faster than solar at long horizons.
	if sigmaFor(energy.Wind, HorizonWeek) <= sigmaFor(energy.Solar, HorizonWeek) {
		t.Error("week-ahead wind error should exceed solar")
	}
	if math.IsNaN(sigmaFor(energy.Solar, time.Second)) {
		t.Error("tiny horizon should clamp, not NaN")
	}
}

func TestPersistence(t *testing.T) {
	_, series := genTrio(t, 30)
	solar := series[0]
	p, err := Persistence(solar, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// A 24h lag aligns the diurnal cycle: sample i equals sample i-96.
	if p.Values[200] != solar.Values[200-96] {
		t.Error("persistence should lag the truth by the horizon")
	}
	if _, err := Persistence(trace.Series{}, time.Hour); err == nil {
		t.Error("empty truth should error")
	}
	if _, err := Persistence(solar, 0); err == nil {
		t.Error("zero horizon should error")
	}
}

// TestCalibratedBeatsPersistenceShortHorizon: at 3 hours the calibrated
// model must beat the naive baseline (real forecasts have skill).
func TestCalibratedBeatsPersistenceShortHorizon(t *testing.T) {
	cfgs, series := genTrio(t, 60)
	f := New(7)
	for i, cfg := range cfgs {
		fc, err := f.Forecast(series[i], cfg.Source, Horizon3H, cfg.Name)
		if err != nil {
			t.Fatal(err)
		}
		calibrated, err := Accuracy(fc, series[i], 0.02)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Persistence(series[i], Horizon3H)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := Accuracy(p, series[i], 0.02)
		if err != nil {
			t.Fatal(err)
		}
		if calibrated >= naive {
			t.Errorf("%s: calibrated 3h MAPE %.1f%% should beat persistence %.1f%%",
				cfg.Name, calibrated, naive)
		}
	}
}
