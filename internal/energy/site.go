package energy

import (
	"fmt"
	"math"
	"time"
)

// Source identifies a renewable energy source type.
type Source int

// Supported source types.
const (
	Solar Source = iota
	Wind
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case Solar:
		return "solar"
	case Wind:
		return "wind"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// SiteConfig describes one renewable generation site (a farm with a
// co-located VB mini data center in the paper's architecture).
type SiteConfig struct {
	// Name identifies the site (e.g. "NO-solar").
	Name string
	// Source is the generation technology.
	Source Source
	// Latitude and Longitude in degrees place the site for both the solar
	// geometry and the latency/correlation structure.
	Latitude  float64
	Longitude float64
	// CapacityMW is the peak (nameplate) capacity. The paper assumes 400 MW
	// per site — the median peak capacity of large farms — when it needs
	// absolute energy numbers.
	CapacityMW float64
}

// DefaultCapacityMW is the per-site peak capacity the paper assumes (§2.3).
const DefaultCapacityMW = 400

// Validate reports configuration errors.
func (c SiteConfig) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("energy: site needs a name")
	}
	if c.Source != Solar && c.Source != Wind {
		return fmt.Errorf("energy: site %s: unknown source %d", c.Name, int(c.Source))
	}
	if c.Latitude < -90 || c.Latitude > 90 {
		return fmt.Errorf("energy: site %s: latitude %v out of range", c.Name, c.Latitude)
	}
	if c.Longitude < -180 || c.Longitude > 180 {
		return fmt.Errorf("energy: site %s: longitude %v out of range", c.Name, c.Longitude)
	}
	if c.CapacityMW <= 0 {
		return fmt.Errorf("energy: site %s: capacity %v must be positive", c.Name, c.CapacityMW)
	}
	return nil
}

// earthRadiusKM is the mean Earth radius.
const earthRadiusKM = 6371

// DistanceKM returns the great-circle distance between two sites using the
// haversine formula.
func DistanceKM(a, b SiteConfig) float64 {
	lat1 := a.Latitude * math.Pi / 180
	lat2 := b.Latitude * math.Pi / 180
	dLat := lat2 - lat1
	dLon := (b.Longitude - a.Longitude) * math.Pi / 180
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKM * math.Asin(math.Min(1, math.Sqrt(h)))
}

// LatencyMS estimates the round-trip (ping) latency between two sites in
// milliseconds, matching the paper's "<50 ms ping latency" edge criterion:
// propagation at ~2/3 c over 1.5x the great-circle path (fiber routes are
// not straight), both ways, plus a fixed 4 ms of equipment delay.
func LatencyMS(a, b SiteConfig) float64 {
	const (
		fiberSpeedKMperMS = 200 // ~2/3 of c
		routeStretch      = 1.5 // fiber path vs great circle
		equipmentMS       = 4.0 // switching/termination overhead, round trip
	)
	return 2*DistanceKM(a, b)*routeStretch/fiberSpeedKMperMS + equipmentMS
}

// dayOfYear returns the 1-based ordinal day of t (UTC).
func dayOfYear(t time.Time) int {
	return t.UTC().YearDay()
}

// solarDeclination returns the solar declination angle in radians for the
// given ordinal day (Cooper's formula).
func solarDeclination(doy int) float64 {
	return 23.45 * math.Pi / 180 * math.Sin(2*math.Pi*float64(284+doy)/365)
}

// solarElevationSin returns sin(solar elevation) for the given latitude
// (radians), declination (radians) and solar hour angle (radians, 0 at solar
// noon). Negative values mean the sun is below the horizon.
func solarElevationSin(latRad, decl, hourAngle float64) float64 {
	return math.Sin(latRad)*math.Sin(decl) + math.Cos(latRad)*math.Cos(decl)*math.Cos(hourAngle)
}
