package obs

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCounterVecAccumulates(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("moves_gb", "policy", "src", "dst")
	v.Add(10, "MIP", "0", "1")
	v.Add(2.5, "MIP", "0", "1")
	v.Inc("MIP", "1", "0")
	v.Add(7, "Greedy", "0", "1")
	if got := v.Value("MIP", "0", "1"); got != 12.5 {
		t.Errorf("MIP 0->1 = %v, want 12.5", got)
	}
	if got := v.Value("MIP", "1", "0"); got != 1 {
		t.Errorf("MIP 1->0 = %v, want 1", got)
	}
	if got := v.Value("Greedy", "0", "1"); got != 7 {
		t.Errorf("Greedy 0->1 = %v, want 7", got)
	}
	if got := v.Value("none", "0", "1"); got != 0 {
		t.Errorf("absent series = %v, want 0", got)
	}
	if v.Name() != "moves_gb" {
		t.Errorf("name = %q", v.Name())
	}
	if !reflect.DeepEqual(v.LabelNames(), []string{"policy", "src", "dst"}) {
		t.Errorf("label names = %v", v.LabelNames())
	}
}

func TestVecDropsWrongLabelCount(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("c", "a", "b")
	c.Add(5, "only-one")
	c.Add(5, "x", "y", "z")
	if s := c.Snapshot(); len(s.Values) != 0 {
		t.Errorf("mislabeled adds created series: %+v", s.Values)
	}
	g := r.NewGaugeVec("g", "a")
	g.Set(1)
	g.Set(1, "x", "y")
	if _, ok := g.Value("x", "y"); ok {
		t.Error("mislabeled gauge set took effect")
	}
	h := r.NewHistogramVec("h", nil, "a")
	h.Observe(1)
	h.Observe(1, "x", "y")
	if s := h.Snapshot(); len(s.Histograms) != 0 {
		t.Errorf("mislabeled observes created series: %+v", s.Histograms)
	}
}

func TestGaugeVecLastValueWins(t *testing.T) {
	r := NewRegistry()
	v := r.NewGaugeVec("util", "site")
	v.Set(0.3, "0")
	v.Set(0.9, "0")
	got, ok := v.Value("0")
	if !ok || got != 0.9 {
		t.Errorf("value = %v ok=%v, want 0.9 true", got, ok)
	}
	if _, ok := v.Value("1"); ok {
		t.Error("unset series should report absent")
	}
}

func TestHistogramVecSeries(t *testing.T) {
	r := NewRegistry()
	v := r.NewHistogramVec("solve", []float64{1, 10}, "policy", "app")
	v.Observe(0.5, "MIP", "1")
	v.Observe(5, "MIP", "1")
	v.Observe(50, "MIP", "2")
	v.ObserveDuration(2*time.Second, "MIP", "1")
	s, ok := v.SeriesSnapshot("MIP", "1")
	if !ok || s.Count != 3 {
		t.Fatalf("series MIP/1: count=%d ok=%v, want 3 true", s.Count, ok)
	}
	if want := []int64{1, 2, 0}; !reflect.DeepEqual(s.Counts, want) {
		t.Errorf("bucket counts = %v, want %v", s.Counts, want)
	}
	if _, ok := v.SeriesSnapshot("Greedy", "1"); ok {
		t.Error("unobserved series should report absent")
	}
}

func TestVecSnapshotSortedAndSplitsLabels(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("c", "site", "class")
	// Insert out of order; snapshot must come back sorted by label tuple.
	v.Add(3, "2", "spot")
	v.Add(1, "0", "stable")
	v.Add(2, "0", "batch")
	s := v.Snapshot()
	if !reflect.DeepEqual(s.LabelNames, []string{"site", "class"}) {
		t.Errorf("label names = %v", s.LabelNames)
	}
	want := []LabeledValue{
		{Labels: []string{"0", "batch"}, Value: 2},
		{Labels: []string{"0", "stable"}, Value: 1},
		{Labels: []string{"2", "spot"}, Value: 3},
	}
	if !reflect.DeepEqual(s.Values, want) {
		t.Errorf("snapshot = %+v, want %+v", s.Values, want)
	}
}

func TestVecCreationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounterVec("c", "x")
	b := r.NewCounterVec("c", "different", "labels")
	if a != b {
		t.Error("same name must return the same vec")
	}
	if !reflect.DeepEqual(b.LabelNames(), []string{"x"}) {
		t.Errorf("existing label names must win, got %v", b.LabelNames())
	}
	h1 := r.NewHistogramVec("h", []float64{1}, "x")
	h2 := r.NewHistogramVec("h", nil, "x")
	if h1 != h2 {
		t.Error("same name must return the same histogram vec")
	}
}

func TestNilVecsAreNoOpAndAllocFree(t *testing.T) {
	var r *Registry
	c := r.NewCounterVec("c", "a")
	g := r.NewGaugeVec("g", "a")
	h := r.NewHistogramVec("h", nil, "a")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil vecs")
	}
	// None of these may panic.
	c.Add(1, "x")
	c.Inc("x")
	g.Set(1, "x")
	h.Observe(1, "x")
	h.ObserveDuration(time.Second, "x")
	if c.Value("x") != 0 {
		t.Error("nil counter vec should read 0")
	}
	if _, ok := g.Value("x"); ok {
		t.Error("nil gauge vec should be absent")
	}
	if _, ok := h.SeriesSnapshot("x"); ok {
		t.Error("nil histogram vec should be absent")
	}
	if s := c.Snapshot(); s.LabelNames != nil || s.Values != nil {
		t.Error("nil vec snapshot should be zero")
	}
	if c.Name() != "" || c.LabelNames() != nil {
		t.Error("nil vec name/labels should be zero")
	}

	allocs := testing.AllocsPerRun(200, func() {
		c.Add(1, "x")
		c.Inc("x", "y")
		g.Set(2, "x")
		h.Observe(3, "x")
	})
	if allocs != 0 {
		t.Errorf("nil vec hot path allocates %v per run, want 0", allocs)
	}
}

func TestVecConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("c", "worker", "shared")
	h := r.NewHistogramVec("h", nil, "worker")
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	labels := []string{"0", "1", "2", "3", "4", "5", "6", "7"}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(1, labels[g], "all")  // distinct tuples
				c.Add(0.5, "shared", "all") // one contended tuple
				h.Observe(float64(i), labels[g])
				if i%100 == 0 {
					c.Snapshot() // readers interleave with writers
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if got := c.Value(labels[g], "all"); got != perG {
			t.Errorf("worker %d counter = %v, want %d", g, got, perG)
		}
		s, ok := h.SeriesSnapshot(labels[g])
		if !ok || s.Count != perG {
			t.Errorf("worker %d histogram count = %d ok=%v, want %d", g, s.Count, ok, perG)
		}
	}
	if got := c.Value("shared", "all"); got != goroutines*perG/2 {
		t.Errorf("shared counter = %v, want %d", got, goroutines*perG/2)
	}
}

func TestRegistrySnapshotIncludesVecs(t *testing.T) {
	r := NewRegistry()
	r.SetLabel("policy", "MIP")
	r.Inc("flat")
	r.NewCounterVec("cv", "a").Add(4, "x")
	r.NewGaugeVec("gv", "a").Set(7, "y")
	r.NewHistogramVec("hv", nil, "a").Observe(1, "z")
	r.Emit(Event{Type: ForcedMigration, Site: 0, Dst: 1, GB: 3})
	s := r.Snapshot()
	if s.Counters["flat"] != 1 || s.Labels["policy"] != "MIP" {
		t.Errorf("flat metrics lost: %+v", s)
	}
	if got := s.CounterVecs["cv"].Values; len(got) != 1 || got[0].Value != 4 {
		t.Errorf("counter vec lost: %+v", s.CounterVecs)
	}
	if got := s.GaugeVecs["gv"].Values; len(got) != 1 || got[0].Value != 7 {
		t.Errorf("gauge vec lost: %+v", s.GaugeVecs)
	}
	if got := s.HistogramVecs["hv"].Histograms; len(got) != 1 || got[0].Hist.Count != 1 {
		t.Errorf("histogram vec lost: %+v", s.HistogramVecs)
	}
	if s.Events[ForcedMigration].GB != 3 {
		t.Errorf("tracer stats lost: %+v", s.Events)
	}
	// A nil registry snapshots to zero.
	var nilReg *Registry
	if got := nilReg.Snapshot(); !reflect.DeepEqual(got, RegistrySnapshot{}) {
		t.Errorf("nil snapshot = %+v", got)
	}
}
