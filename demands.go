package vb

import (
	"github.com/vbcloud/vb/internal/core"
	"github.com/vbcloud/vb/internal/workload"
)

// appDemands converts generated applications into scheduler demands. Every
// app is validated first: an app with zero total cores would turn the
// MemGBPerCore division into NaN and silently poison the MIP demand vector,
// so it is rejected here (and again by sim.Input.Validate, which refuses
// non-finite demand fields).
func appDemands(apps []workload.App) ([]core.AppDemand, error) {
	demands := make([]core.AppDemand, 0, len(apps))
	for _, a := range apps {
		d, err := DemandFromApp(a)
		if err != nil {
			return nil, err
		}
		demands = append(demands, d)
	}
	return demands, nil
}

// DemandFromApp converts one application into its scheduler demand,
// including the per-SLO-class core breakdown the class-aware accounting
// runs on. The app is validated first (see appDemands).
func DemandFromApp(a workload.App) (core.AppDemand, error) {
	if err := a.Validate(); err != nil {
		return core.AppDemand{}, err
	}
	byClass := a.CoresByClass()
	classes := make(map[workload.Class]float64, len(byClass))
	for c, n := range byClass {
		classes[c] = float64(n)
	}
	d := core.AppDemand{
		ID: a.ID,
		// FirmCores counts every SLO-bearing class; for legacy traces
		// (Stable + Degradable only) it equals StableCores exactly, so
		// seed experiments are unaffected.
		Cores:        float64(a.TotalCores()),
		StableCores:  float64(a.FirmCores()),
		MemGBPerCore: float64(a.TotalMemoryGB()) / float64(a.TotalCores()),
		Start:        a.Arrival,
		ClassCores:   classes,
	}
	if a.Duration > 0 {
		d.End = a.Arrival.Add(a.Duration)
	}
	return d, nil
}
