package fault

import (
	"fmt"
	"math"

	"github.com/vbcloud/vb/internal/obs"
)

// Injector compiles a validated Script against fixed scenario dimensions
// and answers per-step fault queries. All methods are nil-safe and return
// identity values on a nil receiver, so engines thread one pointer through
// unconditionally and fault-free runs stay on the seed code paths.
//
// Every answer is a pure function of (script, step): the injector holds
// no mutable state, so concurrent queries are safe and results are
// bit-identical at any worker count.
type Injector struct {
	script *Script
	sites  int
	steps  int
	hash   uint64

	capacity []Event // SiteBlackout + SiteBrownout
	busts    []Event // ForecastBust
	wan      []Event // WANCut + WANDegraded
	solver   []Event // SolverSlowdown
}

// NewInjector validates the script against the scenario dimensions and
// compiles it. A nil or empty script yields a nil injector (and nil
// error): the no-fault identity.
func NewInjector(s *Script, numSites, steps int) (*Injector, error) {
	if s.Empty() {
		return nil, nil
	}
	if err := s.Validate(numSites, steps); err != nil {
		return nil, err
	}
	inj := &Injector{script: s, sites: numSites, steps: steps, hash: s.Hash()}
	for _, e := range s.Events {
		switch e.Kind {
		case SiteBlackout, SiteBrownout:
			inj.capacity = append(inj.capacity, e)
		case ForecastBust:
			inj.busts = append(inj.busts, e)
		case WANCut, WANDegraded:
			inj.wan = append(inj.wan, e)
		case SolverSlowdown:
			inj.solver = append(inj.solver, e)
		}
	}
	return inj, nil
}

// Dims returns the scenario dimensions the injector was compiled for
// (0, 0 when nil).
func (inj *Injector) Dims() (numSites, steps int) {
	if inj == nil {
		return 0, 0
	}
	return inj.sites, inj.steps
}

// Hash returns the compiled script's digest (0 when nil), used in
// snapshot fingerprints so a restore under a different fault script is
// rejected instead of silently diverging.
func (inj *Injector) Hash() uint64 {
	if inj == nil {
		return 0
	}
	return inj.hash
}

// Script returns the compiled script (nil when nil).
func (inj *Injector) Script() *Script {
	if inj == nil {
		return nil
	}
	return inj.script
}

func siteMatches(eventSite, site int) bool { return eventSite == -1 || eventSite == site }

// CapFactor returns the actual-capacity multiplier for a site at a step:
// 0 under a blackout, (1 - severity) per active brownout (compounded),
// 1 otherwise. The identity is exact (v * 1.0 == v bit-for-bit), so a
// nil injector preserves golden results.
func (inj *Injector) CapFactor(site, step int) float64 {
	if inj == nil {
		return 1
	}
	f := 1.0
	for _, e := range inj.capacity {
		if !e.active(step) || !siteMatches(e.Site, site) {
			continue
		}
		if e.Kind == SiteBlackout {
			return 0
		}
		f *= 1 - e.Severity
	}
	return f
}

// ForecastFactor returns the predicted-capacity multiplier for queries
// made at nowStep about a target step. Capacity faults already underway
// (Start <= nowStep) are visible for the remainder of their window — an
// outage strikes unforeseen, then the scheduler plans around it — while
// forecast busts distort every prediction whose target falls in their
// window, modeling systematic forecast error.
func (inj *Injector) ForecastFactor(site, nowStep, step int) float64 {
	if inj == nil {
		return 1
	}
	f := 1.0
	for _, e := range inj.capacity {
		if e.Start > nowStep || !e.active(step) || !siteMatches(e.Site, site) {
			continue
		}
		if e.Kind == SiteBlackout {
			f = 0
			break
		}
		f *= 1 - e.Severity
	}
	for _, e := range inj.busts {
		if e.active(step) && siteMatches(e.Site, site) {
			f *= e.Severity
		}
	}
	return f
}

// SolverInflation returns the solver latency inflation active at a step
// (>= 1; 1 when none). The scheduler derates its node budget by this
// factor, which models a slow solver deterministically.
func (inj *Injector) SolverInflation(step int) float64 {
	if inj == nil {
		return 1
	}
	f := 1.0
	for _, e := range inj.solver {
		if e.active(step) && e.Severity > f {
			f = e.Severity
		}
	}
	return f
}

// WANBudget returns the migration-bandwidth budget for one step, or nil
// when no WAN fault is active (nil = unlimited, the seed path).
func (inj *Injector) WANBudget(step int) *LinkBudget {
	if inj == nil {
		return nil
	}
	var active []Event
	for _, e := range inj.wan {
		if e.active(step) {
			active = append(active, e)
		}
	}
	if len(active) == 0 {
		return nil
	}
	return &LinkBudget{events: active}
}

// OnStep records fault onsets: for every event whose window opens at this
// step it increments fault.injected.count and the fault.injected.by_kind
// vector and emits a FaultInjected trace event. Engines call it once per
// advanced step; a nil injector or registry is a no-op.
func (inj *Injector) OnStep(step int, reg *obs.Registry) {
	if inj == nil || reg == nil {
		return
	}
	var vec *obs.CounterVec
	for _, e := range inj.script.Events {
		if e.Start != step {
			continue
		}
		if vec == nil {
			vec = reg.NewCounterVec("fault.injected.by_kind", "kind")
		}
		reg.Inc("fault.injected.count")
		vec.Inc(e.Kind.String())
		reg.Emit(obs.Event{
			Type: obs.FaultInjected, Step: step, App: -1, Site: e.Site, Dst: e.Peer,
			Detail: fmt.Sprintf("%s sev=%g window=[%d,%d)", e.Kind, e.Severity, e.Start, e.End),
		})
	}
}

// LinkBudget is one step's remaining migration bandwidth under the WAN
// faults active at that step. It is single-goroutine mutable state owned
// by the engine's step loop; a nil budget means unlimited bandwidth.
// Links are undirected: (src, dst) and (dst, src) share a budget.
type LinkBudget struct {
	events []Event
	used   map[[2]int]float64
}

func pairKey(src, dst int) [2]int {
	if src > dst {
		src, dst = dst, src
	}
	return [2]int{src, dst}
}

// linkMatches reports whether a WAN event constrains the (src, dst) link.
func linkMatches(e Event, src, dst int) bool {
	onEnd := func(s int) bool { return s == -1 || s == src || s == dst }
	return onEnd(e.Site) && onEnd(e.Peer)
}

func (b *LinkBudget) linkCap(src, dst int) float64 {
	c := math.Inf(1)
	for _, e := range b.events {
		if !linkMatches(e, src, dst) {
			continue
		}
		if e.Kind == WANCut {
			return 0
		}
		if e.Severity < c {
			c = e.Severity
		}
	}
	return c
}

// Remaining returns the GB still movable between src and dst this step
// (+Inf when unconstrained or nil).
func (b *LinkBudget) Remaining(src, dst int) float64 {
	if b == nil {
		return math.Inf(1)
	}
	c := b.linkCap(src, dst)
	if math.IsInf(c, 1) {
		return c
	}
	r := c - b.used[pairKey(src, dst)]
	if r < 0 {
		return 0
	}
	return r
}

// CanMove reports whether gb more GB fit on the (src, dst) link.
func (b *LinkBudget) CanMove(src, dst int, gb float64) bool {
	return gb <= b.Remaining(src, dst)
}

// Consume charges gb against the link. No-op when the link is
// unconstrained (or the budget nil), so fault-free moves cost nothing.
func (b *LinkBudget) Consume(src, dst int, gb float64) {
	if b == nil || gb <= 0 || math.IsInf(b.linkCap(src, dst), 1) {
		return
	}
	if b.used == nil {
		b.used = make(map[[2]int]float64)
	}
	b.used[pairKey(src, dst)] += gb
}
