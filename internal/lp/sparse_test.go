package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestSparseForcedRefactorization shrinks the eta-chain budget to near zero
// so almost every pivot forces a full Markowitz refactorization, then
// re-runs the bounded differential pool. Any divergence between the
// constantly-refactorized sparse path and the reference means refactor and
// eta-update disagree about the basis they represent.
func TestSparseForcedRefactorization(t *testing.T) {
	oldCap := etaChainCap
	etaChainCap = 1
	defer func() { etaChainCap = oldCap }()

	iters := 800
	if testing.Short() {
		iters = 100
	}
	for s := 0; s < iters; s++ {
		rng := rand.New(rand.NewSource(int64(5_000_000 + s)))
		checkAgainstReference(t, randomProblem(rng, true), int64(s))
	}

	// And the budget really is the trigger: a multi-pivot solve under cap 1
	// must refactorize, under the default cap it never needs to.
	p := degenerateProblem(rand.New(rand.NewSource(42)), 12)
	in, err := NewInstance(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.SolveCurrent(); err != nil {
		t.Fatal(err)
	}
	if in.Pivots() > 1 && in.Refactors() == 0 {
		t.Errorf("cap-1 solve took %d pivots with 0 refactorizations", in.Pivots())
	}
	if got := in.EtaChainLen(); got > 1 {
		t.Errorf("eta chain %d exceeds cap 1", got)
	}
}

// TestSparseDegenerate stresses long degenerate pivot runs (many tied basic
// variables at identical bounds), where stale eta chains are most likely to
// pick tiny pivots and the update-refusal path has to engage.
func TestSparseDegenerate(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 60
	}
	for s := 0; s < iters; s++ {
		rng := rand.New(rand.NewSource(int64(6_000_000 + s)))
		p := degenerateProblem(rng, 4+rng.Intn(10))
		checkAgainstReference(t, p, int64(s))
	}
}

// degenerateProblem builds a transportation-like LP whose rows share RHS
// values and coefficients drawn from a tiny set, so many bases are tied and
// most ratio tests produce zero-length steps.
func degenerateProblem(rng *rand.Rand, n int) Problem {
	p := Problem{
		NumVars:   n,
		Objective: make([]float64, n),
		Maximize:  rng.Intn(2) == 0,
		Upper:     make([]float64, n),
	}
	for j := 0; j < n; j++ {
		p.Objective[j] = float64(rng.Intn(3)) // heavy objective ties
		p.Upper[j] = float64(1 + rng.Intn(3))
	}
	m := 2 + rng.Intn(n)
	rhs := float64(1 + rng.Intn(3)) // one shared RHS: mass degeneracy
	for i := 0; i < m; i++ {
		c := Constraint{Coeffs: make([]float64, n), Sense: Sense(rng.Intn(3)), RHS: rhs}
		nz := 0
		for j := range c.Coeffs {
			if rng.Intn(2) == 0 {
				c.Coeffs[j] = float64(1 + rng.Intn(2)) // coefficients in {1,2}
				nz++
			}
		}
		if nz == 0 {
			c.Coeffs[rng.Intn(n)] = 1
		}
		if c.Sense == GE {
			c.RHS = 0 // GE rows trivially satisfiable but still degenerate
		}
		p.Constraints = append(p.Constraints, c)
	}
	return p
}

// TestSparseIllConditioned runs the differential triangle over problems
// with coefficient magnitudes spread across six orders, where the
// threshold test in the Markowitz pivot search and the eta pivot tolerance
// carry the numerical load.
func TestSparseIllConditioned(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 60
	}
	for s := 0; s < iters; s++ {
		rng := rand.New(rand.NewSource(int64(7_000_000 + s)))
		n := 2 + rng.Intn(6)
		m := 2 + rng.Intn(6)
		p := Problem{
			NumVars:   n,
			Objective: make([]float64, n),
			Upper:     make([]float64, n),
		}
		for j := 0; j < n; j++ {
			p.Objective[j] = rng.NormFloat64()
			p.Upper[j] = 1 + rng.Float64()*9
		}
		for i := 0; i < m; i++ {
			c := Constraint{Coeffs: make([]float64, n), Sense: LE, RHS: 1 + rng.Float64()*10}
			nz := 0
			for j := range c.Coeffs {
				if rng.Intn(2) == 0 {
					scale := math.Pow(10, float64(rng.Intn(7)-3)) // 1e-3 .. 1e3
					c.Coeffs[j] = (1 + rng.Float64()) * scale
					nz++
				}
			}
			if nz == 0 {
				c.Coeffs[rng.Intn(n)] = 1
			}
			p.Constraints = append(p.Constraints, c)
		}
		checkAgainstReference(t, p, int64(s))
	}
}

// TestSparseWarmChain exercises a long warm-started solve sequence on one
// instance — the daemon/branch-and-bound usage pattern — so the eta chain
// actually grows across solves and periodic refactorization happens under
// the default budget. Each re-solve is checked against a cold reference.
func TestSparseWarmChain(t *testing.T) {
	rng := rand.New(rand.NewSource(8_000_001))
	p := randomProblem(rng, true)
	p = growProblem(rng, p, 18)
	in, err := NewInstance(p)
	if err != nil {
		t.Fatal(err)
	}
	q := p
	q.Constraints = append([]Constraint(nil), p.Constraints...)
	q.Objective = append([]float64(nil), p.Objective...)
	for step := 0; step < 60; step++ {
		for i := range q.Constraints {
			c := q.Constraints[i]
			c.RHS = p.Constraints[i].RHS * (1 + 0.05*math.Sin(float64(step+i)))
			q.Constraints[i] = c
		}
		for j := range q.Objective {
			q.Objective[j] = p.Objective[j] * (1 + 0.03*math.Cos(float64(step+j)))
		}
		if !in.Refresh(q) {
			t.Fatalf("step %d: refresh rejected same-structure change", step)
		}
		st, err := in.SolveCurrent()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		ref, errRef := SolveReference(q)
		if errRef != nil {
			t.Fatalf("step %d: reference: %v", step, errRef)
		}
		if st != ref.Status {
			t.Fatalf("step %d: status %v, reference %v", step, st, ref.Status)
		}
		if st == Optimal {
			if got := in.ObjectiveValue(); math.Abs(got-ref.Objective) > 1e-6*(1+math.Abs(ref.Objective)) {
				t.Fatalf("step %d: objective %.9g, reference %.9g", step, got, ref.Objective)
			}
		}
	}
	if in.EtaChainLen() > etaChainCap {
		t.Errorf("eta chain %d exceeds cap %d", in.EtaChainLen(), etaChainCap)
	}
}
