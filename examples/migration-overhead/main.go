// Migration overhead (the paper's §3 / Fig 4 scenario): drive a 700-server
// VB site with wind power and an Azure-like VM arrival trace, and quantify
// the migration traffic that power-tracking forces onto the WAN.
package main

import (
	"fmt"
	"log"
	"time"

	vb "github.com/vbcloud/vb"
)

func main() {
	log.SetFlags(0)

	res, err := vb.Fig4Migration(vb.DefaultSeed, vb.Wind, 14)
	if err != nil {
		log.Fatal(err)
	}
	run := res.Run

	fmt.Println("single VB site, 700 servers x 40 cores, 70% admission target, 14 days of wind")
	fmt.Printf("  power changes with no eviction: %.0f%% (paper: >80%%)\n", res.QuietFraction*100)
	fmt.Printf("  total migrated out: %.0f GB, in: %.0f GB\n", run.TotalOutGB(), run.TotalInGB())
	fmt.Printf("  out p99/p50: %.1fx, in p99/p50: %.1fx (paper: 12.5-16x / 18-30x)\n",
		res.OutP99OverP50, res.InP99OverP50)
	fmt.Printf("  biggest 15-minute spike: %.0f GB out\n", run.OutGB.Max())

	// What does the spike mean for the WAN (§3)?
	share, err := vb.WANShare()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWAN math: a %.0f GB spike in %v needs %.0f Gb/s — %.0f%% of a site's %.0f Gb/s share\n",
		share.SpikeGB, share.Deadline, share.RequiredGbps, share.ShareConsumed*100, share.PerSiteGbps)

	// ... but averaged over time the link is mostly idle (§5).
	total, err := vb.AddSeries(run.OutGB, run.InGB)
	if err != nil {
		log.Fatal(err)
	}
	// One week of the run at a 200 Gb/s site link.
	week := total.Window(total.Start, total.Start.Add(7*24*time.Hour))
	busy, err := vb.WANBusy(week, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at 200 Gb/s the link is busy %.1f%% of the time (paper: 2-4%%)\n", busy*100)
}
