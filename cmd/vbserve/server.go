// The HTTP daemon: a mutex-guarded engine behind a small JSON API, plus
// the obs-v2 telemetry surface (Prometheus metrics, registry snapshots,
// live event stream, pprof) mounted from the run's registry.
//
//	POST /v1/arrive    {"demand":{...},"vms":[...]}  queue an application
//	POST /v1/step      advance one plan step, return its decision record
//	GET  /v1/decisions full decision log (JSONL)
//	GET  /v1/state     engine status
//	GET  /v1/snapshot  engine state (binary, restorable with -restore)
//	POST /v1/snapshot  write engine state to the -snapshot path
//	GET  /metrics, /snapshot, /events, /debug/pprof/...   obs-v2 telemetry
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync"

	vb "github.com/vbcloud/vb"
	"github.com/vbcloud/vb/internal/obs/expo"
)

// daemon is the serving state: one engine, a queue of arrivals for the
// next step, and the accumulated decision log.
type daemon struct {
	scn      *scenario
	snapPath string

	mu        sync.Mutex
	eng       *vb.VMEngine
	pending   []vb.AppArrival
	decisions [][]byte
	decFile   *os.File
}

func serve(scn *scenario, listen, decPath, snapPath, restorePath string) error {
	eng, err := scn.newEngine(restorePath)
	if err != nil {
		return err
	}
	d := &daemon{scn: scn, snapPath: snapPath, eng: eng}
	if decPath != "" {
		f, err := os.OpenFile(decPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		d.decFile = f
	}
	log.Printf("listening on %s (policy %v, %d sites, %d steps, starting at step %d)",
		listen, scn.cfg.Policy, len(scn.in.Actual), eng.Steps(), eng.Step())
	return http.ListenAndServe(listen, d.handler())
}

func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/arrive", d.handleArrive)
	mux.HandleFunc("/v1/step", d.handleStep)
	mux.HandleFunc("/v1/decisions", d.handleDecisions)
	mux.HandleFunc("/v1/state", d.handleState)
	mux.HandleFunc("/v1/snapshot", d.handleSnapshot)
	// The obs-v2 telemetry surface, served from the run's registry.
	tele := expo.NewServer(d.scn.reg).Handler()
	for _, p := range []string{"/metrics", "/snapshot", "/events", "/debug/pprof/"} {
		mux.Handle(p, tele)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (d *daemon) handleArrive(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var arr vb.AppArrival
	if err := json.NewDecoder(r.Body).Decode(&arr); err != nil {
		httpError(w, http.StatusBadRequest, "decoding arrival: %v", err)
		return
	}
	if err := arr.Demand.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "invalid demand: %v", err)
		return
	}
	d.mu.Lock()
	d.pending = append(d.pending, arr)
	n := len(d.pending)
	d.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]int{"queued": n})
}

func (d *daemon) handleStep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.eng.Done() {
		httpError(w, http.StatusConflict, "timeline exhausted (%d steps)", d.eng.Steps())
		return
	}
	rep, err := d.eng.Advance(d.pending)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "advance: %v", err)
		return
	}
	d.pending = d.pending[:0]
	line, err := json.Marshal(rep)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding report: %v", err)
		return
	}
	d.decisions = append(d.decisions, line)
	if d.decFile != nil {
		if _, err := d.decFile.Write(append(line, '\n')); err != nil {
			httpError(w, http.StatusInternalServerError, "writing decision log: %v", err)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(line, '\n'))
}

func (d *daemon) handleDecisions(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	defer d.mu.Unlock()
	w.Header().Set("Content-Type", "application/jsonl")
	bw := bufio.NewWriter(w)
	for _, line := range d.decisions {
		bw.Write(line)
		bw.WriteByte('\n')
	}
	bw.Flush()
}

func (d *daemon) handleState(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	defer d.mu.Unlock()
	res := d.eng.Result()
	state := map[string]interface{}{
		"policy":      d.scn.cfg.Policy.String(),
		"step":        d.eng.Step(),
		"steps":       d.eng.Steps(),
		"done":        d.eng.Done(),
		"running_vms": d.eng.Running(),
		"tracked_vms": d.eng.TrackedVMs(),
		"queued":      len(d.pending),
		"moves":       res.Moves,
		"transfer_gb": res.Transfer.Total(),
	}
	if !d.eng.Done() {
		state["now"] = d.eng.Now()
	}
	writeJSON(w, http.StatusOK, state)
}

func (d *daemon) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch r.Method {
	case http.MethodGet:
		// Stream the engine state; restorable via -restore or
		// vb.RestoreVMEngine.
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := d.eng.Snapshot(w); err != nil {
			httpError(w, http.StatusInternalServerError, "snapshot: %v", err)
		}
	case http.MethodPost:
		if d.snapPath == "" {
			httpError(w, http.StatusPreconditionFailed, "no -snapshot path configured")
			return
		}
		if err := writeSnapshot(d.eng, d.snapPath); err != nil {
			httpError(w, http.StatusInternalServerError, "snapshot: %v", err)
			return
		}
		info, _ := os.Stat(d.snapPath)
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"path": d.snapPath, "bytes": info.Size(), "step": d.eng.Step(),
		})
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST")
	}
}
