// Package plot renders time series and CDFs as ASCII charts, so the
// paper's figures come out of the benchmark harness and CLI tools as
// pictures, not just numbers.
package plot

import (
	"fmt"
	"math"
	"strings"

	"github.com/vbcloud/vb/internal/stats"
	"github.com/vbcloud/vb/internal/trace"
)

// Options controls chart geometry.
type Options struct {
	// Width and Height are the plot area in characters (defaults 72x16).
	Width, Height int
	// Title is printed above the chart.
	Title string
	// YLabel annotates the axis (printed with the range).
	YLabel string
	// LogY plots log10 of positive values (zeros clamp to the floor).
	LogY bool
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 16
	}
	if o.Width > 400 {
		o.Width = 400
	}
	if o.Height > 100 {
		o.Height = 100
	}
	return o
}

// Series renders one series as an ASCII line chart.
func Series(s trace.Series, opt Options) (string, error) {
	if s.IsEmpty() {
		return "", trace.ErrEmptySeries
	}
	return Multi([]trace.Series{s}, []string{""}, opt)
}

// markers distinguish overlaid series.
var markers = []rune{'*', '+', 'o', 'x', '#', '@'}

// Multi renders up to six series (same time base) overlaid, with a legend.
func Multi(series []trace.Series, names []string, opt Options) (string, error) {
	if len(series) == 0 {
		return "", trace.ErrEmptySeries
	}
	if len(series) > len(markers) {
		return "", fmt.Errorf("plot: at most %d series, got %d", len(markers), len(series))
	}
	if len(names) != len(series) {
		return "", fmt.Errorf("plot: %d names for %d series", len(names), len(series))
	}
	o := opt.withDefaults()

	// Value transform and range.
	tr := func(v float64) float64 { return v }
	if o.LogY {
		tr = func(v float64) float64 {
			if v <= 0 {
				return math.Inf(-1) // clamped to floor later
			}
			return math.Log10(v)
		}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range series {
		if s.IsEmpty() {
			return "", trace.ErrEmptySeries
		}
		if s.Len() > n {
			n = s.Len()
		}
		for _, v := range s.Values {
			tv := tr(v)
			if math.IsInf(tv, -1) {
				continue
			}
			if tv < lo {
				lo = tv
			}
			if tv > hi {
				hi = tv
			}
		}
	}
	if math.IsInf(lo, 1) { // all zeros under LogY
		lo, hi = 0, 1
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]rune, o.Height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", o.Width))
	}
	for si, s := range series {
		mark := markers[si]
		for col := 0; col < o.Width; col++ {
			// Sample the series at this column.
			idx := col * (s.Len() - 1) / max(1, o.Width-1)
			if idx >= s.Len() {
				idx = s.Len() - 1
			}
			tv := tr(s.Values[idx])
			if math.IsInf(tv, -1) {
				tv = lo
			}
			frac := (tv - lo) / (hi - lo)
			row := o.Height - 1 - int(frac*float64(o.Height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= o.Height {
				row = o.Height - 1
			}
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	if o.Title != "" {
		fmt.Fprintf(&b, "%s\n", o.Title)
	}
	yHi, yLo := hi, lo
	suffix := ""
	if o.LogY {
		suffix = " (log10)"
	}
	for r, row := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%7.3g ", yHi)
		} else if r == o.Height-1 {
			label = fmt.Sprintf("%7.3g ", yLo)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", o.Width))
	first := series[0]
	fmt.Fprintf(&b, "        %s .. %s%s\n",
		first.Start.Format("2006-01-02 15:04"), first.End().Format("2006-01-02 15:04"), suffix)
	if o.YLabel != "" {
		fmt.Fprintf(&b, "        y: %s\n", o.YLabel)
	}
	legend := ""
	for i, name := range names {
		if name == "" {
			continue
		}
		legend += fmt.Sprintf("  %c %s", markers[i], name)
	}
	if legend != "" {
		fmt.Fprintf(&b, "       %s\n", legend)
	}
	return b.String(), nil
}

// CDFs renders one or more CDF point sets (x on the horizontal axis, P on
// the vertical) as an ASCII chart.
func CDFs(sets map[string][]stats.Point, opt Options) (string, error) {
	if len(sets) == 0 {
		return "", fmt.Errorf("plot: no CDFs")
	}
	o := opt.withDefaults()
	// Order names deterministically.
	names := make([]string, 0, len(sets))
	for name := range sets {
		names = append(names, name)
	}
	sortStrings(names)
	if len(names) > len(markers) {
		return "", fmt.Errorf("plot: at most %d CDFs, got %d", len(markers), len(names))
	}

	xLo, xHi := math.Inf(1), math.Inf(-1)
	for _, pts := range sets {
		for _, p := range pts {
			if p.X < xLo {
				xLo = p.X
			}
			if p.X > xHi {
				xHi = p.X
			}
		}
	}
	if math.IsInf(xLo, 1) || xHi == xLo {
		xHi = xLo + 1
	}

	grid := make([][]rune, o.Height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", o.Width))
	}
	for si, name := range names {
		mark := markers[si]
		pts := sets[name]
		for _, p := range pts {
			col := int((p.X - xLo) / (xHi - xLo) * float64(o.Width-1))
			row := o.Height - 1 - int(p.Y*float64(o.Height-1)+0.5)
			if col < 0 || col >= o.Width || row < 0 || row >= o.Height {
				continue
			}
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	if o.Title != "" {
		fmt.Fprintf(&b, "%s\n", o.Title)
	}
	for r, row := range grid {
		label := "      "
		if r == 0 {
			label = "  1.0 "
		} else if r == o.Height-1 {
			label = "  0.0 "
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "      +%s\n", strings.Repeat("-", o.Width))
	left := fmt.Sprintf("x: %.3g", xLo)
	right := fmt.Sprintf("%.3g", xHi)
	pad := max(1, o.Width-len(left)-len(right))
	fmt.Fprintf(&b, "      %s%s%s\n", left, strings.Repeat(" ", pad), right)
	legend := ""
	for i, name := range names {
		legend += fmt.Sprintf("  %c %s", markers[i], name)
	}
	fmt.Fprintf(&b, "     %s\n", legend)
	return b.String(), nil
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
