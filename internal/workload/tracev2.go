// Trace v2: a versioned JSONL record/replay format for application traces.
// The first line is a header (format tag, version, generator seed, spec
// hash, app count); every following line is one application with its VMs.
// A recorded trace replays bit-identically: ReadTraceV2 returns the exact
// apps WriteTraceV2 was given, so a simulation over the replayed trace
// reproduces the live-generated run decision for decision.
package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// TraceFormatV2 tags the first line of a v2 trace file.
const TraceFormatV2 = "vb.apptrace"

// TraceV2Version is the trace format version this build reads and writes.
const TraceV2Version = 2

// TraceHeader is the first JSONL record of a v2 trace.
type TraceHeader struct {
	// Format must be TraceFormatV2.
	Format string `json:"format"`
	// Version must be TraceV2Version.
	Version int `json:"version"`
	// Seed is the generator seed the trace was produced with.
	Seed uint64 `json:"seed"`
	// SpecHash fingerprints the TraceSpec behind the trace (TraceSpec.Hash,
	// hex); empty for traces not generated from a spec.
	SpecHash string `json:"spec_hash,omitempty"`
	// Apps is the number of application records that follow.
	Apps int `json:"apps"`
}

// v2App is one application record in wire form. VM arrivals equal the app
// arrival (the scheduling model's assumption), so they are not repeated.
type v2App struct {
	ID       int       `json:"id"`
	Arrival  time.Time `json:"arrival"`
	Duration int64     `json:"duration_ns,omitempty"`
	VMs      []v2VM    `json:"vms"`
}

// v2VM is one VM record; class is the SLO class name so traces are
// self-describing.
type v2VM struct {
	ID       int    `json:"id"`
	Cores    int    `json:"cores"`
	MemoryGB int    `json:"memory_gb"`
	Class    string `json:"class"`
	Lifetime int64  `json:"lifetime_ns,omitempty"`
}

// WriteTraceV2 records apps as a v2 JSONL trace. The header's Apps count is
// overwritten with len(apps); Format and Version are filled in when empty.
func WriteTraceV2(w io.Writer, h TraceHeader, apps []App) error {
	h.Format = TraceFormatV2
	h.Version = TraceV2Version
	h.Apps = len(apps)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("workload: writing trace header: %w", err)
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			return err
		}
		rec := v2App{ID: a.ID, Arrival: a.Arrival, Duration: int64(a.Duration), VMs: make([]v2VM, len(a.VMs))}
		for i, vm := range a.VMs {
			rec.VMs[i] = v2VM{
				ID: vm.ID, Cores: vm.Cores, MemoryGB: vm.MemoryGB,
				Class: vm.Class.String(), Lifetime: int64(vm.Lifetime),
			}
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("workload: writing app %d: %w", a.ID, err)
		}
	}
	return bw.Flush()
}

// ReadTraceV2 replays a v2 JSONL trace: it returns the header and the exact
// apps that were recorded. Unknown formats and versions are rejected, as is
// a record count disagreeing with the header.
func ReadTraceV2(r io.Reader) (TraceHeader, []App, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return TraceHeader{}, nil, fmt.Errorf("workload: reading trace header: %w", err)
		}
		return TraceHeader{}, nil, fmt.Errorf("workload: empty trace file")
	}
	var h TraceHeader
	if err := strictUnmarshal(sc.Bytes(), &h); err != nil {
		return TraceHeader{}, nil, fmt.Errorf("workload: parsing trace header: %w", err)
	}
	if h.Format != TraceFormatV2 {
		return TraceHeader{}, nil, fmt.Errorf("workload: trace format %q, want %q", h.Format, TraceFormatV2)
	}
	if h.Version != TraceV2Version {
		return TraceHeader{}, nil, fmt.Errorf("workload: trace version %d, this build reads %d", h.Version, TraceV2Version)
	}
	var apps []App
	for line := 2; sc.Scan(); line++ {
		var rec v2App
		if err := strictUnmarshal(sc.Bytes(), &rec); err != nil {
			return TraceHeader{}, nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		app := App{ID: rec.ID, Arrival: rec.Arrival, Duration: time.Duration(rec.Duration), VMs: make([]VM, len(rec.VMs))}
		for i, vm := range rec.VMs {
			class, err := ParseClass(vm.Class)
			if err != nil {
				return TraceHeader{}, nil, fmt.Errorf("workload: line %d VM %d: %w", line, vm.ID, err)
			}
			app.VMs[i] = VM{
				ID: vm.ID, Cores: vm.Cores, MemoryGB: vm.MemoryGB,
				Class: class, Arrival: rec.Arrival, Lifetime: time.Duration(vm.Lifetime),
				AppID: rec.ID,
			}
		}
		if err := app.Validate(); err != nil {
			return TraceHeader{}, nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		apps = append(apps, app)
	}
	if err := sc.Err(); err != nil {
		return TraceHeader{}, nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if len(apps) != h.Apps {
		return TraceHeader{}, nil, fmt.Errorf("workload: trace has %d apps, header says %d", len(apps), h.Apps)
	}
	return h, apps, nil
}
