// Package obs is the simulator's zero-dependency observability layer:
// run-scoped metrics, structured event tracing, and timing spans for the
// scheduling and simulation hot paths.
//
// The package has three pieces:
//
//   - Registry: a concurrency-safe, run-scoped collection of counters,
//     gauges, and fixed-bucket histograms. Every method is nil-safe — a nil
//     *Registry compiles to a no-op and adds no allocations, so existing
//     callers and benchmarks that do not opt in pay nothing.
//
//   - Tracer: a structured event stream. Components emit typed Events
//     (plan computed, planned reallocation, forced migration, stable-core
//     pause, forecast horizon switch, MIP solve start/finish with
//     wall-clock duration and objective value) into an in-memory ring
//     buffer; an optional sink mirrors every event as one JSON object per
//     line (JSONL). Per-type counts and GB/core totals are tracked exactly
//     even after the ring wraps, so event totals always reconcile with the
//     run's aggregate results.
//
//   - Time: lightweight timing spans. `defer obs.Time(reg, "mip.solve")()`
//     records the enclosing call's wall-clock duration into the registry
//     histogram of that name (in seconds). With a nil registry the span
//     neither reads the clock nor allocates.
//
// A run's full picture is serialized as a Manifest (seed, policy, fleet,
// counters, histograms, per-event-type totals) via Registry.Manifest —
// the JSON document the `-metrics` CLI flags write, and the baseline every
// future performance PR measures against.
//
// Typical wiring:
//
//	reg := obs.NewRegistry()
//	reg.Tracer().SetSink(file)        // optional JSONL stream
//	cfg.Obs, in.Obs = reg, reg        // core.Config and sim.Input
//	res, err := sim.Run(cfg, in)
//	m := reg.Manifest()
//	m.Policy = cfg.Policy.String()
//	err = m.WriteJSON(out)
package obs
