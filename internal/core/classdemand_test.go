package core

import (
	"math"
	"testing"

	"github.com/vbcloud/vb/internal/workload"
)

func TestAppDemandPauseWeight(t *testing.T) {
	legacy := AppDemand{ID: 1, Cores: 10, StableCores: 7, MemGBPerCore: 2}
	if w := legacy.PauseWeight(); w != 1 {
		t.Errorf("legacy demand weight %v, must be exactly 1", w)
	}
	classed := AppDemand{ID: 2, Cores: 10, StableCores: 8, MemGBPerCore: 2,
		ClassCores: map[workload.Class]float64{
			workload.RealTime:   4,
			workload.Batch:      4,
			workload.Degradable: 2,
		}}
	if err := classed.Validate(); err != nil {
		t.Fatal(err)
	}
	want := (4*workload.RealTime.PauseWeight() + 4*workload.Batch.PauseWeight()) / 8
	if w := classed.PauseWeight(); math.Abs(w-want) > 1e-12 {
		t.Errorf("weight %v, want %v", w, want)
	}
	// All-degradable firm side: weight falls back to 1 (nothing to pause).
	spot := AppDemand{ID: 3, Cores: 5, StableCores: 0, MemGBPerCore: 2,
		ClassCores: map[workload.Class]float64{workload.Degradable: 5}}
	if w := spot.PauseWeight(); w != 1 {
		t.Errorf("all-degradable weight %v, want 1", w)
	}
}

func TestAppDemandClassBreakdown(t *testing.T) {
	legacy := AppDemand{ID: 1, Cores: 10, StableCores: 7, MemGBPerCore: 2}
	got := legacy.ClassBreakdown()
	if got[workload.Stable] != 7 || got[workload.Degradable] != 3 || len(got) != 2 {
		t.Errorf("legacy breakdown %v", got)
	}
	allStable := AppDemand{ID: 2, Cores: 4, StableCores: 4, MemGBPerCore: 2}
	if got := allStable.ClassBreakdown(); got[workload.Stable] != 4 || len(got) != 1 {
		t.Errorf("all-stable breakdown %v", got)
	}
	classed := AppDemand{ID: 3, Cores: 6, StableCores: 4, MemGBPerCore: 2,
		ClassCores: map[workload.Class]float64{
			workload.Interactive: 4,
			workload.Degradable:  2,
			workload.Batch:       0,
		}}
	got = classed.ClassBreakdown()
	if got[workload.Interactive] != 4 || got[workload.Degradable] != 2 || len(got) != 2 {
		t.Errorf("classed breakdown %v (zero-core classes must be dropped)", got)
	}
}

func TestAppDemandValidateClassCores(t *testing.T) {
	base := func() AppDemand {
		return AppDemand{ID: 1, Cores: 10, StableCores: 6, MemGBPerCore: 2,
			ClassCores: map[workload.Class]float64{
				workload.RealTime:   2,
				workload.Batch:      4,
				workload.Degradable: 4,
			}}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid classed demand rejected: %v", err)
	}
	bad := []func(*AppDemand){
		func(d *AppDemand) { d.ClassCores[workload.Class(42)] = 0 },
		func(d *AppDemand) { d.ClassCores[workload.Batch] = math.NaN() },
		func(d *AppDemand) { d.ClassCores[workload.Batch] = -1 },
		func(d *AppDemand) { d.ClassCores[workload.Batch] = 5 },   // firm != StableCores
		func(d *AppDemand) { d.ClassCores[workload.Degradable] = 7 }, // total != Cores
	}
	for i, mutate := range bad {
		d := base()
		mutate(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("bad class cores %d accepted", i)
		}
	}
}
