package sim

import (
	"math"
	"sort"
	"time"

	"github.com/vbcloud/vb/internal/cluster"
	"github.com/vbcloud/vb/internal/core"
	"github.com/vbcloud/vb/internal/forecast"
	"github.com/vbcloud/vb/internal/obs"
	"github.com/vbcloud/vb/internal/trace"
	"github.com/vbcloud/vb/internal/workload"
)

// VMLevelResult reports a high-fidelity run where individual VMs are placed
// on real cluster simulators (server packing, fragmentation, round-robin
// eviction) while the co-scheduler steers aggregate allocations. Comparing
// it against Run's core-granularity results validates that the scheduler's
// fluid model survives contact with discrete VMs.
type VMLevelResult struct {
	Policy core.Policy
	// Transfer is migration traffic per plan step in GB (actual VM memory
	// moved between sites).
	Transfer trace.Series
	// Moves counts inter-site VM migrations.
	Moves int
	// FailedPlacements counts VM-steps where a stable VM could not run
	// anywhere (fragmentation or true capacity shortage).
	FailedPlacements int
	// Fragmentation is the mean end-of-step fragmentation score across
	// sites (see cluster.Snapshot).
	Fragmentation float64
	// Per-SLO-class disruption counters: migration traffic, evictions, and
	// failed placements attributed to each VM's class. Legacy two-class runs
	// record everything under workload.Stable. Snapshots taken before these
	// counters existed restore with the pre-snapshot portion missing.
	MovesGBByClass   map[workload.Class]float64
	EvictionsByClass map[workload.Class]int
	FailedByClass    map[workload.Class]int
}

// RunVMLevel simulates one policy at VM granularity. Apps supplies the
// discrete VMs behind in.Apps (matched by App ID); only firm-class VMs
// (every class but Degradable) are scheduled, as in Run. clusterCfg
// describes each site's hardware.
//
// It is a thin batch loop over VMEngine.Advance: the demands are sorted by
// Start and each step is fed the newly arrived prefix, which reproduces
// the streaming daemon's decisions exactly (and vice versa).
func RunVMLevel(cfg core.Config, in Input, apps []workload.App, clusterCfg cluster.Config) (VMLevelResult, error) {
	if err := cfg.Validate(); err != nil {
		return VMLevelResult{}, err
	}
	if err := in.Validate(); err != nil {
		return VMLevelResult{}, err
	}
	eng, err := NewVMEngine(cfg, in, clusterCfg)
	if err != nil {
		return VMLevelResult{}, err
	}
	defer obs.Time(eng.reg, "sim.vmlevel.run")()

	// Assemble arrivals exactly as the streaming path would see them:
	// demand plus the app's VMs, ordered by Start.
	vmsByApp := map[int][]workload.VM{}
	for _, a := range apps {
		vmsByApp[a.ID] = a.VMs
	}
	arrivals := make([]AppArrival, 0, len(in.Apps))
	for _, d := range in.Apps {
		arrivals = append(arrivals, AppArrival{Demand: d, VMs: vmsByApp[d.ID]})
	}
	sort.Slice(arrivals, func(i, j int) bool {
		return arrivals[i].Demand.Start.Before(arrivals[j].Demand.Start)
	})

	next := 0
	for !eng.Done() {
		now := eng.Now()
		var batch []AppArrival
		for next < len(arrivals) && !arrivals[next].Demand.Start.After(now) {
			batch = append(batch, arrivals[next])
			next++
		}
		if _, err := eng.Advance(batch); err != nil {
			return VMLevelResult{}, err
		}
	}
	// Apps whose Start lies beyond the timeline never arrive; the batch
	// run simply drops them, as the loop above does implicitly.
	return eng.Result(), nil
}

// placeVM starts a VM at the app's most under-target site with room,
// falling back to any site that admits it. It returns the site index or -1.
func placeVM(vm workload.VM, plan core.Plan, t int, sites []*cluster.Site, vmSite map[int]int) int {
	numSites := len(sites)
	type cand struct {
		site  int
		under float64
	}
	cands := make([]cand, 0, numSites)
	for s := 0; s < numSites; s++ {
		under := 0.0
		if plan.Alloc != nil {
			under = plan.Alloc[s][t]
		}
		cands = append(cands, cand{site: s, under: under})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].under > cands[j].under })
	for _, c := range cands {
		if sites[c.site].Admit(vm) {
			return c.site
		}
	}
	return -1
}

// capacityFns builds the forecast-driven capacity estimators shared by the
// core-level and VM-level engines.
func capacityFns(in Input, base trace.Series, util float64, now time.Time, t, stepsPerDay, T int) (predCap, stableCap core.CapacityFn) {
	margin := func(lead time.Duration) float64 {
		switch {
		case lead <= forecast.Horizon3H:
			return 0.03
		case lead <= forecast.HorizonDay:
			return 0.10
		default:
			return 0.18
		}
	}
	predCap = func(site, step int) float64 {
		v, ok := in.Bundles[site].PredictAt(now, base.TimeAt(step))
		if !ok {
			v = 0
		}
		// Fault view: in-flight outages (known once struck) and forecast
		// busts scale the prediction; ×1.0 is bit-exact with no injector.
		return util * v * in.TotalCores * in.Faults.ForecastFactor(site, t, step)
	}
	stableCap = func(site, step int) float64 {
		target := base.TimeAt(step)
		lead := target.Sub(now)
		v := math.Inf(1)
		for st := step - 1; st <= step+1; st++ {
			if st < 0 || st >= T {
				continue
			}
			pv, ok := in.Bundles[site].PredictAt(now, base.TimeAt(st))
			if !ok {
				pv = 0
			}
			if pv < v {
				v = pv
			}
		}
		if math.IsInf(v, 1) {
			v = 0
		}
		return (1 - margin(lead)) * util * v * in.TotalCores * in.Faults.ForecastFactor(site, t, step)
	}
	return predCap, stableCap
}
