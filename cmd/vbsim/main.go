// Command vbsim runs the single-site migration-overhead simulation behind
// the paper's Figure 4: a 700-server VB site driven by renewable power with
// an Azure-like VM arrival trace.
//
// Usage:
//
//	vbsim -days 7 -source wind
//	vbsim -days 90 -source solar -csv > transfers.csv
//	vbsim -days 7 -trace run.jsonl -metrics run.json
//	vbsim -days 365 -pprof localhost:6060
//	vbsim -all -parallel 8   # regenerate every figure/table concurrently
//	vbsim -days 4 -faults 'blackout:1@8-12,slow:-1@0-16=4096'   # faulted Table 1
//	vbsim -workload cohorts.json -record trace.jsonl   # per-SLO-class table + trace v2
//	vbsim -replay trace.jsonl                          # same table from the recording
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	vb "github.com/vbcloud/vb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vbsim: ")

	var (
		days       = flag.Int("days", 7, "days to simulate")
		seed       = flag.Uint64("seed", vb.DefaultSeed, "random seed")
		sourceArg  = flag.String("source", "wind", `power source: "wind" or "solar"`)
		csvOut     = flag.Bool("csv", false, "emit the per-step power/in/out series as CSV")
		chart      = flag.Bool("chart", false, "render the Fig 4a timeline as an ASCII chart")
		traceOut   = flag.String("trace", "", "write structured run events to this JSONL file")
		metricsOut = flag.String("metrics", "", "write the run manifest (metrics JSON) to this file")
		listenAddr = flag.String("listen", "", "serve live telemetry (/metrics, /snapshot, /events, pprof) on this address (e.g. localhost:8090)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		parallel   = flag.Int("parallel", 0, "worker goroutines for generation and experiments (0 = all cores, 1 = serial; output is identical)")
		runAll     = flag.Bool("all", false, "regenerate every figure and table of the evaluation and exit")
		faults     = flag.String("faults", "", "run the Table 1 comparison under a fault script: compact spec (kind:site[:peer]@start-end[=sev],...) or @file.json")
		workload   = flag.String("workload", "", "run the per-SLO-class policy comparison over a cohort trace spec (JSON file)")
		record     = flag.String("record", "", "with -workload: also record the generated application trace (v2 JSONL) to this file")
		replay     = flag.String("replay", "", "run the per-SLO-class policy comparison over a recorded trace (v2 JSONL file)")
	)
	flag.Parse()
	vb.SetParallelism(*parallel)

	if *workload != "" || *replay != "" {
		if err := runWorkload(*seed, *days, *workload, *record, *replay); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *faults != "" {
		if err := runFaulted(*seed, *days, *faults); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *runAll {
		res, err := vb.RunAllExperiments(*seed, *parallel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.Report())
		return
	}

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
		log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
	}

	var src vb.Source
	switch *sourceArg {
	case "wind":
		src = vb.Wind
	case "solar":
		src = vb.Solar
	default:
		log.Fatalf("unknown -source %q", *sourceArg)
	}

	var reg *vb.MetricsRegistry
	if *traceOut != "" || *metricsOut != "" || *listenAddr != "" {
		reg = vb.NewMetrics()
	}
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		traceFile = f
		reg.Tracer().SetSink(f)
	}
	var telemetry *vb.TelemetryServer
	if *listenAddr != "" {
		srv, err := vb.ServeTelemetry(*listenAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		telemetry = srv
		log.Printf("telemetry on http://%s/ (/metrics /snapshot /events /debug/pprof/)", srv.Addr())
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := telemetry.Shutdown(ctx); err != nil {
			log.Printf("telemetry shutdown: %v", err)
		}
	}()

	res, err := vb.Fig4MigrationObs(*seed, src, *days, reg)
	if err != nil {
		log.Fatal(err)
	}
	if err := vb.FinishTraceSink(reg, traceFile); err != nil {
		log.Fatalf("trace sink failed, events lost: %v", err)
	}
	if *metricsOut != "" {
		m := reg.Manifest()
		m.Seed = *seed
		m.Fleet = []string{*sourceArg}
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *csvOut {
		if err := vb.WriteCSV(os.Stdout, []string{"power", "out_gb", "in_gb"},
			res.Run.Power, res.Run.OutGB, res.Run.InGB); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(res.Report())
	if *chart {
		c, err := vb.PlotSeries(res.Run.Power, vb.PlotOptions{Title: "normalized power", Height: 8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(c)
		c, err = vb.PlotMulti([]vb.Series{res.Run.OutGB.Shift(1), res.Run.InGB.Shift(1)},
			[]string{"out GB", "in GB"}, vb.PlotOptions{Title: "migration traffic per 15 min (log)", LogY: true, Height: 10})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(c)
	}
	link := 200.0
	fmt.Printf("  utilization mean: %.1f%%\n", res.Run.Utilization.Mean()*100)
	if h, ok := reg.Histogram("cluster.step_out_gb"); ok && h.Count > 0 {
		fmt.Printf("  per-step out-GB quantiles: p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
			h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max)
	}
	fmt.Printf("  at %.0f Gb/s per-site WAN: see `go test -bench=BenchmarkWANBusyFraction`\n", link)
}

// runWorkload drives the per-SLO-class policy comparison from a cohort
// trace spec (-workload, optionally recording the generated trace with
// -record) or from a previously recorded trace (-replay). A record/replay
// round trip reproduces the generated run's table bit for bit.
func runWorkload(seed uint64, days int, specPath, recordPath, replayPath string) error {
	if specPath != "" && replayPath != "" {
		return fmt.Errorf("-workload and -replay are mutually exclusive")
	}
	if recordPath != "" && specPath == "" {
		return fmt.Errorf("-record requires -workload")
	}
	setup := vb.SLOClassSetup{Seed: seed, Days: days}

	if replayPath != "" {
		f, err := os.Open(replayPath)
		if err != nil {
			return err
		}
		defer f.Close()
		h, apps, err := vb.ReadAppTrace(f)
		if err != nil {
			return err
		}
		res, err := vb.SLOClassReplay(setup, apps)
		if err != nil {
			return err
		}
		fmt.Printf("Replayed trace: %d apps, seed %d, spec %s\n", len(apps), h.Seed, h.SpecHash)
		fmt.Print(res.Report())
		return nil
	}

	spec, err := vb.LoadTraceSpec(specPath)
	if err != nil {
		return err
	}
	setup.Spec = spec
	if recordPath != "" {
		apps, err := vb.GenerateCohortApps(*spec)
		if err != nil {
			return err
		}
		f, err := os.Create(recordPath)
		if err != nil {
			return err
		}
		h := vb.TraceHeader{Seed: spec.Seed, SpecHash: fmt.Sprintf("%016x", spec.Hash())}
		if err := vb.WriteAppTrace(f, h, apps); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Printf("recorded %d apps to %s", len(apps), recordPath)
	}
	res, err := vb.SLOClassComparison(setup)
	if err != nil {
		return err
	}
	fmt.Print(res.Report())
	return nil
}

// runFaulted reruns the multi-site Table 1 policy comparison under a fault
// script (site blackouts, brownouts, WAN cuts, forecast busts, solver
// slowdowns) and reports the resulting migration overhead and availability
// alongside the fault and degradation counters. The same seed plus the same
// script always reproduces the same table.
func runFaulted(seed uint64, days int, spec string) error {
	var script *vb.FaultScript
	var err error
	if strings.HasPrefix(spec, "@") {
		script, err = vb.LoadFaultScript(spec[1:])
	} else {
		script, err = vb.ParseFaultSpec(spec)
	}
	if err != nil {
		return err
	}
	reg := vb.NewMetrics()
	res, err := vb.Table1PolicyComparison(vb.Table1Setup{
		Seed:   seed,
		Days:   days,
		Faults: script,
		Obs:    reg,
	})
	if err != nil {
		return err
	}
	fmt.Printf("Faulted run: %d event(s), %d days\n", len(script.Events), days)
	fmt.Print(res.Report())
	fmt.Printf("  faults injected: %.0f  scheduler fallbacks: %.0f  solver deadline/derate truncations: %.0f\n",
		reg.Counter("fault.injected.count"),
		reg.Counter("scheduler.fallback.count"),
		reg.Counter("solver.deadline_exceeded"))
	return nil
}
