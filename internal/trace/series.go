// Package trace provides the time-series substrate used throughout the
// Virtual Battery simulator: regularly sampled series, window operations,
// arithmetic, resampling, and CSV/JSON interchange.
//
// A Series is the common currency between the energy models (normalized
// power), the forecaster (predicted power), the cluster simulator (migration
// bytes per interval) and the statistics layer.
package trace

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Common errors returned by Series operations.
var (
	ErrEmptySeries    = errors.New("trace: empty series")
	ErrStepMismatch   = errors.New("trace: series step mismatch")
	ErrLengthMismatch = errors.New("trace: series length mismatch")
	ErrBadWindow      = errors.New("trace: window does not divide series")
	ErrBadStep        = errors.New("trace: non-positive step")
)

// Series is a regularly sampled time series. The i-th sample covers the
// half-open interval [Start+i*Step, Start+(i+1)*Step).
//
// The zero value is an empty series; most operations on it return
// ErrEmptySeries rather than panicking.
type Series struct {
	// Start is the timestamp of the first sample.
	Start time.Time
	// Step is the sampling interval. It must be positive for a non-empty
	// series.
	Step time.Duration
	// Values holds one sample per interval.
	Values []float64
}

// New returns a Series with the given start, step and a zero-filled value
// slice of length n.
func New(start time.Time, step time.Duration, n int) Series {
	return Series{Start: start, Step: step, Values: make([]float64, n)}
}

// FromValues returns a Series wrapping vals (not copied).
func FromValues(start time.Time, step time.Duration, vals []float64) Series {
	return Series{Start: start, Step: step, Values: vals}
}

// Len returns the number of samples.
func (s Series) Len() int { return len(s.Values) }

// IsEmpty reports whether the series has no samples.
func (s Series) IsEmpty() bool { return len(s.Values) == 0 }

// End returns the timestamp just past the final sample's interval.
func (s Series) End() time.Time {
	return s.Start.Add(time.Duration(len(s.Values)) * s.Step)
}

// Duration returns the total time covered by the series.
func (s Series) Duration() time.Duration {
	return time.Duration(len(s.Values)) * s.Step
}

// TimeAt returns the timestamp of sample i.
func (s Series) TimeAt(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Step)
}

// IndexAt returns the sample index whose interval contains t, or -1 if t is
// outside the series.
func (s Series) IndexAt(t time.Time) int {
	if s.IsEmpty() || s.Step <= 0 {
		return -1
	}
	d := t.Sub(s.Start)
	if d < 0 {
		return -1
	}
	i := int(d / s.Step)
	if i >= len(s.Values) {
		return -1
	}
	return i
}

// At returns the value of the interval containing t and true, or 0 and false
// if t falls outside the series.
func (s Series) At(t time.Time) (float64, bool) {
	i := s.IndexAt(t)
	if i < 0 {
		return 0, false
	}
	return s.Values[i], true
}

// Clone returns a deep copy of the series.
func (s Series) Clone() Series {
	out := s
	out.Values = append([]float64(nil), s.Values...)
	return out
}

// Slice returns the sub-series of samples [i, j). It shares the underlying
// array with s.
func (s Series) Slice(i, j int) Series {
	return Series{
		Start:  s.TimeAt(i),
		Step:   s.Step,
		Values: s.Values[i:j],
	}
}

// Window returns the sub-series covering [from, to). Both bounds are clamped
// to the series extent. The result shares storage with s.
func (s Series) Window(from, to time.Time) Series {
	if s.IsEmpty() {
		return Series{Start: from, Step: s.Step}
	}
	i := 0
	if d := from.Sub(s.Start); d > 0 {
		i = int(d / s.Step)
	}
	j := len(s.Values)
	if d := to.Sub(s.Start); d >= 0 {
		if k := int((d + s.Step - 1) / s.Step); k < j {
			j = k
		}
	} else {
		j = 0
	}
	if i > j {
		i = j
	}
	return s.Slice(i, j)
}

// Scale returns a new series with every value multiplied by f.
func (s Series) Scale(f float64) Series {
	out := s.Clone()
	for i := range out.Values {
		out.Values[i] *= f
	}
	return out
}

// Shift returns a new series with c added to every value.
func (s Series) Shift(c float64) Series {
	out := s.Clone()
	for i := range out.Values {
		out.Values[i] += c
	}
	return out
}

// Clamp returns a new series with every value limited to [lo, hi].
func (s Series) Clamp(lo, hi float64) Series {
	out := s.Clone()
	for i, v := range out.Values {
		if v < lo {
			out.Values[i] = lo
		} else if v > hi {
			out.Values[i] = hi
		}
	}
	return out
}

// Map returns a new series with f applied to every value.
func (s Series) Map(f func(float64) float64) Series {
	out := s.Clone()
	for i, v := range out.Values {
		out.Values[i] = f(v)
	}
	return out
}

// Add returns the element-wise sum of s and t. The two series must have the
// same step and length; the result adopts s's start time.
func Add(s, t Series) (Series, error) {
	if err := compatible(s, t); err != nil {
		return Series{}, err
	}
	out := s.Clone()
	for i := range out.Values {
		out.Values[i] += t.Values[i]
	}
	return out, nil
}

// Sub returns the element-wise difference s - t.
func Sub(s, t Series) (Series, error) {
	if err := compatible(s, t); err != nil {
		return Series{}, err
	}
	out := s.Clone()
	for i := range out.Values {
		out.Values[i] -= t.Values[i]
	}
	return out, nil
}

// Sum returns the element-wise sum of all the given series, which must be
// pairwise compatible. It returns ErrEmptySeries when called with no series.
func Sum(series ...Series) (Series, error) {
	if len(series) == 0 {
		return Series{}, ErrEmptySeries
	}
	out := series[0].Clone()
	for _, t := range series[1:] {
		if err := compatible(out, t); err != nil {
			return Series{}, err
		}
		for i := range out.Values {
			out.Values[i] += t.Values[i]
		}
	}
	return out, nil
}

func compatible(s, t Series) error {
	if s.Step != t.Step {
		return fmt.Errorf("%w: %v vs %v", ErrStepMismatch, s.Step, t.Step)
	}
	if len(s.Values) != len(t.Values) {
		return fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(s.Values), len(t.Values))
	}
	return nil
}

// Total returns the sum of all values.
func (s Series) Total() float64 {
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum
}

// Mean returns the arithmetic mean of the values, or 0 for an empty series.
func (s Series) Mean() float64 {
	if s.IsEmpty() {
		return 0
	}
	return s.Total() / float64(len(s.Values))
}

// Min returns the minimum value, or +Inf for an empty series.
func (s Series) Min() float64 {
	m := math.Inf(1)
	for _, v := range s.Values {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum value, or -Inf for an empty series.
func (s Series) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// Energy integrates the series over time: sum(value_i * Step), with Step
// expressed in hours. For a series of megawatt samples this yields MWh.
func (s Series) Energy() float64 {
	return s.Total() * s.Step.Hours()
}

// Diff returns the first difference series d[i] = s[i+1] - s[i]. The result
// has one fewer sample than s and starts at s.Start.
func (s Series) Diff() Series {
	if s.Len() < 2 {
		return Series{Start: s.Start, Step: s.Step}
	}
	out := New(s.Start, s.Step, s.Len()-1)
	for i := 0; i < s.Len()-1; i++ {
		out.Values[i] = s.Values[i+1] - s.Values[i]
	}
	return out
}

// Resample converts the series to a new step. Downsampling (newStep a
// multiple of Step) averages each bucket; upsampling (Step a multiple of
// newStep) repeats each value. Any other ratio returns ErrBadWindow.
func (s Series) Resample(newStep time.Duration) (Series, error) {
	if newStep <= 0 || s.Step <= 0 {
		return Series{}, ErrBadStep
	}
	if newStep == s.Step {
		return s.Clone(), nil
	}
	if newStep > s.Step {
		if newStep%s.Step != 0 {
			return Series{}, fmt.Errorf("%w: %v into %v", ErrBadWindow, s.Step, newStep)
		}
		k := int(newStep / s.Step)
		n := s.Len() / k
		out := New(s.Start, newStep, n)
		for i := 0; i < n; i++ {
			var sum float64
			for j := 0; j < k; j++ {
				sum += s.Values[i*k+j]
			}
			out.Values[i] = sum / float64(k)
		}
		return out, nil
	}
	if s.Step%newStep != 0 {
		return Series{}, fmt.Errorf("%w: %v into %v", ErrBadWindow, newStep, s.Step)
	}
	k := int(s.Step / newStep)
	out := New(s.Start, newStep, s.Len()*k)
	for i, v := range s.Values {
		for j := 0; j < k; j++ {
			out.Values[i*k+j] = v
		}
	}
	return out, nil
}

// WindowMin returns a series of per-window minima. The window must be a
// positive multiple of Step, and the series length must be a multiple of the
// window size; otherwise ErrBadWindow is returned. The result has one sample
// per window with step == window.
func (s Series) WindowMin(window time.Duration) (Series, error) {
	return s.windowReduce(window, func(chunk []float64) float64 {
		m := math.Inf(1)
		for _, v := range chunk {
			if v < m {
				m = v
			}
		}
		return m
	})
}

// WindowMax returns a series of per-window maxima. See WindowMin for the
// window constraints.
func (s Series) WindowMax(window time.Duration) (Series, error) {
	return s.windowReduce(window, func(chunk []float64) float64 {
		m := math.Inf(-1)
		for _, v := range chunk {
			if v > m {
				m = v
			}
		}
		return m
	})
}

// WindowMean returns a series of per-window means. See WindowMin for the
// window constraints.
func (s Series) WindowMean(window time.Duration) (Series, error) {
	return s.windowReduce(window, func(chunk []float64) float64 {
		var sum float64
		for _, v := range chunk {
			sum += v
		}
		return sum / float64(len(chunk))
	})
}

func (s Series) windowReduce(window time.Duration, reduce func([]float64) float64) (Series, error) {
	if s.Step <= 0 || window <= 0 {
		return Series{}, ErrBadStep
	}
	if window%s.Step != 0 {
		return Series{}, fmt.Errorf("%w: window %v step %v", ErrBadWindow, window, s.Step)
	}
	k := int(window / s.Step)
	if k == 0 || s.Len()%k != 0 {
		return Series{}, fmt.Errorf("%w: len %d window samples %d", ErrBadWindow, s.Len(), k)
	}
	n := s.Len() / k
	out := New(s.Start, window, n)
	for i := 0; i < n; i++ {
		out.Values[i] = reduce(s.Values[i*k : (i+1)*k])
	}
	return out, nil
}

// Smooth returns a centered moving average with the given odd radius window
// (2*radius+1 samples). Edges use a shrunken window.
func (s Series) Smooth(radius int) Series {
	if radius <= 0 {
		return s.Clone()
	}
	out := s.Clone()
	for i := range s.Values {
		lo, hi := i-radius, i+radius
		if lo < 0 {
			lo = 0
		}
		if hi >= s.Len() {
			hi = s.Len() - 1
		}
		var sum float64
		for j := lo; j <= hi; j++ {
			sum += s.Values[j]
		}
		out.Values[i] = sum / float64(hi-lo+1)
	}
	return out
}

// CountIf returns the number of samples for which pred is true.
func (s Series) CountIf(pred func(float64) bool) int {
	n := 0
	for _, v := range s.Values {
		if pred(v) {
			n++
		}
	}
	return n
}

// FractionZero returns the fraction of samples equal to zero (within eps).
func (s Series) FractionZero(eps float64) float64 {
	if s.IsEmpty() {
		return 0
	}
	n := s.CountIf(func(v float64) bool { return math.Abs(v) <= eps })
	return float64(n) / float64(s.Len())
}

// NonZero returns the values strictly greater than eps in magnitude, in
// order. Useful for "CDF of non-zero overhead" style plots.
func (s Series) NonZero(eps float64) []float64 {
	out := make([]float64, 0, s.Len())
	for _, v := range s.Values {
		if math.Abs(v) > eps {
			out = append(out, v)
		}
	}
	return out
}

// String implements fmt.Stringer with a compact summary.
func (s Series) String() string {
	if s.IsEmpty() {
		return "Series(empty)"
	}
	return fmt.Sprintf("Series(n=%d step=%v start=%s mean=%.4g)",
		s.Len(), s.Step, s.Start.Format(time.RFC3339), s.Mean())
}
