// Package expo exposes a live obs.Registry over HTTP: Prometheus text
// format at /metrics, the full JSON registry snapshot at /snapshot, the
// tracer's buffered events as JSONL at /events, and net/http/pprof under
// /debug/pprof/. It is the telemetry surface the CLIs serve behind their
// -listen flags and the one a future daemon inherits.
package expo

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/vbcloud/vb/internal/obs"
)

// Server serves one registry's telemetry. Create with NewServer, start
// with Start, stop with Shutdown.
type Server struct {
	reg *obs.Registry
	mux *http.ServeMux
	srv *http.Server
	ln  net.Listener
}

// NewServer builds a server around reg (which may be nil: endpoints then
// serve empty snapshots, so wiring stays unconditional in callers).
func NewServer(reg *obs.Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the server's routing handler (useful for tests and for
// embedding under another mux).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (host:port; port 0 picks a free one) and serves in
// a background goroutine. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("expo: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Shutdown
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Start or on a nil server).
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully stops the server, letting in-flight requests finish
// until ctx expires. It is a no-op before Start and on a nil server, so
// CLIs can defer it unconditionally.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w, s.reg.Snapshot()) //nolint:errcheck // client-side write errors
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.reg.Snapshot()) //nolint:errcheck
}

func (s *Server) handleEvents(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, e := range s.reg.Tracer().Events() {
		if enc.Encode(e) != nil {
			return
		}
	}
}

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and counter vecs as
// `counter`, gauges and gauge vecs as `gauge`, histograms with cumulative
// `le` buckets ending at +Inf plus `_sum` and `_count` series. Run labels
// become a `vb_run_info` gauge with one label per entry. Output order is
// deterministic: flat metrics sort by name, vec series are pre-sorted by
// the snapshot.
func WritePrometheus(w io.Writer, s obs.RegistrySnapshot) error {
	bw := &errWriter{w: w}

	if len(s.Labels) > 0 {
		bw.printf("# HELP vb_run_info run-scoped labels attached to the registry\n")
		bw.printf("# TYPE vb_run_info gauge\n")
		keys := sortedKeys(s.Labels)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=\"%s\"", sanitizeLabel(k), escapeLabelValue(s.Labels[k])))
		}
		bw.printf("vb_run_info{%s} 1\n", strings.Join(parts, ","))
	}

	for _, name := range sortedKeys(s.Counters) {
		n := sanitizeName(name)
		bw.printf("# HELP %s counter %s\n# TYPE %s counter\n", n, name, n)
		bw.printf("%s %s\n", n, formatValue(s.Counters[name]))
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := sanitizeName(name)
		bw.printf("# HELP %s gauge %s\n# TYPE %s gauge\n", n, name, n)
		bw.printf("%s %s\n", n, formatValue(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		writeHistogram(bw, name, nil, nil, s.Histograms[name], true)
	}

	for _, name := range sortedKeys(s.CounterVecs) {
		v := s.CounterVecs[name]
		n := sanitizeName(name)
		bw.printf("# HELP %s counter %s\n# TYPE %s counter\n", n, name, n)
		for _, lv := range v.Values {
			bw.printf("%s%s %s\n", n, labelPairs(v.LabelNames, lv.Labels, "", ""), formatValue(lv.Value))
		}
	}
	for _, name := range sortedKeys(s.GaugeVecs) {
		v := s.GaugeVecs[name]
		n := sanitizeName(name)
		bw.printf("# HELP %s gauge %s\n# TYPE %s gauge\n", n, name, n)
		for _, lv := range v.Values {
			bw.printf("%s%s %s\n", n, labelPairs(v.LabelNames, lv.Labels, "", ""), formatValue(lv.Value))
		}
	}
	for _, name := range sortedKeys(s.HistogramVecs) {
		v := s.HistogramVecs[name]
		first := true
		for _, lh := range v.Histograms {
			writeHistogram(bw, name, v.LabelNames, lh.Labels, lh.Hist, first)
			first = false
		}
	}

	// Event-type totals round out the scrape: counts as a counter vec over
	// the event type, GB/core totals likewise.
	if len(s.Events) > 0 {
		types := make([]string, 0, len(s.Events))
		for ty := range s.Events {
			types = append(types, string(ty))
		}
		sort.Strings(types)
		bw.printf("# HELP vb_events_total events emitted per type\n# TYPE vb_events_total counter\n")
		for _, ty := range types {
			bw.printf("vb_events_total{type=\"%s\"} %d\n", escapeLabelValue(ty), s.Events[obs.EventType(ty)].Count)
		}
		bw.printf("# HELP vb_events_gb_total exact GB total per event type\n# TYPE vb_events_gb_total counter\n")
		for _, ty := range types {
			bw.printf("vb_events_gb_total{type=\"%s\"} %s\n", escapeLabelValue(ty), formatValue(s.Events[obs.EventType(ty)].GB))
		}
		bw.printf("# HELP vb_events_cores_total exact core total per event type\n# TYPE vb_events_cores_total counter\n")
		for _, ty := range types {
			bw.printf("vb_events_cores_total{type=\"%s\"} %s\n", escapeLabelValue(ty), formatValue(s.Events[obs.EventType(ty)].Cores))
		}
	}
	return bw.err
}

// writeHistogram emits one histogram series with cumulative buckets. The
// HELP/TYPE header is written only when head is set (first series of a
// vec, or any flat histogram).
func writeHistogram(bw *errWriter, name string, labelNames, labelValues []string, h obs.HistogramSnapshot, head bool) {
	n := sanitizeName(name)
	if head {
		bw.printf("# HELP %s histogram %s\n# TYPE %s histogram\n", n, name, n)
	}
	var cum int64
	for i, bound := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		bw.printf("%s_bucket%s %d\n", n,
			labelPairs(labelNames, labelValues, "le", formatValue(bound)), cum)
	}
	bw.printf("%s_bucket%s %d\n", n, labelPairs(labelNames, labelValues, "le", "+Inf"), h.Count)
	bw.printf("%s_sum%s %s\n", n, labelPairs(labelNames, labelValues, "", ""), formatValue(h.Sum))
	bw.printf("%s_count%s %d\n", n, labelPairs(labelNames, labelValues, "", ""), h.Count)
}

// labelPairs renders `{a="x",b="y"}` from parallel name/value slices, with
// an optional extra pair (used for `le`). It returns "" with no pairs.
func labelPairs(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, name := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		val := ""
		if i < len(values) {
			val = values[i]
		}
		fmt.Fprintf(&sb, "%s=\"%s\"", sanitizeLabel(name), escapeLabelValue(val))
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=\"%s\"", extraName, escapeLabelValue(extraValue))
	}
	sb.WriteByte('}')
	return sb.String()
}

// sanitizeName maps an internal metric name ("mip.solve.by_app") onto the
// Prometheus name charset [a-zA-Z_:][a-zA-Z0-9_:]* with a vb_ prefix.
func sanitizeName(name string) string {
	var sb strings.Builder
	sb.WriteString("vb_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// sanitizeLabel maps a label name onto [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabel(name string) string {
	if name == "" {
		return "_"
	}
	var sb strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			sb.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// labelValueEscaper applies the exposition format's three label-value
// escapes: backslash, double quote, and newline.
var labelValueEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeLabelValue escapes a label value for inclusion between the
// double quotes the callers write literally.
func escapeLabelValue(v string) string {
	return labelValueEscaper.Replace(v)
}

// formatValue renders a float the way Prometheus expects (shortest
// round-trip form; integers without exponent where possible).
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// errWriter latches the first write error so exposition code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
