package econ

import (
	"math"
	"testing"
	"time"

	"github.com/vbcloud/vb/internal/trace"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestValidate(t *testing.T) {
	bad := []CostModel{
		{PowerShareOfCost: -0.1},
		{PowerShareOfCost: 0.2, TransmissionShareOfPower: 1.5},
		{PowerShareOfCost: 0.2, TransmissionShareOfPower: 0.5, CurtailmentRate: 2},
		{PowerShareOfCost: 0.2, TransmissionShareOfPower: 0.5, CurtailmentRate: 0.05, EnergyPricePerMWh: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

// TestPaperSavingClaim reproduces §2.1: 20% of cost is power x 50% of power
// is transmission = ~10% total saving.
func TestPaperSavingClaim(t *testing.T) {
	got := DefaultCostModel().TransmissionSavingFraction()
	if math.Abs(got-0.10) > 1e-9 {
		t.Errorf("transmission saving = %v, want 0.10", got)
	}
}

func TestCurtailmentValue(t *testing.T) {
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	// 100 MW for 10 hours = 1000 MWh; 6% curtailed = 60 MWh; at 40/MWh =
	// 2400.
	vals := make([]float64, 10)
	for i := range vals {
		vals[i] = 100
	}
	gen := trace.FromValues(start, time.Hour, vals)
	mwh, value, err := DefaultCostModel().CurtailmentValue(gen)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mwh-60) > 1e-9 {
		t.Errorf("curtailed = %v MWh, want 60", mwh)
	}
	if math.Abs(value-2400) > 1e-9 {
		t.Errorf("value = %v, want 2400", value)
	}
	if _, _, err := DefaultCostModel().CurtailmentValue(trace.Series{}); err == nil {
		t.Error("empty series should error")
	}
	bad := DefaultCostModel()
	bad.CurtailmentRate = 3
	if _, _, err := bad.CurtailmentValue(gen); err == nil {
		t.Error("invalid model should error")
	}
}
