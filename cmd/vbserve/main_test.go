package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	vb "github.com/vbcloud/vb"
)

func testScenario(t *testing.T) *scenario {
	t.Helper()
	scn, err := buildScenario(42, 2, 6, vb.PolicyMIP, "")
	if err != nil {
		t.Fatal(err)
	}
	return scn
}

// driveHTTP sends the given operations to a daemon handler and returns the
// decision log as served by /v1/decisions.
func driveHTTP(t *testing.T, ts *httptest.Server, ops []requestOp) []byte {
	t.Helper()
	for _, op := range ops {
		var resp *http.Response
		var err error
		switch op.Op {
		case "arrive":
			body, _ := json.Marshal(op.Arrival)
			resp, err = http.Post(ts.URL+"/v1/arrive", "application/json", bytes.NewReader(body))
		case "step":
			resp, err = http.Post(ts.URL+"/v1/step", "application/json", nil)
		}
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode >= 300 {
			msg, _ := io.ReadAll(resp.Body)
			t.Fatalf("%s: HTTP %d: %s", op.Op, resp.StatusCode, msg)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/decisions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

// TestReplayMatchesHTTPDaemon pins the daemon's core determinism claim:
// replaying the recorded request log offline and streaming the same log
// through the HTTP daemon produce byte-identical decision logs.
func TestReplayMatchesHTTPDaemon(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "requests.jsonl")
	fullPath := filepath.Join(dir, "full.jsonl")

	scn := testScenario(t)
	f, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeRequestLog(f, scn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Offline replay.
	if err := replayLog(testScenario(t), logPath, fullPath, "", "", 0); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	steps := testScenario(t).in.Actual[0].Len()
	if got := strings.Count(string(full), "\n"); got != steps {
		t.Fatalf("decision log has %d lines, want %d", got, steps)
	}

	// HTTP daemon fed the same stream (fresh scenario = fresh process).
	ops, err := readRequestLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	d := &daemon{scn: testScenario(t)}
	if d.eng, err = d.scn.newEngine(""); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.handler())
	defer ts.Close()
	served := driveHTTP(t, ts, ops)
	if !bytes.Equal(served, full) {
		t.Fatalf("HTTP decision log diverges from offline replay:\nhttp: %d bytes\nfull: %d bytes", len(served), len(full))
	}
}

// TestSnapshotRestoreAcrossDaemons pins crash recovery end to end over the
// HTTP surface: run a daemon halfway, download its snapshot, restore it
// into a second daemon (a fresh scenario, standing in for a new process),
// finish the stream there, and the concatenated decision logs must be
// byte-identical to an uninterrupted run.
func TestSnapshotRestoreAcrossDaemons(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "requests.jsonl")
	fullPath := filepath.Join(dir, "full.jsonl")
	snapPath := filepath.Join(dir, "snap.bin")

	scn := testScenario(t)
	f, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeRequestLog(f, scn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := replayLog(testScenario(t), logPath, fullPath, "", "", 0); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}

	ops, err := readRequestLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Split the stream at the midpoint step boundary.
	mid := testScenario(t).in.Actual[0].Len() / 2
	cut := 0
	seen := 0
	for i, op := range ops {
		if op.Op == "step" {
			if seen++; seen == mid {
				cut = i + 1
				break
			}
		}
	}

	// Daemon 1: first half, then snapshot via the HTTP API.
	d1 := &daemon{scn: testScenario(t)}
	if d1.eng, err = d1.scn.newEngine(""); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(d1.handler())
	defer ts1.Close()
	part1 := driveHTTP(t, ts1, ops[:cut])
	resp, err := http.Get(ts1.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath, snap, 0o644); err != nil {
		t.Fatal(err)
	}

	// Daemon 2: restored from the snapshot, fed the remaining stream.
	d2 := &daemon{scn: testScenario(t)}
	if d2.eng, err = d2.scn.newEngine(snapPath); err != nil {
		t.Fatal(err)
	}
	if d2.eng.Step() != mid {
		t.Fatalf("restored daemon at step %d, want %d", d2.eng.Step(), mid)
	}
	ts2 := httptest.NewServer(d2.handler())
	defer ts2.Close()
	part2 := driveHTTP(t, ts2, ops[cut:])

	combined := append(append([]byte{}, part1...), part2...)
	if !bytes.Equal(combined, full) {
		t.Fatalf("snapshot/restore decision log diverges from uninterrupted run:\ncombined %d bytes, full %d bytes",
			len(combined), len(full))
	}
}

// TestReplaySnapshotAfterResume pins the CLI crash-recovery path: a replay
// interrupted by -snapshot-after, resumed with -restore, concatenates to
// the uninterrupted decision log byte-for-byte.
func TestReplaySnapshotAfterResume(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "requests.jsonl")
	fullPath := filepath.Join(dir, "full.jsonl")
	part1Path := filepath.Join(dir, "part1.jsonl")
	part2Path := filepath.Join(dir, "part2.jsonl")
	snapPath := filepath.Join(dir, "snap.bin")

	f, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeRequestLog(f, testScenario(t)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := replayLog(testScenario(t), logPath, fullPath, "", "", 0); err != nil {
		t.Fatal(err)
	}
	mid := testScenario(t).in.Actual[0].Len() / 2
	if err := replayLog(testScenario(t), logPath, part1Path, snapPath, "", mid); err != nil {
		t.Fatal(err)
	}
	if err := replayLog(testScenario(t), logPath, part2Path, "", snapPath, 0); err != nil {
		t.Fatal(err)
	}
	full, _ := os.ReadFile(fullPath)
	p1, _ := os.ReadFile(part1Path)
	p2, _ := os.ReadFile(part2Path)
	if !bytes.Equal(append(append([]byte{}, p1...), p2...), full) {
		t.Fatalf("resumed replay diverges: %d + %d bytes vs %d uninterrupted", len(p1), len(p2), len(full))
	}
}

// TestStateEndpoint sanity-checks the status surface.
func TestStateEndpoint(t *testing.T) {
	d := &daemon{scn: testScenario(t)}
	var err error
	if d.eng, err = d.scn.newEngine(""); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/state")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var state map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	if state["policy"] != "MIP" || state["step"].(float64) != 0 || state["done"] != false {
		t.Fatalf("unexpected state: %v", state)
	}
	// Telemetry surface answers too.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("/metrics: HTTP %d, %d bytes", mresp.StatusCode, len(body))
	}
}

// TestCohortScenarioCarriesClasses pins the class plumbing into the daemon:
// a -workload cohort spec produces arrivals whose demands carry the
// per-SLO-class core breakdown, and the breakdown survives the request-log
// JSON round trip a genlog/replay cycle performs.
func TestCohortScenarioCarriesClasses(t *testing.T) {
	scn, err := buildScenario(42, 3, 6, vb.PolicyGreedy, "../../examples/cohorts/bursty.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(scn.arrivals) == 0 {
		t.Fatal("cohort scenario generated no arrivals")
	}
	classes := map[vb.WorkloadClass]bool{}
	for _, arr := range scn.arrivals {
		if len(arr.Demand.ClassCores) == 0 {
			t.Fatalf("arrival %d has no ClassCores", arr.Demand.ID)
		}
		for c := range arr.Demand.ClassCores {
			classes[c] = true
		}
	}
	if len(classes) < 4 {
		t.Fatalf("expected >=4 SLO classes across arrivals, got %d: %v", len(classes), classes)
	}

	// JSON round trip: what genlog writes, replay and /v1/arrive decode.
	arr := scn.arrivals[0]
	body, err := json.Marshal(arr)
	if err != nil {
		t.Fatal(err)
	}
	var back vb.AppArrival
	if err := json.Unmarshal(body, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Demand.ClassCores) != len(arr.Demand.ClassCores) {
		t.Fatalf("ClassCores lost in JSON round trip: %v -> %v",
			arr.Demand.ClassCores, back.Demand.ClassCores)
	}
	for c, v := range arr.Demand.ClassCores {
		if back.Demand.ClassCores[c] != v {
			t.Fatalf("class %v: %v != %v", c, back.Demand.ClassCores[c], v)
		}
	}
}
