package vb

import (
	"strings"
	"testing"
	"time"
)

func TestFig2aPowerVariation(t *testing.T) {
	r, err := Fig2aPowerVariation(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Solar.Len() != 4*96 || r.Wind.Len() != 4*96 {
		t.Fatalf("window lengths: solar %d wind %d", r.Solar.Len(), r.Wind.Len())
	}
	if len(r.SolarDailyPeaks) != 4 {
		t.Fatalf("daily peaks: %d", len(r.SolarDailyPeaks))
	}
	// The chosen window must contrast an overcast day with a bright day.
	lo, hi := 2.0, -1.0
	for _, p := range r.SolarDailyPeaks {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if hi < 0.5 || lo > 0.45 {
		t.Errorf("window should contrast overcast (%v) and sunny (%v) days", lo, hi)
	}
	if r.MaxWind <= r.MinWind {
		t.Error("wind should vary")
	}
	if !strings.Contains(r.Report(), "Fig 2a") {
		t.Error("Report should name the figure")
	}
}

func TestFig2bPowerCDF(t *testing.T) {
	r, err := Fig2bPowerCDF(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.SolarZeroFraction < 0.5 {
		t.Errorf("solar zeros = %v, want > 0.5", r.SolarZeroFraction)
	}
	if r.WindMedian > 0.25 {
		t.Errorf("wind median = %v, want <= 0.25", r.WindMedian)
	}
	if r.SolarP99OverP75 < 2.5 {
		t.Errorf("solar tail ratio = %v, want heavy (paper ~4x)", r.SolarP99OverP75)
	}
	if r.WindP99OverP75 < 1.5 || r.WindP99OverP75 > 4 {
		t.Errorf("wind tail ratio = %v, want ~2x", r.WindP99OverP75)
	}
	if len(r.SolarCDF) == 0 || len(r.WindCDF) == 0 {
		t.Error("CDF points missing")
	}
	if r.Report() == "" {
		t.Error("empty report")
	}
}

func TestFig3Complementary(t *testing.T) {
	r, err := Fig3Complementary(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Combos) != 7 {
		t.Fatalf("combos = %d, want 7", len(r.Combos))
	}
	if r.CoVImprovementUK < 1.5 {
		t.Errorf("UK improvement = %v, want substantial (paper 3.7x)", r.CoVImprovementUK)
	}
	if r.CoVImprovementPT < 1.1 {
		t.Errorf("PT improvement = %v, want further gain (paper 2.3x)", r.CoVImprovementPT)
	}
	// The trio must beat solar alone on stable fraction.
	var solo, trio float64
	for _, c := range r.Combos {
		switch len(c.Names) {
		case 1:
			if c.Names[0] == "NO" {
				solo = c.Split.StableFraction()
			}
		case 3:
			trio = c.Split.StableFraction()
		}
	}
	if trio <= solo {
		t.Errorf("trio stable fraction %v should beat solar-only %v", trio, solo)
	}
	// The top-up stabilizes more energy than it buys (paper: 4,000 MWh
	// buys 8,000 MWh of stabilization).
	if r.TopUp.StabilizedMWh <= r.TopUp.PurchasedMWh {
		t.Errorf("top-up stabilized %v <= purchased %v", r.TopUp.StabilizedMWh, r.TopUp.PurchasedMWh)
	}
	if !strings.Contains(r.Report(), "top-up") {
		t.Error("report should mention the top-up")
	}
}

func TestCovPairImprovement(t *testing.T) {
	r, err := CovPairImprovement(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pairs != 66 {
		t.Errorf("pairs = %d, want C(12,2)=66", r.Pairs)
	}
	if r.FractionImproved <= 0.52 {
		t.Errorf("improved fraction = %v, paper claims > 0.52", r.FractionImproved)
	}
}

func TestFig4Migration(t *testing.T) {
	r, err := Fig4Migration(DefaultSeed, Wind, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.QuietFraction < 0.7 {
		t.Errorf("quiet fraction = %v, want most drops absorbed (paper >0.8)", r.QuietFraction)
	}
	if r.Run.TotalOutGB() == 0 || r.Run.TotalInGB() == 0 {
		t.Error("wind power should force migrations both ways")
	}
	if r.OutP99OverP50 < 2 {
		t.Errorf("out burstiness = %v, want bursty (paper 12.5-16x)", r.OutP99OverP50)
	}
	if r.Report() == "" {
		t.Error("empty report")
	}
}

func TestFig5ForecastAccuracy(t *testing.T) {
	r, err := Fig5ForecastAccuracy(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []Source{Solar, Wind} {
		m := r.MAPE[src]
		if m[Horizon3H] >= m[HorizonDay] || m[HorizonDay] >= m[HorizonWeek] {
			t.Errorf("%v MAPE not increasing with horizon: %v", src, m)
		}
	}
	if r.MAPE[Wind][HorizonWeek] <= r.MAPE[Solar][HorizonWeek] {
		t.Error("week-ahead wind error should exceed solar (paper 75% vs 44%)")
	}
	if !strings.Contains(r.Report(), "MAPE") {
		t.Error("report should mention MAPE")
	}
}

func TestWANShare(t *testing.T) {
	r, err := WANShare()
	if err != nil {
		t.Fatal(err)
	}
	if r.PerSiteGbps != 500 {
		t.Errorf("per-site share = %v, want 500", r.PerSiteGbps)
	}
	if r.ShareConsumed < 0.35 || r.ShareConsumed > 0.6 {
		t.Errorf("share consumed = %v, paper says ~40%%", r.ShareConsumed)
	}
}

func TestWANBusyFraction(t *testing.T) {
	r, err := WANBusyFraction(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.BusyFraction <= 0 || r.BusyFraction > 0.1 {
		t.Errorf("busy fraction = %v, paper says 2-4%%", r.BusyFraction)
	}
}

func TestEconSavings(t *testing.T) {
	r, err := EconSavings(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.TransmissionSavingFraction != 0.10 {
		t.Errorf("saving = %v, want 0.10", r.TransmissionSavingFraction)
	}
	if r.CurtailedMWh <= 0 || r.CurtailmentValue <= 0 {
		t.Error("curtailment capture should be positive")
	}
}

// TestTable1PolicyComparison checks the paper's headline scheduler results
// end to end through the public API.
func TestTable1PolicyComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("full 4-policy comparison in -short mode")
	}
	r, err := Table1PolicyComparison(Table1Setup{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	greedy, ok := r.Row(PolicyGreedy)
	if !ok {
		t.Fatal("no greedy row")
	}
	mip, ok := r.Row(PolicyMIP)
	if !ok {
		t.Fatal("no MIP row")
	}
	peak, ok := r.Row(PolicyMIPPeak)
	if !ok {
		t.Fatal("no MIP-peak row")
	}
	if mip.Total > 0.7*greedy.Total {
		t.Errorf("MIP total %v vs greedy %v: want >30%% improvement", mip.Total, greedy.Total)
	}
	if peak.P99 > 0.6*greedy.P99 {
		t.Errorf("MIP-peak p99 %v vs greedy %v: want large reduction (paper 4.2x)", peak.P99, greedy.P99)
	}
	if peak.Std > 0.6*greedy.Std {
		t.Errorf("MIP-peak std %v vs greedy %v: want large reduction (paper 2.7x)", peak.Std, greedy.Std)
	}
	if peak.ZeroFraction >= mip.ZeroFraction {
		t.Error("MIP-peak should migrate more often than MIP (paper: 74% vs 94% zeros)")
	}
	cdfs, err := Fig7CDFs(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(cdfs) != 4 {
		t.Errorf("Fig7 CDFs = %d, want 4", len(cdfs))
	}
	if !strings.Contains(r.Report(), "Table 1") {
		t.Error("report should name the table")
	}
	if _, ok := r.Row(Policy(99)); ok {
		t.Error("unknown policy should not resolve")
	}
}

func TestTable1SetupDefaults(t *testing.T) {
	s := Table1Setup{}.withDefaults()
	if s.Seed != DefaultSeed || s.Days != 7 || s.AppsPerDay != 6 || len(s.Policies) != 4 {
		t.Errorf("defaults = %+v", s)
	}
}

func TestPublicConstructors(t *testing.T) {
	if NewWorld(1) == nil || NewForecaster(1) == nil {
		t.Fatal("constructors returned nil")
	}
	s := NewSeries(time.Now(), time.Hour, 4)
	if s.Len() != 4 {
		t.Error("NewSeries length")
	}
	if _, err := NewCluster(DefaultClusterConfig()); err != nil {
		t.Error(err)
	}
	if _, err := NewGraph(EuropeanTrio(), 0); err != nil {
		t.Error(err)
	}
	if len(AllPolicies()) != 4 {
		t.Error("AllPolicies")
	}
	if len(EuropeanFleet(0)) < 10 {
		t.Error("EuropeanFleet")
	}
	if LatencyMS(EuropeanTrio()[0], EuropeanTrio()[1]) <= 0 {
		t.Error("LatencyMS")
	}
	if DefaultWAN().Sites != 100 {
		t.Error("DefaultWAN")
	}
	if DefaultCostModel().PowerShareOfCost != 0.2 {
		t.Error("DefaultCostModel")
	}
	if _, err := NewCDF([]float64{1, 2}); err != nil {
		t.Error(err)
	}
	if _, err := Summarize([]float64{1, 2}); err != nil {
		t.Error(err)
	}
}

// TestFullPipeline runs the Fig 6 pipeline on the 12-site fleet: the
// cov-ranked group must be steadier than the variability-blind group and
// deliver far better availability for scheduled stable VMs.
func TestFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("two MIP runs over a fleet")
	}
	r, err := FullPipeline(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Chosen) != 3 || len(r.Naive) != 3 {
		t.Fatalf("groups: %v / %v", r.Chosen, r.Naive)
	}
	if r.ChosenCoV >= r.NaiveCoV {
		t.Errorf("ranked group cov %v should beat naive %v", r.ChosenCoV, r.NaiveCoV)
	}
	if r.ChosenPaused >= 0.5*r.NaivePaused {
		t.Errorf("ranked group paused %v should be far below naive %v (availability is what step 1 buys)",
			r.ChosenPaused, r.NaivePaused)
	}
	if r.Report() == "" {
		t.Error("empty report")
	}
}
