package sim

import (
	"testing"

	"github.com/vbcloud/vb/internal/core"
	"github.com/vbcloud/vb/internal/obs"
)

// TestObsEventReconciliation checks the acceptance property of the event
// stream: per-type event totals must reconcile *exactly* (bit-identical
// float sums, not approximately) with the run's aggregate results, because
// the tracer accumulates them in the same order the simulation does.
func TestObsEventReconciliation(t *testing.T) {
	for _, pol := range []core.Policy{core.Greedy, core.MIP} {
		in := trioInput(t, 4, 6)
		reg := obs.NewRegistry()
		in.Obs = reg
		res, err := Run(simConfig(pol), in)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		tr := reg.Tracer()
		if got := tr.GBTotal(obs.ForcedMigration); got != res.ForcedGB {
			t.Errorf("%v: forced event GB %v != result ForcedGB %v", pol, got, res.ForcedGB)
		}
		if got := tr.GBTotal(obs.PlannedRealloc); got != res.PlannedGB {
			t.Errorf("%v: planned event GB %v != result PlannedGB %v", pol, got, res.PlannedGB)
		}
		if got := tr.CoreTotal(obs.StablePause); got != res.PausedStableCoreSteps {
			t.Errorf("%v: pause event cores %v != result PausedStableCoreSteps %v", pol, got, res.PausedStableCoreSteps)
		}
		if got := tr.CoreTotal(obs.Shortfall); got != res.ShortfallCoreSteps {
			t.Errorf("%v: shortfall event cores %v != result ShortfallCoreSteps %v", pol, got, res.ShortfallCoreSteps)
		}
		if got := tr.Count(obs.PlanComputed); got != int64(res.Placements) {
			t.Errorf("%v: plan events %d != result Placements %d", pol, got, res.Placements)
		}
		if res.Placements == 0 {
			t.Errorf("%v: run placed nothing; reconciliation is vacuous", pol)
		}
	}
}

// TestObsRegistryViaConfig checks that attaching the registry to the
// scheduler config (rather than the input) observes the same run, and that
// timing histograms actually record.
func TestObsRegistryViaConfig(t *testing.T) {
	in := trioInput(t, 2, 6)
	reg := obs.NewRegistry()
	cfg := simConfig(core.MIP)
	cfg.Obs = reg
	res, err := Run(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Tracer().Count(obs.PlanComputed); got != int64(res.Placements) {
		t.Errorf("plan events %d != placements %d", got, res.Placements)
	}
	h, ok := reg.Histogram("sim.run")
	if !ok || h.Count != 1 {
		t.Errorf("sim.run histogram = %+v, %v; want one recorded span", h, ok)
	}
	if _, ok := reg.Histogram("mip.solve"); !ok {
		t.Error("MIP run recorded no mip.solve timings")
	}
	if n, _ := reg.Gauge("sim.steps"); n <= 0 {
		t.Errorf("sim.steps gauge = %v; want positive", n)
	}
}

// TestObsNilRegistryUnchanged checks a nil registry leaves results
// identical to an observed run (observability must never perturb the
// simulation).
func TestObsNilRegistryUnchanged(t *testing.T) {
	plain, err := Run(simConfig(core.MIP), trioInput(t, 2, 6))
	if err != nil {
		t.Fatal(err)
	}
	in := trioInput(t, 2, 6)
	in.Obs = obs.NewRegistry()
	observed, err := Run(simConfig(core.MIP), in)
	if err != nil {
		t.Fatal(err)
	}
	if plain.PlannedGB != observed.PlannedGB || plain.ForcedGB != observed.ForcedGB ||
		plain.PausedStableCoreSteps != observed.PausedStableCoreSteps ||
		plain.Placements != observed.Placements {
		t.Errorf("observed run diverged: plain=%+v observed=%+v", plain, observed)
	}
}
