#!/usr/bin/env bash
# Daemon crash-recovery smoke at the binary level: record the synthetic
# workload as a request log, replay it uninterrupted, replay it again with
# a mid-stream snapshot, restore the snapshot into a fresh process, and
# require the concatenated decision logs to be byte-identical to the
# uninterrupted run's.
set -euo pipefail
cd "$(dirname "$0")/.."

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

go build -o "$dir/vbserve" ./cmd/vbserve
args=(-seed 42 -days 3 -policy MIP)

"$dir/vbserve" "${args[@]}" -genlog -out "$dir/requests.jsonl"
"$dir/vbserve" "${args[@]}" -replay "$dir/requests.jsonl" -decisions "$dir/full.jsonl"
"$dir/vbserve" "${args[@]}" -replay "$dir/requests.jsonl" -decisions "$dir/part1.jsonl" \
  -snapshot "$dir/snap.bin" -snapshot-after 6
"$dir/vbserve" "${args[@]}" -replay "$dir/requests.jsonl" -decisions "$dir/part2.jsonl" \
  -restore "$dir/snap.bin"

cat "$dir/part1.jsonl" "$dir/part2.jsonl" | cmp - "$dir/full.jsonl"
echo "vbserve smoke OK: decision logs byte-identical across snapshot/restore"
