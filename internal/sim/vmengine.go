package sim

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"github.com/vbcloud/vb/internal/cluster"
	"github.com/vbcloud/vb/internal/core"
	"github.com/vbcloud/vb/internal/fault"
	"github.com/vbcloud/vb/internal/obs"
	"github.com/vbcloud/vb/internal/trace"
	"github.com/vbcloud/vb/internal/workload"
)

// VMEngine is the exported stepping core behind RunVMLevel: the same
// evict → plan → reconcile → rehome → depart loop, advanced one plan step
// at a time so a long-lived daemon (cmd/vbserve) can stream app arrivals in
// as they happen. RunVMLevel is a thin loop over Advance; feeding a
// VMEngine the batch arrivals in Start order reproduces RunVMLevel's
// decisions bit-for-bit. Unlike the fluid core-level Engine, a VMEngine
// owns real cluster.Site simulators, which — together with the scheduler's
// warm-start state — it can snapshot to disk and restore for crash
// recovery.
type VMEngine struct {
	cfg        core.Config
	in         Input
	clusterCfg cluster.Config
	base       trace.Series
	numSites   int
	T          int
	stepsPer   int
	util       float64
	reg        *obs.Registry
	sched      *core.Scheduler
	vecs       *vmVecs
	sites      []*cluster.Site

	order  []*vmAppState
	byID   map[int]*vmAppState
	vmSite map[int]int // vmID -> site (-1 = displaced)

	step    int
	fragSum float64
	res     VMLevelResult
}

// vmAppState is one streamed application's live scheduling state.
type vmAppState struct {
	demand  core.AppDemand
	plan    core.Plan
	vms     []workload.VM // stable VMs only
	endStep int
	started bool
}

// AppArrival is one application entering the system: its aggregate demand
// for the co-scheduler plus the discrete VMs behind it. Only Stable-class
// VMs are scheduled (degradable VMs pause in place for free, as in Run).
type AppArrival struct {
	Demand core.AppDemand `json:"demand"`
	VMs    []workload.VM  `json:"vms,omitempty"`
}

// VMEvent identifies a VM-level event at a site.
type VMEvent struct {
	VM   int `json:"vm"`
	App  int `json:"app"`
	Site int `json:"site"`
}

// VMMove is one inter-site VM migration, with the reason the engine moved
// it: "reconcile" (plan steering) or "rehome" (relaunch after eviction).
type VMMove struct {
	VM     int     `json:"vm"`
	App    int     `json:"app"`
	From   int     `json:"from"`
	To     int     `json:"to"`
	GB     float64 `json:"gb"`
	Reason string  `json:"reason"`
}

// VMStepReport is the decision record of one Advance call: everything the
// engine decided this step, in deterministic order, suitable for a JSONL
// decision log.
type VMStepReport struct {
	Step int       `json:"step"`
	Now  time.Time `json:"now"`
	// Admitted lists app IDs that started this step.
	Admitted []int `json:"admitted,omitempty"`
	// Replans counts daily re-planning invocations this step.
	Replans int `json:"replans,omitempty"`
	// Evicted lists VMs displaced by power drops, in eviction order.
	Evicted []VMEvent `json:"evicted,omitempty"`
	// Moves lists inter-site migrations, in execution order.
	Moves []VMMove `json:"moves,omitempty"`
	// Failed lists VMs that could not be placed anywhere this step.
	Failed []int `json:"failed,omitempty"`
	// TransferGB is the step's total migration traffic.
	TransferGB float64 `json:"transfer_gb"`
	// Fragmentation is the mean end-of-step fragmentation across sites.
	Fragmentation float64 `json:"fragmentation"`
	// Per-SLO-class step deltas (absent when the step had none).
	EvictedByClass map[string]int     `json:"evicted_by_class,omitempty"`
	FailedByClass  map[string]int     `json:"failed_by_class,omitempty"`
	MovesGBByClass map[string]float64 `json:"moves_gb_by_class,omitempty"`
}

// addClassCount accumulates a per-class step count, creating the map on
// first use so clean steps keep their compact JSON form.
func addClassCount(m *map[string]int, c workload.Class) {
	if *m == nil {
		*m = make(map[string]int)
	}
	(*m)[c.String()]++
}

// NewVMEngine builds a VM-granularity stepping engine. Unlike RunVMLevel,
// Input.Apps may be empty: applications arrive through Advance. Feed each
// app at (or before) the first step whose time reaches its Start, in Start
// order, to match batch semantics.
func NewVMEngine(cfg core.Config, in Input, clusterCfg cluster.Config) (*VMEngine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := in.validateStreaming(); err != nil {
		return nil, err
	}
	if err := clusterCfg.Validate(); err != nil {
		return nil, err
	}
	base := in.Actual[0]
	if cfg.PlanStep != base.Step {
		return nil, fmt.Errorf("sim: plan step %v != power step %v", cfg.PlanStep, base.Step)
	}
	numSites := len(in.Actual)
	T := base.Len()
	reg := in.Obs
	if reg == nil {
		reg = cfg.Obs
	} else if cfg.Obs == nil {
		cfg.Obs = reg
	}
	if reg != nil {
		for _, b := range in.Bundles {
			b.SetObs(reg)
		}
	}
	sched, err := core.NewScheduler(cfg, numSites, T)
	if err != nil {
		return nil, err
	}
	sites := make([]*cluster.Site, numSites)
	for i := range sites {
		if sites[i], err = cluster.New(clusterCfg); err != nil {
			return nil, err
		}
	}
	stepsPerDay := int(24 * time.Hour / base.Step)
	if stepsPerDay < 1 {
		stepsPerDay = 1
	}
	return &VMEngine{
		cfg: cfg, in: in, clusterCfg: clusterCfg, base: base,
		numSites: numSites, T: T, stepsPer: stepsPerDay,
		util: effectiveUtil(cfg), reg: reg,
		sched: sched, vecs: newVMVecs(reg, cfg.Policy, numSites),
		sites:  sites,
		byID:   map[int]*vmAppState{},
		vmSite: map[int]int{},
		res: VMLevelResult{
			Policy:           cfg.Policy,
			Transfer:         trace.New(base.Start, base.Step, T),
			MovesGBByClass:   make(map[workload.Class]float64),
			EvictionsByClass: make(map[workload.Class]int),
			FailedByClass:    make(map[workload.Class]int),
		},
	}, nil
}

// Step returns the next step Advance will execute.
func (e *VMEngine) Step() int { return e.step }

// Steps returns the total step count of the run's timeline.
func (e *VMEngine) Steps() int { return e.T }

// Now returns the simulation time of the next step.
func (e *VMEngine) Now() time.Time { return e.base.TimeAt(e.step) }

// Done reports whether the timeline is exhausted.
func (e *VMEngine) Done() bool { return e.step >= e.T }

// Running returns the number of VMs currently placed on some site.
func (e *VMEngine) Running() int {
	n := 0
	for _, s := range e.vmSite {
		if s >= 0 {
			n++
		}
	}
	return n
}

// TrackedVMs returns the size of the VM location table (placed plus
// displaced VMs). A long-lived daemon watches this for leaks.
func (e *VMEngine) TrackedVMs() int { return len(e.vmSite) }

// Result returns the accumulated run result. After Done it equals what
// RunVMLevel would have returned.
func (e *VMEngine) Result() VMLevelResult {
	r := e.res
	if e.step > 0 {
		r.Fragmentation = e.fragSum / float64(e.step)
	}
	return r
}

// feed registers newly arrived applications, preserving feed order (which
// the batch wrapper makes Start order, matching RunVMLevel's sort).
func (e *VMEngine) feed(arrivals []AppArrival) error {
	for _, arr := range arrivals {
		d := arr.Demand
		if err := d.Validate(); err != nil {
			return err
		}
		if _, dup := e.byID[d.ID]; dup {
			return fmt.Errorf("sim: app %d fed twice", d.ID)
		}
		st := &vmAppState{demand: d, endStep: e.T}
		if !d.End.IsZero() {
			if idx := e.base.IndexAt(d.End); idx >= 0 {
				st.endStep = idx + 1
			}
		}
		// Every firm class is scheduled and tracked; degradable VMs pause
		// in place for free (the paper's harvest semantics) and never
		// constrain placement. Legacy traces carry only Stable here.
		for _, vm := range arr.VMs {
			if vm.Class.Firm() {
				st.vms = append(st.vms, vm)
			}
		}
		e.byID[d.ID] = st
		e.order = append(e.order, st)
	}
	return nil
}

// Advance executes one plan step: apply power (evicting as needed), admit
// the given arrivals and replan daily, reconcile VMs against plans, rehome
// displaced VMs, and depart finished ones.
func (e *VMEngine) Advance(arrivals []AppArrival) (VMStepReport, error) {
	if e.step >= e.T {
		return VMStepReport{}, fmt.Errorf("sim: engine already at end of timeline (step %d of %d)", e.step, e.T)
	}
	if err := e.feed(arrivals); err != nil {
		return VMStepReport{}, err
	}
	t := e.step
	now := e.base.TimeAt(t)
	rep := VMStepReport{Step: t, Now: now}
	reg := e.reg
	res := &e.res
	numSites := e.numSites
	predCap, stableCap := capacityFns(e.in, e.base, e.util, now, t, e.stepsPer, e.T)

	// Fault injection: capacity faults scale the power each site sees,
	// solver slowdowns derate the scheduler's node budget, and WAN faults
	// bound this step's reconcile traffic. All methods are nil-safe no-ops
	// without an injector.
	inj := e.in.Faults
	inj.OnStep(t, reg)
	e.sched.SetSolverPressure(inj.SolverInflation(t))
	wb := inj.WANBudget(t)

	// 1. Apply power to every site. Evicted VMs are marked displaced
	// (site -1) and re-homed in step 4.
	for sIdx, site := range e.sites {
		for _, vm := range site.SetPowerEvict(e.in.Actual[sIdx].Values[t] * inj.CapFactor(sIdx, t)) {
			e.vmSite[vm.ID] = -1
			rep.Evicted = append(rep.Evicted, VMEvent{VM: vm.ID, App: vm.AppID, Site: sIdx})
			res.EvictionsByClass[vm.Class]++
			addClassCount(&rep.EvictedByClass, vm.Class)
			reg.Emit(obs.Event{Type: obs.VMEvicted, Step: t, App: vm.AppID, Site: sIdx, Dst: -1,
				VM: vm.ID, Cores: float64(vm.Cores), GB: float64(vm.MemoryGB)})
			e.vecs.evict(sIdx)
			e.vecs.evictClass(vm.Class)
		}
	}

	// 2. Plan: admit arriving apps; replan daily for MIP policies.
	for _, st := range e.order {
		if st.started || st.demand.Start.After(now) || t >= st.endStep {
			continue
		}
		if st.demand.StableCores > 0 {
			plan, err := e.sched.Place(st.demand, t, st.endStep, predCap, stableCap, nil, nil)
			if err != nil {
				return rep, err
			}
			st.plan = plan
		}
		st.started = true
		rep.Admitted = append(rep.Admitted, st.demand.ID)
	}
	if e.cfg.Policy != core.Greedy && t > 0 && t%e.stepsPer == 0 {
		for _, st := range e.order {
			if !st.started || t >= st.endStep || st.plan.Alloc == nil {
				continue
			}
			cur := make([]float64, numSites)
			for _, vm := range st.vms {
				if s, ok := e.vmSite[vm.ID]; ok && s >= 0 {
					cur[s] += float64(vm.Cores)
				}
			}
			e.sched.Uncommit(st.plan, t)
			plan, err := e.sched.Place(st.demand, t, st.endStep, predCap, stableCap, cur, st.plan.Alloc)
			if err != nil {
				return rep, err
			}
			st.plan = plan
			rep.Replans++
		}
	}

	// 3. Reconcile each app's VMs against its plan: move VMs from
	// over-target sites to under-target sites with real headroom.
	for _, st := range e.order {
		if !st.started || t >= st.endStep || st.plan.Alloc == nil {
			continue
		}
		e.reconcile(st, t, wb, &rep)
	}

	// 4. Re-home displaced VMs and start never-placed VMs at their app's
	// planned sites (or anywhere with room). Rehoming is not WAN-gated: an
	// evicted VM has no live source replica (From is -1), so its relaunch
	// pulls from durable storage rather than the inter-site links the fault
	// model meters.
	for _, st := range e.order {
		if !st.started || t >= st.endStep {
			continue
		}
		for _, vm := range st.vms {
			if s, ok := e.vmSite[vm.ID]; ok && s >= 0 {
				continue
			}
			if end := vm.End(); !end.IsZero() && !end.After(now) {
				continue
			}
			placed := placeVM(vm, st.plan, t, e.sites, e.vmSite)
			if placed >= 0 {
				// Relaunch after displacement costs traffic; first boot
				// is free.
				if _, seen := e.vmSite[vm.ID]; seen {
					gb := float64(vm.MemoryGB)
					res.Transfer.Values[t] += gb
					res.Moves++
					res.MovesGBByClass[vm.Class] += gb
					addClassDelta(&rep.MovesGBByClass, vm.Class, gb)
					rep.Moves = append(rep.Moves, VMMove{VM: vm.ID, App: vm.AppID, From: -1, To: placed,
						GB: gb, Reason: "rehome"})
					reg.Emit(obs.Event{Type: obs.VMMoved, Step: t, App: vm.AppID, Site: -1,
						Dst: placed, VM: vm.ID, Cores: float64(vm.Cores), GB: gb, Detail: "rehome"})
					e.vecs.move(-1, placed, gb)
					e.vecs.moveClass(vm.Class, gb)
				}
				e.vmSite[vm.ID] = placed
			} else {
				res.FailedPlacements++
				res.FailedByClass[vm.Class]++
				addClassCount(&rep.FailedByClass, vm.Class)
				rep.Failed = append(rep.Failed, vm.ID)
				reg.Inc("sim.vmlevel.failed_placements")
				reg.Emit(obs.Event{Type: obs.VMPlacementFail, Step: t, App: vm.AppID, Site: -1, Dst: -1,
					VM: vm.ID, Cores: float64(vm.Cores)})
				e.vecs.fail(vm.AppID)
				e.vecs.failClass(vm.Class)
			}
		}
	}

	// 5. Departures. Ended VMs leave the location table whether they are
	// running (site >= 0) or displaced (site -1): an evicted VM whose
	// lifetime ran out while waiting will never run again, and keeping it
	// would leak an entry per displaced-then-expired VM over a long run.
	for _, st := range e.order {
		for _, vm := range st.vms {
			s, ok := e.vmSite[vm.ID]
			if !ok {
				continue
			}
			if end := vm.End(); !end.IsZero() && !end.After(now) {
				if s >= 0 {
					e.sites[s].Remove(vm.ID)
				}
				delete(e.vmSite, vm.ID)
			}
		}
	}

	// Fragmentation bookkeeping.
	var frag float64
	for _, site := range e.sites {
		frag += site.Snapshot().Fragmentation
	}
	e.fragSum += frag / float64(numSites)
	rep.Fragmentation = frag / float64(numSites)
	rep.TransferGB = res.Transfer.Values[t]
	reg.Observe("sim.vmlevel.step_transfer_gb", res.Transfer.Values[t])
	e.step++
	return rep, nil
}

// reconcile moves an app's VMs between sites until per-site core sums are
// within one VM of the plan, charging traffic for each move.
func (e *VMEngine) reconcile(st *vmAppState, t int, wb *fault.LinkBudget, rep *VMStepReport) {
	numSites := e.numSites
	plan := st.plan
	cur := make([]float64, numSites)
	bySite := make([][]workload.VM, numSites)
	for _, vm := range st.vms {
		if s, ok := e.vmSite[vm.ID]; ok && s >= 0 {
			cur[s] += float64(vm.Cores)
			bySite[s] = append(bySite[s], vm)
		}
	}
	for src := 0; src < numSites; src++ {
		over := cur[src] - plan.Alloc[src][t]
		for _, vm := range bySite[src] {
			if over < float64(vm.Cores) {
				continue // moving this VM would overshoot
			}
			// Find the most under-target destination that admits it.
			dst, worst := -1, 1e-9
			for d := 0; d < numSites; d++ {
				if d == src {
					continue
				}
				if under := plan.Alloc[d][t] - cur[d]; under > worst {
					dst, worst = d, under
				}
			}
			if dst < 0 {
				break
			}
			gb := float64(vm.MemoryGB)
			if wb != nil && !wb.CanMove(src, dst, gb) {
				continue // WAN link cut or out of budget; stay put
			}
			if !e.sites[dst].Admit(vm) {
				continue // fragmentation or admission refuses; stay put
			}
			if wb != nil {
				wb.Consume(src, dst, gb)
			}
			e.sites[src].Remove(vm.ID)
			e.vmSite[vm.ID] = dst
			cur[src] -= float64(vm.Cores)
			cur[dst] += float64(vm.Cores)
			over -= float64(vm.Cores)
			e.res.Transfer.Values[t] += gb
			e.res.Moves++
			e.res.MovesGBByClass[vm.Class] += gb
			addClassDelta(&rep.MovesGBByClass, vm.Class, gb)
			rep.Moves = append(rep.Moves, VMMove{VM: vm.ID, App: vm.AppID, From: src, To: dst,
				GB: gb, Reason: "reconcile"})
			e.reg.Emit(obs.Event{Type: obs.VMMoved, Step: t, App: vm.AppID, Site: src, Dst: dst,
				VM: vm.ID, Cores: float64(vm.Cores), GB: gb, Detail: "reconcile"})
			e.vecs.move(src, dst, gb)
			e.vecs.moveClass(vm.Class, gb)
		}
	}
}

// --- Snapshot / restore ---------------------------------------------------

// vmEngineFingerprint pins the run parameters a snapshot belongs to, so a
// snapshot cannot silently restore into a differently configured engine.
type vmEngineFingerprint struct {
	Policy     core.Policy
	PlanStep   time.Duration
	NumSites   int
	Steps      int
	TotalCores float64
	Cluster    cluster.Config
	Start      time.Time
	// FaultHash pins the fault script: a snapshot taken under one fault
	// timeline must not restore into an engine running a different one, or
	// the replayed decisions would silently diverge. Zero means no faults
	// (and old snapshots without the field decode to zero, which matches a
	// nil injector).
	FaultHash uint64
}

func (e *VMEngine) fingerprint() vmEngineFingerprint {
	return vmEngineFingerprint{
		Policy:     e.cfg.Policy,
		PlanStep:   e.cfg.PlanStep,
		NumSites:   e.numSites,
		Steps:      e.T,
		TotalCores: e.in.TotalCores,
		Cluster:    e.clusterCfg,
		Start:      e.base.Start,
		FaultHash:  e.in.Faults.Hash(),
	}
}

// vmAppWire is one app's state in snapshot wire form.
type vmAppWire struct {
	Demand  core.AppDemand
	Plan    core.Plan
	EndStep int
	Started bool
	VMs     []workload.VM
}

// vmEngineState is the complete gob wire form of a VMEngine. The obs
// registry is deliberately excluded: metrics are process-scoped telemetry,
// not decision state.
type vmEngineState struct {
	Fingerprint vmEngineFingerprint
	Step        int
	Apps        []vmAppWire
	VMSite      map[int]int
	Sites       []cluster.SiteState
	Sched       []byte

	TransferValues   []float64
	Moves            int
	FailedPlacements int
	FragSum          float64

	// Per-class counters (absent in pre-class snapshots; they decode to nil
	// and restore as empty, losing only the pre-snapshot class breakdown).
	MovesGBByClass   map[workload.Class]float64
	EvictionsByClass map[workload.Class]int
	FailedByClass    map[workload.Class]int
}

// Snapshot serializes the engine's complete decision state — streamed apps
// and their plans, the VM location table, every site's server packing, and
// the scheduler's commitment ledgers plus warm solver cache — such that
// RestoreVMEngine resumes producing bit-identical decisions.
func (e *VMEngine) Snapshot(w io.Writer) error {
	var sched bytes.Buffer
	if err := e.sched.EncodeState(&sched); err != nil {
		return err
	}
	st := vmEngineState{
		Fingerprint:      e.fingerprint(),
		Step:             e.step,
		Apps:             make([]vmAppWire, len(e.order)),
		VMSite:           e.vmSite,
		Sites:            make([]cluster.SiteState, e.numSites),
		Sched:            sched.Bytes(),
		TransferValues:   e.res.Transfer.Values,
		Moves:            e.res.Moves,
		FailedPlacements: e.res.FailedPlacements,
		FragSum:          e.fragSum,
		MovesGBByClass:   e.res.MovesGBByClass,
		EvictionsByClass: e.res.EvictionsByClass,
		FailedByClass:    e.res.FailedByClass,
	}
	for i, a := range e.order {
		st.Apps[i] = vmAppWire{Demand: a.demand, Plan: a.plan, EndStep: a.endStep, Started: a.started, VMs: a.vms}
	}
	for i, site := range e.sites {
		st.Sites[i] = site.State()
	}
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("sim: encoding engine snapshot: %w", err)
	}
	return nil
}

// countingReader tracks how many bytes a decoder has consumed, so corrupt
// snapshots can be reported with a byte position.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// RestoreVMEngine rebuilds an engine from a Snapshot. cfg, in, and
// clusterCfg must describe the same run that produced the snapshot (the
// snapshot's fingerprint is checked); the restored engine continues from
// the snapshotted step with the exact decision state of the original.
//
// Corrupt input — truncated, bit-flipped, or otherwise undecodable — always
// returns an error carrying the byte offset where decoding failed, never a
// panic: gob panics on some malformed type descriptors, and a daemon
// restoring a damaged snapshot must degrade to a fresh start, not crash.
func RestoreVMEngine(cfg core.Config, in Input, clusterCfg cluster.Config, r io.Reader) (eng *VMEngine, err error) {
	cr := &countingReader{r: r}
	defer func() {
		if p := recover(); p != nil {
			eng, err = nil, fmt.Errorf("sim: decoding engine snapshot: corrupt stream at byte %d: %v", cr.n, p)
		}
	}()
	e, err := NewVMEngine(cfg, in, clusterCfg)
	if err != nil {
		return nil, err
	}
	var st vmEngineState
	if err := gob.NewDecoder(cr).Decode(&st); err != nil {
		return nil, fmt.Errorf("sim: decoding engine snapshot at byte %d: %w", cr.n, err)
	}
	if got, want := st.Fingerprint, e.fingerprint(); got != want {
		return nil, fmt.Errorf("sim: snapshot fingerprint %+v does not match engine %+v", got, want)
	}
	if st.Step < 0 || st.Step > e.T {
		return nil, fmt.Errorf("sim: snapshot step %d outside [0,%d]", st.Step, e.T)
	}
	if len(st.TransferValues) != e.T {
		return nil, fmt.Errorf("sim: snapshot transfer series has %d steps, want %d", len(st.TransferValues), e.T)
	}
	if len(st.Sites) != e.numSites {
		return nil, fmt.Errorf("sim: snapshot has %d sites, want %d", len(st.Sites), e.numSites)
	}
	for _, a := range st.Apps {
		if a.Plan.Alloc == nil {
			continue
		}
		if len(a.Plan.Alloc) != e.numSites {
			return nil, fmt.Errorf("sim: snapshot app %d plan has %d site rows, want %d",
				a.Demand.ID, len(a.Plan.Alloc), e.numSites)
		}
		for s, row := range a.Plan.Alloc {
			if len(row) != e.T {
				return nil, fmt.Errorf("sim: snapshot app %d plan site %d has %d steps, want %d",
					a.Demand.ID, s, len(row), e.T)
			}
		}
	}
	for id, s := range st.VMSite {
		if s < -1 || s >= e.numSites {
			return nil, fmt.Errorf("sim: snapshot places VM %d at site %d (valid range is [-1,%d))",
				id, s, e.numSites)
		}
	}
	for i, siteState := range st.Sites {
		site, err := cluster.NewFromState(siteState)
		if err != nil {
			return nil, fmt.Errorf("sim: site %d: %w", i, err)
		}
		e.sites[i] = site
	}
	if err := e.sched.DecodeState(bytes.NewReader(st.Sched)); err != nil {
		return nil, err
	}
	e.order = make([]*vmAppState, len(st.Apps))
	e.byID = make(map[int]*vmAppState, len(st.Apps))
	for i, a := range st.Apps {
		s := &vmAppState{demand: a.Demand, plan: a.Plan, vms: a.VMs, endStep: a.EndStep, started: a.Started}
		e.order[i] = s
		e.byID[a.Demand.ID] = s
	}
	e.vmSite = st.VMSite
	if e.vmSite == nil {
		e.vmSite = map[int]int{}
	}
	e.step = st.Step
	copy(e.res.Transfer.Values, st.TransferValues)
	e.res.Moves = st.Moves
	e.res.FailedPlacements = st.FailedPlacements
	e.fragSum = st.FragSum
	if st.MovesGBByClass != nil {
		e.res.MovesGBByClass = st.MovesGBByClass
	}
	if st.EvictionsByClass != nil {
		e.res.EvictionsByClass = st.EvictionsByClass
	}
	if st.FailedByClass != nil {
		e.res.FailedByClass = st.FailedByClass
	}
	return e, nil
}
