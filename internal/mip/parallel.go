package mip

import (
	"container/heap"
	"context"
	"errors"
	"math"

	"github.com/vbcloud/vb/internal/lp"
	"github.com/vbcloud/vb/internal/par"
)

// Parallel branch and bound.
//
// Determinism argument: with Workers >= 1 every non-root node is evaluated
// as a PURE function of its change list — the worker instance is reset to
// the root-optimal template state before applying the node's bounds, so the
// LP result (status, objective, solution vector, pivot count) cannot depend
// on which worker ran it or what that worker solved before. The main loop
// then processes nodes in strict best-first (bound, node-id) order,
// consulting a result cache keyed by node id; workers only ever fill the
// cache speculatively. Incumbent updates, pruning, branching, and node ids
// all happen in that sequential processing order, so the entire search tree
// — and the returned solution, bit for bit — is identical for any worker
// count >= 1. (Workers = 0 keeps the serial warm-path loop, which chains
// each node solve off the previous node's basis and therefore follows a
// different, also deterministic, pivot path.)

// nodeResult is the outcome of one node relaxation solve.
type nodeResult struct {
	err       error
	st        lp.Status
	obj       float64 // minimization sense
	x         []float64
	pivots    int64
	refactors int64
}

func solveParallel(p Problem, opt Options, inst *lp.Instance, warmHit bool, maxNodes int, integer []bool, minSense func(float64) float64, intr *interrupter) (Solution, error) {
	res := Solution{Status: lp.Infeasible, Objective: math.Inf(1), WarmHit: warmHit}
	incumbent := math.Inf(1)
	var bestX []float64

	evalOn := func(w *lp.Instance, changes []bchange) *nodeResult {
		w.ResetBounds()
		for _, c := range changes {
			lo, hi := w.Bounds(int(c.v))
			if c.upper {
				if c.val < hi {
					hi = c.val
				}
			} else {
				if c.val > lo {
					lo = c.val
				}
			}
			w.SetBound(int(c.v), lo, hi)
		}
		p0, r0 := w.Pivots(), w.Refactors()
		st, err := w.SolveCurrent()
		nr := &nodeResult{st: st, err: err, pivots: w.Pivots() - p0, refactors: w.Refactors() - r0}
		if err == nil && st != lp.Infeasible && st != lp.Unbounded {
			nr.obj = minSense(w.ObjectiveValue())
			nr.x = w.Values(nil)
		}
		return nr
	}

	// The root solves on the carried instance itself, preserving the warm
	// start; every other node starts from a clone of the root-optimal state.
	results := map[int64]*nodeResult{0: evalOn(inst, nil)}
	template := inst.Clone()
	workerInst := make([]*lp.Instance, opt.Workers)

	q := &nodeQueue{}
	heap.Push(q, &node{bound: math.Inf(-1), id: 0})
	nextID := int64(1)
	sawUnbounded := false

	for q.Len() > 0 && res.Nodes < maxNodes {
		if intr.check() {
			res.DeadlineExceeded = true
			break
		}
		nd := heap.Pop(q).(*node)
		if nd.bound >= incumbent-intTol {
			res.Proven = true
			break
		}
		if opt.Gap > 0 && !math.IsInf(incumbent, 1) && relGap(incumbent, nd.bound) <= opt.Gap {
			res.Proven = true
			break
		}
		res.Nodes++

		r, ok := results[nd.id]
		if !ok {
			// Evaluate nd plus up to Workers-1 speculative best-first nodes
			// concurrently. Speculation is invisible to the search: results
			// land in the cache and errors surface only if the node is
			// actually processed.
			batch := []*node{nd}
			popped := (*q)[:0:0]
			for len(batch) < opt.Workers && q.Len() > 0 {
				s := heap.Pop(q).(*node)
				popped = append(popped, s)
				if _, done := results[s.id]; !done && s.bound < incumbent-intTol {
					batch = append(batch, s)
				}
			}
			for _, s := range popped {
				heap.Push(q, s)
			}
			got := make([]*nodeResult, len(batch))
			_ = par.ForEach(context.Background(), len(batch), opt.Workers, func(i int) error {
				if workerInst[i] == nil {
					workerInst[i] = template.Clone()
				}
				w := workerInst[i]
				w.CopyStateFrom(template)
				got[i] = evalOn(w, batch[i].changes)
				return nil
			})
			for i, s := range batch {
				results[s.id] = got[i]
			}
			r = results[nd.id]
		}
		delete(results, nd.id)
		if errors.Is(r.err, lp.ErrInterrupted) {
			res.DeadlineExceeded = true
			break
		}
		if r.err != nil {
			return Solution{}, r.err
		}
		res.Pivots += r.pivots
		res.Refactors += r.refactors
		switch r.st {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			sawUnbounded = true
			continue
		}
		if r.obj >= incumbent-intTol {
			continue
		}
		branchVar := -1
		worst := intTol
		for i := 0; i < p.NumVars; i++ {
			if !integer[i] {
				continue
			}
			frac := math.Abs(r.x[i] - math.Round(r.x[i]))
			if frac > worst {
				worst = frac
				branchVar = i
			}
		}
		if branchVar < 0 {
			incumbent = r.obj
			res.Status = lp.Optimal
			bestX = append(bestX[:0], r.x...)
			res.Objective = r.obj
			if opt.Gap > 0 && q.Len() > 0 {
				best := (*q)[0].bound
				if relGap(incumbent, best) <= opt.Gap {
					res.Proven = true
					break
				}
			}
			continue
		}
		v := r.x[branchVar]
		left := append(nd.changes[:len(nd.changes):len(nd.changes)],
			bchange{v: int32(branchVar), upper: true, val: math.Floor(v)})
		right := append(nd.changes[:len(nd.changes):len(nd.changes)],
			bchange{v: int32(branchVar), upper: false, val: math.Ceil(v)})
		heap.Push(q, &node{bound: r.obj, id: nextID, changes: left})
		heap.Push(q, &node{bound: r.obj, id: nextID + 1, changes: right})
		nextID += 2
	}
	if q.Len() == 0 && !res.DeadlineExceeded {
		res.Proven = true
	}
	if res.Status == lp.Optimal {
		res.X = roundIntegers(bestX, integer)
	}
	if res.Status != lp.Optimal && sawUnbounded {
		res.Status = lp.Unbounded
		res.Proven = false
	}
	res.EtaChainLen = inst.EtaChainLen()
	inst.ResetBounds()
	return finish(res, p), nil
}
