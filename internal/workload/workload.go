// Package workload generates synthetic cloud workloads standing in for the
// Azure production VM arrival trace the paper uses (§3): renewal arrivals
// with a diurnal rate profile, an Azure-like VM size mix, heavy-tailed
// lifetimes, and an SLO class per VM (classes.go) refining §2.3's
// stable/degradable split. Beyond the legacy single-stream generator,
// cohort.go mixes heterogeneous cohorts (per-cohort renewal process, size
// mix, lifetime distribution and class) from a versioned spec, and
// tracev2.go records/replays the resulting app traces as JSONL.
package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"sort"
	"time"
)

// VM is one virtual machine request.
type VM struct {
	// ID is unique within a generated trace.
	ID int
	// Cores and MemoryGB are the requested resources.
	Cores    int
	MemoryGB int
	// Class is the availability class.
	Class Class
	// Arrival is when the VM is requested.
	Arrival time.Time
	// Lifetime is how long the VM runs once started. Zero means it runs
	// until the end of the simulation.
	Lifetime time.Duration
	// AppID groups VMs belonging to one application request (0 = none).
	AppID int
}

// End returns the VM's departure time, or the zero time when it runs
// forever.
func (v VM) End() time.Time {
	if v.Lifetime == 0 {
		return time.Time{}
	}
	return v.Arrival.Add(v.Lifetime)
}

// shape is one entry of the VM size mix.
type shape struct {
	cores  int
	memGB  int
	weight float64
}

// sizeMix approximates the Azure first-party size distribution: dominated by
// small sizes with a thin tail of very large VMs. Memory per core is 2-4 GB,
// matching the paper's 40-core/512 GB servers (12.8 GB/core) being
// memory-rich relative to demand.
var sizeMix = []shape{
	{1, 2, 0.22},
	{1, 4, 0.13},
	{2, 4, 0.18},
	{2, 8, 0.13},
	{4, 8, 0.12},
	{4, 16, 0.08},
	{8, 16, 0.06},
	{8, 32, 0.04},
	{16, 64, 0.02},
	{24, 96, 0.013},
	{32, 128, 0.007},
}

// Config parameterizes a workload trace.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// Start is the beginning of the trace.
	Start time.Time
	// Duration is the span over which VMs arrive.
	Duration time.Duration
	// MeanArrivalsPerHour is the average VM arrival rate (diurnally
	// modulated around this mean).
	MeanArrivalsPerHour float64
	// StableFraction is the fraction of VMs in the Stable class. The
	// remainder is Degradable. Values outside [0,1] are an error.
	StableFraction float64
	// MedianLifetime is the median VM lifetime; the distribution is
	// lognormal and heavy tailed. Zero selects 2 hours.
	MedianLifetime time.Duration
	// LongRunningFraction is the fraction of VMs that never terminate
	// within the trace (services). Zero is allowed.
	LongRunningFraction float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("workload: non-positive duration %v", c.Duration)
	}
	if c.MeanArrivalsPerHour <= 0 {
		return fmt.Errorf("workload: non-positive arrival rate %v", c.MeanArrivalsPerHour)
	}
	if c.StableFraction < 0 || c.StableFraction > 1 {
		return fmt.Errorf("workload: stable fraction %v outside [0,1]", c.StableFraction)
	}
	if c.LongRunningFraction < 0 || c.LongRunningFraction > 1 {
		return fmt.Errorf("workload: long-running fraction %v outside [0,1]", c.LongRunningFraction)
	}
	return nil
}

func (c Config) medianLifetime() time.Duration {
	if c.MedianLifetime <= 0 {
		return 2 * time.Hour
	}
	return c.MedianLifetime
}

// Generate produces the VM arrival trace, sorted by arrival time.
func Generate(cfg Config) ([]VM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := subRNG(cfg.Seed, "vms")
	var vms []VM
	t := cfg.Start
	end := cfg.Start.Add(cfg.Duration)
	id := 1
	for t.Before(end) {
		rate := cfg.MeanArrivalsPerHour * diurnalRate(t)
		// Exponential inter-arrival at the current rate. The clamp only
		// guards the (measure-zero) sub-nanosecond draw: clamping any
		// further (the old code forced a full second) visibly biases the
		// arrival count at high rates.
		gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Hour))
		if gap <= 0 {
			gap = time.Nanosecond
		}
		t = t.Add(gap)
		if !t.Before(end) {
			break
		}
		vms = append(vms, newVM(id, t, cfg, rng))
		id++
	}
	sortVMs(vms)
	return vms, nil
}

// sortVMs orders a trace by arrival time with the VM ID as a stable
// tie-break, so equal-timestamp arrivals (possible at extreme rates) keep a
// deterministic order regardless of the sort algorithm's internals.
func sortVMs(vms []VM) {
	sort.Slice(vms, func(i, j int) bool {
		if !vms[i].Arrival.Equal(vms[j].Arrival) {
			return vms[i].Arrival.Before(vms[j].Arrival)
		}
		return vms[i].ID < vms[j].ID
	})
}

// newVM draws one VM with the configured class and size mix.
func newVM(id int, arrival time.Time, cfg Config, rng *rand.Rand) VM {
	sh := drawShape(rng)
	class := Degradable
	if rng.Float64() < cfg.StableFraction {
		class = Stable
	}
	var life time.Duration
	if rng.Float64() >= cfg.LongRunningFraction {
		life = drawLifetime(cfg.medianLifetime(), rng)
	}
	return VM{
		ID:       id,
		Cores:    sh.cores,
		MemoryGB: sh.memGB,
		Class:    class,
		Arrival:  arrival,
		Lifetime: life,
	}
}

// diurnalRate modulates the arrival rate over the day: business hours see
// roughly twice the overnight load.
func diurnalRate(t time.Time) float64 {
	h := float64(t.UTC().Hour()) + float64(t.UTC().Minute())/60
	return 1 + 0.35*math.Sin(2*math.Pi*(h-10)/24)
}

// drawShape samples the default VM size mix.
func drawShape(rng *rand.Rand) shape { return drawShapeFrom(sizeMix, rng) }

// drawLifetime samples a lognormal lifetime with the given median and a
// heavy tail (sigma 1.4: p99 is ~26x the median).
func drawLifetime(median time.Duration, rng *rand.Rand) time.Duration {
	const sigma = 1.4
	f := math.Exp(sigma * rng.NormFloat64())
	d := time.Duration(float64(median) * f)
	if d < time.Minute {
		d = time.Minute
	}
	return d
}

// App is a multi-VM application request, the scheduling unit of §3.1: the
// scheduler picks a group of VB sites for all of an app's VMs together.
type App struct {
	// ID is unique within a generated set.
	ID int
	// Arrival is when the application is submitted.
	Arrival time.Time
	// Duration is how long the application runs. Zero means the full
	// simulation.
	Duration time.Duration
	// VMs are the application's VM requests (sharing the app's arrival).
	VMs []VM
}

// Validate reports application errors. A zero-core app is rejected: it has
// nothing to schedule, and downstream per-core divisions (e.g. memory per
// core) would produce NaN.
func (a App) Validate() error {
	if len(a.VMs) == 0 {
		return fmt.Errorf("workload: app %d has no VMs", a.ID)
	}
	if a.TotalCores() <= 0 {
		return fmt.Errorf("workload: app %d requests zero cores", a.ID)
	}
	for _, v := range a.VMs {
		if v.Cores <= 0 {
			return fmt.Errorf("workload: app %d VM %d has non-positive cores %d", a.ID, v.ID, v.Cores)
		}
	}
	return nil
}

// TotalCores returns the cores requested across all VMs.
func (a App) TotalCores() int {
	n := 0
	for _, v := range a.VMs {
		n += v.Cores
	}
	return n
}

// TotalMemoryGB returns the memory requested across all VMs.
func (a App) TotalMemoryGB() int {
	n := 0
	for _, v := range a.VMs {
		n += v.MemoryGB
	}
	return n
}

// StableCores returns the cores requested by Stable-class VMs (the legacy
// firm class only; see FirmCores for the full SLO-bearing total).
func (a App) StableCores() int {
	n := 0
	for _, v := range a.VMs {
		if v.Class == Stable {
			n += v.Cores
		}
	}
	return n
}

// FirmCores returns the cores requested by firm-class VMs (every class but
// Degradable) — the cores the co-scheduler must place and migrate. For
// legacy stable/degradable traces it equals StableCores.
func (a App) FirmCores() int {
	n := 0
	for _, v := range a.VMs {
		if v.Class.Firm() {
			n += v.Cores
		}
	}
	return n
}

// CoresByClass breaks the app's cores down by SLO class. Classes with no
// VMs are absent from the map.
func (a App) CoresByClass() map[Class]int {
	m := make(map[Class]int)
	for _, v := range a.VMs {
		m[v.Class] += v.Cores
	}
	return m
}

// AppConfig parameterizes application-level workload generation.
type AppConfig struct {
	// Seed drives all randomness.
	Seed uint64
	// Start and Duration span the arrival window.
	Start    time.Time
	Duration time.Duration
	// MeanAppsPerDay is the average application arrival rate.
	MeanAppsPerDay float64
	// MeanVMsPerApp is the mean application size (geometric, at least 1).
	MeanVMsPerApp float64
	// StableFraction is the per-VM probability of the Stable class.
	StableFraction float64
}

// Validate reports configuration errors.
func (c AppConfig) Validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("workload: non-positive duration %v", c.Duration)
	}
	if c.MeanAppsPerDay <= 0 {
		return fmt.Errorf("workload: non-positive app rate %v", c.MeanAppsPerDay)
	}
	if c.MeanVMsPerApp < 1 {
		return fmt.Errorf("workload: mean VMs per app %v must be >= 1", c.MeanVMsPerApp)
	}
	if c.StableFraction < 0 || c.StableFraction > 1 {
		return fmt.Errorf("workload: stable fraction %v outside [0,1]", c.StableFraction)
	}
	return nil
}

// GenerateApps produces application requests sorted by arrival.
func GenerateApps(cfg AppConfig) ([]App, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := subRNG(cfg.Seed, "apps")
	var apps []App
	t := cfg.Start
	end := cfg.Start.Add(cfg.Duration)
	appID := 1
	vmID := 1
	for {
		gap := time.Duration(rng.ExpFloat64() / cfg.MeanAppsPerDay * float64(24*time.Hour))
		if gap <= 0 {
			gap = time.Nanosecond
		}
		t = t.Add(gap)
		if !t.Before(end) {
			break
		}
		nVMs := 1
		// Geometric with mean MeanVMsPerApp.
		p := 1 / cfg.MeanVMsPerApp
		for rng.Float64() > p {
			nVMs++
		}
		app := App{ID: appID, Arrival: t}
		for i := 0; i < nVMs; i++ {
			sh := drawShape(rng)
			class := Degradable
			if rng.Float64() < cfg.StableFraction {
				class = Stable
			}
			app.VMs = append(app.VMs, VM{
				ID:       vmID,
				Cores:    sh.cores,
				MemoryGB: sh.memGB,
				Class:    class,
				Arrival:  t,
				AppID:    appID,
			})
			vmID++
		}
		apps = append(apps, app)
		appID++
	}
	return apps, nil
}

func subRNG(seed uint64, label string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", seed, label)
	s := h.Sum64()
	return rand.New(rand.NewPCG(s, s^0xbb67ae8584caa73b))
}
