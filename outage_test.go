package vb

import (
	"reflect"
	"testing"

	"github.com/vbcloud/vb/internal/core"
	"github.com/vbcloud/vb/internal/sim"
)

// TestAvailabilityUnderOutage checks the robustness experiment end to end:
// the zero-fault rows are bit-identical to a fault-free run, blackouts of
// load-bearing sites degrade service monotonically, the solver-slowdown
// scenario drives the scheduler down its fallback ladder without any step
// erroring, and the whole table is deterministic.
func TestAvailabilityUnderOutage(t *testing.T) {
	res, err := AvailabilityUnderOutage(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Rows), 7; got != want {
		t.Fatalf("got %d rows, want %d", got, want)
	}

	row := func(label string, p Policy) OutageRow {
		t.Helper()
		r, ok := res.Row(label, p)
		if !ok {
			t.Fatalf("missing row (%q, %v)", label, p)
		}
		return r
	}
	base := row("no faults", PolicyMIP)
	one := row("1-site blackout", PolicyMIP)
	two := row("2-site blackout", PolicyMIP)
	slow := row("4096x solver slowdown", PolicyMIP)
	_ = row("no faults", PolicyGreedy)

	// Golden parity: the zero-fault row must equal an independent fault-free
	// run exactly — the fault hooks are bit-exact identities when idle.
	in, _, err := buildTable1Input(Table1Setup{
		Seed: DefaultSeed, Days: outageDays,
	}.withDefaults(), table1Start)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Run(core.Config{
		Policy: PolicyMIP, PlanStep: Table1PlanStep, UtilTarget: 0.7, MaxSitesPerApp: 3,
	}, in)
	if err != nil {
		t.Fatal(err)
	}
	if base.MeanAvailability != r.MeanAvailability() ||
		base.PausedStableCoreSteps != r.PausedStableCoreSteps ||
		base.ShortfallCoreSteps != r.ShortfallCoreSteps ||
		base.TransferGB != r.Transfer.Total() {
		t.Errorf("zero-fault row diverges from fault-free run: %+v vs avail=%v paused=%v short=%v transfer=%v",
			base, r.MeanAvailability(), r.PausedStableCoreSteps, r.ShortfallCoreSteps, r.Transfer.Total())
	}
	if base.Fallbacks != 0 || base.DeadlineExceeded != 0 {
		t.Errorf("zero-fault row reports degradation: fallbacks=%v deadline=%v", base.Fallbacks, base.DeadlineExceeded)
	}

	// Blacking out a load-bearing site must cost availability and force
	// evacuation traffic; losing a second site must not help.
	if one.MeanAvailability >= base.MeanAvailability {
		t.Errorf("1-site blackout availability %v, want < baseline %v", one.MeanAvailability, base.MeanAvailability)
	}
	if one.TransferGB <= base.TransferGB {
		t.Errorf("1-site blackout transfer %v GB, want > baseline %v GB (forced evacuations)", one.TransferGB, base.TransferGB)
	}
	if two.MeanAvailability > one.MeanAvailability {
		t.Errorf("2-site blackout availability %v > 1-site %v", two.MeanAvailability, one.MeanAvailability)
	}

	// The solver-slowdown run must visibly fall down the ladder — and the
	// fact the experiment returned at all means no step errored.
	if slow.Fallbacks == 0 {
		t.Error("solver slowdown triggered no scheduler fallbacks")
	}
	if slow.DeadlineExceeded == 0 {
		t.Error("solver slowdown triggered no deadline/derate truncations")
	}

	// The sweep is a pure function of the seed.
	again, err := AvailabilityUnderOutage(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Error("AvailabilityUnderOutage is not deterministic at a fixed seed")
	}
}
