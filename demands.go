package vb

import (
	"github.com/vbcloud/vb/internal/core"
	"github.com/vbcloud/vb/internal/workload"
)

// appDemands converts generated applications into scheduler demands. Every
// app is validated first: an app with zero total cores would turn the
// MemGBPerCore division into NaN and silently poison the MIP demand vector,
// so it is rejected here (and again by sim.Input.Validate, which refuses
// non-finite demand fields).
func appDemands(apps []workload.App) ([]core.AppDemand, error) {
	demands := make([]core.AppDemand, 0, len(apps))
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		demands = append(demands, core.AppDemand{
			ID:           a.ID,
			Cores:        float64(a.TotalCores()),
			StableCores:  float64(a.StableCores()),
			MemGBPerCore: float64(a.TotalMemoryGB()) / float64(a.TotalCores()),
			Start:        a.Arrival,
		})
	}
	return demands, nil
}
