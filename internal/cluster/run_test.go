package cluster

import (
	"testing"
	"time"

	"github.com/vbcloud/vb/internal/energy"
	"github.com/vbcloud/vb/internal/stats"
	"github.com/vbcloud/vb/internal/trace"
	"github.com/vbcloud/vb/internal/workload"
)

func windPower(t *testing.T, days int) trace.Series {
	t.Helper()
	w := energy.NewWorld(42)
	cfgs := []energy.SiteConfig{{Name: "W", Source: energy.Wind, Latitude: 53.5, Longitude: -1.5, CapacityMW: 400}}
	series, err := w.Generate(cfgs, time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC), 15*time.Minute, days*96)
	if err != nil {
		t.Fatal(err)
	}
	return series[0]
}

func arrivalTrace(t *testing.T, days int, rate float64) []workload.VM {
	t.Helper()
	vms, err := workload.Generate(workload.Config{
		Seed:                9,
		Start:               time.Date(2020, 4, 30, 0, 0, 0, 0, time.UTC),
		Duration:            time.Duration(days+1) * 24 * time.Hour,
		MeanArrivalsPerHour: rate,
		StableFraction:      0.7,
		LongRunningFraction: 0.3,
		MedianLifetime:      6 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	return vms
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(DefaultConfig(), trace.Series{}, nil, 0); err == nil {
		t.Error("empty power should error")
	}
	p := trace.FromValues(t0, time.Hour, []float64{1})
	if _, err := Run(DefaultConfig(), p, nil, -1); err == nil {
		t.Error("negative warmup should error")
	}
	if _, err := Run(Config{}, p, nil, 0); err == nil {
		t.Error("bad config should error")
	}
}

func TestRunConstantPowerNoMigration(t *testing.T) {
	// Constant full power must never migrate.
	p := trace.New(t0, 15*time.Minute, 96)
	for i := range p.Values {
		p.Values[i] = 1
	}
	cfg := Config{Servers: 20, CoresPerServer: 10, MemPerServerGB: 100, TargetUtilization: 0.7}
	vms := arrivalTrace(t, 1, 5)
	res, err := Run(cfg, p, vms, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOutGB() != 0 {
		t.Errorf("constant power should not evict, got %v GB out", res.TotalOutGB())
	}
	if res.FractionQuietChanges() != 1 {
		t.Errorf("no power changes -> quiet fraction 1, got %v", res.FractionQuietChanges())
	}
}

// TestRunFig4Shape checks the headline Fig 4a observations on a week of wind
// power: most power changes incur no migrations (>80% in the paper), but the
// ones that do move large volumes.
func TestRunFig4Shape(t *testing.T) {
	power := windPower(t, 10)
	vms := arrivalTrace(t, 10, 60)
	res, err := Run(DefaultConfig(), power, vms, 96)
	if err != nil {
		t.Fatal(err)
	}
	quiet := res.FractionQuietChanges()
	if quiet < 0.7 {
		t.Errorf("quiet-change fraction = %v, want most drops absorbed (paper: >0.8)", quiet)
	}
	if res.FractionFullyQuietChanges() > quiet {
		t.Error("fully-quiet fraction cannot exceed out-quiet fraction")
	}
	if res.TotalOutGB() == 0 {
		t.Error("a week of wind should force some evictions")
	}
	if res.TotalInGB() == 0 {
		t.Error("power recoveries should relaunch VMs")
	}
	// Migration overhead is bursty: p99 well above the median of non-zero
	// transfers.
	nz := res.OutGB.NonZero(1e-9)
	if len(nz) > 10 {
		q, err := stats.Quantiles(nz, 50, 99)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Ratio(q[1], q[0]) < 2 {
			t.Errorf("out-migration p99/p50 = %v, expected bursty (paper: 12.5-16x)", stats.Ratio(q[1], q[0]))
		}
	}
	// Utilization stays at or below the admission target with small
	// overshoot tolerance.
	if res.Utilization.Max() > 0.71 {
		t.Errorf("utilization peaked at %v, admission should cap at 0.70", res.Utilization.Max())
	}
}

func TestRunWarmupExcluded(t *testing.T) {
	power := windPower(t, 3)
	vms := arrivalTrace(t, 3, 30)
	res, err := Run(DefaultConfig(), power, vms, 48)
	if err != nil {
		t.Fatal(err)
	}
	if res.OutGB.Len() != power.Len() || res.InGB.Len() != power.Len() {
		t.Errorf("result series must match power length")
	}
	if !res.OutGB.Start.Equal(power.Start) {
		t.Error("result series must start at power start")
	}
}

func TestRunDeterministic(t *testing.T) {
	power := windPower(t, 2)
	vms := arrivalTrace(t, 2, 20)
	a, err := Run(DefaultConfig(), power, vms, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(DefaultConfig(), power, vms, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.OutGB.Values {
		if a.OutGB.Values[i] != b.OutGB.Values[i] || a.InGB.Values[i] != b.InGB.Values[i] {
			t.Fatalf("step %d differs between identical runs", i)
		}
	}
}
